package repro

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/auction"
	"repro/internal/baseline"
	"repro/internal/geom"
	"repro/internal/mechanism"
	"repro/internal/models"
	"repro/internal/serialize"
	"repro/internal/valuation"
)

// TestEndToEndAllModels runs the full pipeline — model construction, LP,
// rounding, feasibility — across every interference model of Section 4.
func TestEndToEndAllModels(t *testing.T) {
	const (
		n = 14
		k = 2
	)
	rng := rand.New(rand.NewSource(42))
	centers := geom.UniformPoints(rng, n, 80)
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = 3 + rng.Float64()*6
	}
	links := geom.UniformLinks(rng, n, 100, 2, 7)
	civPts := geom.PoissonDiskPoints(rng, n, 80, 4)

	confs := []*models.Conflict{
		models.Disk(centers, radii),
		models.Distance2Disk(centers, radii),
		models.Protocol(links, 1),
		models.IEEE80211(links, 1),
		models.Physical(links, models.UniformPower, models.DefaultSINR()),
		models.Physical(links, models.LinearPower, models.DefaultSINR()),
		models.PowerControl(links, models.DefaultSINR()),
	}
	if civ, err := models.Civilized(civPts, 12, 4); err == nil {
		confs = append(confs, civ)
	} else {
		t.Fatalf("civilized construction: %v", err)
	}

	for _, conf := range confs {
		conf := conf
		t.Run(conf.Model, func(t *testing.T) {
			bidders := valuation.RandomMix(rng, conf.N(), k, 1, 10)
			in, err := auction.NewInstance(conf, k, bidders)
			if err != nil {
				t.Fatal(err)
			}
			res, err := auction.Solve(in, auction.Options{Seed: 1, Samples: 10})
			if err != nil {
				t.Fatal(err)
			}
			if !in.Feasible(res.Alloc) {
				t.Fatal("infeasible allocation")
			}
			der, _ := in.RoundDerandomized(res.LP)
			if !in.Feasible(der) {
				t.Fatal("infeasible derandomized allocation")
			}
			if w := der.Welfare(in.Bidders); w < res.LP.Value/res.Factor-1e-9 {
				t.Fatalf("derandomized welfare %g below guarantee %g", w, res.LP.Value/res.Factor)
			}
		})
	}
}

// TestSerializeSolveRoundTrip stores an instance, reloads it, and verifies
// the solved LP value and a derandomized welfare match the original.
func TestSerializeSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	links := geom.UniformLinks(rng, 12, 90, 2, 7)
	conf := models.Protocol(links, 1)
	bidders := valuation.RandomMix(rng, 12, 3, 1, 10)
	in, err := auction.NewInstance(conf, 3, bidders)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serialize.Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	loaded, err := serialize.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := auction.Solve(in, auction.Options{Derandomize: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := auction.Solve(loaded, auction.Options{Derandomize: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.LP.Value-b.LP.Value) > 1e-6*(1+a.LP.Value) {
		t.Fatalf("LP value changed across serialization: %g vs %g", a.LP.Value, b.LP.Value)
	}
	if math.Abs(a.Welfare-b.Welfare) > 1e-6*(1+a.Welfare) {
		t.Fatalf("welfare changed across serialization: %g vs %g", a.Welfare, b.Welfare)
	}
}

// TestPipelineAgainstExactOPT verifies the whole stack on instances small
// enough for ground truth: LP ≥ OPT ≥ welfare ≥ LP/α.
func TestPipelineAgainstExactOPT(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		links := geom.UniformLinks(rng, 9, 70, 2, 7)
		conf := models.Protocol(links, 1)
		bidders := valuation.RandomMix(rng, 9, 2, 1, 10)
		in, err := auction.NewInstance(conf, 2, bidders)
		if err != nil {
			t.Fatal(err)
		}
		_, opt := baseline.ExactOPT(in)
		res, err := auction.Solve(in, auction.Options{Derandomize: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.LP.Value < opt-1e-6 {
			t.Fatalf("seed %d: LP %g below OPT %g", seed, res.LP.Value, opt)
		}
		if res.Welfare > opt+1e-6 {
			t.Fatalf("seed %d: welfare %g above OPT %g", seed, res.Welfare, opt)
		}
		if res.Welfare < res.LP.Value/res.Factor-1e-9 {
			t.Fatalf("seed %d: welfare %g below guarantee", seed, res.Welfare)
		}
	}
}

// TestMechanismOnWeightedModel runs the Lavi–Swamy layer on a physical-model
// (edge-weighted) instance — the hardest configuration it supports.
func TestMechanismOnWeightedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	links := geom.UniformLinks(rng, 6, 120, 1, 5)
	conf := models.Physical(links, models.UniformPower, models.DefaultSINR())
	bidders := make([]valuation.Valuation, 6)
	for i := range bidders {
		bidders[i] = valuation.RandomAdditive(rng, 2, 1, 10)
	}
	in, err := auction.NewInstance(conf, 2, bidders)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mechanism.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.DecompositionError > 1e-5 {
		t.Fatalf("decomposition error %g", out.DecompositionError)
	}
	total := 0.0
	for _, wa := range out.Distribution {
		total += wa.Lambda
		if !in.Feasible(wa.Alloc) {
			t.Fatal("infeasible support allocation")
		}
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("lottery mass %g", total)
	}
}
