package repro

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun compiles and executes every example end to end, asserting
// a clean exit and a key line of expected output. Guards the examples
// against rot; skipped under -short because each run pays a build.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are skipped in -short mode")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"quickstart", "allocation verified feasible"},
		{"cellular", "allocation feasible: true"},
		{"sinrlinks", "feasible powers found: true"},
		{"truthful", "truthful in expectation"},
		{"asymmetric", "allocation verified feasible per band"},
		{"market", "total welfare"},
		{"client", "client walkthrough complete"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			cmd.Dir = "."
			done := make(chan struct{})
			var out []byte
			var err error
			go func() {
				out, err = cmd.CombinedOutput()
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(3 * time.Minute):
				_ = cmd.Process.Kill()
				t.Fatal("example timed out")
			}
			if err != nil {
				t.Fatalf("example failed: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("output missing %q:\n%s", c.want, out)
			}
		})
	}
}
