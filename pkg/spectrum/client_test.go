package spectrum_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/geom"
	"repro/pkg/spectrum"
)

// The SDK is tested against the real server handler (internal/broker
// aliases its wire types onto this package, so this round-trip pins the
// whole contract): mutations, batches, queries, watch, and the typed error
// mapping.

func newBrokerServer(t *testing.T, cfg broker.Config) (*broker.Broker, *spectrum.Client) {
	t.Helper()
	b, err := broker.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(broker.NewHandler(b))
	t.Cleanup(srv.Close)
	return b, spectrum.NewClient(srv.URL)
}

func TestClientLifecycleRoundTrip(t *testing.T) {
	ctx := context.Background()
	b, c := newBrokerServer(t, broker.Config{K: 2})

	acc, err := c.Submit(ctx, spectrum.Bid{Radius: 4, Values: []float64{5, 2}})
	if err != nil || acc.ID == 0 || acc.Status != spectrum.StatusPending {
		t.Fatalf("submit: %+v, %v", acc, err)
	}
	b.Tick()

	st, err := c.Bid(ctx, acc.ID)
	if err != nil || st.Status != spectrum.StatusActive || st.Value != 7 {
		t.Fatalf("bid state: %+v, %v", st, err)
	}
	alloc, err := c.Allocation(ctx)
	if err != nil || len(alloc.Winners) != 1 || alloc.Welfare != 7 {
		t.Fatalf("allocation: %+v, %v", alloc, err)
	}

	if _, err := c.Update(ctx, acc.ID, spectrum.Additive([]float64{0, 9})); err != nil {
		t.Fatalf("update: %v", err)
	}
	b.Tick()
	if st, _ = c.Bid(ctx, acc.ID); st.Value != 9 {
		t.Fatalf("state after update: %+v", st)
	}

	if _, err := c.Move(ctx, acc.ID, spectrum.Bid{Pos: geom.Point{X: 50}, Radius: 4}); err != nil {
		t.Fatalf("move: %v", err)
	}
	b.Tick()

	if _, err := c.Withdraw(ctx, acc.ID); err != nil {
		t.Fatalf("withdraw: %v", err)
	}
	b.Tick()
	if st, _ = c.Bid(ctx, acc.ID); st.Status != spectrum.StatusGone {
		t.Fatalf("state after withdraw: %+v", st)
	}
}

func TestClientBatchAndWatch(t *testing.T) {
	ctx := context.Background()
	b, c := newBrokerServer(t, broker.Config{K: 2})

	res, err := c.SubmitBatch(ctx, []spectrum.Op{
		{Op: spectrum.OpSubmit, Key: "a", Bid: &spectrum.Bid{Radius: 2, Values: []float64{5, 1}}},
		{Op: spectrum.OpSubmit, Key: "b", Bid: &spectrum.Bid{Pos: geom.Point{X: 70}, Radius: 2, Values: []float64{2, 6}}},
		{Op: spectrum.OpSubmit, Key: "c", Bid: &spectrum.Bid{Radius: 2, Values: []float64{1}}}, // invalid arity
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Results[0].OK() || !res.Results[1].OK() || res.Results[2].OK() {
		t.Fatalf("batch results: %+v", res.Results)
	}

	// Watch the commit land via the long-poll.
	done := make(chan spectrum.EpochReport, 1)
	go func() {
		rep, err := c.WaitEpoch(ctx, 0)
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	time.Sleep(10 * time.Millisecond)
	b.Tick()
	select {
	case rep := <-done:
		if rep.Epoch != 1 || rep.Arrivals != 2 {
			t.Fatalf("watched report: %+v", rep)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitEpoch never returned")
	}

	// Replaying the keyed batch is a no-op with identical ids.
	res2, err := c.SubmitBatch(ctx, []spectrum.Op{
		{Op: spectrum.OpSubmit, Key: "a", Bid: &spectrum.Bid{Radius: 2, Values: []float64{5, 1}}},
		{Op: spectrum.OpSubmit, Key: "b", Bid: &spectrum.Bid{Pos: geom.Point{X: 70}, Radius: 2, Values: []float64{2, 6}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res2.Results {
		if !r.Replayed || r.ID != res.Results[i].ID {
			t.Fatalf("replay result %d: %+v (original %+v)", i, r, res.Results[i])
		}
	}

	// Watch channel streams subsequent commits.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := c.Watch(wctx, 1)
	b.Tick()
	select {
	case rep := <-ch:
		if rep.Epoch != 2 {
			t.Fatalf("streamed epoch %d, want 2", rep.Epoch)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Watch channel never delivered")
	}
	cancel()
	if _, open := <-ch; open {
		// One buffered event may still flush; the channel must close after.
		if _, open := <-ch; open {
			t.Fatal("Watch channel not closed after cancel")
		}
	}
}

func TestClientTypedErrors(t *testing.T) {
	ctx := context.Background()
	_, c := newBrokerServer(t, broker.Config{K: 2, MaxBidders: 1})

	// 400 → ErrBadRequest.
	if _, err := c.Submit(ctx, spectrum.Bid{Radius: 2, Values: []float64{1}}); !errors.Is(err, spectrum.ErrBadRequest) {
		t.Fatalf("bad bid error: %v", err)
	}
	// 404 → ErrNotFound (unknown id and disabled prices).
	if _, err := c.Bid(ctx, 999); !errors.Is(err, spectrum.ErrNotFound) {
		t.Fatalf("unknown id error: %v", err)
	}
	if _, err := c.Prices(ctx); !errors.Is(err, spectrum.ErrNotFound) {
		t.Fatalf("disabled prices error: %v", err)
	}
	// 429 → ErrFull.
	if _, err := c.Submit(ctx, spectrum.Bid{Radius: 2, Values: []float64{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, spectrum.Bid{Radius: 2, Values: []float64{2, 2}}); !errors.Is(err, spectrum.ErrFull) {
		t.Fatalf("full market error: %v", err)
	}
	// 413 → ErrTooLarge (batch over the op limit).
	ops := make([]spectrum.Op, 257)
	for i := range ops {
		ops[i] = spectrum.Op{Op: spectrum.OpSubmit, Bid: &spectrum.Bid{Radius: 1, Values: []float64{1, 1}}}
	}
	if _, err := c.SubmitBatch(ctx, ops); !errors.Is(err, spectrum.ErrTooLarge) {
		t.Fatalf("oversized batch error: %v", err)
	}
	// The category error still exposes the server's message.
	var ae *spectrum.APIError
	_, err := c.Bid(ctx, 999)
	if !errors.As(err, &ae) || ae.Code != http.StatusNotFound || ae.Msg == "" {
		t.Fatalf("APIError unwrap: %v", err)
	}
}

// TestClientRetries: idempotent requests are retried past transient 5xxs;
// mutations and 4xxs are not.
func TestClientRetries(t *testing.T) {
	ctx := context.Background()
	var gets, posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			if gets.Add(1) <= 2 {
				http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"epoch":3,"welfare":1,"winners":[]}`))
			return
		}
		posts.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := spectrum.NewClient(srv.URL, spectrum.WithRetries(3), spectrum.WithBackoff(time.Millisecond))

	alloc, err := c.Allocation(ctx)
	if err != nil || alloc.Epoch != 3 {
		t.Fatalf("allocation after retries: %+v, %v (gets=%d)", alloc, err, gets.Load())
	}
	if gets.Load() != 3 {
		t.Fatalf("GET attempts = %d, want 3", gets.Load())
	}
	// A keyless mutation is never retried.
	if _, err := c.Submit(ctx, spectrum.Bid{Radius: 1, Values: []float64{1}}); !errors.Is(err, spectrum.ErrServer) {
		t.Fatalf("server error category: %v", err)
	}
	if posts.Load() != 1 {
		t.Fatalf("POST attempts = %d, want 1 (no mutation retry)", posts.Load())
	}
}

// TestClientHonorsRetryAfter: a 503 or 429 carrying Retry-After is retried,
// and the client waits at least the advertised delay (capped at its backoff
// ceiling) instead of its own jittered schedule.
func TestClientHonorsRetryAfter(t *testing.T) {
	ctx := context.Background()
	for _, code := range []int{http.StatusServiceUnavailable, http.StatusTooManyRequests} {
		var gets atomic.Int64
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if gets.Add(1) == 1 {
				w.Header().Set("Retry-After", "1") // a full second; the cap must bound the wait
				http.Error(w, `{"error":"overloaded"}`, code)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte(`{"epoch":1,"welfare":0,"winners":[]}`))
		}))
		const cap = 50 * time.Millisecond
		c := spectrum.NewClient(srv.URL, spectrum.WithRetries(2),
			spectrum.WithBackoff(time.Millisecond), spectrum.WithMaxBackoff(cap))
		start := time.Now()
		alloc, err := c.Allocation(ctx)
		elapsed := time.Since(start)
		srv.Close()
		if err != nil || alloc.Epoch != 1 {
			t.Fatalf("code %d: %+v, %v (gets=%d)", code, alloc, err, gets.Load())
		}
		if gets.Load() != 2 {
			t.Fatalf("code %d: GET attempts = %d, want 2", code, gets.Load())
		}
		if elapsed < cap {
			t.Fatalf("code %d: retried after %v, before the %v Retry-After floor", code, elapsed, cap)
		}
		if elapsed > time.Second {
			t.Fatalf("code %d: waited %v — the advertised 1s was not capped at %v", code, elapsed, cap)
		}
	}
	// A 429 without Retry-After stays terminal (the market is full, not busy).
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		http.Error(w, `{"error":"full"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c := spectrum.NewClient(srv.URL, spectrum.WithRetries(3), spectrum.WithBackoff(time.Millisecond))
	if _, err := c.Allocation(ctx); !errors.Is(err, spectrum.ErrFull) {
		t.Fatalf("bare 429: %v", err)
	}
	if gets.Load() != 1 {
		t.Fatalf("bare 429 attempts = %d, want 1", gets.Load())
	}
}

// TestClientBackoffIsCapped: the full-jitter schedule never exceeds its
// ceiling — with tiny bounds, exhausting every retry stays fast.
func TestClientBackoffIsCapped(t *testing.T) {
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := spectrum.NewClient(srv.URL, spectrum.WithRetries(4),
		spectrum.WithBackoff(5*time.Millisecond), spectrum.WithMaxBackoff(20*time.Millisecond))
	start := time.Now()
	_, err := c.Allocation(context.Background())
	if !errors.Is(err, spectrum.ErrServer) {
		t.Fatalf("exhausted retries: %v", err)
	}
	if gets.Load() != 5 {
		t.Fatalf("attempts = %d, want 5", gets.Load())
	}
	// Worst case (zero jitter luck aside): 5+10+20+20 = 55ms of sleeps.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("capped backoff took %v", elapsed)
	}
}

// TestWatchEventsSurfacesTerminalError: when the stream dies on a
// non-retryable error, WatchEvents delivers the error before closing —
// consumers can tell "stream over" from "stream broken".
func TestWatchEventsSurfacesTerminalError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no watch for you"}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	c := spectrum.NewClient(srv.URL, spectrum.WithRetries(0))
	ch := c.WatchEvents(context.Background(), 0)
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("channel closed without a terminal error event")
		}
		if ev.Err == nil || !errors.Is(ev.Err, spectrum.ErrBadRequest) {
			t.Fatalf("terminal event error: %v", ev.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no terminal event")
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after the terminal error")
	}

	// Plain Watch (report-only) swallows the error but still closes.
	ch2 := c.Watch(context.Background(), 0)
	select {
	case _, ok := <-ch2:
		if ok {
			t.Fatal("Watch delivered a report from a failing stream")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Watch channel never closed")
	}
}
