package spectrum_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/geom"
	"repro/pkg/spectrum"
)

func startTestMirror(t *testing.T, base string, cfg spectrum.MirrorConfig) *spectrum.Mirror {
	t.Helper()
	if cfg.Client == nil {
		cfg.Client = spectrum.NewClient(base)
	}
	if cfg.PollTimeout == 0 {
		cfg.PollTimeout = 100 * time.Millisecond
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 5 * time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 50 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	m, err := spectrum.NewMirror(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(ctx)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return m
}

// TestMirrorServesBrokerBytes: the basic replica loop — sync, follow one
// commit, serve the broker's exact bytes and decoded reads.
func TestMirrorServesBrokerBytes(t *testing.T) {
	b, err := broker.New(broker.Config{K: 2, Prices: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(broker.NewHandler(b))
	defer srv.Close()
	m := startTestMirror(t, srv.URL, spectrum.MirrorConfig{})

	if _, err := m.Allocation(); !errors.Is(err, spectrum.ErrStale) {
		t.Fatalf("read before first sync: %v, want ErrStale", err)
	}

	if _, err := b.Submit(broker.Bid{Radius: 2, Values: []float64{3, 4}}); err != nil {
		t.Fatal(err)
	}
	b.Tick()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.WaitForEpoch(ctx, 1); err != nil {
		t.Fatal(err)
	}

	alloc, err := m.Allocation()
	if err != nil || alloc.Epoch != 1 || alloc.Welfare != 7 || len(alloc.Winners) != 1 {
		t.Fatalf("mirror allocation: %+v, %v", alloc, err)
	}
	prices, err := m.Prices()
	if err != nil || prices.Epoch != 1 {
		t.Fatalf("mirror prices: %+v, %v", prices, err)
	}
	if e, ok := m.Epoch(); !ok || e != 1 {
		t.Fatalf("Epoch() = %d, %v", e, ok)
	}

	for _, probe := range []struct {
		route string
		read  func() ([]byte, int, error)
	}{
		{"/v1/snapshot", m.SnapshotJSON},
		{"/v1/allocation", m.AllocationJSON},
		{"/v1/prices", m.PricesJSON},
	} {
		resp, err := http.Get(srv.URL + probe.route)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got, epoch, err := probe.read()
		if err != nil || epoch != 1 {
			t.Fatalf("%s: epoch %d err %v", probe.route, epoch, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: mirror bytes differ from broker", probe.route)
		}
	}

	h := m.Health()
	if h.Degraded || h.Status != "ok" || h.Epoch != 1 {
		t.Fatalf("health: %+v", h)
	}
	if st := m.Stats(); st.Syncs == 0 || st.Epoch != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMirrorPricesDisabled: an upstream without pricing makes the mirror's
// Prices read a 404-category error, exactly like the broker's own route.
func TestMirrorPricesDisabled(t *testing.T) {
	b, err := broker.New(broker.Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(broker.NewHandler(b))
	defer srv.Close()
	m := startTestMirror(t, srv.URL, spectrum.MirrorConfig{})
	b.Tick()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.WaitForEpoch(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Prices(); !errors.Is(err, spectrum.ErrNotFound) {
		t.Fatalf("disabled prices: %v, want ErrNotFound", err)
	}
	body, _, err := m.PricesJSON()
	if err != nil || body != nil {
		t.Fatalf("PricesJSON with disabled prices: body=%v err=%v, want nil/nil", body, err)
	}
}

// TestMirrorDetectsGapAndResyncs forces an epoch gap deterministically: a
// middleware blackholes /v1/watch (serving empty 204 windows, which the
// mirror rightly treats as freshness proofs) while the broker commits twice;
// when the watch path reopens, the mirror receives local+2, counts a gap
// event, and re-anchors with a full resync.
func TestMirrorDetectsGapAndResyncs(t *testing.T) {
	b, err := broker.New(broker.Config{K: 2, Prices: true})
	if err != nil {
		t.Fatal(err)
	}
	var blackhole atomic.Bool
	h := broker.NewHandler(b)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if blackhole.Load() && r.URL.Path == "/v1/watch" {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()
	m := startTestMirror(t, srv.URL, spectrum.MirrorConfig{})

	if _, err := b.Submit(broker.Bid{Radius: 2, Values: []float64{3, 4}}); err != nil {
		t.Fatal(err)
	}
	b.Tick()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.WaitForEpoch(ctx, 1); err != nil {
		t.Fatal(err)
	}

	blackhole.Store(true)
	if _, err := b.Submit(broker.Bid{Pos: geom.Point{X: 80}, Radius: 2, Values: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	b.Tick()
	b.Tick()
	blackhole.Store(false)

	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := m.WaitForEpoch(ctx2, 3); err != nil {
		t.Fatalf("mirror never crossed the gap: %v (stats %+v)", err, m.Stats())
	}
	st := m.Stats()
	if st.GapEvents == 0 {
		t.Fatalf("gap went uncounted: %+v", st)
	}
	if st.Resyncs < 2 { // the anchor resync plus the gap-triggered one
		t.Fatalf("gap did not trigger a resync: %+v", st)
	}
	alloc, err := m.Allocation()
	if err != nil || alloc.Epoch != 3 {
		t.Fatalf("post-gap allocation: %+v, %v", alloc, err)
	}
}

// TestMirrorHandlerHTTP pins the proxy surface: 503 + Retry-After while the
// replica cannot prove freshness, the broker's exact bytes once it can,
// structured 405s for mutations, and health/metrics routes.
func TestMirrorHandlerHTTP(t *testing.T) {
	b, err := broker.New(broker.Config{K: 2, Prices: true})
	if err != nil {
		t.Fatal(err)
	}
	bsrv := httptest.NewServer(broker.NewHandler(b))
	defer bsrv.Close()
	m := startTestMirror(t, bsrv.URL, spectrum.MirrorConfig{})
	psrv := httptest.NewServer(spectrum.NewMirrorHandler(m))
	defer psrv.Close()

	// Unsynced: every read is an honest 503 with retry advice.
	resp, err := http.Get(psrv.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("unsynced read: %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp, err = http.Get(psrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsynced healthz: %d", resp.StatusCode)
	}

	// Mutations have no business on a replica.
	resp, err = http.Post(psrv.URL+"/v1/allocation", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodGet {
		t.Fatalf("POST on replica: %d, Allow %q", resp.StatusCode, resp.Header.Get("Allow"))
	}

	// The broker's mutation routes answer a structured 405 (not a bare
	// 404), on /v1 and legacy paths alike; their GET forms are 404 since
	// bid status is not mirrored.
	for _, path := range []string{"/v1/bids", "/bids", "/v1/batch", "/batch", "/v1/bids/7/move"} {
		resp, err = http.Post(psrv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodGet {
			t.Fatalf("POST %s on replica: %d, Allow %q", path, resp.StatusCode, resp.Header.Get("Allow"))
		}
	}
	resp, err = http.Get(psrv.URL + "/v1/bids/7")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET bid status on replica: %d", resp.StatusCode)
	}

	// Synced: the replica's responses are the broker's bytes, on both the
	// /v1 and legacy unversioned routes.
	if _, err := b.Submit(broker.Bid{Radius: 2, Values: []float64{3, 4}}); err != nil {
		t.Fatal(err)
	}
	b.Tick()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.WaitForEpoch(ctx, 1); err != nil {
		t.Fatal(err)
	}
	for _, route := range []string{"/v1/snapshot", "/snapshot", "/v1/allocation", "/allocation", "/v1/prices", "/prices"} {
		canonical := route
		if canonical[0] != '/' || canonical[1] != 'v' {
			canonical = "/v1" + route
		}
		wresp, err := http.Get(bsrv.URL + canonical)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := io.ReadAll(wresp.Body)
		wresp.Body.Close()
		gresp, err := http.Get(psrv.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(gresp.Body)
		gresp.Body.Close()
		if gresp.StatusCode != http.StatusOK || gresp.Header.Get("Content-Type") != "application/json" {
			t.Fatalf("%s: %d %q", route, gresp.StatusCode, gresp.Header.Get("Content-Type"))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: replica bytes differ from broker", route)
		}
	}

	var health spectrum.MirrorHealth
	if resp := getJSON(t, psrv.URL+"/healthz", &health); resp != http.StatusOK {
		t.Fatalf("healthz: %d", resp)
	}
	if health.Degraded || health.Epoch != 1 || health.Status != "ok" {
		t.Fatalf("healthz body: %+v", health)
	}
	var stats spectrum.MirrorStats
	if resp := getJSON(t, psrv.URL+"/metrics", &stats); resp != http.StatusOK {
		t.Fatalf("metrics: %d", resp)
	}
	if stats.Syncs == 0 || stats.Epoch != 1 {
		t.Fatalf("metrics body: %+v", stats)
	}
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode %s: %v (%s)", url, err, body)
	}
	return resp.StatusCode
}

// TestMirrorStaleRejectCounting: degraded reads are counted, and the typed
// StaleError carries the diagnostic fields the 503 body is built from.
func TestMirrorStaleRejectCounting(t *testing.T) {
	b, err := broker.New(broker.Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(broker.NewHandler(b))
	defer srv.Close()
	m := startTestMirror(t, srv.URL, spectrum.MirrorConfig{})

	var se *spectrum.StaleError
	_, err = m.Allocation()
	if !errors.As(err, &se) || se.Epoch != -1 {
		t.Fatalf("pre-sync stale error: %v", err)
	}
	_, _, _ = m.SnapshotJSON()
	if st := m.Stats(); st.StaleRejects < 2 {
		t.Fatalf("StaleRejects = %d, want >= 2", st.StaleRejects)
	}
}
