// Package spectrum is the public client SDK and wire schema of the live
// spectrum broker (internal/broker, served by cmd/brokerd).
//
// The package has two halves:
//
//   - the wire types — Bid, Values, XORAtom, the batch mutation list
//     (Op/OpResult), the epoch-commit event (EpochReport), and the query
//     bodies. internal/broker aliases its own exported types onto these, so
//     the server and every client marshal the same bytes by construction;
//   - Client, a typed HTTP client over the versioned /v1 surface: single
//     mutations, ordered batch mutations with idempotency keys, allocation
//     and price queries, and epoch-watch streaming (long-poll).
//
// Every consumer in this repository — brokerd's -selftest, the E18
// experiment, the broker equivalence tests, the bench harness, and the
// cmd/brokerload generator — drives the broker through this one package.
package spectrum

import (
	"sort"
	"time"

	"repro/internal/geom"
)

// BidderID identifies one submitted bid for its lifetime.
type BidderID int64

// Point is a point in the plane (the disk models' transmitter position).
type Point = geom.Point

// Link is the sender→receiver pair of the link interference models.
type Link = geom.Link

// Status describes what the broker currently knows about a bidder id.
type Status string

// Bidder states.
const (
	// StatusPending: submitted, takes effect at the next epoch tick.
	StatusPending Status = "pending"
	// StatusActive: in the market (allocated or not).
	StatusActive Status = "active"
	// StatusGone: withdrawn, departed, or otherwise no longer tracked.
	StatusGone Status = "gone"
	// StatusUnknown: an id the broker never issued.
	StatusUnknown Status = "unknown"
)

// Bid is one secondary user's submission: model-specific geometry plus a
// valuation. Transmitter models (disk, distance-2) take Pos and Radius; link
// models (protocol, IEEE 802.11) take Link. Exactly one of Values (additive
// per-channel values) and XOR (atomic XOR bids) must be set.
type Bid struct {
	// Pos and Radius place a transmitter's interference disk (disk and
	// distance-2 models).
	Pos    Point   `json:"pos"`
	Radius float64 `json:"radius,omitempty"`
	// Link is the sender→receiver pair of the link models.
	Link *Link `json:"link,omitempty"`
	// Values are additive per-channel values (length K).
	Values []float64 `json:"values,omitempty"`
	// XOR lists the atomic bids of an XOR valuation: a bundle is worth the
	// best atom it contains.
	XOR []XORAtom `json:"xor,omitempty"`
	// LeaseEpochs is an optional temporal lease: a TTL in epochs, counted
	// from the epoch the bid becomes active. After LeaseEpochs committed
	// epochs the broker withdraws the bid itself at epoch commit — no client
	// withdraw is needed (or expected). 0 means the bid stays until
	// withdrawn. The lease is fixed at submit time; updates and moves cannot
	// change it.
	LeaseEpochs int `json:"lease_epochs,omitempty"`
}

// XORAtom is one atomic bid of an XOR valuation on the wire.
type XORAtom struct {
	Channels []int   `json:"channels"`
	Value    float64 `json:"value"`
}

// Values is the wire form of a valuation (used standalone by updates):
// exactly one of Additive and XOR set.
type Values struct {
	Additive []float64 `json:"values,omitempty"`
	XOR      []XORAtom `json:"xor,omitempty"`
}

// Additive wraps additive per-channel values for an update.
func Additive(values []float64) Values { return Values{Additive: values} }

// XORValues wraps XOR atoms for an update.
func XORValues(atoms []XORAtom) Values { return Values{XOR: atoms} }

// XORFromAdditive derives a small XOR atom list from additive per-channel
// values: the best single channel, the best pair, and the full positive
// support, each valued additively. Returns nil when no channel has positive
// value (no expressible XOR bid). The trace replays (E18, brokerd -selftest,
// the equivalence tests) use it to mix XOR bidders into additive workloads
// deterministically.
func XORFromAdditive(values []float64) []XORAtom {
	type cv struct {
		j int
		v float64
	}
	var pos []cv
	for j, v := range values {
		if v > 0 {
			pos = append(pos, cv{j, v})
		}
	}
	if len(pos) == 0 {
		return nil
	}
	sort.Slice(pos, func(i, j int) bool {
		if pos[i].v != pos[j].v {
			return pos[i].v > pos[j].v
		}
		return pos[i].j < pos[j].j
	})
	atoms := []XORAtom{{Channels: []int{pos[0].j}, Value: pos[0].v}}
	if len(pos) >= 2 {
		atoms = append(atoms, XORAtom{
			Channels: []int{pos[0].j, pos[1].j},
			Value:    pos[0].v + pos[1].v,
		})
	}
	if len(pos) >= 3 {
		all := make([]int, len(pos))
		sum := 0.0
		for i, c := range pos {
			all[i] = c.j
			sum += c.v
		}
		atoms = append(atoms, XORAtom{Channels: all, Value: sum})
	}
	return atoms
}

// MixedTraceValues is the shared XOR-mixing convention of the trace replays:
// every 4th trace id bids XORFromAdditive of its values (falling back to
// additive when no channel is positive), everyone else bids additively.
// brokerd -selftest, experiment E18, the cross-backend equivalence tests, and
// cmd/brokerload all translate through this one function so they cannot
// drift apart in what they exercise.
func MixedTraceValues(tid int, values []float64) Values {
	if tid%4 == 3 {
		if atoms := XORFromAdditive(values); atoms != nil {
			return XORValues(atoms)
		}
	}
	return Additive(values)
}

// Mutation op kinds of the /v1/batch endpoint.
const (
	OpSubmit   = "submit"
	OpUpdate   = "update"
	OpMove     = "move"
	OpWithdraw = "withdraw"
)

// Op is one mutation inside a POST /v1/batch request. Ops are applied to the
// epoch queue in list order. Key is an optional client-supplied idempotency
// key: replaying a batch containing an already-seen key returns the stored
// result for that item instead of enqueuing it again.
type Op struct {
	// Op is one of "submit", "update", "move", "withdraw".
	Op string `json:"op"`
	// ID names the bidder for update/move/withdraw ops.
	ID BidderID `json:"id,omitempty"`
	// Key is the optional idempotency key.
	Key string `json:"key,omitempty"`
	// Bid carries a submit's full bid, or a move's new geometry (no values).
	Bid *Bid `json:"bid,omitempty"`
	// Values carries an update's new valuation.
	Values *Values `json:"values,omitempty"`
}

// OpResult is the per-item outcome of a batch mutation, at the same index as
// its Op. Code is the item's HTTP-style status (202 accepted; 4xx otherwise),
// so partial failures are reported without failing the whole request.
type OpResult struct {
	// ID is the bidder the op applied to (for submits, the newly issued id).
	ID BidderID `json:"id,omitempty"`
	// Status is the bidder's state right now (pending until the tick).
	Status Status `json:"status,omitempty"`
	// Code is the HTTP-style status of this item: 202 on acceptance.
	Code int `json:"code"`
	// Error is the rejection reason when Code is not 202.
	Error string `json:"error,omitempty"`
	// Replayed marks a result served from the idempotency-key store rather
	// than a fresh enqueue.
	Replayed bool `json:"replayed,omitempty"`
}

// OK reports whether the item was accepted (fresh or replayed).
func (r OpResult) OK() bool { return r.Code == 202 }

// BatchRequest is the POST /v1/batch body.
type BatchRequest struct {
	Ops []Op `json:"ops"`
}

// BatchResponse is the POST /v1/batch response: the last completed epoch
// (accepted mutations land in epoch+1) and one result per op, in order.
type BatchResponse struct {
	Epoch   int        `json:"epoch"`
	Results []OpResult `json:"results"`
}

// Accepted is the 202 body of every queued single-mutation request.
type Accepted struct {
	ID BidderID `json:"id"`
	// Status is the bidder's state right now (pending until the tick).
	Status Status `json:"status"`
	// Epoch is the last completed epoch; the mutation lands in epoch+1.
	Epoch int `json:"epoch"`
}

// BidState is the GET /v1/bids/{id} body.
type BidState struct {
	ID       BidderID `json:"id"`
	Status   Status   `json:"status"`
	Channels []int    `json:"channels"`
	Value    float64  `json:"value"`
	Price    float64  `json:"price,omitempty"`
	Epoch    int      `json:"epoch"`
}

// Winner is one row of the committed allocation.
type Winner struct {
	ID       BidderID `json:"id"`
	Channels []int    `json:"channels"`
	Value    float64  `json:"value"`
}

// Allocation is the GET /v1/allocation body: the last committed epoch's
// winners and total welfare.
type Allocation struct {
	Epoch   int      `json:"epoch"`
	Welfare float64  `json:"welfare"`
	Winners []Winner `json:"winners"`
}

// Prices is the GET /v1/prices body. Keys are decimal bidder ids (JSON
// object keys are strings).
type Prices struct {
	Epoch  int                `json:"epoch"`
	Prices map[string]float64 `json:"prices"`
}

// Health is the GET /healthz body: liveness plus the broker's durability
// state. Durable reports whether commits are journaled; Recovered (with
// RecoveredEpoch) reports that this broker instance was restored from a
// journal on startup and at which epoch the restore finished.
type Health struct {
	Status         string `json:"status"`
	Epoch          int    `json:"epoch"`
	Durable        bool   `json:"durable,omitempty"`
	Recovered      bool   `json:"recovered,omitempty"`
	RecoveredEpoch int    `json:"recovered_epoch,omitempty"`
}

// MirrorHealth is the GET /healthz body of a read replica (cmd/brokerproxy
// or an embedded Mirror): the epoch the replica has applied, the newest
// upstream epoch it has heard of, and how stale its state is against the
// configured bound. Status is "syncing" before the first successful sync,
// "degraded" while the staleness bound is exceeded (reads are refused with
// ErrStale / HTTP 503), and "ok" otherwise.
type MirrorHealth struct {
	Status string `json:"status"`
	// Epoch is the last epoch the mirror fully applied (-1 before the
	// first sync); LastHeard is the newest upstream epoch the mirror has
	// observed on the watch stream, and Lag their difference.
	Epoch     int `json:"epoch"`
	LastHeard int `json:"last_heard_epoch"`
	Lag       int `json:"lag"`
	// StalenessMS is the time since the mirror last confirmed its state
	// current (a successful sync or an empty watch window); BoundMS is the
	// configured ceiling beyond which reads degrade.
	StalenessMS int64 `json:"staleness_ms"`
	BoundMS     int64 `json:"staleness_bound_ms"`
	Degraded    bool  `json:"degraded"`
	// Upstream is the broker base URL the mirror replicates.
	Upstream string `json:"upstream,omitempty"`
}

// MirrorStats is the GET /metrics body of a read replica: lifetime counters
// of the resilience machinery plus the current staleness gauge.
type MirrorStats struct {
	// Syncs counts successful state installs (tail syncs and resyncs);
	// Resyncs the subset forced by a gap, restart, or reconnect (full
	// re-anchor instead of trusting the stream tail).
	Syncs   int64 `json:"syncs"`
	Resyncs int64 `json:"resyncs"`
	// Reconnects counts watch-stream breaks (transport errors, truncated
	// bodies, broker restarts) that sent the mirror through backoff.
	Reconnects int64 `json:"reconnects"`
	// GapEvents counts watch deliveries whose epoch was not local+1;
	// Restarts the subset where the upstream was detected as a different
	// incarnation (recovered-epoch change or epoch regression).
	GapEvents int64 `json:"gap_events"`
	Restarts  int64 `json:"restarts"`
	// StaleRejects counts reads refused with ErrStale (proxy: HTTP 503).
	StaleRejects int64 `json:"stale_rejects"`
	// Epoch and StalenessMS gauge the replica's current position.
	Epoch       int   `json:"epoch"`
	StalenessMS int64 `json:"staleness_ms"`
}

// EpochReport summarizes one committed broker epoch. It is the payload of
// GET /v1/watch events and the per-epoch section of /v1/metrics.
type EpochReport struct {
	Epoch      int `json:"epoch"`
	Active     int `json:"active"`
	Arrivals   int `json:"arrivals"`
	Departures int `json:"departures"`
	Updates    int `json:"updates"`
	Moves      int `json:"moves"`
	// Expired counts the departures above that were broker-enforced lease
	// expirations (Bid.LeaseEpochs) rather than client withdraws.
	Expired int `json:"expired,omitempty"`
	// Components is the epoch's component count; Clean of them were served
	// entirely from cache, WarmResolves re-solved on a persistent master
	// (valuation-only change), Rebuilds built a fresh (pool-seeded) master.
	Components   int `json:"components"`
	Clean        int `json:"clean"`
	WarmResolves int `json:"warm_resolves"`
	Rebuilds     int `json:"rebuilds"`
	// ColumnsGenerated sums the column-generation work of the epoch's
	// re-solved components; PoolAdded counts new bundles entering the pool.
	ColumnsGenerated int `json:"columns_generated"`
	PoolAdded        int `json:"pool_added"`
	// LPValue is the summed fractional optimum, Welfare the committed
	// allocation's welfare, HalfChosen the size-decomposition half picked
	// globally this epoch.
	LPValue    float64 `json:"lp_value"`
	Welfare    float64 `json:"welfare"`
	HalfChosen int     `json:"half_chosen"`
	Alg3Iters  int     `json:"alg3_iters"`
	Errors     int     `json:"errors"`
	// Latency is the epoch's wall-clock solve-and-commit latency
	// (marshalled as integer nanoseconds).
	Latency time.Duration `json:"latency_ns"`
}
