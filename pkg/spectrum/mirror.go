package spectrum

// Mirror is the read-replica tier of the broker: it subscribes to the
// epoch-watch stream, keeps a local copy of the committed state
// (allocation, prices, snapshot — the exact bytes the broker served), and
// answers read queries at memory speed so millions of read-mostly clients
// never touch the mutation-serialized daemon.
//
// The design is built for hostile networks:
//
//   - Consistency. A mirror that has applied epoch E answers byte-identically
//     to what the broker itself served at E: state is captured as the
//     broker's own response bytes and re-served verbatim, and an install is
//     accepted only when allocation, prices, and snapshot all describe the
//     same epoch (the fetch loop re-anchors if a tick lands between them).
//     The mirror never merges, extrapolates, or trusts a partial read.
//
//   - Gap detection. The watch stream names each committed epoch. A
//     delivery at exactly local+1 is applied as a tail sync; anything else
//     (missed epochs on a flaky stream, coalescing after a stall, an epoch
//     that regressed because the broker restarted from an older journal) is
//     a gap: the mirror re-anchors with a full resync, which additionally
//     probes /healthz and detects a restarted upstream incarnation via the
//     recovered-epoch marker.
//
//   - Reconnection. Any stream or fetch failure sends the mirror through
//     capped exponential backoff with full jitter (a fleet of replicas
//     knocked over by one broker outage must not reconnect in lockstep),
//     followed by a full resync — after a truncated or garbled response
//     nothing downstream of the break is trusted.
//
//   - Graceful degradation. Every read is checked against an explicit
//     staleness bound. Within the bound, reads are served from memory;
//     beyond it the mirror returns a typed *StaleError (errors.Is
//     ErrStale) instead of a wrong-but-confident answer, and the HTTP
//     handler maps it to 503 + Retry-After. Freshness is confirmed both by
//     applying a new epoch and by an empty long-poll window (the broker
//     answering "nothing newer" proves the local state is current).
import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStale is the category sentinel for reads refused because the mirror
// cannot prove its state is within the staleness bound. errors.Is matches
// it against the *StaleError the read methods return.
var ErrStale = errors.New("spectrum: mirror state stale")

// StaleError reports a read refused by the staleness bound: how old the
// mirror's last confirmation is, the configured bound, and the epoch the
// mirror is stuck at (-1 before the first sync).
type StaleError struct {
	Epoch int
	Age   time.Duration
	Bound time.Duration
	// Lag is the epoch lag that tripped the bound when MaxLag is
	// configured (0 when the time bound tripped instead).
	Lag int
}

// Error implements error.
func (e *StaleError) Error() string {
	if e.Epoch < 0 {
		return "spectrum: mirror state stale: no sync yet"
	}
	if e.Lag > 0 {
		return fmt.Sprintf("spectrum: mirror state stale: %d epochs behind at epoch %d", e.Lag, e.Epoch)
	}
	return fmt.Sprintf("spectrum: mirror state stale: last confirmed %s ago at epoch %d (bound %s)",
		e.Age.Round(time.Millisecond), e.Epoch, e.Bound)
}

// Is matches ErrStale.
func (e *StaleError) Is(target error) bool { return target == ErrStale }

// MirrorConfig parameterizes a Mirror.
type MirrorConfig struct {
	// Client is the SDK client of the upstream broker (required). Its
	// *http.Client must not carry a global Timeout shorter than PollTimeout.
	Client *Client
	// MaxStaleness is the time bound: reads degrade to ErrStale when the
	// mirror has not confirmed its state current for longer than this.
	// Default 5s.
	MaxStaleness time.Duration
	// MaxLag additionally bounds the epoch lag: reads degrade when the
	// mirror has heard of an upstream epoch more than MaxLag ahead of what
	// it has applied. 0 disables the lag bound (the time bound remains).
	MaxLag int
	// PollTimeout is the long-poll window length. Default 25s.
	PollTimeout time.Duration
	// BaseBackoff and MaxBackoff shape the reconnect policy: full jitter
	// over an exponentially growing ceiling in [BaseBackoff, MaxBackoff].
	// Defaults 100ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed fixes the jitter stream (tests); 0 draws a random seed.
	Seed int64
}

// mirrorState is one consistently-captured epoch: the broker's exact
// response bytes plus their decoded forms.
type mirrorState struct {
	epoch     int
	allocRaw  []byte
	pricesRaw []byte // nil when the upstream serves prices as 404
	snapRaw   []byte
	alloc     Allocation
	prices    Prices
	pricesOK  bool
}

// Mirror is a resilient read replica of one broker. Construct with
// NewMirror, drive with Run (one goroutine), read from any goroutine.
type Mirror struct {
	c   *Client
	cfg MirrorConfig

	// rng jitters reconnect backoff; only the Run goroutine touches it.
	rng *rand.Rand

	mu      sync.RWMutex
	st      mirrorState
	synced  bool
	freshAt time.Time // last instant the state was confirmed current
	// lastHeard is the newest upstream epoch observed on the stream or a
	// health probe; lastHealth the newest upstream /healthz body (restart
	// detection compares recovered-epoch markers across resyncs).
	lastHeard  int
	lastHealth Health
	healthSeen bool
	// changed is closed and replaced whenever state advances; WaitForEpoch
	// blocks on it.
	changed chan struct{}

	syncs        atomic.Int64
	resyncs      atomic.Int64
	reconnects   atomic.Int64
	gaps         atomic.Int64
	restarts     atomic.Int64
	staleRejects atomic.Int64
}

// NewMirror creates a Mirror over the given upstream client. Run must be
// started for the mirror to sync.
func NewMirror(cfg MirrorConfig) (*Mirror, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("spectrum: MirrorConfig.Client is required")
	}
	if cfg.MaxStaleness <= 0 {
		cfg.MaxStaleness = 5 * time.Second
	}
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = 25 * time.Second
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Mirror{
		c:       cfg.Client,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		st:      mirrorState{epoch: -1},
		changed: make(chan struct{}),
	}, nil
}

// Run drives the sync loop until ctx ends: anchor with a full resync, then
// follow the watch stream, re-anchoring on gaps and reconnecting with
// jittered backoff on any failure. It returns ctx.Err() (it only ever
// stops because the context ended — upstream failures are retried forever;
// degradation is reported through the reads, not by giving up).
func (m *Mirror) Run(ctx context.Context) error {
	attempt := 0
	for {
		if err := m.resync(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			attempt++
			m.reconnects.Add(1)
			m.sleepBackoff(ctx, attempt)
			continue
		}
		attempt = 0
		if err := m.follow(ctx); ctx.Err() != nil {
			return ctx.Err()
		} else if err != nil {
			attempt++
			m.reconnects.Add(1)
			m.sleepBackoff(ctx, attempt)
		}
	}
}

// follow is the live loop: long-poll from the applied epoch, tail-sync
// contiguous deliveries, resync on gaps. Returns the error that broke the
// stream (a resync after reconnect re-anchors before polls resume).
func (m *Mirror) follow(ctx context.Context) error {
	for {
		local := m.appliedEpoch()
		rep, ok, err := m.c.Poll(ctx, local, m.cfg.PollTimeout)
		if err != nil {
			return err
		}
		if !ok {
			// Empty window: the broker answered "nothing newer than local"
			// — that is a freshness proof, not a failure.
			m.confirmFresh()
			continue
		}
		m.noteHeard(rep.Epoch)
		if rep.Epoch != local+1 {
			// Missed epochs (flaky stream, coalescing after a stall) or a
			// regression (broker restarted from an older journal): never
			// trust the tail across a gap — re-anchor from a full fetch.
			m.gaps.Add(1)
			if err := m.resync(ctx); err != nil {
				return err
			}
			continue
		}
		if err := m.applyTail(ctx, rep.Epoch); err != nil {
			if errors.Is(err, errEpochShifted) {
				// The broker ticked between our fetches; the stream itself
				// is healthy. Re-anchor at whatever is newest.
				if err := m.resync(ctx); err != nil {
					return err
				}
				continue
			}
			return err
		}
	}
}

// errEpochShifted marks a tail sync abandoned because the upstream
// committed another epoch between fetches.
var errEpochShifted = errors.New("spectrum: epoch advanced mid-fetch")

// applyTail applies exactly epoch want: every fetched body must describe it.
func (m *Mirror) applyTail(ctx context.Context, want int) error {
	st, err := m.fetchState(ctx, want)
	if err != nil {
		return err
	}
	m.install(st)
	return nil
}

// resync re-anchors the mirror from a full snapshot fetch: probe /healthz
// (restart detection), then fetch until allocation, prices, and snapshot
// agree on one epoch. Unlike a tail sync it accepts any consistent epoch —
// including one behind the previously applied epoch, which happens when
// the broker restarted from an older journal; serving the broker's real
// (older) state with an honest epoch number is correct, serving our newer
// ghost of a dead incarnation is not.
func (m *Mirror) resync(ctx context.Context) error {
	m.resyncs.Add(1)
	h, err := m.c.Health(ctx)
	if err != nil {
		return err
	}
	m.noteHealth(h)
	const consistentTries = 8
	for try := 0; try < consistentTries; try++ {
		st, err := m.fetchState(ctx, -1)
		if err == nil {
			m.install(st)
			return nil
		}
		if !errors.Is(err, errEpochShifted) {
			return err
		}
	}
	return fmt.Errorf("spectrum: resync: no consistent epoch after %d attempts (upstream ticking faster than it answers)", consistentTries)
}

// fetchState captures one epoch's full read state from the upstream. want
// >= 0 demands that exact epoch; want < 0 anchors on the snapshot's epoch.
// Every body must describe the same epoch or the fetch fails with
// errEpochShifted.
func (m *Mirror) fetchState(ctx context.Context, want int) (mirrorState, error) {
	var st mirrorState
	if err := m.c.do(ctx, http.MethodGet, "/v1/snapshot", nil, &st.snapRaw, true); err != nil {
		return st, err
	}
	var snapEpoch struct {
		Epoch int `json:"epoch"`
	}
	if err := json.Unmarshal(st.snapRaw, &snapEpoch); err != nil {
		return st, fmt.Errorf("spectrum: decode snapshot: %w", err)
	}
	st.epoch = snapEpoch.Epoch
	if want >= 0 && st.epoch != want {
		return st, errEpochShifted
	}
	if err := m.c.do(ctx, http.MethodGet, "/v1/allocation", nil, &st.allocRaw, true); err != nil {
		return st, err
	}
	if err := json.Unmarshal(st.allocRaw, &st.alloc); err != nil {
		return st, fmt.Errorf("spectrum: decode allocation: %w", err)
	}
	if st.alloc.Epoch != st.epoch {
		return st, errEpochShifted
	}
	err := m.c.do(ctx, http.MethodGet, "/v1/prices", nil, &st.pricesRaw, true)
	switch {
	case err == nil:
		if jerr := json.Unmarshal(st.pricesRaw, &st.prices); jerr != nil {
			return st, fmt.Errorf("spectrum: decode prices: %w", jerr)
		}
		if st.prices.Epoch != st.epoch {
			return st, errEpochShifted
		}
		st.pricesOK = true
	case errors.Is(err, ErrNotFound):
		// The upstream runs without pricing; mirror that answer.
		st.pricesRaw, st.pricesOK = nil, false
	default:
		return st, err
	}
	return st, nil
}

// install commits a consistently-fetched state and confirms freshness.
func (m *Mirror) install(st mirrorState) {
	m.mu.Lock()
	regressed := m.synced && st.epoch < m.st.epoch
	m.st = st
	m.synced = true
	m.freshAt = time.Now()
	if st.epoch > m.lastHeard {
		m.lastHeard = st.epoch
	}
	if regressed {
		// The upstream is a different incarnation (journal restore lost
		// epochs); our lastHeard belonged to the dead one.
		m.lastHeard = st.epoch
	}
	close(m.changed)
	m.changed = make(chan struct{})
	m.mu.Unlock()
	if regressed {
		m.restarts.Add(1)
	}
	m.syncs.Add(1)
}

// confirmFresh marks the applied state as confirmed current now.
func (m *Mirror) confirmFresh() {
	m.mu.Lock()
	m.freshAt = time.Now()
	close(m.changed)
	m.changed = make(chan struct{})
	m.mu.Unlock()
}

// noteHeard records the newest upstream epoch observed on the stream.
func (m *Mirror) noteHeard(epoch int) {
	m.mu.Lock()
	if epoch > m.lastHeard {
		m.lastHeard = epoch
	}
	m.mu.Unlock()
}

// noteHealth folds a /healthz probe into restart detection: a change of
// the recovered-epoch marker between probes means the upstream is a new
// incarnation restored from its journal.
func (m *Mirror) noteHealth(h Health) {
	m.mu.Lock()
	restarted := m.healthSeen && h.Recovered &&
		(!m.lastHealth.Recovered || m.lastHealth.RecoveredEpoch != h.RecoveredEpoch)
	m.lastHealth, m.healthSeen = h, true
	if h.Epoch > m.lastHeard {
		m.lastHeard = h.Epoch
	}
	m.mu.Unlock()
	if restarted {
		m.restarts.Add(1)
	}
}

// sleepBackoff sleeps the attempt's reconnect delay: full jitter over an
// exponential ceiling capped at MaxBackoff.
func (m *Mirror) sleepBackoff(ctx context.Context, attempt int) {
	ceiling := m.cfg.BaseBackoff << (attempt - 1)
	if ceiling > m.cfg.MaxBackoff || ceiling <= 0 {
		ceiling = m.cfg.MaxBackoff
	}
	d := time.Duration(m.rng.Int63n(int64(ceiling) + 1))
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// appliedEpoch is the epoch the mirror last applied (-1 before any sync).
func (m *Mirror) appliedEpoch() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.st.epoch
}

// Epoch returns the applied epoch and whether any state has been applied.
func (m *Mirror) Epoch() (int, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.st.epoch, m.synced
}

// staleCheck returns nil when reads may be served, or the *StaleError to
// refuse them with. Caller holds at least mu.RLock.
func (m *Mirror) staleCheck() error {
	if !m.synced {
		return &StaleError{Epoch: -1, Bound: m.cfg.MaxStaleness}
	}
	if age := time.Since(m.freshAt); age > m.cfg.MaxStaleness {
		return &StaleError{Epoch: m.st.epoch, Age: age, Bound: m.cfg.MaxStaleness}
	}
	if m.cfg.MaxLag > 0 && m.lastHeard-m.st.epoch > m.cfg.MaxLag {
		return &StaleError{Epoch: m.st.epoch, Bound: m.cfg.MaxStaleness, Lag: m.lastHeard - m.st.epoch}
	}
	return nil
}

// reject counts and returns a staleness refusal.
func (m *Mirror) reject(err error) error {
	m.staleRejects.Add(1)
	return err
}

// Allocation serves the applied epoch's allocation from memory, or
// *StaleError beyond the staleness bound.
func (m *Mirror) Allocation() (Allocation, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.staleCheck(); err != nil {
		return Allocation{}, m.reject(err)
	}
	out := m.st.alloc
	out.Winners = append([]Winner(nil), out.Winners...)
	return out, nil
}

// Prices serves the applied epoch's prices from memory. A mirror of an
// upstream that runs without pricing answers ErrNotFound, exactly as the
// broker would; beyond the staleness bound it answers *StaleError.
func (m *Mirror) Prices() (Prices, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.staleCheck(); err != nil {
		return Prices{}, m.reject(err)
	}
	if !m.st.pricesOK {
		return Prices{}, &APIError{Code: http.StatusNotFound, Msg: "prices disabled; start the broker with pricing enabled"}
	}
	out := Prices{Epoch: m.st.prices.Epoch, Prices: make(map[string]float64, len(m.st.prices.Prices))}
	for k, v := range m.st.prices.Prices {
		out.Prices[k] = v
	}
	return out, nil
}

// SnapshotJSON serves the applied epoch's /v1/snapshot body — the exact
// bytes the broker served for it — and the epoch it describes.
func (m *Mirror) SnapshotJSON() ([]byte, int, error) {
	return m.rawBody(func(st *mirrorState) []byte { return st.snapRaw })
}

// AllocationJSON serves the applied epoch's /v1/allocation body verbatim.
func (m *Mirror) AllocationJSON() ([]byte, int, error) {
	return m.rawBody(func(st *mirrorState) []byte { return st.allocRaw })
}

// PricesJSON serves the applied epoch's /v1/prices body verbatim (nil body
// with a nil error means the upstream serves prices as 404).
func (m *Mirror) PricesJSON() ([]byte, int, error) {
	return m.rawBody(func(st *mirrorState) []byte { return st.pricesRaw })
}

func (m *Mirror) rawBody(pick func(*mirrorState) []byte) ([]byte, int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.staleCheck(); err != nil {
		return nil, m.st.epoch, m.reject(err)
	}
	return pick(&m.st), m.st.epoch, nil
}

// WaitForEpoch blocks until the mirror has applied an epoch >= epoch, or
// ctx ends. It does not apply the staleness bound (the caller asked for a
// specific epoch, not for freshness).
func (m *Mirror) WaitForEpoch(ctx context.Context, epoch int) error {
	for {
		m.mu.RLock()
		applied, ok, ch := m.st.epoch, m.synced, m.changed
		m.mu.RUnlock()
		if ok && applied >= epoch {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Health reports the replica's position and degradation state.
func (m *Mirror) Health() MirrorHealth {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h := MirrorHealth{
		Epoch:     m.st.epoch,
		LastHeard: m.lastHeard,
		BoundMS:   m.cfg.MaxStaleness.Milliseconds(),
		Upstream:  m.c.base,
	}
	if m.synced {
		h.Lag = m.lastHeard - m.st.epoch
		h.StalenessMS = time.Since(m.freshAt).Milliseconds()
	}
	switch {
	case !m.synced:
		h.Status, h.Degraded = "syncing", true
	case m.staleCheck() != nil:
		h.Status, h.Degraded = "degraded", true
	default:
		h.Status = "ok"
	}
	return h
}

// Stats returns the lifetime resilience counters and staleness gauge.
func (m *Mirror) Stats() MirrorStats {
	m.mu.RLock()
	epoch, synced, freshAt := m.st.epoch, m.synced, m.freshAt
	m.mu.RUnlock()
	s := MirrorStats{
		Syncs:        m.syncs.Load(),
		Resyncs:      m.resyncs.Load(),
		Reconnects:   m.reconnects.Load(),
		GapEvents:    m.gaps.Load(),
		Restarts:     m.restarts.Load(),
		StaleRejects: m.staleRejects.Load(),
		Epoch:        epoch,
	}
	if synced {
		s.StalenessMS = time.Since(freshAt).Milliseconds()
	}
	return s
}
