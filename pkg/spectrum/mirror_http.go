package spectrum

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// NewMirrorHandler wraps a Mirror in the broker's read-side HTTP surface
// (cmd/brokerproxy serves it):
//
//	GET /v1/allocation   committed allocation       → 200 (broker's bytes) | 503 stale
//	GET /v1/prices       committed prices           → 200 (broker's bytes) | 404 | 503 stale
//	GET /v1/snapshot     committed snapshot         → 200 (broker's bytes) | 503 stale
//	GET /healthz         replica health             → 200 MirrorHealth | 503 degraded
//	GET /metrics         resilience counters        → 200 MirrorStats
//
// The /v1 read routes are additionally served under their legacy
// unversioned aliases, mirroring the broker. Bodies of the /v1 reads are
// the exact bytes the broker served for the applied epoch, so a client may
// be pointed at a replica with no observable difference — until the
// replica cannot prove freshness, in which case it answers 503 with a
// Retry-After instead of a wrong-but-confident 200.
func NewMirrorHandler(m *Mirror) http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"/v1", ""} {
		mux.HandleFunc(prefix+"/allocation", readOnly(func(w http.ResponseWriter, r *http.Request) {
			serveRaw(w, m, m.AllocationJSON)
		}))
		mux.HandleFunc(prefix+"/prices", readOnly(func(w http.ResponseWriter, r *http.Request) {
			serveRaw(w, m, m.PricesJSON)
		}))
		mux.HandleFunc(prefix+"/snapshot", readOnly(func(w http.ResponseWriter, r *http.Request) {
			serveRaw(w, m, m.SnapshotJSON)
		}))
		mux.HandleFunc(prefix+"/metrics", readOnly(func(w http.ResponseWriter, r *http.Request) {
			writeMirrorJSON(w, http.StatusOK, m.Stats())
		}))
	}
	mux.HandleFunc("/healthz", readOnly(func(w http.ResponseWriter, r *http.Request) {
		h := m.Health()
		code := http.StatusOK
		if h.Degraded {
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", retryAfterSecs(m))
		}
		writeMirrorJSON(w, code, h)
	}))
	// The broker's mutation routes answer 405 here rather than a bare 404,
	// so an SDK client mistakenly pointed at a replica for writes gets told
	// what is wrong. Their GET forms (bid status, watch) are not mirrored
	// and stay 404.
	for _, prefix := range []string{"/v1", ""} {
		for _, route := range []string{"/bids", "/bids/", "/batch"} {
			mux.HandleFunc(prefix+route, func(w http.ResponseWriter, r *http.Request) {
				if r.Method == http.MethodGet {
					writeMirrorJSON(w, http.StatusNotFound,
						map[string]string{"error": "route not mirrored; query the broker directly"})
					return
				}
				w.Header().Set("Allow", http.MethodGet)
				writeMirrorJSON(w, http.StatusMethodNotAllowed,
					map[string]string{"error": "read replica is read-only; send mutations to the upstream broker"})
			})
		}
	}
	return mux
}

// readOnly admits GET (and HEAD via GET semantics), answering anything else
// with the API's structured 405.
func readOnly(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeMirrorJSON(w, http.StatusMethodNotAllowed,
				map[string]string{"error": "method " + r.Method + " not allowed on a read replica; use GET (mutations go to the broker)"})
			return
		}
		fn(w, r)
	}
}

// serveRaw answers with the broker's stored bytes for one read route,
// degrading to 503 + Retry-After on staleness and to the broker's own 404
// semantics for disabled prices (nil body, nil error).
func serveRaw(w http.ResponseWriter, m *Mirror, read func() ([]byte, int, error)) {
	body, _, err := read()
	switch {
	case errors.Is(err, ErrStale):
		w.Header().Set("Retry-After", retryAfterSecs(m))
		writeMirrorJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	case err != nil:
		writeMirrorJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	case body == nil:
		writeMirrorJSON(w, http.StatusNotFound,
			map[string]string{"error": "prices disabled; start the broker with pricing enabled"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// retryAfterSecs advises a degraded reader when to come back: a quarter of
// the staleness bound, clamped to [1s, 30s] — long enough to shed load off
// a struggling replica, short enough to recover quickly once it resyncs.
func retryAfterSecs(m *Mirror) string {
	secs := int(m.cfg.MaxStaleness.Seconds() / 4)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

func writeMirrorJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
