package spectrum

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Typed error categories mirroring the API's status semantics. Errors
// returned by Client methods match these under errors.Is, and wrap the
// *APIError carrying the server's message.
var (
	// ErrBadRequest: the server rejected the payload (400) — fix it.
	ErrBadRequest = errors.New("spectrum: bad request")
	// ErrNotFound: unknown bidder id, or a disabled resource (404).
	ErrNotFound = errors.New("spectrum: not found")
	// ErrTooLarge: body over the server's byte limit or batch over its op
	// limit (413) — shrink the payload, splitting the batch if needed.
	ErrTooLarge = errors.New("spectrum: request too large")
	// ErrFull: the market is at its population cap (429) — retry later.
	ErrFull = errors.New("spectrum: market full")
	// ErrServer: a 5xx; the request may be retried.
	ErrServer = errors.New("spectrum: server error")
)

// APIError is a non-2xx API response: the HTTP status and the server's
// structured error message. errors.Is matches it against the category
// sentinels above. RetryAfter carries the response's Retry-After hint
// (zero when the server sent none); the retry loop honors it.
type APIError struct {
	Code       int
	Msg        string
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("spectrum: %d %s: %s", e.Code, http.StatusText(e.Code), e.Msg)
}

// Is maps the status code onto the category sentinels.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrBadRequest:
		return e.Code == http.StatusBadRequest
	case ErrNotFound:
		return e.Code == http.StatusNotFound
	case ErrTooLarge:
		return e.Code == http.StatusRequestEntityTooLarge
	case ErrFull:
		return e.Code == http.StatusTooManyRequests
	case ErrServer:
		return e.Code >= 500
	}
	return false
}

// Client is a typed client for the broker's /v1 API. The zero value is not
// usable; construct with NewClient. All methods are safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports). Watch long-polls hold a request open for up to the poll
// timeout, so a global http.Client.Timeout shorter than ~35s will surface
// as watch errors.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times idempotent requests (queries, watch
// polls, and batches in which every op carries an idempotency key) are
// retried after transport errors or 5xx responses. Default 2; 0 disables.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base delay between retries. The ceiling doubles per
// attempt; the actual sleep is drawn uniformly from [0, ceiling] ("full
// jitter"), so a fleet of clients knocked over by the same outage does not
// reconnect in lockstep. Default 100ms.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithMaxBackoff caps the per-attempt backoff ceiling (and any Retry-After
// hint the client honors). Default 5s.
func WithMaxBackoff(d time.Duration) Option { return func(c *Client) { c.maxBackoff = d } }

// NewClient returns a client for the broker at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string, opts ...Option) *Client {
	c := &Client{
		base:       base,
		hc:         &http.Client{},
		retries:    2,
		backoff:    100 * time.Millisecond,
		maxBackoff: 5 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// retryDelay is the sleep before retry attempt a (a >= 1): full jitter over
// an exponentially growing ceiling, capped at maxBackoff — except when the
// failed attempt carried a Retry-After hint, which is authoritative (the
// server knows when it will be ready; a small jitter is still added so
// hinted clients don't stampede either). Exposed as a function of the
// client so Mirror shares the policy.
func (c *Client) retryDelay(a int, lastErr error) time.Duration {
	ceiling := c.backoff << (a - 1)
	if ceiling > c.maxBackoff || ceiling <= 0 {
		ceiling = c.maxBackoff
	}
	d := time.Duration(rand.Int63n(int64(ceiling) + 1)) //reprovet:rngpurity retry jitter: timing-only randomness, deliberately unseeded and never observable in pinned streams
	var ae *APIError
	if errors.As(lastErr, &ae) && ae.RetryAfter > 0 {
		hint := ae.RetryAfter
		if hint > c.maxBackoff {
			hint = c.maxBackoff
		}
		jitter := time.Duration(rand.Int63n(int64(hint)/4 + 1)) //reprovet:rngpurity retry jitter on server hint: timing-only randomness
		d = hint + jitter
	}
	return d
}

// retryable reports whether an attempt's failure may be retried: transport
// errors, 5xx responses, and a 429 that carries a Retry-After hint (the
// server told us when to come back) — never other 4xx (the request itself
// is wrong) and never a 204 empty long-poll window (a successful response;
// the watch loop, not the retry budget, decides whether to poll again).
func retryable(err error) bool {
	if errors.Is(err, errNoContent) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code >= 500 || (ae.Code == http.StatusTooManyRequests && ae.RetryAfter > 0)
	}
	// A transport-level failure (connection refused, reset, ...).
	return err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// do runs one request, decoding a 2xx JSON body into out (out may be nil).
// idempotent requests are retried per the client's policy. wantNoContent
// reports a 204 as errNoContent without decoding.
func (c *Client) do(ctx context.Context, method, path string, body, out any, idempotent bool) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return fmt.Errorf("spectrum: encode request: %w", err)
		}
	}
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.retryDelay(a, err)):
			}
		}
		if err = c.once(ctx, method, path, raw, out); err == nil || !retryable(err) {
			return err
		}
	}
	return err
}

// errNoContent marks a 204 long-poll window that closed without an event.
var errNoContent = errors.New("spectrum: no content")

func (c *Client) once(ctx context.Context, method, path string, raw []byte, out any) error {
	var rd io.Reader
	if raw != nil {
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("spectrum: build request: %w", err)
	}
	if raw != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("spectrum: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return errNoContent
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return &APIError{Code: resp.StatusCode, Msg: e.Error, RetryAfter: retryAfter(resp)}
	}
	switch dst := out.(type) {
	case nil:
	case *[]byte:
		// Raw capture: the body verbatim (the Mirror stores and re-serves
		// these bytes, so its answers are byte-identical to the broker's).
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("spectrum: read %s %s: %w", method, path, err)
		}
		*dst = raw
	default:
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("spectrum: decode %s %s: %w", method, path, err)
		}
	}
	return nil
}

// retryAfter parses a Retry-After response header: delay-seconds or an
// HTTP-date (both forms are in the standard); absent or malformed is zero.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// Submit queues a bid; it becomes active at the broker's next epoch tick.
func (c *Client) Submit(ctx context.Context, bid Bid) (Accepted, error) {
	var acc Accepted
	err := c.do(ctx, http.MethodPost, "/v1/bids", bid, &acc, false)
	return acc, err
}

// SubmitBatch applies an ordered mutation list in one request. The returned
// results line up with ops index for index; a rejected item does not abort
// the rest (check each result's OK). The request is retried on transport
// failure only when every op carries an idempotency Key — a retried
// keyless batch could double-enqueue.
func (c *Client) SubmitBatch(ctx context.Context, ops []Op) (BatchResponse, error) {
	keyed := len(ops) > 0
	for _, op := range ops {
		keyed = keyed && op.Key != ""
	}
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/batch", BatchRequest{Ops: ops}, &out, keyed)
	if err == nil && len(out.Results) != len(ops) {
		return out, fmt.Errorf("spectrum: batch returned %d results for %d ops", len(out.Results), len(ops))
	}
	return out, err
}

// Update queues a valuation change (the valuation may switch between
// additive and XOR form); geometry is untouched, see Move.
func (c *Client) Update(ctx context.Context, id BidderID, v Values) (Accepted, error) {
	var acc Accepted
	err := c.do(ctx, http.MethodPut, "/v1/bids/"+itoa(id), v, &acc, false)
	return acc, err
}

// Move queues a geometry change: bid carries the new model-specific
// geometry and must carry no values.
func (c *Client) Move(ctx context.Context, id BidderID, bid Bid) (Accepted, error) {
	var acc Accepted
	err := c.do(ctx, http.MethodPost, "/v1/bids/"+itoa(id)+"/move", bid, &acc, false)
	return acc, err
}

// Withdraw queues a departure. Withdrawing a still-pending bid cancels it.
func (c *Client) Withdraw(ctx context.Context, id BidderID) (Accepted, error) {
	var acc Accepted
	err := c.do(ctx, http.MethodDelete, "/v1/bids/"+itoa(id), nil, &acc, false)
	return acc, err
}

// Bid returns one bidder's state in the last committed epoch.
func (c *Client) Bid(ctx context.Context, id BidderID) (BidState, error) {
	var st BidState
	err := c.do(ctx, http.MethodGet, "/v1/bids/"+itoa(id), nil, &st, true)
	return st, err
}

// Allocation returns the last committed epoch's winners and welfare.
func (c *Client) Allocation(ctx context.Context) (Allocation, error) {
	var a Allocation
	err := c.do(ctx, http.MethodGet, "/v1/allocation", nil, &a, true)
	return a, err
}

// Prices returns the last committed epoch's Lavi–Swamy payments. ErrNotFound
// when the broker runs without pricing.
func (c *Client) Prices(ctx context.Context) (Prices, error) {
	var p Prices
	err := c.do(ctx, http.MethodGet, "/v1/prices", nil, &p, true)
	return p, err
}

// Health returns the broker's liveness and durability state (whether
// commits are journaled, and the recovery epoch if this instance was
// restored from a journal).
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h, true)
	return h, err
}

// Poll performs one /v1/watch long-poll window: it blocks until an epoch
// strictly greater than since commits (ok=true and its report), the
// server's window closes empty (ok=false, nil error — the server answered;
// there is simply no newer epoch, which is itself useful liveness
// information: the caller's state is confirmed current), or the request
// fails. timeout <= 0 leaves the window length to the server.
func (c *Client) Poll(ctx context.Context, since int, timeout time.Duration) (rep EpochReport, ok bool, err error) {
	q := url.Values{"since": {strconv.Itoa(since)}}
	if timeout > 0 {
		q.Set("timeout", timeout.String())
	}
	err = c.do(ctx, http.MethodGet, "/v1/watch?"+q.Encode(), nil, &rep, true)
	switch {
	case err == nil:
		return rep, true, nil
	case errors.Is(err, errNoContent):
		return EpochReport{}, false, nil
	}
	return EpochReport{}, false, err
}

// WaitEpoch long-polls /v1/watch until an epoch strictly greater than since
// has committed, and returns its report. It re-polls through empty windows
// for as long as ctx lasts.
func (c *Client) WaitEpoch(ctx context.Context, since int) (EpochReport, error) {
	for {
		rep, ok, err := c.Poll(ctx, since, 0)
		if err != nil {
			return EpochReport{}, err
		}
		if ok {
			return rep, nil
		}
		if ctx.Err() != nil {
			return EpochReport{}, ctx.Err()
		}
	}
}

// WatchEvent is one delivery of a WatchEvents stream: an epoch report, or a
// terminal error (the final event before the channel closes).
type WatchEvent struct {
	Report EpochReport
	// Err, when non-nil, is why the stream is ending: the server became
	// unreachable past the retry budget, or ctx ended (ctx.Err() then).
	// Report is meaningless on an error event.
	Err error
}

// WatchEvents streams epoch-commit reports until ctx ends or the server
// becomes unreachable; unlike Watch, the reason the stream died is
// delivered as a final WatchEvent with Err set before the channel closes,
// so a consumer (e.g. a Mirror deciding whether to resync) can distinguish
// cancellation from a broken upstream instead of guessing from a closed
// channel. Commits that land while the previous report is being delivered
// coalesce to the newest one. since names the last epoch the caller has
// seen (-1 delivers the newest committed epoch immediately).
func (c *Client) WatchEvents(ctx context.Context, since int) <-chan WatchEvent {
	out := make(chan WatchEvent)
	go func() {
		defer close(out)
		for {
			rep, err := c.WaitEpoch(ctx, since)
			if err != nil {
				select {
				case out <- WatchEvent{Err: err}:
				case <-ctx.Done():
				}
				return
			}
			since = rep.Epoch
			select {
			case out <- WatchEvent{Report: rep}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// Watch streams epoch-commit reports on the returned channel until ctx ends
// or the server becomes unreachable, then closes it. Commits that land
// while the previous report is being delivered coalesce to the newest one,
// so a slow consumer observes the freshest state rather than an unbounded
// backlog. since names the last epoch the caller has seen (use the current
// epoch, or -1 for "deliver the newest committed epoch immediately").
// Callers that need the stream's terminal error should use WatchEvents.
func (c *Client) Watch(ctx context.Context, since int) <-chan EpochReport {
	out := make(chan EpochReport)
	go func() {
		defer close(out)
		for ev := range c.WatchEvents(ctx, since) {
			if ev.Err != nil {
				return
			}
			select {
			case out <- ev.Report:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

func itoa(id BidderID) string { return strconv.FormatInt(int64(id), 10) }
