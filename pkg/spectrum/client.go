package spectrum

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Typed error categories mirroring the API's status semantics. Errors
// returned by Client methods match these under errors.Is, and wrap the
// *APIError carrying the server's message.
var (
	// ErrBadRequest: the server rejected the payload (400) — fix it.
	ErrBadRequest = errors.New("spectrum: bad request")
	// ErrNotFound: unknown bidder id, or a disabled resource (404).
	ErrNotFound = errors.New("spectrum: not found")
	// ErrTooLarge: body over the server's byte limit or batch over its op
	// limit (413) — shrink the payload, splitting the batch if needed.
	ErrTooLarge = errors.New("spectrum: request too large")
	// ErrFull: the market is at its population cap (429) — retry later.
	ErrFull = errors.New("spectrum: market full")
	// ErrServer: a 5xx; the request may be retried.
	ErrServer = errors.New("spectrum: server error")
)

// APIError is a non-2xx API response: the HTTP status and the server's
// structured error message. errors.Is matches it against the category
// sentinels above.
type APIError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("spectrum: %d %s: %s", e.Code, http.StatusText(e.Code), e.Msg)
}

// Is maps the status code onto the category sentinels.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrBadRequest:
		return e.Code == http.StatusBadRequest
	case ErrNotFound:
		return e.Code == http.StatusNotFound
	case ErrTooLarge:
		return e.Code == http.StatusRequestEntityTooLarge
	case ErrFull:
		return e.Code == http.StatusTooManyRequests
	case ErrServer:
		return e.Code >= 500
	}
	return false
}

// Client is a typed client for the broker's /v1 API. The zero value is not
// usable; construct with NewClient. All methods are safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports). Watch long-polls hold a request open for up to the poll
// timeout, so a global http.Client.Timeout shorter than ~35s will surface
// as watch errors.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times idempotent requests (queries, watch
// polls, and batches in which every op carries an idempotency key) are
// retried after transport errors or 5xx responses. Default 2; 0 disables.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base delay between retries (doubling per attempt).
// Default 100ms.
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// NewClient returns a client for the broker at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string, opts ...Option) *Client {
	c := &Client{
		base:    base,
		hc:      &http.Client{},
		retries: 2,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// retryable reports whether an attempt's failure may be retried: transport
// errors and 5xx responses — never 4xx (the request itself is wrong) and
// never a 204 empty long-poll window (a successful response; the watch
// loop, not the retry budget, decides whether to poll again).
func retryable(err error) bool {
	if errors.Is(err, errNoContent) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code >= 500
	}
	// A transport-level failure (connection refused, reset, ...).
	return err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// do runs one request, decoding a 2xx JSON body into out (out may be nil).
// idempotent requests are retried per the client's policy. wantNoContent
// reports a 204 as errNoContent without decoding.
func (c *Client) do(ctx context.Context, method, path string, body, out any, idempotent bool) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return fmt.Errorf("spectrum: encode request: %w", err)
		}
	}
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.backoff << (a - 1)):
			}
		}
		if err = c.once(ctx, method, path, raw, out); err == nil || !retryable(err) {
			return err
		}
	}
	return err
}

// errNoContent marks a 204 long-poll window that closed without an event.
var errNoContent = errors.New("spectrum: no content")

func (c *Client) once(ctx context.Context, method, path string, raw []byte, out any) error {
	var rd io.Reader
	if raw != nil {
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("spectrum: build request: %w", err)
	}
	if raw != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("spectrum: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return errNoContent
	}
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return &APIError{Code: resp.StatusCode, Msg: e.Error}
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("spectrum: decode %s %s: %w", method, path, err)
		}
	}
	return nil
}

// Submit queues a bid; it becomes active at the broker's next epoch tick.
func (c *Client) Submit(ctx context.Context, bid Bid) (Accepted, error) {
	var acc Accepted
	err := c.do(ctx, http.MethodPost, "/v1/bids", bid, &acc, false)
	return acc, err
}

// SubmitBatch applies an ordered mutation list in one request. The returned
// results line up with ops index for index; a rejected item does not abort
// the rest (check each result's OK). The request is retried on transport
// failure only when every op carries an idempotency Key — a retried
// keyless batch could double-enqueue.
func (c *Client) SubmitBatch(ctx context.Context, ops []Op) (BatchResponse, error) {
	keyed := len(ops) > 0
	for _, op := range ops {
		keyed = keyed && op.Key != ""
	}
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/batch", BatchRequest{Ops: ops}, &out, keyed)
	if err == nil && len(out.Results) != len(ops) {
		return out, fmt.Errorf("spectrum: batch returned %d results for %d ops", len(out.Results), len(ops))
	}
	return out, err
}

// Update queues a valuation change (the valuation may switch between
// additive and XOR form); geometry is untouched, see Move.
func (c *Client) Update(ctx context.Context, id BidderID, v Values) (Accepted, error) {
	var acc Accepted
	err := c.do(ctx, http.MethodPut, "/v1/bids/"+itoa(id), v, &acc, false)
	return acc, err
}

// Move queues a geometry change: bid carries the new model-specific
// geometry and must carry no values.
func (c *Client) Move(ctx context.Context, id BidderID, bid Bid) (Accepted, error) {
	var acc Accepted
	err := c.do(ctx, http.MethodPost, "/v1/bids/"+itoa(id)+"/move", bid, &acc, false)
	return acc, err
}

// Withdraw queues a departure. Withdrawing a still-pending bid cancels it.
func (c *Client) Withdraw(ctx context.Context, id BidderID) (Accepted, error) {
	var acc Accepted
	err := c.do(ctx, http.MethodDelete, "/v1/bids/"+itoa(id), nil, &acc, false)
	return acc, err
}

// Bid returns one bidder's state in the last committed epoch.
func (c *Client) Bid(ctx context.Context, id BidderID) (BidState, error) {
	var st BidState
	err := c.do(ctx, http.MethodGet, "/v1/bids/"+itoa(id), nil, &st, true)
	return st, err
}

// Allocation returns the last committed epoch's winners and welfare.
func (c *Client) Allocation(ctx context.Context) (Allocation, error) {
	var a Allocation
	err := c.do(ctx, http.MethodGet, "/v1/allocation", nil, &a, true)
	return a, err
}

// Prices returns the last committed epoch's Lavi–Swamy payments. ErrNotFound
// when the broker runs without pricing.
func (c *Client) Prices(ctx context.Context) (Prices, error) {
	var p Prices
	err := c.do(ctx, http.MethodGet, "/v1/prices", nil, &p, true)
	return p, err
}

// Health returns the broker's liveness and durability state (whether
// commits are journaled, and the recovery epoch if this instance was
// restored from a journal).
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h, true)
	return h, err
}

// WaitEpoch long-polls /v1/watch until an epoch strictly greater than since
// has committed, and returns its report. It re-polls through empty windows
// for as long as ctx lasts.
func (c *Client) WaitEpoch(ctx context.Context, since int) (EpochReport, error) {
	path := "/v1/watch?" + url.Values{"since": {strconv.Itoa(since)}}.Encode()
	for {
		var rep EpochReport
		err := c.do(ctx, http.MethodGet, path, nil, &rep, true)
		if err == nil {
			return rep, nil
		}
		if !errors.Is(err, errNoContent) {
			return EpochReport{}, err
		}
		if ctx.Err() != nil {
			return EpochReport{}, ctx.Err()
		}
	}
}

// Watch streams epoch-commit reports on the returned channel until ctx ends
// or the server becomes unreachable, then closes it. Commits that land
// while the previous report is being delivered coalesce to the newest one,
// so a slow consumer observes the freshest state rather than an unbounded
// backlog. since names the last epoch the caller has seen (use the current
// epoch, or -1 for "deliver the newest committed epoch immediately").
func (c *Client) Watch(ctx context.Context, since int) <-chan EpochReport {
	out := make(chan EpochReport)
	go func() {
		defer close(out)
		for {
			rep, err := c.WaitEpoch(ctx, since)
			if err != nil {
				return
			}
			since = rep.Epoch
			select {
			case out <- rep:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

func itoa(id BidderID) string { return strconv.FormatInt(int64(id), 10) }
