// Command reprovet statically enforces this repository's determinism, RNG,
// and wire contracts (see internal/analysis for the rules).
//
// Two ways to run it:
//
//	# standalone, over package patterns (what scripts/lint.sh does):
//	go run ./cmd/reprovet ./...
//
//	# as a go vet backend (what CI does), covering test files too:
//	go build -o /tmp/reprovet ./cmd/reprovet
//	go vet -vettool=/tmp/reprovet ./...
//
// The vettool mode speaks cmd/go's vet protocol directly (the -V=full and
// -flags handshakes plus the per-package vet.cfg JSON), so it needs no
// golang.org/x/tools dependency: dependency types are read from the export
// data the go command already built.
//
// Exit status: 0 clean, 1 usage/internal error, 2 findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]

	// Protocol handshake 1: `reprovet -V=full` must print a single
	// "name version <id>" line; cmd/go folds it into its build cache key,
	// so the id hashes the binary (a rebuilt reprovet invalidates cached
	// vet verdicts).
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Printf("reprovet version %s\n", selfID())
		return
	}

	// Protocol handshake 2: `reprovet -flags` prints the tool's flags as
	// JSON; reprovet keeps zero flags, so the set is empty.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}

	if len(args) == 0 || args[0] == "-h" || args[0] == "-help" || args[0] == "--help" {
		usage()
		os.Exit(1)
	}

	// Vet protocol: the go command invokes `reprovet <objdir>/vet.cfg`
	// once per package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetMode(args[0]))
	}

	os.Exit(standalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: reprovet <packages>   (e.g. reprovet ./...)\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
}

// selfID returns a content hash of the running binary.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// vetConfig mirrors cmd/go's per-package vet.cfg JSON (the fields reprovet
// reads).
type vetConfig struct {
	ID           string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	VetxOnly     bool
	VetxOutput   string
	GoVersion    string

	SucceedOnTypecheckFailure bool
}

// vetMode analyzes the single package described by a vet.cfg.
func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprovet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reprovet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command caches and re-feeds the vetx (facts) output of each
	// package's vet run to its dependents; reprovet's analyzers are
	// fact-free, so an empty file suffices — but it must exist, or the go
	// command re-runs the tool every time.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "reprovet: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only for facts: nothing to analyze.
		return 0
	}

	pkg, err := analysis.CheckFiles(cfg.ImportPath, cfg.GoFiles, cfg.PackageFile, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "reprovet: %v\n", err)
		return 1
	}
	diags, err := analysis.RunAnalyzers(pkg, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprovet: %v\n", err)
		return 1
	}
	return report(diags)
}

// standalone loads package patterns itself (via go list -export) and
// analyzes every matched package.
func standalone(patterns []string) int {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprovet: %v\n", err)
		return 1
	}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "reprovet: %v\n", err)
			return 1
		}
		all = append(all, diags...)
	}
	return report(all)
}

func report(diags []analysis.Diagnostic) int {
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	return 2
}
