// Command specsolve generates, stores, and solves auction instances as JSON
// files, making experiment inputs archivable and replayable.
//
// Generate an instance and write it to a file:
//
//	specsolve -gen protocol -n 30 -k 4 -seed 7 -out inst.json
//
// Solve a stored instance:
//
//	specsolve -in inst.json [-derandomize] [-samples 25] [-mechanism]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/mechanism"
	"repro/internal/models"
	"repro/internal/serialize"
	"repro/internal/valuation"
)

func main() {
	gen := flag.String("gen", "", "generate an instance: disk | protocol | physical | powercontrol")
	n := flag.Int("n", 20, "number of bidders (with -gen)")
	k := flag.Int("k", 3, "number of channels (with -gen)")
	seed := flag.Int64("seed", 1, "random seed (with -gen)")
	delta := flag.Float64("delta", 1.0, "protocol-model Δ (with -gen protocol)")
	out := flag.String("out", "", "write the generated instance to this file")
	in := flag.String("in", "", "solve the instance stored in this file")
	derand := flag.Bool("derandomize", false, "use the deterministic rounding")
	samples := flag.Int("samples", 25, "rounding samples (without -derandomize)")
	mech := flag.Bool("mechanism", false, "also run the truthful mechanism and print payments")
	flag.Parse()

	switch {
	case *gen != "":
		inst := generate(*gen, *n, *k, *seed, *delta)
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := serialize.Write(w, inst); err != nil {
			log.Fatal(err)
		}
		if *out != "" {
			fmt.Printf("wrote %s (%s, n=%d, k=%d)\n", *out, inst.Conf.Model, inst.N(), inst.K)
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := serialize.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		solve(inst, *derand, *samples, *mech, *seed)
	default:
		fmt.Fprintln(os.Stderr, "specsolve: need -gen or -in (see -help)")
		os.Exit(2)
	}
}

func generate(model string, n, k int, seed int64, delta float64) *auction.Instance {
	rng := rand.New(rand.NewSource(seed))
	var conf *models.Conflict
	switch model {
	case "disk":
		centers := geom.UniformPoints(rng, n, 100)
		radii := make([]float64, n)
		for i := range radii {
			radii[i] = 3 + rng.Float64()*7
		}
		conf = models.Disk(centers, radii)
	case "protocol":
		conf = models.Protocol(geom.UniformLinks(rng, n, 100, 2, 8), delta)
	case "physical":
		conf = models.Physical(geom.UniformLinks(rng, n, 150, 1, 6), models.UniformPower, models.DefaultSINR())
	case "powercontrol":
		conf = models.PowerControl(geom.UniformLinks(rng, n, 250, 1, 6), models.DefaultSINR())
	default:
		log.Fatalf("specsolve: unknown model %q", model)
	}
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	inst, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		log.Fatal(err)
	}
	return inst
}

func solve(inst *auction.Instance, derand bool, samples int, mech bool, seed int64) {
	res, err := auction.Solve(inst, auction.Options{
		Seed: seed, Samples: samples, Derandomize: derand,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: n=%d, k=%d, rho ≤ %.2f\n", inst.Conf.Model, inst.N(), inst.K, inst.Conf.RhoBound)
	fmt.Printf("LP bound b* = %.3f (over %d columns, %d rounds)\n",
		res.LP.Value, res.LP.ColumnsGenerated, res.LP.Rounds)
	fmt.Printf("welfare = %.3f (proven factor %.1f, realized ratio %.2f)\n",
		res.Welfare, res.Factor, res.LP.Value/maxf(res.Welfare, 1e-9))
	for v, t := range res.Alloc {
		if t != valuation.Empty {
			fmt.Printf("  bidder %d: channels %v, value %.3f\n", v, t.Channels(), inst.Bidders[v].Value(t))
		}
	}
	if mech {
		outm, err := mechanism.Run(inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmechanism: E[welfare] = %.4f (= b*/α with α = %.1f), decomposition error %.2e\n",
			outm.ExpectedWelfare, outm.Alpha, outm.DecompositionError)
		for v, p := range outm.Payments {
			if p > 1e-9 {
				fmt.Printf("  bidder %d pays %.4f\n", v, p)
			}
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
