// Command brokerproxy is the resilient read-replica tier of the live
// spectrum broker: it follows one upstream brokerd over the /v1/watch
// long-poll (pkg/spectrum's Mirror), keeps a committed-epoch copy of the
// allocation, prices, and snapshot in memory, and serves the broker's read
// routes locally at memory speed. Point dashboards, auditors, and
// read-heavy tooling here; point mutations at the broker.
//
// The replica's contract is explicit staleness, never silent wrongness: a
// read at epoch E returns byte-for-byte what the broker itself served at E,
// and when the proxy cannot prove its state fresh within -max-staleness it
// answers 503 + Retry-After instead of a confident stale 200. Gaps in the
// watch stream (missed epochs, broker restarts) trigger a full resync;
// stream failures reconnect with capped exponential backoff plus jitter.
//
// Quickstart:
//
//	brokerd -addr :8080 -k 4 -epoch 250ms &
//	brokerproxy -addr :8081 -upstream http://127.0.0.1:8080
//	curl -s localhost:8081/v1/allocation     # the broker's bytes, locally
//	curl -s localhost:8081/healthz           # lag, last-sync epoch, degraded flag
//	curl -s localhost:8081/metrics           # resyncs, reconnects, gap events, staleness
//
// -selftest runs the whole tier against a deliberately hostile network and
// exits: an in-process journaled broker is fronted by a fault-injection TCP
// proxy (internal/chaos) that resets connections mid-body, truncates
// responses, stalls silently, and injects latency; churn load replays
// through the broker while the Mirror follows through the chaos; the broker
// is hard-killed mid-load and restored from its journal; and a full network
// blackout forces the replica into degraded mode. The run passes only if
// the replica converges to the broker's exact final bytes, serves 503
// during the blackout, and exits degraded mode after it lifts.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/broker"
	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/market"
	"repro/pkg/spectrum"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8081", "HTTP listen address of the replica")
		upstream     = flag.String("upstream", "", "base URL of the broker to mirror (e.g. http://127.0.0.1:8080)")
		maxStaleness = flag.Duration("max-staleness", 5*time.Second, "serve reads only while state was confirmed current within this bound; beyond it reads are 503")
		maxLag       = flag.Int("max-lag", 0, "additionally degrade when the applied epoch lags the newest heard epoch by more than this (0 = time bound only)")
		pollTimeout  = flag.Duration("poll-timeout", 25*time.Second, "upstream /v1/watch long-poll window")
		baseBackoff  = flag.Duration("backoff", 100*time.Millisecond, "base reconnect backoff (full jitter, exponential)")
		maxBackoff   = flag.Duration("max-backoff", 5*time.Second, "reconnect backoff ceiling")
		verbose      = flag.Bool("v", false, "log every degraded/recovered transition and resync")
		selftest     = flag.Bool("selftest", false, "run the fault-injection smoke against an in-process broker and exit")
		seed         = flag.Int64("seed", 1, "selftest trace and fault-schedule seed")
	)
	flag.Parse()

	if *selftest {
		if err := runSelftest(*seed); err != nil {
			log.Printf("brokerproxy: SELFTEST FAILED: %v", err)
			os.Exit(1)
		}
		log.Printf("brokerproxy: selftest passed")
		return
	}
	if *upstream == "" {
		log.Fatal("brokerproxy: pass -upstream (or -selftest)")
	}

	client := spectrum.NewClient(*upstream,
		spectrum.WithBackoff(*baseBackoff), spectrum.WithMaxBackoff(*maxBackoff))
	m, err := spectrum.NewMirror(spectrum.MirrorConfig{
		Client:       client,
		MaxStaleness: *maxStaleness,
		MaxLag:       *maxLag,
		PollTimeout:  *pollTimeout,
		BaseBackoff:  *baseBackoff,
		MaxBackoff:   *maxBackoff,
		Seed:         *seed,
	})
	if err != nil {
		log.Fatalf("brokerproxy: %v", err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		_ = m.Run(ctx)
	}()
	if *verbose {
		go logTransitions(ctx, m)
	}

	srv := &http.Server{Addr: *addr, Handler: spectrum.NewMirrorHandler(m)}
	go func() {
		<-ctx.Done()
		shctx, shcancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer shcancel()
		_ = srv.Shutdown(shctx)
	}()
	log.Printf("brokerproxy: mirroring %s on %s (max-staleness=%s max-lag=%d)",
		*upstream, *addr, *maxStaleness, *maxLag)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("brokerproxy: %v", err)
	}
}

// logTransitions polls the mirror's health and logs degraded/recovered edges
// plus resync activity — operational visibility without log spam per epoch.
func logTransitions(ctx context.Context, m *spectrum.Mirror) {
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	degraded := false
	var lastResyncs int64
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		h := m.Health()
		if h.Degraded != degraded {
			degraded = h.Degraded
			if degraded {
				log.Printf("brokerproxy: DEGRADED at epoch %d (staleness %dms > bound %dms)",
					h.Epoch, h.StalenessMS, h.BoundMS)
			} else {
				log.Printf("brokerproxy: recovered, serving epoch %d", h.Epoch)
			}
		}
		if st := m.Stats(); st.Resyncs != lastResyncs {
			log.Printf("brokerproxy: resyncs=%d reconnects=%d gaps=%d restarts=%d (epoch %d)",
				st.Resyncs, st.Reconnects, st.GapEvents, st.Restarts, st.Epoch)
			lastResyncs = st.Resyncs
		}
	}
}

// --- selftest -------------------------------------------------------------

// stack is the restartable in-process broker of the selftest (the same
// shape brokerload's -local uses): journaled broker + HTTP server + ticker,
// killable without a clean close and restorable on the same address.
type stack struct {
	dir  string
	addr string
	tick time.Duration

	b    *broker.Broker
	w    *journal.Writer
	srv  *http.Server
	stop chan struct{}
	done chan struct{}
}

func (s *stack) factory() (*broker.Broker, error) {
	cm, err := broker.ModelByName("disk", 1)
	if err != nil {
		return nil, err
	}
	return broker.New(broker.Config{K: 4, Model: cm, MaxBidders: 4096, Prices: true})
}

func (s *stack) start() error {
	var err error
	s.b, s.w, _, err = journal.Open(s.dir, s.factory, journal.Options{Sync: journal.SyncAlways, SnapshotEvery: 64})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return err
	}
	s.addr = ln.Addr().String()
	s.srv = &http.Server{Handler: broker.NewHandler(s.b)}
	go s.srv.Serve(ln)
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func(stop, done chan struct{}, b *broker.Broker) {
		defer close(done)
		t := time.NewTicker(s.tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				b.Tick()
			}
		}
	}(s.stop, s.done, s.b)
	return nil
}

func (s *stack) stopTicker() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
}

func (s *stack) crash() {
	s.srv.Close()
	s.w.Abort()
	s.b, s.w, s.srv = nil, nil, nil
}

// runSelftest exercises the replica tier end to end through a hostile
// network; see the package comment for the scenario.
func runSelftest(seed int64) error {
	dir, err := os.MkdirTemp("", "brokerproxy-selftest-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	st := &stack{dir: dir, addr: "127.0.0.1:0", tick: 50 * time.Millisecond}
	if err := st.start(); err != nil {
		return err
	}
	defer func() {
		if st.srv != nil {
			st.stopTicker()
			st.srv.Close()
			if st.w != nil {
				st.w.Close()
			}
		}
	}()

	// The Mirror sees the broker only through the chaos proxy: every third
	// connection is injured (reset / truncate / stall in rotation) and every
	// chunk is delayed.
	cp, err := chaos.New(st.addr, chaos.Config{
		Seed:            seed,
		FaultEvery:      3,
		FaultAfterBytes: 200,
		StallFor:        300 * time.Millisecond,
		Latency:         time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer cp.Close()

	const maxStaleness = 1500 * time.Millisecond
	// No keep-alives: every request dials a fresh connection, so the chaos
	// schedule (every 3rd connection) injures a meaningful share of traffic.
	mc := spectrum.NewClient(cp.URL(), spectrum.WithHTTPClient(&http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
	}))
	m, err := spectrum.NewMirror(spectrum.MirrorConfig{
		Client:       mc,
		MaxStaleness: maxStaleness,
		PollTimeout:  500 * time.Millisecond,
		BaseBackoff:  20 * time.Millisecond,
		MaxBackoff:   200 * time.Millisecond,
		Seed:         seed,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go m.Run(ctx)

	// The replica's public face: the proxy HTTP surface under test.
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	psrv := &http.Server{Handler: spectrum.NewMirrorHandler(m)}
	go psrv.Serve(pln)
	defer psrv.Close()
	proxyURL := "http://" + pln.Addr().String()

	// Churn load straight at the broker (mutations are not under test; the
	// read path is), killing and journal-restoring the broker halfway.
	direct := spectrum.NewClient("http://" + st.addr)
	tr := market.GenTrace(market.TraceConfig{
		Seed: seed, Epochs: 24, K: 4, Side: 300,
		ArrivalRate: 6, MeanLifetime: 5, MaxUsers: 120, Model: "disk",
	})
	replay := market.NewOpsReplayer(tr, true)
	step := 0
	for {
		ops, more, err := replay.Step()
		if err != nil {
			return err
		}
		res, err := direct.SubmitBatch(ctx, ops)
		if err != nil {
			return fmt.Errorf("load step %d: %w", step, err)
		}
		if err := replay.Observe(res.Results); err != nil {
			return err
		}
		if !more {
			break
		}
		step++
		if step == 12 {
			// Hard-kill mid-load, restore from the journal on the same
			// address. The Mirror must detect the restart and re-anchor.
			// One flushing tick first: queued-but-uncommitted mutations are
			// legitimately lost in a crash (the journal is per committed
			// epoch), but this smoke tests the read path, so the replay must
			// keep its id mapping valid across the restore.
			st.stopTicker()
			st.b.Tick()
			preEpoch := st.b.Epoch()
			st.crash()
			if err := st.start(); err != nil {
				return fmt.Errorf("restore: %w", err)
			}
			if got := st.b.Epoch(); got != preEpoch {
				return fmt.Errorf("restored epoch %d, killed at %d", got, preEpoch)
			}
			log.Printf("brokerproxy: selftest killed broker at epoch %d and restored it", preEpoch)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Quiesce: stop ticking, commit one final epoch, and demand the replica
	// converge to the broker's exact bytes.
	st.stopTicker()
	st.b.Tick()
	final := st.b.Epoch()
	if err := waitHealthy(proxyURL, final, 15*time.Second); err != nil {
		return fmt.Errorf("replica did not converge to epoch %d: %w", final, err)
	}
	for _, route := range []string{"/v1/snapshot", "/v1/allocation", "/v1/prices"} {
		want, code, err := httpGet("http://"+st.addr+route, "")
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("broker %s: code %d err %v", route, code, err)
		}
		got, code, err := httpGet(proxyURL+route, "")
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("replica %s: code %d err %v", route, code, err)
		}
		if !bytes.Equal(want, got) {
			return fmt.Errorf("replica %s differs from broker at epoch %d (%d vs %d bytes)",
				route, final, len(got), len(want))
		}
	}
	log.Printf("brokerproxy: selftest converged byte-identically at epoch %d (%d bidders)", final, countWinners(m))

	// Blackout: the replica must degrade honestly (503 + Retry-After), then
	// recover once the network returns.
	cp.SetBlackout(true)
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, code, err := httpGet(proxyURL+"/v1/snapshot", "")
		if err == nil && code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica never degraded during blackout (last code %d err %v)", code, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if _, code, _ := httpGet(proxyURL+"/healthz", ""); code != http.StatusServiceUnavailable {
		return fmt.Errorf("degraded /healthz code %d, want 503", code)
	}
	if _, _, ra, _ := httpGetH(proxyURL + "/v1/snapshot"); ra == "" {
		return fmt.Errorf("degraded read missing Retry-After")
	}
	log.Printf("brokerproxy: selftest blackout degraded the replica as required")

	cp.SetBlackout(false)
	// The broker was up the whole time — only the network was dark. One
	// more commit proves the replica is following again, not serving a
	// resurrected cache.
	st.b.Tick()
	if err := waitHealthy(proxyURL, st.b.Epoch(), 15*time.Second); err != nil {
		return fmt.Errorf("replica did not exit degraded mode: %w", err)
	}
	stats := m.Stats()
	log.Printf("brokerproxy: selftest recovered to epoch %d (syncs=%d resyncs=%d reconnects=%d gaps=%d restarts=%d; chaos: %d conns, faults %v)",
		st.b.Epoch(), stats.Syncs, stats.Resyncs, stats.Reconnects, stats.GapEvents, stats.Restarts,
		cp.Stats().Conns, cp.Stats().Injected)
	if stats.Reconnects == 0 {
		return fmt.Errorf("fault injection never forced a reconnect — the smoke did not smoke")
	}
	if stats.Restarts == 0 {
		return fmt.Errorf("broker kill/restore was not detected as a restart")
	}
	return nil
}

// waitHealthy polls the replica's /healthz until it reports a non-degraded
// state at exactly epoch want.
func waitHealthy(proxyURL string, want int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last string
	for {
		body, code, err := httpGet(proxyURL+"/healthz", "")
		if err == nil && code == http.StatusOK {
			var h spectrum.MirrorHealth
			if jerr := json.Unmarshal(body, &h); jerr == nil {
				if !h.Degraded && h.Epoch == want {
					return nil
				}
				last = fmt.Sprintf("epoch %d degraded=%v", h.Epoch, h.Degraded)
			}
		} else {
			last = fmt.Sprintf("code %d err %v", code, err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout (last health: %s)", last)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func httpGet(url, _ string) ([]byte, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}

func httpGetH(url string) ([]byte, int, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, resp.Header.Get("Retry-After"), err
}

func countWinners(m *spectrum.Mirror) int {
	a, err := m.Allocation()
	if err != nil {
		return -1
	}
	return len(a.Winners)
}
