// Command brokerd runs the live spectrum broker: the "eBay in the Sky"
// application of the paper's introduction as a long-running HTTP service.
// Bids arrive and depart over the JSON API (see internal/broker); every
// -epoch interval the broker closes the batch, re-solves the dirty conflict
// components (warm-started, sharded across cores), and commits a new
// allocation.
//
// The interference backend is pluggable (-model): disk transmitters
// (Proposition 9, the default), distance-2 coloring on the disk graph
// (Proposition 11), the protocol model (-delta, Proposition 13), or
// bidirectional IEEE 802.11. Disk models take {"pos", "radius"} geometry;
// link models take {"link": {"sender", "receiver"}}. Values are additive
// ("values": [...]) or XOR atoms ("xor": [{"channels", "value"}, ...]).
//
// Quickstart:
//
//	brokerd -addr :8080 -k 4 -epoch 250ms
//	curl -s -X POST localhost:8080/v1/bids \
//	     -d '{"pos":{"x":10,"y":20},"radius":5,"values":[3,1,4,1]}'
//	curl -s localhost:8080/v1/bids/1
//	curl -s localhost:8080/v1/allocation
//	curl -s localhost:8080/v1/metrics
//
//	brokerd -model protocol -delta 1 -k 4
//	curl -s -X POST localhost:8080/v1/bids \
//	     -d '{"link":{"sender":{"x":0,"y":0},"receiver":{"x":5,"y":2}},"xor":[{"channels":[0,1],"value":9}]}'
//
// With -data-dir the broker is durable: every committed epoch is appended
// to a write-ahead op journal (fsynced per -sync), periodically folded into
// a full-market snapshot (-snapshot-every), and on startup the newest valid
// snapshot plus the journal tail are replayed so the market resumes exactly
// where the previous process died:
//
//	brokerd -data-dir /var/lib/brokerd -sync always
//	curl -s localhost:8080/healthz          # {"status":"ok",...,"recovered_epoch":N}
//
// -selftest replays a churn trace from the shared generator (internal/
// market's GenTrace — the same workload market.Run and experiments E17/E18
// use) through the full HTTP stack for the given duration under EVERY
// interference backend in turn (each gets its own broker, listener, and
// ticker), mixing XOR bidders into the stream, then verifies each backend's
// final committed allocation against a from-scratch solve of its snapshot.
// The replay drives the daemon exclusively through the public SDK
// (pkg/spectrum): each trace step is one POST /v1/batch, and quiescing rides
// the /v1/watch long-poll. Each selftest backend runs journaled into a
// temporary data directory; after the from-scratch check the broker is
// hard-killed and restored from its journal, and the restored allocation,
// prices, and epoch must match the live ones.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/auction"
	"repro/internal/broker"
	"repro/internal/journal"
	"repro/internal/market"
	"repro/internal/scenario"
	"repro/internal/serialize"
	"repro/internal/valuation"
	"repro/pkg/spectrum"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "HTTP listen address (the API is unauthenticated; bind non-loopback deliberately)")
		k          = flag.Int("k", 4, "number of channels")
		model      = flag.String("model", "disk", "interference backend: disk, distance2, protocol, or ieee80211")
		delta      = flag.Float64("delta", 1, "guard-zone parameter Δ of the protocol and ieee80211 models")
		epoch      = flag.Duration("epoch", 250*time.Millisecond, "epoch batching interval")
		workers    = flag.Int("workers", 0, "solver fan-out (0 = GOMAXPROCS)")
		maxBidders = flag.Int("max-bidders", broker.DefaultMaxBidders, "active population cap")
		prices     = flag.Bool("prices", false, "serve Lavi–Swamy payments per epoch (costlier)")
		cold       = flag.Bool("cold", false, "disable caching and warm starts (reference mode)")
		verbose    = flag.Bool("v", false, "log every epoch report")
		dataDir    = flag.String("data-dir", "", "directory for the write-ahead op journal and snapshots; empty runs in-memory only (a crash loses the market)")
		syncMode   = flag.String("sync", "always", "journal fsync policy: always (per epoch), interval (per -sync-every), or none")
		syncEvery  = flag.Duration("sync-every", 100*time.Millisecond, "fsync window of -sync interval")
		snapEvery  = flag.Int("snapshot-every", 512, "epochs between full-market snapshots (journal truncation); negative disables")
		selftest   = flag.Duration("selftest", 0, "replay the built-in load generator for this long per interference backend, verify each (incl. a journal kill/restore round-trip), and exit")
		seed       = flag.Int64("seed", 1, "selftest trace seed")
		rate       = flag.Float64("rate", 6, "selftest mean arrivals per trace epoch")
	)
	flag.Parse()

	syncPol, err := journal.ParseSyncPolicy(*syncMode)
	if err != nil {
		log.Fatalf("brokerd: %v", err)
	}
	jopts := journal.Options{Sync: syncPol, SyncInterval: *syncEvery, SnapshotEvery: *snapEvery}

	if *selftest > 0 {
		for _, name := range broker.ModelNames() {
			cfg := broker.Config{
				K:          *k,
				Workers:    *workers,
				MaxBidders: *maxBidders,
				Prices:     *prices,
				Cold:       *cold,
			}
			if err := selftestBackend(name, *delta, cfg, *selftest, *epoch, *seed, *rate); err != nil {
				log.Printf("brokerd: SELFTEST FAILED (%s): %v", name, err)
				os.Exit(1)
			}
		}
		// Scenario phase: a mobility workload (Move ops through /v1/batch
		// against the free-running ticker) and the lease workload (every
		// retirement broker-enforced), each re-verified from scratch.
		for _, scName := range []string{"vehicular", "leases"} {
			cfg := broker.Config{
				K:          *k,
				Workers:    *workers,
				MaxBidders: *maxBidders,
				Prices:     *prices,
				Cold:       *cold,
			}
			if err := selftestScenario(scName, cfg, *selftest, *epoch, *seed); err != nil {
				log.Printf("brokerd: SELFTEST FAILED (scenario %s): %v", scName, err)
				os.Exit(1)
			}
		}
		log.Printf("brokerd: selftest passed for all backends (%v) and scenarios (cold=%v prices=%v)", broker.ModelNames(), *cold, *prices)
		os.Exit(0)
	}

	factory := func() (*broker.Broker, error) {
		cm, err := broker.ModelByName(*model, *delta)
		if err != nil {
			return nil, err
		}
		return broker.New(broker.Config{
			K:          *k,
			Model:      cm,
			Workers:    *workers,
			MaxBidders: *maxBidders,
			Prices:     *prices,
			Cold:       *cold,
		})
	}

	var (
		b *broker.Broker
		w *journal.Writer
	)
	var handlerOpts []broker.HandlerOption
	if *dataDir != "" {
		var rec *journal.Recovery
		b, w, rec, err = journal.Open(*dataDir, factory, jopts)
		if err != nil {
			log.Fatalf("brokerd: open journal: %v", err)
		}
		log.Printf("brokerd: recovered %s: snapshot epoch %d + %d journal records → epoch %d (torn tail %dB, %d orphans removed)",
			*dataDir, rec.SnapshotEpoch, rec.Records, rec.Epoch, rec.TornBytes, len(rec.Orphans))
		handlerOpts = append(handlerOpts, broker.WithJournalMetrics(func() any { return w.Stats() }))
	} else if b, err = factory(); err != nil {
		log.Fatalf("brokerd: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("brokerd: listen %s: %v", *addr, err)
	}
	srv := &http.Server{Handler: broker.NewHandler(b, handlerOpts...)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("brokerd: serve: %v", err)
		}
	}()
	log.Printf("brokerd: serving on %s (model=%s k=%d epoch=%s cold=%v prices=%v durable=%v)",
		ln.Addr(), b.Model().Name(), *k, *epoch, *cold, *prices, *dataDir != "")

	stopTicker := make(chan struct{})
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(*epoch)
		defer t.Stop()
		for {
			select {
			case <-stopTicker:
				return
			case <-t.C:
				rep := b.Tick()
				if w != nil {
					if err := w.Err(); err != nil {
						// A failed journal means acknowledged commits would be
						// silently volatile; refuse to limp along.
						log.Fatalf("brokerd: journal failed at epoch %d: %v", rep.Epoch, err)
					}
				}
				if *verbose {
					log.Printf("epoch %d: active=%d comps=%d (clean=%d warm=%d rebuilt=%d) welfare=%.2f lp=%.2f half=%d lat=%s",
						rep.Epoch, rep.Active, rep.Components, rep.Clean, rep.WarmResolves,
						rep.Rebuilds, rep.Welfare, rep.LPValue, rep.HalfChosen, rep.Latency)
				}
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("brokerd: %v, shutting down", s)
	close(stopTicker)
	<-tickerDone
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("brokerd: shutdown: %v", err)
	}
	if w != nil {
		// Fold the tail into a snapshot so the next start replays nothing.
		if err := w.SnapshotNow(); err != nil {
			log.Printf("brokerd: shutdown snapshot: %v", err)
		}
		if err := w.Close(); err != nil {
			log.Printf("brokerd: close journal: %v", err)
		}
	}
	m := b.Metrics()
	log.Printf("brokerd: stopped after %d epochs: %d submitted, %d withdrawn, %d updated, total welfare %.2f (clean=%d warm=%d rebuilt=%d)",
		m.Epochs, m.Submitted, m.Withdrawn, m.Updated, m.TotalWelfare,
		m.CleanTotal, m.WarmTotal, m.RebuildTotal)
}

// selftestBackend stands up a complete durable daemon — a broker built from
// the CLI-configured Config (so -cold, -prices, and -max-bidders apply to
// the selftest too) with the named interference backend, a journal in a
// temporary data directory, TCP listener, HTTP server, epoch ticker —
// replays a trace against it, verifies, then hard-kills the broker and
// checks that the journal restores it exactly.
func selftestBackend(name string, delta float64, cfg broker.Config, dur, epoch time.Duration, seed int64, rate float64) error {
	factory := func() (*broker.Broker, error) {
		cm, err := broker.ModelByName(name, delta)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Model = cm
		return broker.New(c)
	}
	dir, err := os.MkdirTemp("", "brokerd-selftest-"+name+"-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	// A small snapshot interval so the selftest exercises truncation too.
	b, w, _, err := journal.Open(dir, factory, journal.Options{Sync: journal.SyncAlways, SnapshotEvery: 64})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: broker.NewHandler(b, broker.WithJournalMetrics(func() any { return w.Stats() }))}
	serveErr := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr <- err
		}
		close(serveErr)
	}()
	stopTicker := make(chan struct{})
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(epoch)
		defer t.Stop()
		for {
			select {
			case <-stopTicker:
				return
			case <-t.C:
				b.Tick()
			}
		}
	}()
	runErr := runSelftest(fmt.Sprintf("http://%s", ln.Addr()), b, name, dur, epoch, seed, rate, cfg.K)
	close(stopTicker)
	<-tickerDone
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && runErr == nil {
		runErr = err
	}
	if err := <-serveErr; err != nil && runErr == nil {
		runErr = err
	}
	if runErr == nil {
		runErr = verifyRestore(b, w, dir, factory, cfg.Prices)
	}
	return runErr
}

// selftestScenario replays one named workload from internal/scenario through
// the full HTTP stack: an in-memory broker, listener, and free-running epoch
// ticker, driven one POST /v1/batch per trace step via the public SDK. The
// mobility scenarios push Move ops through the API at epoch rate; the lease
// scenario submits TTL'd bids and never withdraws, so every departure is
// broker-enforced. After the replay the committed allocation is verified
// against a from-scratch solve, and the scenario's own machinery must have
// fired (moves applied, leases expired).
func selftestScenario(name string, cfg broker.Config, dur, epoch time.Duration, seed int64) error {
	sc, err := scenario.ByName(name)
	if err != nil {
		return err
	}
	if sc.MaxBidders > 0 {
		cfg.MaxBidders = sc.MaxBidders
	}
	b, err := broker.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: broker.NewHandler(b)}
	go srv.Serve(ln)
	stopTicker := make(chan struct{})
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(epoch)
		defer t.Stop()
		for {
			select {
			case <-stopTicker:
				return
			case <-t.C:
				b.Tick()
			}
		}
	}()
	defer srv.Close()

	ctx := context.Background()
	client := spectrum.NewClient(fmt.Sprintf("http://%s", ln.Addr()))
	p := scenario.Params{Seed: seed, Epochs: int(dur/epoch) + 8, K: cfg.K}
	replay := market.NewOpsReplayer(sc.Trace(p), true)
	replay.Lenient() // scenario 429 pressure is workload, not failure
	deadline := time.Now().Add(dur)
	runErr := func() error {
		for time.Now().Before(deadline) {
			ops, more, err := replay.Step()
			if err != nil {
				return err
			}
			if len(ops) > 0 {
				res, err := client.SubmitBatch(ctx, ops)
				if err != nil {
					return err
				}
				if err := replay.Observe(res.Results); err != nil {
					return err
				}
			}
			if !more {
				break
			}
			time.Sleep(epoch)
		}
		return nil
	}()
	close(stopTicker)
	<-tickerDone
	if runErr != nil {
		return runErr
	}
	n, welfare, err := verifyFinal(b)
	if err != nil {
		return err
	}
	m := b.Metrics()
	switch sc {
	case scenario.Vehicular, scenario.Pedestrian:
		if m.Moved == 0 || replay.Moves() == 0 {
			return fmt.Errorf("mobility scenario applied no moves (emitted %d)", replay.Moves())
		}
	case scenario.Leases:
		if m.Expired == 0 {
			return fmt.Errorf("lease scenario expired nothing")
		}
		if m.Withdrawn != m.Expired {
			return fmt.Errorf("%d departures but %d lease expirations — a client withdraw slipped in", m.Withdrawn, m.Expired)
		}
	}
	log.Printf("selftest[scenario %s]: %d trace epochs, %d submitted, %d moved, %d expired, %d tolerated 429s; final n=%d welfare=%.2f == from-scratch",
		name, replay.Epoch(), m.Submitted, m.Moved, m.Expired, replay.Rejected429(), n, welfare)
	return nil
}

// verifyRestore hard-kills the journaled broker (no clean close, no final
// snapshot — exactly what a crash leaves) and restores a fresh broker from
// the data directory, asserting the restored epoch, per-bidder allocation,
// and prices are identical to what the live broker was serving. Ticking
// must already be stopped.
func verifyRestore(b *broker.Broker, w *journal.Writer, dir string, factory func() (*broker.Broker, error), prices bool) error {
	if err := w.Err(); err != nil {
		return fmt.Errorf("journal failed during selftest: %w", err)
	}
	_, ids, epoch, err := b.Snapshot()
	if err != nil {
		return err
	}
	w.Abort() // the kill

	rb, rec, err := journal.Recover(dir, factory)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	if rb.Epoch() != epoch {
		return fmt.Errorf("restored epoch %d, live broker was at %d", rb.Epoch(), epoch)
	}
	if re, ok := rb.RecoveredEpoch(); !ok || re != epoch {
		return fmt.Errorf("restored broker reports recovery epoch %d (ok=%v), want %d", re, ok, epoch)
	}
	_, rids, _, err := rb.Snapshot()
	if err != nil {
		return err
	}
	if len(rids) != len(ids) {
		return fmt.Errorf("restored %d bidders, live had %d", len(rids), len(ids))
	}
	for _, id := range ids {
		lt, lst := b.Allocation(id)
		rt, rst := rb.Allocation(id)
		if lst != rst || lt != rt {
			return fmt.Errorf("bidder %d: restored %v/%v, live %v/%v", id, rt, rst, lt, lst)
		}
		if prices {
			lp, _ := b.Price(id)
			rp, _ := rb.Price(id)
			if math.Abs(lp-rp) > 1e-9*(1+math.Abs(lp)) {
				return fmt.Errorf("bidder %d: restored price %.12f, live %.12f", id, rp, lp)
			}
		}
	}
	log.Printf("selftest[%s]: kill/restore ok: snapshot epoch %d + %d records → epoch %d, %d bidders identical",
		b.Model().Name(), rec.SnapshotEpoch, rec.Records, rec.Epoch, len(rids))
	return nil
}

// runSelftest drives the broker exclusively through the public SDK
// (spectrum.Client) with the shared trace generator: each trace epoch's
// departures, arrivals, and primary-mask updates are translated by
// market.OpsReplayer — the same translation experiments E17/E18 and the
// equivalence tests use — into one POST /v1/batch as the daemon's own ticker
// keeps closing epochs underneath. Every 4th arrival bids in the XOR
// language. When the duration is spent the load stops, the market quiesces
// (observed through the /v1/watch long-poll), and the final committed
// allocation is checked against a from-scratch solve of the final
// snapshot — the live equivalent of the equivalence tests in internal/broker.
func runSelftest(base string, b *broker.Broker, model string, dur, epoch time.Duration, seed int64, rate float64, k int) error {
	ctx := context.Background()
	// No http.Client timeout: the /v1/watch long-poll legitimately holds a
	// request open; per-call contexts bound everything instead.
	client := spectrum.NewClient(base)
	if h, err := client.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	} else if !h.Durable {
		return fmt.Errorf("healthz reports durable=%v for a journaled broker", h.Durable)
	}
	deadline := time.Now().Add(dur)
	traceEpochs := int(dur/epoch) + 16
	tr := market.GenTrace(market.TraceConfig{
		Seed:          seed,
		Epochs:        traceEpochs,
		K:             k,
		Side:          150,
		ArrivalRate:   rate,
		MeanLifetime:  5,
		PrimaryUsers:  3,
		PrimaryRadius: 40,
		PrimaryActive: 0.5,
		MaxUsers:      120,
		Model:         model,
	})

	replay := market.NewOpsReplayer(tr, true)
	submitted, withdrawn, updated, xors := 0, 0, 0, 0
	for time.Now().Before(deadline) {
		ops, more, err := replay.Step()
		if err != nil {
			return err
		}
		for _, op := range ops {
			switch op.Op {
			case spectrum.OpSubmit:
				submitted++
				if op.Bid.XOR != nil {
					xors++
				}
			case spectrum.OpWithdraw:
				withdrawn++
			case spectrum.OpUpdate:
				updated++
			}
		}
		if len(ops) > 0 {
			res, err := client.SubmitBatch(ctx, ops)
			if err != nil {
				return err
			}
			if err := replay.Observe(res.Results); err != nil {
				return err
			}
		}
		if !more {
			break
		}
		time.Sleep(epoch)
	}

	// Quiesce: watch two epoch commits through the long-poll (the queue's
	// tail lands), then force a final synchronous tick and verify.
	wctx, cancel := context.WithTimeout(ctx, 10*epoch+5*time.Second)
	defer cancel()
	rep, err := client.WaitEpoch(wctx, b.Epoch())
	if err == nil {
		_, err = client.WaitEpoch(wctx, rep.Epoch)
	}
	if err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	n, welfare, err := verifyFinal(b)
	if err != nil {
		return err
	}
	m := b.Metrics()
	if m.JournalErrors != 0 {
		return fmt.Errorf("%d journal errors during selftest", m.JournalErrors)
	}
	log.Printf("selftest[%s]: %d trace epochs driven, %d submitted (%d XOR), %d withdrawn, %d updated; %d broker epochs (clean=%d warm=%d rebuilt=%d); final n=%d welfare=%.2f == from-scratch",
		b.Model().Name(), replay.Epoch(), submitted, xors, withdrawn, updated, m.Epochs, m.CleanTotal, m.WarmTotal, m.RebuildTotal, n, welfare)
	// Emit the snapshot size as a sanity line (also proves serialize works
	// on the live market).
	in, _, _, err := b.Snapshot()
	if err != nil {
		return err
	}
	var sz bytes.Buffer
	if err := serialize.Write(&sz, in); err != nil {
		return err
	}
	log.Printf("selftest[%s]: final snapshot serializes to %d bytes", b.Model().Name(), sz.Len())
	return nil
}

// verifyFinal forces one synchronous tick and checks the committed allocation
// against a from-scratch auction solve of the final snapshot — the live
// equivalent of the equivalence tests in internal/broker. Returns the market
// size and welfare of the verified allocation.
func verifyFinal(b *broker.Broker) (int, float64, error) {
	b.Tick()
	in, ids, _, err := b.Snapshot()
	if err != nil {
		return 0, 0, err
	}
	got := make(auction.Allocation, len(ids))
	welfare := 0.0
	for i, id := range ids {
		t, st := b.Allocation(id)
		if st != broker.StatusActive {
			return 0, 0, fmt.Errorf("active bidder %d has status %v", id, st)
		}
		got[i] = t
		if t != valuation.Empty {
			welfare += in.Bidders[i].Value(t)
		}
	}
	if !in.Feasible(got) {
		return 0, 0, fmt.Errorf("final allocation infeasible")
	}
	var ref auction.Allocation
	refWelfare := 0.0
	if in.N() > 0 {
		res, err := auction.Solve(in, auction.Options{Derandomize: true})
		if err != nil {
			return 0, 0, err
		}
		ref, refWelfare = res.Alloc, res.Welfare
	}
	if math.Abs(welfare-refWelfare) > 1e-6*(1+math.Abs(refWelfare)) {
		return 0, 0, fmt.Errorf("streamed welfare %.6f vs from-scratch %.6f", welfare, refWelfare)
	}
	for i := range got {
		if got[i] != ref[i] {
			return 0, 0, fmt.Errorf("allocation of bidder %d differs from from-scratch solve (%v vs %v)",
				ids[i], got[i], ref[i])
		}
	}
	return in.N(), welfare, nil
}
