package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/serialize"
)

func TestSelectExperimentsAll(t *testing.T) {
	selected, err := selectExperiments("")
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != len(exp.All) {
		t.Fatalf("empty spec selected %d experiments, want %d", len(selected), len(exp.All))
	}
}

func TestSelectExperimentsSubset(t *testing.T) {
	selected, err := selectExperiments(" E1, A2 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(selected) != 2 || selected[0].ID != "E1" || selected[1].ID != "A2" {
		t.Fatalf("unexpected selection %+v", selected)
	}
}

func TestSelectExperimentsUnknown(t *testing.T) {
	if _, err := selectExperiments("E1,E99"); err == nil || !strings.Contains(err.Error(), "E99") {
		t.Fatalf("expected an error naming E99, got %v", err)
	}
	if _, err := selectExperiments(","); err == nil {
		t.Fatal("expected an error for an empty selection")
	}
}

// TestRunJSON drives the full CLI path for one cheap experiment and checks
// the -json document parses back with the right shape.
func TestRunJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(&stdout, &stderr, "A2", true, 2, false, true); err != nil {
		t.Fatal(err)
	}
	rec, err := serialize.ReadRun(&stdout)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Tables) != 1 || rec.Tables[0].ID != "A2" || len(rec.Tables[0].Rows) == 0 {
		t.Fatalf("unexpected run record %+v", rec)
	}
	if !strings.Contains(stderr.String(), "[A2] running") {
		t.Fatalf("missing progress line in stderr: %q", stderr.String())
	}
}

// TestRunUnknownID checks the error path surfaces the offending id.
func TestRunUnknownID(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(&stdout, &stderr, "Z9", true, 1, false, false)
	if err == nil || !strings.Contains(err.Error(), "Z9") {
		t.Fatalf("expected an error naming Z9, got %v", err)
	}
}
