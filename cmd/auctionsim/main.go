// Command auctionsim regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	auctionsim [-quick] [-run E1,E5,...]
//
// Without -run, all experiments are executed in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored Markdown tables")
	flag.Parse()

	if *list {
		for _, e := range exp.All {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exp.Experiment
	if *run == "" {
		selected = exp.All
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e := exp.Find(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "auctionsim: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		table := e.Run(*quick)
		if *markdown {
			fmt.Println(table.Markdown())
		} else {
			fmt.Println(table.Render())
			fmt.Printf("(%s finished in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
