// Command auctionsim regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	auctionsim [-quick] [-run E1,E5,...] [-jobs N] [-markdown | -json]
//
// Without -run, all experiments are executed in order. Experiments run
// concurrently on a worker pool of -jobs goroutines (default: GOMAXPROCS);
// output is always emitted in experiment order and is byte-identical to a
// serial (-jobs 1) run. Per-experiment progress streams to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/serialize"
)

// timeUnit is the rounding granularity for reported durations.
const timeUnit = time.Millisecond

// selectExperiments resolves a comma-separated id list against the registry.
// An empty spec selects every experiment in registry order.
func selectExperiments(spec string) ([]exp.Experiment, error) {
	if spec == "" {
		return exp.All, nil
	}
	var selected []exp.Experiment
	for _, id := range strings.Split(spec, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		e := exp.Find(id)
		if e == nil {
			return nil, fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		selected = append(selected, *e)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("empty experiment selection %q", spec)
	}
	return selected, nil
}

// run executes the selected experiments and writes the chosen output format
// to stdout, streaming progress to stderr. Split from main for testability.
func run(stdout, stderr io.Writer, spec string, quick bool, jobs int, markdown, asJSON bool) error {
	selected, err := selectExperiments(spec)
	if err != nil {
		return err
	}
	exp.SetTrialWorkers(jobs)
	runner := exp.Runner{
		Jobs:  jobs,
		Quick: quick,
		OnStart: func(e exp.Experiment) {
			fmt.Fprintf(stderr, "auctionsim: [%s] running — %s\n", e.ID, e.Title)
		},
	}
	// The stream is always drained: a failing experiment is reported as it
	// fails, the remaining tables still print, and the Runner's goroutines
	// all finish before run returns.
	failed := 0
	rec := &serialize.RunRecord{FormatVersion: 1, Quick: quick, Jobs: runner.Jobs}
	for out := range runner.Stream(selected) {
		if out.Err != nil {
			failed++
			fmt.Fprintf(stderr, "auctionsim: %v\n", out.Err)
			continue
		}
		switch {
		case asJSON:
			rec.Tables = append(rec.Tables, exp.EncodeTable(out.Table, out.Duration))
		case markdown:
			fmt.Fprintln(stdout, out.Table.Markdown())
		default:
			fmt.Fprintln(stdout, out.Table.Render())
		}
		fmt.Fprintf(stderr, "auctionsim: [%s] done in %v\n",
			out.Experiment.ID, out.Duration.Round(timeUnit))
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	if asJSON {
		return serialize.WriteRun(stdout, rec)
	}
	return nil
}

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	runSpec := flag.String("run", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored Markdown tables")
	asJSON := flag.Bool("json", false, "emit one JSON document with all tables")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "worker pool size (1 = fully serial)")
	flag.Parse()

	if *list {
		for _, e := range exp.All {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	if *markdown && *asJSON {
		fmt.Fprintln(os.Stderr, "auctionsim: -markdown and -json are mutually exclusive")
		os.Exit(2)
	}
	if err := run(os.Stdout, os.Stderr, *runSpec, *quick, *jobs, *markdown, *asJSON); err != nil {
		fmt.Fprintf(os.Stderr, "auctionsim: %v\n", err)
		os.Exit(2)
	}
}
