// Command brokerload is the load generator of the live spectrum broker: it
// replays churn traces from the shared generator (market.GenTrace — the
// same workload brokerd -selftest and experiments E17/E18 use) through the
// public SDK (pkg/spectrum) at configurable concurrency and batch size,
// and reports mutation throughput, request latency, and the epoch commit
// latency observed over the /v1/watch stream.
//
// Target a running daemon:
//
//	brokerd -addr :8080 -k 4 -epoch 100ms &
//	brokerload -addr http://127.0.0.1:8080 -k 4 -concurrency 4 -batch 64
//
// or run self-contained (-local starts an in-process broker, HTTP server,
// and ticker, so one command demonstrates the whole stack):
//
//	brokerload -local -model disk -concurrency 4 -batch 64 -epochs 40
//
// -batch 0 issues every mutation as its own HTTP request (the per-request
// path the batch endpoint is benchmarked against).
//
// -kill-after is the restart-under-load smoke (CI runs it): the -local
// broker is journaled (into -data-dir or a temp directory), and every
// interval the supervisor hard-kills it mid-load — no clean close, no final
// snapshot — restores a fresh broker from the journal on the same address,
// verifies the restored epoch and per-bidder allocation are identical to
// the committed state at the instant of the kill, and resumes the load:
//
//	brokerload -local -kill-after 500ms -pace 20ms -epochs 30
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/journal"
	"repro/internal/market"
	"repro/internal/scenario"
	"repro/pkg/spectrum"
)

func main() {
	var (
		addr        = flag.String("addr", "", "base URL of a running brokerd (e.g. http://127.0.0.1:8080); empty requires -local")
		local       = flag.Bool("local", false, "start an in-process broker + server + ticker instead of targeting -addr")
		model       = flag.String("model", "disk", "interference backend of the trace geometry (and the -local broker)")
		delta       = flag.Float64("delta", 1, "guard-zone parameter of the protocol/ieee80211 models")
		k           = flag.Int("k", 4, "number of channels (must match the target broker)")
		seed        = flag.Int64("seed", 1, "base trace seed (worker w replays seed+w)")
		epochs      = flag.Int("epochs", 40, "trace epochs per worker")
		rate        = flag.Float64("rate", 6, "mean arrivals per trace epoch")
		concurrency = flag.Int("concurrency", 2, "parallel trace streams")
		batch       = flag.Int("batch", 64, "max mutations per /v1/batch request; 0 = one request per mutation")
		pace        = flag.Duration("pace", 0, "sleep between trace steps (0 = replay as fast as possible)")
		epoch       = flag.Duration("epoch", 100*time.Millisecond, "tick interval of the -local broker")
		maxBidders  = flag.Int("max-bidders", 4096, "population cap of the -local broker")
		bidders     = flag.Int("bidders", 0, "prepopulate the market with this many constant-density bidders (chunked batch submits) before the churn workload; drives the large-market tier")
		killAfter   = flag.Duration("kill-after", 0, "with -local: hard-kill the broker at this interval, restore it from its journal on the same address, verify, and resume (restart-under-load smoke)")
		dataDir     = flag.String("data-dir", "", "journal directory of the -local broker (default with -kill-after: a temp dir)")
		readers     = flag.Int("readers", 0, "reader goroutines hammering the replica's GET /v1/allocation alongside the mutation load")
		readRatio   = flag.Int("read-ratio", 1000, "cap reads at this many per mutation (0 = unthrottled)")
		readAddr    = flag.String("read-addr", "", "base URL the readers target (a brokerproxy); with -local and empty, an in-process Mirror + replica handler is started automatically")
		scenName    = flag.String("scenario", "", "named workload from internal/scenario ("+joinNames()+"); replaces the default churn trace (worker w still replays -seed + w)")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	var scen *scenario.Scenario
	if *scenName != "" {
		var err error
		if scen, err = scenario.ByName(*scenName); err != nil {
			log.Fatalf("brokerload: %v", err)
		}
		// A scenario is designed against a specific admission cap (the
		// flash crowd's 429 pressure is the workload); honor it in -local
		// mode unless the operator overrode the cap explicitly.
		if scen.MaxBidders > 0 {
			explicit := false
			flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "max-bidders" })
			if !explicit {
				*maxBidders = scen.MaxBidders
			}
		}
	}

	if *killAfter > 0 && !*local {
		log.Fatal("brokerload: -kill-after requires -local (it must own the broker it kills)")
	}

	// A prepopulated market must fit under the admission cap with headroom
	// for the churn workload on top; raise the -local cap unless the operator
	// pinned it explicitly.
	if *bidders > 0 && *local {
		explicit := false
		flag.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "max-bidders" })
		if !explicit && *maxBidders < *bidders+1024 {
			*maxBidders = *bidders + 1024
		}
	}

	// gate serializes the kill/restore window against in-flight load: every
	// client request holds it shared, the supervisor takes it exclusively.
	var gate sync.RWMutex

	base := *addr
	var stack *localStack
	if *local {
		factory := func() (*broker.Broker, error) {
			cm, err := broker.ModelByName(*model, *delta)
			if err != nil {
				return nil, err
			}
			return broker.New(broker.Config{K: *k, Model: cm, MaxBidders: *maxBidders})
		}
		dir := *dataDir
		if dir == "" && *killAfter > 0 {
			tmp, err := os.MkdirTemp("", "brokerload-journal-")
			if err != nil {
				log.Fatalf("brokerload: %v", err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		stack = &localStack{factory: factory, dir: dir, addr: "127.0.0.1:0", tick: *epoch}
		if err := stack.start(); err != nil {
			log.Fatalf("brokerload: %v", err)
		}
		defer stack.shutdown()
		base = "http://" + stack.addr
		log.Printf("brokerload: local broker on %s (model=%s k=%d epoch=%s durable=%v)",
			base, stack.b.Model().Name(), *k, *epoch, dir != "")
	}
	if base == "" {
		log.Fatal("brokerload: pass -addr or -local")
	}

	ctx := context.Background()
	client := spectrum.NewClient(base)

	// Large-market prepopulation: -bidders N seeds the market with N bidders
	// at constant density (the same ~2000 area units per bidder the
	// 10k-bidder benchmark tier uses) through chunked /v1/batch submits, so
	// the churn workload then runs against a dense standing population.
	prepopulated := 0
	var prepElapsed time.Duration
	if *bidders > 0 {
		t0 := time.Now()
		var err error
		if prepopulated, err = prepopulate(ctx, client, *bidders, *model, *k, *seed, *batch); err != nil {
			log.Fatalf("brokerload: prepopulate: %v", err)
		}
		prepElapsed = time.Since(t0)
		log.Printf("brokerload: prepopulated %d bidders in %s", prepopulated, prepElapsed.Round(time.Millisecond))
	}

	// Replica read workload: readers hammer a brokerproxy (external via
	// -read-addr, or an in-process Mirror + replica handler over the -local
	// broker) while the mutation load churns the market.
	readBase := *readAddr
	if *readers > 0 && readBase == "" {
		if !*local {
			log.Fatal("brokerload: -readers needs -read-addr (or -local to start an in-process replica)")
		}
		stopReplica, url, err := startReplica(ctx, base)
		if err != nil {
			log.Fatalf("brokerload: replica: %v", err)
		}
		defer stopReplica()
		readBase = url
		log.Printf("brokerload: in-process replica on %s (%d readers, read-ratio %d)", readBase, *readers, *readRatio)
	}

	// latestEpoch is the newest committed epoch the watch stream has seen;
	// readers measure staleness against it.
	var latestEpoch atomic.Int64

	// Watch epoch commits for the whole run; the server reports its own
	// solve-and-commit latency per epoch. In kill mode the stream breaks at
	// every kill, so the watcher reconnects until told to stop.
	wctx, wcancel := context.WithCancel(ctx)
	var watch struct {
		sync.Mutex
		epochs  int
		total   time.Duration
		max     time.Duration
		welfare float64
		expired int
	}
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		since := -1
		for {
			for rep := range client.Watch(wctx, since) {
				since = rep.Epoch
				latestEpoch.Store(int64(rep.Epoch))
				watch.Lock()
				watch.epochs++
				watch.total += rep.Latency
				if rep.Latency > watch.max {
					watch.max = rep.Latency
				}
				watch.welfare = rep.Welfare
				watch.expired += rep.Expired
				watch.Unlock()
			}
			if wctx.Err() != nil || *killAfter == 0 {
				return
			}
			// The server is mid-restart; the gate opens when it is back.
			gate.RLock()
			gate.RUnlock() //lint:ignore SA2001 the lock itself is the wait
		}
	}()

	// The kill/restore supervisor.
	restarts := 0
	var killErr error
	killCtx, killCancel := context.WithCancel(ctx)
	killerDone := make(chan struct{})
	if *killAfter > 0 {
		go func() {
			defer close(killerDone)
			for {
				select {
				case <-killCtx.Done():
					return
				case <-time.After(*killAfter):
				}
				if err := killRestore(stack, &gate); err != nil {
					killErr = err
					return
				}
				restarts++
			}
		}()
	} else {
		close(killerDone)
	}

	var agg struct {
		sync.Mutex
		mutations int
		requests  int
		moves     int
		rejected  int
		lat       []time.Duration
	}

	// The reader pool: free-running GETs against the replica, throttled so
	// total reads stay within read-ratio × mutations-so-far. Reads measure
	// latency, epoch lag behind the newest committed epoch the watcher has
	// seen, and honest 503s (the replica refusing to serve stale state).
	var reads struct {
		sync.Mutex
		count    int
		stale503 int
		lat      []time.Duration
		lag      []int
	}
	readersStop := make(chan struct{})
	var readersWG sync.WaitGroup
	if *readers > 0 {
		// No retries: a 503 is a measured outcome here, not a transient.
		rclient := spectrum.NewClient(readBase, spectrum.WithRetries(0))
		for i := 0; i < *readers; i++ {
			readersWG.Add(1)
			go func() {
				defer readersWG.Done()
				for {
					select {
					case <-readersStop:
						return
					default:
					}
					if *readRatio > 0 {
						agg.Lock()
						muts := agg.mutations
						agg.Unlock()
						reads.Lock()
						over := reads.count >= *readRatio*(muts+1)
						reads.Unlock()
						if over {
							time.Sleep(time.Millisecond)
							continue
						}
					}
					t0 := time.Now()
					alloc, err := rclient.Allocation(ctx)
					d := time.Since(t0)
					reads.Lock()
					reads.count++
					reads.lat = append(reads.lat, d)
					if err != nil {
						var ae *spectrum.APIError
						if errors.As(err, &ae) && ae.Code == http.StatusServiceUnavailable {
							reads.stale503++
						}
					} else if newest := int(latestEpoch.Load()); newest > alloc.Epoch {
						reads.lag = append(reads.lag, newest-alloc.Epoch)
					} else {
						reads.lag = append(reads.lag, 0)
					}
					reads.Unlock()
				}
			}()
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, *concurrency)
	for w := 0; w < *concurrency; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			moved, rejected, err := runWorker(ctx, client, workerConfig{
				seed: *seed + int64(w), epochs: *epochs, k: *k, rate: *rate,
				model: *model, batch: *batch, pace: *pace, scen: scen,
			}, &gate, &agg.Mutex, &agg.mutations, &agg.requests, &agg.lat)
			agg.Lock()
			agg.moves += moved
			agg.rejected += rejected
			agg.Unlock()
			if err != nil {
				errs <- fmt.Errorf("worker %d: %w", w, err)
			}
		}()
	}
	wg.Wait()
	close(readersStop)
	readersWG.Wait()
	killCancel()
	<-killerDone
	if killErr != nil {
		log.Fatalf("brokerload: kill/restore: %v", killErr)
	}
	// The smoke must actually smoke: if the load drained before the first
	// kill window elapsed, force one kill/restore round-trip now.
	if *killAfter > 0 && restarts == 0 {
		if err := killRestore(stack, &gate); err != nil {
			log.Fatalf("brokerload: kill/restore: %v", err)
		}
		restarts++
	}
	elapsed := time.Since(start)
	// Leave the watcher one more epoch to observe the tail, then stop it.
	time.Sleep(2 * *epoch)
	wcancel()
	<-watchDone
	select {
	case err := <-errs:
		log.Fatalf("brokerload: %v", err)
	default:
	}

	agg.Lock()
	sort.Slice(agg.lat, func(i, j int) bool { return agg.lat[i] < agg.lat[j] })
	pct := func(p float64) time.Duration {
		if len(agg.lat) == 0 {
			return 0
		}
		i := int(p * float64(len(agg.lat)-1))
		return agg.lat[i]
	}
	report := map[string]any{
		"base":            base,
		"workers":         *concurrency,
		"batch":           *batch,
		"trace_epochs":    *epochs,
		"mutations":       agg.mutations,
		"requests":        agg.requests,
		"elapsed_ns":      elapsed.Nanoseconds(),
		"mutations_per_s": float64(agg.mutations) / elapsed.Seconds(),
		"req_p50_ns":      pct(0.50).Nanoseconds(),
		"req_p95_ns":      pct(0.95).Nanoseconds(),
		"req_max_ns":      pct(1.0).Nanoseconds(),
	}
	if *killAfter > 0 {
		report["restarts"] = restarts
	}
	if *bidders > 0 {
		report["prepopulated"] = prepopulated
		report["prepopulate_ns"] = prepElapsed.Nanoseconds()
	}
	if scen != nil {
		report["scenario"] = scen.Name
		report["moves"] = agg.moves
		report["rejected_429"] = agg.rejected
		// Expired withdrawals are broker-side events; the -local broker's
		// metrics are authoritative, a remote target is read off the watch
		// stream (a lower bound when epochs coalesce).
		if stack != nil {
			report["expired"] = int(stack.b.Metrics().Expired)
		} else {
			watch.Lock()
			report["expired"] = watch.expired
			watch.Unlock()
		}
	}
	if *readers > 0 {
		reads.Lock()
		sort.Slice(reads.lat, func(i, j int) bool { return reads.lat[i] < reads.lat[j] })
		sort.Ints(reads.lag)
		rpct := func(p float64) time.Duration {
			if len(reads.lat) == 0 {
				return 0
			}
			return reads.lat[int(p*float64(len(reads.lat)-1))]
		}
		lagPct := func(p float64) int {
			if len(reads.lag) == 0 {
				return 0
			}
			return reads.lag[int(p*float64(len(reads.lag)-1))]
		}
		report["readers"] = *readers
		report["reads"] = reads.count
		report["reads_per_s"] = float64(reads.count) / elapsed.Seconds()
		report["read_p50_ns"] = rpct(0.50).Nanoseconds()
		report["read_p95_ns"] = rpct(0.95).Nanoseconds()
		report["read_max_ns"] = rpct(1.0).Nanoseconds()
		report["read_stale_503s"] = reads.stale503
		report["staleness_epochs_p50"] = lagPct(0.50)
		report["staleness_epochs_p95"] = lagPct(0.95)
		report["staleness_epochs_max"] = lagPct(1.0)
		reads.Unlock()
	}
	watch.Lock()
	report["epochs_committed"] = watch.epochs
	meanCommit := time.Duration(0)
	if watch.epochs > 0 {
		meanCommit = watch.total / time.Duration(watch.epochs)
	}
	report["commit_latency_mean_ns"] = meanCommit.Nanoseconds()
	report["commit_latency_max_ns"] = watch.max.Nanoseconds()
	report["final_welfare"] = watch.welfare
	watch.Unlock()
	agg.Unlock()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatalf("brokerload: %v", err)
		}
		return
	}
	fmt.Printf("brokerload: %d workers × %d trace epochs against %s\n", *concurrency, *epochs, base)
	if *bidders > 0 {
		fmt.Printf("  prepopulated: %d bidders in %s\n", prepopulated, prepElapsed.Round(time.Millisecond))
	}
	fmt.Printf("  mutations: %d in %s (%.0f mutations/s) over %d requests (batch ≤ %d)\n",
		agg.mutations, elapsed.Round(time.Millisecond), report["mutations_per_s"], agg.requests, *batch)
	fmt.Printf("  request latency: p50 %s  p95 %s  max %s\n",
		pct(0.50).Round(10*time.Microsecond), pct(0.95).Round(10*time.Microsecond), pct(1.0).Round(10*time.Microsecond))
	fmt.Printf("  epochs committed: %d, commit latency mean %s max %s, last welfare %.2f\n",
		report["epochs_committed"], meanCommit.Round(10*time.Microsecond),
		watch.max.Round(10*time.Microsecond), report["final_welfare"])
	if *killAfter > 0 {
		fmt.Printf("  kill/restore round-trips: %d (all verified allocation-identical)\n", restarts)
	}
	if scen != nil {
		fmt.Printf("  scenario %q: %d moves, %d lease expirations, %d admission 429s\n",
			scen.Name, agg.moves, report["expired"], agg.rejected)
	}
	if *readers > 0 {
		fmt.Printf("  replica reads: %d by %d readers (%.0f reads/s), p50 %v p95 %v, %d stale 503s, staleness p50/p95/max %v/%v/%v epochs\n",
			report["reads"], *readers, report["reads_per_s"],
			time.Duration(report["read_p50_ns"].(int64)).Round(time.Microsecond),
			time.Duration(report["read_p95_ns"].(int64)).Round(time.Microsecond),
			report["read_stale_503s"],
			report["staleness_epochs_p50"], report["staleness_epochs_p95"], report["staleness_epochs_max"])
	}
}

// prepopulate seeds the market with n constant-density bidders (side grows
// as sqrt(n), ~2000 area units per bidder — the large-market benchmark
// tier's density) via chunked /v1/batch submits. It returns how many submits
// the broker accepted; any admission rejection is an error, since the cap
// was sized for the prepopulation up front.
func prepopulate(ctx context.Context, client *spectrum.Client, n int, model string, k int, seed int64, batch int) (int, error) {
	if batch <= 0 {
		batch = 64
	}
	side := math.Sqrt(float64(n) * 2000)
	isLink := model == "protocol" || model == "ieee80211"
	rng := rand.New(rand.NewSource(seed))
	accepted := 0
	for accepted < n {
		chunk := min(batch, n-accepted)
		ops := make([]spectrum.Op, chunk)
		for i := range ops {
			values := make([]float64, k)
			for j := range values {
				values[j] = 1 + rng.Float64()*9
			}
			pos := spectrum.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
			r := 3 + rng.Float64()*7
			bid := spectrum.Bid{Pos: pos, Radius: r, Values: values}
			if isLink {
				th := rng.Float64() * 2 * math.Pi
				bid = spectrum.Bid{
					Link: &spectrum.Link{
						Sender:   pos,
						Receiver: spectrum.Point{X: pos.X + r*math.Cos(th), Y: pos.Y + r*math.Sin(th)},
					},
					Values: values,
				}
			}
			ops[i] = spectrum.Op{Op: spectrum.OpSubmit, Bid: &bid}
		}
		res, err := client.SubmitBatch(ctx, ops)
		if err != nil {
			return accepted, err
		}
		for i, r := range res.Results {
			if r.Code != 202 {
				return accepted, fmt.Errorf("submit %d rejected: %d %s", accepted+i, r.Code, r.Error)
			}
		}
		accepted += chunk
	}
	return accepted, nil
}

// startReplica brings up the in-process read tier of -readers: a
// spectrum.Mirror following base plus the brokerproxy HTTP surface on an
// ephemeral port. Returned stop tears both down.
func startReplica(ctx context.Context, base string) (stop func(), url string, err error) {
	m, err := spectrum.NewMirror(spectrum.MirrorConfig{
		Client:       spectrum.NewClient(base),
		MaxStaleness: 5 * time.Second,
		PollTimeout:  500 * time.Millisecond,
		BaseBackoff:  20 * time.Millisecond,
		MaxBackoff:   500 * time.Millisecond,
	})
	if err != nil {
		return nil, "", err
	}
	mctx, mcancel := context.WithCancel(ctx)
	go m.Run(mctx)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mcancel()
		return nil, "", err
	}
	srv := &http.Server{Handler: spectrum.NewMirrorHandler(m)}
	go srv.Serve(ln)
	stop = func() {
		srv.Close()
		mcancel()
	}
	return stop, "http://" + ln.Addr().String(), nil
}

// localStack is the restartable in-process daemon of -local: broker
// (journaled when dir is set), HTTP server, and ticker. start brings all
// three up; crash tears them down the way a kill would (no sync, no
// snapshot); restarts rebind the same address.
type localStack struct {
	factory func() (*broker.Broker, error)
	dir     string
	addr    string
	tick    time.Duration

	b    *broker.Broker
	w    *journal.Writer
	srv  *http.Server
	stop chan struct{}
	done chan struct{}
}

func (s *localStack) start() error {
	var err error
	if s.dir != "" {
		s.b, s.w, _, err = journal.Open(s.dir, s.factory, journal.Options{Sync: journal.SyncAlways, SnapshotEvery: 64})
	} else {
		s.b, err = s.factory()
	}
	if err != nil {
		return err
	}
	var opts []broker.HandlerOption
	if s.w != nil {
		w := s.w
		opts = append(opts, broker.WithJournalMetrics(func() any { return w.Stats() }))
	}
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", s.addr, err)
	}
	s.addr = ln.Addr().String() // pin the port so restarts rebind it
	s.srv = &http.Server{Handler: broker.NewHandler(s.b, opts...)}
	go s.srv.Serve(ln)
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func(stop, done chan struct{}, b *broker.Broker) {
		defer close(done)
		t := time.NewTicker(s.tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				b.Tick()
			}
		}
	}(s.stop, s.done, s.b)
	return nil
}

func (s *localStack) stopTicker() {
	close(s.stop)
	<-s.done
}

// crash kills the running stack as a power cut would: the listener and all
// in-flight connections are severed, the journal's file handle is dropped
// without a sync, and the broker is simply abandoned. Ticking must already
// be stopped.
func (s *localStack) crash() {
	s.srv.Close()
	if s.w != nil {
		s.w.Abort()
	}
	s.b, s.w, s.srv = nil, nil, nil
}

func (s *localStack) shutdown() {
	if s.srv == nil {
		return
	}
	s.stopTicker()
	s.srv.Close()
	if s.w != nil {
		s.w.Close()
	}
}

// killRestore is one round-trip of the restart smoke: freeze ticking,
// record the committed state, hard-kill the stack, restore it from the
// journal on the same address, and verify the restored broker serves the
// identical epoch and per-bidder allocation.
func killRestore(s *localStack, gate *sync.RWMutex) error {
	gate.Lock()
	defer gate.Unlock()
	s.stopTicker()

	_, ids, preEpoch, err := s.b.Snapshot()
	if err != nil {
		return err
	}
	preAlloc := make(map[broker.BidderID]string, len(ids))
	for _, id := range ids {
		t, st := s.b.Allocation(id)
		preAlloc[id] = fmt.Sprintf("%v/%v", t, st)
	}
	t0 := time.Now()
	s.crash()

	if err := s.start(); err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	if got := s.b.Epoch(); got != preEpoch {
		return fmt.Errorf("restored epoch %d, killed at %d", got, preEpoch)
	}
	if re, ok := s.b.RecoveredEpoch(); !ok || re != preEpoch {
		return fmt.Errorf("restored broker reports recovery epoch %d (ok=%v), want %d", re, ok, preEpoch)
	}
	_, rids, _, err := s.b.Snapshot()
	if err != nil {
		return err
	}
	if len(rids) != len(ids) {
		return fmt.Errorf("restored %d bidders, killed with %d", len(rids), len(ids))
	}
	for _, id := range ids {
		t, st := s.b.Allocation(id)
		if got := fmt.Sprintf("%v/%v", t, st); got != preAlloc[id] {
			return fmt.Errorf("bidder %d: restored %s, killed with %s", id, got, preAlloc[id])
		}
	}
	log.Printf("brokerload: killed at epoch %d, restored %d bidders identically in %s",
		preEpoch, len(ids), time.Since(t0).Round(time.Millisecond))
	return nil
}

type workerConfig struct {
	seed   int64
	epochs int
	k      int
	rate   float64
	model  string
	batch  int
	pace   time.Duration
	scen   *scenario.Scenario
}

// runWorker replays one trace stream through the SDK: each trace step's
// mutations go out as /v1/batch requests of at most cfg.batch ops (or as
// individual mutation requests when batch is 0), with every request timed.
// Each request holds the kill gate shared, so the supervisor's exclusive
// hold excludes in-flight load during a kill/restore window. It returns the
// move ops emitted and the admission 429s tolerated (scenario runs only).
func runWorker(ctx context.Context, client *spectrum.Client, cfg workerConfig, gate *sync.RWMutex,
	mu *sync.Mutex, mutations, requests *int, lat *[]time.Duration) (int, int, error) {
	var tr *market.Trace
	if cfg.scen != nil {
		tr = cfg.scen.Trace(scenario.Params{Seed: cfg.seed, Epochs: cfg.epochs, K: cfg.k, Model: cfg.model})
	} else {
		tr = market.GenTrace(market.TraceConfig{
			Seed:          cfg.seed,
			Epochs:        cfg.epochs,
			K:             cfg.k,
			Side:          300,
			ArrivalRate:   cfg.rate,
			MeanLifetime:  5,
			PrimaryUsers:  3,
			PrimaryRadius: 60,
			PrimaryActive: 0.5,
			MaxUsers:      120,
			Model:         cfg.model,
		})
	}
	replay := market.NewOpsReplayer(tr, true)
	if cfg.scen != nil {
		// Scenario runs tolerate admission 429s by design: the flash-crowd
		// workload exists to drive the broker into its cap.
		replay.Lenient()
	}
	for {
		ops, more, err := replay.Step()
		if err != nil {
			return replay.Moves(), replay.Rejected429(), err
		}
		results := make([]spectrum.OpResult, 0, len(ops))
		if cfg.batch > 0 {
			for len(ops) > 0 {
				n := min(cfg.batch, len(ops))
				gate.RLock()
				t0 := time.Now()
				res, err := client.SubmitBatch(ctx, ops[:n])
				d := time.Since(t0)
				gate.RUnlock()
				if err != nil {
					return replay.Moves(), replay.Rejected429(), err
				}
				mu.Lock()
				*requests++
				*mutations += n
				*lat = append(*lat, d)
				mu.Unlock()
				results = append(results, res.Results...)
				ops = ops[n:]
			}
		} else {
			for _, op := range ops {
				gate.RLock()
				t0 := time.Now()
				var acc spectrum.Accepted
				switch op.Op {
				case spectrum.OpSubmit:
					acc, err = client.Submit(ctx, *op.Bid)
				case spectrum.OpUpdate:
					acc, err = client.Update(ctx, op.ID, *op.Values)
				case spectrum.OpMove:
					acc, err = client.Move(ctx, op.ID, *op.Bid)
				case spectrum.OpWithdraw:
					acc, err = client.Withdraw(ctx, op.ID)
				}
				d := time.Since(t0)
				gate.RUnlock()
				if err != nil {
					// In scenario mode a per-request submit can bounce off the
					// admission cap just like a batched one; surface it to the
					// replayer as the per-item 429 it would have been.
					var ae *spectrum.APIError
					if cfg.scen != nil && op.Op == spectrum.OpSubmit &&
						errors.As(err, &ae) && ae.Code == http.StatusTooManyRequests {
						results = append(results, spectrum.OpResult{Code: 429, Error: ae.Msg})
						continue
					}
					return replay.Moves(), replay.Rejected429(), err
				}
				mu.Lock()
				*requests++
				*mutations++
				*lat = append(*lat, d)
				mu.Unlock()
				results = append(results, spectrum.OpResult{ID: acc.ID, Status: acc.Status, Code: 202})
			}
		}
		if err := replay.Observe(results); err != nil {
			return replay.Moves(), replay.Rejected429(), err
		}
		if !more {
			return replay.Moves(), replay.Rejected429(), nil
		}
		if cfg.pace > 0 {
			select {
			case <-ctx.Done():
				return replay.Moves(), replay.Rejected429(), ctx.Err()
			case <-time.After(cfg.pace):
			}
		}
	}
}

// joinNames lists the scenario registry for -scenario's usage string.
func joinNames() string {
	names := scenario.Names()
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "|"
		}
		out += n
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
