// Command brokerload is the load generator of the live spectrum broker: it
// replays churn traces from the shared generator (market.GenTrace — the
// same workload brokerd -selftest and experiments E17/E18 use) through the
// public SDK (pkg/spectrum) at configurable concurrency and batch size,
// and reports mutation throughput, request latency, and the epoch commit
// latency observed over the /v1/watch stream.
//
// Target a running daemon:
//
//	brokerd -addr :8080 -k 4 -epoch 100ms &
//	brokerload -addr http://127.0.0.1:8080 -k 4 -concurrency 4 -batch 64
//
// or run self-contained (-local starts an in-process broker, HTTP server,
// and ticker, so one command demonstrates the whole stack):
//
//	brokerload -local -model disk -concurrency 4 -batch 64 -epochs 40
//
// -batch 0 issues every mutation as its own HTTP request (the per-request
// path the batch endpoint is benchmarked against).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/broker"
	"repro/internal/market"
	"repro/pkg/spectrum"
)

func main() {
	var (
		addr        = flag.String("addr", "", "base URL of a running brokerd (e.g. http://127.0.0.1:8080); empty requires -local")
		local       = flag.Bool("local", false, "start an in-process broker + server + ticker instead of targeting -addr")
		model       = flag.String("model", "disk", "interference backend of the trace geometry (and the -local broker)")
		delta       = flag.Float64("delta", 1, "guard-zone parameter of the protocol/ieee80211 models")
		k           = flag.Int("k", 4, "number of channels (must match the target broker)")
		seed        = flag.Int64("seed", 1, "base trace seed (worker w replays seed+w)")
		epochs      = flag.Int("epochs", 40, "trace epochs per worker")
		rate        = flag.Float64("rate", 6, "mean arrivals per trace epoch")
		concurrency = flag.Int("concurrency", 2, "parallel trace streams")
		batch       = flag.Int("batch", 64, "max mutations per /v1/batch request; 0 = one request per mutation")
		pace        = flag.Duration("pace", 0, "sleep between trace steps (0 = replay as fast as possible)")
		epoch       = flag.Duration("epoch", 100*time.Millisecond, "tick interval of the -local broker")
		maxBidders  = flag.Int("max-bidders", 4096, "population cap of the -local broker")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	base := *addr
	if *local {
		cm, err := broker.ModelByName(*model, *delta)
		if err != nil {
			log.Fatalf("brokerload: %v", err)
		}
		b, err := broker.New(broker.Config{K: *k, Model: cm, MaxBidders: *maxBidders})
		if err != nil {
			log.Fatalf("brokerload: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("brokerload: %v", err)
		}
		srv := &http.Server{Handler: broker.NewHandler(b)}
		go srv.Serve(ln)
		defer srv.Close()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(*epoch)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					b.Tick()
				}
			}
		}()
		base = fmt.Sprintf("http://%s", ln.Addr())
		log.Printf("brokerload: local broker on %s (model=%s k=%d epoch=%s)", base, cm.Name(), *k, *epoch)
	}
	if base == "" {
		log.Fatal("brokerload: pass -addr or -local")
	}

	ctx := context.Background()
	client := spectrum.NewClient(base)

	// Watch epoch commits for the whole run; the server reports its own
	// solve-and-commit latency per epoch.
	wctx, wcancel := context.WithCancel(ctx)
	var watch struct {
		sync.Mutex
		epochs  int
		total   time.Duration
		max     time.Duration
		welfare float64
	}
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for rep := range client.Watch(wctx, -1) {
			watch.Lock()
			watch.epochs++
			watch.total += rep.Latency
			if rep.Latency > watch.max {
				watch.max = rep.Latency
			}
			watch.welfare = rep.Welfare
			watch.Unlock()
		}
	}()

	var agg struct {
		sync.Mutex
		mutations int
		requests  int
		lat       []time.Duration
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, *concurrency)
	for w := 0; w < *concurrency; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := runWorker(ctx, client, workerConfig{
				seed: *seed + int64(w), epochs: *epochs, k: *k, rate: *rate,
				model: *model, batch: *batch, pace: *pace,
			}, &agg.Mutex, &agg.mutations, &agg.requests, &agg.lat); err != nil {
				errs <- fmt.Errorf("worker %d: %w", w, err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Leave the watcher one more epoch to observe the tail, then stop it.
	time.Sleep(2 * *epoch)
	wcancel()
	<-watchDone
	select {
	case err := <-errs:
		log.Fatalf("brokerload: %v", err)
	default:
	}

	agg.Lock()
	sort.Slice(agg.lat, func(i, j int) bool { return agg.lat[i] < agg.lat[j] })
	pct := func(p float64) time.Duration {
		if len(agg.lat) == 0 {
			return 0
		}
		i := int(p * float64(len(agg.lat)-1))
		return agg.lat[i]
	}
	report := map[string]any{
		"base":            base,
		"workers":         *concurrency,
		"batch":           *batch,
		"trace_epochs":    *epochs,
		"mutations":       agg.mutations,
		"requests":        agg.requests,
		"elapsed_ns":      elapsed.Nanoseconds(),
		"mutations_per_s": float64(agg.mutations) / elapsed.Seconds(),
		"req_p50_ns":      pct(0.50).Nanoseconds(),
		"req_p95_ns":      pct(0.95).Nanoseconds(),
		"req_max_ns":      pct(1.0).Nanoseconds(),
	}
	watch.Lock()
	report["epochs_committed"] = watch.epochs
	meanCommit := time.Duration(0)
	if watch.epochs > 0 {
		meanCommit = watch.total / time.Duration(watch.epochs)
	}
	report["commit_latency_mean_ns"] = meanCommit.Nanoseconds()
	report["commit_latency_max_ns"] = watch.max.Nanoseconds()
	report["final_welfare"] = watch.welfare
	watch.Unlock()
	agg.Unlock()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatalf("brokerload: %v", err)
		}
		return
	}
	fmt.Printf("brokerload: %d workers × %d trace epochs against %s\n", *concurrency, *epochs, base)
	fmt.Printf("  mutations: %d in %s (%.0f mutations/s) over %d requests (batch ≤ %d)\n",
		agg.mutations, elapsed.Round(time.Millisecond), report["mutations_per_s"], agg.requests, *batch)
	fmt.Printf("  request latency: p50 %s  p95 %s  max %s\n",
		pct(0.50).Round(10*time.Microsecond), pct(0.95).Round(10*time.Microsecond), pct(1.0).Round(10*time.Microsecond))
	fmt.Printf("  epochs committed: %d, commit latency mean %s max %s, last welfare %.2f\n",
		report["epochs_committed"], meanCommit.Round(10*time.Microsecond),
		watch.max.Round(10*time.Microsecond), report["final_welfare"])
}

type workerConfig struct {
	seed   int64
	epochs int
	k      int
	rate   float64
	model  string
	batch  int
	pace   time.Duration
}

// runWorker replays one trace stream through the SDK: each trace step's
// mutations go out as /v1/batch requests of at most cfg.batch ops (or as
// individual mutation requests when batch is 0), with every request timed.
func runWorker(ctx context.Context, client *spectrum.Client, cfg workerConfig,
	mu *sync.Mutex, mutations, requests *int, lat *[]time.Duration) error {
	tr := market.GenTrace(market.TraceConfig{
		Seed:          cfg.seed,
		Epochs:        cfg.epochs,
		K:             cfg.k,
		Side:          300,
		ArrivalRate:   cfg.rate,
		MeanLifetime:  5,
		PrimaryUsers:  3,
		PrimaryRadius: 60,
		PrimaryActive: 0.5,
		MaxUsers:      120,
		Model:         cfg.model,
	})
	replay := market.NewOpsReplayer(tr, true)
	for {
		ops, more, err := replay.Step()
		if err != nil {
			return err
		}
		results := make([]spectrum.OpResult, 0, len(ops))
		if cfg.batch > 0 {
			for len(ops) > 0 {
				n := min(cfg.batch, len(ops))
				t0 := time.Now()
				res, err := client.SubmitBatch(ctx, ops[:n])
				if err != nil {
					return err
				}
				d := time.Since(t0)
				mu.Lock()
				*requests++
				*mutations += n
				*lat = append(*lat, d)
				mu.Unlock()
				results = append(results, res.Results...)
				ops = ops[n:]
			}
		} else {
			for _, op := range ops {
				t0 := time.Now()
				var acc spectrum.Accepted
				switch op.Op {
				case spectrum.OpSubmit:
					acc, err = client.Submit(ctx, *op.Bid)
				case spectrum.OpUpdate:
					acc, err = client.Update(ctx, op.ID, *op.Values)
				case spectrum.OpMove:
					acc, err = client.Move(ctx, op.ID, *op.Bid)
				case spectrum.OpWithdraw:
					acc, err = client.Withdraw(ctx, op.ID)
				}
				if err != nil {
					return err
				}
				d := time.Since(t0)
				mu.Lock()
				*requests++
				*mutations++
				*lat = append(*lat, d)
				mu.Unlock()
				results = append(results, spectrum.OpResult{ID: acc.ID, Status: acc.Status, Code: 202})
			}
		}
		if err := replay.Observe(results); err != nil {
			return err
		}
		if !more {
			return nil
		}
		if cfg.pace > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(cfg.pace):
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
