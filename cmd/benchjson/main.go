// Command benchjson converts `go test -bench` output on stdin into the JSON
// record used for the repository's perf trajectory (BENCH_<n>.json): one
// entry per benchmark with ns/op and, when -benchmem was set, B/op and
// allocs/op.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -label baseline > BENCH_2.json
//
// -attach key=path embeds an external JSON document (e.g. a brokerload
// -json report) into the record under extras.<key>, so one BENCH_<n>.json
// can carry both micro-benchmarks and workload-level measurements:
//
//	... | benchjson -label x -attach read_workload=/tmp/load.json > BENCH_6.json
//
// -best collapses the repeated lines a `go test -count=N` run emits per
// benchmark down to the fastest sample (minimum ns/op, keeping that run's
// B/op and allocs/op), recording how many samples were folded in. Combined
// with a fixed -benchtime iteration count this makes the recorded numbers a
// min-of-N protocol — the standard way to cut scheduler noise out of a
// committed baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Samples is how many -count repetitions this entry was min-picked
	// from; only set (and > 1) when -best folded repeated lines.
	Samples int `json:"samples,omitempty"`
}

// Record is the file layout of BENCH_<n>.json.
type Record struct {
	Label      string                     `json:"label"`
	Goos       string                     `json:"goos,omitempty"`
	Goarch     string                     `json:"goarch,omitempty"`
	CPU        string                     `json:"cpu,omitempty"`
	Benchmarks []Result                   `json:"benchmarks"`
	Extras     map[string]json.RawMessage `json:"extras,omitempty"`
}

// attachFlags collects repeated -attach key=path pairs.
type attachFlags []string

func (a *attachFlags) String() string { return strings.Join(*a, ",") }

func (a *attachFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want key=path, got %q", v)
	}
	*a = append(*a, v)
	return nil
}

// parseLine decodes one benchmark result line; ok is false for any other
// output line (headers, PASS, timing summary).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(v, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(v, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return r, true
}

// bestOf keeps, per benchmark name, the sample with the lowest ns/op —
// B/op and allocs/op come from that same run, not a mix — and stamps each
// survivor with the number of samples it was picked from. First-appearance
// order is preserved so the record diffs cleanly against -count=1 files.
func bestOf(in []Result) []Result {
	order := make([]string, 0, len(in))
	byName := make(map[string]Result, len(in))
	seen := make(map[string]int, len(in))
	for _, r := range in {
		seen[r.Name]++
		prev, ok := byName[r.Name]
		if !ok {
			order = append(order, r.Name)
			byName[r.Name] = r
		} else if r.NsPerOp < prev.NsPerOp {
			byName[r.Name] = r
		}
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		r := byName[name]
		r.Samples = seen[name]
		out = append(out, r)
	}
	return out
}

func main() {
	label := flag.String("label", "dev", "label stored in the record (e.g. git revision or \"baseline\")")
	best := flag.Bool("best", false, "fold -count=N repetitions of a benchmark to the fastest sample (min ns/op)")
	var attach attachFlags
	flag.Var(&attach, "attach", "embed a JSON file under extras.<key> (key=path, repeatable)")
	flag.Parse()

	rec := Record{Label: *label}
	for _, kv := range attach {
		key, path, _ := strings.Cut(kv, "=")
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -attach %s: %v\n", kv, err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: -attach %s: not valid JSON\n", kv)
			os.Exit(1)
		}
		if rec.Extras == nil {
			rec.Extras = make(map[string]json.RawMessage)
		}
		rec.Extras[key] = json.RawMessage(raw)
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rec.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if r, ok := parseLine(line); ok {
				rec.Benchmarks = append(rec.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rec.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *best {
		rec.Benchmarks = bestOf(rec.Benchmarks)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
