package main

import "testing"

func TestBestOfMinPicks(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkA-8", Iterations: 100, NsPerOp: 120, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "BenchmarkB-8", Iterations: 100, NsPerOp: 50},
		{Name: "BenchmarkA-8", Iterations: 100, NsPerOp: 90, BytesPerOp: 48, AllocsPerOp: 1},
		{Name: "BenchmarkA-8", Iterations: 100, NsPerOp: 110, BytesPerOp: 64, AllocsPerOp: 2},
		{Name: "BenchmarkB-8", Iterations: 100, NsPerOp: 55},
	}
	out := bestOf(in)
	if len(out) != 2 {
		t.Fatalf("want 2 folded benchmarks, got %d", len(out))
	}
	a, b := out[0], out[1]
	if a.Name != "BenchmarkA-8" || b.Name != "BenchmarkB-8" {
		t.Fatalf("first-appearance order lost: %q, %q", a.Name, b.Name)
	}
	if a.NsPerOp != 90 || a.BytesPerOp != 48 || a.AllocsPerOp != 1 {
		t.Errorf("A should be the whole fastest sample, got %+v", a)
	}
	if a.Samples != 3 || b.Samples != 2 {
		t.Errorf("sample counts: A=%d B=%d", a.Samples, b.Samples)
	}
	if b.NsPerOp != 50 {
		t.Errorf("B min ns/op: got %v", b.NsPerOp)
	}
}

func TestParseLineMemColumns(t *testing.T) {
	r, ok := parseLine("BenchmarkBrokerEpochWarm/disk-8   \t 300\t 41234 ns/op\t 1024 B/op\t 17 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Iterations != 300 || r.NsPerOp != 41234 || r.BytesPerOp != 1024 || r.AllocsPerOp != 17 {
		t.Fatalf("parsed %+v", r)
	}
	if _, ok := parseLine("PASS"); ok {
		t.Error("PASS parsed as a benchmark")
	}
}
