// Package repro reproduces "Approximation Algorithms for Secondary Spectrum
// Auctions" (Hoefer, Kesselheim, Vöcking; SPAA 2011) as a production-quality
// Go library, using only the standard library.
//
// The repository implements the paper's LP-based approximation framework for
// combinatorial auctions with (edge-weighted) conflict graphs — including
// every interference model of its Section 4, the truthful-in-expectation
// mechanism of Section 5, the asymmetric-channel variant of Section 6, and
// the baselines and hardness constructions its analysis is measured against.
//
// Start at internal/core for the API front door, README.md for the
// architecture, DESIGN.md for the system inventory and paper-to-code map,
// and EXPERIMENTS.md for the claim-by-claim reproduction record. This root
// package holds the repository-level test and benchmark harness:
//
//	go test ./...                 # full suite
//	go test -bench=. -benchmem .  # one benchmark per experiment table,
//	                              # plus serial-vs-parallel engine benchmarks
//	go run ./cmd/auctionsim       # regenerate every experiment table
//	                              # (concurrently; -jobs 1 for serial)
package repro
