// Package repro's root benchmark harness: one benchmark per experiment of
// EXPERIMENTS.md (regenerating the corresponding table end to end), plus
// micro-benchmarks of the hot components (simplex, demand oracles, rounding,
// ρ measurement).
//
// Run with:
//
//	go test -bench=. -benchmem .
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/auction"
	"repro/internal/baseline"
	"repro/internal/broker"
	"repro/internal/exp"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/market"
	"repro/internal/mechanism"
	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/serialize"
	"repro/internal/valuation"
	"repro/pkg/spectrum"
)

// benchRunner regenerates every quick experiment table per iteration on a
// pool of the given width; jobs=1 is the fully serial baseline, jobs=0 uses
// GOMAXPROCS. Comparing the two measures the end-to-end speedup of the
// parallel experiment engine.
func benchRunner(b *testing.B, jobs int) {
	exp.SetTrialWorkers(jobs)
	defer exp.SetTrialWorkers(0)
	r := exp.Runner{Jobs: jobs, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, out := range r.Run(exp.All) {
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
	}
}

func BenchmarkAllExperimentsSerial(b *testing.B)   { benchRunner(b, 1) }
func BenchmarkAllExperimentsParallel(b *testing.B) { benchRunner(b, 0) }

// benchParallelTrials measures the trial-level fan-out helper itself on the
// A2-shaped workload: repeated randomized roundings of one LP solution.
func benchParallelTrials(b *testing.B, workers int) {
	in := benchInstance(21, 32, 4)
	sol, err := in.SolveLP()
	if err != nil {
		b.Fatal(err)
	}
	exp.SetTrialWorkers(workers)
	defer exp.SetTrialWorkers(0)
	welfares := make([]float64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.ParallelTrials(1, len(welfares), func(t int, rng *rand.Rand) {
			a, _ := in.RoundOnce(sol, rng)
			welfares[t] = a.Welfare(in.Bidders)
		})
	}
}

func BenchmarkParallelTrialsSerial(b *testing.B)   { benchParallelTrials(b, 1) }
func BenchmarkParallelTrialsParallel(b *testing.B) { benchParallelTrials(b, 0) }

// benchExperiment runs one experiment table per iteration.
func benchExperiment(b *testing.B, id string) {
	e := exp.Find(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if table := e.Run(true); len(table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1UnweightedRounding(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2WeightedRounding(b *testing.B)   { benchExperiment(b, "E2") }
func BenchmarkE3DiskRho(b *testing.B)            { benchExperiment(b, "E3") }
func BenchmarkE4ProtocolRho(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5PhysicalRho(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6PowerControl(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkE7Baselines(b *testing.B)          { benchExperiment(b, "E7") }
func BenchmarkE8Asymmetric(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkE9Mechanism(b *testing.B)          { benchExperiment(b, "E9") }
func BenchmarkE10Hardness(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11IntegralityGap(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkE12ModelZooRho(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13Scheduling(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkE14RuntimeScaling(b *testing.B)    { benchExperiment(b, "E14") }
func BenchmarkE15MarketSimulation(b *testing.B)  { benchExperiment(b, "E15") }
func BenchmarkA1RhoAblation(b *testing.B)        { benchExperiment(b, "A1") }
func BenchmarkA2SamplingAblation(b *testing.B)   { benchExperiment(b, "A2") }
func BenchmarkA3LocalRatioAblation(b *testing.B) { benchExperiment(b, "A3") }
func BenchmarkA4LiteralAblation(b *testing.B)    { benchExperiment(b, "A4") }
func BenchmarkE16Revenue(b *testing.B)           { benchExperiment(b, "E16") }

// --- micro-benchmarks ---

func benchInstance(seed int64, n, k int) *auction.Instance {
	rng := rand.New(rand.NewSource(seed))
	links := geom.UniformLinks(rng, n, 100, 2, 8)
	conf := models.Protocol(links, 1)
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

func BenchmarkSimplexDense(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m, n = 60, 80
	c := make([]float64, n)
	for j := range c {
		c[j] = rng.Float64()
	}
	rows := make([][]float64, m)
	for i := range rows {
		rows[i] = make([]float64, n)
		for j := range rows[i] {
			rows[i][j] = rng.Float64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := lp.NewMaximize(c)
		for _, r := range rows {
			p.AddConstraint(r, lp.LE, 10)
		}
		if _, _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColumnGenerationLP(b *testing.B) {
	in := benchInstance(1, 40, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.SolveLP(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundingSampled(b *testing.B) {
	in := benchInstance(2, 40, 4)
	sol, err := in.SolveLP()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.RoundOnce(sol, rng)
	}
}

func BenchmarkRoundingDerandomized(b *testing.B) {
	in := benchInstance(3, 40, 4)
	sol, err := in.SolveLP()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.RoundDerandomized(sol)
	}
}

func BenchmarkDemandOracleMix(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const k = 16
	bidders := valuation.RandomMix(rng, 50, k, 1, 10)
	prices := make([]float64, k)
	for j := range prices {
		prices[j] = rng.Float64() * 5
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range bidders {
			v.Demand(prices)
		}
	}
}

func BenchmarkMeasureRhoDisk(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	centers := geom.UniformPoints(rng, 100, 100)
	radii := make([]float64, 100)
	for i := range radii {
		radii[i] = 2 + rng.Float64()*8
	}
	conf := models.Disk(centers, radii)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conf.Binary.MeasureRho(conf.Pi, 28)
	}
}

func BenchmarkAssignPowers(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	links := geom.UniformLinks(rng, 30, 300, 1, 5)
	params := models.DefaultSINR()
	conf := models.PowerControl(links, params)
	var set []int
	for _, v := range rng.Perm(30) {
		cand := append(set, v)
		if conf.W.IsIndependent(cand) {
			set = cand
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := models.AssignPowers(links, set, params); !ok {
			b.Fatal("independent set must be power-feasible")
		}
	}
}

func BenchmarkPhysicalConflictGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	links := geom.UniformLinks(rng, 100, 200, 1, 8)
	params := models.DefaultSINR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		models.Physical(links, models.UniformPower, params)
	}
}

func BenchmarkLocalRatioMWIS(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := graph.RandomGNP(rng, 200, 0.1)
	pi := g.DegeneracyOrdering()
	weights := make([]float64, 200)
	for v := range weights {
		weights[v] = rng.Float64() * 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.LocalRatioMWIS(g, pi, weights)
	}
}

func BenchmarkFirstFitColoring(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomGNP(rng, 300, 0.05)
	pi := g.DegeneracyOrdering()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.FirstFit(g, pi)
	}
}

func BenchmarkMechanismRun(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	centers := geom.UniformPoints(rng, 6, 60)
	radii := make([]float64, 6)
	for i := range radii {
		radii[i] = 4 + rng.Float64()*8
	}
	conf := models.Disk(centers, radii)
	bidders := make([]valuation.Valuation, 6)
	for i := range bidders {
		bidders[i] = valuation.RandomAdditive(rng, 2, 1, 10)
	}
	in, err := auction.NewInstance(conf, 2, bidders)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mechanism.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarketEpochs(b *testing.B) {
	cfg := market.DefaultConfig(11)
	cfg.Epochs = 5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := market.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerializeRoundTrip(b *testing.B) {
	in := benchInstance(12, 40, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := serialize.Write(&buf, in); err != nil {
			b.Fatal(err)
		}
		if _, err := serialize.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactOPTSmall(b *testing.B) {
	in := benchInstance(13, 10, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.ExactOPT(in)
	}
}

// benchMakeBid draws constant-density benchmark geometry for the named
// backend: positions uniform over a side×side square, disk radii (and link
// lengths) in [3, 10), K=4 valuations.
func benchMakeBid(rng *rand.Rand, model string, side float64) broker.Bid {
	values := make([]float64, 4)
	for j := range values {
		values[j] = 1 + rng.Float64()*9
	}
	pos := geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	r := 3 + rng.Float64()*7
	if model == "protocol" || model == "ieee80211" {
		th := rng.Float64() * 2 * math.Pi
		return broker.Bid{
			Link: &geom.Link{
				Sender:   pos,
				Receiver: geom.Point{X: pos.X + r*math.Cos(th), Y: pos.Y + r*math.Sin(th)},
			},
			Values: values,
		}
	}
	return broker.Bid{Pos: pos, Radius: r, Values: values}
}

// benchSide is the square side holding n bidders at the bench tier's
// constant density (~2000 area units per bidder; 3333 for distance-2, whose
// squared conflict graph is much denser at equal population). The 80-bidder
// tier keeps the historical 400×400 market for comparability with earlier
// BENCH files.
func benchSide(model string, n int) float64 {
	if n <= 80 {
		return 400
	}
	per := 2000.0
	if model == "distance2" {
		per = 3333
	}
	return math.Sqrt(float64(n) * per)
}

// benchBroker is a prepopulated broker reused across benchmark reruns (-count)
// — a 10k-bidder prepopulation re-solves thousands of components and would
// otherwise dominate every rerun's setup. Steady-state churn keeps the
// population and density constant, so reuse does not drift the workload.
type benchBroker struct {
	br   *broker.Broker
	live []broker.BidderID
	rng  *rand.Rand
}

var benchBrokers = map[string]*benchBroker{}

func getBenchBroker(b *testing.B, model string, n int, cold bool) *benchBroker {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%v", model, n, cold)
	if s, ok := benchBrokers[key]; ok {
		return s
	}
	cm, err := broker.ModelByName(model, 1)
	if err != nil {
		b.Fatal(err)
	}
	br, err := broker.New(broker.Config{K: 4, Model: cm, Cold: cold, MaxBidders: n + 64})
	if err != nil {
		b.Fatal(err)
	}
	pop := n
	if n <= 80 && model == "distance2" {
		pop = 48 // historical small-tier population for the dense distance-2 market
	}
	side := benchSide(model, n)
	s := &benchBroker{br: br, rng: rand.New(rand.NewSource(42))}
	for i := 0; i < pop; i++ {
		id, err := br.Submit(benchMakeBid(s.rng, model, side))
		if err != nil {
			b.Fatal(err)
		}
		s.live = append(s.live, id)
	}
	if rep := br.Tick(); rep.Errors > 0 {
		b.Fatalf("prepopulation epoch errors: %+v", rep)
	}
	benchBrokers[key] = s
	return s
}

// benchBrokerEpoch measures one steady-state broker epoch with small churn
// (one departure + one arrival per tick) over a market spread into many
// conflict components, per interference backend and population tier. Warm
// keeps the component cache, persistent masters, and column pool; Cold
// re-solves every component from scratch each epoch — the pair quantifies
// what the incremental path buys under each model.
func benchBrokerEpoch(b *testing.B, model string, n int, cold bool) {
	s := getBenchBroker(b, model, n, cold)
	side := benchSide(model, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.br.Withdraw(s.live[0]); err != nil {
			b.Fatal(err)
		}
		s.live = s.live[1:]
		id, err := s.br.Submit(benchMakeBid(s.rng, model, side))
		if err != nil {
			b.Fatal(err)
		}
		s.live = append(s.live, id)
		rep := s.br.Tick()
		if rep.Errors > 0 {
			b.Fatalf("epoch errors: %+v", rep)
		}
	}
}

// benchBatchSubmit measures pure mutation ingestion through the public SDK
// over real HTTP: per iteration, 64 bid submissions reach the broker either
// as 64 individual POST /v1/bids requests or as one POST /v1/batch of 64
// ops. The broker is never ticked, so the numbers isolate exactly what the
// batch endpoint amortizes — HTTP round trips, JSON framing, and the
// per-mutation epoch-queue lock acquisition.
func benchBatchSubmit(b *testing.B, batched bool) {
	br, err := broker.New(broker.Config{K: 4, MaxBidders: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(broker.NewHandler(br))
	defer srv.Close()
	client := spectrum.NewClient(srv.URL)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	const batch = 64
	bids := make([]spectrum.Bid, batch)
	for i := range bids {
		values := make([]float64, 4)
		for j := range values {
			values[j] = 1 + rng.Float64()*9
		}
		bids[i] = spectrum.Bid{
			Pos:    geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Radius: 3 + rng.Float64()*7,
			Values: values,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batched {
			ops := make([]spectrum.Op, batch)
			for j := range ops {
				ops[j] = spectrum.Op{Op: spectrum.OpSubmit, Bid: &bids[j]}
			}
			res, err := client.SubmitBatch(ctx, ops)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range res.Results {
				if !r.OK() {
					b.Fatalf("batch item rejected: %+v", r)
				}
			}
		} else {
			for j := range bids {
				if _, err := client.Submit(ctx, bids[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "mut/s")
}

// BenchmarkBatchSubmit compares the two ingestion paths at batch size 64;
// BENCH_5.json records the pair (the batch path must be ≥ 3× the
// per-request path).
func BenchmarkBatchSubmit(b *testing.B) {
	b.Run("per-request", func(b *testing.B) { benchBatchSubmit(b, false) })
	b.Run("batch64", func(b *testing.B) { benchBatchSubmit(b, true) })
}

func BenchmarkBrokerEpochWarm(b *testing.B) {
	for _, m := range broker.ModelNames() {
		b.Run(m+"/80", func(b *testing.B) { benchBrokerEpoch(b, m, 80, false) })
		b.Run(m+"/10k", func(b *testing.B) { benchBrokerEpoch(b, m, 10000, false) })
	}
}

// Cold stays small-only: re-solving every component from scratch at 10k
// bidders measures the LP tier, not the epoch path.
func BenchmarkBrokerEpochCold(b *testing.B) {
	for _, m := range broker.ModelNames() {
		b.Run(m+"/80", func(b *testing.B) { benchBrokerEpoch(b, m, 80, true) })
	}
}

// benchChurnModel is a prepopulated bare ConflictModel shared across
// benchmark reruns; linear prepopulation at 10k is O(n²) and would otherwise
// dominate every -count rerun.
type benchChurnModel struct {
	m    broker.ConflictModel
	bids []broker.Bid
	live []broker.BidderID
	next broker.BidderID
	rng  *rand.Rand
}

var benchChurnModels = map[string]*benchChurnModel{}

func getChurnModel(b *testing.B, model string, n int, indexed bool) *benchChurnModel {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%v", model, n, indexed)
	if s, ok := benchChurnModels[key]; ok {
		return s
	}
	delta := 1.0
	if model == "ieee80211" {
		delta = 0.5
	}
	var cm broker.ConflictModel
	var err error
	if indexed {
		cm, err = broker.ModelByName(model, delta)
	} else {
		cm, err = broker.LinearModelByName(model, delta)
	}
	if err != nil {
		b.Fatal(err)
	}
	side := benchSide(model, n)
	s := &benchChurnModel{m: cm, rng: rand.New(rand.NewSource(42))}
	for i := 0; i < n; i++ {
		s.next++
		bid := benchMakeBid(s.rng, model, side)
		s.bids = append(s.bids, bid)
		s.live = append(s.live, s.next)
		cm.Arrive(s.next, &bid)
	}
	benchChurnModels[key] = s
	return s
}

// benchConflictChurn measures bare edge-delta maintenance — one Depart, one
// Arrive, and one Move per iteration against a steady n-bidder population —
// with no broker, solver, or allocation work in the loop. The grid/linear
// pair is the spatial index's headline number: BENCH_8.json requires ≥5× at
// 10k.
func benchConflictChurn(b *testing.B, model string, n int, indexed bool) {
	s := getChurnModel(b, model, n, indexed)
	side := benchSide(model, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.m.Depart(s.live[0])
		s.live = s.live[1:]
		s.bids = s.bids[1:]
		s.next++
		bid := benchMakeBid(s.rng, model, side)
		s.bids = append(s.bids, bid)
		s.live = append(s.live, s.next)
		s.m.Arrive(s.next, &bid)
		j := len(s.live) / 2
		moved := benchMakeBid(s.rng, model, side)
		s.bids[j] = moved
		s.m.Move(s.live[j], &moved)
	}
}

// BenchmarkConflictChurn drives the mutation-churn microbench per backend.
// The linear baseline runs at 10k only; at 100k its O(n) scans (and O(n²)
// prepopulation) make the comparison pointless, so that tier is grid-only.
func BenchmarkConflictChurn(b *testing.B) {
	for _, m := range broker.ModelNames() {
		b.Run(m+"/10k/grid", func(b *testing.B) { benchConflictChurn(b, m, 10000, true) })
		b.Run(m+"/10k/linear", func(b *testing.B) { benchConflictChurn(b, m, 10000, false) })
		b.Run(m+"/100k/grid", func(b *testing.B) { benchConflictChurn(b, m, 100000, true) })
	}
}

// benchMirrorStack seeds a broker with one committed epoch of 64 bids over
// HTTP and attaches a fully synced Mirror plus its read-only HTTP frontend.
// MaxStaleness is set far beyond the benchmark duration so no read ever
// degrades mid-measurement: the numbers isolate steady-state read cost.
func benchMirrorStack(b *testing.B) (brokerURL, mirrorURL string, m *spectrum.Mirror) {
	b.Helper()
	br, err := broker.New(broker.Config{K: 4, Prices: true, MaxBidders: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(broker.NewHandler(br))
	b.Cleanup(srv.Close)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 64; i++ {
		values := make([]float64, 4)
		for j := range values {
			values[j] = 1 + rng.Float64()*9
		}
		if _, err := br.Submit(broker.Bid{
			Pos:    geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Radius: 3 + rng.Float64()*7,
			Values: values,
		}); err != nil {
			b.Fatal(err)
		}
	}
	if rep := br.Tick(); rep.Errors > 0 {
		b.Fatalf("seed epoch errors: %+v", rep)
	}
	m, err = spectrum.NewMirror(spectrum.MirrorConfig{
		Client:       spectrum.NewClient(srv.URL),
		MaxStaleness: time.Hour,
		PollTimeout:  500 * time.Millisecond,
		Seed:         1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); m.Run(ctx) }()
	b.Cleanup(func() { cancel(); <-done })
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := m.WaitForEpoch(wctx, 1); err != nil {
		b.Fatal(err)
	}
	msrv := httptest.NewServer(spectrum.NewMirrorHandler(m))
	b.Cleanup(msrv.Close)
	return srv.URL, msrv.URL, m
}

// benchReadHTTP times GET <base>/v1/allocation round trips.
func benchReadHTTP(b *testing.B, base string) {
	url := base + "/v1/allocation"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
}

// BenchmarkMirrorRead compares the three read paths the replica tier offers:
// a GET against the broker itself (shares the mutation path's locks), the
// same GET against a brokerproxy-style Mirror frontend, and the in-process
// Mirror accessor that a co-located reader would use. BENCH_6.json records
// the trio; the mirror HTTP path must not be slower than the broker path and
// the direct path runs at memory speed.
func BenchmarkMirrorRead(b *testing.B) {
	brokerURL, mirrorURL, m := benchMirrorStack(b)
	b.Run("broker-http", func(b *testing.B) { benchReadHTTP(b, brokerURL) })
	b.Run("mirror-http", func(b *testing.B) { benchReadHTTP(b, mirrorURL) })
	b.Run("mirror-direct", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				a, err := m.Allocation()
				if err != nil {
					b.Fatal(err)
				}
				if a.Epoch < 1 {
					b.Fatalf("bad epoch %d", a.Epoch)
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
	})
}
