// SINR links: physical-model auction with power control (Theorem 17).
//
// Twenty sender/receiver pairs bid for three channels. Feasibility is the
// SINR constraint with transmission powers chosen by the allocator: the
// conflict graph carries the Theorem 17 edge weights, the LP+rounding
// pipeline picks per-channel link sets, and the Foschini–Miljanic fixed
// point computes actual powers, which the example verifies against the raw
// SINR inequalities.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/valuation"
)

func main() {
	const (
		n = 20
		k = 3
	)
	rng := rand.New(rand.NewSource(99))
	params := models.DefaultSINR()

	links := geom.UniformLinks(rng, n, 300, 1, 8)
	conf := models.PowerControl(links, params)

	bidders := make([]valuation.Valuation, n)
	for i := range bidders {
		// Links value channels by demand volume; unit-demand models a pair
		// that needs one clean channel.
		if i%2 == 0 {
			bidders[i] = valuation.RandomAdditive(rng, k, 1, 8)
		} else {
			bidders[i] = valuation.RandomUnitDemand(rng, k, 2, 10)
		}
	}

	in, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		log.Fatal(err)
	}
	res, err := auction.Solve(in, auction.Options{Seed: 5, Samples: 25})
	if err != nil {
		log.Fatal(err)
	}
	der, _ := in.RoundDerandomized(res.LP)
	if w := der.Welfare(in.Bidders); w > res.Welfare {
		res.Alloc, res.Welfare = der, w
	}

	fmt.Printf("physical model with power control: n=%d links, k=%d channels, α=%.1f β=%.1f\n",
		n, k, params.Alpha, params.Beta)
	fmt.Printf("LP upper bound %.2f, welfare %.2f\n\n", res.LP.Value, res.Welfare)

	for j := 0; j < k; j++ {
		set := res.Alloc.ChannelSet(j)
		if len(set) == 0 {
			fmt.Printf("channel %d: unused\n", j)
			continue
		}
		powers, ok := models.AssignPowers(links, set, params)
		fmt.Printf("channel %d: links %v, feasible powers found: %v\n", j, set, ok)
		if !ok {
			log.Fatalf("channel %d: rounding emitted an infeasible set — this is a bug", j)
		}
		for i, link := range set {
			fmt.Printf("    link %2d  length %6.2f  power %.4g\n",
				link, links[link].Length(), powers[i])
		}
	}
}
