// Example client demonstrates the public broker SDK (pkg/spectrum) against
// a live in-process daemon: submit bids individually and as one batch with
// idempotency keys, watch the epoch commit land over the long-poll instead
// of polling, query the allocation, and re-bid.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/broker"
	"repro/pkg/spectrum"
)

func main() {
	// A self-contained daemon: broker + HTTP server + epoch ticker. Against
	// a real deployment this block is just `brokerd -addr :8080 -k 2`.
	b, err := broker.New(broker.Config{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: broker.NewHandler(b)}
	go srv.Serve(ln)
	defer srv.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				b.Tick()
			}
		}
	}()

	ctx := context.Background()
	client := spectrum.NewClient(fmt.Sprintf("http://%s", ln.Addr()))

	// One bid via the single-mutation endpoint...
	acc, err := client.Submit(ctx, spectrum.Bid{
		Pos: spectrum.Point{X: 10, Y: 20}, Radius: 5,
		Values: []float64{3, 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted bidder %d (%s)\n", acc.ID, acc.Status)

	// ...and two more as one ordered batch. The idempotency keys make the
	// request safe to retry: a replay returns the same ids without
	// enqueuing anything twice.
	res, err := client.SubmitBatch(ctx, []spectrum.Op{
		{Op: spectrum.OpSubmit, Key: "conflicting-neighbor", Bid: &spectrum.Bid{
			Pos: spectrum.Point{X: 12, Y: 20}, Radius: 5,
			Values: []float64{4, 4},
		}},
		{Op: spectrum.OpSubmit, Key: "far-away-xor", Bid: &spectrum.Bid{
			Pos: spectrum.Point{X: 200, Y: 200}, Radius: 5,
			XOR: []spectrum.XORAtom{{Channels: []int{0, 1}, Value: 9}},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Results {
		fmt.Printf("batched bidder %d accepted: %v\n", r.ID, r.OK())
	}

	// Learn about the commit from the epoch watch (long-poll) rather than
	// polling the allocation endpoint.
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	rep, err := client.WaitEpoch(wctx, res.Epoch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d committed: %d active, welfare %.1f\n", rep.Epoch, rep.Active, rep.Welfare)

	alloc, err := client.Allocation(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range alloc.Winners {
		fmt.Printf("bidder %d holds channels %v (value %.1f)\n", w.ID, w.Channels, w.Value)
	}

	// Re-bid and watch the next epoch pick it up.
	if _, err := client.Update(ctx, acc.ID, spectrum.Additive([]float64{8, 8})); err != nil {
		log.Fatal(err)
	}
	rep, err = client.WaitEpoch(wctx, rep.Epoch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after re-bid: epoch %d welfare %.1f\n", rep.Epoch, rep.Welfare)
	fmt.Println("client walkthrough complete")
}
