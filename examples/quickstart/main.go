// Quickstart: a minimal secondary spectrum auction.
//
// Eight base stations in a 50x50 area bid on two channels. Interference is
// modeled as a disk graph (transmission disks must not overlap on a shared
// channel). We solve the LP relaxation by column generation over the
// bidders' demand oracles, round it, and print the feasible allocation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/valuation"
)

func main() {
	const (
		n = 8
		k = 2
	)
	rng := rand.New(rand.NewSource(42))

	// Deployment: base stations with random positions and ranges.
	centers := geom.UniformPoints(rng, n, 50)
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = 5 + rng.Float64()*10
	}
	conf := models.Disk(centers, radii)

	// Bids: additive per-channel values.
	bidders := make([]valuation.Valuation, n)
	for i := range bidders {
		bidders[i] = valuation.RandomAdditive(rng, k, 1, 10)
	}

	in, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		log.Fatal(err)
	}
	res, err := auction.Solve(in, auction.Options{Derandomize: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model: %s (rho ≤ %.0f), n=%d bidders, k=%d channels\n",
		conf.Model, conf.RhoBound, n, k)
	fmt.Printf("LP upper bound b* = %.2f, achieved welfare = %.2f (proven factor %.1f)\n\n",
		res.LP.Value, res.Welfare, res.Factor)
	for v, t := range res.Alloc {
		fmt.Printf("  station %d at %v (range %.1f): channels %v, value %.2f\n",
			v, centers[v], radii[v], t.Channels(), bidders[v].Value(t))
	}
	if !in.Feasible(res.Alloc) {
		log.Fatal("allocation infeasible — this is a bug")
	}
	fmt.Println("\nallocation verified feasible: no two overlapping disks share a channel")
}
