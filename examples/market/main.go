// Market: the "eBay in the Sky" scenario from the paper's introduction.
//
// A broker auctions k channels every epoch. Secondary users come and go;
// primary users (TV broadcasters) toggle on and off, masking their channel
// inside their coverage disks. The example runs the same market twice —
// once with the paper's LP-rounding allocator, once with the greedy
// baseline — and prints the per-epoch trajectory.
package main

import (
	"fmt"
	"log"

	"repro/internal/market"
)

func main() {
	for _, alloc := range []market.Allocator{market.LPRounding, market.GreedyAllocator} {
		cfg := market.DefaultConfig(2026)
		cfg.Epochs = 12
		cfg.Allocator = alloc
		res, err := market.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== allocator: %s ===\n", alloc)
		fmt.Printf("%-6s %-6s %-8s %-10s %-10s %s\n",
			"epoch", "users", "winners", "welfare", "LP bound", "masked (user,ch) pairs")
		for _, e := range res.Epochs {
			bound := "-"
			if e.LPBound > 0 {
				bound = fmt.Sprintf("%.1f", e.LPBound)
			}
			fmt.Printf("%-6d %-6d %-8d %-10.1f %-10s %d\n",
				e.Epoch, e.ActiveUsers, e.Winners, e.Welfare, bound, e.MaskedPairs)
		}
		fmt.Printf("total welfare over %d epochs: %.1f\n\n", cfg.Epochs, res.TotalWelfare)
	}
}
