// Truthful: the Lavi–Swamy mechanism of Section 5 in action.
//
// A small disk-graph market is run as a truthful-in-expectation auction: the
// LP optimum x* is decomposed into a lottery over feasible allocations with
// expected allocation exactly x*/α, and bidders pay scaled fractional VCG
// prices. The example prints the lottery, the payments, and then
// demonstrates empirically that a bidder cannot gain by doubling or halving
// its reported values.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/mechanism"
	"repro/internal/models"
	"repro/internal/valuation"
)

func main() {
	const (
		n = 6
		k = 2
	)
	rng := rand.New(rand.NewSource(3))
	centers := geom.UniformPoints(rng, n, 60)
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = 4 + rng.Float64()*8
	}
	conf := models.Disk(centers, radii)

	truth := make([]valuation.Valuation, n)
	for i := range truth {
		truth[i] = valuation.RandomAdditive(rng, k, 1, 10)
	}
	in, err := auction.NewInstance(conf, k, truth)
	if err != nil {
		log.Fatal(err)
	}

	out, err := mechanism.Run(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("LP optimum b* = %.2f, scaling α = %.1f, expected welfare = %.4f (= b*/α: %.4f)\n\n",
		out.LP.Value, out.Alpha, out.ExpectedWelfare, out.LP.Value/out.Alpha)
	fmt.Println("allocation lottery:")
	for _, wa := range out.Distribution {
		if wa.Lambda < 1e-9 {
			continue
		}
		fmt.Printf("  λ=%.4f  welfare %.2f  %v\n",
			wa.Lambda, wa.Alloc.Welfare(truth), wa.Alloc)
	}
	fmt.Println("\npayments and expected utilities:")
	for v := 0; v < n; v++ {
		ev := out.ExpectedValue(v, truth[v])
		fmt.Printf("  bidder %d: E[value]=%.4f  payment=%.4f  E[utility]=%.4f\n",
			v, ev, out.Payments[v], ev-out.Payments[v])
	}

	// Try a manipulation: bidder 0 doubles and halves its report.
	fmt.Println("\nmanipulation check for bidder 0:")
	truthUtil := out.ExpectedValue(0, truth[0]) - out.Payments[0]
	for _, factor := range []float64{0.5, 2.0} {
		reported := make([]valuation.Valuation, n)
		copy(reported, truth)
		scaled := make([]float64, k)
		for j := range scaled {
			scaled[j] = truth[0].(*valuation.Additive).V[j] * factor
		}
		reported[0] = valuation.NewAdditive(scaled)
		in2 := in.WithBidders(reported)
		out2, err := mechanism.Run(in2)
		if err != nil {
			log.Fatal(err)
		}
		u := out2.ExpectedValue(0, truth[0]) - out2.Payments[0]
		fmt.Printf("  report ×%.1f: E[utility] %.6f (truthful: %.6f, gain %+.2e)\n",
			factor, u, truthUtil, u-truthUtil)
	}
	fmt.Println("\nno manipulation improves expected utility — truthful in expectation")
}
