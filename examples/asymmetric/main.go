// Asymmetric: per-channel interference (Section 6).
//
// In a real secondary market, different channels see different interference:
// a TV-band channel has a licensed broadcaster in the north of the city (so
// northern operators conflict more), while a radar band constrains the
// airport district. This example builds one conflict graph per channel by
// thresholding distances differently per band, then runs the O(kρ)
// asymmetric pipeline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/valuation"
)

func main() {
	const (
		n = 16
		k = 3
	)
	rng := rand.New(rand.NewSource(21))
	pts := geom.UniformPoints(rng, n, 100)

	// Channel 0: short-range interference everywhere.
	// Channel 1: long-range interference in the "north" (y > 50).
	// Channel 2: long-range interference in the "airport" corner.
	channels := make([]*graph.Graph, k)
	for j := range channels {
		channels[j] = graph.New(n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := pts[i].Dist(pts[j])
			if d < 15 {
				channels[0].AddEdge(i, j)
			}
			if d < 40 && pts[i].Y > 50 && pts[j].Y > 50 {
				channels[1].AddEdge(i, j)
			}
			if d < 40 && pts[i].X < 40 && pts[i].Y < 40 && pts[j].X < 40 && pts[j].Y < 40 {
				channels[2].AddEdge(i, j)
			}
		}
	}

	// Certify ρ under the identity ordering: the maximum per-channel
	// backward degree upper-bounds the inductive independence.
	pi := graph.IdentityOrdering(n)
	rho := 1.0
	for _, ch := range channels {
		for v := 0; v < n; v++ {
			if b := float64(len(ch.Backward(v, pi))); b > rho {
				rho = b
			}
		}
	}

	bidders := make([]valuation.Valuation, n)
	for i := range bidders {
		bidders[i] = valuation.RandomAdditive(rng, k, 1, 10)
	}
	in, err := auction.NewAsymmetricInstance(channels, pi, rho, bidders)
	if err != nil {
		log.Fatal(err)
	}
	res, err := in.Solve(auction.Options{Derandomize: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("asymmetric channels: n=%d operators, k=%d bands, rho ≤ %.0f\n", n, k, rho)
	for j, name := range []string{"short-range", "north TV band", "airport radar"} {
		fmt.Printf("  band %d (%s): %d conflict edges, reused by %v\n",
			j, name, channels[j].M(), res.Alloc.ChannelSet(j))
	}
	fmt.Printf("LP bound %.2f, welfare %.2f (guarantee factor %.0f)\n",
		res.LP.Value, res.Welfare, res.Factor)
	if !in.Feasible(res.Alloc) {
		log.Fatal("allocation infeasible — this is a bug")
	}
	fmt.Println("allocation verified feasible per band")
}
