// Cellular: a secondary market for a metropolitan hot-spot deployment.
//
// The scenario from the paper's introduction: licensed spectrum is idle in
// parts of a city, and a regional broker auctions short-term licenses for k
// channels to small-cell operators. Demand is clustered (operators crowd the
// same hot spots), bidders have heterogeneous valuation types (additive,
// unit-demand, budget-limited, single-minded backhaul links), and
// interference is a distance-2 coloring constraint on the disk graph —
// neighbors of neighbors must also be separated, the classic cellular
// reuse-1 rule.
//
// The example compares the LP-rounding algorithm against the greedy
// baseline and prints per-cluster channel reuse.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/baseline"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/valuation"
)

func main() {
	const (
		n        = 40
		k        = 4
		clusters = 5
	)
	rng := rand.New(rand.NewSource(7))

	centers := geom.ClusteredPoints(rng, n, clusters, 200, 12)
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = 4 + rng.Float64()*6
	}
	conf := models.Distance2Disk(centers, radii)

	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		log.Fatal(err)
	}

	res, err := auction.Solve(in, auction.Options{Seed: 1, Samples: 25})
	if err != nil {
		log.Fatal(err)
	}
	der, _ := in.RoundDerandomized(res.LP)
	if w := der.Welfare(in.Bidders); w > res.Welfare {
		res.Alloc, res.Welfare = der, w
	}
	greedy := baseline.Greedy(in)

	fmt.Printf("distance-2 disk model, n=%d operators, k=%d channels, %d conflict edges\n",
		n, k, conf.Binary.M())
	fmt.Printf("LP upper bound:      %8.2f\n", res.LP.Value)
	fmt.Printf("LP-rounding welfare: %8.2f\n", res.Welfare)
	fmt.Printf("greedy welfare:      %8.2f\n\n", greedy.Welfare(in.Bidders))

	for j := 0; j < k; j++ {
		fmt.Printf("channel %d reused by %d operators: %v\n",
			j, len(res.Alloc.ChannelSet(j)), res.Alloc.ChannelSet(j))
	}

	winners := 0
	for _, t := range res.Alloc {
		if t != valuation.Empty {
			winners++
		}
	}
	fmt.Printf("\n%d of %d operators licensed; allocation feasible: %v\n",
		winners, n, in.Feasible(res.Alloc))
}
