// Package baseline implements the comparison algorithms the paper's results
// are measured against: per-channel greedy allocation, the edge-based LP of
// Section 2.1 (whose integrality gap is n/2 on cliques), an exact
// branch-and-bound solver that provides ground-truth optima on small
// instances, and a random feasible allocation.
package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/auction"
	"repro/internal/lp"
	"repro/internal/valuation"
)

// Greedy allocates channels one at a time: for each channel, bidders are
// sorted by the marginal value of adding that channel to their current
// bundle, and are admitted greedily while the channel's user set stays
// independent. A natural practical heuristic with no worst-case guarantee
// in terms of ρ and k.
func Greedy(in *auction.Instance) auction.Allocation {
	n := in.N()
	s := make(auction.Allocation, n)
	for j := 0; j < in.K; j++ {
		type cand struct {
			v    int
			gain float64
		}
		cands := make([]cand, 0, n)
		for v := 0; v < n; v++ {
			gain := in.Bidders[v].Value(s[v].With(j)) - in.Bidders[v].Value(s[v])
			if gain > 0 {
				cands = append(cands, cand{v, gain})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			//reprovet:floateq sort comparator: exact equality with an index tie-break is a deterministic total order; a tolerance would break strict weak ordering
			if cands[a].gain != cands[b].gain {
				return cands[a].gain > cands[b].gain
			}
			return cands[a].v < cands[b].v
		})
		var chosen []int
		for _, c := range cands {
			trial := append(chosen, c.v)
			ok := false
			if in.Conf.Binary != nil {
				ok = in.Conf.Binary.IsIndependent(trial)
			} else {
				ok = in.Conf.W.IsIndependent(trial)
			}
			if ok {
				chosen = trial
				s[c.v] = s[c.v].With(j)
			}
		}
	}
	return s
}

// EdgeLP solves the edge-based LP relaxation of Section 2.1 for the
// single-channel weighted independent set problem,
//
//	max Σ b_v x_v   s.t.  x_u + x_v ≤ 1 on edges, 0 ≤ x ≤ 1,
//
// and rounds it greedily by decreasing x (ties by value). It returns the
// chosen independent set, its value, and the LP optimum. The LP bound is
// weak: on a clique it is n/2 regardless of the instance, the integrality
// gap the paper contrasts with its ρ-based LP.
//
// Only defined for unweighted instances with k = 1.
func EdgeLP(in *auction.Instance) (set []int, value, lpOpt float64, err error) {
	if in.Conf.Binary == nil || in.K != 1 {
		return nil, 0, 0, fmt.Errorf("baseline: EdgeLP requires an unweighted instance with k=1")
	}
	g := in.Conf.Binary
	n := in.N()
	b := make([]float64, n)
	for v := 0; v < n; v++ {
		b[v] = in.Bidders[v].Value(valuation.FromChannels(0))
	}
	p := lp.NewMaximize(b)
	coeff := make([]float64, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				coeff[u], coeff[v] = 1, 1
				p.AddConstraint(coeff, lp.LE, 1)
				coeff[u], coeff[v] = 0, 0
			}
		}
	}
	for v := 0; v < n; v++ {
		coeff[v] = 1
		p.AddConstraint(coeff, lp.LE, 1)
		coeff[v] = 0
	}
	sol, status, err := p.Solve()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("baseline: edge LP %v: %w", status, err)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b2 int) bool {
		xa, xb := sol.X[order[a]], sol.X[order[b2]]
		//reprovet:floateq sort comparator: exact inequality with a bid-value tie-break is a deterministic total order over the fixed LP solution
		if xa != xb {
			return xa > xb
		}
		return b[order[a]] > b[order[b2]]
	})
	for _, v := range order {
		if sol.X[v] <= 1e-9 || b[v] <= 0 {
			continue
		}
		trial := append(set, v)
		if g.IsIndependent(trial) {
			set = trial
			value += b[v]
		}
	}
	return set, value, sol.Objective, nil
}

// Random assigns, in a random vertex order, each bidder its favorite bundle
// among those that keep the allocation feasible, considering only the full
// demand-at-zero-prices bundle and its single channels. A weak but fair
// "no optimization" baseline.
func Random(in *auction.Instance, rng *rand.Rand) auction.Allocation {
	n := in.N()
	s := make(auction.Allocation, n)
	zero := make([]float64, in.K)
	for _, v := range rng.Perm(n) {
		want, _ := in.Bidders[v].Demand(zero)
		if want == valuation.Empty {
			continue
		}
		trial := s.Clone()
		trial[v] = want
		if in.Feasible(trial) {
			s = trial
			continue
		}
		// Fall back to the best feasible single channel.
		bestJ, bestVal := -1, 0.0
		for _, j := range want.Channels() {
			trial[v] = valuation.FromChannels(j)
			if in.Feasible(trial) {
				if val := in.Bidders[v].Value(trial[v]); val > bestVal {
					bestJ, bestVal = j, val
				}
			}
		}
		if bestJ >= 0 {
			s[v] = valuation.FromChannels(bestJ)
		} else {
			trial[v] = valuation.Empty
		}
	}
	return s
}

// ExactOPT computes the optimal welfare by branch and bound over per-bidder
// bundle choices. Exponential in n·2^k: intended for ground-truth on small
// instances (n ≤ ~14, k ≤ 4). Bidders are processed in decreasing order of
// their best standalone value, and the search prunes with the optimistic
// bound "current + Σ remaining best values".
func ExactOPT(in *auction.Instance) (auction.Allocation, float64) {
	n := in.N()
	if in.K > 16 {
		panic("baseline: ExactOPT supports k ≤ 16")
	}
	numBundles := 1 << uint(in.K)
	// Candidate bundles and values per bidder, best first.
	type choice struct {
		t   valuation.Bundle
		val float64
	}
	choices := make([][]choice, n)
	bestVal := make([]float64, n)
	for v := 0; v < n; v++ {
		for m := 1; m < numBundles; m++ {
			t := valuation.Bundle(m)
			if val := in.Bidders[v].Value(t); val > 0 {
				choices[v] = append(choices[v], choice{t, val})
				if val > bestVal[v] {
					bestVal[v] = val
				}
			}
		}
		sort.Slice(choices[v], func(a, b int) bool { return choices[v][a].val > choices[v][b].val })
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return bestVal[order[a]] > bestVal[order[b]] })
	suffixBest := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffixBest[i] = suffixBest[i+1] + bestVal[order[i]]
	}

	cur := make(auction.Allocation, n)
	best := make(auction.Allocation, n)
	bestWelfare := 0.0
	// channelSets[j] tracks the bidders currently on channel j.
	channelSets := make([][]int, in.K)

	feasibleWith := func(v int, t valuation.Bundle) bool {
		for _, j := range t.Channels() {
			set := append(channelSets[j], v)
			if in.Conf.Binary != nil {
				if !in.Conf.Binary.IsIndependent(set) {
					return false
				}
			} else if !in.Conf.W.IsIndependent(set) {
				return false
			}
		}
		return true
	}

	var rec func(i int, welfare float64)
	rec = func(i int, welfare float64) {
		if welfare > bestWelfare {
			bestWelfare = welfare
			copy(best, cur)
		}
		if i == n || welfare+suffixBest[i] <= bestWelfare+1e-12 {
			return
		}
		v := order[i]
		for _, c := range choices[v] {
			if welfare+c.val+suffixBest[i+1] <= bestWelfare+1e-12 {
				break // choices are sorted; nothing later can help
			}
			if !feasibleWith(v, c.t) {
				continue
			}
			cur[v] = c.t
			for _, j := range c.t.Channels() {
				channelSets[j] = append(channelSets[j], v)
			}
			rec(i+1, welfare+c.val)
			for _, j := range c.t.Channels() {
				channelSets[j] = channelSets[j][:len(channelSets[j])-1]
			}
			cur[v] = valuation.Empty
		}
		rec(i+1, welfare) // v gets nothing
	}
	rec(0, 0)
	if math.IsInf(bestWelfare, -1) {
		bestWelfare = 0
	}
	return best, bestWelfare
}
