package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/valuation"
)

func smallInstance(seed int64, n, k int) *auction.Instance {
	rng := rand.New(rand.NewSource(seed))
	links := geom.UniformLinks(rng, n, 60, 2, 8)
	conf := models.Protocol(links, 1)
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

func TestGreedyFeasible(t *testing.T) {
	check := func(seed int64) bool {
		in := smallInstance(seed, 10, 3)
		return in.Feasible(Greedy(in))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyNontrivial(t *testing.T) {
	in := smallInstance(1, 10, 3)
	if Greedy(in).Welfare(in.Bidders) <= 0 {
		t.Fatal("greedy found nothing on a market with positive bids")
	}
}

func TestRandomFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for seed := int64(1); seed <= 10; seed++ {
		in := smallInstance(seed, 8, 2)
		if !in.Feasible(Random(in, rng)) {
			t.Fatalf("seed %d: infeasible", seed)
		}
	}
}

func TestExactOPTKnownInstance(t *testing.T) {
	// Path 0-1-2, k=1, values 3, 5, 4: OPT = 3+4 = 7 ({0,2}).
	conf := models.GeneralGraphConflict(graph.Path(3))
	bidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{3}),
		valuation.NewAdditive([]float64{5}),
		valuation.NewAdditive([]float64{4}),
	}
	in, err := auction.NewInstance(conf, 1, bidders)
	if err != nil {
		t.Fatal(err)
	}
	alloc, opt := ExactOPT(in)
	if opt != 7 {
		t.Fatalf("OPT = %g, want 7", opt)
	}
	if !in.Feasible(alloc) || alloc.Welfare(bidders) != 7 {
		t.Fatal("returned allocation inconsistent")
	}
}

func TestExactOPTDominatesHeuristics(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		in := smallInstance(seed, 8, 2)
		_, opt := ExactOPT(in)
		if g := Greedy(in).Welfare(in.Bidders); g > opt+1e-9 {
			t.Fatalf("greedy %g beats OPT %g", g, opt)
		}
		res, err := auction.Solve(in, auction.Options{Seed: seed, Samples: 20})
		if err != nil {
			t.Fatal(err)
		}
		if res.Welfare > opt+1e-9 {
			t.Fatalf("rounding %g beats OPT %g", res.Welfare, opt)
		}
		if res.LP.Value < opt-1e-6 {
			t.Fatalf("LP %g below OPT %g — not a relaxation?", res.LP.Value, opt)
		}
	}
}

func TestEdgeLPCliqueGap(t *testing.T) {
	// Unit-value clique: OPT = 1 but the edge LP allows x ≡ 1/2, value n/2.
	n := 10
	conf := models.CliqueConflict(n)
	bidders := make([]valuation.Valuation, n)
	for i := range bidders {
		bidders[i] = valuation.NewAdditive([]float64{1})
	}
	in, _ := auction.NewInstance(conf, 1, bidders)
	set, value, lpOpt, err := EdgeLP(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lpOpt-float64(n)/2) > 1e-6 {
		t.Fatalf("edge LP = %g, want %g", lpOpt, float64(n)/2)
	}
	if len(set) != 1 || value != 1 {
		t.Fatalf("rounded set %v value %g, want a single vertex of value 1", set, value)
	}
}

func TestEdgeLPRejectsUnsupported(t *testing.T) {
	in := smallInstance(1, 6, 2) // k=2 unsupported
	if _, _, _, err := EdgeLP(in); err == nil {
		t.Fatal("k=2 accepted")
	}
	rng := rand.New(rand.NewSource(1))
	links := geom.UniformLinks(rng, 5, 60, 1, 4)
	conf := models.Physical(links, models.UniformPower, models.DefaultSINR())
	bidders := valuation.RandomMix(rng, 5, 1, 1, 5)
	win, _ := auction.NewInstance(conf, 1, bidders)
	if _, _, _, err := EdgeLP(win); err == nil {
		t.Fatal("weighted instance accepted")
	}
}

func TestEdgeLPUpperBoundsOPT(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := smallInstance(seed, 9, 1)
		_, _, lpOpt, err := EdgeLP(in)
		if err != nil {
			t.Fatal(err)
		}
		_, opt := ExactOPT(in)
		if lpOpt < opt-1e-6 {
			t.Fatalf("edge LP %g below OPT %g", lpOpt, opt)
		}
	}
}

func TestExactOPTPanicsOnLargeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rng := rand.New(rand.NewSource(1))
	conf := models.CliqueConflict(2)
	bidders := valuation.RandomMix(rng, 2, 17, 1, 2)
	in, _ := auction.NewInstance(conf, 17, bidders)
	ExactOPT(in)
}
