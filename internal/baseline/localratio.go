package baseline

import (
	"fmt"

	"repro/internal/auction"
	"repro/internal/graph"
	"repro/internal/valuation"
)

// LocalRatioMWIS is the opportunity-cost algorithm of Akcoglu, Aspnes,
// DasGupta and Kao (also Ye–Borodin's elimination-graph framework), which
// the paper's related-work section contrasts with its LP approach: a
// ρ-approximation for maximum weight independent set — the k = 1 case of
// Problem 1 — on graphs whose ordering π certifies inductive independence ρ.
//
// It processes vertices in decreasing π order: each vertex with positive
// adjusted weight is pushed on a stack and its weight subtracted from its
// backward neighbors (local-ratio decomposition on the support
// {v} ∪ Γπ(v)); the stack is then popped (increasing π) adding vertices
// greedily while independent.
//
// As the paper notes, the algorithm is not monotone, so unlike the LP
// rounding it cannot be plugged into the Lavi–Swamy framework; it is also
// inherently single-channel. Both limitations are what make the LP approach
// the paper's contribution.
func LocalRatioMWIS(g *graph.Graph, pi graph.Ordering, weights []float64) []int {
	n := g.N()
	adjusted := make([]float64, n)
	copy(adjusted, weights)
	var stack []int
	// Decreasing π order.
	for idx := n - 1; idx >= 0; idx-- {
		v := pi.Perm[idx]
		if adjusted[v] <= 0 {
			continue
		}
		stack = append(stack, v)
		delta := adjusted[v]
		for _, u := range g.Neighbors(v) {
			if pi.Before(u, v) {
				adjusted[u] -= delta
			}
		}
	}
	// Pop (LIFO → increasing π), adding greedily while independent.
	var set []int
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		if cand := append(set, v); g.IsIndependent(cand) {
			set = cand
		}
	}
	return set
}

// LocalRatio applies LocalRatioMWIS to a single-channel unweighted auction
// instance, returning the allocation and its welfare. It guarantees
// welfare ≥ OPT/ρ for the instance's certified ρ.
func LocalRatio(in *auction.Instance) (auction.Allocation, float64, error) {
	if in.Conf.Binary == nil || in.K != 1 {
		return nil, 0, fmt.Errorf("baseline: LocalRatio requires an unweighted instance with k=1")
	}
	n := in.N()
	weights := make([]float64, n)
	for v := 0; v < n; v++ {
		weights[v] = in.Bidders[v].Value(valuation.FromChannels(0))
	}
	set := LocalRatioMWIS(in.Conf.Binary, in.Conf.Pi, weights)
	s := make(auction.Allocation, n)
	value := 0.0
	for _, v := range set {
		s[v] = valuation.FromChannels(0)
		value += weights[v]
	}
	return s, value, nil
}

// LocalRatioPerChannel extends the local-ratio algorithm to k channels as a
// heuristic: channels are processed in order, each running LocalRatioMWIS
// with the bidders' marginal values for adding that channel to their current
// bundle. Per-channel it inherits the ρ guarantee on the marginals, but no
// end-to-end guarantee in terms of √k is claimed — this is exactly the gap
// the paper's LP rounding closes.
func LocalRatioPerChannel(in *auction.Instance) (auction.Allocation, error) {
	if in.Conf.Binary == nil {
		return nil, fmt.Errorf("baseline: LocalRatioPerChannel requires an unweighted instance")
	}
	n := in.N()
	s := make(auction.Allocation, n)
	weights := make([]float64, n)
	for j := 0; j < in.K; j++ {
		for v := 0; v < n; v++ {
			weights[v] = in.Bidders[v].Value(s[v].With(j)) - in.Bidders[v].Value(s[v])
		}
		for _, v := range LocalRatioMWIS(in.Conf.Binary, in.Conf.Pi, weights) {
			s[v] = s[v].With(j)
		}
	}
	return s, nil
}
