package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/valuation"
)

func TestLocalRatioMWISPath(t *testing.T) {
	// Path 0-1-2 with weights 3, 5, 4: the algorithm must find a set of
	// weight at least OPT/ρ = 7/2; in fact it finds {0,2} here.
	g := graph.Path(3)
	set := LocalRatioMWIS(g, g.DegeneracyOrdering(), []float64{3, 5, 4})
	if !g.IsIndependent(set) {
		t.Fatal("output not independent")
	}
	total := 0.0
	for _, v := range set {
		total += []float64{3, 5, 4}[v]
	}
	if total < 3.5 {
		t.Fatalf("weight %g below OPT/rho = 3.5", total)
	}
}

func TestLocalRatioMWISAllNegative(t *testing.T) {
	g := graph.Clique(4)
	set := LocalRatioMWIS(g, graph.IdentityOrdering(4), []float64{-1, 0, -3, 0})
	if len(set) != 0 {
		t.Fatalf("set = %v, want empty for non-positive weights", set)
	}
}

// Property (Akcoglu et al.): local ratio is a ρ-approximation of maximum
// weight independent set under an ordering certifying ρ.
func TestQuickLocalRatioGuarantee(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := graph.RandomGNP(rng, n, 0.4)
		pi := g.DegeneracyOrdering()
		rho, ok := g.MeasureRho(pi, 14)
		if !ok || rho == 0 {
			rho = 1
		}
		weights := make([]float64, n)
		for v := range weights {
			weights[v] = rng.Float64() * 10
		}
		set := LocalRatioMWIS(g, pi, weights)
		if !g.IsIndependent(set) {
			return false
		}
		got := 0.0
		for _, v := range set {
			got += weights[v]
		}
		// Exact OPT by branching over vertices.
		opt := exactMWIS(g, weights)
		return got >= opt/float64(rho)-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// exactMWIS computes the maximum weight independent set by branch and bound.
func exactMWIS(g *graph.Graph, w []float64) float64 {
	n := g.N()
	best := 0.0
	var rec func(v int, cur float64, chosen []int)
	rec = func(v int, cur float64, chosen []int) {
		if cur > best {
			best = cur
		}
		if v == n {
			return
		}
		// Optimistic bound: add all remaining positive weights.
		bound := cur
		for u := v; u < n; u++ {
			if w[u] > 0 {
				bound += w[u]
			}
		}
		if bound <= best {
			return
		}
		if w[v] > 0 {
			ok := true
			for _, u := range chosen {
				if g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				rec(v+1, cur+w[v], append(chosen, v))
			}
		}
		rec(v+1, cur, chosen)
	}
	rec(0, 0, nil)
	return best
}

func TestLocalRatioInstanceWrapper(t *testing.T) {
	in := smallInstance(3, 10, 1)
	s, value, err := LocalRatio(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(s) {
		t.Fatal("infeasible")
	}
	if v := s.Welfare(in.Bidders); v != value {
		t.Fatalf("welfare %g != reported %g", v, value)
	}
	// Guarantee against exact OPT.
	_, opt := ExactOPT(in)
	if value < opt/in.Conf.RhoBound-1e-9 {
		t.Fatalf("value %g below OPT/rho = %g", value, opt/in.Conf.RhoBound)
	}
	// k>1 rejected.
	if _, _, err := LocalRatio(smallInstance(1, 6, 2)); err == nil {
		t.Fatal("k=2 accepted")
	}
}

func TestLocalRatioPerChannel(t *testing.T) {
	in := smallInstance(5, 10, 3)
	s, err := LocalRatioPerChannel(in)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(s) {
		t.Fatal("infeasible")
	}
	if s.Welfare(in.Bidders) <= 0 {
		t.Fatal("expected positive welfare")
	}
	// Weighted instances rejected.
	rng := rand.New(rand.NewSource(1))
	links := geom.UniformLinks(rng, 6, 60, 1, 4)
	conf := models.Physical(links, models.UniformPower, models.DefaultSINR())
	bidders := valuation.RandomMix(rng, 6, 2, 1, 5)
	win, _ := auction.NewInstance(conf, 2, bidders)
	if _, err := LocalRatioPerChannel(win); err == nil {
		t.Fatal("weighted instance accepted")
	}
}
