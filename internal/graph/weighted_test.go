package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightedBasics(t *testing.T) {
	g := NewWeighted(3)
	g.SetWeight(0, 1, 0.4)
	g.SetWeight(1, 0, 0.3)
	g.SetWeight(2, 2, 9) // self-weight ignored
	if g.Weight(0, 1) != 0.4 || g.Weight(1, 0) != 0.3 {
		t.Fatal("weights wrong")
	}
	if g.Weight(2, 2) != 0 {
		t.Fatal("self-weight must stay zero")
	}
	if g.Wbar(0, 1) != 0.7 || g.Wbar(1, 0) != 0.7 {
		t.Fatal("Wbar must be symmetric and equal to the sum")
	}
	if g.N() != 3 {
		t.Fatal("N wrong")
	}
}

func TestSetWeightPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	NewWeighted(2).SetWeight(0, 1, -0.1)
}

func TestWeightedIndependence(t *testing.T) {
	g := NewWeighted(3)
	g.SetWeight(0, 2, 0.6)
	g.SetWeight(1, 2, 0.6)
	if !g.IsIndependent([]int{0, 2}) {
		t.Fatal("{0,2} receives 0.6 < 1: independent")
	}
	if g.IsIndependent([]int{0, 1, 2}) {
		t.Fatal("{0,1,2}: vertex 2 receives 1.2 ≥ 1: dependent")
	}
	if !g.IsIndependent(nil) || !g.IsIndependent([]int{1}) {
		t.Fatal("empty and singleton sets are independent")
	}
}

func TestInWeight(t *testing.T) {
	g := NewWeighted(3)
	g.SetWeight(0, 2, 0.25)
	g.SetWeight(1, 2, 0.5)
	if got := g.InWeight([]int{0, 1, 2}, 2); got != 0.75 {
		t.Fatalf("InWeight = %g, want 0.75 (self excluded)", got)
	}
}

func TestFromUnweightedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		g := RandomGNP(rng, n, 0.4)
		wg := FromUnweighted(g)
		// Random subsets: independence must agree.
		for s := 0; s < 20; s++ {
			var set []int
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.5 {
					set = append(set, v)
				}
			}
			if g.IsIndependent(set) != wg.IsIndependent(set) {
				t.Fatalf("independence mismatch on %v", set)
			}
		}
	}
}

func TestWeightedMeasureRho(t *testing.T) {
	// Three vertices all before v=3, pairwise independent, each with
	// w̄(·,3)=0.4 → rho = 1.2.
	g := NewWeighted(4)
	for u := 0; u < 3; u++ {
		g.SetWeight(u, 3, 0.4)
	}
	rho, ok := g.MeasureRho(IdentityOrdering(4), 10)
	if !ok || rho < 1.199 || rho > 1.201 {
		t.Fatalf("rho = %g (ok=%v), want 1.2", rho, ok)
	}
}

func TestWeightedMeasureRhoRespectsIndependence(t *testing.T) {
	// Vertices 0,1 conflict with each other (vertex 1 receives weight 1
	// from 0), and both weigh 0.9 on vertex 2. In vertex 2's backward
	// neighborhood only one of {0,1} can join an independent set, so
	// vertex 2 contributes max(0.9), not 1.8; vertex 1 contributes
	// w̄(0,1)=1, which is the overall maximum.
	g := NewWeighted(3)
	g.SetWeight(0, 1, 1)
	g.SetWeight(0, 2, 0.45)
	g.SetWeight(2, 0, 0.45)
	g.SetWeight(1, 2, 0.45)
	g.SetWeight(2, 1, 0.45)
	rho, ok := g.MeasureRho(IdentityOrdering(3), 10)
	if !ok || rho < 0.999 || rho > 1.001 {
		t.Fatalf("rho = %g, want 1.0", rho)
	}
}

// Property: the greedy lower bound never exceeds the exact measure.
func TestQuickGreedyLowerBound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := NewWeighted(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.5 {
					g.SetWeight(u, v, rng.Float64())
				}
			}
		}
		o := IdentityOrdering(n)
		exact, ok := g.MeasureRho(o, 10)
		if !ok {
			return false
		}
		return g.GreedyRhoLowerBound(o) <= exact+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Wbar is symmetric for arbitrary weighted graphs.
func TestQuickWbarSymmetry(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := NewWeighted(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					g.SetWeight(u, v, rng.Float64()*2)
				}
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if g.Wbar(u, v) != g.Wbar(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardWbar(t *testing.T) {
	g := NewWeighted(3)
	g.SetWeight(0, 2, 0.3)
	g.SetWeight(1, 2, 0.2)
	o := IdentityOrdering(3)
	got := g.BackwardWbar([]int{0, 1, 2}, 2, o)
	if got < 0.499 || got > 0.501 {
		t.Fatalf("BackwardWbar = %g, want 0.5", got)
	}
}
