package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self-loop ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self-loop must be ignored")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatal("degrees wrong")
	}
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
}

func TestIsIndependent(t *testing.T) {
	g := Path(5) // 0-1-2-3-4
	cases := []struct {
		set  []int
		want bool
	}{
		{nil, true},
		{[]int{0}, true},
		{[]int{0, 2, 4}, true},
		{[]int{0, 1}, false},
		{[]int{1, 3}, true},
		{[]int{2, 3}, false},
	}
	for _, c := range cases {
		if got := g.IsIndependent(c.set); got != c.want {
			t.Errorf("IsIndependent(%v) = %v, want %v", c.set, got, c.want)
		}
	}
}

func TestOrdering(t *testing.T) {
	o := NewOrdering([]int{2, 0, 1})
	if o.Rank[2] != 0 || o.Rank[0] != 1 || o.Rank[1] != 2 {
		t.Fatalf("ranks wrong: %v", o.Rank)
	}
	if !o.Before(2, 1) || o.Before(1, 0) {
		t.Fatal("Before wrong")
	}
	if o.Len() != 3 {
		t.Fatal("Len wrong")
	}
}

func TestNewOrderingPanicsOnInvalid(t *testing.T) {
	for _, perm := range [][]int{{0, 0}, {0, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewOrdering(%v) should panic", perm)
				}
			}()
			NewOrdering(perm)
		}()
	}
}

func TestBackward(t *testing.T) {
	g := Path(4)
	o := IdentityOrdering(4)
	if b := g.Backward(0, o); len(b) != 0 {
		t.Fatalf("Backward(0) = %v, want empty", b)
	}
	if b := g.Backward(2, o); len(b) != 1 || b[0] != 1 {
		t.Fatalf("Backward(2) = %v, want [1]", b)
	}
}

func TestDegeneracy(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Path(6), 1},
		{Cycle(6), 2},
		{Clique(5), 4},
		{New(3), 0},
	}
	for i, c := range cases {
		if got := c.g.Degeneracy(); got != c.want {
			t.Errorf("case %d: degeneracy = %d, want %d", i, got, c.want)
		}
	}
}

func TestMaxIndependentSetSize(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Path(5), 3},
		{Cycle(5), 2},
		{Cycle(6), 3},
		{Clique(7), 1},
		{New(4), 4},
	}
	for i, c := range cases {
		if got := c.g.MaxIndependentSetSize(); got != c.want {
			t.Errorf("case %d: max IS = %d, want %d", i, got, c.want)
		}
	}
}

func TestMeasureRhoClique(t *testing.T) {
	g := Clique(6)
	rho, ok := g.MeasureRho(IdentityOrdering(6), 10)
	if !ok || rho != 1 {
		t.Fatalf("clique rho = %d (ok=%v), want 1", rho, ok)
	}
}

func TestMeasureRhoStar(t *testing.T) {
	// Star with center 0: center-last ordering gives rho = leaves count;
	// center-first gives rho = 1.
	n := 6
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	centerLast := NewOrdering([]int{1, 2, 3, 4, 5, 0})
	rho, ok := g.MeasureRho(centerLast, 10)
	if !ok || rho != n-1 {
		t.Fatalf("center-last rho = %d, want %d", rho, n-1)
	}
	centerFirst := IdentityOrdering(n)
	rho, ok = g.MeasureRho(centerFirst, 10)
	if !ok || rho != 1 {
		t.Fatalf("center-first rho = %d, want 1", rho)
	}
}

func TestMeasureRhoTooLarge(t *testing.T) {
	g := Clique(8)
	if _, ok := g.MeasureRho(IdentityOrdering(8), 3); ok {
		t.Fatal("expected ok=false when backward neighborhood exceeds cap")
	}
}

func TestVerifyRho(t *testing.T) {
	g := Cycle(8)
	o := g.DegeneracyOrdering()
	ok, err := g.VerifyRho(o, 2, 10)
	if err != nil || !ok {
		t.Fatalf("VerifyRho(2) = %v, %v; want true", ok, err)
	}
	ok, err = g.VerifyRho(o, 0, 10)
	if err != nil || ok {
		t.Fatalf("VerifyRho(0) = %v, %v; want false", ok, err)
	}
}

// Property: the degeneracy ordering certifies rho ≤ degeneracy. (The size of
// any independent set in a backward neighborhood is at most the backward
// degree, which the degeneracy ordering bounds.)
func TestQuickDegeneracyOrderingRho(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := RandomGNP(rng, n, 0.4)
		o := g.DegeneracyOrdering()
		rho, ok := g.MeasureRho(o, 14)
		if !ok {
			// Backward degree in a degeneracy ordering is at most the
			// degeneracy ≤ n ≤ 14, so this cannot happen.
			return false
		}
		return rho <= g.Degeneracy() || g.Degeneracy() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: maxISExact on the whole graph is at least the greedy independent
// set size and at most n.
func TestQuickMaxISBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		g := RandomGNP(rng, n, 0.3)
		exact := g.MaxIndependentSetSize()
		// Greedy IS.
		var greedy []int
		for v := 0; v < n; v++ {
			if g.IsIndependent(append(greedy, v)) {
				greedy = append(greedy, v)
			}
		}
		return exact >= len(greedy) && exact <= n && exact >= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBoundedDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomBoundedDegree(rng, 30, 4, 500)
	if g.MaxDegree() > 4 {
		t.Fatalf("max degree %d > 4", g.MaxDegree())
	}
	if g.M() == 0 {
		t.Fatal("expected some edges")
	}
}

func TestAvgAndMaxDegree(t *testing.T) {
	g := Clique(5)
	if g.AvgDegree() != 4 || g.MaxDegree() != 4 {
		t.Fatalf("clique(5): avg %g max %d", g.AvgDegree(), g.MaxDegree())
	}
	if New(0).AvgDegree() != 0 {
		t.Fatal("empty graph avg degree")
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(-1)
}
