package graph

// Components returns the connected components of the graph. Each component
// lists its vertices in ascending index order, and the components themselves
// are ordered by their smallest vertex, so the partition is deterministic.
// An empty graph yields no components; isolated vertices form singleton
// components.
func (g *Graph) Components() [][]int {
	return componentsOf(g.n, g.Neighbors)
}

// ComponentsOrdered returns the connected components with each component's
// vertices listed in π order (the order induced by the given Ordering), and
// the components ordered by their earliest-π vertex. This is the form the
// sharded solve path wants: a component's vertex list is directly a valid
// sub-instance numbering whose identity ordering agrees with the restriction
// of π, so per-component solves inherit the inductive-independence
// certificate of the full instance.
func (g *Graph) ComponentsOrdered(o Ordering) [][]int {
	if len(o.Rank) != g.n {
		panic("graph: ordering size mismatch")
	}
	comps := g.Components()
	return orderComponents(comps, o)
}

// Components returns the connected components of the weighted graph, with
// u and v connected when either directed weight w(u,v) or w(v,u) is
// positive. Layout matches Graph.Components.
func (g *Weighted) Components() [][]int {
	// Build symmetric adjacency once; Weighted stores a dense matrix.
	adj := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.Weight(u, v) > 0 || g.Weight(v, u) > 0 {
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
			}
		}
	}
	return componentsOf(g.n, func(v int) []int { return adj[v] })
}

// ComponentsOrdered is ComponentsOrdered for weighted graphs.
func (g *Weighted) ComponentsOrdered(o Ordering) [][]int {
	if len(o.Rank) != g.n {
		panic("graph: ordering size mismatch")
	}
	return orderComponents(g.Components(), o)
}

// componentsOf runs an iterative BFS partition over vertices 0..n-1 using
// the given neighbor accessor. Scanning start vertices in ascending order and
// visiting queues FIFO yields components sorted by smallest member with
// ascending members (vertices are enqueued in ascending discovery, then each
// component is sorted for a stable contract regardless of adjacency order).
func componentsOf(n int, nbr func(v int) []int) [][]int {
	seen := make([]bool, n)
	var comps [][]int
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], s)
		var comp []int
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for _, u := range nbr(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		insertionSort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// orderComponents re-sorts each component's members by ascending π rank and
// the component list by the rank of each component's first member.
func orderComponents(comps [][]int, o Ordering) [][]int {
	for _, c := range comps {
		sortByRank(c, o.Rank)
	}
	// Components are disjoint, so first-member ranks are distinct; a simple
	// insertion sort keeps the partition deterministic without importing sort.
	for i := 1; i < len(comps); i++ {
		c := comps[i]
		j := i - 1
		for j >= 0 && o.Rank[comps[j][0]] > o.Rank[c[0]] {
			comps[j+1] = comps[j]
			j--
		}
		comps[j+1] = c
	}
	return comps
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func sortByRank(a []int, rank []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && rank[a[j]] > rank[v] {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
