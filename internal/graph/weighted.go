package graph

import "fmt"

// Weighted is a directed, edge-weighted conflict graph. The weight w(u,v)
// quantifies how much vertex u disturbs vertex v; a set M of vertices may
// share a channel iff Σ_{u∈M, u≠v} w(u,v) < 1 for every v ∈ M.
//
// The symmetric weight w̄(u,v) = w(u,v) + w(v,u) drives the inductive
// independence machinery (Definition 2 of the paper).
type Weighted struct {
	n int
	w [][]float64
}

// NewWeighted returns a weighted conflict graph on n vertices with all
// weights zero.
func NewWeighted(n int) *Weighted {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return &Weighted{n: n, w: w}
}

// FromUnweighted lifts an unweighted conflict graph into the weighted
// formalism: every edge {u,v} gets w(u,v) = w(v,u) = 1, so the weighted
// independent-set condition coincides with the usual one.
func FromUnweighted(g *Graph) *Weighted {
	wg := NewWeighted(g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			wg.w[u][v] = 1
		}
	}
	return wg
}

// N returns the number of vertices.
func (g *Weighted) N() int { return g.n }

// SetWeight sets the directed weight w(u,v). Negative weights are rejected;
// self-weights are ignored (a vertex does not interfere with itself).
func (g *Weighted) SetWeight(u, v int, w float64) {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative weight w(%d,%d)=%g", u, v, w))
	}
	if u == v {
		return
	}
	g.w[u][v] = w
}

// Weight returns the directed weight w(u,v).
func (g *Weighted) Weight(u, v int) float64 {
	if u == v {
		return 0
	}
	return g.w[u][v]
}

// Wbar returns the symmetric weight w̄(u,v) = w(u,v) + w(v,u).
func (g *Weighted) Wbar(u, v int) float64 {
	if u == v {
		return 0
	}
	return g.w[u][v] + g.w[v][u]
}

// InWeight returns Σ_{u∈set} w(u,v), the total interference the set induces
// at v. Vertices equal to v are skipped.
func (g *Weighted) InWeight(set []int, v int) float64 {
	total := 0.0
	for _, u := range set {
		if u != v {
			total += g.w[u][v]
		}
	}
	return total
}

// IsIndependent reports whether the set is independent in the weighted
// sense: every member receives total weight < 1 from the other members.
func (g *Weighted) IsIndependent(set []int) bool {
	for _, v := range set {
		if g.InWeight(set, v) >= 1 {
			return false
		}
	}
	return true
}

// BackwardWbar returns Σ_{u∈set, π(u)<π(v)} w̄(u,v).
func (g *Weighted) BackwardWbar(set []int, v int, o Ordering) float64 {
	total := 0.0
	for _, u := range set {
		if u != v && o.Before(u, v) {
			total += g.Wbar(u, v)
		}
	}
	return total
}

// backwardSupport returns the vertices u with π(u) < π(v) and w̄(u,v) > 0,
// i.e. the weighted analogue of the backward neighborhood.
func (g *Weighted) backwardSupport(v int, o Ordering) []int {
	var out []int
	for u := 0; u < g.n; u++ {
		if u != v && o.Before(u, v) && g.Wbar(u, v) > 0 {
			out = append(out, u)
		}
	}
	return out
}

// maxBackwardWbarExact maximizes Σ_{u∈M} w̄(u,v) over independent subsets M
// of the candidate set, by exhaustive branching with an upper-bound prune.
// Exponential in len(cand); callers cap the candidate size.
func (g *Weighted) maxBackwardWbarExact(cand []int, v int) float64 {
	best := 0.0
	// suffixSum[i] = Σ_{j≥i} w̄(cand[j], v) is an optimistic bound on what
	// the remaining candidates can still add.
	suffix := make([]float64, len(cand)+1)
	for i := len(cand) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + g.Wbar(cand[i], v)
	}
	chosen := make([]int, 0, len(cand))
	var rec func(i int, sum float64)
	rec = func(i int, sum float64) {
		if sum > best {
			best = sum
		}
		if i == len(cand) || sum+suffix[i] <= best {
			return
		}
		u := cand[i]
		// Take u if the set stays independent.
		chosen = append(chosen, u)
		if g.IsIndependent(chosen) {
			rec(i+1, sum+g.Wbar(u, v))
		}
		chosen = chosen[:len(chosen)-1]
		// Skip u.
		rec(i+1, sum)
	}
	rec(0, 0)
	return best
}

// MeasureRho returns the exact weighted inductive independence with respect
// to the ordering: max over v of max Σ_{u∈M} w̄(u,v) over independent sets M
// in v's backward support. Backward supports larger than maxExact vertices
// abort with ok=false.
func (g *Weighted) MeasureRho(o Ordering, maxExact int) (rho float64, ok bool) {
	for v := 0; v < g.n; v++ {
		cand := g.backwardSupport(v, o)
		if len(cand) > maxExact {
			return 0, false
		}
		if r := g.maxBackwardWbarExact(cand, v); r > rho {
			rho = r
		}
	}
	return rho, true
}

// GreedyRhoLowerBound returns a lower bound on the weighted inductive
// independence w.r.t. the ordering, by greedily packing each backward
// support by decreasing w̄. Cheap, works for any size, and is exact whenever
// the greedy packing happens to be optimal.
func (g *Weighted) GreedyRhoLowerBound(o Ordering) float64 {
	best := 0.0
	for v := 0; v < g.n; v++ {
		cand := g.backwardSupport(v, o)
		// Sort candidates by decreasing w̄(·,v) (insertion sort: supports
		// are small relative to n and this avoids an interface shim).
		for i := 1; i < len(cand); i++ {
			for j := i; j > 0 && g.Wbar(cand[j], v) > g.Wbar(cand[j-1], v); j-- {
				cand[j], cand[j-1] = cand[j-1], cand[j]
			}
		}
		var m []int
		sum := 0.0
		for _, u := range cand {
			m = append(m, u)
			if g.IsIndependent(m) {
				sum += g.Wbar(u, v)
			} else {
				m = m[:len(m)-1]
			}
		}
		if sum > best {
			best = sum
		}
	}
	return best
}
