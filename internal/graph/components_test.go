package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestComponentsTableDriven(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		want  [][]int
	}{
		{"empty", 0, nil, nil},
		{"isolated", 3, nil, [][]int{{0}, {1}, {2}}},
		{"single-edge", 3, [][2]int{{0, 2}}, [][]int{{0, 2}, {1}}},
		{"path", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, [][]int{{0, 1, 2, 3}}},
		{"two-triangles", 6,
			[][2]int{{0, 2}, {2, 4}, {4, 0}, {1, 3}, {3, 5}, {5, 1}},
			[][]int{{0, 2, 4}, {1, 3, 5}}},
		{"star-plus-isolated", 5,
			[][2]int{{3, 0}, {3, 4}},
			[][]int{{0, 3, 4}, {1}, {2}}},
		{"merge-late", 5,
			[][2]int{{0, 4}, {1, 3}, {4, 1}},
			[][]int{{0, 1, 3, 4}, {2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := New(tc.n)
			for _, e := range tc.edges {
				g.AddEdge(e[0], e[1])
			}
			got := g.Components()
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Components() = %v, want %v", got, tc.want)
			}
			// The weighted lift must induce the same partition.
			if wg := FromUnweighted(g).Components(); !reflect.DeepEqual(wg, tc.want) {
				t.Fatalf("Weighted Components() = %v, want %v", wg, tc.want)
			}
		})
	}
}

func TestComponentsOrdered(t *testing.T) {
	// Path 0-1-2 plus isolated 3, ordered 2,3,1,0: the path component is
	// listed 2,1,0 and comes first because rank(2)=0 < rank(3)=1.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	o := NewOrdering([]int{2, 3, 1, 0})
	got := g.ComponentsOrdered(o)
	want := [][]int{{2, 1, 0}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ComponentsOrdered = %v, want %v", got, want)
	}
	if wg := FromUnweighted(g).ComponentsOrdered(o); !reflect.DeepEqual(wg, want) {
		t.Fatalf("Weighted ComponentsOrdered = %v, want %v", wg, want)
	}
}

func TestComponentsOrderedSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched ordering")
		}
	}()
	New(3).ComponentsOrdered(IdentityOrdering(2))
}

// TestComponentsPartition cross-checks random graphs: every vertex appears
// exactly once, members are connected to their component (reachability via
// DFS), and no edge crosses components.
func TestComponentsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.06 {
					g.AddEdge(i, j)
				}
			}
		}
		comps := g.Components()
		where := make([]int, n)
		for i := range where {
			where[i] = -1
		}
		for ci, c := range comps {
			for _, v := range c {
				if where[v] != -1 {
					t.Fatalf("vertex %d in two components", v)
				}
				where[v] = ci
			}
		}
		for v := 0; v < n; v++ {
			if where[v] == -1 {
				t.Fatalf("vertex %d missing from partition", v)
			}
			for _, u := range g.Neighbors(v) {
				if where[u] != where[v] {
					t.Fatalf("edge {%d,%d} crosses components", u, v)
				}
			}
		}
		// Each component of size > 1 must be internally connected.
		for _, c := range comps {
			if len(c) == 1 {
				continue
			}
			in := make(map[int]bool, len(c))
			for _, v := range c {
				in[v] = true
			}
			seen := map[int]bool{c[0]: true}
			stack := []int{c[0]}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, u := range g.Neighbors(v) {
					if in[u] && !seen[u] {
						seen[u] = true
						stack = append(stack, u)
					}
				}
			}
			if len(seen) != len(c) {
				t.Fatalf("component %v not connected", c)
			}
		}
	}
}
