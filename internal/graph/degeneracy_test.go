package graph

import (
	"math/rand"
	"testing"
)

// smallestLastReference is the O(n²) min-degree scan the heap-based
// smallestLast replaced. The selection rule — minimum current degree,
// lowest vertex index on ties — defines the ordering contract; the fast
// path must reproduce it exactly, not just some valid degeneracy ordering.
func smallestLastReference(g *Graph) ([]int, int) {
	n := g.n
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	perm := make([]int, n)
	degeneracy := 0
	for pos := n - 1; pos >= 0; pos-- {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if bestDeg > degeneracy {
			degeneracy = bestDeg
		}
		perm[pos] = best
		removed[best] = true
		for _, u := range g.nbr[best] {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	return perm, degeneracy
}

func TestSmallestLastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := []*Graph{
		New(0), New(1), Path(5), Cycle(6), Clique(7),
	}
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(40)
		graphs = append(graphs, RandomGNP(rng, n, rng.Float64()))
	}
	for i, g := range graphs {
		wantPerm, wantDeg := smallestLastReference(g)
		gotPerm, gotDeg := g.smallestLast()
		if gotDeg != wantDeg {
			t.Fatalf("graph %d: degeneracy %d, want %d", i, gotDeg, wantDeg)
		}
		for p := range wantPerm {
			if gotPerm[p] != wantPerm[p] {
				t.Fatalf("graph %d: perm[%d] = %d, want %d (tie-break order changed)",
					i, p, gotPerm[p], wantPerm[p])
			}
		}
	}
}
