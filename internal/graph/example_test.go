package graph_test

import (
	"fmt"

	"repro/internal/graph"
)

// ExampleGraph_MeasureRho measures the inductive independence of a star:
// with the center ordered first, every backward neighborhood contains at
// most the center, so ρ = 1 — the ordering matters.
func ExampleGraph_MeasureRho() {
	g := graph.New(5)
	for leaf := 1; leaf < 5; leaf++ {
		g.AddEdge(0, leaf)
	}
	centerFirst := graph.IdentityOrdering(5)
	rho, _ := g.MeasureRho(centerFirst, 10)
	fmt.Printf("center first: rho = %d\n", rho)

	centerLast := graph.NewOrdering([]int{1, 2, 3, 4, 0})
	rho, _ = g.MeasureRho(centerLast, 10)
	fmt.Printf("center last:  rho = %d\n", rho)
	// Output:
	// center first: rho = 1
	// center last:  rho = 4
}

// ExampleWeighted_IsIndependent shows the weighted independent-set rule:
// total incoming weight below one.
func ExampleWeighted_IsIndependent() {
	w := graph.NewWeighted(3)
	w.SetWeight(0, 2, 0.6)
	w.SetWeight(1, 2, 0.6)
	fmt.Println(w.IsIndependent([]int{0, 2}))    // 2 receives 0.6 < 1
	fmt.Println(w.IsIndependent([]int{0, 1, 2})) // 2 receives 1.2 ≥ 1
	// Output:
	// true
	// false
}
