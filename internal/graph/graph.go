// Package graph implements the (edge-weighted) conflict graphs of Hoefer,
// Kesselheim and Vöcking (SPAA 2011), together with independent-set checks,
// vertex orderings, and measurement of the inductive independence number ρ.
//
// Two graph flavours exist:
//
//   - Graph: an unweighted, undirected conflict graph. A set M is
//     independent if no two of its vertices are adjacent.
//   - Weighted: a directed, edge-weighted conflict graph with weights
//     w(u,v) ≥ 0. A set M is independent if Σ_{u∈M} w(u,v) < 1 for every
//     v ∈ M (Section 3 of the paper).
//
// An Ordering π certifies an inductive independence bound ρ when for every
// vertex v, every independent set inside v's backward neighborhood has size
// (unweighted) or summed symmetric weight w̄ (weighted) at most ρ.
package graph

import "fmt"

const wordBits = 64

// bitset is a fixed-size set of vertex indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+wordBits-1)/wordBits) }

func (b bitset) set(i int)      { b[i/wordBits] |= 1 << (uint(i) % wordBits) }
func (b bitset) clear(i int)    { b[i/wordBits] &^= 1 << (uint(i) % wordBits) }
func (b bitset) has(i int) bool { return b[i/wordBits]&(1<<(uint(i)%wordBits)) != 0 }

// Graph is an unweighted, undirected conflict graph on vertices 0..n-1.
// The zero value is not usable; construct with New.
type Graph struct {
	n   int
	adj []bitset
	nbr [][]int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g := &Graph{n: n, adj: make([]bitset, n), nbr: make([][]int, n)}
	for i := range g.adj {
		g.adj[i] = newBitset(n)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u,v}. Self-loops and duplicate edges
// are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || g.adj[u].has(v) {
		return
	}
	g.adj[u].set(v)
	g.adj[v].set(u)
	g.nbr[u] = append(g.nbr[u], v)
	g.nbr[v] = append(g.nbr[v], u)
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return u != v && g.adj[u].has(v) }

// Neighbors returns the neighbor list of v. The caller must not modify it.
func (g *Graph) Neighbors(v int) []int { return g.nbr[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.nbr[v]) }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, l := range g.nbr {
		total += len(l)
	}
	return total / 2
}

// AvgDegree returns the average vertex degree d̄.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(g.n)
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	d := 0
	for _, l := range g.nbr {
		if len(l) > d {
			d = len(l)
		}
	}
	return d
}

// IsIndependent reports whether the vertex set is independent.
func (g *Graph) IsIndependent(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.HasEdge(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// Ordering is a vertex ordering π. Perm[i] is the vertex at position i, and
// Rank[v] is the position of vertex v, i.e. π(v). Backward neighbors of v are
// neighbors u with Rank[u] < Rank[v].
type Ordering struct {
	Perm []int
	Rank []int
}

// NewOrdering builds an Ordering from a permutation of 0..n-1.
func NewOrdering(perm []int) Ordering {
	rank := make([]int, len(perm))
	seen := make([]bool, len(perm))
	for pos, v := range perm {
		if v < 0 || v >= len(perm) || seen[v] {
			panic(fmt.Sprintf("graph: invalid permutation entry %d at %d", v, pos))
		}
		seen[v] = true
		rank[v] = pos
	}
	p := make([]int, len(perm))
	copy(p, perm)
	return Ordering{Perm: p, Rank: rank}
}

// IdentityOrdering returns the ordering 0,1,...,n-1.
func IdentityOrdering(n int) Ordering {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return NewOrdering(perm)
}

// Len returns the number of vertices in the ordering.
func (o Ordering) Len() int { return len(o.Perm) }

// Before reports whether π(u) < π(v).
func (o Ordering) Before(u, v int) bool { return o.Rank[u] < o.Rank[v] }

// Backward returns Γπ(v): the neighbors of v that come before v in π.
func (g *Graph) Backward(v int, o Ordering) []int {
	var out []int
	for _, u := range g.nbr[v] {
		if o.Before(u, v) {
			out = append(out, u)
		}
	}
	return out
}

// minHeap64 is a binary min-heap over packed uint64 keys.
type minHeap64 []uint64

func (h *minHeap64) push(k uint64) {
	*h = append(*h, k)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *minHeap64) pop() uint64 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	for i := 0; ; {
		l := 2*i + 1
		if l >= last {
			break
		}
		if r := l + 1; r < last && s[r] < s[l] {
			l = r
		}
		if s[i] <= s[l] {
			break
		}
		s[i], s[l] = s[l], s[i]
		i = l
	}
	return top
}

// smallestLast runs the smallest-last elimination: repeatedly remove a
// minimum-degree vertex (lowest index on ties — the exact order the previous
// O(n²) min-degree scan produced, so orderings are unchanged) and record the
// degree at removal time. The min-degree queue is a monotone lazy min-heap
// over packed (degree, vertex) keys: a degree decrement pushes a fresh key
// and stale ones are skipped at pop, giving O((n+m) log n) overall. It
// returns the elimination as a smallest-LAST permutation together with the
// degeneracy (the maximum removal-time degree).
func (g *Graph) smallestLast() ([]int, int) {
	n := g.n
	deg := make([]int, n)
	removed := make([]bool, n)
	h := make(minHeap64, 0, n+g.M())
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		h.push(uint64(deg[v])<<32 | uint64(v))
	}
	perm := make([]int, n)
	degeneracy := 0
	for pos := n - 1; pos >= 0; pos-- {
		var v, d int
		for {
			key := h.pop()
			d, v = int(key>>32), int(uint32(key))
			if !removed[v] && deg[v] == d {
				break
			}
		}
		if d > degeneracy {
			degeneracy = d
		}
		perm[pos] = v
		removed[v] = true
		for _, u := range g.nbr[v] {
			if !removed[u] {
				deg[u]--
				h.push(uint64(deg[u])<<32 | uint64(u))
			}
		}
	}
	return perm, degeneracy
}

// DegeneracyOrdering returns a smallest-last ordering: repeatedly remove a
// minimum-degree vertex and place it last. For an unweighted graph this
// ordering certifies ρ ≤ degeneracy(G), which is optimal within the class of
// orderings for many graph families (e.g. chordal graphs).
func (g *Graph) DegeneracyOrdering() Ordering {
	perm, _ := g.smallestLast()
	return NewOrdering(perm)
}

// Degeneracy returns the degeneracy of the graph (the maximum, over the
// smallest-last elimination, of the degree at removal time).
func (g *Graph) Degeneracy() int {
	_, degeneracy := g.smallestLast()
	return degeneracy
}

// SmallestLast returns the smallest-last ordering together with the
// degeneracy, in one elimination pass — for callers that need both
// (DegeneracyOrdering followed by Degeneracy runs it twice).
func (g *Graph) SmallestLast() (Ordering, int) {
	perm, degeneracy := g.smallestLast()
	return NewOrdering(perm), degeneracy
}

// maxISExact returns the size of a maximum independent set among the given
// candidate vertices, by branch and bound. Intended for small candidate sets
// (backward neighborhoods); cost is exponential in len(cand).
func (g *Graph) maxISExact(cand []int) int {
	best := 0
	var rec func(chosen int, rest []int)
	rec = func(chosen int, rest []int) {
		if chosen+len(rest) <= best {
			return // prune: cannot beat incumbent
		}
		if len(rest) == 0 {
			if chosen > best {
				best = chosen
			}
			return
		}
		v := rest[0]
		// Branch 1: take v, drop its neighbors.
		var keep []int
		for _, u := range rest[1:] {
			if !g.HasEdge(u, v) {
				keep = append(keep, u)
			}
		}
		rec(chosen+1, keep)
		// Branch 2: skip v.
		rec(chosen, rest[1:])
	}
	rec(0, cand)
	return best
}

// MaxIndependentSetSize returns the size of a maximum independent set of the
// whole graph by branch and bound. Exponential; use only on small graphs
// (tests and ground-truth baselines).
func (g *Graph) MaxIndependentSetSize() int {
	all := make([]int, g.n)
	for i := range all {
		all[i] = i
	}
	return g.maxISExact(all)
}

// MeasureRho returns the exact inductive independence of the graph with
// respect to the ordering: max over v of the maximum independent set size in
// v's backward neighborhood. Backward neighborhoods larger than maxExact
// vertices abort with ok=false (the exact computation would be too slow).
func (g *Graph) MeasureRho(o Ordering, maxExact int) (rho int, ok bool) {
	for v := 0; v < g.n; v++ {
		back := g.Backward(v, o)
		if len(back) > maxExact {
			return 0, false
		}
		if r := g.maxISExact(back); r > rho {
			rho = r
		}
	}
	return rho, true
}

// VerifyRho reports whether the ordering certifies inductive independence at
// most bound, checking each backward neighborhood exactly.
func (g *Graph) VerifyRho(o Ordering, bound int, maxExact int) (bool, error) {
	for v := 0; v < g.n; v++ {
		back := g.Backward(v, o)
		if len(back) > maxExact {
			return false, fmt.Errorf("graph: backward neighborhood of %d has %d vertices (> %d)", v, len(back), maxExact)
		}
		if g.maxISExact(back) > bound {
			return false, nil
		}
	}
	return true, nil
}

// Clique returns the complete graph on n vertices. With k channels this is
// exactly an ordinary combinatorial auction (every channel can be assigned
// to at most one bidder).
func Clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Path returns the path graph 0-1-...-n-1.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// Cycle returns the cycle graph on n vertices.
func Cycle(n int) *Graph {
	g := Path(n)
	if n > 2 {
		g.AddEdge(n-1, 0)
	}
	return g
}
