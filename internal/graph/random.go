package graph

import "math/rand"

// RandomGNP returns an Erdős–Rényi graph: each of the n·(n−1)/2 possible
// edges is present independently with probability p.
func RandomGNP(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// RandomBoundedDegree returns a random graph with maximum degree at most d,
// built by attempting m random edge insertions and keeping those that
// respect the degree bound. These are the instances behind the Theorem 5 and
// Theorem 18 hardness discussions (independent set in bounded-degree
// graphs).
func RandomBoundedDegree(rng *rand.Rand, n, d, m int) *Graph {
	g := New(n)
	for t := 0; t < m; t++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) || g.Degree(u) >= d || g.Degree(v) >= d {
			continue
		}
		g.AddEdge(u, v)
	}
	return g
}
