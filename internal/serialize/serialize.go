// Package serialize persists auction instances as JSON so experiments can be
// archived, shared, and replayed. The format is self-contained: it stores
// the constructed conflict structure (edges or weights, ordering, certified
// ρ) rather than the generator parameters, so any model's output round-trips
// exactly.
package serialize

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/auction"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/valuation"
)

// File is the on-disk representation of an instance.
type File struct {
	// FormatVersion guards against future schema changes.
	FormatVersion int `json:"format_version"`
	// Model names the originating interference model (informational).
	Model string `json:"model"`
	// N is the number of bidders, K the number of channels.
	N int `json:"n"`
	K int `json:"k"`
	// RhoBound is the certified inductive independence bound.
	RhoBound float64 `json:"rho_bound"`
	// Pi is the certifying ordering (permutation of 0..n-1).
	Pi []int `json:"pi"`
	// Edges holds the binary conflict edges (nil for weighted instances).
	Edges [][2]int `json:"edges,omitempty"`
	// Weights holds the directed weighted edges (nil for binary instances).
	Weights []WeightedEdge `json:"weights,omitempty"`
	// Bidders holds one valuation spec per bidder.
	Bidders []BidderSpec `json:"bidders"`
}

// WeightedEdge is one directed edge weight w(U,V)=W.
type WeightedEdge struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w"`
}

// BidderSpec encodes one valuation. Type selects the interpretation of the
// remaining fields.
type BidderSpec struct {
	Type string `json:"type"` // additive | unitdemand | singleminded | budgetadditive | coverage | table
	// Values: per-channel values (additive, unitdemand, budgetadditive).
	Values []float64 `json:"values,omitempty"`
	// Budget for budgetadditive.
	Budget float64 `json:"budget,omitempty"`
	// Want/Worth for singleminded (Want is a bundle bitmask).
	Want  uint64  `json:"want,omitempty"`
	Worth float64 `json:"worth,omitempty"`
	// Covers/Weights for coverage.
	Covers  []uint64  `json:"covers,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
	// Table maps bundle bitmask (decimal string) to value.
	Table map[string]float64 `json:"table,omitempty"`
}

// EncodeBidder converts a valuation into its spec. Unknown implementations
// are flattened into an explicit table over all 2^k bundles when k ≤ 16, and
// rejected otherwise.
func EncodeBidder(v valuation.Valuation) (BidderSpec, error) {
	switch b := v.(type) {
	case *valuation.Additive:
		return BidderSpec{Type: "additive", Values: b.V}, nil
	case *valuation.UnitDemand:
		return BidderSpec{Type: "unitdemand", Values: b.V}, nil
	case *valuation.SingleMinded:
		return BidderSpec{Type: "singleminded", Want: uint64(b.Want), Worth: b.Worth,
			Values: make([]float64, b.NumCh)}, nil
	case *valuation.BudgetAdditive:
		return BidderSpec{Type: "budgetadditive", Values: b.V, Budget: b.Budget}, nil
	case *valuation.Coverage:
		return BidderSpec{Type: "coverage", Covers: b.Covers, Weights: b.Weights}, nil
	case *valuation.Table:
		tbl := make(map[string]float64, len(b.Vals))
		for bundle, val := range b.Vals {
			tbl[strconv.FormatUint(uint64(bundle), 10)] = val
		}
		return BidderSpec{Type: "table", Values: make([]float64, b.NumCh), Table: tbl}, nil
	default:
		if v.K() > 16 {
			return BidderSpec{}, fmt.Errorf("serialize: cannot flatten %T with k=%d > 16", v, v.K())
		}
		tbl := map[string]float64{}
		for m := valuation.Bundle(1); m < 1<<uint(v.K()); m++ {
			if val := v.Value(m); val != 0 {
				tbl[strconv.FormatUint(uint64(m), 10)] = val
			}
		}
		return BidderSpec{Type: "table", Values: make([]float64, v.K()), Table: tbl}, nil
	}
}

// DecodeBidder reconstructs a valuation from its spec for k channels.
func DecodeBidder(s BidderSpec, k int) (valuation.Valuation, error) {
	switch s.Type {
	case "additive":
		if len(s.Values) != k {
			return nil, fmt.Errorf("serialize: additive bidder has %d values, want %d", len(s.Values), k)
		}
		return valuation.NewAdditive(s.Values), nil
	case "unitdemand":
		if len(s.Values) != k {
			return nil, fmt.Errorf("serialize: unitdemand bidder has %d values, want %d", len(s.Values), k)
		}
		return valuation.NewUnitDemand(s.Values), nil
	case "singleminded":
		return valuation.NewSingleMinded(k, valuation.Bundle(s.Want), s.Worth), nil
	case "budgetadditive":
		if len(s.Values) != k {
			return nil, fmt.Errorf("serialize: budgetadditive bidder has %d values, want %d", len(s.Values), k)
		}
		return valuation.NewBudgetAdditive(s.Values, s.Budget), nil
	case "coverage":
		if len(s.Covers) != k {
			return nil, fmt.Errorf("serialize: coverage bidder has %d cover sets, want %d", len(s.Covers), k)
		}
		return valuation.NewCoverage(s.Covers, s.Weights), nil
	case "table":
		tbl := make(map[valuation.Bundle]float64, len(s.Table))
		for key, val := range s.Table {
			m, err := strconv.ParseUint(key, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("serialize: bad table key %q: %v", key, err)
			}
			tbl[valuation.Bundle(m)] = val
		}
		return valuation.NewTable(k, tbl), nil
	default:
		return nil, fmt.Errorf("serialize: unknown bidder type %q", s.Type)
	}
}

// Encode converts an instance into its file form.
func Encode(in *auction.Instance) (*File, error) {
	n := in.N()
	f := &File{
		FormatVersion: 1,
		Model:         in.Conf.Model,
		N:             n,
		K:             in.K,
		RhoBound:      in.Conf.RhoBound,
		Pi:            append([]int(nil), in.Conf.Pi.Perm...),
	}
	if g := in.Conf.Binary; g != nil {
		for v := 0; v < n; v++ {
			for _, u := range g.Neighbors(v) {
				if u > v {
					f.Edges = append(f.Edges, [2]int{v, u})
				}
			}
		}
	} else {
		w := in.Conf.W
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if wt := w.Weight(u, v); wt > 0 {
					f.Weights = append(f.Weights, WeightedEdge{U: u, V: v, W: wt})
				}
			}
		}
	}
	for _, b := range in.Bidders {
		spec, err := EncodeBidder(b)
		if err != nil {
			return nil, err
		}
		f.Bidders = append(f.Bidders, spec)
	}
	return f, nil
}

// Decode reconstructs an instance from its file form.
func Decode(f *File) (*auction.Instance, error) {
	if f.FormatVersion != 1 {
		return nil, fmt.Errorf("serialize: unsupported format version %d", f.FormatVersion)
	}
	if len(f.Pi) != f.N {
		return nil, fmt.Errorf("serialize: ordering has %d entries, want %d", len(f.Pi), f.N)
	}
	conf := &models.Conflict{
		Pi:       graph.NewOrdering(f.Pi),
		RhoBound: f.RhoBound,
		Model:    f.Model,
	}
	if f.Weights == nil {
		g := graph.New(f.N)
		for _, e := range f.Edges {
			if e[0] < 0 || e[0] >= f.N || e[1] < 0 || e[1] >= f.N {
				return nil, fmt.Errorf("serialize: edge %v out of range", e)
			}
			g.AddEdge(e[0], e[1])
		}
		conf.Binary = g
		conf.W = graph.FromUnweighted(g)
	} else {
		w := graph.NewWeighted(f.N)
		for _, e := range f.Weights {
			if e.U < 0 || e.U >= f.N || e.V < 0 || e.V >= f.N {
				return nil, fmt.Errorf("serialize: weighted edge %+v out of range", e)
			}
			w.SetWeight(e.U, e.V, e.W)
		}
		conf.W = w
	}
	bidders := make([]valuation.Valuation, 0, len(f.Bidders))
	for _, s := range f.Bidders {
		b, err := DecodeBidder(s, f.K)
		if err != nil {
			return nil, err
		}
		bidders = append(bidders, b)
	}
	return auction.NewInstance(conf, f.K, bidders)
}

// Write marshals an instance as indented JSON to w.
func Write(w io.Writer, in *auction.Instance) error {
	f, err := Encode(in)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Read unmarshals an instance from r.
func Read(r io.Reader) (*auction.Instance, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("serialize: decode: %w", err)
	}
	return Decode(&f)
}
