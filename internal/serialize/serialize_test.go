package serialize

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/valuation"
)

func protocolInstance(seed int64, n, k int) *auction.Instance {
	rng := rand.New(rand.NewSource(seed))
	links := geom.UniformLinks(rng, n, 60, 2, 8)
	conf := models.Protocol(links, 1)
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

func physicalInstance(seed int64, n, k int) *auction.Instance {
	rng := rand.New(rand.NewSource(seed))
	links := geom.UniformLinks(rng, n, 120, 1, 6)
	conf := models.Physical(links, models.UniformPower, models.DefaultSINR())
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

// roundTrip encodes and decodes an instance, asserting semantic equality:
// same LP optimum, same feasibility structure, same bidder values.
func roundTrip(t *testing.T, in *auction.Instance) *auction.Instance {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if out.N() != in.N() || out.K != in.K {
		t.Fatal("shape mismatch")
	}
	if out.Conf.RhoBound != in.Conf.RhoBound || out.Conf.Model != in.Conf.Model {
		t.Fatal("conflict metadata mismatch")
	}
	// Bidder values agree on random bundles.
	rng := rand.New(rand.NewSource(7))
	for v := 0; v < in.N(); v++ {
		for trial := 0; trial < 10; trial++ {
			b := valuation.Bundle(rng.Intn(1 << uint(in.K)))
			if math.Abs(in.Bidders[v].Value(b)-out.Bidders[v].Value(b)) > 1e-12 {
				t.Fatalf("bidder %d value mismatch on %v", v, b)
			}
		}
	}
	return out
}

func TestRoundTripBinary(t *testing.T) {
	in := protocolInstance(1, 10, 3)
	out := roundTrip(t, in)
	// Same conflict edges → same feasibility verdicts on random allocations.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		s := make(auction.Allocation, in.N())
		for v := range s {
			s[v] = valuation.Bundle(rng.Intn(1 << uint(in.K)))
		}
		if in.Feasible(s) != out.Feasible(s) {
			t.Fatalf("feasibility mismatch on %v", s)
		}
	}
}

func TestRoundTripWeighted(t *testing.T) {
	in := physicalInstance(2, 8, 2)
	out := roundTrip(t, in)
	if out.Conf.Binary != nil {
		t.Fatal("weighted instance must stay weighted")
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		s := make(auction.Allocation, in.N())
		for v := range s {
			s[v] = valuation.Bundle(rng.Intn(1 << uint(in.K)))
		}
		if in.Feasible(s) != out.Feasible(s) {
			t.Fatalf("feasibility mismatch on %v", s)
		}
	}
}

// TestRoundTripPreservesLPOptimum: the decoded instance solves to the same
// LP value — the strongest semantic equality we can check cheaply.
func TestRoundTripPreservesLPOptimum(t *testing.T) {
	check := func(seed int64) bool {
		in := protocolInstance(seed, 8, 2)
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			return false
		}
		out, err := Read(&buf)
		if err != nil {
			return false
		}
		a, err1 := in.SolveLP()
		b, err2 := out.SolveLP()
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.Value-b.Value) < 1e-6*(1+a.Value)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeBidderKinds(t *testing.T) {
	k := 3
	bidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{1, 2, 3}),
		valuation.NewUnitDemand([]float64{4, 5, 6}),
		valuation.NewSingleMinded(k, valuation.FromChannels(0, 2), 9),
		valuation.NewBudgetAdditive([]float64{2, 2, 2}, 3),
		valuation.NewCoverage([]uint64{1, 2, 4}, []float64{1, 1, 1}),
		valuation.NewTable(k, map[valuation.Bundle]float64{valuation.FromChannels(1): 5}),
	}
	for _, b := range bidders {
		spec, err := EncodeBidder(b)
		if err != nil {
			t.Fatalf("encode %T: %v", b, err)
		}
		dec, err := DecodeBidder(spec, k)
		if err != nil {
			t.Fatalf("decode %T: %v", b, err)
		}
		for m := valuation.Bundle(0); m < 1<<uint(k); m++ {
			if math.Abs(b.Value(m)-dec.Value(m)) > 1e-12 {
				t.Fatalf("%T: value mismatch on %v", b, m)
			}
		}
	}
}

// fancyValuation is an unknown Valuation implementation, exercising the
// flatten-to-table fallback of EncodeBidder.
type fancyValuation struct{ k int }

func (f fancyValuation) K() int { return f.k }
func (f fancyValuation) Value(t valuation.Bundle) float64 {
	return float64(t.Size() * t.Size()) // superadditive, not in any class
}
func (f fancyValuation) Demand(prices []float64) (valuation.Bundle, float64) {
	best, bestUtil := valuation.Empty, 0.0
	for m := valuation.Bundle(0); m < 1<<uint(f.k); m++ {
		if u := f.Value(m) - m.PriceOf(prices); u > bestUtil {
			best, bestUtil = m, u
		}
	}
	return best, bestUtil
}

func TestEncodeBidderFlattensUnknownTypes(t *testing.T) {
	fv := fancyValuation{k: 4}
	spec, err := EncodeBidder(fv)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Type != "table" {
		t.Fatalf("flattened type %q, want table", spec.Type)
	}
	dec, err := DecodeBidder(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	for m := valuation.Bundle(0); m < 16; m++ {
		if math.Abs(fv.Value(m)-dec.Value(m)) > 1e-12 {
			t.Fatalf("flatten mismatch on %v", m)
		}
	}
	// Too many channels to flatten.
	if _, err := EncodeBidder(fancyValuation{k: 20}); err == nil {
		t.Fatal("k=20 unknown type accepted")
	}
}

func TestEncodeXORFlattens(t *testing.T) {
	x := valuation.NewXOR(3, []valuation.Atom{
		{Bundle: valuation.FromChannels(0), Value: 3},
		{Bundle: valuation.FromChannels(1, 2), Value: 5},
	})
	spec, err := EncodeBidder(x)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBidder(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	for m := valuation.Bundle(0); m < 8; m++ {
		if x.Value(m) != dec.Value(m) {
			t.Fatalf("XOR flatten mismatch on %v", m)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(&File{FormatVersion: 2}); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := Decode(&File{FormatVersion: 1, N: 2, K: 1, Pi: []int{0}}); err == nil {
		t.Fatal("short ordering accepted")
	}
	if _, err := Decode(&File{FormatVersion: 1, N: 2, K: 1, RhoBound: 1,
		Pi: []int{0, 1}, Edges: [][2]int{{0, 5}}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := DecodeBidder(BidderSpec{Type: "nope"}, 2); err == nil {
		t.Fatal("unknown bidder type accepted")
	}
	if _, err := DecodeBidder(BidderSpec{Type: "additive", Values: []float64{1}}, 2); err == nil {
		t.Fatal("short additive accepted")
	}
	if _, err := DecodeBidder(BidderSpec{Type: "table", Table: map[string]float64{"x": 1}}, 2); err == nil {
		t.Fatal("bad table key accepted")
	}
	if _, err := Read(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
