package serialize

import (
	"encoding/json"
	"fmt"
	"io"
)

// TableRecord is the JSON form of one experiment table, including the
// wall-clock cost of producing it.
type TableRecord struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Claim  string     `json:"claim"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	Millis int64      `json:"millis"`
}

// RunRecord is the JSON form of one auctionsim invocation: the run
// configuration plus every produced table, in experiment order.
type RunRecord struct {
	FormatVersion int           `json:"format_version"`
	Quick         bool          `json:"quick"`
	Jobs          int           `json:"jobs"`
	Tables        []TableRecord `json:"tables"`
}

// WriteRun marshals a run record as indented JSON to w.
func WriteRun(w io.Writer, rec *RunRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// ReadRun unmarshals a run record from r and validates its shape.
func ReadRun(r io.Reader) (*RunRecord, error) {
	var rec RunRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, fmt.Errorf("serialize: decode run: %w", err)
	}
	if rec.FormatVersion != 1 {
		return nil, fmt.Errorf("serialize: unsupported run format version %d", rec.FormatVersion)
	}
	for _, t := range rec.Tables {
		for _, row := range t.Rows {
			if len(row) != len(t.Header) {
				return nil, fmt.Errorf("serialize: table %s: row has %d cells, header has %d",
					t.ID, len(row), len(t.Header))
			}
		}
	}
	return &rec, nil
}
