package serialize

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
)

func sampleTable() *exp.Table {
	return &exp.Table{
		ID:     "E1",
		Title:  "sample",
		Claim:  "claim text",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
		Notes:  []string{"a note"},
	}
}

func TestRunRecordRoundTrip(t *testing.T) {
	rec := &RunRecord{
		FormatVersion: 1,
		Quick:         true,
		Jobs:          4,
		Tables:        []TableRecord{EncodeTable(sampleTable(), 1500*time.Millisecond)},
	}
	var buf bytes.Buffer
	if err := WriteRun(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Quick || got.Jobs != 4 || len(got.Tables) != 1 {
		t.Fatalf("round trip lost run config: %+v", got)
	}
	tr := got.Tables[0]
	if tr.ID != "E1" || tr.Millis != 1500 || len(tr.Rows) != 2 {
		t.Fatalf("round trip lost table data: %+v", tr)
	}
	back := DecodeTable(tr)
	if back.Render() != sampleTable().Render() {
		t.Fatalf("decoded table renders differently:\n%s\nvs\n%s",
			back.Render(), sampleTable().Render())
	}
}

func TestReadRunRejectsBadShape(t *testing.T) {
	if _, err := ReadRun(strings.NewReader(`{"format_version":2}`)); err == nil {
		t.Fatal("expected version error")
	}
	bad := `{"format_version":1,"tables":[{"id":"E1","header":["a","b"],"rows":[["only-one"]]}]}`
	if _, err := ReadRun(strings.NewReader(bad)); err == nil {
		t.Fatal("expected row-shape error")
	}
	if _, err := ReadRun(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}
