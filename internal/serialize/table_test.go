package serialize

import (
	"bytes"
	"strings"
	"testing"
)

func sampleRecord() TableRecord {
	return TableRecord{
		ID:     "E1",
		Title:  "sample",
		Claim:  "claim text",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
		Notes:  []string{"a note"},
		Millis: 1500,
	}
}

func TestRunRecordRoundTrip(t *testing.T) {
	rec := &RunRecord{
		FormatVersion: 1,
		Quick:         true,
		Jobs:          4,
		Tables:        []TableRecord{sampleRecord()},
	}
	var buf bytes.Buffer
	if err := WriteRun(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Quick || got.Jobs != 4 || len(got.Tables) != 1 {
		t.Fatalf("round trip lost run config: %+v", got)
	}
	tr := got.Tables[0]
	if tr.ID != "E1" || tr.Millis != 1500 || len(tr.Rows) != 2 || tr.Notes[0] != "a note" {
		t.Fatalf("round trip lost table data: %+v", tr)
	}
}

func TestReadRunRejectsBadShape(t *testing.T) {
	if _, err := ReadRun(strings.NewReader(`{"format_version":2}`)); err == nil {
		t.Fatal("expected version error")
	}
	bad := `{"format_version":1,"tables":[{"id":"E1","header":["a","b"],"rows":[["only-one"]]}]}`
	if _, err := ReadRun(strings.NewReader(bad)); err == nil {
		t.Fatal("expected row-shape error")
	}
	if _, err := ReadRun(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}
