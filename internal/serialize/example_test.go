package serialize_test

import (
	"bytes"
	"fmt"

	"repro/internal/auction"
	"repro/internal/models"
	"repro/internal/serialize"
	"repro/internal/valuation"
)

// Example round-trips a two-bidder auction through JSON.
func Example() {
	conf := models.CliqueConflict(2)
	bidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{7}),
		valuation.NewAdditive([]float64{3}),
	}
	in, _ := auction.NewInstance(conf, 1, bidders)

	var buf bytes.Buffer
	if err := serialize.Write(&buf, in); err != nil {
		fmt.Println(err)
		return
	}
	loaded, err := serialize.Read(&buf)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("model %s, n=%d, bidder 0 values channel 0 at %.0f\n",
		loaded.Conf.Model, loaded.N(), loaded.Bidders[0].Value(valuation.FromChannels(0)))
	// Output:
	// model clique, n=2, bidder 0 values channel 0 at 7
}
