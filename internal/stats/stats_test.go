package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Fatalf("mean = %g (n=%d)", s.Mean(), s.N())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Fatalf("var = %g, want 2.5", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatal("min/max wrong")
	}
	if s.Quantile(0.5) != 3 {
		t.Fatalf("median = %g, want 3", s.Quantile(0.5))
	}
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.Quantile(0.5) != 0 || s.CI95() != 0 {
		t.Fatal("empty sample must report zeros")
	}
	s.Add(7)
	if s.Mean() != 7 || s.Var() != 0 || s.CI95() != 0 {
		t.Fatal("singleton sample wrong")
	}
}

func TestMeanCIFormat(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	if got := s.MeanCI(2); got != "2.00 ± 1.96" {
		t.Fatalf("MeanCI = %q", got)
	}
}

// Property: mean lies within [min, max]; variance is non-negative; the CI
// shrinks as observations repeat.
func TestQuickInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		n := 2 + rng.Intn(50)
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64() * 10)
		}
		if s.Var() < 0 {
			return false
		}
		m := s.Mean()
		if m < s.Min()-1e-9 || m > s.Max()+1e-9 {
			return false
		}
		// Quantiles are monotone.
		return s.Quantile(0.25) <= s.Quantile(0.75)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
