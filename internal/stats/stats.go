// Package stats provides the small summary-statistics toolkit used by the
// experiment harness: means, standard deviations, and normal-approximation
// confidence intervals for seed-replicated measurements.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range s.xs {
		total += x
	}
	return total / float64(len(s.xs))
}

// Var returns the unbiased sample variance (0 for fewer than two
// observations).
func (s *Sample) Var() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	total := 0.0
	for _, x := range s.xs {
		d := x - m
		total += d * d
	}
	return total / float64(len(s.xs)-1)
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// Min and Max return the extremes (0 for an empty sample).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum observation.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s *Sample) CI95() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(len(s.xs)))
}

// MeanCI renders "mean ± ci" with the given precision.
func (s *Sample) MeanCI(prec int) string {
	return fmt.Sprintf("%.*f ± %.*f", prec, s.Mean(), prec, s.CI95())
}
