package sched_test

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/sched"
)

// ExampleFirstFit colors a 5-cycle: three channels suffice (odd cycle).
func ExampleFirstFit() {
	g := graph.Cycle(5)
	c := sched.FirstFit(g, g.DegeneracyOrdering())
	fmt.Printf("channels used: %d, proper: %v\n", c.NumChannels, sched.Verify(g, c) == nil)
	// Output:
	// channels used: 3, proper: true
}
