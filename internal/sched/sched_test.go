package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/models"
)

func TestFirstFitPath(t *testing.T) {
	g := graph.Path(6)
	c := FirstFit(g, g.DegeneracyOrdering())
	if err := Verify(g, c); err != nil {
		t.Fatal(err)
	}
	if c.NumChannels != 2 {
		t.Fatalf("path needs 2 channels, used %d", c.NumChannels)
	}
}

func TestFirstFitClique(t *testing.T) {
	g := graph.Clique(5)
	c := FirstFit(g, graph.IdentityOrdering(5))
	if err := Verify(g, c); err != nil {
		t.Fatal(err)
	}
	if c.NumChannels != 5 {
		t.Fatalf("clique(5) needs 5 channels, used %d", c.NumChannels)
	}
}

func TestFirstFitEmptyGraph(t *testing.T) {
	g := graph.New(4)
	c := FirstFit(g, graph.IdentityOrdering(4))
	if c.NumChannels != 1 {
		t.Fatalf("edgeless graph needs 1 channel, used %d", c.NumChannels)
	}
}

// Property: first-fit along a degeneracy ordering uses at most
// degeneracy+1 channels and is always proper.
func TestQuickFirstFitDegeneracyBound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		g := graph.RandomGNP(rng, n, 0.3)
		c := FirstFit(g, g.DegeneracyOrdering())
		if Verify(g, c) != nil {
			return false
		}
		return c.NumChannels <= g.Degeneracy()+1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted first-fit is always proper, and on lifted unweighted
// graphs it matches the binary semantics.
func TestQuickFirstFitWeighted(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		g := graph.RandomGNP(rng, n, 0.3)
		w := graph.FromUnweighted(g)
		pi := g.DegeneracyOrdering()
		c := FirstFitWeighted(w, pi)
		if VerifyWeighted(w, c) != nil {
			return false
		}
		// Proper for the binary graph too.
		return Verify(g, c) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFirstFitWeightedSINR(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	links := geom.UniformLinks(rng, 20, 120, 1, 6)
	conf := models.Physical(links, models.UniformPower, models.DefaultSINR())
	c := FirstFitWeighted(conf.W, conf.Pi)
	if err := VerifyWeighted(conf.W, c); err != nil {
		t.Fatal(err)
	}
	if c.NumChannels < 1 || c.NumChannels > 20 {
		t.Fatalf("implausible channel count %d", c.NumChannels)
	}
	// Every class must be simultaneously SINR-feasible (independence in the
	// Physical graph implies the relaxed SINR constraint; we check the
	// weighted independence directly, which Verify already did).
}

func TestLowerBound(t *testing.T) {
	if lb := LowerBound(graph.Clique(6), 10); lb != 6 {
		t.Fatalf("clique lower bound %d, want 6", lb)
	}
	if lb := LowerBound(graph.Path(6), 10); lb != 2 {
		t.Fatalf("path lower bound %d, want 2", lb)
	}
	if lb := LowerBound(graph.New(0), 10); lb != 0 {
		t.Fatalf("empty lower bound %d, want 0", lb)
	}
	// Too large for exact alpha: falls back to 1.
	rng := rand.New(rand.NewSource(1))
	if lb := LowerBound(graph.RandomGNP(rng, 30, 0.5), 10); lb != 1 {
		t.Fatalf("fallback lower bound %d, want 1", lb)
	}
}

func TestVerifyRejectsBadColoring(t *testing.T) {
	g := graph.Path(3)
	bad := &Coloring{Channel: []int{0, 0, 0}, NumChannels: 1}
	if Verify(g, bad) == nil {
		t.Fatal("improper coloring accepted")
	}
	short := &Coloring{Channel: []int{0}, NumChannels: 1}
	if Verify(g, short) == nil {
		t.Fatal("short coloring accepted")
	}
}
