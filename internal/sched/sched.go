// Package sched solves the companion problem to the auction: channel
// minimization (scheduling / coloring). Instead of maximizing welfare over k
// channels, it asks how many channels are needed so that every user can be
// served. The paper's related work (Section 1.2) discusses this scheduling
// view for the physical model; here the inductive-independence machinery
// gives the same leverage: first-fit along the certifying ordering π needs
// few channels because backward conflicts are structurally bounded.
//
// For an unweighted graph, first-fit along π uses at most
// maxBackwardDegree(π)+1 channels; along a degeneracy ordering that is
// degeneracy+1, the classic bound. For edge-weighted graphs, first-fit packs
// each vertex into the first channel where both (a) the vertex's incoming
// weight stays below 1 and (b) no member's independence is broken.
package sched

import (
	"fmt"

	"repro/internal/graph"
)

// Coloring is a channel assignment covering every vertex.
type Coloring struct {
	// Channel[v] is the channel of vertex v (0-based).
	Channel []int
	// NumChannels is the number of channels used.
	NumChannels int
}

// classes returns the vertex sets per channel.
func (c *Coloring) classes() [][]int {
	out := make([][]int, c.NumChannels)
	for v, ch := range c.Channel {
		out[ch] = append(out[ch], v)
	}
	return out
}

// FirstFit colors an unweighted conflict graph by first-fit along the
// ordering π: each vertex takes the smallest channel not used by a backward
// neighbor. The number of channels is at most the maximum backward degree
// plus one.
func FirstFit(g *graph.Graph, pi graph.Ordering) *Coloring {
	n := g.N()
	col := make([]int, n)
	for i := range col {
		col[i] = -1
	}
	num := 0
	for _, v := range pi.Perm {
		used := make(map[int]bool)
		for _, u := range g.Neighbors(v) {
			if pi.Before(u, v) && col[u] >= 0 {
				used[col[u]] = true
			}
		}
		ch := 0
		for used[ch] {
			ch++
		}
		col[v] = ch
		if ch+1 > num {
			num = ch + 1
		}
	}
	return &Coloring{Channel: col, NumChannels: num}
}

// Verify reports whether the coloring is proper for the unweighted graph:
// no edge inside a channel.
func Verify(g *graph.Graph, c *Coloring) error {
	if len(c.Channel) != g.N() {
		return fmt.Errorf("sched: coloring covers %d of %d vertices", len(c.Channel), g.N())
	}
	for _, set := range c.classes() {
		if !g.IsIndependent(set) {
			return fmt.Errorf("sched: channel class %v not independent", set)
		}
	}
	return nil
}

// FirstFitWeighted colors an edge-weighted conflict graph along π: each
// vertex takes the smallest channel where the class stays independent in the
// weighted sense (every member, including the newcomer, receives total
// weight < 1 from the class).
func FirstFitWeighted(w *graph.Weighted, pi graph.Ordering) *Coloring {
	n := w.N()
	col := make([]int, n)
	for i := range col {
		col[i] = -1
	}
	var classes [][]int
	for _, v := range pi.Perm {
		placed := false
		for ch := 0; ch < len(classes) && !placed; ch++ {
			cand := append(append([]int(nil), classes[ch]...), v)
			if w.IsIndependent(cand) {
				classes[ch] = cand
				col[v] = ch
				placed = true
			}
		}
		if !placed {
			classes = append(classes, []int{v})
			col[v] = len(classes) - 1
		}
	}
	return &Coloring{Channel: col, NumChannels: len(classes)}
}

// VerifyWeighted reports whether the coloring is proper for the weighted
// graph.
func VerifyWeighted(w *graph.Weighted, c *Coloring) error {
	if len(c.Channel) != w.N() {
		return fmt.Errorf("sched: coloring covers %d of %d vertices", len(c.Channel), w.N())
	}
	for _, set := range c.classes() {
		if !w.IsIndependent(set) {
			return fmt.Errorf("sched: channel class %v not independent", set)
		}
	}
	return nil
}

// LowerBound returns a simple channel lower bound for the unweighted graph:
// clique-free we use ⌈n / α⌉ with α the maximum independent set size when it
// is computable (exact for small graphs), else max degree-based ⌈(d̄+1)⌉ is
// NOT valid, so fall back to 1.
func LowerBound(g *graph.Graph, maxExactN int) int {
	if g.N() == 0 {
		return 0
	}
	if g.N() <= maxExactN {
		alpha := g.MaxIndependentSetSize()
		if alpha > 0 {
			return (g.N() + alpha - 1) / alpha
		}
	}
	return 1
}
