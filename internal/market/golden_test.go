package market

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"
)

// hashTrace folds every generated field of a trace — primaries, arrivals
// (ids, epochs, departures, geometry, link orientations, values), and the
// per-epoch active-primary sets — into one digest. Any perturbation of the
// generator's RNG draw order shows up as a different hex string.
func hashTrace(tr *Trace) string {
	h := sha256.New()
	w := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	wi := func(v int) { w(float64(v)) }
	for _, p := range tr.Primaries {
		w(p.Pos.X)
		w(p.Pos.Y)
		w(p.Radius)
		wi(p.Channel)
	}
	for _, te := range tr.Epochs {
		wi(len(te.Arrivals))
		for _, a := range te.Arrivals {
			wi(a.ID)
			wi(a.Epoch)
			wi(a.Departs)
			w(a.Pos.X)
			w(a.Pos.Y)
			w(a.Radius)
			w(a.Link.Sender.X)
			w(a.Link.Sender.Y)
			w(a.Link.Receiver.X)
			w(a.Link.Receiver.Y)
			for _, v := range a.Values {
				w(v)
			}
		}
		wi(len(te.ActivePrimaries))
		for _, p := range te.ActivePrimaries {
			wi(p)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestGenTraceGoldenStreams pins GenTrace's historical RNG streams byte for
// byte: the hashes below were recorded before the scenario extensions (Rate,
// Lease, Mobility) existed, so any refactor that perturbs the main disk
// stream or the link-orientation stream for configs that leave those fields
// unset breaks this test — and with it every historical seed and the
// committed E15/E17/E18 tables.
func TestGenTraceGoldenStreams(t *testing.T) {
	cases := []struct {
		name string
		cfg  TraceConfig
		want string
	}{
		{
			name: "disk-primaries", // the E19 / journal crash-suite shape
			cfg:  TraceConfig{Seed: 7, Epochs: 40, K: 3, Side: 140, ArrivalRate: 4, MeanLifetime: 4, PrimaryUsers: 2, PrimaryRadius: 40, PrimaryActive: 0.5, MaxUsers: 24},
			want: "7bb369313c665247e7f1324b3b4d2cbb46ff79417d976f31a96985845e2d694f",
		},
		{
			name: "disk-plain", // the broker-test shape (no primaries)
			cfg:  TraceConfig{Seed: 1, Epochs: 30, K: 4, Side: 120, ArrivalRate: 5, MeanLifetime: 4, MaxUsers: 48},
			want: "b128ff537948ef7a38166aa87a2b05c20754ca3190a355752e341115d82bbae5",
		},
		{
			name: "link-protocol", // the brokerload shape, link orientations on
			cfg:  TraceConfig{Seed: 42, Epochs: 60, K: 3, Side: 300, ArrivalRate: 6, MeanLifetime: 5, PrimaryUsers: 3, PrimaryRadius: 60, PrimaryActive: 0.5, MaxUsers: 120, Model: "protocol"},
			want: "b0868e21ea6726bf887f1381d96b62dfc03bd47584a34a8878403ff2d66b829e",
		},
		{
			name: "link-ieee80211",
			cfg:  TraceConfig{Seed: 99, Epochs: 25, K: 5, Side: 200, ArrivalRate: 8, MeanLifetime: 3, PrimaryUsers: 4, PrimaryRadius: 50, PrimaryActive: 0.3, MaxUsers: 64, Model: "ieee80211"},
			want: "fb61eb26ad1c4a11f4e33c0ac22c4140b797d182826c1c71f8d1640c732f8e05",
		},
	}
	for _, tc := range cases {
		if got := hashTrace(GenTrace(tc.cfg)); got != tc.want {
			t.Errorf("%s: trace hash %s, want the pre-scenario golden %s — the historical RNG stream moved", tc.name, got, tc.want)
		}
	}
}

// TestMobilityDoesNotPerturbArrivals: a mobility trace must have the exact
// arrival stream of its static twin (waypoints draw from their own stream),
// and the moves themselves must be deterministic and only ever name bidders
// that are live and arrived in an earlier epoch.
func TestMobilityDoesNotPerturbArrivals(t *testing.T) {
	cfg := TraceConfig{Seed: 11, Epochs: 40, K: 3, Side: 200, ArrivalRate: 5, MeanLifetime: 6, MaxUsers: 60}
	static := GenTrace(cfg)
	cfg.Mobility = Mobility{SpeedMin: 4, SpeedMax: 12}
	mobile := GenTrace(cfg)
	mobile2 := GenTrace(cfg)

	if hashTrace(static) != hashTrace(mobile) {
		t.Fatal("enabling mobility changed the arrival stream")
	}
	totalMoves := 0
	for e := range mobile.Epochs {
		a, b := mobile.Epochs[e].Moves, mobile2.Epochs[e].Moves
		if len(a) != len(b) {
			t.Fatalf("epoch %d: %d vs %d moves across identical seeds", e, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("epoch %d move %d differs across identical seeds: %+v vs %+v", e, i, a[i], b[i])
			}
		}
		totalMoves += len(a)
		live := map[int]bool{}
		for ee := 0; ee < e; ee++ {
			for _, ar := range mobile.Epochs[ee].Arrivals {
				live[ar.ID] = ar.Departs > e
			}
		}
		for _, mv := range a {
			if !live[mv.ID] {
				t.Fatalf("epoch %d: move for %d, which is not a live earlier arrival", e, mv.ID)
			}
			if mv.Pos.X < 0 || mv.Pos.X > cfg.Side || mv.Pos.Y < 0 || mv.Pos.Y > cfg.Side {
				t.Fatalf("epoch %d: move for %d leaves the service area: %+v", e, mv.ID, mv.Pos)
			}
		}
	}
	if totalMoves == 0 {
		t.Fatal("mobility trace generated no moves")
	}
}

// TestLeaseTraceShape: lease traces mark every arrival with Lease ==
// Departs-Epoch (so broker-side expiry retires the bidder on the very epoch
// the replayer drops its handle) and leave the arrival stream untouched.
func TestLeaseTraceShape(t *testing.T) {
	cfg := TraceConfig{Seed: 5, Epochs: 30, K: 3, Side: 150, ArrivalRate: 4, MeanLifetime: 3, MaxUsers: 40}
	plain := GenTrace(cfg)
	cfg.Lease = true
	leased := GenTrace(cfg)
	if hashTrace(plain) != hashTrace(leased) {
		t.Fatal("enabling leases changed the arrival stream")
	}
	n := 0
	for e := range leased.Epochs {
		for _, a := range leased.Epochs[e].Arrivals {
			if a.Lease != a.Departs-a.Epoch {
				t.Fatalf("arrival %d: lease %d != lifetime %d", a.ID, a.Lease, a.Departs-a.Epoch)
			}
			if a.Lease < 1 {
				t.Fatalf("arrival %d: lease %d < 1", a.ID, a.Lease)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("lease trace generated no arrivals")
	}
}

// TestRateFuncOverridesArrivalRate: a Rate function shapes the per-epoch
// arrival intensity (here: zero everywhere except a burst window) while a
// nil Rate keeps the historical constant-rate stream.
func TestRateFuncOverridesArrivalRate(t *testing.T) {
	cfg := TraceConfig{Seed: 3, Epochs: 30, K: 3, Side: 150, ArrivalRate: 5, MeanLifetime: 2, MaxUsers: 200}
	cfg.Rate = func(epoch int) float64 {
		if epoch >= 10 && epoch < 15 {
			return 20
		}
		return 0
	}
	tr := GenTrace(cfg)
	for e, te := range tr.Epochs {
		if (e < 10 || e >= 15) && len(te.Arrivals) != 0 {
			t.Fatalf("epoch %d: %d arrivals outside the burst window", e, len(te.Arrivals))
		}
	}
	burst := 0
	for e := 10; e < 15; e++ {
		burst += len(tr.Epochs[e].Arrivals)
	}
	if burst < 50 {
		t.Fatalf("burst window generated only %d arrivals for mean 20/epoch", burst)
	}
}
