package market

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestGenTraceDeterministic(t *testing.T) {
	cfg := DefaultConfig(9).traceConfig()
	a, b := GenTrace(cfg), GenTrace(cfg)
	if len(a.Epochs) != cfg.Epochs || len(b.Epochs) != cfg.Epochs {
		t.Fatalf("epoch count %d/%d, want %d", len(a.Epochs), len(b.Epochs), cfg.Epochs)
	}
	for e := range a.Epochs {
		ae, be := a.Epochs[e], b.Epochs[e]
		if len(ae.Arrivals) != len(be.Arrivals) {
			t.Fatalf("epoch %d: %d vs %d arrivals", e, len(ae.Arrivals), len(be.Arrivals))
		}
		for i := range ae.Arrivals {
			x, y := ae.Arrivals[i], be.Arrivals[i]
			if x.ID != y.ID || x.Pos != y.Pos || x.Radius != y.Radius || x.Departs != y.Departs {
				t.Fatalf("epoch %d arrival %d differs: %+v vs %+v", e, i, x, y)
			}
		}
	}
}

func TestGenTraceInvariants(t *testing.T) {
	cfg := DefaultConfig(4).traceConfig()
	cfg.Epochs = 30
	tr := GenTrace(cfg)
	active := 0
	departures := map[int]int{}
	lastID := -1
	for e, te := range tr.Epochs {
		active -= departures[e]
		for _, a := range te.Arrivals {
			if a.ID != lastID+1 {
				t.Fatalf("arrival ids not consecutive: %d after %d", a.ID, lastID)
			}
			lastID = a.ID
			if a.Epoch != e {
				t.Fatalf("arrival %d records epoch %d in epoch %d", a.ID, a.Epoch, e)
			}
			if a.Departs <= e {
				t.Fatalf("arrival %d departs at %d, not after %d", a.ID, a.Departs, e)
			}
			if len(a.Values) != cfg.K {
				t.Fatalf("arrival %d has %d values, want %d", a.ID, len(a.Values), cfg.K)
			}
			active++
			departures[a.Departs]++
		}
		if active > cfg.MaxUsers {
			t.Fatalf("epoch %d: %d active users exceeds cap %d", e, active, cfg.MaxUsers)
		}
		for _, pi := range te.ActivePrimaries {
			if pi < 0 || pi >= len(tr.Primaries) {
				t.Fatalf("epoch %d: primary index %d out of range", e, pi)
			}
		}
	}
}

// TestMaskForCountsCoveringPrimaries pins the historical MaskedPairs
// accounting: one count per covering active primary, even on a channel that
// is already masked.
func TestMaskForCountsCoveringPrimaries(t *testing.T) {
	tr := &Trace{
		Primaries: []Primary{
			{Radius: 10, Channel: 1},
			{Radius: 10, Channel: 1},
			{Radius: 0.5, Channel: 0},
		},
		Epochs: []TraceEpoch{{ActivePrimaries: []int{0, 1, 2}}},
	}
	mask, masked := tr.MaskFor(0, geom.Point{X: 3, Y: 0}, 3)
	if masked != 2 {
		t.Fatalf("masked = %d, want 2 (both channel-1 primaries cover)", masked)
	}
	if mask != 0b101 {
		t.Fatalf("mask = %b, want 101", mask)
	}
}

// TestLinkModelTraceSharesPrefix: for a given seed, a link-model trace must
// produce exactly the same arrivals (ids, epochs, positions, radii, values)
// as the disk trace — link orientations come from an independent RNG stream
// — and must populate a link of length Radius anchored at Pos.
func TestLinkModelTraceSharesPrefix(t *testing.T) {
	base := TraceConfig{Seed: 11, Epochs: 8, K: 3, Side: 100, ArrivalRate: 4, MeanLifetime: 3, MaxUsers: 30}
	disk := GenTrace(base)
	link := base
	link.Model = "protocol"
	tr := GenTrace(link)
	if len(tr.Epochs) != len(disk.Epochs) {
		t.Fatalf("epoch counts differ: %d vs %d", len(tr.Epochs), len(disk.Epochs))
	}
	for e := range tr.Epochs {
		la, da := tr.Epochs[e].Arrivals, disk.Epochs[e].Arrivals
		if len(la) != len(da) {
			t.Fatalf("epoch %d: %d vs %d arrivals", e, len(la), len(da))
		}
		for i := range la {
			if la[i].ID != da[i].ID || la[i].Pos != da[i].Pos || la[i].Radius != da[i].Radius ||
				la[i].Departs != da[i].Departs {
				t.Fatalf("epoch %d arrival %d drifted: %+v vs %+v", e, i, la[i], da[i])
			}
			for j := range la[i].Values {
				if la[i].Values[j] != da[i].Values[j] {
					t.Fatalf("epoch %d arrival %d value %d drifted", e, i, j)
				}
			}
			if da[i].Link != (geom.Link{}) {
				t.Fatalf("disk trace grew a link: %+v", da[i].Link)
			}
			if la[i].Link.Sender != la[i].Pos {
				t.Fatalf("link not anchored at pos: %+v", la[i])
			}
			if l := la[i].Link.Length(); math.Abs(l-la[i].Radius) > 1e-9 {
				t.Fatalf("link length %g, want radius %g", l, la[i].Radius)
			}
		}
	}
}

// TestLinkModelNames pins the names LinkModel recognizes.
func TestLinkModelNames(t *testing.T) {
	for name, want := range map[string]bool{
		"": false, "disk": false, "distance2": false,
		"protocol": true, "ieee80211": true, "ieee802.11": true,
	} {
		if got := (TraceConfig{Model: name}).LinkModel(); got != want {
			t.Fatalf("LinkModel(%q) = %v", name, got)
		}
	}
}
