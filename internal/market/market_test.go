package market

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Epochs = 8
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalWelfare != b.TotalWelfare {
		t.Fatalf("non-deterministic: %g vs %g", a.TotalWelfare, b.TotalWelfare)
	}
	if len(a.Epochs) != 8 {
		t.Fatalf("recorded %d epochs, want 8", len(a.Epochs))
	}
}

func TestRunInvariants(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Epochs = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, e := range res.Epochs {
		if e.Winners > e.ActiveUsers {
			t.Fatalf("epoch %d: %d winners among %d users", e.Epoch, e.Winners, e.ActiveUsers)
		}
		if e.Welfare < 0 {
			t.Fatalf("epoch %d: negative welfare", e.Epoch)
		}
		if cfg.Allocator == LPRounding && e.Welfare > e.LPBound+1e-6 && e.LPBound > 0 {
			t.Fatalf("epoch %d: welfare %g exceeds LP bound %g", e.Epoch, e.Welfare, e.LPBound)
		}
		if e.ActiveUsers > cfg.MaxUsers {
			t.Fatalf("epoch %d: population %d exceeds cap", e.Epoch, e.ActiveUsers)
		}
		total += e.Welfare
	}
	if total != res.TotalWelfare {
		t.Fatalf("total welfare %g != sum of epochs %g", res.TotalWelfare, total)
	}
}

func TestGreedyAllocatorRuns(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Epochs = 6
	cfg.Allocator = GreedyAllocator
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalWelfare <= 0 {
		t.Fatal("greedy market produced no welfare")
	}
}

func TestPrimariesMaskChannels(t *testing.T) {
	cfg := DefaultConfig(11)
	cfg.Epochs = 10
	cfg.PrimaryUsers = 6
	cfg.PrimaryRadius = 80 // blankets most of the area
	cfg.PrimaryActive = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	masked := 0
	for _, e := range res.Epochs {
		masked += e.MaskedPairs
	}
	if masked == 0 {
		t.Fatal("blanket primaries masked nothing")
	}
}

func TestInvalidConfig(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Epochs = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("epochs=0 accepted")
	}
	cfg = DefaultConfig(1)
	cfg.K = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("k=0 accepted")
	}
	cfg = DefaultConfig(1)
	cfg.Allocator = Allocator(99)
	cfg.Epochs = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown allocator accepted")
	}
}

func TestAllocatorString(t *testing.T) {
	if LPRounding.String() != "lp-rounding" || GreedyAllocator.String() != "greedy" {
		t.Fatal("allocator names wrong")
	}
	if Allocator(9).String() != "?" {
		t.Fatal("unknown allocator name wrong")
	}
}

// Property: for small random configurations the simulator never errors and
// never violates the LP bound.
func TestQuickMarketRuns(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig(seed)
		cfg.Epochs = 3 + rng.Intn(4)
		cfg.K = 1 + rng.Intn(4)
		cfg.ArrivalRate = 1 + rng.Float64()*5
		cfg.MaxUsers = 20
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		for _, e := range res.Epochs {
			if e.LPBound > 0 && e.Welfare > e.LPBound+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonish(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if poissonish(rng, 0) != 0 {
		t.Fatal("mean 0 must give 0")
	}
	total := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		total += poissonish(rng, 5)
	}
	mean := float64(total) / trials
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("empirical mean %g too far from 5", mean)
	}
}
