package market

import (
	"fmt"

	"repro/internal/geom"
	"repro/pkg/spectrum"
)

// This file is the single trace-arrival → wire-bid translation. Every
// consumer that replays a GenTrace workload against the live broker —
// brokerd -selftest, experiment E18, the broker equivalence tests, and
// cmd/brokerload — builds its mutations here, so the geometry switch
// (disk pos/radius vs. link) and the XOR-mixing convention cannot drift
// between them.

// BidFor translates a trace arrival into the wire bid for this trace's
// interference model: link geometry for link-model traces, the transmitter
// disk otherwise, with the given (already primary-masked) additive values.
func (tr *Trace) BidFor(a Arrival, values []float64) spectrum.Bid {
	bid := spectrum.Bid{Values: values, LeaseEpochs: a.Lease}
	if tr.Config.LinkModel() {
		l := a.Link
		bid.Link = &l
	} else {
		bid.Pos, bid.Radius = a.Pos, a.Radius
	}
	return bid
}

// MoveBidFor translates a mobility event into the geometry-only wire bid of
// a move op: the transmitter disk at the new position, or — for link-model
// traces — the whole link translated rigidly (sender at pos, receiver at its
// original offset).
func (tr *Trace) MoveBidFor(a Arrival, pos geom.Point) spectrum.Bid {
	if tr.Config.LinkModel() {
		return spectrum.Bid{Link: &geom.Link{
			Sender: pos,
			Receiver: geom.Point{
				X: pos.X + (a.Link.Receiver.X - a.Link.Sender.X),
				Y: pos.Y + (a.Link.Receiver.Y - a.Link.Sender.Y),
			},
		}}
	}
	return spectrum.Bid{Pos: pos, Radius: a.Radius}
}

// MixedBidFor is BidFor under the shared XOR-mixing convention
// (spectrum.MixedTraceValues): every 4th trace id bids in the XOR language.
func (tr *Trace) MixedBidFor(a Arrival, values []float64) spectrum.Bid {
	bid := tr.BidFor(a, nil)
	v := spectrum.MixedTraceValues(a.ID, values)
	bid.Values, bid.XOR = v.Additive, v.XOR
	return bid
}

// OpsReplayer walks a trace epoch by epoch and emits each epoch's mutations
// as one ordered spectrum op list — departures, then arrivals, then moves,
// then valuation updates, exactly the Replayer's callback order — sized for
// a single POST /v1/batch (or Broker.Batch) call per trace step. Observe
// feeds the batch results back to learn the broker ids assigned to arrivals.
//
// Leased arrivals (Arrival.Lease > 0) carry their TTL on the submit bid and
// emit no withdraw op: the broker expires them at epoch commit, and the
// replayer silently drops its handle when the lease runs out.
type OpsReplayer struct {
	tr      *Trace
	r       *Replayer
	mixed   bool
	lenient bool
	live    map[int]spectrum.BidderID
	// pending maps result indices of the last Step's submit ops to the
	// trace ids awaiting their broker id.
	pending map[int]int
	// moves and rejected count emitted move ops and tolerated per-item 429
	// rejections over the replay's lifetime.
	moves    int
	rejected int
}

// NewOpsReplayer starts a replay at epoch 0. mixed selects the shared
// XOR-mixing convention (MixedBidFor) over plain additive bids.
func NewOpsReplayer(tr *Trace, mixed bool) *OpsReplayer {
	return &OpsReplayer{
		tr:    tr,
		r:     NewReplayer(tr),
		mixed: mixed,
		live:  make(map[int]spectrum.BidderID),
	}
}

// Lenient makes Observe tolerate per-item 429 (admission-cap) rejections of
// submits instead of failing the replay: the rejected arrival is treated as
// never having entered the market and its later events are skipped. The
// flash-crowd scenario runs lenient by design — driving the broker into 429
// pressure is the point. Any other rejection still errors.
func (o *OpsReplayer) Lenient() { o.lenient = true }

// Moves returns the number of move ops emitted so far.
func (o *OpsReplayer) Moves() int { return o.moves }

// Rejected429 returns the number of tolerated per-item 429 rejections.
func (o *OpsReplayer) Rejected429() int { return o.rejected }

// Epoch returns the next trace epoch Step will play.
func (o *OpsReplayer) Epoch() int { return o.r.Epoch() }

// Live returns the trace-id → broker-id mapping of the currently active
// bidders (shared, not a copy; callers may read it to target extra
// mutations such as moves between steps).
func (o *OpsReplayer) Live() map[int]spectrum.BidderID { return o.live }

// Step gathers the next trace epoch's mutations. The returned ops must be
// applied in order and the results fed to Observe before the next Step
// (arrival ids are not known until then). more is false once the trace is
// exhausted; an empty ops list with more true is a quiet epoch.
func (o *OpsReplayer) Step() (ops []spectrum.Op, more bool, err error) {
	if o.pending != nil {
		return nil, false, fmt.Errorf("market: Step before Observe of the previous results")
	}
	pending := make(map[int]int)
	more, err = o.r.Step(
		func(tid int, leased bool) error {
			id, ok := o.live[tid]
			if !ok {
				return nil // rejected at admission (lenient mode); nothing to retire
			}
			delete(o.live, tid)
			if leased {
				return nil // the broker expires the bid itself at epoch commit
			}
			ops = append(ops, spectrum.Op{Op: spectrum.OpWithdraw, ID: id})
			return nil
		},
		func(a Arrival, values []float64) error {
			var bid spectrum.Bid
			if o.mixed {
				bid = o.tr.MixedBidFor(a, values)
			} else {
				bid = o.tr.BidFor(a, values)
			}
			pending[len(ops)] = a.ID
			ops = append(ops, spectrum.Op{Op: spectrum.OpSubmit, Bid: &bid})
			return nil
		},
		func(tid int, pos geom.Point) error {
			id, ok := o.live[tid]
			if !ok {
				return nil
			}
			bid := o.tr.MoveBidFor(o.r.byID[tid], pos)
			ops = append(ops, spectrum.Op{Op: spectrum.OpMove, ID: id, Bid: &bid})
			o.moves++
			return nil
		},
		func(tid int, values []float64) error {
			id, ok := o.live[tid]
			if !ok {
				return nil
			}
			v := spectrum.Additive(values)
			if o.mixed {
				v = spectrum.MixedTraceValues(tid, values)
			}
			ops = append(ops, spectrum.Op{Op: spectrum.OpUpdate, ID: id, Values: &v})
			return nil
		},
	)
	if err != nil {
		return nil, false, err
	}
	if len(pending) > 0 {
		o.pending = pending
	}
	return ops, more, nil
}

// Observe records the broker ids the last Step's submits were assigned and
// surfaces any per-item rejection as an error (a trace replay expects every
// mutation to be accepted, unless Lenient tolerates admission 429s).
func (o *OpsReplayer) Observe(results []spectrum.OpResult) error {
	pending := o.pending
	o.pending = nil
	for i, r := range results {
		if !r.OK() {
			if _, isSubmit := pending[i]; isSubmit && o.lenient && r.Code == 429 {
				// Admission cap: the arrival never entered the market; its
				// later trace events are skipped via the missing live entry.
				o.rejected++
				delete(pending, i)
				continue
			}
			return fmt.Errorf("market: batch op %d rejected (%d): %s", i, r.Code, r.Error)
		}
		if tid, ok := pending[i]; ok {
			o.live[tid] = r.ID
			delete(pending, i)
		}
	}
	if len(pending) > 0 {
		return fmt.Errorf("market: %d submit results missing from batch response", len(pending))
	}
	return nil
}
