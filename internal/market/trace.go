package market

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// TraceConfig parameterizes the shared arrival/departure generator. It is the
// workload half of Config: everything about who shows up when, nothing about
// how the market is cleared. market.Run, the E17 online experiment, and
// brokerd -selftest all drive their allocators from the same generator, so a
// trace seed names one reproducible workload across all three.
type TraceConfig struct {
	// Seed makes the trace deterministic.
	Seed int64
	// Epochs is the number of rounds to generate.
	Epochs int
	// K is the number of channels bidders value.
	K int
	// Side is the edge length of the service area.
	Side float64
	// ArrivalRate is the expected number of new users per epoch.
	ArrivalRate float64
	// MeanLifetime is the expected number of epochs a user stays.
	MeanLifetime float64
	// PrimaryUsers, PrimaryRadius, PrimaryActive configure the primary
	// transmitters that mask channels region by region.
	PrimaryUsers  int
	PrimaryRadius float64
	PrimaryActive float64
	// MaxUsers caps the concurrently active population; arrivals beyond the
	// cap are never drawn (matching the historical market.Run behaviour, so
	// traces replay its exact RNG stream).
	MaxUsers int
	// Model names the interference backend the trace's geometry targets:
	// "" or "disk" and "distance2" draw transmitter disks only (the
	// historical stream, draw for draw); "protocol" and "ieee80211"
	// additionally orient a sender→receiver link per arrival. Orientations
	// come from an independent RNG stream, so a given seed produces the
	// same arrivals — ids, epochs, positions, radii, values, departures —
	// under every model.
	Model string
	// Rate, when non-nil, overrides ArrivalRate with a per-epoch expected
	// arrival count (the flash-crowd and diurnal scenarios). Only the mean
	// fed to the Poisson draw changes — a nil Rate reproduces the historical
	// stream byte for byte.
	Rate func(epoch int) float64
	// Lease turns every arrival into a broker-enforced temporal lease: the
	// drawn lifetime becomes the arrival's LeaseEpochs TTL and the replay
	// emits no client withdraw for it — the broker expires the bid itself at
	// epoch commit. Departs is still populated (same lifetime), so the
	// replayer's own bookkeeping and the population dynamics are unchanged.
	Lease bool
	// Mobility gives bidders continuous waypoint motion; the zero value
	// leaves them static. Waypoints and speeds draw from an independent RNG
	// stream (the link-orientation idiom), so enabling mobility never
	// perturbs the arrival/value stream of a seed.
	Mobility Mobility
}

// Mobility configures random-waypoint motion: each bidder repeatedly picks a
// uniform destination in the service area and a per-leg speed in
// [SpeedMin, SpeedMax] (distance units per epoch), advancing every epoch and
// emitting a Move event. SpeedMax <= 0 disables motion.
type Mobility struct {
	SpeedMin float64
	SpeedMax float64
}

// Enabled reports whether the trace generates Move events.
func (m Mobility) Enabled() bool { return m.SpeedMax > 0 }

// LinkModel reports whether the trace's arrivals carry link geometry.
func (c TraceConfig) LinkModel() bool {
	return c.Model == "protocol" || c.Model == "ieee80211" || c.Model == "ieee802.11"
}

// traceConfig extracts the workload parameters of a simulation Config.
func (c Config) traceConfig() TraceConfig {
	return TraceConfig{
		Seed:          c.Seed,
		Epochs:        c.Epochs,
		K:             c.K,
		Side:          c.Side,
		ArrivalRate:   c.ArrivalRate,
		MeanLifetime:  c.MeanLifetime,
		PrimaryUsers:  c.PrimaryUsers,
		PrimaryRadius: c.PrimaryRadius,
		PrimaryActive: c.PrimaryActive,
		MaxUsers:      c.MaxUsers,
	}
}

// Arrival is one secondary user entering the market: a transmitter at Pos
// with interference radius Radius, additive per-channel values, and a
// departure epoch (the user is active in epochs [Epoch, Departs)).
type Arrival struct {
	// ID numbers arrivals globally across the trace, in generation order.
	ID int
	// Epoch is the arrival epoch.
	Epoch int
	// Departs is the first epoch the user is gone.
	Departs int
	// Pos and Radius place the transmitter's interference disk (disk and
	// distance-2 models).
	Pos    geom.Point
	Radius float64
	// Link is the sender→receiver pair of link-model traces (sender at Pos,
	// length Radius); the zero value otherwise.
	Link geom.Link
	// Values are the additive per-channel values (length K).
	Values []float64
	// Lease is the broker-enforced TTL in epochs (TraceConfig.Lease traces);
	// 0 means the departure is a client withdraw as usual. When set it equals
	// Departs-Epoch, so broker-side expiry and the replayer's bookkeeping
	// retire the bidder on the same epoch.
	Lease int
}

// Primary is a primary transmitter occupying one channel inside a disk;
// secondary users under an active primary lose that channel for the epoch.
type Primary struct {
	Pos     geom.Point
	Radius  float64
	Channel int
}

// TraceMove is one per-epoch mobility event: the bidder's new transmitter
// position. Link-model geometry translates rigidly (the sender moves to Pos,
// the receiver keeps its original offset).
type TraceMove struct {
	ID  int
	Pos geom.Point
}

// TraceEpoch is one epoch's events.
type TraceEpoch struct {
	// Arrivals lists the users arriving this epoch (population-capped).
	Arrivals []Arrival
	// Moves lists the mobility events of users that arrived in earlier
	// epochs and are still live (TraceConfig.Mobility traces).
	Moves []TraceMove
	// ActivePrimaries indexes into Trace.Primaries.
	ActivePrimaries []int
}

// Trace is a generated workload: the primary transmitters and, per epoch,
// the arrivals and the set of active primaries. Departures are implicit in
// each arrival's Departs epoch.
type Trace struct {
	Config    TraceConfig
	Primaries []Primary
	Epochs    []TraceEpoch
}

// GenTrace generates the workload. The draw order matches the historical
// inline generator of market.Run draw for draw — primaries first, then per
// epoch the Poisson arrival count, per-arrival lifetime/position/radius/
// values, then the primary activity coin flips — so a Config's simulation
// results are unchanged by the extraction.
func GenTrace(cfg TraceConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Link orientations draw from their own stream: the main stream stays
	// byte-identical to the historical disk generator, and all models see
	// the same arrivals for a given seed.
	var linkRng *rand.Rand
	if cfg.LinkModel() {
		linkRng = rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	}
	// Waypoint draws likewise come from their own stream: a mobility trace
	// has the exact arrivals of its static counterpart.
	var moveRng *rand.Rand
	var movers []*mover
	if cfg.Mobility.Enabled() {
		moveRng = rand.New(rand.NewSource(cfg.Seed ^ 0x6D6F7665)) // "move"
	}
	tr := &Trace{Config: cfg}
	tr.Primaries = make([]Primary, cfg.PrimaryUsers)
	for i := range tr.Primaries {
		tr.Primaries[i] = Primary{
			Pos:     geom.Point{X: rng.Float64() * cfg.Side, Y: rng.Float64() * cfg.Side},
			Radius:  cfg.PrimaryRadius,
			Channel: rng.Intn(max(cfg.K, 1)),
		}
	}
	active := 0
	departures := make(map[int]int) // epoch -> count departing at its start
	nextID := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		active -= departures[epoch]
		te := TraceEpoch{}
		rate := cfg.ArrivalRate
		if cfg.Rate != nil {
			rate = cfg.Rate(epoch)
		}
		arrivals := poissonish(rng, rate)
		for i := 0; i < arrivals && active < cfg.MaxUsers; i++ {
			life := 1 + int(rng.ExpFloat64()*cfg.MeanLifetime)
			a := Arrival{
				ID:      nextID,
				Epoch:   epoch,
				Departs: epoch + life,
				Pos:     geom.Point{X: rng.Float64() * cfg.Side, Y: rng.Float64() * cfg.Side},
				Radius:  3 + rng.Float64()*7,
				Values:  make([]float64, cfg.K),
			}
			if cfg.Lease {
				a.Lease = life
			}
			for j := range a.Values {
				a.Values[j] = 1 + rng.Float64()*(10-1)
			}
			if linkRng != nil {
				th := linkRng.Float64() * 2 * math.Pi
				a.Link = geom.Link{
					Sender:   a.Pos,
					Receiver: geom.Point{X: a.Pos.X + a.Radius*math.Cos(th), Y: a.Pos.Y + a.Radius*math.Sin(th)},
				}
			}
			nextID++
			active++
			departures[a.Departs]++
			te.Arrivals = append(te.Arrivals, a)
		}
		if moveRng != nil {
			// Earlier arrivals still live advance one waypoint step each
			// (ascending-id order keeps the draw sequence deterministic);
			// this epoch's arrivals start moving next epoch.
			kept := movers[:0]
			for _, m := range movers {
				if m.departs <= epoch {
					continue
				}
				kept = append(kept, m)
				m.advance(moveRng, cfg.Mobility, cfg.Side)
				te.Moves = append(te.Moves, TraceMove{ID: m.id, Pos: m.pos})
			}
			movers = kept
			for _, a := range te.Arrivals {
				nm := &mover{id: a.ID, departs: a.Departs, pos: a.Pos}
				nm.retarget(moveRng, cfg.Mobility, cfg.Side)
				movers = append(movers, nm)
			}
		}
		for p := range tr.Primaries {
			if rng.Float64() < cfg.PrimaryActive {
				te.ActivePrimaries = append(te.ActivePrimaries, p)
			}
		}
		tr.Epochs = append(tr.Epochs, te)
	}
	return tr
}

// mover is the generation-time state of one waypoint-mobile bidder.
type mover struct {
	id, departs int
	pos, dest   geom.Point
	speed       float64
}

// advance moves one epoch's worth of distance toward the current waypoint,
// retargeting (new destination + per-leg speed) on arrival.
func (m *mover) advance(rng *rand.Rand, mob Mobility, side float64) {
	d := m.pos.Dist(m.dest)
	if d <= m.speed {
		m.pos = m.dest
		m.retarget(rng, mob, side)
		return
	}
	m.pos.X += (m.dest.X - m.pos.X) / d * m.speed
	m.pos.Y += (m.dest.Y - m.pos.Y) / d * m.speed
}

func (m *mover) retarget(rng *rand.Rand, mob Mobility, side float64) {
	m.dest = geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	m.speed = mob.SpeedMin + rng.Float64()*(mob.SpeedMax-mob.SpeedMin)
}

// MaskFor returns the channel mask of a secondary user at pos under the
// epoch's active primaries: bit j set means channel j is usable. The second
// return counts the covering active primaries (the historical MaskedPairs
// accounting: one per (user, in-range primary) pair, even when two primaries
// occupy the same channel).
func (tr *Trace) MaskFor(epoch int, pos geom.Point, k int) (mask uint64, masked int) {
	mask = (uint64(1) << uint(k)) - 1
	for _, pi := range tr.Epochs[epoch].ActivePrimaries {
		p := tr.Primaries[pi]
		if p.Pos.Dist(pos) <= p.Radius {
			mask &^= 1 << uint(p.Channel)
			masked++
		}
	}
	return mask, masked
}

// poissonish draws a Poisson-distributed count by Knuth's inversion method
// (fine for the small means used here).
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for p > l && k < 1000 {
		p *= rng.Float64()
		k++
	}
	return k - 1
}

// Replayer walks a trace epoch by epoch and translates it into the four
// mutations a live market understands: departures due this epoch, arrivals
// (with values masked by the epoch's active primaries), waypoint moves, and
// mask-refresh updates for surviving users whose primary cover changed.
// Experiment E17 and brokerd -selftest both drive internal/broker through
// this one translation (market.Run, which rebuilds whole epochs rather than
// applying deltas, replays the same trace via MaskFor directly), so masking
// and departure semantics cannot drift between the consumers.
type Replayer struct {
	tr    *Trace
	next  int
	live  []int // live trace ids in arrival order
	byID  map[int]Arrival
	masks map[int]uint64
	pos   map[int]geom.Point // current positions (waypoint moves update them)
}

// NewReplayer starts a replay at epoch 0.
func NewReplayer(tr *Trace) *Replayer {
	r := &Replayer{
		tr:    tr,
		byID:  make(map[int]Arrival),
		masks: make(map[int]uint64),
		pos:   make(map[int]geom.Point),
	}
	for e := range tr.Epochs {
		for _, a := range tr.Epochs[e].Arrivals {
			r.byID[a.ID] = a
		}
	}
	return r
}

// Epoch returns the next epoch Step will play.
func (r *Replayer) Epoch() int { return r.next }

// Step plays one epoch through the callbacks, in deterministic order:
// depart(tid, leased) for each user whose lifetime ended (arrival order;
// leased marks a broker-enforced lease the consumer must NOT withdraw — the
// broker expires it itself, the replayer only drops its handle), then
// arrive(a, maskedValues) for each arrival, then move(tid, pos) for each
// mobility event, then update(tid, maskedValues) for each surviving earlier
// user whose channel mask (computed at its current position) changed. Any
// callback may be nil to skip that mutation kind. Returns false once the
// trace is exhausted.
func (r *Replayer) Step(
	depart func(tid int, leased bool) error,
	arrive func(a Arrival, values []float64) error,
	move func(tid int, pos geom.Point) error,
	update func(tid int, values []float64) error,
) (bool, error) {
	if r.next >= len(r.tr.Epochs) {
		return false, nil
	}
	e := r.next
	r.next++
	k := r.tr.Config.K

	kept := r.live[:0]
	for _, tid := range r.live {
		if a := r.byID[tid]; a.Departs <= e {
			delete(r.masks, tid)
			delete(r.pos, tid)
			if depart != nil {
				if err := depart(tid, a.Lease > 0); err != nil {
					return false, err
				}
			}
			continue
		}
		kept = append(kept, tid)
	}
	r.live = kept

	for _, a := range r.tr.Epochs[e].Arrivals {
		mask, _ := r.tr.MaskFor(e, a.Pos, k)
		r.live = append(r.live, a.ID)
		r.masks[a.ID] = mask
		r.pos[a.ID] = a.Pos
		if arrive != nil {
			if err := arrive(a, MaskedValues(a.Values, mask)); err != nil {
				return false, err
			}
		}
	}

	for _, mv := range r.tr.Epochs[e].Moves {
		if _, ok := r.pos[mv.ID]; !ok {
			continue // departed this epoch; the generator won't emit these, but stay safe
		}
		r.pos[mv.ID] = mv.Pos
		if move != nil {
			if err := move(mv.ID, mv.Pos); err != nil {
				return false, err
			}
		}
	}

	newCount := len(r.tr.Epochs[e].Arrivals)
	for _, tid := range r.live[:len(r.live)-newCount] {
		a := r.byID[tid]
		mask, _ := r.tr.MaskFor(e, r.pos[tid], k)
		if mask == r.masks[tid] {
			continue
		}
		r.masks[tid] = mask
		if update != nil {
			if err := update(tid, MaskedValues(a.Values, mask)); err != nil {
				return false, err
			}
		}
	}
	return true, nil
}

// MaskedValues returns the per-channel values with masked-out channels
// zeroed — the valuation a user under active primaries effectively bids.
func MaskedValues(values []float64, mask uint64) []float64 {
	out := make([]float64, len(values))
	for j := range values {
		if mask&(1<<uint(j)) != 0 {
			out[j] = values[j]
		}
	}
	return out
}
