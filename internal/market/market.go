// Package market simulates the application layer the paper's introduction
// motivates ("eBay in the Sky"): a broker repeatedly auctions short-term
// secondary licenses. Each epoch,
//
//  1. secondary users arrive and depart (their licenses expire),
//  2. primary users occupy channels region by region, masking them for the
//     secondary users underneath,
//  3. the winner-determination algorithm of internal/auction allocates the
//     k channels among the active users, and
//  4. welfare and utilization metrics are recorded.
//
// The simulator is deterministic given its seed and can run either the
// LP-rounding allocator or the greedy baseline, so the end-to-end value of
// the paper's algorithm can be measured over a market's lifetime rather
// than on a single instance.
package market

import (
	"fmt"

	"repro/internal/auction"
	"repro/internal/baseline"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/valuation"
)

// Allocator selects the winner-determination algorithm.
type Allocator int

// Available allocators.
const (
	// LPRounding runs the paper's pipeline (derandomized rounding).
	LPRounding Allocator = iota
	// GreedyAllocator runs the per-channel greedy baseline.
	GreedyAllocator
)

// String names the allocator for reports.
func (a Allocator) String() string {
	switch a {
	case LPRounding:
		return "lp-rounding"
	case GreedyAllocator:
		return "greedy"
	}
	return "?"
}

// Config parameterizes a simulation.
type Config struct {
	// Seed makes the run deterministic.
	Seed int64
	// Epochs is the number of auction rounds.
	Epochs int
	// K is the number of channels on the secondary market.
	K int
	// Side is the edge length of the service area.
	Side float64
	// ArrivalRate is the expected number of new users per epoch.
	ArrivalRate float64
	// MeanLifetime is the expected number of epochs a user stays.
	MeanLifetime float64
	// PrimaryUsers is the number of primary transmitters; each occupies one
	// channel within a disk of PrimaryRadius and toggles activity randomly.
	PrimaryUsers  int
	PrimaryRadius float64
	// PrimaryActive is the probability a primary user is active in an
	// epoch.
	PrimaryActive float64
	// Allocator selects the winner-determination algorithm.
	Allocator Allocator
	// MaxUsers caps the concurrently active population (new arrivals are
	// dropped beyond it), keeping LP sizes bounded.
	MaxUsers int
}

// DefaultConfig returns a small but busy market.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Epochs:        20,
		K:             4,
		Side:          100,
		ArrivalRate:   6,
		MeanLifetime:  4,
		PrimaryUsers:  3,
		PrimaryRadius: 30,
		PrimaryActive: 0.5,
		Allocator:     LPRounding,
		MaxUsers:      40,
	}
}

// user is one secondary user: a transmitter with a range, a valuation, and
// a departure epoch.
type user struct {
	pos     geom.Point
	radius  float64
	base    valuation.Valuation
	departs int
}

// EpochStats records one epoch's outcome.
type EpochStats struct {
	Epoch       int
	ActiveUsers int
	Winners     int
	Welfare     float64
	LPBound     float64
	// ChannelGrants counts (winner, channel) grants this epoch, a raw
	// utilization measure.
	ChannelGrants int
	// MaskedPairs counts (user, channel) pairs forbidden by primaries.
	MaskedPairs int
}

// Result aggregates a run.
type Result struct {
	Config Config
	Epochs []EpochStats
	// TotalWelfare is the summed welfare over all epochs.
	TotalWelfare float64
}

// Run executes the simulation. The workload — arrivals, departures, primary
// activity — comes from the shared trace generator (GenTrace); Run only
// replays it through the selected allocator, so market.Run, the E17 online
// experiment, and brokerd -selftest all clear the exact same markets.
func Run(cfg Config) (*Result, error) {
	if cfg.Epochs <= 0 || cfg.K < 1 || cfg.K > valuation.MaxChannels {
		return nil, fmt.Errorf("market: invalid config: epochs=%d k=%d", cfg.Epochs, cfg.K)
	}
	trace := GenTrace(cfg.traceConfig())
	var users []user
	res := &Result{Config: cfg}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Departures.
		kept := users[:0]
		for _, u := range users {
			if u.departs > epoch {
				kept = append(kept, u)
			}
		}
		users = kept
		for _, a := range trace.Epochs[epoch].Arrivals {
			users = append(users, user{
				pos:     a.Pos,
				radius:  a.Radius,
				base:    valuation.NewAdditive(a.Values),
				departs: a.Departs,
			})
		}
		stats := EpochStats{Epoch: epoch, ActiveUsers: len(users)}
		if len(users) == 0 {
			res.Epochs = append(res.Epochs, stats)
			continue
		}

		// Primary activity this epoch → per-user channel masks.
		centers := make([]geom.Point, len(users))
		radii := make([]float64, len(users))
		bidders := make([]valuation.Valuation, len(users))
		for i, u := range users {
			centers[i], radii[i] = u.pos, u.radius
			mask, masked := trace.MaskFor(epoch, u.pos, cfg.K)
			stats.MaskedPairs += masked
			bidders[i] = valuation.NewMasked(u.base, valuation.Bundle(mask))
		}

		conf := models.Disk(centers, radii)
		in, err := auction.NewInstance(conf, cfg.K, bidders)
		if err != nil {
			return nil, fmt.Errorf("market: epoch %d: %w", epoch, err)
		}
		var alloc auction.Allocation
		switch cfg.Allocator {
		case LPRounding:
			r, err := auction.Solve(in, auction.Options{Derandomize: true})
			if err != nil {
				return nil, fmt.Errorf("market: epoch %d: %w", epoch, err)
			}
			alloc = r.Alloc
			stats.LPBound = r.LP.Value
		case GreedyAllocator:
			alloc = baseline.Greedy(in)
		default:
			return nil, fmt.Errorf("market: unknown allocator %d", int(cfg.Allocator))
		}
		if !in.Feasible(alloc) {
			return nil, fmt.Errorf("market: epoch %d produced an infeasible allocation", epoch)
		}
		stats.Welfare = alloc.Welfare(bidders)
		for _, t := range alloc {
			if t != valuation.Empty {
				stats.Winners++
				stats.ChannelGrants += t.Size()
			}
		}
		res.TotalWelfare += stats.Welfare
		res.Epochs = append(res.Epochs, stats)
	}
	return res, nil
}
