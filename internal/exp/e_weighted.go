package exp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/stats"
	"repro/internal/valuation"
)

// E2 — Lemmas 7 and 8. On edge-weighted conflict graphs (physical model,
// uniform power), Algorithm 2 produces a partly-feasible allocation worth at
// least b*/(16√kρ) in expectation, and Algorithm 3 makes it fully feasible
// in at most ⌈log₂ n⌉ iterations while losing at most that factor. The table
// sweeps n and reports the end-to-end ratio against the combined bound and
// the Algorithm 3 iteration count against ⌈log₂ n⌉.
func E2(quick bool) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "weighted rounding + Algorithm 3 (physical model, uniform power)",
		Claim:  "welfare ≥ b*/(16√kρ⌈log n⌉); Algorithm 3 terminates within ⌈log₂ n⌉ iterations",
		Header: []string{"n", "k", "rho bound", "b*(LP)", "welfare", "b*/welfare", "bound", "alg3 iters", "⌈log2 n⌉"},
	}
	ns := []int{16, 32, 64}
	k := 4
	seeds := []int64{1, 2, 3}
	if quick {
		ns = []int{16}
		k = 2
		seeds = seeds[:1]
	}
	for _, n := range ns {
		n := n
		type trial struct {
			rho, lp, welfare float64
			iters            int
		}
		trials := make([]trial, len(seeds))
		ParallelTrials(0, len(seeds), func(i int, _ *rand.Rand) {
			seed := seeds[i]
			in, _ := sinrInstance(seed*1000+int64(n), n, k, models.UniformPower)
			res, err := auction.Solve(in, auction.Options{Seed: seed, Samples: 15})
			if err != nil {
				panic(err)
			}
			der, derIters := in.RoundDerandomized(res.LP)
			if w := der.Welfare(in.Bidders); w > res.Welfare {
				res.Welfare = w
				res.Alg3Iterations = derIters
			}
			trials[i] = trial{in.Conf.RhoBound, res.LP.Value, res.Welfare, res.Alg3Iterations}
		})
		var ratios, bs, ws stats.Sample
		var rhoBound float64
		maxIters := 0
		for _, tr := range trials {
			rhoBound = tr.rho
			if tr.iters > maxIters {
				maxIters = tr.iters
			}
			ratios.Add(ratio(tr.lp, tr.welfare))
			bs.Add(tr.lp)
			ws.Add(tr.welfare)
		}
		logN := math.Ceil(math.Log2(float64(n)))
		bound := 16 * math.Sqrt(float64(k)) * rhoBound * logN
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k), f2(rhoBound),
			f2(bs.Mean()), f2(ws.Mean()), ratios.MeanCI(2),
			f2(bound), fmt.Sprintf("%d", maxIters), fmt.Sprintf("%.0f", logN))
	}
	t.Notes = append(t.Notes,
		"rho bound is the conservative O(log n) certificate; the measured ratio is far below the bound")
	return t
}

// E5 — Proposition 15. The weighted inductive independence of physical-model
// conflict graphs with monotone fixed powers grows like O(log n). The table
// doubles n and reports a greedy lower bound on the measured ρ (the exact
// value is NP-hard at these sizes) together with the certified bound: the
// measured value should grow slowly (logarithmically) while n doubles.
func E5(quick bool) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "physical-model inductive independence vs n",
		Claim:  "ρ = O(log n) for uniform and linear power assignments (Prop. 15)",
		Header: []string{"n", "scheme", "measured rho (greedy LB)", "certified bound", "log2 n"},
	}
	ns := []int{32, 64, 128, 256}
	if quick {
		ns = []int{32, 64}
	}
	for _, scheme := range []models.PowerScheme{models.UniformPower, models.LinearPower, models.SqrtPower} {
		for _, n := range ns {
			rng := rand.New(rand.NewSource(int64(n) * 31))
			links := geom.NestedLinks(rng, n, 1.0)
			conf := models.Physical(links, scheme, models.DefaultSINR())
			lb := conf.W.GreedyRhoLowerBound(conf.Pi)
			t.AddRow(fmt.Sprintf("%d", n), scheme.String(), f3(lb),
				f2(conf.RhoBound), f2(math.Log2(float64(n))))
		}
	}
	t.Notes = append(t.Notes,
		"nested-length links are the hard regime for SINR; measured values grow sublinearly with n, consistent with O(log n)")
	return t
}

// E6 — Theorem 17. Physical model with power control: the LP is built over
// the Theorem 17 edge weights, the rounding selects per-channel link sets,
// and the Foschini–Miljanic fixed point assigns actual transmission powers.
// Every assigned channel set must admit feasible powers, and the welfare
// ratio stays within the O(√k·log n) shape.
func E6(quick bool) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "power control end to end (Theorem 17)",
		Claim:  "every rounded channel set is SINR-feasible under computed powers; welfare within O(√k log n) of b*",
		Header: []string{"n", "k", "b*(LP)", "welfare", "b*/welfare", "channels feasible", "max power"},
	}
	ns := []int{16, 32}
	k := 3
	if quick {
		ns = []int{12}
		k = 2
	}
	params := models.DefaultSINR()
	for _, n := range ns {
		rng := rand.New(rand.NewSource(int64(n) * 7))
		links := geom.UniformLinks(rng, n, 300, 1, 6)
		conf := models.PowerControl(links, params)
		bidders := valuation.RandomMix(rng, n, k, 1, 10)
		in, err := auction.NewInstance(conf, k, bidders)
		if err != nil {
			panic(err)
		}
		res, err := auction.Solve(in, auction.Options{Seed: int64(n), Samples: 15})
		if err != nil {
			panic(err)
		}
		der, _ := in.RoundDerandomized(res.LP)
		if w := der.Welfare(in.Bidders); w > res.Welfare {
			res.Alloc = der
			res.Welfare = w
		}
		feasible, total := 0, 0
		maxPower := 0.0
		for j := 0; j < k; j++ {
			set := res.Alloc.ChannelSet(j)
			if len(set) == 0 {
				continue
			}
			total++
			powers, ok := models.AssignPowers(links, set, params)
			if ok {
				feasible++
				for _, p := range powers {
					if p > maxPower {
						maxPower = p
					}
				}
				if !models.SINRFeasible(links, expandPowers(powers, set, n), set, params) {
					// Should not happen: AssignPowers guarantees the SINR
					// constraints by construction.
					feasible--
				}
			}
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k), f2(res.LP.Value),
			f2(res.Welfare), f2(ratio(res.LP.Value, res.Welfare)),
			fmt.Sprintf("%d/%d", feasible, total), fmt.Sprintf("%.3g", maxPower))
	}
	t.Notes = append(t.Notes,
		"power assignment via the Foschini–Miljanic fixed point (substitute for Kesselheim's procedure; see DESIGN.md §5)")
	return t
}

// expandPowers scatters the subset-aligned power vector into a full-length
// one, as SINRFeasible indexes powers by link id.
func expandPowers(powers []float64, subset []int, n int) []float64 {
	full := make([]float64, n)
	for i, link := range subset {
		full[link] = powers[i]
	}
	return full
}
