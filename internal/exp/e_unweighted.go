package exp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/stats"
	"repro/internal/valuation"
)

// E1 — Theorem 3. On unweighted conflict graphs (protocol model), the
// rounding of Algorithm 1 achieves expected welfare at least b*/(8√k·ρ).
// The table sweeps k and reports the measured ratio b*/welfare against the
// proven bound 8√k·ρ: the ratio must never exceed the bound, and its growth
// in k must be at most √k-shaped.
func E1(quick bool) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "unweighted rounding (protocol model)",
		Claim:  "E[welfare] ≥ b*/(8√k·ρ) — measured b*/welfare stays below 8√k·ρ and grows at most like √k",
		Header: []string{"k", "n", "rho", "b*(LP)", "welfare", "b*/welfare", "bound 8√k·rho"},
	}
	n := 48
	ks := []int{1, 2, 4, 8, 16}
	seeds := []int64{1, 2, 3, 4, 5}
	if quick {
		n, ks, seeds = 24, []int{1, 4}, []int64{1}
	}
	delta := 1.0
	for _, k := range ks {
		k := k
		// One Monte-Carlo trial per seed; each writes into its own slot so the
		// aggregation below is independent of trial interleaving.
		type trial struct{ rho, lp, welfare float64 }
		trials := make([]trial, len(seeds))
		ParallelTrials(0, len(seeds), func(i int, _ *rand.Rand) {
			seed := seeds[i]
			in := protocolInstance(seed, n, k, delta)
			res, err := auction.Solve(in, auction.Options{Seed: seed, Samples: 20, Derandomize: false})
			if err != nil {
				panic(err)
			}
			der, _ := in.RoundDerandomized(res.LP)
			if w := der.Welfare(in.Bidders); w > res.Welfare {
				res.Welfare = w
			}
			trials[i] = trial{in.Conf.RhoBound, res.LP.Value, res.Welfare}
		})
		var ratios, bs, ws stats.Sample
		var rho float64
		for _, tr := range trials {
			rho = tr.rho
			ratios.Add(ratio(tr.lp, tr.welfare))
			bs.Add(tr.lp)
			ws.Add(tr.welfare)
		}
		bound := 8 * math.Sqrt(float64(k)) * rho
		t.AddRow(fmt.Sprintf("%d", k), fmt.Sprintf("%d", n), f2(rho),
			f2(bs.Mean()), f2(ws.Mean()), ratios.MeanCI(2), f2(bound))
	}
	t.Notes = append(t.Notes,
		"welfare is the better of 20 sampled roundings and the derandomized rounding",
		"measured ratios are far below the worst-case bound, as expected for random instances")
	return t
}

// E7 — Section 2.1. The ρ-based LP gives useful bounds where the edge-based
// LP does not: on a clique of n bidders the edge LP relaxation is worth n/2
// regardless of the instance (integrality gap n/2), while the ρ-based LP
// with ρ=1 stays within a constant of the integral optimum. Also compares
// against greedy and random baselines on protocol-model instances.
func E7(quick bool) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "ρ-based LP vs edge LP, greedy, random",
		Claim:  "edge LP bound ≈ n/2 on cliques (gap n/2); ρ-based LP bound stays near OPT; rounding beats naive baselines",
		Header: []string{"graph", "n", "OPT", "edgeLP bound", "rhoLP bound", "alg welfare", "greedy", "random"},
	}
	ns := []int{8, 12}
	if quick {
		ns = []int{8}
	}
	// Each (graph kind, n) pair is an independent trial producing one row.
	type cfg struct {
		kind string
		n    int
	}
	var cfgs []cfg
	for _, n := range ns {
		cfgs = append(cfgs, cfg{"clique", n})
	}
	for _, n := range ns {
		cfgs = append(cfgs, cfg{"protocol", n})
	}
	rows := make([][]string, len(cfgs))
	ParallelTrials(7, len(cfgs), func(i int, _ *rand.Rand) {
		c := cfgs[i]
		var in *auction.Instance
		if c.kind == "clique" {
			// Clique, k=1, unit values: OPT = 1.
			conf := models.CliqueConflict(c.n)
			vals := make([]valuation.Valuation, c.n)
			for j := range vals {
				vals[j] = valuation.NewAdditive([]float64{1})
			}
			var err error
			in, err = auction.NewInstance(conf, 1, vals)
			if err != nil {
				panic(err)
			}
		} else {
			// Protocol-model instance, k=1, mixed values.
			in = protocolInstance(int64(c.n), c.n, 1, 1.0)
		}
		_, opt := baseline.ExactOPT(in)
		_, _, edgeBound, err := baseline.EdgeLP(in)
		if err != nil {
			panic(err)
		}
		res, err := auction.Solve(in, auction.Options{Derandomize: true})
		if err != nil {
			panic(err)
		}
		greedy := baseline.Greedy(in).Welfare(in.Bidders)
		rnd := baseline.Random(in, rand.New(rand.NewSource(7))).Welfare(in.Bidders)
		rows[i] = []string{c.kind, fmt.Sprintf("%d", c.n), f2(opt), f2(edgeBound),
			f2(res.LP.Value), f2(res.Welfare), f2(greedy), f2(rnd)}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes,
		"on the clique, edge LP reports n/2 although OPT=1 — the n/2 integrality gap of Section 2.1",
		"the ρ-based LP bound is valid for OPT and much tighter")
	return t
}

// E10 — Theorems 5 and 6 regimes. Theorem 5: for k=1 the ρ-dependence is
// necessary; we run bounded-degree graphs with growing d and report the
// algorithm's ratio to the exact maximum independent set (it stays ≤ O(ρ),
// and the LP bound scales with ρ=d). Theorem 6: on cliques (ρ=1) with
// single-minded bidders wanting √k-size bundles, the √k dependence is
// necessary; we report the measured ratio against 8√k.
func E10(quick bool) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "hardness-regime behaviour (Theorems 5/6)",
		Claim:  "ratio scales with ρ for k=1 (Thm 5) and with √k for ρ=1 (Thm 6); never exceeds the proven bound",
		Header: []string{"regime", "param", "n", "OPT", "welfare", "OPT/welfare", "bound"},
	}
	degrees := []int{2, 4, 6}
	n := 14
	if quick {
		degrees = []int{3}
		n = 10
	}
	thm5 := make([][]string, len(degrees))
	ParallelTrials(11, len(degrees), func(i int, rng *rand.Rand) {
		d := degrees[i]
		g := graph.RandomBoundedDegree(rng, n, d, n*d*2)
		conf := models.BoundedDegreeConflict(g)
		vals := make([]valuation.Valuation, n)
		for j := range vals {
			vals[j] = valuation.NewAdditive([]float64{1})
		}
		in, err := auction.NewInstance(conf, 1, vals)
		if err != nil {
			panic(err)
		}
		_, opt := baseline.ExactOPT(in)
		res, err := auction.Solve(in, auction.Options{Seed: 1, Samples: 30})
		if err != nil {
			panic(err)
		}
		der, _ := in.RoundDerandomized(res.LP)
		if w := der.Welfare(in.Bidders); w > res.Welfare {
			res.Welfare = w
		}
		thm5[i] = []string{"Thm5 k=1", fmt.Sprintf("d=%d rho=%.0f", d, conf.RhoBound),
			fmt.Sprintf("%d", n), f2(opt), f2(res.Welfare),
			f2(ratio(opt, res.Welfare)), f2(8 * conf.RhoBound)}
	})
	for _, r := range thm5 {
		t.AddRow(r...)
	}
	ks := []int{4, 9}
	if quick {
		ks = []int{4}
	}
	thm6 := make([][]string, len(ks))
	ParallelTrials(0, len(ks), func(i int, _ *rand.Rand) {
		k := ks[i]
		nn := 8
		conf := models.CliqueConflict(nn)
		size := int(math.Sqrt(float64(k)))
		vals := make([]valuation.Valuation, nn)
		r2 := rand.New(rand.NewSource(int64(k)))
		for j := range vals {
			vals[j] = valuation.RandomSingleMinded(r2, k, size, 1, 2)
		}
		in, err := auction.NewInstance(conf, k, vals)
		if err != nil {
			panic(err)
		}
		_, opt := baseline.ExactOPT(in)
		res, err := auction.Solve(in, auction.Options{Seed: 1, Samples: 30})
		if err != nil {
			panic(err)
		}
		der, _ := in.RoundDerandomized(res.LP)
		if w := der.Welfare(in.Bidders); w > res.Welfare {
			res.Welfare = w
		}
		thm6[i] = []string{"Thm6 rho=1", fmt.Sprintf("k=%d", k),
			fmt.Sprintf("%d", nn), f2(opt), f2(res.Welfare),
			f2(ratio(opt, res.Welfare)), f2(8 * math.Sqrt(float64(k)))}
	})
	for _, r := range thm6 {
		t.AddRow(r...)
	}
	return t
}

// E11 — integrality gap in practice. On small instances where the exact
// optimum is computable, the LP optimum b* and the rounded welfare are
// compared against OPT: LP/OPT is the realized integrality gap (worst case
// Θ(√kρ), measured much smaller), and welfare/OPT shows what the rounding
// actually loses.
func E11(quick bool) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "integrality gap and end-to-end quality vs exact OPT",
		Claim:  "LP/OPT ≤ 8√kρ always; on random instances both gaps are small constants",
		Header: []string{"model", "n", "k", "OPT", "b*(LP)", "LP/OPT", "welfare/OPT"},
	}
	type cfg struct {
		model string
		n, k  int
	}
	cfgs := []cfg{{"disk", 10, 2}, {"protocol", 10, 3}, {"clique", 8, 3}}
	if quick {
		cfgs = cfgs[:1]
	}
	seeds := []int64{1, 2, 3, 4, 5}
	if quick {
		seeds = seeds[:2]
	}
	for _, c := range cfgs {
		c := c
		type trial struct {
			lpGap, wGap float64
			ok          bool
		}
		trials := make([]trial, len(seeds))
		ParallelTrials(0, len(seeds), func(i int, _ *rand.Rand) {
			seed := seeds[i]
			var in *auction.Instance
			switch c.model {
			case "disk":
				in = diskInstance(seed, c.n, c.k)
			case "protocol":
				in = protocolInstance(seed, c.n, c.k, 1.0)
			default:
				rng := rand.New(rand.NewSource(seed))
				conf := models.CliqueConflict(c.n)
				bidders := valuation.RandomMix(rng, c.n, c.k, 1, 10)
				var err error
				in, err = auction.NewInstance(conf, c.k, bidders)
				if err != nil {
					panic(err)
				}
			}
			_, opt := baseline.ExactOPT(in)
			if opt <= 0 {
				return
			}
			res, err := auction.Solve(in, auction.Options{Seed: seed, Samples: 30})
			if err != nil {
				panic(err)
			}
			der, _ := in.RoundDerandomized(res.LP)
			if w := der.Welfare(in.Bidders); w > res.Welfare {
				res.Welfare = w
			}
			trials[i] = trial{ratio(res.LP.Value, opt), ratio(res.Welfare, opt), true}
		})
		var sumLPGap, sumWGap float64
		var worstLPGap float64
		cnt := 0
		for _, tr := range trials {
			if !tr.ok {
				continue
			}
			if tr.lpGap > worstLPGap {
				worstLPGap = tr.lpGap
			}
			sumLPGap += tr.lpGap
			sumWGap += tr.wGap
			cnt++
		}
		if cnt == 0 {
			continue
		}
		t.AddRow(c.model, fmt.Sprintf("%d", c.n), fmt.Sprintf("%d", c.k),
			"-", "-", fmt.Sprintf("%s (max %s)", f3(sumLPGap/float64(cnt)), f3(worstLPGap)),
			f3(sumWGap/float64(cnt)))
	}
	t.Notes = append(t.Notes, "OPT by branch and bound; gaps averaged over seeds")
	return t
}
