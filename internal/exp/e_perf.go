package exp

import (
	"fmt"
	"time"

	"repro/internal/auction"
)

// E14 — systems view: end-to-end runtime scaling of the solver. Not a paper
// claim, but the table a downstream user needs: wall-clock and LP size as n
// and k grow, confirming the column generation keeps the master LP small
// (columns ≈ n, not n·2^k), plus a warm-vs-cold LP comparison: the
// warm-started master (tableau and basis kept across column-generation
// rounds, lp.Solver.AddColumn) against the reference path that rebuilds and
// re-solves the master from scratch every round (SolveLPCold).
func E14(quick bool) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "solver runtime and LP size scaling",
		Claim:  "column generation keeps the master near n columns; runtime grows polynomially in n·k; the warm-started master beats rebuild-per-round",
		Header: []string{"n", "k", "LP columns", "colgen rounds", "solve time", "cold LP", "warm LP"},
	}
	type cfg struct{ n, k int }
	cfgs := []cfg{{24, 2}, {48, 4}, {96, 4}, {96, 8}}
	if quick {
		cfgs = []cfg{{16, 2}, {32, 2}}
	}
	for _, c := range cfgs {
		in := protocolInstance(99, c.n, c.k, 1.0)
		start := time.Now()
		res, err := auction.Solve(in, auction.Options{Derandomize: true})
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		start = time.Now()
		if _, err := in.SolveLPCold(); err != nil {
			panic(err)
		}
		coldLP := time.Since(start)
		start = time.Now()
		if _, err := in.SolveLP(); err != nil {
			panic(err)
		}
		warmLP := time.Since(start)
		t.AddRow(fmt.Sprintf("%d", c.n), fmt.Sprintf("%d", c.k),
			fmt.Sprintf("%d", res.LP.ColumnsGenerated),
			fmt.Sprintf("%d", res.LP.Rounds),
			elapsed.Round(time.Millisecond).String(),
			coldLP.Round(time.Millisecond).String(),
			warmLP.Round(time.Millisecond).String())
	}
	t.Notes = append(t.Notes,
		"a bidder's 2^k bundle space never materializes: only oracle-priced columns enter the LP",
		"cold LP rebuilds the master and re-runs two-phase simplex every round; warm LP appends columns to the live tableau and re-optimizes from the current basis")
	return t
}
