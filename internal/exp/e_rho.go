package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/models"
)

// E3 — Proposition 9. Disk graphs, ordered by decreasing radius, have
// inductive independence at most 5. The table measures the exact ρ of
// random disk graphs of increasing size and radius spread; every value must
// be ≤ 5.
func E3(quick bool) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "disk-graph inductive independence",
		Claim:  "ρ ≤ 5 for disk graphs under the decreasing-radius ordering (Prop. 9)",
		Header: []string{"n", "radius range", "edges", "measured rho", "bound"},
	}
	type cfg struct {
		n      int
		lo, hi float64
	}
	cfgs := []cfg{{40, 3, 6}, {80, 2, 10}, {120, 1, 15}}
	if quick {
		cfgs = cfgs[:1]
	}
	for _, c := range cfgs {
		rng := rand.New(rand.NewSource(int64(c.n)))
		centers := geom.UniformPoints(rng, c.n, 100)
		radii := make([]float64, c.n)
		for i := range radii {
			radii[i] = c.lo + rng.Float64()*(c.hi-c.lo)
		}
		conf := models.Disk(centers, radii)
		rho, ok := conf.Binary.MeasureRho(conf.Pi, 28)
		val := fmt.Sprintf("%d", rho)
		if !ok {
			val = "n/a (neighborhood too large)"
		}
		t.AddRow(fmt.Sprintf("%d", c.n), fmt.Sprintf("[%.0f,%.0f]", c.lo, c.hi),
			fmt.Sprintf("%d", conf.Binary.M()), val, "5")
	}
	return t
}

// E4 — Proposition 13. Protocol-model conflict graphs, ordered by
// increasing link length, have ρ ≤ ⌈π/arcsin(Δ/(2(Δ+1)))⌉ − 1. The table
// sweeps Δ; the measured ρ must stay below the (quite loose) bound and
// shrink as Δ grows.
func E4(quick bool) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "protocol-model inductive independence vs Δ",
		Claim:  "ρ ≤ ⌈π/arcsin(Δ/(2(Δ+1)))⌉ − 1, decreasing in Δ (Prop. 13)",
		Header: []string{"delta", "n", "edges", "measured rho", "bound"},
	}
	deltas := []float64{0.25, 0.5, 1, 2, 4}
	n := 64
	if quick {
		deltas = []float64{0.5, 2}
		n = 32
	}
	for _, d := range deltas {
		rng := rand.New(rand.NewSource(97))
		links := geom.UniformLinks(rng, n, 120, 2, 8)
		conf := models.Protocol(links, d)
		rho, ok := conf.Binary.MeasureRho(conf.Pi, 28)
		val := fmt.Sprintf("%d", rho)
		if !ok {
			val = "n/a"
		}
		t.AddRow(f2(d), fmt.Sprintf("%d", n), fmt.Sprintf("%d", conf.Binary.M()),
			val, fmt.Sprintf("%.0f", models.ProtocolRhoBound(d)))
	}
	t.Notes = append(t.Notes, "same link set across rows, so the Δ-dependence is isolated")
	return t
}
