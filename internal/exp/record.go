package exp

import (
	"time"

	"repro/internal/serialize"
)

// EncodeTable converts a rendered experiment table into its serialize
// record form. (The conversion lives here rather than in serialize so the
// persistence layer stays free of harness dependencies — internal/broker
// serves serialized snapshots and is itself driven by this package's E17.)
func EncodeTable(t *Table, d time.Duration) serialize.TableRecord {
	return serialize.TableRecord{
		ID:     t.ID,
		Title:  t.Title,
		Claim:  t.Claim,
		Header: t.Header,
		Rows:   t.Rows,
		Notes:  t.Notes,
		Millis: d.Milliseconds(),
	}
}

// DecodeTable reconstructs the experiment table from its record form.
func DecodeTable(r serialize.TableRecord) *Table {
	return &Table{
		ID:     r.ID,
		Title:  r.Title,
		Claim:  r.Claim,
		Header: r.Header,
		Rows:   r.Rows,
		Notes:  r.Notes,
	}
}
