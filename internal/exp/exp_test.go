package exp

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// sanity-checks the produced tables.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table := e.Run(true)
			if table.ID != e.ID {
				t.Fatalf("table ID %q != %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, r := range table.Rows {
				if len(r) != len(table.Header) {
					t.Fatalf("row %v has %d cells, header has %d", r, len(r), len(table.Header))
				}
			}
			out := table.Render()
			if !strings.Contains(out, e.ID) || !strings.Contains(out, "claim:") {
				t.Fatal("render missing id or claim")
			}
		})
	}
}

func TestFind(t *testing.T) {
	if Find("E1") == nil || Find("E11") == nil {
		t.Fatal("known experiments not found")
	}
	if Find("E99") != nil {
		t.Fatal("unknown experiment found")
	}
}

// TestE1RatiosWithinBound parses E1's table and asserts the measured ratio
// is below the proven bound in every row — the headline Theorem 3 check.
func TestE1RatiosWithinBound(t *testing.T) {
	table := E1(true)
	for _, r := range table.Rows {
		// The ratio cell is "mean ± ci"; the claim concerns the mean.
		mean := strings.Fields(r[5])[0]
		ratio, err1 := strconv.ParseFloat(mean, 64)
		bound, err2 := strconv.ParseFloat(r[6], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", r)
		}
		if ratio > bound {
			t.Fatalf("ratio %g exceeds bound %g", ratio, bound)
		}
	}
}

// TestE3RhoAtMostFive asserts Proposition 9 on the experiment output.
func TestE3RhoAtMostFive(t *testing.T) {
	table := E3(true)
	for _, r := range table.Rows {
		rho, err := strconv.Atoi(r[3])
		if err != nil {
			continue // n/a row
		}
		if rho > 5 {
			t.Fatalf("disk rho %d > 5", rho)
		}
	}
}

// TestE4RhoWithinBound asserts Proposition 13 on the experiment output.
func TestE4RhoWithinBound(t *testing.T) {
	table := E4(true)
	for _, r := range table.Rows {
		rho, err := strconv.Atoi(r[3])
		if err != nil {
			continue
		}
		bound, err := strconv.ParseFloat(r[4], 64)
		if err != nil {
			t.Fatalf("unparseable bound in %v", r)
		}
		if float64(rho) > bound {
			t.Fatalf("protocol rho %d > bound %g", rho, bound)
		}
	}
}

// TestE9Truthful asserts the mechanism experiment reports no profitable
// deviation and an exact decomposition.
func TestE9Truthful(t *testing.T) {
	table := E9(true)
	for _, r := range table.Rows {
		derr, err := strconv.ParseFloat(r[2], 64)
		if err != nil {
			t.Fatalf("unparseable decomposition error %q", r[2])
		}
		if derr > 1e-5 {
			t.Fatalf("decomposition error %g too large", derr)
		}
		gain, err := strconv.ParseFloat(r[5], 64)
		if err != nil {
			t.Fatalf("unparseable deviation gain %q", r[5])
		}
		if gain > 1e-6 {
			t.Fatalf("profitable deviation %g found", gain)
		}
	}
}

// TestE6AllChannelsFeasible asserts Theorem 17's end-to-end promise: every
// assigned channel admits feasible powers.
func TestE6AllChannelsFeasible(t *testing.T) {
	table := E6(true)
	for _, r := range table.Rows {
		frac := r[5]
		parts := strings.Split(frac, "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Fatalf("not all channels feasible: %q", frac)
		}
	}
}
