package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/baseline"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/valuation"
)

// E12 — the Section 4 model zoo. Measures the inductive independence of
// every binary interference model in one table: disk graphs, distance-2
// coloring on disk graphs, (r,s)-civilized graphs, the protocol model, the
// IEEE 802.11 bidirectional model, and distance-2 matching. Every measured
// value must stay below the model's certified bound — this is the empirical
// backbone of the paper's claim that wireless conflict graphs have small ρ.
func E12(quick bool) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "inductive independence across all binary models (Section 4)",
		Claim:  "every wireless model certifies a small constant ρ; measured values stay below the certified bounds",
		Header: []string{"model", "n", "edges", "measured rho", "certified bound"},
	}
	n := 60
	if quick {
		n = 30
	}
	rng := rand.New(rand.NewSource(2024))
	add := func(conf *models.Conflict) {
		rho, ok := conf.Binary.MeasureRho(conf.Pi, 26)
		val := fmt.Sprintf("%d", rho)
		if !ok {
			val = "n/a"
		}
		t.AddRow(conf.Model, fmt.Sprintf("%d", conf.N()),
			fmt.Sprintf("%d", conf.Binary.M()), val, f2(conf.RhoBound))
	}

	centers := geom.UniformPoints(rng, n, 100)
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = 2 + rng.Float64()*6
	}
	add(models.Disk(centers, radii))
	add(models.Distance2Disk(centers, radii))

	civPts := geom.PoissonDiskPoints(rng, n, 100, 4)
	civ, err := models.Civilized(civPts, 10, 4)
	if err != nil {
		panic(err)
	}
	add(civ)

	links := geom.UniformLinks(rng, n, 120, 2, 8)
	add(models.Protocol(links, 1))
	add(models.IEEE80211(links, 1))

	// Distance-2 matching: bidders are edges of a disk graph.
	dg := models.Disk(centers, radii).Binary
	var edges [][2]int
	for v := 0; v < n && len(edges) < n; v++ {
		for _, u := range dg.Neighbors(v) {
			if u > v {
				edges = append(edges, [2]int{v, u})
				break
			}
		}
	}
	if len(edges) > 0 {
		d2m, err := models.Distance2Matching(centers, radii, edges)
		if err != nil {
			panic(err)
		}
		add(d2m)
	}
	t.Notes = append(t.Notes,
		"measured rho is exact (branch and bound per backward neighborhood); n/a = neighborhood too large")
	return t
}

// A1 — ablation: LP right-hand side ρ. The LP uses the model's certified
// bound; substituting the (smaller) measured ρ tightens the upper bound b*
// and the rounding probabilities. The table quantifies how much of the
// looseness comes from the certificate rather than the algorithm. (With the
// measured ρ the RHS is still sound for Lemma 1, since the measured value
// is the true inductive independence of the generated graph.)
func A1(quick bool) *Table {
	t := &Table{
		ID:     "A1",
		Title:  "ablation: certified vs measured ρ in the LP",
		Claim:  "a tighter (measured) ρ shrinks b* and improves the realized ratio — the certificate, not the LP, is the loose part",
		Header: []string{"n", "k", "rho", "b*(LP)", "welfare", "b*/welfare"},
	}
	n, k := 32, 4
	if quick {
		n, k = 20, 2
	}
	for _, use := range []string{"certified", "measured"} {
		// A dense deployment (small area, large Δ) so the interference
		// rows actually bind and the ρ value matters.
		rng := rand.New(rand.NewSource(42))
		links := geom.UniformLinks(rng, n, 25, 2, 10)
		conf := models.Protocol(links, 2.0)
		in, err := auction.NewInstance(conf, k, valuation.RandomMix(rng, n, k, 1, 10))
		if err != nil {
			panic(err)
		}
		if use == "measured" {
			if rho, ok := in.Conf.Binary.MeasureRho(in.Conf.Pi, 32); ok && rho >= 1 {
				in.Conf.RhoBound = float64(rho)
			} else {
				use = "measured n/a, kept certified"
			}
		}
		res, err := auction.Solve(in, auction.Options{Seed: 7, Samples: 20})
		if err != nil {
			panic(err)
		}
		der, _ := in.RoundDerandomized(res.LP)
		if w := der.Welfare(in.Bidders); w > res.Welfare {
			res.Welfare = w
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			fmt.Sprintf("%s %.0f", use, in.Conf.RhoBound),
			f2(res.LP.Value), f2(res.Welfare), f2(ratio(res.LP.Value, res.Welfare)))
	}
	return t
}

// A2 — ablation: sampling effort vs derandomization. Sweeps the number of
// rounding samples and compares against the single deterministic
// conditional-expectations rounding.
func A2(quick bool) *Table {
	t := &Table{
		ID:     "A2",
		Title:  "ablation: rounding samples vs derandomization",
		Claim:  "few samples suffice in practice; the derandomized rounding matches them with a worst-case guarantee",
		Header: []string{"rounding", "welfare", "b*/welfare"},
	}
	n, k := 32, 4
	if quick {
		n, k = 20, 2
	}
	in := protocolInstance(77, n, k, 1.0)
	sol, err := in.SolveLP()
	if err != nil {
		panic(err)
	}
	samples := []int{1, 5, 25, 100}
	if quick {
		samples = []int{1, 10}
	}
	for _, s := range samples {
		// Each rounding sample is an independent trial with its own
		// deterministically-seeded generator, so sample i of "best of 25"
		// equals sample i of "best of 100" at any worker count.
		welfares := make([]float64, s)
		ParallelTrials(1, s, func(i int, rng *rand.Rand) {
			a, _ := in.RoundOnce(sol, rng)
			welfares[i] = a.Welfare(in.Bidders)
		})
		best := 0.0
		for _, w := range welfares {
			if w > best {
				best = w
			}
		}
		t.AddRow(fmt.Sprintf("best of %d samples", s), f2(best), f2(ratio(sol.Value, best)))
	}
	der, _ := in.RoundDerandomized(sol)
	dw := der.Welfare(in.Bidders)
	t.AddRow("derandomized", f2(dw), f2(ratio(sol.Value, dw)))
	return t
}

// A3 — ablation: LP rounding vs local ratio on the k = 1 case. The
// opportunity-cost algorithm (Akcoglu et al.; related work) is a
// ρ-approximation for a single channel but is neither monotone nor
// multi-channel; the table shows both achieve similar quality where the
// comparison is defined.
func A3(quick bool) *Table {
	t := &Table{
		ID:     "A3",
		Title:  "ablation: LP rounding vs local-ratio (k=1)",
		Claim:  "both meet the ρ guarantee on single-channel instances; the LP approach additionally scales to k channels and to the Lavi–Swamy mechanism",
		Header: []string{"seed", "n", "OPT", "LP rounding", "local ratio", "greedy"},
	}
	seeds := []int64{1, 2, 3, 4}
	n := 12
	if quick {
		seeds = seeds[:2]
		n = 10
	}
	rows := make([][]string, len(seeds))
	ParallelTrials(0, len(seeds), func(i int, _ *rand.Rand) {
		seed := seeds[i]
		in := protocolInstance(seed, n, 1, 1.0)
		_, opt := baseline.ExactOPT(in)
		res, err := auction.Solve(in, auction.Options{Derandomize: true})
		if err != nil {
			panic(err)
		}
		_, lrVal, err := baseline.LocalRatio(in)
		if err != nil {
			panic(err)
		}
		greedy := baseline.Greedy(in).Welfare(in.Bidders)
		rows[i] = []string{fmt.Sprintf("%d", seed), fmt.Sprintf("%d", n),
			f2(opt), f2(res.Welfare), f2(lrVal), f2(greedy)}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}
