package exp

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParallelTrialsDeterministic checks the core seeding contract: a trial
// sees the generator rand.NewSource(seed+trial) no matter how many workers
// run, so index-addressed results are identical at any worker count.
func TestParallelTrialsDeterministic(t *testing.T) {
	defer SetTrialWorkers(0)
	for _, seed := range []int64{1, 42, 1000} {
		const n = 64
		run := func(workers int) []float64 {
			SetTrialWorkers(workers)
			out := make([]float64, n)
			ParallelTrials(seed, n, func(i int, rng *rand.Rand) {
				out[i] = rng.Float64() + float64(i)*rng.NormFloat64()
			})
			return out
		}
		serial := run(1)
		for _, workers := range []int{2, 8} {
			parallel := run(workers)
			for i := range serial {
				if serial[i] != parallel[i] {
					t.Fatalf("seed %d workers %d: trial %d differs: serial %v parallel %v",
						seed, workers, i, serial[i], parallel[i])
				}
			}
		}
	}
}

// TestParallelTrialsPanic checks a trial panic re-raises on the caller.
func TestParallelTrialsPanic(t *testing.T) {
	defer SetTrialWorkers(0)
	SetTrialWorkers(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	ParallelTrials(0, 16, func(i int, _ *rand.Rand) {
		if i == 7 {
			panic("trial failure")
		}
	})
}

// TestRunnerMatchesSerial is the headline determinism check: for the
// Monte-Carlo experiments whose inner loops were parallelized, the table a
// parallel run renders must be byte-identical to the serial one.
func TestRunnerMatchesSerial(t *testing.T) {
	defer SetTrialWorkers(0)
	for _, id := range []string{"E1", "E2", "A2"} {
		e := Find(id)
		if e == nil {
			t.Fatalf("experiment %s not registered", id)
		}
		render := func(jobs int) string {
			SetTrialWorkers(jobs)
			r := Runner{Jobs: jobs, Quick: true}
			outs := r.Run([]Experiment{*e})
			if len(outs) != 1 || outs[0].Err != nil {
				t.Fatalf("%s jobs=%d: %v", id, jobs, outs)
			}
			return outs[0].Table.Render()
		}
		serial := render(1)
		parallel := render(8)
		if serial != parallel {
			t.Errorf("%s: parallel table differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}

// TestRunnerOrderAndErrors checks outcomes arrive in input order, streaming
// as predecessors finish, and that an experiment panic becomes Outcome.Err
// without poisoning its neighbors.
func TestRunnerOrderAndErrors(t *testing.T) {
	mk := func(id string, fail bool) Experiment {
		return Experiment{ID: id, Title: id, Run: func(quick bool) *Table {
			if fail {
				panic("boom")
			}
			return &Table{ID: id, Header: []string{"x"}, Rows: [][]string{{"1"}}}
		}}
	}
	exps := []Experiment{mk("X1", false), mk("X2", true), mk("X3", false), mk("X4", false)}
	r := Runner{Jobs: 4, Quick: true}
	outs := r.Run(exps)
	if len(outs) != len(exps) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(exps))
	}
	for i, out := range outs {
		if out.Experiment.ID != exps[i].ID {
			t.Fatalf("outcome %d is %s, want %s", i, out.Experiment.ID, exps[i].ID)
		}
	}
	if outs[1].Err == nil || !strings.Contains(outs[1].Err.Error(), "X2") {
		t.Fatalf("X2 should fail with an identifying error, got %v", outs[1].Err)
	}
	for _, i := range []int{0, 2, 3} {
		if outs[i].Err != nil || outs[i].Table == nil {
			t.Fatalf("outcome %d should succeed, got %+v", i, outs[i])
		}
	}
}

// TestRunnerOnStart checks the progress hook fires once per experiment.
func TestRunnerOnStart(t *testing.T) {
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	seen := map[string]int{}
	exps := []Experiment{
		{ID: "Y1", Run: func(bool) *Table { return &Table{ID: "Y1"} }},
		{ID: "Y2", Run: func(bool) *Table { return &Table{ID: "Y2"} }},
	}
	r := Runner{Jobs: 2, OnStart: func(e Experiment) {
		<-mu
		seen[e.ID]++
		mu <- struct{}{}
	}}
	r.Run(exps)
	if seen["Y1"] != 1 || seen["Y2"] != 1 {
		t.Fatalf("OnStart counts wrong: %v", seen)
	}
}
