package exp

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"

	"repro/internal/broker"
	"repro/internal/market"
	"repro/internal/stats"
	"repro/pkg/spectrum"
)

// E18 — cross-model online welfare. The same churn trace (identical
// arrivals, values, lifetimes, and primary masking per seed — only the
// conflict geometry differs) is streamed through the live broker under every
// interference backend: disk (Prop. 9), distance-2 coloring (Prop. 11), the
// protocol model (Prop. 13), and bidirectional IEEE 802.11. Every 4th
// arrival bids in the XOR language instead of additive values. The check is
// the paper's model-generic promise made live: for each backend, the
// incremental sharded epoch path (cache / warm SetObjective re-solves /
// pool-seeded rebuilds) commits exactly the welfare of a from-scratch
// SolveLP + RoundDerandomized on that epoch's snapshot.
func E18(quick bool) *Table {
	t := &Table{
		ID:     "E18",
		Title:  "cross-model online broker welfare",
		Claim:  "the incremental epoch path matches from-scratch re-solves under every interference backend, not just disk",
		Header: []string{"model", "ρ bound", "epochs", "mean users", "mean comps", "dirty frac", "warm", "rebuilt", "streamed welfare", "from-scratch", "max Δ"},
	}
	epochs := 10
	if quick {
		epochs = 6
	}
	type backend struct {
		flag  string
		delta float64
	}
	backends := []backend{{"disk", 0}, {"distance2", 0}, {"protocol", 1}, {"ieee80211", 0.5}}
	for _, be := range backends {
		model, err := broker.ModelByName(be.flag, be.delta)
		if err != nil {
			panic(err)
		}
		cfg := market.TraceConfig{
			Seed:          3,
			Epochs:        epochs,
			K:             3,
			Side:          140,
			ArrivalRate:   4,
			MeanLifetime:  4,
			PrimaryUsers:  2,
			PrimaryRadius: 40,
			PrimaryActive: 0.5,
			MaxUsers:      24,
			Model:         be.flag,
		}
		if be.flag == "distance2" {
			// The squared disk graph is much denser; keep components solvable.
			cfg.ArrivalRate, cfg.MaxUsers = 3, 16
		}
		tr := market.GenTrace(cfg)
		b, err := broker.New(broker.Config{K: cfg.K, Model: model})
		if err != nil {
			panic(err)
		}
		var users, comps, dirtyFrac stats.Sample
		warm, rebuilt := 0, 0
		streamed, scratch, maxDelta := 0.0, 0.0, 0.0

		// The trace streams through the public SDK over real HTTP: each
		// trace epoch is one POST /v1/batch built by the shared
		// market.OpsReplayer translation (the same path brokerd -selftest
		// and the equivalence tests use); only Tick stays in-process so the
		// experiment controls epoch boundaries deterministically.
		srv := httptest.NewServer(broker.NewHandler(b))
		client := spectrum.NewClient(srv.URL)
		ctx := context.Background()
		replay := market.NewOpsReplayer(tr, true)
		for {
			ops, more, err := replay.Step()
			if err != nil {
				panic(err)
			}
			if !more {
				break
			}
			if len(ops) > 0 {
				res, err := client.SubmitBatch(ctx, ops)
				if err != nil {
					panic(err)
				}
				if err := replay.Observe(res.Results); err != nil {
					panic(err)
				}
			}
			rep := b.Tick()
			users.Add(float64(rep.Active))
			comps.Add(float64(rep.Components))
			if rep.Components > 0 {
				dirtyFrac.Add(float64(rep.WarmResolves+rep.Rebuilds) / float64(rep.Components))
			}
			warm += rep.WarmResolves
			rebuilt += rep.Rebuilds
			streamed += rep.Welfare

			in, _, _, err := b.Snapshot()
			if err != nil {
				panic(err)
			}
			ref := 0.0
			if in.N() > 0 {
				sol, err := in.SolveLP()
				if err != nil {
					panic(err)
				}
				alloc, _ := in.RoundDerandomized(sol)
				ref = alloc.Welfare(in.Bidders)
			}
			scratch += ref
			if d := math.Abs(rep.Welfare - ref); d > maxDelta {
				maxDelta = d
			}
		}
		srv.Close()
		t.AddRow(model.Name(), f0(model.RhoBound()), fmt.Sprintf("%d", epochs),
			f2(users.Mean()), f2(comps.Mean()), f3(dirtyFrac.Mean()),
			fmt.Sprintf("%d", warm), fmt.Sprintf("%d", rebuilt),
			f2(streamed), f2(scratch), fmt.Sprintf("%.2g", maxDelta))
	}
	t.Notes = append(t.Notes,
		"one trace seed: identical arrivals/values/lifetimes per row, only the conflict geometry differs",
		"every 4th arrival bids in the XOR language; primary masking streams valuation updates (and XOR atom changes, which force rebuilds)",
		"dirty frac: share of components re-solved per epoch; the distance-2 row uses a sparser market (its squared conflict graph is denser)")
	return t
}
