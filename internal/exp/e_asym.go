package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/valuation"
)

// E8 — Theorem 18. Asymmetric channels: each channel has its own conflict
// graph, the guarantee degrades to O(k·ρ), and the Theorem 18 construction
// (edges of a bounded-degree graph split across channels, bidders valuing
// only the full bundle) shows this is essentially tight. The table runs the
// construction and reports welfare (= independent-set size recovered)
// against the exact maximum independent set and the 4kρ bound.
func E8(quick bool) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "asymmetric channels (Theorem 18 construction)",
		Claim:  "welfare ≥ b*/(4kρ); the construction ties welfare to independent sets of the base graph",
		Header: []string{"n", "d", "k", "rho", "max IS", "b*(LP)", "welfare", "IS/welfare", "bound 4kρ"},
	}
	type cfg struct{ n, d, k int }
	cfgs := []cfg{{12, 4, 2}, {14, 6, 3}, {16, 6, 2}}
	if quick {
		cfgs = cfgs[:1]
	}
	for _, c := range cfgs {
		rng := rand.New(rand.NewSource(int64(c.n * c.d)))
		g := graph.RandomBoundedDegree(rng, c.n, c.d, c.n*c.d*3)
		channels, pi, rho := models.AsymmetricHardness(g, c.k)
		bidders := make([]valuation.Valuation, c.n)
		for i := range bidders {
			bidders[i] = valuation.NewSingleMinded(c.k, valuation.Full(c.k), 1)
		}
		in, err := auction.NewAsymmetricInstance(channels, pi, rho, bidders)
		if err != nil {
			panic(err)
		}
		res, err := in.Solve(auction.Options{Seed: 5, Samples: 60})
		if err != nil {
			panic(err)
		}
		maxIS := g.MaxIndependentSetSize()
		t.AddRow(fmt.Sprintf("%d", c.n), fmt.Sprintf("%d", c.d), fmt.Sprintf("%d", c.k),
			fmt.Sprintf("%.0f", rho), fmt.Sprintf("%d", maxIS), f2(res.LP.Value),
			f2(res.Welfare), f2(ratio(float64(maxIS), res.Welfare)),
			f2(4*float64(c.k)*rho))
	}
	t.Notes = append(t.Notes,
		"a bidder wins value 1 only with the full channel bundle, so welfare counts vertices that are independent in every per-channel graph simultaneously — exactly an independent set of the base graph")
	return t
}
