package exp

import (
	"testing"
	"time"
)

// Encode/Decode must round-trip a table exactly (Millis is record-only).
func TestTableRecordRoundTrip(t *testing.T) {
	orig := &Table{
		ID:     "E1",
		Title:  "sample",
		Claim:  "claim text",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
		Notes:  []string{"a note"},
	}
	rec := EncodeTable(orig, 1500*time.Millisecond)
	if rec.Millis != 1500 {
		t.Fatalf("millis = %d", rec.Millis)
	}
	back := DecodeTable(rec)
	if back.Render() != orig.Render() {
		t.Fatalf("decoded table renders differently:\n%s\nvs\n%s", back.Render(), orig.Render())
	}
}
