package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/mechanism"
	"repro/internal/models"
	"repro/internal/stats"
	"repro/internal/valuation"
)

// A4 — fidelity ablation: Algorithm 1 as printed resolves conflicts against
// the tentative bundles of backward neighbors; this implementation's default
// resolves against final bundles, which keeps a per-sample superset of
// winners while satisfying the same analysis. The table quantifies the
// difference in expected welfare.
func A4(quick bool) *Table {
	t := &Table{
		ID:     "A4",
		Title:  "ablation: paper-literal vs final-set conflict resolution",
		Claim:  "the final-set refinement dominates the printed rule per sample; both satisfy Theorem 3's analysis",
		Header: []string{"variant", "mean welfare", "b*/mean"},
	}
	// k = 1 keeps the rounding scale at its minimum (2√k·ρ = 2), so roughly
	// half the bidders survive each tentative draw and removal cascades —
	// the only situations where the two rules differ — actually occur.
	n, k := 48, 1
	trials := 300
	if quick {
		n, k, trials = 24, 1, 60
	}
	// Dense deployment, and an aggressive ρ=1 in the rounding scale so
	// tentative draws actually collide: at the theory-safe scale conflicts
	// are Θ(1/kρ²)-rare and the two resolution rules coincide on almost
	// every draw. Feasibility of both variants is unaffected by the scale;
	// only the worst-case guarantee (not at issue here) assumes the
	// certified ρ.
	rng0 := rand.New(rand.NewSource(55))
	links := geom.UniformLinks(rng0, n, 25, 2, 10)
	conf := models.Protocol(links, 2.0)
	in, err := auction.NewInstance(conf, k, valuation.RandomMix(rng0, n, k, 1, 10))
	if err != nil {
		panic(err)
	}
	// Solve the LP at the certified ρ (so adjacent bidders carry
	// simultaneous fractional mass), then round at the aggressive scale
	// ρ=1: with survival probability ≈ x/2, removal cascades — the only
	// situations where the two rules differ — actually occur. Feasibility
	// of both variants is scale-independent; only the worst-case guarantee
	// (not at issue in this ablation) assumes the certified ρ.
	sol, err := in.SolveLP()
	if err != nil {
		panic(err)
	}
	in.Conf.RhoBound = 1
	// Paired trials: both variants replay the identical tentative draws by
	// re-seeding a fresh generator per trial, so the comparison isolates the
	// conflict-resolution rule and parallel order cannot skew the pairing.
	type pair struct{ lit, fin float64 }
	pairs := make([]pair, trials)
	ParallelTrials(1, trials, func(i int, _ *rand.Rand) {
		seed := 1 + int64(i)
		sL, _ := in.RoundOnceLiteral(sol, rand.New(rand.NewSource(seed)))
		sF, _ := in.RoundOnce(sol, rand.New(rand.NewSource(seed)))
		pairs[i] = pair{sL.Welfare(in.Bidders), sF.Welfare(in.Bidders)}
	})
	var lit, fin stats.Sample
	for _, p := range pairs {
		lit.Add(p.lit)
		fin.Add(p.fin)
	}
	t.AddRow("literal (as printed)", lit.MeanCI(2), f2(ratio(sol.Value, lit.Mean())))
	t.AddRow("final-set (default)", fin.MeanCI(2), f2(ratio(sol.Value, fin.Mean())))
	t.Notes = append(t.Notes,
		fmt.Sprintf("same %d tentative draws for both variants (identical per-trial RNG seeds)", trials))
	return t
}

// E16 — mechanism revenue. The Lavi–Swamy payments are scaled fractional
// VCG; the table reports, per instance class, the revenue the broker
// collects against the expected welfare it distributes, plus the
// individual-rationality margin.
func E16(quick bool) *Table {
	t := &Table{
		ID:     "E16",
		Title:  "mechanism revenue vs expected welfare",
		Claim:  "payments are non-negative, individually rational, and a constant fraction of the (scaled) welfare on competitive instances",
		Header: []string{"n", "k", "b*", "E[welfare] (=b*/α)", "revenue", "revenue/E[welfare]", "min E[utility]"},
	}
	// Cliques are ordinary combinatorial auctions: bidders compete head to
	// head, so VCG payments are non-trivial. A sparse disk market is
	// included for contrast (little competition → little revenue).
	type cfg struct {
		name string
		n, k int
	}
	cfgs := []cfg{{"clique", 6, 2}, {"clique", 8, 3}, {"disk", 8, 2}}
	if quick {
		cfgs = cfgs[:1]
	}
	for _, c := range cfgs {
		n, k := c.n, c.k
		rng := rand.New(rand.NewSource(int64(n * k)))
		var conf = diskConf(rng, n)
		if c.name == "clique" {
			conf = models.CliqueConflict(n)
		}
		bidders := make([]valuation.Valuation, n)
		for i := range bidders {
			bidders[i] = valuation.RandomAdditive(rng, k, 1, 10)
		}
		in, err := auction.NewInstance(conf, k, bidders)
		if err != nil {
			panic(err)
		}
		out, err := mechanism.Run(in)
		if err != nil {
			panic(err)
		}
		revenue := 0.0
		minUtil := 1e18
		for v := 0; v < n; v++ {
			revenue += out.Payments[v]
			if u := out.ExpectedValue(v, bidders[v]) - out.Payments[v]; u < minUtil {
				minUtil = u
			}
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			f2(out.LP.Value), f3(out.ExpectedWelfare), f3(revenue),
			f3(ratio(revenue, out.ExpectedWelfare)), f3(minUtil))
	}
	t.Notes = append(t.Notes,
		"revenue is deterministic (payments do not depend on the lottery draw)")
	return t
}
