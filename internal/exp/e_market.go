package exp

import (
	"fmt"

	"repro/internal/market"
	"repro/internal/stats"
)

// E15 — the "eBay in the Sky" application layer (introduction). A multi-
// epoch secondary market with user churn and primary-user channel masking,
// run once with the paper's LP-rounding allocator and once with the greedy
// baseline. The LP bound recorded per epoch also gives an upper bound on
// what any allocator could have achieved.
func E15(quick bool) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "multi-epoch secondary market simulation",
		Claim:  "the LP-rounding allocator sustains welfare near the per-epoch LP bound over a market's lifetime, with primaries masking channels dynamically",
		Header: []string{"allocator", "epochs", "mean users", "mean welfare/epoch", "mean LP bound", "total masked pairs"},
	}
	seeds := []int64{1, 2, 3}
	epochs := 16
	if quick {
		seeds = seeds[:1]
		epochs = 6
	}
	for _, alloc := range []market.Allocator{market.LPRounding, market.GreedyAllocator} {
		var users, welfare, bound stats.Sample
		masked := 0
		for _, seed := range seeds {
			cfg := market.DefaultConfig(seed)
			cfg.Epochs = epochs
			cfg.Allocator = alloc
			res, err := market.Run(cfg)
			if err != nil {
				panic(err)
			}
			for _, e := range res.Epochs {
				users.Add(float64(e.ActiveUsers))
				welfare.Add(e.Welfare)
				if e.LPBound > 0 {
					bound.Add(e.LPBound)
				}
				masked += e.MaskedPairs
			}
		}
		boundCell := "-"
		if bound.N() > 0 {
			boundCell = f2(bound.Mean())
		}
		t.AddRow(alloc.String(), fmt.Sprintf("%d×%d", len(seeds), epochs),
			f2(users.Mean()), welfare.MeanCI(1), boundCell, fmt.Sprintf("%d", masked))
	}
	t.Notes = append(t.Notes,
		"primaries toggle per epoch; a masked (user, channel) pair contributes zero value via valuation.Masked")
	return t
}
