package exp

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"

	"repro/internal/broker"
	"repro/internal/market"
	"repro/internal/scenario"
	"repro/pkg/spectrum"
)

// E20 — the scenario workloads against the live broker. Every named
// generator in internal/scenario (waypoint mobility at vehicle and walking
// speeds, a flash-crowd burst into a deliberately small admission cap, a
// diurnal arrival wave, and broker-enforced temporal leases) streams through
// the public SDK over real HTTP, one POST /v1/batch per trace epoch, with
// the tick held in-process so epoch boundaries stay deterministic. The
// standing check rides along: at every epoch the streamed welfare must equal
// a from-scratch solve of that epoch's snapshot — now under sustained Move
// churn, 429 shedding, and lease expirations the client never sent.
func E20(quick bool) *Table {
	t := &Table{
		ID:     "E20",
		Title:  "scenario workloads: mobility, flash crowds, diurnal waves, leases",
		Claim:  "the incremental epoch path stays from-scratch-identical under move churn, admission shedding, and broker-enforced lease expiry",
		Header: []string{"scenario", "epochs", "submitted", "moves", "expired", "429s", "final active", "streamed welfare", "from-scratch", "max Δ"},
	}
	// Even the full size runs in well under a second; quick keeps enough
	// epochs for the flash-crowd burst to actually overrun the admission cap.
	epochs := 45
	if quick {
		epochs = 30
	}
	for _, sc := range scenario.All {
		p := scenario.Params{Seed: 17, Epochs: epochs, K: 3}
		cfg := broker.Config{K: p.K}
		if sc.MaxBidders > 0 {
			cfg.MaxBidders = sc.MaxBidders
		}
		b, err := broker.New(cfg)
		if err != nil {
			panic(err)
		}
		srv := httptest.NewServer(broker.NewHandler(b))
		client := spectrum.NewClient(srv.URL)
		ctx := context.Background()
		replay := market.NewOpsReplayer(sc.Trace(p), true)
		replay.Lenient() // the flash crowd's 429s are the workload
		streamed, scratch, maxDelta := 0.0, 0.0, 0.0
		finalActive := 0
		for {
			ops, more, err := replay.Step()
			if err != nil {
				panic(err)
			}
			if len(ops) > 0 {
				res, err := client.SubmitBatch(ctx, ops)
				if err != nil {
					panic(err)
				}
				if err := replay.Observe(res.Results); err != nil {
					panic(err)
				}
			}
			rep := b.Tick()
			streamed += rep.Welfare
			finalActive = rep.Active

			in, _, _, err := b.Snapshot()
			if err != nil {
				panic(err)
			}
			ref := 0.0
			if in.N() > 0 {
				sol, err := in.SolveLP()
				if err != nil {
					panic(err)
				}
				alloc, _ := in.RoundDerandomized(sol)
				ref = alloc.Welfare(in.Bidders)
			}
			scratch += ref
			if d := math.Abs(rep.Welfare - ref); d > maxDelta {
				maxDelta = d
			}
			if !more {
				break
			}
		}
		srv.Close()
		m := b.Metrics()
		t.AddRow(sc.Name, fmt.Sprintf("%d", epochs),
			fmt.Sprintf("%d", m.Submitted), fmt.Sprintf("%d", m.Moved),
			fmt.Sprintf("%d", m.Expired), fmt.Sprintf("%d", replay.Rejected429()),
			fmt.Sprintf("%d", finalActive),
			f2(streamed), f2(scratch), fmt.Sprintf("%.2g", maxDelta))
	}
	t.Notes = append(t.Notes,
		"one POST /v1/batch per trace epoch through the public SDK; every 4th arrival bids in the XOR language",
		"expired: departures synthesized by the broker at epoch commit from LeaseEpochs TTLs (the leases row sends no withdraw op at all)",
		"429s: flash-crowd submits shed at the scenario's admission cap (48) and tolerated by the lenient replayer",
		"request/commit latency is measured by cmd/brokerload -scenario (times vary run to run; this table stays byte-reproducible)")
	return t
}
