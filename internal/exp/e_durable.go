package exp

import (
	"fmt"
	"os"
	"time"

	"repro/internal/broker"
	"repro/internal/journal"
	"repro/internal/market"
)

// E19 — systems view: durable-broker recovery time. Not a paper claim but an
// operational property of the reproduction's live broker: restore cost is
// replay cost, so it grows with the journal tail and collapses once a
// snapshot truncates the log. A churn trace is journaled to a real data
// directory (fsync per epoch), the writer is closed, and journal.Recover is
// timed rebuilding the full market — restored state is verified against the
// live broker's final epoch and population before the row is accepted.
func E19(quick bool) *Table {
	t := &Table{
		ID:     "E19",
		Title:  "durable broker: journal length vs recovery time",
		Claim:  "restore = newest snapshot + journal-tail replay; recovery time scales with the tail length, and snapshots bound it",
		Header: []string{"scenario", "trace epochs", "snapshot epoch", "tail records", "journal bytes", "restored n", "restored epoch", "replay time"},
	}
	lengths := []int{8, 24, 48}
	if quick {
		lengths = []int{6, 12}
	}
	for _, L := range lengths {
		runE19Row(t, "journal only", L, -1)
	}
	// One snapshotted run at the longest length: the tail the restore must
	// replay is bounded by the snapshot cadence, not the trace length.
	last := lengths[len(lengths)-1]
	runE19Row(t, "snapshot+tail", last, last/2)
	t.Notes = append(t.Notes,
		"live measurement (fsync-per-epoch journaling to a temp directory); times vary run to run, the scaling shape is the claim",
		"every row's restored broker was verified to match the journaled broker's final epoch and population before timing was accepted",
	)
	return t
}

// runE19Row journals one trace and times its recovery.
func runE19Row(t *Table, scenario string, epochs, snapshotEvery int) {
	dir, err := os.MkdirTemp("", "e19-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	factory := func() (*broker.Broker, error) {
		m, err := broker.ModelByName("disk", 0)
		if err != nil {
			return nil, err
		}
		return broker.New(broker.Config{K: 3, Model: m})
	}
	b, w, _, err := journal.Open(dir, factory, journal.Options{
		Sync:          journal.SyncAlways,
		SnapshotEvery: snapshotEvery,
	})
	if err != nil {
		panic(err)
	}
	tr := market.GenTrace(market.TraceConfig{
		Seed:          7,
		Epochs:        epochs,
		K:             3,
		Side:          140,
		ArrivalRate:   4,
		MeanLifetime:  4,
		PrimaryUsers:  2,
		PrimaryRadius: 40,
		PrimaryActive: 0.5,
		MaxUsers:      24,
	})
	r := market.NewOpsReplayer(tr, true)
	liveN := 0
	for {
		ops, more, err := r.Step()
		if err != nil {
			panic(err)
		}
		results, _ := b.Batch(ops)
		if err := r.Observe(results); err != nil {
			panic(err)
		}
		rep := b.Tick()
		liveN = rep.Active
		if werr := w.Err(); werr != nil {
			panic(werr)
		}
		if !more {
			break
		}
	}
	finalEpoch := b.Epoch()
	if err := w.Close(); err != nil {
		panic(err)
	}

	start := time.Now()
	rb, rec, err := journal.Recover(dir, factory)
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(start)
	if rec.Epoch != finalEpoch || rb.Epoch() != finalEpoch {
		panic(fmt.Sprintf("E19: restored epoch %d, journaled broker committed %d", rec.Epoch, finalEpoch))
	}
	if n := rb.Metrics().Last.Active; n != liveN {
		panic(fmt.Sprintf("E19: restored %d bidders, journaled broker had %d", n, liveN))
	}
	t.AddRow(scenario,
		fmt.Sprintf("%d", finalEpoch),
		fmt.Sprintf("%d", rec.SnapshotEpoch),
		fmt.Sprintf("%d", rec.Records),
		fmt.Sprintf("%d", rec.JournalBytes),
		fmt.Sprintf("%d", liveN),
		fmt.Sprintf("%d", rec.Epoch),
		elapsed.Round(100*time.Microsecond).String(),
	)
}
