package exp

import (
	"fmt"
	"math"

	"repro/internal/broker"
	"repro/internal/market"
	"repro/internal/stats"
)

// E17 — the live broker against the offline reference. The same trace the
// E15 market simulator replays is streamed into internal/broker one epoch at
// a time: departures, arrivals, and primary-mask changes become Withdraw/
// Submit/Update calls, and every Tick the broker re-solves only the dirty
// conflict-graph components (warm-started, sharded). The check: the
// streamed per-epoch welfare must equal a from-scratch
// auction.SolveLP + RoundDerandomized on that epoch's full snapshot — while
// the broker touches only a fraction of the market per epoch.
func E17(quick bool) *Table {
	t := &Table{
		ID:     "E17",
		Title:  "online broker vs from-scratch re-solves",
		Claim:  "the incremental sharded epoch path commits exactly the from-scratch allocation's welfare while re-solving only the dirty components",
		Header: []string{"seed", "epochs", "mean users", "mean comps", "dirty frac", "warm", "rebuilt", "streamed welfare", "from-scratch", "max Δ"},
	}
	seeds := []int64{1, 2}
	epochs := 14
	if quick {
		seeds = seeds[:1]
		epochs = 7
	}
	for _, seed := range seeds {
		tr := market.GenTrace(market.TraceConfig{
			Seed:          seed,
			Epochs:        epochs,
			K:             3,
			Side:          120,
			ArrivalRate:   6,
			MeanLifetime:  4,
			PrimaryUsers:  2,
			PrimaryRadius: 35,
			PrimaryActive: 0.5,
			MaxUsers:      40,
		})
		b, err := broker.New(broker.Config{K: 3})
		if err != nil {
			panic(err)
		}
		var users, comps, dirtyFrac stats.Sample
		warm, rebuilt := 0, 0
		streamed, scratch, maxDelta := 0.0, 0.0, 0.0

		live := map[int]broker.BidderID{}
		replay := market.NewReplayer(tr)
		for {
			more, err := replay.Step(
				func(tid int, _ bool) error {
					err := b.Withdraw(live[tid])
					delete(live, tid)
					return err
				},
				func(a market.Arrival, values []float64) error {
					id, err := b.Submit(broker.Bid{Pos: a.Pos, Radius: a.Radius, Values: values})
					live[a.ID] = id
					return err
				},
				nil, // static trace: no mobility events
				func(tid int, values []float64) error {
					return b.Update(live[tid], broker.Additive(values))
				},
			)
			if err != nil {
				panic(err)
			}
			if !more {
				break
			}
			rep := b.Tick()
			users.Add(float64(rep.Active))
			comps.Add(float64(rep.Components))
			if rep.Components > 0 {
				dirtyFrac.Add(float64(rep.WarmResolves+rep.Rebuilds) / float64(rep.Components))
			}
			warm += rep.WarmResolves
			rebuilt += rep.Rebuilds
			streamed += rep.Welfare

			// From-scratch reference on the full snapshot.
			in, _, _, err := b.Snapshot()
			if err != nil {
				panic(err)
			}
			ref := 0.0
			if in.N() > 0 {
				sol, err := in.SolveLP()
				if err != nil {
					panic(err)
				}
				alloc, _ := in.RoundDerandomized(sol)
				ref = alloc.Welfare(in.Bidders)
			}
			scratch += ref
			if d := math.Abs(rep.Welfare - ref); d > maxDelta {
				maxDelta = d
			}
		}
		t.AddRow(fmt.Sprintf("%d", seed), fmt.Sprintf("%d", epochs),
			f2(users.Mean()), f2(comps.Mean()), f3(dirtyFrac.Mean()),
			fmt.Sprintf("%d", warm), fmt.Sprintf("%d", rebuilt),
			f2(streamed), f2(scratch), fmt.Sprintf("%.2g", maxDelta))
	}
	t.Notes = append(t.Notes,
		"dirty frac: share of components re-solved per epoch (the rest are served from cache)",
		"warm: valuation-only re-solves on a persistent master (lp.Solver.SetObjective); rebuilt: pool-seeded fresh masters",
		"primary-user masking is streamed as valuation updates, exercising both warm paths")
	return t
}
