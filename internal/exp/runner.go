package exp

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome is the result of running one experiment: the rendered table, the
// wall-clock cost, and any failure (experiment panics are converted into
// errors instead of crashing the whole run).
type Outcome struct {
	Experiment Experiment
	Table      *Table
	Duration   time.Duration
	Err        error
}

// Runner executes a list of experiments on a bounded worker pool. Results
// are always delivered in input order, so a parallel run renders the same
// byte stream as a serial one; only the wall clock changes.
type Runner struct {
	// Jobs is the worker pool size; values <= 0 mean runtime.GOMAXPROCS(0).
	Jobs int
	// Quick is passed through to each experiment's Run.
	Quick bool
	// OnStart, when non-nil, is called from the worker goroutine as each
	// experiment begins. It must be safe for concurrent use.
	OnStart func(e Experiment)
}

func (r *Runner) jobs() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Stream launches the experiments and returns a channel yielding one Outcome
// per experiment in input order. Each outcome is delivered as soon as it and
// all its predecessors have finished, so a consumer can print experiment i
// while experiment i+1 is still computing.
func (r *Runner) Stream(experiments []Experiment) <-chan Outcome {
	slots := make([]chan Outcome, len(experiments))
	for i := range slots {
		slots[i] = make(chan Outcome, 1)
	}
	sem := make(chan struct{}, r.jobs())
	for i, e := range experiments {
		i, e := i, e
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			busyWorkers.Add(1)
			defer busyWorkers.Add(-1)
			if r.OnStart != nil {
				r.OnStart(e)
			}
			start := time.Now()
			out := Outcome{Experiment: e}
			func() {
				defer func() {
					if p := recover(); p != nil {
						out.Err = fmt.Errorf("experiment %s: %v", e.ID, p)
					}
				}()
				out.Table = e.Run(r.Quick)
			}()
			out.Duration = time.Since(start)
			slots[i] <- out
		}()
	}
	// Buffered to len(experiments) so the forwarding goroutine always
	// terminates even if the consumer abandons the channel early.
	ordered := make(chan Outcome, len(experiments))
	go func() {
		defer close(ordered)
		for i := range slots {
			ordered <- <-slots[i]
		}
	}()
	return ordered
}

// Run executes the experiments and returns all outcomes in input order.
func (r *Runner) Run(experiments []Experiment) []Outcome {
	outs := make([]Outcome, 0, len(experiments))
	for out := range r.Stream(experiments) {
		outs = append(outs, out)
	}
	return outs
}

// trialWorkers is the shared worker budget for the package: a cap on
// concurrently busy goroutines counted across the Runner's experiment pool
// and ParallelTrials' fan-out together, so nesting trials inside runner
// workers cannot oversubscribe to jobs². 0 means runtime.GOMAXPROCS(0).
var trialWorkers atomic.Int32

// busyWorkers counts goroutines currently charged against the budget:
// running experiments plus extra trial workers.
var busyWorkers atomic.Int32

// SetTrialWorkers sets the shared worker budget. n <= 0 restores the
// default (runtime.GOMAXPROCS(0)). n == 1 forces ParallelTrials to run
// serially in index order, which is useful for determinism checks: the
// aggregate result must be identical either way.
func SetTrialWorkers(n int) {
	if n < 0 {
		n = 0
	}
	trialWorkers.Store(int32(n))
}

func workerBudget() int {
	if b := int(trialWorkers.Load()); b > 0 {
		return b
	}
	return runtime.GOMAXPROCS(0)
}

// reserveTrialWorker admits one extra trial goroutine if the budget has
// room beyond the already-busy workers and the (uncharged) caller.
func reserveTrialWorker() bool {
	for {
		cur := busyWorkers.Load()
		if int(cur) >= workerBudget()-1 {
			return false
		}
		if busyWorkers.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// ParallelTrials runs n independent Monte-Carlo trials, fanning them across
// a bounded set of goroutines. Trial i receives its own generator seeded
// rand.NewSource(seed+i), so the work done by a trial is independent of how
// trials are interleaved: callers that write trial results into an
// index-addressed slice and aggregate after ParallelTrials returns produce
// byte-identical output at any worker count.
//
// The calling goroutine always executes trials itself; extra workers join
// only while the shared budget (SetTrialWorkers) has headroom over the
// experiments and trials already in flight, so trial fan-out nested inside
// a busy Runner degrades gracefully to inline execution instead of
// multiplying the pools.
//
// A panic inside fn is captured and re-raised on the calling goroutine after
// the remaining workers drain, preserving the panic-on-error convention of
// the experiment bodies.
func ParallelTrials(seed int64, n int, fn func(trial int, rng *rand.Rand)) {
	if n <= 0 {
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	runTrial := func(i int) {
		defer func() {
			if p := recover(); p != nil {
				panicMu.Lock()
				if panicVal == nil {
					panicVal = p
				}
				panicMu.Unlock()
				next.Store(int64(n)) // stop handing out further trials
			}
		}()
		fn(i, rand.New(rand.NewSource(seed+int64(i))))
	}
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			runTrial(i)
		}
	}
	for extras := 0; extras < n-1 && reserveTrialWorker(); extras++ {
		wg.Add(1)
		go func() {
			defer busyWorkers.Add(-1)
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
