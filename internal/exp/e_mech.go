package exp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/mechanism"
	"repro/internal/models"
	"repro/internal/valuation"
)

// E9 — Section 5. The Lavi–Swamy mechanism built on the rounding algorithm:
// the LP optimum scaled by 1/α decomposes into a distribution over feasible
// allocations (checked: Σλ = 1, marginals = x*/α, expected welfare = b*/α),
// payments are scaled fractional VCG, and no unilateral misreport from a
// test battery improves a bidder's expected utility.
func E9(quick bool) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Lavi–Swamy mechanism: decomposition + truthfulness",
		Claim:  "Σλ=1, marginals = x*/α, E[welfare] = b*/α; truthful in expectation (no profitable misreport)",
		Header: []string{"n", "k", "decomp err", "E[welfare]·α/b*", "min E[utility]", "best deviation gain"},
	}
	cfgs := [][2]int{{6, 2}, {8, 2}}
	if quick {
		cfgs = cfgs[:1]
	}
	for _, c := range cfgs {
		n, k := c[0], c[1]
		rng := rand.New(rand.NewSource(int64(n)))
		conf := models.Disk(randPoints(rng, n), randRadii(rng, n))
		bidders := make([]valuation.Valuation, n)
		for i := range bidders {
			bidders[i] = valuation.RandomAdditive(rng, k, 1, 10)
		}
		in, err := auction.NewInstance(conf, k, bidders)
		if err != nil {
			panic(err)
		}
		out, err := mechanism.Run(in)
		if err != nil {
			panic(err)
		}
		// Welfare identity.
		welfareID := out.ExpectedWelfare * out.Alpha / out.LP.Value

		// Individual rationality: expected value − payment ≥ 0.
		minUtil := math.Inf(1)
		for v := 0; v < n; v++ {
			u := out.ExpectedValue(v, bidders[v]) - out.Payments[v]
			if u < minUtil {
				minUtil = u
			}
		}

		// Truthfulness: bidder 0 tries a battery of misreports; expected
		// utility (with its true valuation) must not improve.
		truthUtil := out.ExpectedValue(0, bidders[0]) - out.Payments[0]
		bestGain := 0.0
		for _, mis := range misreports(rng, bidders[0].(*valuation.Additive), k) {
			reported := make([]valuation.Valuation, n)
			copy(reported, bidders)
			reported[0] = mis
			in2 := in.WithBidders(reported)
			out2, err := mechanism.Run(in2)
			if err != nil {
				panic(err)
			}
			u := out2.ExpectedValue(0, bidders[0]) - out2.Payments[0]
			if gain := u - truthUtil; gain > bestGain {
				bestGain = gain
			}
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			fmt.Sprintf("%.2e", out.DecompositionError), f3(welfareID),
			f3(minUtil), fmt.Sprintf("%.2e", bestGain))
	}
	t.Notes = append(t.Notes,
		"deviation gains at numerical-noise level confirm truthfulness in expectation",
		"E[welfare]·α/b* = 1 confirms the decomposition hits the scaled optimum exactly")
	return t
}

// misreports builds a battery of alternative additive reports around a true
// additive valuation: scalings, zero, exaggeration of the best channel, and
// random reshuffles.
func misreports(rng *rand.Rand, truth *valuation.Additive, k int) []valuation.Valuation {
	var out []valuation.Valuation
	scale := func(f float64) valuation.Valuation {
		v := make([]float64, k)
		for j := range v {
			v[j] = truth.V[j] * f
		}
		return valuation.NewAdditive(v)
	}
	out = append(out, scale(0.5), scale(2), scale(0.1), scale(10))
	zero := make([]float64, k)
	out = append(out, valuation.NewAdditive(zero))
	perm := rng.Perm(k)
	shuf := make([]float64, k)
	for j := range shuf {
		shuf[j] = truth.V[perm[j]]
	}
	out = append(out, valuation.NewAdditive(shuf))
	return out
}

// diskConf draws a small disk-graph conflict structure.
func diskConf(rng *rand.Rand, n int) *models.Conflict {
	return models.Disk(randPoints(rng, n), randRadii(rng, n))
}

// randPoints and randRadii draw a small disk-graph deployment.
func randPoints(rng *rand.Rand, n int) []geom.Point {
	return geom.UniformPoints(rng, n, 60)
}

func randRadii(rng *rand.Rand, n int) []float64 {
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = 3 + rng.Float64()*6
	}
	return radii
}
