// Package exp contains the experiment harness: one runner per experiment of
// EXPERIMENTS.md (E1–E11), each regenerating the table that checks a claim
// of the paper. The paper is pure theory — it has no empirical tables — so
// the "tables" reproduced here are its quantitative claims: approximation
// ratios against proven bounds, measured inductive independence against the
// per-model bounds, iteration counts, decomposition and truthfulness checks.
package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/valuation"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Claim  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored Markdown, for pasting into
// EXPERIMENTS.md.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "**Claim:** %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Experiment couples an experiment id with its runner. quick=true shrinks
// the workload for benchmarks and CI.
type Experiment struct {
	ID    string
	Title string
	Run   func(quick bool) *Table
}

// All lists the experiments in EXPERIMENTS.md order.
var All = []Experiment{
	{"E1", "Theorem 3: unweighted rounding vs 8√kρ", E1},
	{"E2", "Lemmas 7+8: weighted rounding and Algorithm 3", E2},
	{"E3", "Proposition 9: disk graphs have ρ ≤ 5", E3},
	{"E4", "Proposition 13: protocol-model ρ bound", E4},
	{"E5", "Proposition 15: physical model ρ = O(log n)", E5},
	{"E6", "Theorem 17: power control end to end", E6},
	{"E7", "ρ-based LP vs edge LP and greedy baselines", E7},
	{"E8", "Theorem 18: asymmetric channels", E8},
	{"E9", "Section 5: Lavi–Swamy mechanism", E9},
	{"E10", "Theorems 5/6: hardness-regime behaviour", E10},
	{"E11", "Integrality gap vs exact optimum", E11},
	{"E12", "Section 4 model zoo: ρ across all binary models", E12},
	{"E13", "Scheduling view: channel minimization along π", E13},
	{"E14", "Systems view: runtime and LP size scaling", E14},
	{"E15", "Application: multi-epoch market simulation", E15},
	{"E16", "Mechanism revenue vs expected welfare", E16},
	{"E17", "Online broker vs from-scratch re-solves", E17},
	{"E18", "Cross-model online broker welfare", E18},
	{"E19", "Durable broker: journal length vs recovery time", E19},
	{"E20", "Scenario workloads: mobility, flash crowds, diurnal waves, leases", E20},
	{"A1", "Ablation: certified vs measured ρ in the LP", A1},
	{"A2", "Ablation: rounding samples vs derandomization", A2},
	{"A3", "Ablation: LP rounding vs local-ratio (k=1)", A3},
	{"A4", "Ablation: paper-literal vs final-set conflict resolution", A4},
}

// Find returns the experiment with the given id, or nil.
func Find(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// f2 formats a float with two decimals; f3 with three significant-ish
// decimals.
func f0(x float64) string { return fmt.Sprintf("%.0f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// ratio returns bound/value guarded against division by zero.
func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// protocolInstance builds a protocol-model auction instance with a mixed
// bidder population.
func protocolInstance(seed int64, n, k int, delta float64) *auction.Instance {
	rng := rand.New(rand.NewSource(seed))
	side := 100.0
	links := geom.UniformLinks(rng, n, side, 2, 10)
	conf := models.Protocol(links, delta)
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

// sinrInstance builds a physical-model auction instance with fixed powers.
func sinrInstance(seed int64, n, k int, scheme models.PowerScheme) (*auction.Instance, []geom.Link) {
	rng := rand.New(rand.NewSource(seed))
	links := geom.UniformLinks(rng, n, 200, 1, 8)
	conf := models.Physical(links, scheme, models.DefaultSINR())
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in, links
}

// diskInstance builds a disk-graph auction instance.
func diskInstance(seed int64, n, k int) *auction.Instance {
	rng := rand.New(rand.NewSource(seed))
	centers := geom.UniformPoints(rng, n, 100)
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = 2 + rng.Float64()*8
	}
	conf := models.Disk(centers, radii)
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := auction.NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}
