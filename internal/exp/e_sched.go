package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/sched"
	"repro/internal/stats"
)

// E13 — the scheduling view (related work, Section 1.2). Channel
// minimization: how many channels does first-fit along the certifying
// ordering π need to serve *all* users? Because backward conflicts are
// structurally bounded by the inductive-independence machinery, the count
// stays near the trivial lower bound ⌈n/α⌉ on every wireless model, far
// from the worst case n.
func E13(quick bool) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "channel minimization by first-fit along π",
		Claim:  "first-fit along the certifying ordering serves all users with few channels (near ⌈n/α⌉, ≪ n)",
		Header: []string{"model", "n", "channels used (mean ± CI)", "lower bound ⌈n/α⌉", "n (worst case)"},
	}
	n := 24
	seeds := []int64{1, 2, 3, 4, 5}
	if quick {
		n = 14
		seeds = seeds[:2]
	}
	type builder struct {
		name string
		make func(rng *rand.Rand) *models.Conflict
	}
	builders := []builder{
		{"disk", func(rng *rand.Rand) *models.Conflict {
			centers := geom.UniformPoints(rng, n, 60)
			radii := make([]float64, n)
			for i := range radii {
				radii[i] = 3 + rng.Float64()*6
			}
			return models.Disk(centers, radii)
		}},
		{"protocol", func(rng *rand.Rand) *models.Conflict {
			return models.Protocol(geom.UniformLinks(rng, n, 70, 2, 7), 1)
		}},
		{"physical-uniform", func(rng *rand.Rand) *models.Conflict {
			return models.Physical(geom.UniformLinks(rng, n, 90, 1, 5), models.UniformPower, models.DefaultSINR())
		}},
	}
	for _, b := range builders {
		var used, lower stats.Sample
		for _, seed := range seeds {
			rng := rand.New(rand.NewSource(seed))
			conf := b.make(rng)
			var c *sched.Coloring
			if conf.Binary != nil {
				c = sched.FirstFit(conf.Binary, conf.Pi)
				if err := sched.Verify(conf.Binary, c); err != nil {
					panic(err)
				}
				lower.Add(float64(sched.LowerBound(conf.Binary, 26)))
			} else {
				c = sched.FirstFitWeighted(conf.W, conf.Pi)
				if err := sched.VerifyWeighted(conf.W, c); err != nil {
					panic(err)
				}
				lower.Add(1)
			}
			used.Add(float64(c.NumChannels))
		}
		t.AddRow(b.name, fmt.Sprintf("%d", n), used.MeanCI(1),
			fmt.Sprintf("%.1f", lower.Mean()), fmt.Sprintf("%d", n))
	}
	t.Notes = append(t.Notes,
		"weighted models report the trivial lower bound 1 (exact α is NP-hard in the weighted sense)")
	return t
}
