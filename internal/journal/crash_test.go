package journal

// The crash-injection suite. A reference broker lives through a churn trace
// untouched; a journaled broker replays the identical mutation steps and is
// killed at injected fault points (torn record, lost unsynced record, torn
// snapshot temp file, interrupted truncate), restored from disk, and must —
// at the restored epoch and at every epoch after — serve exactly the
// allocation, prices, statuses, welfare, and epoch number the reference
// broker had. The matrix runs every fault point against every interference
// backend; a composed trial chains all four faults through one run.

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/broker"
	"repro/internal/geom"
	"repro/internal/market"
	"repro/internal/valuation"
	"repro/pkg/spectrum"
)

// testFactory builds identically-configured brokers for the trial and every
// restore of it.
func testFactory(t testing.TB, name string, prices bool) func() (*broker.Broker, error) {
	t.Helper()
	return func() (*broker.Broker, error) {
		m, err := broker.ModelByName(name, 1)
		if err != nil {
			return nil, err
		}
		return broker.New(broker.Config{K: 3, Model: m, Prices: prices})
	}
}

// crashTrace draws a churn workload sized for the backend (distance-2
// squares disk components, so it gets a sparser market).
func crashTrace(name string, seed int64, epochs int) *market.Trace {
	cfg := market.TraceConfig{
		Seed:         seed,
		Epochs:       epochs,
		K:            3,
		Side:         150,
		ArrivalRate:  3,
		MeanLifetime: 4,
		MaxUsers:     14,
		Model:        name,
		// Primary-user masking streams valuation updates, so journaled
		// epochs carry update ops too.
		PrimaryUsers:  2,
		PrimaryRadius: 45,
		PrimaryActive: 0.5,
	}
	if name == "distance2" {
		cfg.ArrivalRate, cfg.MaxUsers = 2, 10
	}
	return market.GenTrace(cfg)
}

// moveBid draws fresh geometry for the named backend from a small, dense
// area, to exercise journaled move ops.
func moveBid(rng *rand.Rand, name string) spectrum.Bid {
	p := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
	r := 1 + rng.Float64()*5
	switch name {
	case "protocol", "ieee80211":
		th := rng.Float64() * 2 * math.Pi
		q := geom.Point{X: p.X + r*math.Cos(th), Y: p.Y + r*math.Sin(th)}
		return spectrum.Bid{Link: &geom.Link{Sender: p, Receiver: q}}
	}
	return spectrum.Bid{Pos: p, Radius: r}
}

// traceStep is one recorded mutation step: the ops exactly as the journaled
// run must apply them (submit ops carry no id — the broker assigns) plus the
// ids the reference run's submits were assigned, keyed by op index.
type traceStep struct {
	ops       []spectrum.Op
	submitIDs map[int]spectrum.BidderID
}

// refEntry is one bidder's committed state in the reference run.
type refEntry struct {
	bundle valuation.Bundle
	active bool
	price  float64
}

// epochRef is the reference broker's full committed state after one epoch.
type epochRef struct {
	epoch   int
	welfare float64
	bidders map[spectrum.BidderID]refEntry
}

// recordReference runs the standard churn trace through a plain in-memory
// broker and records every step's resolved ops and every epoch's committed
// state.
func recordReference(t *testing.T, name string, prices bool, seed int64, epochs int) ([]traceStep, []epochRef) {
	t.Helper()
	return recordTraceReference(t, name, prices, crashTrace(name, seed, epochs))
}

// recordTraceReference is recordReference over an arbitrary trace (the lease
// crash suite feeds broker-expired workloads through the same recorder).
func recordTraceReference(t *testing.T, name string, prices bool, tr *market.Trace) ([]traceStep, []epochRef) {
	t.Helper()
	b, err := testFactory(t, name, prices)()
	if err != nil {
		t.Fatal(err)
	}
	r := market.NewOpsReplayer(tr, true)
	moveRng := rand.New(rand.NewSource(tr.Config.Seed * 7))
	var steps []traceStep
	var refs []epochRef
	var issued []spectrum.BidderID
	for {
		ops, more, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		// Every third step, relocate the lowest live bidder, so move ops are
		// journaled and replayed alongside everything else.
		if live := r.Live(); more && len(steps)%3 == 2 && len(live) > 0 {
			lowest := -1
			for tid := range live {
				if lowest == -1 || tid < lowest {
					lowest = tid
				}
			}
			mb := moveBid(moveRng, name)
			ops = append(ops, spectrum.Op{Op: spectrum.OpMove, ID: live[lowest], Bid: &mb})
		}
		results, _ := b.Batch(ops)
		if err := r.Observe(results); err != nil {
			t.Fatal(err)
		}
		st := traceStep{ops: ops, submitIDs: map[int]spectrum.BidderID{}}
		for i, op := range ops {
			if op.Op == spectrum.OpSubmit {
				st.submitIDs[i] = results[i].ID
				issued = append(issued, results[i].ID)
			}
		}
		steps = append(steps, st)
		rep := b.Tick()
		if rep.Epoch != len(steps) {
			t.Fatalf("reference tick committed epoch %d at step %d", rep.Epoch, len(steps))
		}
		ref := epochRef{epoch: rep.Epoch, welfare: rep.Welfare, bidders: map[spectrum.BidderID]refEntry{}}
		for _, id := range issued {
			bundle, status := b.Allocation(id)
			e := refEntry{bundle: bundle, active: status == spectrum.StatusActive}
			if prices {
				e.price, _ = b.Price(id)
			}
			ref.bidders[id] = e
		}
		refs = append(refs, ref)
		if !more {
			break
		}
	}
	return steps, refs
}

// applyStep feeds one recorded step to a broker and asserts the submit ids
// come out exactly as the reference run's did (id-assignment determinism
// across restores is part of the durability contract).
func applyStep(t *testing.T, b *broker.Broker, st traceStep) {
	t.Helper()
	results, _ := b.Batch(st.ops)
	if len(results) != len(st.ops) {
		t.Fatalf("batch returned %d results for %d ops", len(results), len(st.ops))
	}
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("replayed op %d rejected (%d): %s", i, r.Code, r.Error)
		}
		if want, ok := st.submitIDs[i]; ok && r.ID != want {
			t.Fatalf("submit op %d assigned id %d, reference run got %d", i, r.ID, want)
		}
	}
}

// verifyEpoch asserts a broker's committed state equals the reference
// epoch's: epoch number, welfare, and per bidder the allocation, liveness,
// and (when priced) the payment. A bidder retired before the restored
// snapshot is unknown to the restored broker; gone and unknown both count as
// "not in the market".
func verifyEpoch(t *testing.T, label string, b *broker.Broker, ref epochRef, prices bool) {
	t.Helper()
	if got := b.Epoch(); got != ref.epoch {
		t.Fatalf("%s: at epoch %d, reference at %d", label, got, ref.epoch)
	}
	if w := b.Metrics().Last.Welfare; math.Abs(w-ref.welfare) > 1e-9*(1+math.Abs(ref.welfare)) {
		t.Fatalf("%s epoch %d: welfare %g, reference %g", label, ref.epoch, w, ref.welfare)
	}
	for id, want := range ref.bidders {
		bundle, status := b.Allocation(id)
		active := status == spectrum.StatusActive
		if active != want.active {
			t.Fatalf("%s epoch %d: bidder %d status %s, reference active=%v", label, ref.epoch, id, status, want.active)
		}
		if bundle != want.bundle {
			t.Fatalf("%s epoch %d: bidder %d allocated %v, reference %v", label, ref.epoch, id, bundle, want.bundle)
		}
		if prices {
			p, _ := b.Price(id)
			if math.Abs(p-want.price) > 1e-9*(1+math.Abs(want.price)) {
				t.Fatalf("%s epoch %d: bidder %d priced %g, reference %g", label, ref.epoch, id, p, want.price)
			}
		}
	}
}

// kill is one scheduled crash: fire the nth time the writer reaches point.
type kill struct {
	point FaultPoint
	nth   int
}

func (k *kill) fn() FaultFn {
	n := k.nth
	return func(p FaultPoint) bool {
		if p != k.point {
			return false
		}
		n--
		return n == 0
	}
}

// lostEpochs reports how many epochs a crash at the fault point loses under
// SyncAlways: the torn and never-synced record shapes lose the epoch being
// committed; the snapshot-path shapes crash after the record is durable.
func lostEpochs(p FaultPoint) int {
	if p == FaultPartialRecord || p == FaultBeforeSync {
		return 1
	}
	return 0
}

// runCrashTrial replays the recorded steps through a journaled broker,
// crashing per the kill schedule, restoring after each crash, and verifying
// the restored broker against the reference at the restored epoch and every
// epoch after. strict enables the exact per-fault lost-epoch assertion
// (valid under SyncAlways with one kill armed at a time).
func runCrashTrial(t *testing.T, name string, prices bool, steps []traceStep, refs []epochRef, opts Options, kills []kill, strict bool) {
	t.Helper()
	dir := t.TempDir()
	factory := testFactory(t, name, prices)
	killIdx := 0
	open := func() (*broker.Broker, *Writer, *Recovery) {
		o := opts
		if killIdx < len(kills) {
			o.Fault = kills[killIdx].fn()
		}
		b, w, rec, err := Open(dir, factory, o)
		if err != nil {
			t.Fatalf("open after %d kills: %v", killIdx, err)
		}
		return b, w, rec
	}
	b, w, _ := open()
	restores := 0
	for s := 0; s < len(steps); {
		applyStep(t, b, steps[s])
		rep := b.Tick()
		if rep.Epoch != s+1 {
			t.Fatalf("tick at step %d committed epoch %d", s, rep.Epoch)
		}
		if werr := w.Err(); werr != nil {
			if !errors.Is(werr, ErrCrashed) {
				t.Fatalf("writer failed outside the injected fault: %v", werr)
			}
			fired := kills[killIdx]
			killIdx++
			restores++
			var rec *Recovery
			b, w, rec = open()
			if rec.Epoch != s && rec.Epoch != s+1 {
				t.Fatalf("%v crash at step %d restored epoch %d", fired.point, s, rec.Epoch)
			}
			if strict {
				if want := s + 1 - lostEpochs(fired.point); rec.Epoch != want {
					t.Fatalf("%v crash during epoch %d commit restored epoch %d, want %d",
						fired.point, s+1, rec.Epoch, want)
				}
				checkCrashDebris(t, fired.point, rec)
			}
			if rec.Epoch > 0 {
				if re, ok := b.RecoveredEpoch(); !ok || re != rec.Epoch {
					t.Fatalf("restored broker reports recovered epoch %d,%v, recovery said %d", re, ok, rec.Epoch)
				}
				verifyEpoch(t, "restored", b, refs[rec.Epoch-1], prices)
			}
			s = rec.Epoch
			continue
		}
		verifyEpoch(t, "journaled", b, refs[s], prices)
		s++
	}
	if killIdx != len(kills) {
		t.Fatalf("only %d of %d scheduled crashes fired", killIdx, len(kills))
	}
	if err := w.Err(); err != nil {
		t.Fatalf("writer failed after the last restore: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// One final restore from the closed files: the full trace must come back.
	rb, rec, err := Recover(dir, factory)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != len(steps) {
		t.Fatalf("final restore at epoch %d, trace committed %d", rec.Epoch, len(steps))
	}
	verifyEpoch(t, "final restore", rb, refs[len(refs)-1], prices)
	if restores == 0 && len(kills) > 0 {
		t.Fatal("no restore ever happened")
	}
}

// checkCrashDebris asserts the restore saw the on-disk shape its fault point
// leaves behind.
func checkCrashDebris(t *testing.T, p FaultPoint, rec *Recovery) {
	t.Helper()
	switch p {
	case FaultPartialRecord:
		if rec.TornBytes == 0 {
			t.Fatal("partial-record crash left no torn tail")
		}
	case FaultBeforeSync:
		if rec.TornBytes != 0 {
			t.Fatalf("before-sync crash left a torn tail of %d bytes", rec.TornBytes)
		}
	case FaultMidSnapshot, FaultMidTruncate:
		if len(rec.Orphans) == 0 {
			t.Fatalf("%v crash left no orphans for restore to clean", p)
		}
	}
}

// TestCrashRestoreMatrix is the acceptance matrix: for every interference
// backend and every fault point, a kill mid-trace restores to a broker whose
// allocation, prices, statuses, welfare, and epoch are identical to the
// never-killed reference, and the rest of the trace replays identically.
func TestCrashRestoreMatrix(t *testing.T) {
	const epochs = 10
	for _, name := range broker.ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			steps, refs := recordReference(t, name, true, 97, epochs)
			for _, k := range []kill{
				// Epoch-5 commit crashes (record-path faults)...
				{FaultPartialRecord, 5},
				{FaultBeforeSync, 5},
				// ...and the second snapshot cycle (epoch 6 with
				// SnapshotEvery 3) for the snapshot-path faults.
				{FaultMidSnapshot, 2},
				{FaultMidTruncate, 2},
			} {
				k := k
				t.Run(k.point.String(), func(t *testing.T) {
					runCrashTrial(t, name, true, steps, refs,
						Options{Sync: SyncAlways, SnapshotEvery: 3}, []kill{k}, true)
				})
			}
		})
	}
}

// TestCrashRestoreChained kills one journaled broker four times in a single
// run — once per fault point, each crash landing on the state a previous
// restore rebuilt — with prices on, so recovery composes: a restore must be
// a full-fidelity base for the next crash.
func TestCrashRestoreChained(t *testing.T) {
	const epochs = 12
	steps, refs := recordReference(t, "disk", true, 131, epochs)
	kills := []kill{
		{FaultPartialRecord, 2},
		{FaultBeforeSync, 2},
		{FaultMidSnapshot, 1},
		{FaultMidTruncate, 1},
	}
	runCrashTrial(t, "disk", true, steps, refs,
		Options{Sync: SyncAlways, SnapshotEvery: 3}, kills, false)
}

// TestCrashRestoreSyncPolicies runs a record-path crash under the interval
// and none sync policies: the writer still fails sticky, and the restored
// epoch may trail the crash epoch (unsynced records) but never precede the
// last completed snapshot, and whatever epoch comes back must be
// reference-identical. The generic R∈{s,s+1} bound does not hold without
// per-commit fsync, so the trial only asserts fidelity of what was restored.
func TestCrashRestoreSyncPolicies(t *testing.T) {
	const epochs = 8
	steps, refs := recordReference(t, "disk", false, 53, epochs)
	for _, pol := range []SyncPolicy{SyncEvery, SyncNone} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			factory := testFactory(t, "disk", false)
			k := kill{FaultPartialRecord, 5}
			b, w, _, err := Open(dir, factory, Options{Sync: pol, SnapshotEvery: 3, Fault: k.fn()})
			if err != nil {
				t.Fatal(err)
			}
			s := 0
			for ; s < len(steps); s++ {
				applyStep(t, b, steps[s])
				b.Tick()
				if w.Err() != nil {
					break
				}
			}
			if !errors.Is(w.Err(), ErrCrashed) {
				t.Fatalf("fault never fired: %v", w.Err())
			}
			rb, rec, err := Recover(dir, factory)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Epoch > s+1 || rec.Epoch < rec.SnapshotEpoch {
				t.Fatalf("restored epoch %d after crash at epoch %d (snapshot %d)", rec.Epoch, s+1, rec.SnapshotEpoch)
			}
			if rec.Epoch > 0 {
				verifyEpoch(t, pol.String(), rb, refs[rec.Epoch-1], false)
			}
		})
	}
}
