package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/broker"
)

// SyncPolicy says when the journal fsyncs.
type SyncPolicy int

// Sync policies.
const (
	// SyncAlways fsyncs after every committed epoch: a crash loses nothing
	// that was acknowledged by a tick. The default.
	SyncAlways SyncPolicy = iota
	// SyncEvery fsyncs at most once per Options.SyncInterval; a crash may
	// lose the epochs committed inside the last unsynced window.
	SyncEvery
	// SyncNone never fsyncs on the commit path (the OS flushes when it
	// pleases); snapshots are still written atomically and synced.
	SyncNone
)

// String names the policy as the -sync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEvery:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -sync flag values "always", "interval", "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncEvery, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("journal: unknown sync policy %q (want always, interval, or none)", s)
}

// FaultPoint names a crash-injection site inside the writer. The
// crash-injection suite drives these; production passes no FaultFn and
// never reaches them.
type FaultPoint int

// Fault points, in commit-path order.
const (
	// FaultPartialRecord crashes after half of a record's bytes reached the
	// file: the restart sees a torn tail.
	FaultPartialRecord FaultPoint = iota
	// FaultBeforeSync crashes after the record was fully written but before
	// any fsync, modeled as the record never reaching the disk (the kernel
	// page cache of a killed machine): the restart is one epoch behind.
	FaultBeforeSync
	// FaultMidSnapshot crashes after half the snapshot temp file: the
	// restart sees a stray *.tmp and an intact previous generation.
	FaultMidSnapshot
	// FaultMidTruncate crashes after the new snapshot and its empty journal
	// are durable but before the old generation is deleted: the restart
	// must pick the newest snapshot and clean the orphans.
	FaultMidTruncate
)

// String implements fmt.Stringer.
func (p FaultPoint) String() string {
	switch p {
	case FaultPartialRecord:
		return "partial-record"
	case FaultBeforeSync:
		return "before-sync"
	case FaultMidSnapshot:
		return "mid-snapshot"
	case FaultMidTruncate:
		return "mid-truncate"
	}
	return fmt.Sprintf("FaultPoint(%d)", int(p))
}

// FaultFn decides whether to crash at a fault point. Returning true halts
// the writer permanently (every later call returns ErrCrashed), leaving the
// files exactly as a kill at that instant would.
type FaultFn func(FaultPoint) bool

// ErrCrashed is the sticky error of a writer halted by an injected fault.
var ErrCrashed = errors.New("journal: halted by injected fault")

// Options configures a journal writer.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the SyncEvery window (default 100ms).
	SyncInterval time.Duration
	// SnapshotEvery takes a full snapshot and truncates the log every this
	// many epochs (default 512; negative disables snapshots entirely).
	SnapshotEvery int
	// Fault is the crash-injection hook (tests only).
	Fault FaultFn
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 512
	}
	return o
}

// Stats are the writer's lifetime counters, served under /v1/metrics.
type Stats struct {
	// BaseEpoch is the current journal file's base (its snapshot's epoch).
	BaseEpoch int `json:"base_epoch"`
	// LastEpoch is the newest journaled epoch.
	LastEpoch int `json:"last_epoch"`
	// Records and Bytes count appended records (lifetime, across truncations).
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	// Syncs counts fsyncs of the journal file.
	Syncs int64 `json:"syncs"`
	// Snapshots and Truncations count completed snapshot+truncate cycles.
	Snapshots   int64 `json:"snapshots"`
	Truncations int64 `json:"truncations"`
	// Errors counts commits refused because the writer is failed.
	Errors int64 `json:"errors"`
}

// Writer appends committed epochs to the journal and rotates it through
// snapshots. Commit is the broker's commit hook; all methods are safe for
// concurrent use. A Writer that hits an I/O error (or an injected fault)
// fails sticky: every later Commit returns the same error, the broker keeps
// serving from memory, and Metrics.JournalErrors counts the misses.
type Writer struct {
	mu   sync.Mutex
	dir  string
	opts Options
	src  *broker.Broker

	f         *os.File
	base      int   // base epoch of the open journal file
	off       int64 // bytes of valid records written (incl. header)
	lastEpoch int   // newest journaled epoch
	unsynced  bool
	lastSync  time.Time

	err   error // sticky failure
	stats Stats
}

// Err returns the writer's sticky failure, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats returns a copy of the lifetime counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.stats
	s.BaseEpoch, s.LastEpoch = w.base, w.lastEpoch
	return s
}

// fail records the first failure; the writer is unusable afterwards.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = err
		if w.f != nil {
			w.f.Close() // release the handle; no sync — the state is suspect
			w.f = nil
		}
	}
	return w.err
}

// crash realizes an injected fault: close the handle without syncing and
// fail sticky, leaving the files exactly as the kill would.
func (w *Writer) crash() error {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.err = ErrCrashed
	return w.err
}

// fault asks the injection hook whether to crash at p.
func (w *Writer) fault(p FaultPoint) bool {
	return w.opts.Fault != nil && w.opts.Fault(p)
}

// Commit journals one committed epoch. It is installed as the broker's
// commit hook, so it runs synchronously inside the tick, serialized with
// every other tick; epochs arrive strictly in order and gap-free.
func (w *Writer) Commit(rec broker.CommitRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		w.stats.Errors++
		return w.err
	}
	if rec.Epoch != w.lastEpoch+1 {
		w.stats.Errors++
		return w.fail(fmt.Errorf("journal: commit of epoch %d after epoch %d", rec.Epoch, w.lastEpoch))
	}
	frame, err := appendRecord(nil, Record{Epoch: rec.Epoch, NextID: rec.NextID, Ops: rec.Ops})
	if err != nil {
		w.stats.Errors++
		return w.fail(err)
	}
	if w.fault(FaultPartialRecord) {
		w.f.Write(frame[:len(frame)/2])
		return w.crash()
	}
	if _, err := w.f.Write(frame); err != nil {
		w.stats.Errors++
		return w.fail(fmt.Errorf("journal: append epoch %d: %w", rec.Epoch, err))
	}
	if w.fault(FaultBeforeSync) {
		// Model "the bytes never left the page cache": on a real power cut
		// an unsynced record simply is not there after reboot. In-process we
		// share the page cache with the restarted broker, so realize the
		// loss by truncating the record back off.
		w.f.Truncate(w.off)
		return w.crash()
	}
	w.off += int64(len(frame))
	w.lastEpoch = rec.Epoch
	w.unsynced = true
	w.stats.Records++
	w.stats.Bytes += int64(len(frame))
	if err := w.maybeSync(); err != nil {
		return err
	}
	if w.opts.SnapshotEvery > 0 && rec.Epoch-w.base >= w.opts.SnapshotEvery {
		return w.snapshotLocked(rec.Epoch, rec.NextID)
	}
	return nil
}

// maybeSync applies the sync policy after an append. Caller holds mu.
func (w *Writer) maybeSync() error {
	switch w.opts.Sync {
	case SyncAlways:
	case SyncEvery:
		if time.Since(w.lastSync) < w.opts.SyncInterval {
			return nil
		}
	case SyncNone:
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.stats.Errors++
		return w.fail(fmt.Errorf("journal: fsync: %w", err))
	}
	w.unsynced = false
	w.lastSync = time.Now()
	w.stats.Syncs++
	return nil
}

// Sync forces an fsync of the journal file.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(fmt.Errorf("journal: fsync: %w", err))
	}
	w.unsynced = false
	w.lastSync = time.Now()
	w.stats.Syncs++
	return nil
}

// SnapshotNow takes a full snapshot and truncates the journal, regardless
// of SnapshotEvery. The caller must have quiesced ticking (brokerd calls it
// on clean shutdown after stopping the ticker), so the broker's committed
// state is exactly the last journaled epoch.
func (w *Writer) SnapshotNow() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.lastEpoch <= w.base {
		return nil // nothing newer than the standing snapshot
	}
	return w.snapshotLocked(w.lastEpoch, 0)
}

// snapshotLocked writes the snapshot for epoch atomically, opens the next
// journal generation, and deletes the old one. nextID pins the snapshot's
// id high-water mark; 0 means "use the broker's live value" (SnapshotNow,
// where ticking is quiesced). Caller holds mu.
//
// Durability order: tmp write → tmp fsync → rename → dir fsync → new
// journal (header, fsync, dir fsync) → delete old files. Every crash point
// leaves either the old generation intact or the new one complete enough
// to restore from; restore prefers the newest parseable snapshot and
// treats a missing journal file as an empty tail.
func (w *Writer) snapshotLocked(epoch int, nextID broker.BidderID) error {
	st := w.src.SeedState()
	if st.Epoch != epoch {
		w.stats.Errors++
		return w.fail(fmt.Errorf("journal: snapshot at epoch %d but broker committed %d", epoch, st.Epoch))
	}
	if nextID > 0 {
		st.NextID = nextID
	}
	snap := Snapshot{
		FormatVersion: SnapshotVersion,
		Model:         st.Model,
		K:             st.K,
		Epoch:         epoch,
		NextID:        st.NextID,
		Bidders:       st.Bidders,
		Instance:      st.Instance,
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		w.stats.Errors++
		return w.fail(fmt.Errorf("journal: encode snapshot: %w", err))
	}

	// The journal must be on disk through this epoch before the snapshot
	// can claim it: a synced snapshot over an unsynced journal could
	// otherwise survive a crash its own base epoch did not.
	if w.unsynced && w.opts.Sync != SyncAlways {
		if err := w.f.Sync(); err != nil {
			w.stats.Errors++
			return w.fail(fmt.Errorf("journal: fsync before snapshot: %w", err))
		}
		w.unsynced = false
		w.stats.Syncs++
	}

	final := snapshotPath(w.dir, epoch)
	tmp := final + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		w.stats.Errors++
		return w.fail(fmt.Errorf("journal: create snapshot: %w", err))
	}
	if w.fault(FaultMidSnapshot) {
		tf.Write(data[:len(data)/2])
		tf.Close()
		return w.crash()
	}
	if _, err := tf.Write(data); err == nil {
		err = tf.Sync()
	}
	if err != nil {
		tf.Close()
		w.stats.Errors++
		return w.fail(fmt.Errorf("journal: write snapshot: %w", err))
	}
	if err := tf.Close(); err != nil {
		w.stats.Errors++
		return w.fail(fmt.Errorf("journal: close snapshot: %w", err))
	}
	if err := os.Rename(tmp, final); err != nil {
		w.stats.Errors++
		return w.fail(fmt.Errorf("journal: publish snapshot: %w", err))
	}
	if err := syncDir(w.dir); err != nil {
		w.stats.Errors++
		return w.fail(err)
	}

	// Open the next journal generation.
	nf, err := createLog(w.dir, epoch)
	if err != nil {
		w.stats.Errors++
		return w.fail(err)
	}
	oldBase := w.base
	old := w.f
	if w.fault(FaultMidTruncate) {
		nf.Close()
		return w.crash()
	}
	old.Close()
	w.f, w.base, w.off, w.lastEpoch = nf, epoch, headerSize, epoch
	w.unsynced = false
	w.stats.Snapshots++

	// Retire the previous generation. Failures here are not fatal: the
	// restore path ignores and removes orphans.
	os.Remove(journalPath(w.dir, oldBase))
	if oldBase > 0 {
		os.Remove(snapshotPath(w.dir, oldBase))
	}
	if err := syncDir(w.dir); err != nil {
		w.stats.Errors++
		return w.fail(err)
	}
	w.stats.Truncations++
	return nil
}

// Close fsyncs and closes the journal. It does not snapshot; see
// SnapshotNow for the clean-shutdown path.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	w.err = errors.New("journal: writer closed")
	return err
}

// Abort closes the journal's file handle without syncing and fails the
// writer, releasing resources while leaving the files exactly as a kill
// would. The restart-under-load smoke (cmd/brokerload -kill-after) uses it
// to hard-crash the in-process broker.
func (w *Writer) Abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	w.err = errors.New("journal: writer aborted")
}

// createLog creates (or truncates) the journal file for base and makes its
// header durable.
func createLog(dir string, base int) (*os.File, error) {
	f, err := os.OpenFile(journalPath(dir, base), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create log: %w", err)
	}
	if _, err := f.Write(encodeHeader(base)); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: write log header: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs a directory so renames and creates inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("journal: fsync dir: %w", err)
	}
	return nil
}
