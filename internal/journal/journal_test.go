package journal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"testing"

	"repro/internal/broker"
	"repro/pkg/spectrum"
)

// testImage builds a valid journal file image: header at base plus n
// sequential records carrying a little op payload.
func testImage(t *testing.T, base, n int) []byte {
	t.Helper()
	img := encodeHeader(base)
	for i := 1; i <= n; i++ {
		v := spectrum.Additive([]float64{1, 2, float64(i)})
		rec := Record{
			Epoch:  base + i,
			NextID: spectrum.BidderID(10 + i),
			Ops:    []spectrum.Op{{Op: spectrum.OpUpdate, ID: 3, Values: &v}},
		}
		var err error
		img, err = appendRecord(img, rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	return img
}

// TestDecodeLogTornPrefixes: a crash can only truncate the log, so EVERY
// prefix of a valid image must decode without error — the complete records
// stand, the torn remainder is dropped, and used marks the cut.
func TestDecodeLogTornPrefixes(t *testing.T) {
	img := testImage(t, 7, 3)
	base, recs, used, err := DecodeLog(img)
	if err != nil || base != 7 || len(recs) != 3 || used != int64(len(img)) {
		t.Fatalf("full image: base=%d recs=%d used=%d err=%v", base, len(recs), used, err)
	}
	for i, r := range recs {
		if r.Epoch != 8+i || r.NextID != spectrum.BidderID(11+i) || len(r.Ops) != 1 {
			t.Fatalf("record %d round-tripped as %+v", i, r)
		}
	}
	for cut := 0; cut < len(img); cut++ {
		b, rs, u, err := DecodeLog(img[:cut])
		if err != nil {
			t.Fatalf("prefix of %d bytes errored: %v", cut, err)
		}
		if cut < headerSize {
			if b != -1 || rs != nil || u != 0 {
				t.Fatalf("torn header at %d: base=%d recs=%d used=%d", cut, b, len(rs), u)
			}
			continue
		}
		if b != 7 || u > int64(cut) {
			t.Fatalf("prefix %d: base=%d used=%d", cut, b, u)
		}
		for j, r := range rs {
			if r.Epoch != 8+j {
				t.Fatalf("prefix %d record %d has epoch %d", cut, j, r.Epoch)
			}
		}
	}
}

// TestDecodeLogCorruption: bytes that are all present but wrong are interior
// corruption — a typed *CorruptError under errors.Is(ErrCorrupt), never a
// silent drop, with the valid prefix still returned.
func TestDecodeLogCorruption(t *testing.T) {
	valid := testImage(t, 0, 2)
	flip := func(img []byte, at int) []byte {
		out := append([]byte(nil), img...)
		out[at] ^= 0x40
		return out
	}
	// A frame whose CRC matches a payload that is not JSON.
	badJSON := testImage(t, 0, 1)
	payload := []byte("not json at all")
	var frame [frameSize]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	badJSON = append(badJSON, frame[:]...)
	badJSON = append(badJSON, payload...)
	// A well-formed record carrying the wrong epoch.
	outOfSeq := testImage(t, 0, 1)
	outOfSeq, err := appendRecord(outOfSeq, Record{Epoch: 7, NextID: 1})
	if err != nil {
		t.Fatal(err)
	}
	// An impossible declared length.
	hugeLen := testImage(t, 0, 1)
	binary.LittleEndian.PutUint32(frame[0:], maxRecordBytes+1)
	hugeLen = append(hugeLen, frame[:]...)

	cases := []struct {
		name     string
		img      []byte
		wantRecs int
	}{
		{"bad magic", flip(valid, 0), 0},
		{"bad version", flip(valid, 4), 0},
		{"implausible base", flip(valid, 15), 0},
		{"crc mismatch", flip(valid, headerSize+frameSize+2), 0},
		{"bad json", badJSON, 1},
		{"epoch out of sequence", outOfSeq, 1},
		{"impossible length", hugeLen, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, recs, used, err := DecodeLog(tc.img)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("err %T is not *CorruptError", err)
			}
			if len(recs) != tc.wantRecs {
				t.Fatalf("salvaged %d records, want %d", len(recs), tc.wantRecs)
			}
			if used > int64(len(tc.img)) {
				t.Fatalf("used %d beyond the image", used)
			}
		})
	}
}

// driveSteps applies steps[from:to] to a journaled broker, ticking and
// verifying each epoch against the reference.
func driveSteps(t *testing.T, b *broker.Broker, w *Writer, steps []traceStep, refs []epochRef, from, to int) {
	t.Helper()
	for s := from; s < to; s++ {
		applyStep(t, b, steps[s])
		if rep := b.Tick(); rep.Epoch != s+1 {
			t.Fatalf("step %d committed epoch %d", s, rep.Epoch)
		}
		if err := w.Err(); err != nil {
			t.Fatalf("writer failed at epoch %d: %v", s+1, err)
		}
		verifyEpoch(t, "journaled", b, refs[s], false)
	}
}

// TestOpenFreshReopenContinues: a clean shutdown and reopen resumes the same
// market — restored state reference-identical, journal appended in place,
// ids still assigned identically.
func TestOpenFreshReopenContinues(t *testing.T) {
	steps, refs := recordReference(t, "disk", false, 11, 8)
	dir := t.TempDir()
	factory := testFactory(t, "disk", false)
	opts := Options{Sync: SyncAlways, SnapshotEvery: -1}

	b, w, rec, err := Open(dir, factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 0 || rec.SnapshotEpoch != 0 || rec.Records != 0 {
		t.Fatalf("fresh open recovered %+v", rec)
	}
	if _, ok := b.RecoveredEpoch(); ok {
		t.Fatal("fresh broker claims to be recovered")
	}
	if !b.Durable() {
		t.Fatal("journaled broker not durable")
	}
	driveSteps(t, b, w, steps, refs, 0, 4)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	b, w, rec, err = Open(dir, factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 4 || rec.Records != 4 || rec.SnapshotEpoch != 0 || rec.TornBytes != 0 {
		t.Fatalf("reopen recovered %+v", rec)
	}
	verifyEpoch(t, "reopened", b, refs[3], false)
	driveSteps(t, b, w, steps, refs, 4, len(steps))
	st := w.Stats()
	if st.Records != int64(len(steps)-4) || st.LastEpoch != len(steps) {
		t.Fatalf("writer stats %+v after %d epochs", st, len(steps))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rb, rec, err := Recover(dir, factory)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != len(steps) || rec.Records != len(steps) {
		t.Fatalf("final recover %+v", rec)
	}
	verifyEpoch(t, "final", rb, refs[len(refs)-1], false)
}

// TestTornTailRepairedOnOpen: garbage appended past the last record (the
// shape an OS crash leaves) is measured by Recover and truncated off by
// Open, which then appends cleanly where the valid prefix ended.
func TestTornTailRepairedOnOpen(t *testing.T) {
	steps, refs := recordReference(t, "disk", false, 13, 6)
	dir := t.TempDir()
	factory := testFactory(t, "disk", false)
	opts := Options{Sync: SyncAlways, SnapshotEvery: -1}
	b, w, _, err := Open(dir, factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, b, w, steps, refs, 0, 5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A torn record: a frame declaring 100 payload bytes, then only 10.
	f, err := os.OpenFile(journalPath(dir, 0), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var frame [frameSize]byte
	binary.LittleEndian.PutUint32(frame[0:], 100)
	if _, err := f.Write(append(frame[:], make([]byte, 10)...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, w, rec, err := Open(dir, factory, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornBytes != frameSize+10 || rec.Epoch != 5 {
		t.Fatalf("recovered %+v, want a %d-byte torn tail at epoch 5", rec, frameSize+10)
	}
	verifyEpoch(t, "repaired", b, refs[4], false)
	driveSteps(t, b, w, steps, refs, 5, len(steps))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, rec, err = Recover(dir, factory); err != nil || rec.TornBytes != 0 || rec.Epoch != len(steps) {
		t.Fatalf("post-repair recover %+v err=%v", rec, err)
	}
}

// TestInteriorCorruptionRefusesRestore: a flipped byte inside a committed
// record must fail the restore loudly — recovery never silently drops
// epochs that are physically present.
func TestInteriorCorruptionRefusesRestore(t *testing.T) {
	steps, refs := recordReference(t, "disk", false, 17, 5)
	dir := t.TempDir()
	factory := testFactory(t, "disk", false)
	b, w, _, err := Open(dir, factory, Options{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, b, w, steps, refs, 0, len(steps))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	path := journalPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+frameSize+3] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dir, factory); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recover over corruption: %v, want ErrCorrupt", err)
	}
	if _, _, _, err := Open(dir, factory, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corruption: %v, want ErrCorrupt", err)
	}
}

// TestSnapshotTruncateCycleUnderTraffic: with SnapshotEvery 4 a full trace
// rolls the journal every fourth epoch while mutations keep flowing; only
// the newest generation survives on disk and restores the complete market
// (snapshot plus its journal tail).
func TestSnapshotTruncateCycleUnderTraffic(t *testing.T) {
	steps, refs := recordReference(t, "disk", false, 19, 8)
	n := len(steps)
	wantSnaps := int64(n / 4)
	wantBase := int(wantSnaps) * 4
	if wantSnaps < 2 || n == wantBase {
		t.Fatalf("trace of %d steps does not exercise two cycles plus a tail", n)
	}
	dir := t.TempDir()
	factory := testFactory(t, "disk", false)
	b, w, _, err := Open(dir, factory, Options{Sync: SyncAlways, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, b, w, steps, refs, 0, n)
	st := w.Stats()
	if st.Snapshots != wantSnaps || st.Truncations != wantSnaps || st.BaseEpoch != wantBase {
		t.Fatalf("writer stats %+v, want %d snapshot cycles based at epoch %d", st, wantSnaps, wantBase)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	ds, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.snaps) != 1 || ds.snaps[0] != wantBase || len(ds.journals) != 1 || ds.journals[0] != wantBase || len(ds.tmps) != 0 {
		t.Fatalf("directory after truncation: %+v, want only generation %d", ds, wantBase)
	}
	rb, rec, err := Recover(dir, factory)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotEpoch != wantBase || rec.Records != n-wantBase || rec.Epoch != n {
		t.Fatalf("recover after truncation %+v", rec)
	}
	verifyEpoch(t, "truncated", rb, refs[n-1], false)
}

// TestSnapshotNowOnShutdown: the clean-shutdown snapshot leaves a
// snapshot-only generation (zero tail records) and a second call with
// nothing newer is a no-op.
func TestSnapshotNowOnShutdown(t *testing.T) {
	steps, refs := recordReference(t, "disk", false, 23, 5)
	dir := t.TempDir()
	factory := testFactory(t, "disk", false)
	b, w, _, err := Open(dir, factory, Options{Sync: SyncAlways, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, b, w, steps, refs, 0, len(steps))
	if err := w.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if err := w.SnapshotNow(); err != nil {
		t.Fatal(err) // idempotent: nothing newer than the standing snapshot
	}
	if st := w.Stats(); st.Snapshots != 1 {
		t.Fatalf("stats %+v, want exactly one snapshot", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rb, rec, err := Recover(dir, factory)
	if err != nil {
		t.Fatal(err)
	}
	if rec.SnapshotEpoch != len(steps) || rec.Records != 0 || rec.Epoch != len(steps) {
		t.Fatalf("recover from shutdown snapshot %+v", rec)
	}
	verifyEpoch(t, "shutdown snapshot", rb, refs[len(refs)-1], false)
}

// TestConfigMismatchRefused: a data directory written under one model (or
// channel count) must refuse to restore into a differently-configured
// broker with ErrMismatch, not silently rebuild garbage.
func TestConfigMismatchRefused(t *testing.T) {
	steps, refs := recordReference(t, "disk", false, 29, 4)
	dir := t.TempDir()
	b, w, _, err := Open(dir, testFactory(t, "disk", false), Options{Sync: SyncAlways, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	driveSteps(t, b, w, steps, refs, 0, len(steps))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Recover(dir, testFactory(t, "ieee80211", false)); !errors.Is(err, ErrMismatch) {
		t.Fatalf("recover under the wrong model: %v, want ErrMismatch", err)
	}
	wrongK := func() (*broker.Broker, error) {
		m, err := broker.ModelByName("disk", 1)
		if err != nil {
			return nil, err
		}
		return broker.New(broker.Config{K: 2, Model: m})
	}
	if _, _, err := Recover(dir, wrongK); !errors.Is(err, ErrMismatch) {
		t.Fatalf("recover under the wrong k: %v, want ErrMismatch", err)
	}
}

// TestWriterSequenceGuard: a commit that skips an epoch fails the writer
// sticky, and the broker keeps serving from memory while counting the
// journal misses.
func TestWriterSequenceGuard(t *testing.T) {
	dir := t.TempDir()
	b, w, _, err := Open(dir, testFactory(t, "disk", false), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(broker.CommitRecord{Epoch: 5}); err == nil {
		t.Fatal("out-of-sequence commit accepted")
	}
	if w.Err() == nil {
		t.Fatal("writer not failed sticky")
	}
	if err := w.Commit(broker.CommitRecord{Epoch: 1}); err == nil {
		t.Fatal("commit accepted after sticky failure")
	}
	if rep := b.Tick(); rep.Epoch != 1 {
		t.Fatalf("broker stopped ticking: %+v", rep)
	}
	if m := b.Metrics(); m.JournalErrors == 0 {
		t.Fatal("journal misses not counted")
	}
	if st := w.Stats(); st.Errors == 0 {
		t.Fatal("writer errors not counted")
	}
}

// TestParseSyncPolicy pins the flag spellings.
func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncEvery, SyncNone} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseSyncPolicy("fsync-sometimes"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
