// Package journal is the broker's durability layer: a write-ahead log of
// committed epoch op batches, periodic full-market snapshots with log
// truncation, and a restore path that rebuilds a live Broker from the
// newest valid snapshot plus the journal tail.
//
// # On-disk layout
//
// A data directory holds at most one market:
//
//	snapshot-000000000042.json   full market at epoch 42 (atomic: tmp+rename)
//	journal-000000000042.log     records for epochs 43, 44, ... (one per epoch)
//
// A journal file opens with a 16-byte header — magic "SWAL", format
// version, and the base epoch (which must match the filename) — followed by
// length-prefixed records:
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload
//
// The payload is the JSON Record: the epoch number, the id high-water mark
// at queue-drain time, and the committed ops in queue order (submit ops
// carry their assigned bidder id). Every committed epoch is journaled,
// idle ones included, so record epochs are gap-free: record i of a file
// based at epoch E carries epoch E+i+1.
//
// # Crash semantics
//
// A crash can only truncate the log (records are appended and synced in
// order), so the reader distinguishes two failure shapes: a file that ends
// before a record's declared bytes is a torn tail — dropped cleanly, the
// valid prefix stands — while a record whose bytes are all present but
// whose CRC, JSON, or epoch sequencing is wrong is interior corruption and
// surfaces a *CorruptError (errors.Is ErrCorrupt). FuzzJournalDecode pins
// that DecodeLog never panics on arbitrary bytes.
//
// Snapshots are written to a temp file, synced, and renamed before the old
// snapshot and journal are deleted, so every crash point leaves a
// recoverable prefix: restore scans for the newest parseable snapshot,
// replays its journal (a missing journal file means zero tail records),
// and removes orphans.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/pkg/spectrum"
)

const (
	logMagic   = "SWAL"
	logVersion = 1
	// headerSize is the journal file header: 4 magic + 2 version (LE) +
	// 2 reserved + 8 base epoch (LE).
	headerSize = 16
	// frameSize is the per-record frame: payload length + CRC-32C.
	frameSize = 8
	// maxRecordBytes rejects absurd declared lengths before allocating.
	maxRecordBytes = 64 << 20
)

// castagnoli is the CRC-32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled epoch commit.
type Record struct {
	// Epoch is the committed epoch number.
	Epoch int `json:"epoch"`
	// NextID is the broker's id high-water mark when the epoch's queue was
	// drained; replay pins it so later ids are re-issued identically.
	NextID spectrum.BidderID `json:"next_id"`
	// Ops are the applied mutations in queue order (nil for idle epochs).
	Ops []spectrum.Op `json:"ops,omitempty"`
}

// ErrCorrupt is the category sentinel for interior journal corruption;
// *CorruptError matches it under errors.Is.
var ErrCorrupt = errors.New("journal: corrupt")

// CorruptError reports interior corruption: the bytes are all present but
// do not form a valid record stream.
type CorruptError struct {
	// Path is the offending file ("" when decoding a byte slice).
	Path string
	// Offset is the byte offset of the bad header, frame, or record.
	Offset int64
	// Reason says what failed.
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("journal: corrupt record stream at offset %d: %s", e.Offset, e.Reason)
	}
	return fmt.Sprintf("journal: %s: corrupt at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Is matches the ErrCorrupt sentinel.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// encodeHeader builds a journal file header for the given base epoch.
func encodeHeader(base int) []byte {
	h := make([]byte, headerSize)
	copy(h, logMagic)
	binary.LittleEndian.PutUint16(h[4:], logVersion)
	binary.LittleEndian.PutUint64(h[8:], uint64(base))
	return h
}

// appendRecord appends one framed record to buf.
func appendRecord(buf []byte, rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("journal: record of %d bytes exceeds the %d limit", len(payload), maxRecordBytes)
	}
	var frame [frameSize]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	buf = append(buf, frame[:]...)
	return append(buf, payload...), nil
}

// DecodeLog decodes an entire journal file image. It returns the base epoch
// from the header (-1 when the file ends inside the header — a torn file
// with no usable content), the valid records, and used, the byte offset
// where the valid prefix ends (a torn trailing record leaves used short of
// len(data); callers repair by truncating there).
//
// Torn tails — the file ending inside the header, a frame, or a record's
// declared payload — are not errors: crashes truncate, so a short prefix is
// the expected failure shape and is dropped cleanly. Everything else (bad
// magic, bad version, a header/filename epoch that cannot hold, impossible
// lengths, CRC mismatches, unparseable payloads, out-of-sequence epochs) is
// interior corruption and returns a *CorruptError. DecodeLog never panics,
// whatever the input.
func DecodeLog(data []byte) (base int, recs []Record, used int64, err error) {
	if len(data) < headerSize {
		return -1, nil, 0, nil
	}
	if string(data[:4]) != logMagic {
		return 0, nil, 0, &CorruptError{Offset: 0, Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != logVersion {
		return 0, nil, 0, &CorruptError{Offset: 4, Reason: fmt.Sprintf("unsupported version %d", v)}
	}
	b := binary.LittleEndian.Uint64(data[8:])
	if b > 1<<62 {
		return 0, nil, 0, &CorruptError{Offset: 8, Reason: fmt.Sprintf("implausible base epoch %d", b)}
	}
	base = int(b)
	used = headerSize
	for {
		rest := data[used:]
		if len(rest) < frameSize {
			return base, recs, used, nil // torn frame (or clean EOF)
		}
		n := binary.LittleEndian.Uint32(rest[0:])
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > maxRecordBytes {
			return base, recs, used, &CorruptError{Offset: used, Reason: fmt.Sprintf("impossible record length %d", n)}
		}
		if len(rest) < frameSize+int(n) {
			return base, recs, used, nil // torn payload
		}
		payload := rest[frameSize : frameSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return base, recs, used, &CorruptError{Offset: used, Reason: "CRC mismatch"}
		}
		var rec Record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			return base, recs, used, &CorruptError{Offset: used, Reason: fmt.Sprintf("bad payload: %v", jerr)}
		}
		if want := base + len(recs) + 1; rec.Epoch != want {
			return base, recs, used, &CorruptError{Offset: used, Reason: fmt.Sprintf("epoch %d out of sequence (want %d)", rec.Epoch, want)}
		}
		if rec.NextID < 0 {
			return base, recs, used, &CorruptError{Offset: used, Reason: fmt.Sprintf("negative next id %d", rec.NextID)}
		}
		recs = append(recs, rec)
		used += int64(frameSize) + int64(n)
	}
}
