package journal

import (
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzJournalDecode pins the reader's safety contract on arbitrary bytes:
// DecodeLog never panics, a torn tail is dropped cleanly (no error, used
// marks the valid prefix), and anything else surfaces as a typed
// *CorruptError — with the salvaged record prefix always well-formed.
func FuzzJournalDecode(f *testing.F) {
	valid := encodeHeader(3)
	for i := 1; i <= 3; i++ {
		var err error
		valid, err = appendRecord(valid, Record{Epoch: 3 + i, NextID: 7})
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add([]byte{})
	f.Add(encodeHeader(0))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn payload
	f.Add(valid[:headerSize+4]) // torn frame
	f.Add(valid[:headerSize-2]) // torn header
	f.Add([]byte("SWALSWALSWALSWALSWAL"))
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+frameSize+1] ^= 0xff // CRC mismatch
	f.Add(flipped)
	huge := append([]byte(nil), valid[:headerSize]...)
	var frame [frameSize]byte
	binary.LittleEndian.PutUint32(frame[0:], 1<<31)
	f.Add(append(huge, frame[:]...)) // impossible declared length

	f.Fuzz(func(t *testing.T, data []byte) {
		base, recs, used, err := DecodeLog(data)
		if used < 0 || used > int64(len(data)) {
			t.Fatalf("used %d outside [0, %d]", used, len(data))
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T is not *CorruptError", err)
			}
			if ce.Offset < 0 || ce.Offset > int64(len(data)) {
				t.Fatalf("corruption offset %d outside the image", ce.Offset)
			}
		} else if len(data) >= headerSize && base < 0 {
			t.Fatal("full header decoded to a torn-header base")
		}
		for i, r := range recs {
			if r.Epoch != base+i+1 {
				t.Fatalf("salvaged record %d has epoch %d under base %d", i, r.Epoch, base)
			}
			if r.NextID < 0 {
				t.Fatalf("salvaged record %d has negative next id %d", i, r.NextID)
			}
		}
	})
}
