package journal

// Durability of broker-enforced leases. Lease expirations are synthesized at
// epoch commit and deliberately NOT journaled: replay re-derives them from
// the journaled submits (the TTL rides on the bid), and a snapshot seed
// carries each survivor's remaining lease so a restored broker expires it at
// the same absolute epoch the live one would have. These trials pin exactly
// that: kill a journaled broker mid-lease-workload at every fault point,
// restore it, and the expiration schedule — which bids vanish at which epoch,
// with no client withdraw anywhere in the op stream — must match the
// never-killed reference for the rest of the run, including epochs past the
// end of the trace where expiry is the only thing still happening.

import (
	"errors"
	"testing"

	"repro/internal/broker"
	"repro/internal/market"
	"repro/pkg/spectrum"
)

// leaseCrashTrace is the crash-suite churn shape with every lifetime carried
// as a LeaseEpochs TTL instead of a client withdraw.
func leaseCrashTrace(name string, seed int64, epochs int) *market.Trace {
	return market.GenTrace(market.TraceConfig{
		Seed:          seed,
		Epochs:        epochs,
		K:             3,
		Side:          150,
		ArrivalRate:   3,
		MeanLifetime:  4,
		MaxUsers:      14,
		Model:         name,
		Lease:         true,
		PrimaryUsers:  2,
		PrimaryRadius: 45,
		PrimaryActive: 0.5,
	})
}

// requireBrokerExpiry asserts the recorded workload actually exercises
// broker-side expiry: no withdraw op anywhere, yet bidders leave the market.
func requireBrokerExpiry(t *testing.T, steps []traceStep, refs []epochRef) {
	t.Helper()
	for s, st := range steps {
		for _, op := range st.ops {
			if op.Op == spectrum.OpWithdraw {
				t.Fatalf("lease trace emitted a client withdraw at step %d", s)
			}
		}
	}
	wasActive := map[spectrum.BidderID]bool{}
	expired := false
	for _, ref := range refs {
		for id, e := range ref.bidders {
			if wasActive[id] && !e.active {
				expired = true
			}
			if e.active {
				wasActive[id] = true
			}
		}
	}
	if !expired {
		t.Fatal("no bidder ever left the market — the lease workload expired nothing")
	}
}

// TestLeaseCrashRestoreMatrix runs the full fault-point matrix over a lease
// workload: every crash restores to a broker that reproduces the reference
// run's expirations epoch for epoch, even though no expiration was ever
// journaled as an op.
func TestLeaseCrashRestoreMatrix(t *testing.T) {
	const epochs = 12
	for _, name := range []string{"disk", "protocol"} {
		name := name
		t.Run(name, func(t *testing.T) {
			steps, refs := recordTraceReference(t, name, true, leaseCrashTrace(name, 71, epochs))
			requireBrokerExpiry(t, steps, refs)
			for _, k := range []kill{
				{FaultPartialRecord, 5},
				{FaultBeforeSync, 5},
				// Snapshot-path faults land on the second snapshot cycle, so
				// the restore seeds from a snapshot whose bidders carry
				// rewritten remaining leases.
				{FaultMidSnapshot, 2},
				{FaultMidTruncate, 2},
			} {
				k := k
				t.Run(k.point.String(), func(t *testing.T) {
					runCrashTrial(t, name, true, steps, refs,
						Options{Sync: SyncAlways, SnapshotEvery: 3}, []kill{k}, true)
				})
			}
		})
	}
}

// compareLeaseBrokers asserts two brokers agree on every bidder ever issued:
// same liveness, and the same bundle for the live ones (a restored broker may
// know a long-retired bidder as unknown where the reference says gone — both
// are "not in the market").
func compareLeaseBrokers(t *testing.T, label string, ref, got *broker.Broker, issued []spectrum.BidderID) {
	t.Helper()
	for _, id := range issued {
		rb, rs := ref.Allocation(id)
		gb, gs := got.Allocation(id)
		ra, ga := rs == spectrum.StatusActive, gs == spectrum.StatusActive
		if ra != ga {
			t.Fatalf("%s: bidder %d active=%v, reference active=%v", label, id, ga, ra)
		}
		if ra && rb != gb {
			t.Fatalf("%s: bidder %d allocated %v, reference %v", label, id, gb, rb)
		}
	}
}

// TestLeaseRestoreExpirySchedule kills a journaled lease broker mid-snapshot,
// restores it, and runs it side by side with a never-killed twin to the end
// of the trace and six epochs beyond — where no op ever arrives and the
// remaining-lease arithmetic of the restored snapshot is the only thing
// deciding who expires when.
func TestLeaseRestoreExpirySchedule(t *testing.T) {
	tr := leaseCrashTrace("disk", 77, 10)
	factory := testFactory(t, "disk", false)
	ref, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	k := kill{FaultMidSnapshot, 2}
	jb, w, _, err := Open(dir, factory, Options{Sync: SyncAlways, SnapshotEvery: 2, Fault: k.fn()})
	if err != nil {
		t.Fatal(err)
	}
	r := market.NewOpsReplayer(tr, true)
	var issued []spectrum.BidderID
	restored := false
	for s := 0; ; s++ {
		ops, more, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		refRes, _ := ref.Batch(ops)
		if err := r.Observe(refRes); err != nil {
			t.Fatal(err)
		}
		jRes, _ := jb.Batch(ops)
		for i := range ops {
			if ops[i].Op == spectrum.OpWithdraw {
				t.Fatalf("lease trace emitted a client withdraw at step %d", s)
			}
			if ops[i].Op == spectrum.OpSubmit {
				if jRes[i].ID != refRes[i].ID {
					t.Fatalf("step %d: journaled submit got id %d, reference %d", s, jRes[i].ID, refRes[i].ID)
				}
				issued = append(issued, refRes[i].ID)
			}
		}
		refRep := ref.Tick()
		jRep := jb.Tick()
		if w != nil {
			if werr := w.Err(); werr != nil {
				if !errors.Is(werr, ErrCrashed) {
					t.Fatalf("writer failed outside the injected fault: %v", werr)
				}
				// Mid-snapshot under SyncAlways: the epoch's record is already
				// durable, so the restore lands exactly on the crash epoch.
				var rec *Recovery
				jb, rec, err = Recover(dir, factory)
				if err != nil {
					t.Fatal(err)
				}
				if rec.Epoch != s+1 {
					t.Fatalf("mid-snapshot crash at epoch %d restored epoch %d", s+1, rec.Epoch)
				}
				w, restored = nil, true
				jRep = jb.Metrics().Last
			}
		}
		if jRep.Expired != refRep.Expired || jRep.Active != refRep.Active {
			t.Fatalf("epoch %d: expired/active %d/%d, reference %d/%d",
				refRep.Epoch, jRep.Expired, jRep.Active, refRep.Expired, refRep.Active)
		}
		compareLeaseBrokers(t, "in-trace", ref, jb, issued)
		if !more {
			break
		}
	}
	if !restored {
		t.Fatal("the injected fault never fired")
	}
	// Past the trace: no ops at all. Expiry is the only dynamic left, and the
	// restored broker must keep firing it on the reference's exact schedule.
	expiredBeyond := 0
	for i := 0; i < 6; i++ {
		refRep := ref.Tick()
		jRep := jb.Tick()
		if jRep.Epoch != refRep.Epoch || jRep.Expired != refRep.Expired || jRep.Active != refRep.Active {
			t.Fatalf("post-trace epoch %d: expired/active %d/%d, reference (epoch %d) %d/%d",
				jRep.Epoch, jRep.Expired, jRep.Active, refRep.Epoch, refRep.Expired, refRep.Active)
		}
		expiredBeyond += jRep.Expired
		compareLeaseBrokers(t, "post-trace", ref, jb, issued)
	}
	if expiredBeyond == 0 {
		t.Fatal("nothing expired past the trace — the schedule comparison never bit")
	}
}
