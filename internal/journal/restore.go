package journal

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"

	"repro/internal/broker"
	"repro/internal/serialize"
)

// ErrMismatch is returned when the on-disk state belongs to a different
// broker configuration (model or channel count) than the factory builds.
// It is an operator error, never silently fallen back from.
var ErrMismatch = errors.New("journal: data directory does not match broker configuration")

// ErrIntegrity is returned when the restored market fails the snapshot's
// conflict-structure cross-check.
var ErrIntegrity = errors.New("journal: restored state failed integrity cross-check")

// Recovery describes what a restore found and did.
type Recovery struct {
	// SnapshotEpoch is the snapshot generation restored from (0 = genesis:
	// no snapshot, the journal from epoch 0).
	SnapshotEpoch int
	// Records is the number of journal-tail records replayed.
	Records int
	// Epoch is the restored broker's committed epoch.
	Epoch int
	// JournalBytes is the valid journal prefix in bytes.
	JournalBytes int64
	// TornBytes is the length of the dropped torn tail (0 = clean).
	TornBytes int64
	// Orphans lists files a crash left behind (older generations, stray
	// temp files, snapshots that failed to parse); Open removes them.
	Orphans []string
}

// Recover rebuilds a broker from the data directory without modifying any
// file: the newest parseable snapshot is seeded into a fresh broker from
// factory, and its journal tail replayed record by record. An empty (or
// absent) directory restores a fresh broker at epoch 0. Interior journal
// corruption is a hard error — restore never silently drops committed
// epochs that are physically present.
func Recover(dir string, factory func() (*broker.Broker, error)) (*broker.Broker, *Recovery, error) {
	st, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}
	rec := &Recovery{Orphans: append([]string(nil), st.tmps...)}

	// Pick the newest parseable snapshot; an unparseable one (torn tmp that
	// somehow got renamed, or operator damage) is skipped in favor of an
	// older generation — its journal still holds every epoch since.
	var snap *Snapshot
	base := 0
	for i := len(st.snaps) - 1; i >= 0; i-- {
		epoch := st.snaps[i]
		s, serr := readSnapshot(snapshotPath(dir, epoch), epoch)
		if serr != nil {
			rec.Orphans = append(rec.Orphans, snapshotPath(dir, epoch))
			continue
		}
		snap, base = s, epoch
		// Everything older is an orphan.
		for j := 0; j < i; j++ {
			rec.Orphans = append(rec.Orphans, snapshotPath(dir, st.snaps[j]))
		}
		break
	}
	rec.SnapshotEpoch = base

	// The chosen generation's journal. Missing is legal (a crash between
	// snapshot rename and journal creation, or a directory holding only a
	// snapshot): zero tail records. Journals of other generations are
	// orphans.
	var tail []Record
	logPath := journalPath(dir, base)
	logFound := false
	for _, jb := range st.journals {
		if jb == base {
			logFound = true
			continue
		}
		rec.Orphans = append(rec.Orphans, journalPath(dir, jb))
	}
	if logFound {
		recs, used, size, rerr := readLog(logPath, base)
		if rerr != nil {
			return nil, nil, rerr
		}
		tail = recs
		rec.JournalBytes = used
		rec.TornBytes = size - used
	}

	b, err := factory()
	if err != nil {
		return nil, nil, err
	}
	if snap != nil {
		if snap.Model != b.Model().Name() || snap.K != b.Config().K {
			return nil, nil, fmt.Errorf("%w: directory holds model %q k=%d, broker is %q k=%d",
				ErrMismatch, snap.Model, snap.K, b.Model().Name(), b.Config().K)
		}
		if err := b.ReplaySeed(snap.Epoch, snap.NextID, snap.Bidders); err != nil {
			return nil, nil, fmt.Errorf("journal: restore snapshot epoch %d: %w", snap.Epoch, err)
		}
		if err := crossCheck(b, snap); err != nil {
			return nil, nil, err
		}
	}
	for _, r := range tail {
		if err := b.ReplayEpoch(r.Epoch, r.NextID, r.Ops); err != nil {
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
	}
	rec.Records = len(tail)
	rec.Epoch = b.Epoch()
	if rec.Epoch > 0 {
		b.MarkRecovered(rec.Epoch) // an empty directory is a fresh start, not a restore
	}
	return b, rec, nil
}

// crossCheck verifies the rebuilt market against the snapshot's archived
// conflict structure: same population, channels, certifying ordering, and
// edge set. The seed bids already round-tripped through full validation;
// this catches a conflict model whose incremental build diverged from the
// one that produced the snapshot.
func crossCheck(b *broker.Broker, snap *Snapshot) error {
	if snap.Instance == nil {
		return nil
	}
	in, _, _, err := b.Snapshot()
	if err != nil {
		return fmt.Errorf("%w: restored market unavailable: %v", ErrIntegrity, err)
	}
	got, err := serialize.Encode(in)
	if err != nil {
		return nil // the live market has valuations the archive cannot hold; skip
	}
	want := snap.Instance
	switch {
	case got.N != want.N:
		return fmt.Errorf("%w: %d bidders, snapshot archived %d", ErrIntegrity, got.N, want.N)
	case got.K != want.K:
		return fmt.Errorf("%w: k=%d, snapshot archived k=%d", ErrIntegrity, got.K, want.K)
	case !reflect.DeepEqual(got.Pi, want.Pi):
		return fmt.Errorf("%w: certifying ordering diverged", ErrIntegrity)
	// Edge lists are compared as sets: adjacency iteration order differs
	// between a graph grown edge by edge and one rebuilt in a single batch,
	// but the edges themselves must coincide.
	case !reflect.DeepEqual(sortedEdges(got.Edges), sortedEdges(want.Edges)):
		return fmt.Errorf("%w: conflict edge set diverged", ErrIntegrity)
	case !reflect.DeepEqual(sortedWeights(got.Weights), sortedWeights(want.Weights)):
		return fmt.Errorf("%w: conflict weights diverged", ErrIntegrity)
	}
	return nil
}

func sortedEdges(edges [][2]int) [][2]int {
	out := append([][2]int(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func sortedWeights(ws []serialize.WeightedEdge) []serialize.WeightedEdge {
	out := append([]serialize.WeightedEdge(nil), ws...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		if out[i].V != out[j].V {
			return out[i].V < out[j].V
		}
		return out[i].W < out[j].W
	})
	return out
}

// Open restores the broker from dir (creating it empty if needed), repairs
// crash leftovers — truncating a torn journal tail, deleting orphaned
// generations and temp files — attaches a Writer as the broker's commit
// hook, and returns all three. The broker is ready to serve and every
// subsequent Tick is journaled.
func Open(dir string, factory func() (*broker.Broker, error), opts Options) (*broker.Broker, *Writer, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, fmt.Errorf("journal: create %s: %w", dir, err)
	}
	b, rec, err := Recover(dir, factory)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, orphan := range rec.Orphans {
		os.Remove(orphan)
	}

	opts = opts.withDefaults()
	w := &Writer{dir: dir, opts: opts, src: b, base: rec.SnapshotEpoch, lastEpoch: rec.Epoch}

	logPath := journalPath(dir, rec.SnapshotEpoch)
	switch fi, serr := os.Stat(logPath); {
	case serr != nil && !os.IsNotExist(serr):
		return nil, nil, nil, fmt.Errorf("journal: stat log: %w", serr)
	case serr != nil || fi.Size() < headerSize:
		// Missing, or so short even the header is torn: start it over (its
		// zero or torn content contributed nothing to the restore).
		f, cerr := createLog(dir, rec.SnapshotEpoch)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		w.f, w.off = f, headerSize
	default:
		f, oerr := os.OpenFile(logPath, os.O_RDWR, 0)
		if oerr != nil {
			return nil, nil, nil, fmt.Errorf("journal: open log: %w", oerr)
		}
		if rec.TornBytes > 0 {
			if terr := f.Truncate(rec.JournalBytes); terr != nil {
				f.Close()
				return nil, nil, nil, fmt.Errorf("journal: drop torn tail: %w", terr)
			}
		}
		if _, serr := f.Seek(rec.JournalBytes, 0); serr != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("journal: seek: %w", serr)
		}
		if ferr := f.Sync(); ferr != nil {
			f.Close()
			return nil, nil, nil, fmt.Errorf("journal: fsync repaired log: %w", ferr)
		}
		w.f, w.off = f, rec.JournalBytes
	}
	if err := syncDir(dir); err != nil {
		return nil, nil, nil, err
	}
	b.SetOnCommit(w.Commit)
	return b, w, rec, nil
}
