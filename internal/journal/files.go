package journal

// File naming, directory scanning, and whole-file reads shared by the
// writer and the restore path.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/broker"
	"repro/internal/serialize"
	"repro/pkg/spectrum"
)

// SnapshotVersion guards the snapshot schema.
const SnapshotVersion = 1

// Snapshot is the on-disk full-market snapshot: everything ReplaySeed needs
// to rebuild the committed market at Epoch, plus the broker configuration
// it is only valid under. Instance, when present, is the committed
// conflict structure in the repo's existing instance serialization; restore
// uses it as an integrity cross-check of the rebuilt conflict graph.
type Snapshot struct {
	FormatVersion int                 `json:"format_version"`
	Model         string              `json:"model"`
	K             int                 `json:"k"`
	Epoch         int                 `json:"epoch"`
	NextID        spectrum.BidderID   `json:"next_id"`
	Bidders       []broker.SeedBidder `json:"bidders"`
	Instance      *serialize.File     `json:"instance,omitempty"`
}

func journalPath(dir string, base int) string {
	return filepath.Join(dir, fmt.Sprintf("journal-%012d.log", base))
}

func snapshotPath(dir string, epoch int) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%012d.json", epoch))
}

// dirState is what a scan of the data directory found: snapshot epochs and
// journal base epochs, each sorted ascending, plus stray *.tmp files.
type dirState struct {
	snaps    []int
	journals []int
	tmps     []string
}

// scanDir lists the directory's snapshot and journal files. Unrelated files
// are ignored (the directory may hold an operator's notes); only the two
// reserved name shapes and *.tmp leftovers are interpreted.
func scanDir(dir string) (dirState, error) {
	var st dirState
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, fmt.Errorf("journal: scan %s: %w", dir, err)
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			st.tmps = append(st.tmps, filepath.Join(dir, name))
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".json"):
			if n, ok := parseSeq(name, "snapshot-", ".json"); ok {
				st.snaps = append(st.snaps, n)
			}
		case strings.HasPrefix(name, "journal-") && strings.HasSuffix(name, ".log"):
			if n, ok := parseSeq(name, "journal-", ".log"); ok {
				st.journals = append(st.journals, n)
			}
		}
	}
	sort.Ints(st.snaps)
	sort.Ints(st.journals)
	return st, nil
}

func parseSeq(name, prefix, suffix string) (int, bool) {
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// readSnapshot loads and vets one snapshot file.
func readSnapshot(path string, epoch int) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: read snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("journal: snapshot %s: %w", path, err)
	}
	if s.FormatVersion != SnapshotVersion {
		return nil, fmt.Errorf("journal: snapshot %s: unsupported format version %d", path, s.FormatVersion)
	}
	if s.Epoch != epoch {
		return nil, fmt.Errorf("journal: snapshot %s: holds epoch %d", path, s.Epoch)
	}
	return &s, nil
}

// readLog decodes one journal file, checking the header's base epoch
// against the filename. Returns the records, the valid-prefix length, and
// the file size. A missing file is (nil, 0, 0, os.ErrNotExist); a file so
// short its header is torn returns zero records with used 0 (the repair
// path rewrites the header).
func readLog(path string, wantBase int) (recs []Record, used, size int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	base, recs, used, derr := DecodeLog(data)
	if derr != nil {
		var ce *CorruptError
		if errors.As(derr, &ce) {
			ce.Path = path
		}
		return nil, 0, int64(len(data)), derr
	}
	if base >= 0 && base != wantBase {
		return nil, 0, int64(len(data)), &CorruptError{Path: path, Offset: 8,
			Reason: fmt.Sprintf("header base epoch %d does not match filename base %d", base, wantBase)}
	}
	return recs, used, int64(len(data)), nil
}
