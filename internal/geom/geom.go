// Package geom provides the geometric substrate for the spectrum auction
// models: points in the plane, metrics (Euclidean and general), and
// deterministic random instance generators.
//
// Every generator takes an explicit *rand.Rand so experiments are exactly
// reproducible from a seed.
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a point in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f)", p.X, p.Y)
}

// Metric is a finite metric space over indices 0..Len()-1.
type Metric interface {
	// Dist returns the distance between elements i and j.
	Dist(i, j int) float64
	// Len returns the number of elements.
	Len() int
}

// EuclideanMetric is the metric induced by a set of points in the plane.
type EuclideanMetric []Point

// Dist implements Metric.
func (m EuclideanMetric) Dist(i, j int) float64 { return m[i].Dist(m[j]) }

// Len implements Metric.
func (m EuclideanMetric) Len() int { return len(m) }

// MatrixMetric is an explicit distance matrix. It is the caller's
// responsibility that the matrix is symmetric and satisfies the triangle
// inequality; Validate checks both.
type MatrixMetric [][]float64

// Dist implements Metric.
func (m MatrixMetric) Dist(i, j int) float64 { return m[i][j] }

// Len implements Metric.
func (m MatrixMetric) Len() int { return len(m) }

// Validate reports whether the matrix is a metric: square, zero diagonal,
// symmetric, non-negative, and satisfying the triangle inequality.
func (m MatrixMetric) Validate() error {
	n := len(m)
	for i := 0; i < n; i++ {
		if len(m[i]) != n {
			return fmt.Errorf("geom: row %d has length %d, want %d", i, len(m[i]), n)
		}
		if m[i][i] != 0 {
			return fmt.Errorf("geom: nonzero diagonal at %d", i)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m[i][j] < 0 {
				return fmt.Errorf("geom: negative distance (%d,%d)", i, j)
			}
			if math.Abs(m[i][j]-m[j][i]) > 1e-9 {
				return fmt.Errorf("geom: asymmetric at (%d,%d)", i, j)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for l := 0; l < n; l++ {
				if m[i][j] > m[i][l]+m[l][j]+1e-9 {
					return fmt.Errorf("geom: triangle inequality violated (%d,%d,%d)", i, j, l)
				}
			}
		}
	}
	return nil
}

// UniformPoints returns n points drawn uniformly at random from the square
// [0,side] x [0,side].
func UniformPoints(rng *rand.Rand, n int, side float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return pts
}

// ClusteredPoints returns n points grouped around `clusters` uniformly placed
// centers; each point is offset from its center by a Gaussian with the given
// standard deviation. This mimics hot-spot demand in a secondary spectrum
// market (many devices near the same base stations).
func ClusteredPoints(rng *rand.Rand, n, clusters int, side, stddev float64) []Point {
	if clusters < 1 {
		clusters = 1
	}
	centers := UniformPoints(rng, clusters, side)
	pts := make([]Point, n)
	for i := range pts {
		c := centers[rng.Intn(clusters)]
		pts[i] = Point{
			X: clamp(c.X+rng.NormFloat64()*stddev, 0, side),
			Y: clamp(c.Y+rng.NormFloat64()*stddev, 0, side),
		}
	}
	return pts
}

// GridPoints returns the points of a rows x cols grid with the given spacing,
// anchored at the origin. Useful for worst-case-ish regular deployments.
func GridPoints(rows, cols int, spacing float64) []Point {
	pts := make([]Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return pts
}

// PerturbedMetric builds a general (non-Euclidean) metric from a Euclidean
// one by multiplying each distance with an independent factor in
// [1, 1+eps] and re-closing it under shortest paths so the triangle
// inequality holds again. It models irregular signal propagation
// (walls, terrain) that breaks plain geometry but keeps a metric.
func PerturbedMetric(rng *rand.Rand, base Metric, eps float64) MatrixMetric {
	n := base.Len()
	d := make(MatrixMetric, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			f := 1 + rng.Float64()*eps
			v := base.Dist(i, j) * f
			d[i][j] = v
			d[j][i] = v
		}
	}
	// Floyd–Warshall closure restores the triangle inequality.
	for l := 0; l < n; l++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if s := d[i][l] + d[l][j]; s < d[i][j] {
					d[i][j] = s
				}
			}
		}
	}
	return d
}

// PoissonDiskPoints returns up to n points in [0,side]^2 with pairwise
// separation at least minSep, by dart throwing with rejection. These are
// exactly the vertex sets of (r,s)-civilized graphs with s = minSep. Fewer
// than n points are returned if the box cannot absorb more darts.
func PoissonDiskPoints(rng *rand.Rand, n int, side, minSep float64) []Point {
	var pts []Point
	maxAttempts := 200 * n
	for att := 0; att < maxAttempts && len(pts) < n; att++ {
		cand := Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		ok := true
		for _, p := range pts {
			if p.Dist(cand) < minSep {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, cand)
		}
	}
	return pts
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Link is a sender/receiver pair in the plane, the "user" of link-based
// interference models (protocol model, physical model).
type Link struct {
	Sender, Receiver Point
}

// Length returns the sender-receiver distance of the link.
func (l Link) Length() float64 { return l.Sender.Dist(l.Receiver) }

// UniformLinks places n links with senders uniform in [0,side]^2 and
// receivers at distance in [minLen,maxLen] in a uniformly random direction.
func UniformLinks(rng *rand.Rand, n int, side, minLen, maxLen float64) []Link {
	links := make([]Link, n)
	for i := range links {
		s := Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		r := minLen + rng.Float64()*(maxLen-minLen)
		phi := rng.Float64() * 2 * math.Pi
		links[i] = Link{
			Sender:   s,
			Receiver: Point{X: s.X + r*math.Cos(phi), Y: s.Y + r*math.Sin(phi)},
		}
	}
	return links
}

// NestedLinks generates links whose lengths span several orders of magnitude
// (length doubling every few links). Physical-model instances with widely
// varying link lengths are the hard regime for SINR scheduling and exercise
// the O(log n) inductive-independence bound of Proposition 15.
func NestedLinks(rng *rand.Rand, n int, baseLen float64) []Link {
	links := make([]Link, n)
	scale := baseLen
	for i := range links {
		if i > 0 && i%4 == 0 {
			scale *= 2
		}
		s := Point{X: rng.Float64() * scale * 10, Y: rng.Float64() * scale * 10}
		phi := rng.Float64() * 2 * math.Pi
		links[i] = Link{
			Sender:   s,
			Receiver: Point{X: s.X + scale*math.Cos(phi), Y: s.Y + scale*math.Sin(phi)},
		}
	}
	return links
}
