package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	a, b := Point{0, 0}, Point{3, 4}
	if d := a.Dist(b); d != 5 {
		t.Fatalf("Dist = %g, want 5", d)
	}
	if d := a.Dist(a); d != 0 {
		t.Fatalf("self distance = %g, want 0", d)
	}
}

func TestPointString(t *testing.T) {
	if s := (Point{1, 2}).String(); s != "(1.000, 2.000)" {
		t.Fatalf("String = %q", s)
	}
}

func TestEuclideanMetric(t *testing.T) {
	m := EuclideanMetric{{0, 0}, {3, 4}, {0, 8}}
	if m.Len() != 3 {
		t.Fatal("Len wrong")
	}
	if m.Dist(0, 1) != 5 {
		t.Fatal("Dist wrong")
	}
}

func TestMatrixMetricValidate(t *testing.T) {
	good := MatrixMetric{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid metric rejected: %v", err)
	}
	bad := MatrixMetric{{0, 5, 1}, {5, 0, 1}, {1, 1, 0}} // 5 > 1+1
	if err := bad.Validate(); err == nil {
		t.Fatal("triangle violation accepted")
	}
	asym := MatrixMetric{{0, 1}, {2, 0}}
	if err := asym.Validate(); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	diag := MatrixMetric{{1, 1}, {1, 0}}
	if err := diag.Validate(); err == nil {
		t.Fatal("nonzero diagonal accepted")
	}
	ragged := MatrixMetric{{0, 1}, {1}}
	if err := ragged.Validate(); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	neg := MatrixMetric{{0, -1}, {-1, 0}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative distance accepted")
	}
}

func TestUniformPointsInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := UniformPoints(rng, 200, 50)
	if len(pts) != 200 {
		t.Fatal("count wrong")
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 50 || p.Y < 0 || p.Y > 50 {
			t.Fatalf("point %v outside box", p)
		}
	}
}

func TestClusteredPointsInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := ClusteredPoints(rng, 100, 4, 80, 5)
	if len(pts) != 100 {
		t.Fatal("count wrong")
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 80 || p.Y < 0 || p.Y > 80 {
			t.Fatalf("point %v outside box", p)
		}
	}
	// Degenerate cluster count is clamped.
	pts = ClusteredPoints(rng, 5, 0, 10, 1)
	if len(pts) != 5 {
		t.Fatal("clamped cluster count broken")
	}
}

func TestGridPoints(t *testing.T) {
	pts := GridPoints(2, 3, 1.5)
	if len(pts) != 6 {
		t.Fatalf("len = %d, want 6", len(pts))
	}
	if pts[0] != (Point{0, 0}) || pts[5] != (Point{3, 1.5}) {
		t.Fatalf("grid layout wrong: %v", pts)
	}
}

// Property: PerturbedMetric always yields a valid metric.
func TestQuickPerturbedMetric(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		base := EuclideanMetric(UniformPoints(rng, n, 10))
		m := PerturbedMetric(rng, base, 0.5)
		if m.Len() != n {
			return false
		}
		return m.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: perturbed distances never drop below a shortest path in the
// original metric and never exceed (1+eps) times the direct distance.
func TestQuickPerturbedMetricBounds(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		base := EuclideanMetric(UniformPoints(rng, n, 10))
		const eps = 0.3
		m := PerturbedMetric(rng, base, eps)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if m[i][j] > base.Dist(i, j)*(1+eps)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformLinksLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	links := UniformLinks(rng, 100, 100, 2, 9)
	for _, l := range links {
		d := l.Length()
		if d < 2-1e-9 || d > 9+1e-9 {
			t.Fatalf("link length %g outside [2,9]", d)
		}
	}
}

func TestNestedLinksGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	links := NestedLinks(rng, 20, 1)
	if math.Abs(links[0].Length()-1) > 1e-9 {
		t.Fatalf("first link length %g, want 1", links[0].Length())
	}
	if links[19].Length() <= links[0].Length() {
		t.Fatal("lengths must grow")
	}
	// Lengths double every 4 links: link 16..19 has length 2^4.
	if math.Abs(links[19].Length()-16) > 1e-9 {
		t.Fatalf("link 19 length %g, want 16", links[19].Length())
	}
}

func TestMatrixMetricDist(t *testing.T) {
	m := MatrixMetric{{0, 2}, {2, 0}}
	if m.Dist(0, 1) != 2 || m.Dist(1, 1) != 0 {
		t.Fatal("MatrixMetric.Dist wrong")
	}
}

func TestPoissonDiskPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := PoissonDiskPoints(rng, 40, 100, 5)
	if len(pts) == 0 {
		t.Fatal("no points generated")
	}
	for i := range pts {
		if pts[i].X < 0 || pts[i].X > 100 || pts[i].Y < 0 || pts[i].Y > 100 {
			t.Fatalf("point %v outside box", pts[i])
		}
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) < 5 {
				t.Fatalf("points %d,%d at distance %g < 5", i, j, pts[i].Dist(pts[j]))
			}
		}
	}
	// An over-packed request saturates below n rather than looping forever.
	dense := PoissonDiskPoints(rng, 10000, 10, 5)
	if len(dense) >= 10000 {
		t.Fatal("impossible packing claimed")
	}
}

func TestClamp(t *testing.T) {
	if clamp(-1, 0, 5) != 0 || clamp(7, 0, 5) != 5 || clamp(3, 0, 5) != 3 {
		t.Fatal("clamp wrong")
	}
}
