package scenario

import (
	"testing"

	"repro/internal/broker"
	"repro/internal/market"
)

func TestByName(t *testing.T) {
	for _, s := range All {
		got, err := ByName(s.Name)
		if err != nil || got != s {
			t.Fatalf("ByName(%q) = %v, %v", s.Name, got, err)
		}
	}
	if _, err := ByName("rushhour"); err == nil {
		t.Fatal("ByName accepted an unknown scenario")
	}
	if len(Names()) != len(All) {
		t.Fatalf("Names() lists %d of %d scenarios", len(Names()), len(All))
	}
}

// TestScenarioTracesDeterministic: a scenario plus a seed names one exact
// workload — arrivals, moves, leases, everything.
func TestScenarioTracesDeterministic(t *testing.T) {
	p := Params{Seed: 21, Epochs: 30}
	for _, s := range All {
		a, b := s.Trace(p), s.Trace(p)
		if len(a.Epochs) != len(b.Epochs) {
			t.Fatalf("%s: epoch counts differ", s.Name)
		}
		for e := range a.Epochs {
			ae, be := a.Epochs[e], b.Epochs[e]
			if len(ae.Arrivals) != len(be.Arrivals) || len(ae.Moves) != len(be.Moves) {
				t.Fatalf("%s epoch %d: event counts differ across identical runs", s.Name, e)
			}
			for i := range ae.Arrivals {
				x, y := ae.Arrivals[i], be.Arrivals[i]
				if x.ID != y.ID || x.Pos != y.Pos || x.Departs != y.Departs || x.Lease != y.Lease {
					t.Fatalf("%s epoch %d arrival %d differs across identical runs", s.Name, e, i)
				}
			}
			for i := range ae.Moves {
				if ae.Moves[i] != be.Moves[i] {
					t.Fatalf("%s epoch %d move %d differs across identical runs", s.Name, e, i)
				}
			}
		}
	}
}

// TestScenarioShapes pins what each scenario is for: mobility scenarios
// move, the lease scenario leases (and never mask-updates), the wave
// scenarios actually vary demand.
func TestScenarioShapes(t *testing.T) {
	p := Params{Seed: 3, Epochs: 40}
	for _, s := range []*Scenario{Vehicular, Pedestrian} {
		tr := s.Trace(p)
		moves := 0
		for _, te := range tr.Epochs {
			moves += len(te.Moves)
		}
		if moves == 0 {
			t.Errorf("%s: no Move events", s.Name)
		}
	}
	tr := Leases.Trace(p)
	arrivals := 0
	for _, te := range tr.Epochs {
		for _, a := range te.Arrivals {
			if a.Lease <= 0 {
				t.Fatalf("leases: arrival %d has no TTL", a.ID)
			}
			arrivals++
		}
	}
	if arrivals == 0 {
		t.Fatal("leases: no arrivals")
	}
	if len(tr.Primaries) != 0 {
		t.Fatal("leases: scenario must not generate primaries (submit-only op stream)")
	}
	flash := Flashcrowd.Trace(p)
	peak, off := 0, 0
	for e, te := range flash.Epochs {
		if e >= p.Epochs/3 && e < p.Epochs/3+p.Epochs/10+1 {
			peak += len(te.Arrivals)
		} else {
			off += len(te.Arrivals)
		}
	}
	if peak <= off {
		t.Fatalf("flashcrowd: burst window (%d arrivals) not above baseline (%d)", peak, off)
	}
	if Flashcrowd.MaxBidders <= 0 {
		t.Fatal("flashcrowd: no admission cap to push against")
	}
}

// driveBroker replays a scenario synchronously (one batch + one tick per
// trace step) into a fresh broker and returns the replayer and metrics.
func driveBroker(t *testing.T, s *Scenario, p Params) (*market.OpsReplayer, broker.Metrics) {
	t.Helper()
	b, err := broker.New(broker.Config{K: 3, MaxBidders: s.MaxBidders})
	if err != nil {
		t.Fatal(err)
	}
	r := market.NewOpsReplayer(s.Trace(p), true)
	r.Lenient()
	for {
		ops, more, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		results, _ := b.Batch(ops)
		if err := r.Observe(results); err != nil {
			t.Fatal(err)
		}
		b.Tick()
		if !more {
			break
		}
	}
	return r, b.Metrics()
}

// testLeaseAlignment drives the lease scenario synchronously and pins the
// expiry schedule: in-trace, the broker's post-tick population must equal
// the replayer's live set every single epoch (lease expiry lands on exactly
// the epoch a client withdraw of the same lifetime would); past the trace
// the broker keeps expiring on its own.
func testLeaseAlignment(t *testing.T, p Params) {
	t.Helper()
	b, err := broker.New(broker.Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := Leases.Trace(p)
	r := market.NewOpsReplayer(tr, true)
	for {
		ops, more, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		results, _ := b.Batch(ops)
		if err := r.Observe(results); err != nil {
			t.Fatal(err)
		}
		rep := b.Tick()
		if more {
			if rep.Active != len(r.Live()) {
				t.Fatalf("epoch %d: broker active %d, replayer live %d — expiry schedules diverged",
					rep.Epoch, rep.Active, len(r.Live()))
			}
			continue
		}
		// One tick past the trace: only bids leased beyond the horizon
		// survive (the broker withdraws the rest itself).
		beyond := 0
		for _, te := range tr.Epochs {
			for _, a := range te.Arrivals {
				if a.Departs > p.Epochs {
					beyond++
				}
			}
		}
		if rep.Active != beyond {
			t.Fatalf("post-trace epoch %d: broker active %d, want the %d bids leased beyond the horizon",
				rep.Epoch, rep.Active, beyond)
		}
		break
	}
	m := b.Metrics()
	if m.Expired == 0 {
		t.Error("leases: broker expired nothing")
	}
	if m.Withdrawn != m.Expired {
		t.Errorf("leases: %d departures but %d expirations — someone sent a client withdraw", m.Withdrawn, m.Expired)
	}
}

// TestScenariosEndToEnd drives every scenario through a live broker and
// checks the machinery it exists to stress actually fired.
func TestScenariosEndToEnd(t *testing.T) {
	p := Params{Seed: 9, Epochs: 40}

	r, m := driveBroker(t, Vehicular, p)
	if m.Moved == 0 || r.Moves() == 0 {
		t.Errorf("vehicular: broker applied no moves (replayer emitted %d)", r.Moves())
	}

	testLeaseAlignment(t, p)

	r, m = driveBroker(t, Flashcrowd, p)
	if r.Rejected429() == 0 {
		t.Error("flashcrowd: no 429 admission pressure against the scenario cap")
	}
	if m.Last.Active > Flashcrowd.MaxBidders {
		t.Errorf("flashcrowd: %d active above the %d cap", m.Last.Active, Flashcrowd.MaxBidders)
	}

	if _, m = driveBroker(t, Diurnal, p); m.Submitted == 0 {
		t.Error("diurnal: no arrivals reached the broker")
	}
}
