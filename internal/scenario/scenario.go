// Package scenario names the repository's workload generators: seeded,
// deterministic trace shapes layered on market.TraceConfig/GenTrace that
// open the workload space beyond constant-rate Poisson churn. Each scenario
// stresses a different part of the live broker:
//
//   - vehicular / pedestrian — random-waypoint mobility; every live bidder
//     emits a Move event per epoch, hammering Broker.Move and the
//     incremental conflict-edge rewiring (distance-2 especially);
//   - flashcrowd — a demand spike an order of magnitude over baseline,
//     driven into a deliberately small admission cap so per-item 429
//     pressure and batch throughput are exercised, not just modeled;
//   - diurnal — a sinusoidal day/night arrival wave, the slow version of
//     the same admission story;
//   - leases — every bid carries a LeaseEpochs TTL and nobody ever sends a
//     withdraw: the broker retires expired bids itself at epoch commit.
//
// A scenario plus a seed names one reproducible workload everywhere:
// cmd/brokerload -scenario, brokerd -selftest, and experiment E20 all build
// their traces here.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/market"
)

// Params selects one concrete run of a scenario. Zero fields take the
// scenario's defaults (Epochs 60, K 3, the scenario's preferred model).
type Params struct {
	Seed   int64
	Epochs int
	K      int
	// Model names the interference backend the trace's geometry targets
	// ("" = disk).
	Model string
}

func (p Params) withDefaults() Params {
	if p.Epochs <= 0 {
		p.Epochs = 60
	}
	if p.K <= 0 {
		p.K = 3
	}
	return p
}

// Scenario is one named workload generator.
type Scenario struct {
	Name        string
	Description string
	// MaxBidders is the broker admission cap the scenario is designed
	// against (0 = the broker's default). The flashcrowd scenario sets it
	// below its own demand peak on purpose: the 429 pressure is the
	// workload, so harnesses honouring this cap reproduce it.
	MaxBidders int
	// Config builds the trace configuration for one run.
	Config func(p Params) market.TraceConfig
}

// Trace generates the scenario's workload for one run.
func (s *Scenario) Trace(p Params) *market.Trace {
	return market.GenTrace(s.Config(p))
}

// Vehicular is fast random-waypoint mobility: long-lived bidders crossing
// the service area at vehicle speeds, every live bidder moving every epoch.
var Vehicular = &Scenario{
	Name:        "vehicular",
	Description: "fast waypoint mobility; every live bidder emits a Move per epoch",
	Config: func(p Params) market.TraceConfig {
		cfg := baseConfig(p)
		cfg.ArrivalRate = 4
		cfg.MeanLifetime = 8
		cfg.MaxUsers = 64
		cfg.Mobility = market.Mobility{SpeedMin: 18, SpeedMax: 35}
		return cfg
	},
}

// Pedestrian is the same waypoint model at walking speeds: positions drift
// instead of jump, so conflict-edge deltas stay small but constant.
var Pedestrian = &Scenario{
	Name:        "pedestrian",
	Description: "slow waypoint mobility; small but constant conflict-edge drift",
	Config: func(p Params) market.TraceConfig {
		cfg := baseConfig(p)
		cfg.ArrivalRate = 4
		cfg.MeanLifetime = 8
		cfg.MaxUsers = 64
		cfg.Mobility = market.Mobility{SpeedMin: 1.5, SpeedMax: 4}
		return cfg
	},
}

// Flashcrowd is a tenfold demand spike over a short window, aimed at an
// admission cap sized below the spike: the broker must shed load with
// per-item 429s and keep clearing the market for everyone it admitted.
var Flashcrowd = &Scenario{
	Name:        "flashcrowd",
	Description: "10x arrival burst into a small admission cap; per-item 429 shedding",
	MaxBidders:  48,
	Config: func(p Params) market.TraceConfig {
		cfg := baseConfig(p)
		cfg.ArrivalRate = 2
		cfg.MeanLifetime = 6
		cfg.MaxUsers = 160 // trace-side cap well above the broker's 48
		start, width := p.Epochs/3, p.Epochs/10+1
		cfg.Rate = func(epoch int) float64 {
			if epoch >= start && epoch < start+width {
				return 20
			}
			return 2
		}
		return cfg
	},
}

// Diurnal is a sinusoidal day/night arrival wave (period 24 epochs): the
// slow-motion admission story, plus steady batch-throughput variation.
var Diurnal = &Scenario{
	Name:        "diurnal",
	Description: "sinusoidal day/night arrival wave (period 24 epochs)",
	Config: func(p Params) market.TraceConfig {
		cfg := baseConfig(p)
		cfg.ArrivalRate = 5
		cfg.MeanLifetime = 4
		cfg.MaxUsers = 96
		cfg.Rate = func(epoch int) float64 {
			return 5 * (1 + 0.9*math.Sin(2*math.Pi*float64(epoch)/24))
		}
		return cfg
	},
}

// Leases is broker-enforced churn: every bid carries its drawn lifetime as
// a LeaseEpochs TTL and no client ever withdraws — the broker expires bids
// at epoch commit, and the expiry schedule must survive journal replay and
// kill/restore exactly.
var Leases = &Scenario{
	Name:        "leases",
	Description: "every bid carries a TTL; the broker expires bids at epoch commit",
	Config: func(p Params) market.TraceConfig {
		cfg := baseConfig(p)
		cfg.ArrivalRate = 5
		cfg.MeanLifetime = 4
		cfg.MaxUsers = 64
		cfg.Lease = true
		// No primaries: a lease trace emits submits only, so replays stay
		// valid even against a free-running ticker that expires bids
		// between trace steps.
		cfg.PrimaryUsers = 0
		cfg.PrimaryActive = 0
		return cfg
	},
}

// baseConfig is the shared geometry every scenario starts from.
func baseConfig(p Params) market.TraceConfig {
	p = p.withDefaults()
	return market.TraceConfig{
		Seed:          p.Seed,
		Epochs:        p.Epochs,
		K:             p.K,
		Side:          300,
		PrimaryUsers:  2,
		PrimaryRadius: 60,
		PrimaryActive: 0.5,
		Model:         p.Model,
	}
}

// All lists the named scenarios in presentation order.
var All = []*Scenario{Vehicular, Pedestrian, Flashcrowd, Diurnal, Leases}

// Names returns the scenario names, sorted.
func Names() []string {
	names := make([]string, len(All))
	for i, s := range All {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// ByName resolves a scenario by name.
func ByName(name string) (*Scenario, error) {
	for _, s := range All {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
}
