package spatial

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
)

// brute is the all-pairs reference the grid is pinned against.
type brute struct {
	items map[int64]entry
}

func newBrute() *brute { return &brute{items: make(map[int64]entry)} }

func (b *brute) insert(id int64, p geom.Point, reach float64) {
	b.items[id] = entry{pos: p, reach: reach}
}

func (b *brute) remove(id int64) { delete(b.items, id) }

func (b *brute) neighbors(p geom.Point, reach float64, exclude int64) []int64 {
	var out []int64
	for id, e := range b.items {
		if id != exclude && p.Dist(e.pos) <= reach+e.reach {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkAll compares every live item's neighbor query (and a few synthetic
// probes) between grid and brute force.
func checkAll(t *testing.T, g *Grid[int64], b *brute, probes []geom.Point, step int) {
	t.Helper()
	if g.Len() != len(b.items) {
		t.Fatalf("step %d: grid has %d items, brute %d", step, g.Len(), len(b.items))
	}
	ids := make([]int64, 0, len(b.items))
	for id := range b.items {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := b.items[id]
		want := b.neighbors(e.pos, e.reach, id)
		got := g.NeighborsOf(id, nil)
		if !sameIDs(got, want) {
			t.Fatalf("step %d: NeighborsOf(%d) = %v, brute force %v", step, id, got, want)
		}
	}
	for i, p := range probes {
		r := 1 + float64(i)*3
		want := b.neighbors(p, r, -1)
		got := g.Neighbors(p, r, -1, nil)
		if !sameIDs(got, want) {
			t.Fatalf("step %d: probe %v r=%g: grid %v, brute %v", step, p, r, got, want)
		}
	}
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGridMatchesBruteForceChurn drives a grid through randomized insert /
// update / remove churn with widely mixed reaches (forcing grow and shrink
// rebuckets) and pins every query against the all-pairs scan after every
// mutation.
func TestGridMatchesBruteForceChurn(t *testing.T) {
	probes := []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 50}, {X: -30, Y: 80}}
	totalRebuckets := 0
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New[int64]()
		b := newBrute()
		var next int64
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(4); {
			case op == 0 || len(b.items) < 5: // insert
				next++
				p := geom.Point{X: rng.Float64()*200 - 50, Y: rng.Float64()*200 - 50}
				// Reaches span three orders of magnitude so the churn
				// crosses both rebucket thresholds repeatedly.
				reach := []float64{0.2, 1, 5, 40}[rng.Intn(4)] * (0.5 + rng.Float64())
				g.Insert(next, p, reach)
				b.insert(next, p, reach)
			case op == 1: // remove
				id := randID(rng, b)
				g.Remove(id)
				b.remove(id)
			default: // update (move and/or resize)
				id := randID(rng, b)
				p := geom.Point{X: rng.Float64()*200 - 50, Y: rng.Float64()*200 - 50}
				reach := []float64{0.2, 1, 5, 40}[rng.Intn(4)] * (0.5 + rng.Float64())
				g.Update(id, p, reach)
				b.insert(id, p, reach)
			}
			checkAll(t, g, b, probes, step)
		}
		totalRebuckets += g.Rebuckets()
	}
	if totalRebuckets == 0 {
		t.Fatal("churn with mixed reaches never rebucketed on any seed")
	}
}

func randID(rng *rand.Rand, b *brute) int64 {
	ids := make([]int64, 0, len(b.items))
	for id := range b.items {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))]
}

// TestGridDeterministic pins byte-determinism: two grids fed the identical
// op sequence return identical Neighbors slices (order included) and agree
// on cell size and rebucket count at every step.
func TestGridDeterministic(t *testing.T) {
	run := func() ([][]int64, []float64) {
		rng := rand.New(rand.NewSource(7))
		g := New[int64]()
		var outs [][]int64
		var cells []float64
		for i := int64(1); i <= 120; i++ {
			p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			g.Insert(i, p, 0.5+rng.Float64()*20)
			if i%7 == 0 {
				g.Remove(i - 3)
			}
			outs = append(outs, append([]int64(nil), g.Neighbors(p, 5, -1, nil)...))
			cells = append(cells, g.CellSize())
		}
		return outs, cells
	}
	o1, c1 := run()
	for trial := 0; trial < 10; trial++ {
		o2, c2 := run()
		if !reflect.DeepEqual(o1, o2) || !reflect.DeepEqual(c1, c2) {
			t.Fatalf("trial %d: grid state diverged across identical op sequences", trial)
		}
	}
}

// TestGridRebucketPolicy pins the cell-size invariant: after any mutation,
// cell/shrinkFactor ≤ maxReach ≤ growFactor·cell (while non-empty).
func TestGridRebucketPolicy(t *testing.T) {
	g := New[int64]()
	check := func(when string) {
		t.Helper()
		if g.Len() == 0 {
			return
		}
		if g.MaxReach() > g.CellSize()*growFactor || g.MaxReach() < g.CellSize()/shrinkFactor {
			t.Fatalf("%s: cell %g vs maxReach %g violates the rebucket invariant",
				when, g.CellSize(), g.MaxReach())
		}
	}
	g.Insert(1, geom.Point{X: 0, Y: 0}, 1)
	check("first insert")
	if g.CellSize() != 1 {
		t.Fatalf("cell seeded to %g, want the first reach 1", g.CellSize())
	}
	// An outlier 100× the basis must force a grow rebucket.
	g.Insert(2, geom.Point{X: 50, Y: 50}, 100)
	check("outlier growth")
	if g.Rebuckets() == 0 {
		t.Fatal("outlier growth did not rebucket")
	}
	// Removing the outlier must eventually shrink the cells back.
	g.Remove(2)
	check("outlier departure")
	if g.CellSize() > 4 {
		t.Fatalf("cell stayed at %g after the outlier left", g.CellSize())
	}
	// Scratch-reuse shape: Neighbors must append to the passed slice.
	scratch := make([]int64, 0, 8)
	out := g.Neighbors(geom.Point{X: 0, Y: 0}, 1, -1, scratch[:0])
	if len(out) != 1 || out[0] != 1 {
		t.Fatalf("query after churn = %v, want [1]", out)
	}
}

// TestGridRemoveUnknown pins no-op semantics for unknown ids and empties.
func TestGridRemoveUnknown(t *testing.T) {
	g := New[int64]()
	g.Remove(99)
	if out := g.Neighbors(geom.Point{}, 1, -1, nil); len(out) != 0 {
		t.Fatalf("empty grid returned %v", out)
	}
	g.Insert(1, geom.Point{X: 1, Y: 1}, 2)
	g.Remove(99)
	g.Remove(1)
	g.Remove(1)
	if g.Len() != 0 {
		t.Fatalf("grid kept %d items after removals", g.Len())
	}
}
