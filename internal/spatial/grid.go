// Package spatial is the deterministic spatial-index substrate of the live
// broker's conflict maintenance: a uniform grid over anchored items in the
// plane, supporting O(local density) candidate queries where the conflict
// models used to scan every live bidder.
//
// The contract the conflict backends build on:
//
//   - Every item is an (anchor point, reach radius) pair chosen by the
//     caller so that its conflict predicate implies proximity:
//     conflict(a, b) ⇒ dist(anchor_a, anchor_b) ≤ reach_a + reach_b.
//     (Disk models use the disk itself; link models use the sender with
//     reach (2+Δ)·length — see the derivations in internal/broker/model.go.)
//   - Neighbors returns exactly the ids j with
//     dist(p, anchor_j) ≤ reach + reach_j — a provable superset of the
//     conflicts of a query item (p, reach) — in ascending id order, so the
//     edge deltas built from it are byte-deterministic under the reprovet
//     contract regardless of internal bucket order.
//   - The grid is a pure function of the operation sequence: cell size,
//     bucket contents, and rebucket points depend only on the Insert /
//     Update / Remove history, never on map iteration order or time.
//
// Cell-size policy: the cell edge tracks the maximum live reach (the
// model's interaction radius). The grid rebuckets — rebuilds every bucket
// at a new cell size — when an outlier grows the maximum reach beyond
// growFactor × the current cell (queries would otherwise scan a box of
// ever-more cells), and when the maximum reach shrinks below the cell /
// shrinkFactor (buckets would otherwise grow dense and queries degrade
// back toward a linear scan). Between rebuckets the invariant
// cell/shrinkFactor ≤ maxReach ≤ growFactor·cell holds, so a query for
// reach r touches O(((r+maxReach)/cell)²) = O((r/maxReach)²) cells.
package spatial

import (
	"cmp"
	"math"
	"sort"

	"repro/internal/geom"
)

// growFactor and shrinkFactor bound the drift between the cell edge and the
// maximum live reach before the grid rebuckets (see the package comment).
const (
	growFactor   = 2.0
	shrinkFactor = 4.0
)

type cellKey struct{ x, y int64 }

type entry struct {
	pos   geom.Point
	reach float64
	cell  cellKey
}

// Grid is a deterministic uniform-grid spatial index over items identified
// by an ordered key type (the broker instantiates it with BidderID). The
// zero value is not usable; call New. A Grid is not safe for concurrent
// mutation; the broker serializes all mutating calls under its epoch tick,
// mirroring the ConflictModel contract.
type Grid[ID cmp.Ordered] struct {
	cell      float64
	items     map[ID]entry
	cells     map[cellKey][]ID
	maxReach  float64
	rebuckets int
}

// New creates an empty grid. The cell size is derived from the first
// insertion's reach and maintained by the rebucket policy thereafter.
func New[ID cmp.Ordered]() *Grid[ID] {
	return &Grid[ID]{
		items: make(map[ID]entry),
		cells: make(map[cellKey][]ID),
	}
}

// Len returns the number of live items.
func (g *Grid[ID]) Len() int { return len(g.items) }

// CellSize returns the current cell edge (0 while empty and never
// inserted). Exposed for tests pinning the rebucket policy.
func (g *Grid[ID]) CellSize() float64 { return g.cell }

// MaxReach returns the maximum reach among live items.
func (g *Grid[ID]) MaxReach() float64 { return g.maxReach }

// Rebuckets returns how many times the grid has rebuilt its buckets.
func (g *Grid[ID]) Rebuckets() int { return g.rebuckets }

// At returns the stored anchor and reach of id.
func (g *Grid[ID]) At(id ID) (geom.Point, float64, bool) {
	e, ok := g.items[id]
	return e.pos, e.reach, ok
}

func (g *Grid[ID]) keyOf(p geom.Point) cellKey {
	return cellKey{
		x: int64(math.Floor(p.X / g.cell)),
		y: int64(math.Floor(p.Y / g.cell)),
	}
}

// Insert registers id at anchor p with the given reach (replacing any
// existing registration — Insert and Update are synonyms). reach must be
// positive and finite; the conflict models validate geometry before it ever
// reaches the grid.
func (g *Grid[ID]) Insert(id ID, p geom.Point, reach float64) {
	if old, ok := g.items[id]; ok {
		if old.pos == p && old.reach == reach {
			return
		}
		g.removeFromCell(id, old.cell)
		delete(g.items, id)
		if old.reach == g.maxReach {
			g.recomputeMaxReach()
		}
	}
	if g.cell == 0 {
		g.cell = reach
	}
	if reach > g.maxReach {
		g.maxReach = reach
	}
	ck := g.keyOf(p)
	g.items[id] = entry{pos: p, reach: reach, cell: ck}
	g.cells[ck] = append(g.cells[ck], id)
	g.maybeRebucket()
}

// Update relocates id (a registered item) to a new anchor and reach.
func (g *Grid[ID]) Update(id ID, p geom.Point, reach float64) { g.Insert(id, p, reach) }

// Remove unregisters id; unknown ids are a no-op.
func (g *Grid[ID]) Remove(id ID) {
	e, ok := g.items[id]
	if !ok {
		return
	}
	g.removeFromCell(id, e.cell)
	delete(g.items, id)
	if e.reach == g.maxReach {
		g.recomputeMaxReach()
	}
	g.maybeRebucket()
}

// removeFromCell deletes id from its bucket. Buckets are unordered sets
// (Neighbors sorts its output), so the removal swap-deletes.
func (g *Grid[ID]) removeFromCell(id ID, ck cellKey) {
	ids := g.cells[ck]
	for i, other := range ids {
		if other == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(g.cells, ck)
	} else {
		g.cells[ck] = ids
	}
}

// recomputeMaxReach rescans after the holder of the maximum departed.
func (g *Grid[ID]) recomputeMaxReach() {
	max := 0.0
	//reprovet:unordered max over live reaches; every visit order yields the same maximum
	for _, e := range g.items {
		if e.reach > max {
			max = e.reach
		}
	}
	g.maxReach = max
}

// maybeRebucket rebuilds every bucket at cell = maxReach when the current
// cell size has drifted outside [maxReach/growFactor, maxReach·shrinkFactor]
// — an outlier grew the interaction radius past what the buckets were sized
// for, or the outliers left and the buckets are now too coarse.
func (g *Grid[ID]) maybeRebucket() {
	if len(g.items) == 0 || g.maxReach == 0 {
		return
	}
	if g.maxReach > g.cell*growFactor || g.maxReach < g.cell/shrinkFactor {
		g.rebucket(g.maxReach)
	}
}

// rebucket rebuilds the buckets at a new cell edge. Bucket insertion runs
// in ascending id order purely so the grid's internal state is itself a
// deterministic function of the op history (Neighbors would sort anyway).
func (g *Grid[ID]) rebucket(cell float64) {
	g.cell = cell
	g.rebuckets++
	ids := make([]ID, 0, len(g.items))
	for id := range g.items {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	g.cells = make(map[cellKey][]ID, len(g.cells))
	for _, id := range ids {
		e := g.items[id]
		e.cell = g.keyOf(e.pos)
		g.items[id] = e
		g.cells[e.cell] = append(g.cells[e.cell], id)
	}
}

// Neighbors appends to out every id j ≠ exclude with
// dist(p, anchor_j) ≤ reach + reach_j, in ascending id order, and returns
// the extended slice (pass a reused scratch slice truncated to [:0] to
// amortize allocation). For a query item placed by the models' anchoring
// contract this is a provable superset of its conflict partners.
func (g *Grid[ID]) Neighbors(p geom.Point, reach float64, exclude ID, out []ID) []ID {
	if len(g.items) == 0 {
		return out
	}
	base := len(out)
	w := reach + g.maxReach
	x0 := int64(math.Floor((p.X - w) / g.cell))
	x1 := int64(math.Floor((p.X + w) / g.cell))
	y0 := int64(math.Floor((p.Y - w) / g.cell))
	y1 := int64(math.Floor((p.Y + w) / g.cell))
	filter := func(ids []ID) {
		for _, id := range ids {
			if id == exclude {
				continue
			}
			e := g.items[id]
			if p.Dist(e.pos) <= reach+e.reach {
				out = append(out, id)
			}
		}
	}
	// A query whose reach dwarfs the cell size (an outlier arriving before
	// its insertion triggers a rebucket) would walk a huge, mostly empty
	// box; iterating the occupied buckets instead bounds the work by the
	// live population. Both paths visit the same buckets; the ascending-id
	// sort below makes the output identical either way.
	if boxCells := (x1 - x0 + 1) * (y1 - y0 + 1); boxCells > int64(len(g.cells)) {
		//reprovet:unordered buckets are filtered into out, which is sorted ascending below; bucket visit order is immaterial
		for ck, ids := range g.cells {
			if ck.x < x0 || ck.x > x1 || ck.y < y0 || ck.y > y1 {
				continue
			}
			filter(ids)
		}
	} else {
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				filter(g.cells[cellKey{x, y}])
			}
		}
	}
	added := out[base:]
	sort.Slice(added, func(i, j int) bool { return added[i] < added[j] })
	return out
}

// NeighborsOf is Neighbors anchored at a registered item: candidates for
// id's own conflicts, excluding id itself. Unknown ids return out unchanged.
func (g *Grid[ID]) NeighborsOf(id ID, out []ID) []ID {
	e, ok := g.items[id]
	if !ok {
		return out
	}
	return g.Neighbors(e.pos, e.reach, id, out)
}
