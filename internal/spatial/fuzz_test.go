package spatial

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
)

// FuzzGridNeighbors drives the grid with an op stream decoded from the fuzz
// input and pins, after every mutation, a NeighborsOf query of the touched
// item against the all-pairs scan. The decoder quantizes coordinates and
// reaches so the fuzzer can explore degenerate layouts (co-located anchors,
// reach ties, items straddling cell boundaries) without drowning in float
// noise.
func FuzzGridNeighbors(f *testing.F) {
	f.Add([]byte{0, 10, 20, 1, 1, 30, 40, 2, 2, 0, 0})
	f.Add([]byte{3, 200, 200, 255, 0, 1, 1, 1, 1, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := New[int64]()
		b := newBrute()
		var next int64
		live := []int64{}
		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 3
			p := geom.Point{
				X: float64(int(data[i+1])-128) / 4,
				Y: float64(int(data[i+2])-128) / 4,
			}
			reach := 0.25 * float64(1+data[i+3]%64)
			var probe int64 = -1
			switch {
			case op == 0 || len(live) == 0: // insert
				next++
				g.Insert(next, p, reach)
				b.insert(next, p, reach)
				live = append(live, next)
				probe = next
			case op == 1: // remove
				idx := int(data[i+1]) % len(live)
				id := live[idx]
				live = append(live[:idx], live[idx+1:]...)
				g.Remove(id)
				b.remove(id)
			default: // update
				id := live[int(data[i+3])%len(live)]
				g.Update(id, p, reach)
				b.insert(id, p, reach)
				probe = id
			}
			if g.Len() != len(b.items) {
				t.Fatalf("size drift: grid %d, brute %d", g.Len(), len(b.items))
			}
			if probe >= 0 {
				want := b.neighbors(b.items[probe].pos, b.items[probe].reach, probe)
				got := g.NeighborsOf(probe, nil)
				if !sameIDs(got, want) {
					t.Fatalf("NeighborsOf(%d) = %v, brute %v", probe, got, want)
				}
				if !sort.SliceIsSorted(got, func(a, c int) bool { return got[a] < got[c] }) {
					t.Fatalf("NeighborsOf(%d) not ascending: %v", probe, got)
				}
			}
			if g.Len() > 0 {
				if m := g.MaxReach(); math.IsNaN(m) || m <= 0 {
					t.Fatalf("bad maxReach %g", m)
				}
			}
		}
	})
}
