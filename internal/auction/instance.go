// Package auction implements the paper's primary contribution: approximation
// algorithms for combinatorial auctions with (edge-weighted) conflict graphs
// (Problem 1).
//
// The pipeline is:
//
//  1. Build the LP relaxation (1)/(4) over the model's ordering π and
//     inductive independence bound ρ, with one variable per (bidder, bundle)
//     pair. Solve it by column generation: the pricing step queries each
//     bidder's demand oracle at the bidder-specific channel prices
//     p_{v,j} = Σ_{u: v∈Γπ(u)} w̄(v,u)·y_{u,j}, exactly the dual separation
//     of Section 2.2.
//  2. Round the fractional optimum with Algorithm 1 (unweighted,
//     Theorem 3: expected value ≥ b*/8√kρ) or Algorithm 2 + Algorithm 3
//     (weighted, Lemmas 7+8: ≥ b*/16√kρ⌈log n⌉), either by sampling or
//     derandomized via the method of conditional expectations.
//
// Asymmetric channels (Section 6) are handled by SolveAsymmetric with the
// k·ρ scaling.
package auction

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/valuation"
)

// Instance is a combinatorial auction with conflict graph: n bidders (the
// vertices of the conflict graph), k symmetric channels, and a valuation
// (with demand oracle) per bidder.
type Instance struct {
	Conf    *models.Conflict
	K       int
	Bidders []valuation.Valuation

	// sup lazily caches the conflict structure's support adjacency (see
	// supports). Built at most once per instance; safe under the concurrent
	// read-only use the rounding paths rely on.
	sup atomic.Pointer[supportAdj]
}

// NewInstance validates and assembles an instance.
func NewInstance(conf *models.Conflict, k int, bidders []valuation.Valuation) (*Instance, error) {
	if conf == nil {
		return nil, fmt.Errorf("auction: nil conflict structure")
	}
	if k < 1 || k > valuation.MaxChannels {
		return nil, fmt.Errorf("auction: k=%d out of range [1,%d]", k, valuation.MaxChannels)
	}
	if len(bidders) != conf.N() {
		return nil, fmt.Errorf("auction: %d bidders for %d vertices", len(bidders), conf.N())
	}
	for i, b := range bidders {
		if b.K() != k {
			return nil, fmt.Errorf("auction: bidder %d has %d channels, instance has %d", i, b.K(), k)
		}
	}
	if conf.RhoBound <= 0 {
		return nil, fmt.Errorf("auction: non-positive rho bound %g", conf.RhoBound)
	}
	return &Instance{Conf: conf, K: k, Bidders: bidders}, nil
}

// N returns the number of bidders.
func (in *Instance) N() int { return len(in.Bidders) }

// Unweighted reports whether the instance uses a binary conflict graph.
func (in *Instance) Unweighted() bool { return in.Conf.Binary != nil }

// Allocation assigns each bidder a bundle of channels (possibly empty).
type Allocation []valuation.Bundle

// Welfare returns the social welfare Σ_v b_v(S(v)) of the allocation under
// the given bidders.
func (s Allocation) Welfare(bidders []valuation.Valuation) float64 {
	total := 0.0
	for v, t := range s {
		if t != valuation.Empty {
			total += bidders[v].Value(t)
		}
	}
	return total
}

// ChannelSet returns the bidders assigned channel j.
func (s Allocation) ChannelSet(j int) []int {
	var out []int
	for v, t := range s {
		if t.Has(j) {
			out = append(out, v)
		}
	}
	return out
}

// Clone returns a copy of the allocation.
func (s Allocation) Clone() Allocation {
	out := make(Allocation, len(s))
	copy(out, s)
	return out
}

// Feasible reports whether the allocation is feasible for the instance: for
// every channel, the set of bidders assigned to it is independent in the
// conflict graph (unweighted or weighted sense).
func (in *Instance) Feasible(s Allocation) bool {
	if len(s) != in.N() {
		return false
	}
	for j := 0; j < in.K; j++ {
		set := s.ChannelSet(j)
		if in.Conf.Binary != nil {
			if !in.Conf.Binary.IsIndependent(set) {
				return false
			}
		} else if !in.Conf.W.IsIndependent(set) {
			return false
		}
	}
	return true
}

// coef returns the LP coefficient of vertex u in vertex v's interference
// constraint: 1 for a conflict edge in the unweighted LP (1b), the symmetric
// weight w̄(u,v) in the weighted LP (4b).
func (in *Instance) coef(u, v int) float64 {
	if u == v {
		return 0
	}
	if in.Conf.Binary != nil {
		if in.Conf.Binary.HasEdge(u, v) {
			return 1
		}
		return 0
	}
	return in.Conf.W.Wbar(u, v)
}

// supportAdj is the support adjacency of the conflict structure: for each
// vertex v, the vertices with a positive LP coefficient before v in π
// (back), after v (fwd), and both merged in ascending index order (sym).
// It depends only on Conf, never on the valuations, so instances sharing a
// conflict structure can share it (WithBidders).
type supportAdj struct {
	back, fwd, sym [][]int
}

// supports returns the cached support adjacency, building it on first use.
// A concurrent duplicate build is benign: the structure is deterministic and
// the first stored pointer wins.
func (in *Instance) supports() *supportAdj {
	if s := in.sup.Load(); s != nil {
		return s
	}
	n := in.N()
	s := &supportAdj{
		back: make([][]int, n),
		fwd:  make([][]int, n),
		sym:  make([][]int, n),
	}
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			switch {
			case in.Conf.Pi.Before(u, v) && in.coef(u, v) > 0:
				s.back[v] = append(s.back[v], u)
				s.sym[v] = append(s.sym[v], u)
			case in.Conf.Pi.Before(v, u) && in.coef(v, u) > 0:
				s.fwd[v] = append(s.fwd[v], u)
				s.sym[v] = append(s.sym[v], u)
			}
		}
	}
	if !in.sup.CompareAndSwap(nil, s) {
		return in.sup.Load()
	}
	return s
}

// WithBidders returns an instance over the same conflict structure and
// channel count but a different valuation profile, sharing the (possibly
// already built) support adjacency cache. The mechanism's n+1 VCG sub-solves
// use this to avoid rebuilding the O(n²) adjacency per sub-instance.
func (in *Instance) WithBidders(bidders []valuation.Valuation) *Instance {
	out := &Instance{Conf: in.Conf, K: in.K, Bidders: bidders}
	out.sup.Store(in.supports())
	return out
}

// backwardSupport returns vertices u with π(u) < π(v) and coef(u,v) > 0, in
// ascending index order. The returned slice is shared; callers must not
// modify it.
func (in *Instance) backwardSupport(v int) []int { return in.supports().back[v] }

// forwardSupport returns vertices w with π(v) < π(w) and coef(v,w) > 0,
// i.e. the vertices whose constraints bidder v's columns appear in. The
// returned slice is shared; callers must not modify it.
func (in *Instance) forwardSupport(v int) []int { return in.supports().fwd[v] }

// symSupport returns every vertex with a positive symmetric coefficient
// against v, in ascending index order. The returned slice is shared; callers
// must not modify it.
func (in *Instance) symSupport(v int) []int { return in.supports().sym[v] }

// ApproximationFactor returns the factor α the paper proves for this
// instance class: 8√k·ρ for unweighted conflict graphs (Theorem 3) and
// 16√k·ρ·⌈log₂ n⌉ for weighted ones (Lemmas 7 and 8).
func (in *Instance) ApproximationFactor() float64 {
	sqrtK := math.Sqrt(float64(in.K))
	if in.Unweighted() {
		return 8 * sqrtK * in.Conf.RhoBound
	}
	logN := math.Max(1, math.Ceil(math.Log2(float64(in.N()))))
	return 16 * sqrtK * in.Conf.RhoBound * logN
}

// ordering is a convenience accessor.
func (in *Instance) ordering() graph.Ordering { return in.Conf.Pi }
