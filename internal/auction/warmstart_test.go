package auction

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/valuation"
)

// Warm-start equivalence: column generation on the incremental master
// (SolveLP, tableau and basis kept across rounds) must reach the same LP
// optimum as the rebuild-per-round reference (SolveLPCold). The optimum
// value of the relaxation is unique, so the two paths must agree to
// numerical precision even when they terminate in different optimal bases.

const warmTol = 1e-9

// checkWarmColdAgree solves the instance both ways and compares optima.
func checkWarmColdAgree(t *testing.T, in *Instance, label string) {
	t.Helper()
	warm, err := in.SolveLP()
	if err != nil {
		t.Fatalf("%s: warm SolveLP: %v", label, err)
	}
	cold, err := in.SolveLPCold()
	if err != nil {
		t.Fatalf("%s: cold SolveLP: %v", label, err)
	}
	scale := 1 + math.Abs(cold.Value)
	if d := math.Abs(warm.Value - cold.Value); d > warmTol*scale {
		t.Fatalf("%s: warm optimum %.15g vs cold optimum %.15g (diff %g)",
			label, warm.Value, cold.Value, d)
	}
	if err := in.CheckLPFeasible(warm, 1e-7); err != nil {
		t.Fatalf("%s: warm solution infeasible: %v", label, err)
	}
	if err := in.CheckLPFeasible(cold, 1e-7); err != nil {
		t.Fatalf("%s: cold solution infeasible: %v", label, err)
	}
}

// protocolTestInstance mirrors the E1 workload shape: protocol-model
// conflicts over uniform links with a random valuation mix.
func protocolTestInstance(seed int64, n, k int) *Instance {
	rng := rand.New(rand.NewSource(seed))
	links := geom.UniformLinks(rng, n, 100, 2, 10)
	conf := models.Protocol(links, 1.0)
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

// sinrTestInstance mirrors the E2 workload shape: weighted physical-model
// (SINR) conflicts under uniform power.
func sinrTestInstance(seed int64, n, k int) *Instance {
	rng := rand.New(rand.NewSource(seed))
	links := geom.UniformLinks(rng, n, 200, 1, 8)
	conf := models.Physical(links, models.UniformPower, models.DefaultSINR())
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

// diskTestInstance mirrors the E9 workload shape: disk-graph conflicts with
// additive bidders (the mechanism's testbed).
func diskTestInstance(seed int64, n, k int) *Instance {
	rng := rand.New(rand.NewSource(seed))
	centers := geom.UniformPoints(rng, n, 60)
	radii := make([]float64, n)
	for i := range radii {
		radii[i] = 4 + rng.Float64()*8
	}
	conf := models.Disk(centers, radii)
	bidders := make([]valuation.Valuation, n)
	for i := range bidders {
		bidders[i] = valuation.RandomAdditive(rng, k, 1, 10)
	}
	in, err := NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

func TestWarmColdEquivalenceProtocol(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		checkWarmColdAgree(t, protocolTestInstance(seed, 24, 4), "protocol")
	}
}

func TestWarmColdEquivalenceSINR(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		checkWarmColdAgree(t, sinrTestInstance(seed, 16, 3), "sinr")
	}
}

func TestWarmColdEquivalenceDisk(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		checkWarmColdAgree(t, diskTestInstance(seed, 8, 2), "disk")
	}
}

// TestMasterLPReSolve exercises the mechanism's warm-restart pattern: the
// same master re-solved with one bidder zeroed must match a from-scratch
// solve of the reduced profile.
func TestMasterLPReSolve(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := diskTestInstance(seed, 8, 2)
		master := in.NewMasterLP(in.Bidders, nil)
		full, err := master.Solve(in.Bidders)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < in.N(); v++ {
			bidders := append([]valuation.Valuation(nil), in.Bidders...)
			bidders[v] = valuation.NewTable(in.K, nil)
			warm, err := master.Solve(bidders)
			if err != nil {
				t.Fatalf("warm sub-solve without bidder %d: %v", v, err)
			}
			sub := in.WithBidders(bidders)
			cold, err := sub.SolveLPCold()
			if err != nil {
				t.Fatalf("cold sub-solve without bidder %d: %v", v, err)
			}
			scale := 1 + math.Abs(cold.Value)
			if d := math.Abs(warm.Value - cold.Value); d > warmTol*scale {
				t.Fatalf("sub-LP without bidder %d: warm %.15g vs cold %.15g", v, warm.Value, cold.Value)
			}
			if warm.Value > full.Value+warmTol*scale {
				t.Fatalf("sub-LP without bidder %d exceeds full optimum: %g > %g", v, warm.Value, full.Value)
			}
		}
	}
}

// TestSolveLPWarmSeeded checks that seeding with a solved instance's columns
// (values re-priced) cannot change the optimum.
func TestSolveLPWarmSeeded(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := protocolTestInstance(seed, 16, 3)
		plain, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		seeded, err := in.SolveLPWarm(plain.Columns)
		if err != nil {
			t.Fatal(err)
		}
		scale := 1 + math.Abs(plain.Value)
		if d := math.Abs(seeded.Value - plain.Value); d > warmTol*scale {
			t.Fatalf("seeded optimum %.15g vs plain %.15g", seeded.Value, plain.Value)
		}
	}
}
