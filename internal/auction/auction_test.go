package auction

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/valuation"
)

// testInstance builds a small protocol-model instance with a mixed bidder
// population.
func testInstance(seed int64, n, k int) *Instance {
	rng := rand.New(rand.NewSource(seed))
	links := geom.UniformLinks(rng, n, 60, 2, 8)
	conf := models.Protocol(links, 1)
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

// testWeightedInstance builds a small physical-model instance.
func testWeightedInstance(seed int64, n, k int) *Instance {
	rng := rand.New(rand.NewSource(seed))
	links := geom.UniformLinks(rng, n, 120, 1, 6)
	conf := models.Physical(links, models.UniformPower, models.DefaultSINR())
	bidders := valuation.RandomMix(rng, n, k, 1, 10)
	in, err := NewInstance(conf, k, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	conf := models.CliqueConflict(3)
	good := []valuation.Valuation{
		valuation.NewAdditive([]float64{1, 2}),
		valuation.NewAdditive([]float64{1, 2}),
		valuation.NewAdditive([]float64{1, 2}),
	}
	if _, err := NewInstance(conf, 2, good); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	if _, err := NewInstance(nil, 2, good); err == nil {
		t.Fatal("nil conflict accepted")
	}
	if _, err := NewInstance(conf, 0, good); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewInstance(conf, 2, good[:2]); err == nil {
		t.Fatal("bidder count mismatch accepted")
	}
	bad := []valuation.Valuation{
		valuation.NewAdditive([]float64{1}),
		valuation.NewAdditive([]float64{1, 2}),
		valuation.NewAdditive([]float64{1, 2}),
	}
	if _, err := NewInstance(conf, 2, bad); err == nil {
		t.Fatal("bidder k mismatch accepted")
	}
	confBad := models.CliqueConflict(3)
	confBad.RhoBound = 0
	if _, err := NewInstance(confBad, 2, good); err == nil {
		t.Fatal("rho=0 accepted")
	}
}

func TestAllocationHelpers(t *testing.T) {
	bidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{1, 2}),
		valuation.NewAdditive([]float64{3, 4}),
	}
	s := Allocation{valuation.FromChannels(0), valuation.FromChannels(0, 1)}
	if w := s.Welfare(bidders); w != 1+7 {
		t.Fatalf("welfare = %g, want 8", w)
	}
	if set := s.ChannelSet(0); len(set) != 2 {
		t.Fatalf("channel 0 set = %v", set)
	}
	if set := s.ChannelSet(1); len(set) != 1 || set[0] != 1 {
		t.Fatalf("channel 1 set = %v", set)
	}
	c := s.Clone()
	c[0] = valuation.Empty
	if s[0] == valuation.Empty {
		t.Fatal("Clone must not alias")
	}
}

func TestFeasibleClique(t *testing.T) {
	conf := models.CliqueConflict(2)
	bidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{1}),
		valuation.NewAdditive([]float64{1}),
	}
	in, _ := NewInstance(conf, 1, bidders)
	if !in.Feasible(Allocation{valuation.FromChannels(0), valuation.Empty}) {
		t.Fatal("single winner must be feasible")
	}
	if in.Feasible(Allocation{valuation.FromChannels(0), valuation.FromChannels(0)}) {
		t.Fatal("two clique bidders on one channel must be infeasible")
	}
	if in.Feasible(Allocation{valuation.FromChannels(0)}) {
		t.Fatal("wrong-length allocation accepted")
	}
}

// explicitLPValue solves the relaxation with every bundle enumerated as an
// explicit column — the ground truth the demand-oracle column generation
// must match.
func explicitLPValue(t *testing.T, in *Instance) float64 {
	t.Helper()
	sol, err := in.SolveLPExplicit()
	if err != nil {
		t.Fatalf("explicit LP: %v", err)
	}
	return sol.Value
}

func TestSolveLPExplicitRejectsLargeK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	conf := models.CliqueConflict(2)
	bidders := valuation.RandomMix(rng, 2, 17, 1, 2)
	in, _ := NewInstance(conf, 17, bidders)
	if _, err := in.SolveLPExplicit(); err == nil {
		t.Fatal("k=17 accepted")
	}
}

func TestSolveLPExplicitRoundable(t *testing.T) {
	// The explicit solution feeds the same rounding pipeline.
	in := testInstance(4, 8, 2)
	sol, err := in.SolveLPExplicit()
	if err != nil {
		t.Fatal(err)
	}
	s, _ := in.RoundDerandomized(sol)
	if !in.Feasible(s) {
		t.Fatal("infeasible")
	}
	if w := s.Welfare(in.Bidders); w < sol.Value/in.ApproximationFactor()-1e-9 {
		t.Fatalf("welfare %g below guarantee", w)
	}
}

// TestColumnGenerationMatchesExplicitLP is the core pricing-correctness
// test: the demand-oracle column generation must reach the optimum of the
// full exponential-size LP.
func TestColumnGenerationMatchesExplicitLP(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		in := testInstance(seed, 7, 3)
		sol, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		want := explicitLPValue(t, in)
		if math.Abs(sol.Value-want) > 1e-6*(1+want) {
			t.Fatalf("seed %d: colgen value %g != explicit %g", seed, sol.Value, want)
		}
	}
}

func TestColumnGenerationMatchesExplicitLPWeighted(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := testWeightedInstance(seed, 6, 2)
		sol, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		want := explicitLPValue(t, in)
		if math.Abs(sol.Value-want) > 1e-6*(1+want) {
			t.Fatalf("seed %d: colgen value %g != explicit %g", seed, sol.Value, want)
		}
	}
}

// TestLemma1 verifies Lemma 1: every feasible allocation, written as a 0/1
// vector, satisfies the LP constraints with the model's certified ρ. Random
// feasible allocations are produced greedily.
func TestLemma1(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var in *Instance
		if seed%2 == 0 {
			in = testInstance(seed, 10, 3)
		} else {
			in = testWeightedInstance(seed, 8, 2)
		}
		// Build a random feasible allocation greedily.
		s := make(Allocation, in.N())
		for _, v := range rng.Perm(in.N()) {
			tb := valuation.Bundle(rng.Intn(1 << uint(in.K)))
			trial := s.Clone()
			trial[v] = tb
			if in.Feasible(trial) {
				s = trial
			}
		}
		// Encode as an integral LP solution.
		var cols []Column
		var x []float64
		for v, tb := range s {
			if tb != valuation.Empty {
				cols = append(cols, Column{V: v, T: tb, Value: in.Bidders[v].Value(tb)})
				x = append(x, 1)
			}
		}
		sol := &LPSolution{Columns: cols, X: x}
		return in.CheckLPFeasible(sol, 1e-9) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLPSolutionFeasible: SolveLP outputs satisfy their own constraints.
func TestLPSolutionFeasible(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := testInstance(seed, 12, 4)
		sol, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		if err := in.CheckLPFeasible(sol, 1e-6); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestLPUpperBoundsOPT: b* must be an upper bound on any feasible welfare
// (tested against greedy feasible allocations).
func TestLPUpperBoundsOPT(t *testing.T) {
	check := func(seed int64) bool {
		in := testInstance(seed, 8, 2)
		sol, err := in.SolveLP()
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		s := make(Allocation, in.N())
		for _, v := range rng.Perm(in.N()) {
			zero := make([]float64, in.K)
			want, _ := in.Bidders[v].Demand(zero)
			trial := s.Clone()
			trial[v] = want
			if in.Feasible(trial) {
				s = trial
			}
		}
		return s.Welfare(in.Bidders) <= sol.Value+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundingAlwaysFeasible: every sampled rounding is feasible, across
// unweighted and weighted instances.
func TestRoundingAlwaysFeasible(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, weighted := range []bool{false, true} {
			var in *Instance
			if weighted {
				in = testWeightedInstance(seed, 8, 3)
			} else {
				in = testInstance(seed, 10, 3)
			}
			sol, err := in.SolveLP()
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed))
			for trial := 0; trial < 25; trial++ {
				s, _ := in.RoundOnce(sol, rng)
				if !in.Feasible(s) {
					t.Fatalf("seed %d weighted=%v trial %d: infeasible rounding", seed, weighted, trial)
				}
			}
		}
	}
}

// TestDerandomizedGuaranteeUnweighted asserts Theorem 3 deterministically:
// the derandomized rounding achieves welfare ≥ b*/(8√k·ρ).
func TestDerandomizedGuaranteeUnweighted(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		in := testInstance(seed, 12, 4)
		sol, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		s, _ := in.RoundDerandomized(sol)
		if !in.Feasible(s) {
			t.Fatalf("seed %d: derandomized allocation infeasible", seed)
		}
		bound := sol.Value / in.ApproximationFactor()
		if w := s.Welfare(in.Bidders); w < bound-1e-9 {
			t.Fatalf("seed %d: welfare %g below guarantee %g", seed, w, bound)
		}
	}
}

// TestDerandomizedGuaranteeWeighted asserts Lemmas 7+8 deterministically.
func TestDerandomizedGuaranteeWeighted(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		in := testWeightedInstance(seed, 10, 3)
		sol, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		s, iters := in.RoundDerandomized(sol)
		if !in.Feasible(s) {
			t.Fatalf("seed %d: infeasible", seed)
		}
		logN := math.Ceil(math.Log2(float64(in.N())))
		if float64(iters) > logN+1 {
			t.Fatalf("seed %d: Algorithm 3 used %d iterations, bound %g", seed, iters, logN)
		}
		bound := sol.Value / in.ApproximationFactor()
		if w := s.Welfare(in.Bidders); w < bound-1e-9 {
			t.Fatalf("seed %d: welfare %g below guarantee %g", seed, w, bound)
		}
	}
}

// TestMakeFeasibleInvariants: Algorithm 3 outputs are feasible and use at
// most ⌈log₂ n⌉ iterations on partly-feasible inputs.
func TestMakeFeasibleInvariants(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		in := testWeightedInstance(seed, 12, 2)
		sol, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		plans := buildPlans(in, sol)
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 10; trial++ {
			for l := 0; l < 2; l++ {
				partly := in.resolveWeighted(plans[l].sample(rng))
				if !in.PartlyFeasible(partly) {
					t.Fatal("resolveWeighted must produce partly-feasible allocations")
				}
				s, iters := in.MakeFeasible(partly)
				if !in.Feasible(s) {
					t.Fatal("MakeFeasible output infeasible")
				}
				logN := int(math.Ceil(math.Log2(float64(in.N()))))
				if iters > logN+1 {
					t.Fatalf("Algorithm 3 used %d iterations, want ≤ %d", iters, logN+1)
				}
			}
		}
	}
}

func TestSolveEndToEnd(t *testing.T) {
	in := testInstance(3, 10, 3)
	res, err := Solve(in, Options{Seed: 1, Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(res.Alloc) {
		t.Fatal("infeasible result")
	}
	if res.Welfare <= 0 || res.LP.Value < res.Welfare-1e-9 {
		t.Fatalf("welfare %g vs LP %g inconsistent", res.Welfare, res.LP.Value)
	}
	if res.Factor != in.ApproximationFactor() {
		t.Fatal("factor not propagated")
	}
	// Derandomized path.
	res2, err := Solve(in, Options{Derandomize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Welfare < res2.LP.Value/res2.Factor-1e-9 {
		t.Fatal("derandomized solve misses its guarantee")
	}
}

func TestSolveEmptyMarket(t *testing.T) {
	conf := models.CliqueConflict(3)
	bidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{0, 0}),
		valuation.NewAdditive([]float64{0, 0}),
		valuation.NewAdditive([]float64{0, 0}),
	}
	in, _ := NewInstance(conf, 2, bidders)
	res, err := Solve(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare != 0 || res.LP.Value != 0 {
		t.Fatal("empty market must clear at zero")
	}
}

func TestApproximationFactor(t *testing.T) {
	in := testInstance(1, 8, 4)
	want := 8 * math.Sqrt(4) * in.Conf.RhoBound
	if got := in.ApproximationFactor(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("factor = %g, want %g", got, want)
	}
	wIn := testWeightedInstance(1, 8, 4)
	logN := math.Ceil(math.Log2(8))
	wantW := 16 * math.Sqrt(4) * wIn.Conf.RhoBound * logN
	if got := wIn.ApproximationFactor(); math.Abs(got-wantW) > 1e-9 {
		t.Fatalf("weighted factor = %g, want %g", got, wantW)
	}
}

func TestCliqueLPMatchesCombinatorialAuction(t *testing.T) {
	// A clique with k=1 is a single-item auction; the LP value must be at
	// least the best bid and at most twice it (capacity row + the last
	// vertex's interference row each allow 1 unit).
	conf := models.CliqueConflict(4)
	bidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{3}),
		valuation.NewAdditive([]float64{7}),
		valuation.NewAdditive([]float64{5}),
		valuation.NewAdditive([]float64{1}),
	}
	in, _ := NewInstance(conf, 1, bidders)
	sol, err := in.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value < 7-1e-9 {
		t.Fatalf("LP value %g below best bid 7", sol.Value)
	}
	if sol.Value > 14+1e-9 {
		t.Fatalf("LP value %g exceeds 2×best bid", sol.Value)
	}
}
