package auction

import (
	"math/rand"
	"testing"

	"repro/internal/valuation"
)

// TestLiteralResolutionDominated: for the same tentative draw, the final-set
// resolution keeps a superset of the literal (paper-printed) resolution's
// winners, so its welfare is at least as high — per sample, not just in
// expectation.
func TestLiteralResolutionDominated(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		in := testInstance(seed, 14, 3)
		sol, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		plans := buildPlans(in, sol)
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 40; trial++ {
			for l := 0; l < 2; l++ {
				tentative := plans[l].sample(rng)
				literal := in.resolveUnweightedLiteral(tentative.Clone())
				final := in.resolveUnweighted(tentative.Clone())
				if !in.Feasible(literal) || !in.Feasible(final) {
					t.Fatal("infeasible resolution output")
				}
				for v := 0; v < in.N(); v++ {
					if literal[v] != valuation.Empty && final[v] == valuation.Empty {
						t.Fatalf("literal kept %d but final-set removed it", v)
					}
				}
				if literal.Welfare(in.Bidders) > final.Welfare(in.Bidders)+1e-9 {
					t.Fatal("literal welfare exceeds final-set welfare")
				}
			}
		}
	}
}

// TestLiteralWeightedFeasible: the literal weighted resolution satisfies
// Condition (5) and MakeFeasible turns it into a feasible allocation.
func TestLiteralWeightedFeasible(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := testWeightedInstance(seed, 10, 2)
		sol, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 20; trial++ {
			s, _ := in.RoundOnceLiteral(sol, rng)
			if !in.Feasible(s) {
				t.Fatal("literal weighted rounding infeasible")
			}
		}
	}
}

// TestLiteralPartlyFeasibleCondition: the printed Algorithm 2 resolution
// produces allocations satisfying Condition (5).
func TestLiteralPartlyFeasibleCondition(t *testing.T) {
	in := testWeightedInstance(7, 12, 2)
	sol, err := in.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	plans := buildPlans(in, sol)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		for l := 0; l < 2; l++ {
			s := in.resolveWeightedLiteral(plans[l].sample(rng))
			if !in.PartlyFeasible(s) {
				t.Fatal("literal resolution violates Condition (5)")
			}
		}
	}
}
