package auction

import (
	"testing"
)

// TestColGenOptimalityCertificate re-derives the optimality certificate of
// the column generation on instances too large for explicit enumeration:
// at the returned optimum, no bidder's demand oracle can find a bundle with
// positive reduced cost (utility at the bidder-specific prices exceeding the
// capacity dual). This is exactly the dual-separation argument of
// Section 2.2: no violated dual constraint exists, hence the restricted LP
// optimum is the optimum of the full exponential LP.
func TestColGenOptimalityCertificate(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		for _, weighted := range []bool{false, true} {
			var in *Instance
			if weighted {
				in = testWeightedInstance(seed, 14, 4)
			} else {
				in = testInstance(seed, 20, 5)
			}
			sol, err := in.SolveLP()
			if err != nil {
				t.Fatal(err)
			}
			if len(sol.Columns) == 0 {
				continue
			}
			// Re-solve the master on the final column set to obtain duals.
			b := newLPBuilder(in)
			msol, status, err := b.buildMaster(sol.Columns).Solve()
			if err != nil {
				t.Fatalf("master %v: %v", status, err)
			}
			for v := 0; v < in.N(); v++ {
				prices := b.prices(v, msol.Dual)
				_, util := in.Bidders[v].Demand(prices)
				z := msol.Dual[b.capRow[v]]
				if util-z > 1e-5 {
					t.Fatalf("seed %d weighted=%v: bidder %d has reduced cost %g > 0 at optimum",
						seed, weighted, v, util-z)
				}
			}
		}
	}
}
