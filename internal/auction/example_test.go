package auction_test

import (
	"fmt"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/valuation"
)

// ExampleSolve runs a tiny two-channel disk-graph auction end to end.
func ExampleSolve() {
	// Three base stations on a line; the outer two are out of each other's
	// range, the middle one overlaps both.
	centers := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}}
	radii := []float64{4, 7, 4}
	conf := models.Disk(centers, radii)

	bidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{5, 1}),
		valuation.NewAdditive([]float64{4, 4}),
		valuation.NewAdditive([]float64{1, 6}),
	}
	in, err := auction.NewInstance(conf, 2, bidders)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := auction.Solve(in, auction.Options{Derandomize: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("feasible: %v\n", in.Feasible(res.Alloc))
	fmt.Printf("welfare within factor: %v\n", res.Welfare >= res.LP.Value/res.Factor)
	// Output:
	// feasible: true
	// welfare within factor: true
}
