package auction

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Options configure Solve.
type Options struct {
	// Seed seeds the rounding RNG (ignored when Derandomize is set).
	Seed int64
	// Samples is the number of independent randomized roundings; the best
	// allocation is kept. Defaults to 1 when zero.
	Samples int
	// Derandomize switches to the deterministic rounding by conditional
	// expectations, which meets the proven guarantee with certainty.
	Derandomize bool
}

// Result is the outcome of Solve.
type Result struct {
	// Alloc is the feasible allocation found.
	Alloc Allocation
	// Welfare is its social welfare.
	Welfare float64
	// LP is the fractional optimum used for rounding; LP.Value is the upper
	// bound b* on the optimal welfare.
	LP *LPSolution
	// Factor is the proven approximation factor α for this instance class;
	// the paper guarantees (expected) Welfare ≥ LP.Value/Factor.
	Factor float64
	// Alg3Iterations is the maximum number of Algorithm 3 iterations used
	// (0 for unweighted instances); Lemma 8 bounds it by ⌈log₂ n⌉.
	Alg3Iterations int
}

// Solve runs the full pipeline: column-generation LP, randomized or
// derandomized rounding, conflict resolution.
func Solve(in *Instance, opt Options) (*Result, error) {
	sol, err := in.SolveLP()
	if err != nil {
		return nil, err
	}
	res := &Result{LP: sol, Factor: in.ApproximationFactor()}
	if len(sol.Columns) == 0 {
		res.Alloc = make(Allocation, in.N())
		return res, nil
	}
	if opt.Derandomize {
		res.Alloc, res.Alg3Iterations = in.RoundDerandomized(sol)
	} else {
		samples := opt.Samples
		if samples < 1 {
			samples = 1
		}
		best, iters := in.roundBestOf(sol, opt.Seed, samples)
		res.Alloc, res.Alg3Iterations = best, iters
	}
	res.Welfare = res.Alloc.Welfare(in.Bidders)
	if !in.Feasible(res.Alloc) {
		return nil, fmt.Errorf("auction: internal error: rounded allocation infeasible")
	}
	return res, nil
}

// roundBestOf draws the given number of independent roundings and returns
// the best. Samples run in parallel across GOMAXPROCS workers; determinism
// is preserved by seeding each sample's generator as seed+index, so the
// result does not depend on scheduling.
func (in *Instance) roundBestOf(sol *LPSolution, seed int64, samples int) (Allocation, int) {
	type outcome struct {
		alloc   Allocation
		welfare float64
		iters   int
	}
	results := make([]outcome, samples)
	workers := runtime.GOMAXPROCS(0)
	if workers > samples {
		workers = samples
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rng := rand.New(rand.NewSource(seed + int64(i)))
				s, iters := in.RoundOnce(sol, rng)
				results[i] = outcome{alloc: s, welfare: s.Welfare(in.Bidders), iters: iters}
			}
		}()
	}
	for i := 0; i < samples; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	best, bestWelfare, bestIters := Allocation(nil), math.Inf(-1), 0
	for _, r := range results {
		if r.welfare > bestWelfare {
			best, bestWelfare, bestIters = r.alloc, r.welfare, r.iters
		}
	}
	return best, bestIters
}
