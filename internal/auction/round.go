package auction

import (
	"math"
	"math/rand"

	"repro/internal/valuation"
)

// option is one rounding choice for a bidder: pick bundle t with probability
// prob (the scaled LP value); with the remaining probability the bidder gets
// nothing.
type option struct {
	t     valuation.Bundle
	prob  float64
	value float64
}

// roundingPlan holds the per-bidder options of one half of the
// size-decomposition (|T| ≤ √k or |T| > √k) at the scheme's scaling.
type roundingPlan struct {
	opts [][]option // indexed by bidder
}

// buildPlans decomposes the LP solution into the two halves of
// Algorithms 1/2 and scales them into probability distributions:
// x/(2√k·ρ) for unweighted instances, x/(4√k·ρ) for weighted ones.
func buildPlans(in *Instance, sol *LPSolution) [2]*roundingPlan {
	n := in.N()
	scale := 2 * math.Sqrt(float64(in.K)) * in.Conf.RhoBound
	if !in.Unweighted() {
		scale *= 2
	}
	sqrtK := math.Sqrt(float64(in.K))
	var plans [2]*roundingPlan
	for l := 0; l < 2; l++ {
		plans[l] = &roundingPlan{opts: make([][]option, n)}
	}
	for i, c := range sol.Columns {
		x := sol.X[i]
		if x <= 1e-12 || c.T == valuation.Empty {
			continue
		}
		l := 0
		if float64(c.T.Size()) > sqrtK {
			l = 1
		}
		plans[l].opts[c.V] = append(plans[l].opts[c.V], option{
			t:     c.T,
			prob:  x / scale,
			value: c.Value,
		})
	}
	return plans
}

// sample draws a tentative allocation: each bidder independently picks
// bundle T with probability opts.prob, or nothing.
func (p *roundingPlan) sample(rng *rand.Rand) Allocation {
	s := make(Allocation, len(p.opts))
	for v, opts := range p.opts {
		u := rng.Float64()
		acc := 0.0
		for _, o := range opts {
			acc += o.prob
			if u < acc {
				s[v] = o.t
				break
			}
		}
	}
	return s
}

// resolveUnweighted is the conflict-resolution stage of Algorithm 1:
// processing vertices in π order, a vertex loses its bundle if any backward
// neighbor (with its already-final bundle) shares a channel. The result is a
// feasible allocation.
func (in *Instance) resolveUnweighted(s Allocation) Allocation {
	g := in.Conf.Binary
	for _, v := range in.ordering().Perm {
		if s[v] == valuation.Empty {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if in.ordering().Before(u, v) && s[u].Intersects(s[v]) {
				s[v] = valuation.Empty
				break
			}
		}
	}
	return s
}

// resolveWeighted is the partial conflict-resolution stage of Algorithm 2:
// processing vertices in π order, a vertex loses its bundle if the summed
// symmetric weight w̄ of backward vertices sharing a channel reaches 1/2.
// The result is a partly-feasible allocation (Condition 5). Only the cached
// backward support is scanned — vertices with w̄(u,v) = 0 contribute nothing
// to the sum — so the pass is O(n·deg) instead of O(n²).
func (in *Instance) resolveWeighted(s Allocation) Allocation {
	w := in.Conf.W
	for _, v := range in.ordering().Perm {
		if s[v] == valuation.Empty {
			continue
		}
		sum := 0.0
		for _, u := range in.backwardSupport(v) {
			if s[u].Intersects(s[v]) {
				sum += w.Wbar(u, v)
			}
		}
		if sum >= 0.5 {
			s[v] = valuation.Empty
		}
	}
	return s
}

// PartlyFeasible reports whether the allocation satisfies Condition (5):
// for every vertex, the summed symmetric weight of earlier vertices sharing
// a channel is below 1/2.
func (in *Instance) PartlyFeasible(s Allocation) bool {
	w := in.Conf.W
	for v := 0; v < in.N(); v++ {
		if s[v] == valuation.Empty {
			continue
		}
		sum := 0.0
		for _, u := range in.backwardSupport(v) {
			if s[u].Intersects(s[v]) {
				sum += w.Wbar(u, v)
			}
		}
		if sum >= 0.5 {
			return false
		}
	}
	return true
}

// MakeFeasible is Algorithm 3: it turns a partly-feasible allocation into a
// fully feasible one, losing at most a ⌈log₂ n⌉ factor (Lemma 8). It
// decomposes the input into candidate allocations S₁, S₂, …; each vertex
// keeps its bundle in exactly one candidate; the best candidate is returned
// together with the number of iterations used.
func (in *Instance) MakeFeasible(s Allocation) (Allocation, int) {
	n := in.N()
	w := in.Conf.W
	perm := in.ordering().Perm
	inV := make([]bool, n) // V′: vertices not yet placed in any candidate
	remaining := 0
	for v := 0; v < n; v++ {
		if s[v] != valuation.Empty {
			inV[v] = true
			remaining++
		}
	}
	var best Allocation
	bestWelfare := math.Inf(-1)
	iters := 0
	for remaining > 0 && iters <= n+1 {
		iters++
		roster := make([]bool, n)
		copy(roster, inV)
		si := make(Allocation, n)
		for v := 0; v < n; v++ {
			if roster[v] {
				si[v] = s[v]
			}
		}
		// Process vertices of the roster by decreasing π.
		for idx := n - 1; idx >= 0; idx-- {
			v := perm[idx]
			if !roster[v] {
				continue
			}
			sum := 0.0
			for _, u := range in.symSupport(v) {
				if roster[u] && si[u].Intersects(si[v]) {
					sum += w.Wbar(u, v)
				}
			}
			if sum < 1 {
				inV[v] = false // v stays in si, leaves V′
				remaining--
			} else {
				si[v] = valuation.Empty // v is dropped from si, stays in V′
			}
		}
		if wf := si.Welfare(in.Bidders); wf > bestWelfare {
			best, bestWelfare = si, wf
		}
	}
	if best == nil {
		best = make(Allocation, n)
	}
	return best, iters
}

// RoundOnce performs one randomized rounding of the LP solution: both halves
// of the decomposition are sampled, conflicts resolved (Algorithm 1 for
// unweighted instances; Algorithm 2 + Algorithm 3 for weighted ones), and
// the better allocation is returned with the maximum Algorithm 3 iteration
// count observed.
func (in *Instance) RoundOnce(sol *LPSolution, rng *rand.Rand) (Allocation, int) {
	plans := buildPlans(in, sol)
	var best Allocation
	bestWelfare := math.Inf(-1)
	maxIters := 0
	for l := 0; l < 2; l++ {
		s := plans[l].sample(rng)
		s, iters := in.finishRounding(s)
		if iters > maxIters {
			maxIters = iters
		}
		if wf := s.Welfare(in.Bidders); wf > bestWelfare {
			best, bestWelfare = s, wf
		}
	}
	return best, maxIters
}

// finishRounding applies the conflict-resolution pipeline appropriate for
// the instance type to a tentative allocation.
func (in *Instance) finishRounding(s Allocation) (Allocation, int) {
	if in.Unweighted() {
		return in.resolveUnweighted(s), 0
	}
	s = in.resolveWeighted(s)
	return in.MakeFeasible(s)
}

// resolveUnweightedLiteral is Algorithm 1's conflict resolution exactly as
// printed: removal decisions compare against the *tentative* bundles of
// backward neighbors, even if those neighbors were themselves removed. The
// π-order final-set rule used by resolveUnweighted keeps a superset of the
// winners, so this literal variant exists for the fidelity ablation (A4) and
// still satisfies Theorem 3's analysis.
func (in *Instance) resolveUnweightedLiteral(s Allocation) Allocation {
	g := in.Conf.Binary
	tentative := s.Clone()
	out := s.Clone()
	for v := 0; v < in.N(); v++ {
		if tentative[v] == valuation.Empty {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if in.ordering().Before(u, v) && tentative[u].Intersects(tentative[v]) {
				out[v] = valuation.Empty
				break
			}
		}
	}
	return out
}

// resolveWeightedLiteral is Algorithm 2's partial conflict resolution as
// printed, against tentative bundles.
func (in *Instance) resolveWeightedLiteral(s Allocation) Allocation {
	w := in.Conf.W
	tentative := s.Clone()
	out := s.Clone()
	for v := 0; v < in.N(); v++ {
		if tentative[v] == valuation.Empty {
			continue
		}
		sum := 0.0
		for u := 0; u < in.N(); u++ {
			if u != v && in.ordering().Before(u, v) && tentative[u].Intersects(tentative[v]) {
				sum += w.Wbar(u, v)
			}
		}
		if sum >= 0.5 {
			out[v] = valuation.Empty
		}
	}
	return out
}

// RoundOnceLiteral is RoundOnce with the paper-literal (tentative-set)
// conflict resolution. Per sample its winners are a subset of RoundOnce's
// for the same tentative draw, so it is dominated; it exists to quantify how
// much the final-set refinement buys (ablation A4).
func (in *Instance) RoundOnceLiteral(sol *LPSolution, rng *rand.Rand) (Allocation, int) {
	plans := buildPlans(in, sol)
	var best Allocation
	bestWelfare := math.Inf(-1)
	maxIters := 0
	for l := 0; l < 2; l++ {
		s := plans[l].sample(rng)
		var iters int
		if in.Unweighted() {
			s = in.resolveUnweightedLiteral(s)
		} else {
			s = in.resolveWeightedLiteral(s)
			s, iters = in.MakeFeasible(s)
		}
		if iters > maxIters {
			maxIters = iters
		}
		if wf := s.Welfare(in.Bidders); wf > bestWelfare {
			best, bestWelfare = s, wf
		}
	}
	return best, maxIters
}

// RoundDerandomized rounds the LP solution deterministically by the method
// of conditional expectations over the pessimistic estimator from the proofs
// of Theorem 3 / Lemma 7:
//
//	Φ = Σ_v Σ_T b_{v,T}·p_{v,T}·(1 − Σ_{u∈Γπ(v)} c(u,v)·Pr[share])
//
// with penalty coefficient c(u,v)=1 for unweighted instances and
// c(u,v)=2·w̄(u,v) for weighted ones. Processing vertices in π order, all
// terms are multilinear in the per-vertex choices, so each conditional value
// is exact; the final allocation's welfare is at least the initial Φ, i.e.
// at least b*/(8√kρ) resp. b*/(16√kρ) before Algorithm 3.
func (in *Instance) RoundDerandomized(sol *LPSolution) (Allocation, int) {
	halves, iters := in.RoundHalvesDerandomized(sol)
	if halves[1].Welfare(in.Bidders) > halves[0].Welfare(in.Bidders) {
		return halves[1], iters
	}
	return halves[0], iters
}

// RoundHalvesDerandomized returns both candidate allocations of the size
// decomposition — index 0 is the |T| ≤ √k half, index 1 the |T| > √k half —
// each derandomized and conflict-resolved, with the maximum Algorithm 3
// iteration count. RoundDerandomized keeps the welfare-max of the two
// (half 0 on ties); callers that stitch per-component solutions of a
// disconnected instance back together (internal/broker) need both halves so
// the same single half can be chosen globally, reproducing exactly what
// RoundDerandomized on the union instance would pick.
func (in *Instance) RoundHalvesDerandomized(sol *LPSolution) ([2]Allocation, int) {
	plans := buildPlans(in, sol)
	var halves [2]Allocation
	maxIters := 0
	for l := 0; l < 2; l++ {
		s := in.derandomizeOne(plans[l])
		s, iters := in.finishRounding(s)
		if iters > maxIters {
			maxIters = iters
		}
		halves[l] = s
	}
	return halves, maxIters
}

// penCoef returns the estimator's penalty coefficient c(u,v).
func (in *Instance) penCoef(u, v int) float64 {
	if in.Unweighted() {
		if in.Conf.Binary.HasEdge(u, v) {
			return 1
		}
		return 0
	}
	return 2 * in.Conf.W.Wbar(u, v)
}

// derandomizeOne fixes bidder choices one by one in π order, each time
// picking the option (a bundle or the empty set) that maximizes the
// conditional estimator. Only two parts of Φ depend on v's choice:
//
//   - v's own term b(1 − pen_v(T)), where pen_v sums the penalty
//     coefficients of backward vertices already fixed to a sharing bundle;
//   - the terms of forward vertices w, each reduced by
//     c(v,w)·Σ_{T'∩T≠∅} p_{w,T'}·b_{w,T'} when v picks T (the subtracted
//     expectation term is constant across v's options and is dropped).
func (in *Instance) derandomizeOne(plan *roundingPlan) Allocation {
	n := in.N()
	chosen := make(Allocation, n)
	for _, v := range in.ordering().Perm {
		opts := plan.opts[v]
		if len(opts) == 0 {
			continue
		}
		bestScore := 0.0 // the empty set scores exactly 0
		bestT := valuation.Empty
		for _, o := range opts {
			pen := 0.0
			for _, u := range in.backwardSupport(v) {
				if chosen[u].Intersects(o.t) {
					pen += in.penCoef(u, v)
				}
			}
			score := o.value * (1 - pen)
			for _, w := range in.forwardSupport(v) {
				c := in.penCoef(v, w)
				if c == 0 {
					continue
				}
				loss := 0.0
				for _, ow := range plan.opts[w] {
					if ow.t.Intersects(o.t) {
						loss += ow.prob * ow.value
					}
				}
				score -= c * loss
			}
			if score > bestScore {
				bestScore, bestT = score, o.t
			}
		}
		chosen[v] = bestT
	}
	return chosen
}
