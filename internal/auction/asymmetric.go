package auction

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/lp"
	"repro/internal/valuation"
)

// AsymmetricInstance is the Section 6 variant: each channel j has its own
// conflict graph E_j over the same bidders. A single ordering π must certify
// the inductive independence bound Rho for every per-channel graph.
//
// The paper's Theorem 18 hardness construction (and hence this
// implementation) uses binary per-channel conflicts.
type AsymmetricInstance struct {
	K        int
	Bidders  []valuation.Valuation
	Channels []*graph.Graph
	Pi       graph.Ordering
	Rho      float64
}

// NewAsymmetricInstance validates and assembles an asymmetric instance.
func NewAsymmetricInstance(channels []*graph.Graph, pi graph.Ordering, rho float64, bidders []valuation.Valuation) (*AsymmetricInstance, error) {
	k := len(channels)
	if k < 1 || k > valuation.MaxChannels {
		return nil, fmt.Errorf("auction: %d channels out of range", k)
	}
	n := channels[0].N()
	for j, g := range channels {
		if g.N() != n {
			return nil, fmt.Errorf("auction: channel %d has %d vertices, want %d", j, g.N(), n)
		}
	}
	if len(bidders) != n || pi.Len() != n {
		return nil, fmt.Errorf("auction: bidders/ordering size mismatch")
	}
	for i, b := range bidders {
		if b.K() != k {
			return nil, fmt.Errorf("auction: bidder %d has %d channels, instance has %d", i, b.K(), k)
		}
	}
	if rho <= 0 {
		return nil, fmt.Errorf("auction: non-positive rho %g", rho)
	}
	return &AsymmetricInstance{K: k, Bidders: bidders, Channels: channels, Pi: pi, Rho: rho}, nil
}

// N returns the number of bidders.
func (in *AsymmetricInstance) N() int { return len(in.Bidders) }

// Feasible reports whether each channel's assigned set is independent in
// that channel's graph.
func (in *AsymmetricInstance) Feasible(s Allocation) bool {
	if len(s) != in.N() {
		return false
	}
	for j, g := range in.Channels {
		if !g.IsIndependent(s.ChannelSet(j)) {
			return false
		}
	}
	return true
}

// ApproximationFactor returns the factor proven for the asymmetric rounding:
// 4·k·ρ (the per-channel union bound replaces the √k decomposition; see
// Section 6).
func (in *AsymmetricInstance) ApproximationFactor() float64 {
	return 4 * float64(in.K) * in.Rho
}

// SolveLP runs column generation for the asymmetric relaxation: constraint
// (v,j) sums x_{u,T} over backward neighbors u of v in channel j's graph
// with j ∈ T, bounded by ρ.
func (in *AsymmetricInstance) SolveLP() (*LPSolution, error) {
	n, k := in.N(), in.K
	// Row layout: interference rows for (v,j) with nonempty backward
	// neighborhood in E_j, then capacity rows.
	rowOf := make([]int, n*k)
	numRows := 0
	back := make([][][]int, k) // back[j][v]
	for j := 0; j < k; j++ {
		back[j] = make([][]int, n)
		for v := 0; v < n; v++ {
			back[j][v] = in.Channels[j].Backward(v, in.Pi)
		}
	}
	for v := 0; v < n; v++ {
		for j := 0; j < k; j++ {
			if len(back[j][v]) == 0 {
				rowOf[v*k+j] = -1
				continue
			}
			rowOf[v*k+j] = numRows
			numRows++
		}
	}
	capRow := make([]int, n)
	for v := 0; v < n; v++ {
		capRow[v] = numRows
		numRows++
	}

	seen := make(map[colKey]bool)
	var cols []Column
	addCol := func(v int, t valuation.Bundle) bool {
		if t == valuation.Empty || seen[colKey{v, t}] {
			return false
		}
		seen[colKey{v, t}] = true
		cols = append(cols, Column{V: v, T: t, Value: in.Bidders[v].Value(t)})
		return true
	}
	zero := make([]float64, k)
	for v := range in.Bidders {
		if t, util := in.Bidders[v].Demand(zero); util > colGenTol {
			addCol(v, t)
		}
	}
	if len(cols) == 0 {
		return &LPSolution{}, nil
	}

	build := func() *lp.Problem {
		obj := make([]float64, len(cols))
		for i, c := range cols {
			obj[i] = c.Value
		}
		p := lp.NewMaximize(obj)
		rows := make([][]float64, numRows)
		for r := range rows {
			rows[r] = make([]float64, len(cols))
		}
		for i, c := range cols {
			for _, j := range c.T.Channels() {
				// Column (u,T) appears in row (v,j) when u is a backward
				// neighbor of v in E_j.
				for _, v := range in.Channels[j].Neighbors(c.V) {
					if in.Pi.Before(c.V, v) {
						if r := rowOf[v*k+j]; r >= 0 {
							rows[r][i] = 1
						}
					}
				}
			}
			rows[capRow[c.V]][i] = 1
		}
		for r := 0; r < numRows; r++ {
			rhs := 1.0
			if r < capRow[0] {
				rhs = in.Rho
			}
			p.AddConstraint(rows[r], lp.LE, rhs)
		}
		return p
	}

	var sol *lp.Solution
	rounds := 0
	for ; rounds < maxColGenRounds; rounds++ {
		s, status, err := build().Solve()
		if err != nil {
			return nil, fmt.Errorf("auction: asymmetric master LP %v: %w", status, err)
		}
		sol = s
		added := false
		for v := 0; v < n; v++ {
			prices := make([]float64, k)
			for j := 0; j < k; j++ {
				for _, w := range in.Channels[j].Neighbors(v) {
					if in.Pi.Before(v, w) {
						if r := rowOf[w*k+j]; r >= 0 {
							prices[j] += s.Dual[r]
						}
					}
				}
			}
			t, util := in.Bidders[v].Demand(prices)
			if util-s.Dual[capRow[v]] > colGenTol && addCol(v, t) {
				added = true
			}
		}
		if !added {
			break
		}
	}
	return &LPSolution{
		Columns:          cols,
		X:                sol.X,
		Value:            sol.Objective,
		Rounds:           rounds + 1,
		ColumnsGenerated: len(cols),
	}, nil
}

// RoundOnce rounds the asymmetric LP solution: each bidder picks bundle T
// with probability x_{v,T}/(2kρ); then, in π order, a bidder is removed if
// some channel of its bundle is also held by a backward neighbor in that
// channel's graph.
func (in *AsymmetricInstance) RoundOnce(sol *LPSolution, rng *rand.Rand) Allocation {
	n := in.N()
	scale := 2 * float64(in.K) * in.Rho
	opts := make([][]option, n)
	for i, c := range sol.Columns {
		if x := sol.X[i]; x > 1e-12 && c.T != valuation.Empty {
			opts[c.V] = append(opts[c.V], option{t: c.T, prob: x / scale, value: c.Value})
		}
	}
	s := make(Allocation, n)
	for v := 0; v < n; v++ {
		u := rng.Float64()
		acc := 0.0
		for _, o := range opts[v] {
			acc += o.prob
			if u < acc {
				s[v] = o.t
				break
			}
		}
	}
	return in.resolve(s)
}

// RoundDerandomized rounds the asymmetric LP solution deterministically via
// the method of conditional expectations, mirroring the symmetric case: the
// pessimistic estimator is Σ b·p·(1 − Σ_{j∈T} Σ_{u∈Γ_{j,π}(v)} Pr[j ∈ T_u]),
// which is multilinear in the per-bidder choices. The resulting allocation
// is feasible and meets the 4kρ guarantee with certainty.
func (in *AsymmetricInstance) RoundDerandomized(sol *LPSolution) Allocation {
	n := in.N()
	scale := 2 * float64(in.K) * in.Rho
	opts := make([][]option, n)
	for i, c := range sol.Columns {
		if x := sol.X[i]; x > 1e-12 && c.T != valuation.Empty {
			opts[c.V] = append(opts[c.V], option{t: c.T, prob: x / scale, value: c.Value})
		}
	}
	chosen := make(Allocation, n)
	for _, v := range in.Pi.Perm {
		if len(opts[v]) == 0 {
			continue
		}
		bestScore, bestT := 0.0, valuation.Empty
		for _, o := range opts[v] {
			// Penalty from fixed backward choices: one unit per
			// (channel, backward neighbor in that channel) collision.
			pen := 0.0
			for _, j := range o.t.Channels() {
				for _, u := range in.Channels[j].Neighbors(v) {
					if in.Pi.Before(u, v) && chosen[u].Has(j) {
						pen++
					}
				}
			}
			score := o.value * (1 - pen)
			// Expected loss inflicted on forward neighbors' options.
			for _, j := range o.t.Channels() {
				for _, w := range in.Channels[j].Neighbors(v) {
					if !in.Pi.Before(v, w) {
						continue
					}
					for _, ow := range opts[w] {
						if ow.t.Has(j) {
							score -= ow.prob * ow.value
						}
					}
				}
			}
			if score > bestScore {
				bestScore, bestT = score, o.t
			}
		}
		chosen[v] = bestT
	}
	return in.resolve(chosen)
}

// resolve removes, in π order, every bidder whose bundle conflicts with a
// backward neighbor's final bundle on some channel.
func (in *AsymmetricInstance) resolve(s Allocation) Allocation {
	for _, v := range in.Pi.Perm {
		if s[v] == valuation.Empty {
			continue
		}
	channels:
		for _, j := range s[v].Channels() {
			for _, u := range in.Channels[j].Neighbors(v) {
				if in.Pi.Before(u, v) && s[u].Has(j) {
					s[v] = valuation.Empty
					break channels
				}
			}
		}
	}
	return s
}

// Solve runs the asymmetric pipeline end to end, keeping the best of
// opt.Samples roundings.
func (in *AsymmetricInstance) Solve(opt Options) (*Result, error) {
	sol, err := in.SolveLP()
	if err != nil {
		return nil, err
	}
	res := &Result{LP: sol, Factor: in.ApproximationFactor()}
	if len(sol.Columns) == 0 {
		res.Alloc = make(Allocation, in.N())
		return res, nil
	}
	if opt.Derandomize {
		res.Alloc = in.RoundDerandomized(sol)
		res.Welfare = res.Alloc.Welfare(in.Bidders)
	} else {
		samples := opt.Samples
		if samples < 1 {
			samples = 1
		}
		rng := rand.New(rand.NewSource(opt.Seed))
		best, bestWelfare := Allocation(nil), math.Inf(-1)
		for i := 0; i < samples; i++ {
			s := in.RoundOnce(sol, rng)
			if wf := s.Welfare(in.Bidders); wf > bestWelfare {
				best, bestWelfare = s, wf
			}
		}
		res.Alloc = best
		res.Welfare = bestWelfare
	}
	if !in.Feasible(res.Alloc) {
		return nil, fmt.Errorf("auction: internal error: asymmetric allocation infeasible")
	}
	return res, nil
}
