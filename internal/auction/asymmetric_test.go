package auction

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/valuation"
)

func testAsymmetric(seed int64, n, d, k int) *AsymmetricInstance {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomBoundedDegree(rng, n, d, n*d*3)
	channels, pi, rho := models.AsymmetricHardness(g, k)
	bidders := make([]valuation.Valuation, n)
	for i := range bidders {
		bidders[i] = valuation.NewSingleMinded(k, valuation.Full(k), 1+rng.Float64())
	}
	in, err := NewAsymmetricInstance(channels, pi, rho, bidders)
	if err != nil {
		panic(err)
	}
	return in
}

func TestNewAsymmetricValidation(t *testing.T) {
	g1, g2 := graph.Path(3), graph.Path(3)
	pi := graph.IdentityOrdering(3)
	bidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{1, 1}),
		valuation.NewAdditive([]float64{1, 1}),
		valuation.NewAdditive([]float64{1, 1}),
	}
	if _, err := NewAsymmetricInstance([]*graph.Graph{g1, g2}, pi, 1, bidders); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	if _, err := NewAsymmetricInstance(nil, pi, 1, bidders); err == nil {
		t.Fatal("no channels accepted")
	}
	if _, err := NewAsymmetricInstance([]*graph.Graph{g1, graph.Path(4)}, pi, 1, bidders); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := NewAsymmetricInstance([]*graph.Graph{g1, g2}, pi, 0, bidders); err == nil {
		t.Fatal("rho=0 accepted")
	}
	if _, err := NewAsymmetricInstance([]*graph.Graph{g1, g2}, pi, 1, bidders[:2]); err == nil {
		t.Fatal("bidder count mismatch accepted")
	}
	badBidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{1}),
		valuation.NewAdditive([]float64{1, 1}),
		valuation.NewAdditive([]float64{1, 1}),
	}
	if _, err := NewAsymmetricInstance([]*graph.Graph{g1, g2}, pi, 1, badBidders); err == nil {
		t.Fatal("bidder k mismatch accepted")
	}
}

func TestAsymmetricFeasible(t *testing.T) {
	// Channel 0: edge {0,1}; channel 1: edge {1,2}.
	g0, g1 := graph.New(3), graph.New(3)
	g0.AddEdge(0, 1)
	g1.AddEdge(1, 2)
	pi := graph.IdentityOrdering(3)
	bidders := []valuation.Valuation{
		valuation.NewAdditive([]float64{1, 1}),
		valuation.NewAdditive([]float64{1, 1}),
		valuation.NewAdditive([]float64{1, 1}),
	}
	in, err := NewAsymmetricInstance([]*graph.Graph{g0, g1}, pi, 1, bidders)
	if err != nil {
		t.Fatal(err)
	}
	// 0 and 1 may share channel 1 but not channel 0.
	ok := Allocation{valuation.FromChannels(1), valuation.FromChannels(1), valuation.Empty}
	if !in.Feasible(ok) {
		t.Fatal("channel-1 sharing of {0,1} must be feasible")
	}
	bad := Allocation{valuation.FromChannels(0), valuation.FromChannels(0), valuation.Empty}
	if in.Feasible(bad) {
		t.Fatal("channel-0 sharing of {0,1} must be infeasible")
	}
}

func TestAsymmetricSolve(t *testing.T) {
	in := testAsymmetric(1, 10, 4, 2)
	res, err := in.Solve(Options{Seed: 1, Samples: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(res.Alloc) {
		t.Fatal("infeasible")
	}
	if res.LP.Value <= 0 {
		t.Fatal("expected positive LP value")
	}
	if res.Welfare > res.LP.Value+1e-9 {
		t.Fatal("welfare exceeds LP upper bound")
	}
	if res.Factor != 4*float64(in.K)*in.Rho {
		t.Fatal("factor wrong")
	}
}

// TestAsymmetricRoundingFeasible: every rounding is feasible across seeds.
func TestAsymmetricRoundingFeasible(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := testAsymmetric(seed, 12, 5, 3)
		sol, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 30; trial++ {
			s := in.RoundOnce(sol, rng)
			if !in.Feasible(s) {
				t.Fatalf("seed %d trial %d infeasible", seed, trial)
			}
		}
	}
}

// TestAsymmetricExpectedGuarantee: averaged over many roundings, the welfare
// meets the O(kρ) guarantee with slack (the proof bounds the expectation by
// b*/(4kρ); we require the empirical mean to clear half of that to keep the
// test robust against sampling noise).
func TestAsymmetricExpectedGuarantee(t *testing.T) {
	in := testAsymmetric(2, 12, 4, 2)
	sol, err := in.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	const trials = 400
	total := 0.0
	for i := 0; i < trials; i++ {
		s := in.RoundOnce(sol, rng)
		total += s.Welfare(in.Bidders)
	}
	mean := total / trials
	want := sol.Value / in.ApproximationFactor() / 2
	if mean < want {
		t.Fatalf("mean welfare %g below relaxed guarantee %g", mean, want)
	}
}

// TestAsymmetricDerandomizedGuarantee asserts the 4kρ guarantee
// deterministically for the derandomized asymmetric rounding.
func TestAsymmetricDerandomizedGuarantee(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		in := testAsymmetric(seed, 12, 4, 2)
		sol, err := in.SolveLP()
		if err != nil {
			t.Fatal(err)
		}
		s := in.RoundDerandomized(sol)
		if !in.Feasible(s) {
			t.Fatalf("seed %d: infeasible", seed)
		}
		bound := sol.Value / in.ApproximationFactor()
		if w := s.Welfare(in.Bidders); w < bound-1e-9 {
			t.Fatalf("seed %d: welfare %g below guarantee %g", seed, w, bound)
		}
	}
}

func TestAsymmetricSolveDerandomized(t *testing.T) {
	in := testAsymmetric(3, 10, 4, 2)
	res, err := in.Solve(Options{Derandomize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Feasible(res.Alloc) {
		t.Fatal("infeasible")
	}
	if res.Welfare < res.LP.Value/res.Factor-1e-9 {
		t.Fatal("derandomized asymmetric solve misses its guarantee")
	}
}

// TestAsymmetricWelfareIsIndependentSet: in the Theorem 18 construction,
// winners (full-bundle holders) must form an independent set of the base
// graph (union of channels).
func TestAsymmetricWelfareIsIndependentSet(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomBoundedDegree(rng, 10, 4, 120)
	channels, pi, rho := models.AsymmetricHardness(g, 2)
	bidders := make([]valuation.Valuation, 10)
	for i := range bidders {
		bidders[i] = valuation.NewSingleMinded(2, valuation.Full(2), 1)
	}
	in, err := NewAsymmetricInstance(channels, pi, rho, bidders)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Solve(Options{Seed: 3, Samples: 50})
	if err != nil {
		t.Fatal(err)
	}
	var winners []int
	for v, tb := range res.Alloc {
		if tb == valuation.Full(2) {
			winners = append(winners, v)
		}
	}
	if !g.IsIndependent(winners) {
		t.Fatalf("winners %v not independent in the base graph", winners)
	}
}
