package auction

import (
	"reflect"
	"testing"
)

// RoundDerandomized must equal the welfare-max of the two halves returned by
// RoundHalvesDerandomized (half 0 on ties), on both unweighted and weighted
// instances — the contract the broker's global half-pick relies on.
func TestRoundHalvesMatchRoundDerandomized(t *testing.T) {
	instances := []struct {
		label string
		in    *Instance
	}{
		{"protocol", protocolTestInstance(3, 24, 4)},
		{"disk", diskTestInstance(5, 10, 3)},
		{"sinr", sinrTestInstance(7, 14, 3)},
	}
	for _, tc := range instances {
		sol, err := tc.in.SolveLP()
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		halves, hIters := tc.in.RoundHalvesDerandomized(sol)
		best, bIters := tc.in.RoundDerandomized(sol)
		if hIters != bIters {
			t.Fatalf("%s: iters %d vs %d", tc.label, hIters, bIters)
		}
		want := halves[0]
		if halves[1].Welfare(tc.in.Bidders) > halves[0].Welfare(tc.in.Bidders) {
			want = halves[1]
		}
		if !reflect.DeepEqual(best, want) {
			t.Fatalf("%s: RoundDerandomized disagrees with half pick", tc.label)
		}
		for l, h := range halves {
			if !tc.in.Feasible(h) {
				t.Fatalf("%s: half %d infeasible", tc.label, l)
			}
		}
	}
}
