package auction

import (
	"fmt"

	"repro/internal/lp"
	"repro/internal/valuation"
)

// Column is one LP variable x_{v,T}: bidder V receives bundle T, worth
// Value = b_V(T).
type Column struct {
	V     int
	T     valuation.Bundle
	Value float64
}

// LPSolution is the fractional optimum of the relaxation (1)/(4), restricted
// to the generated columns (which, at termination of column generation,
// carry an optimal basis of the full exponential LP).
type LPSolution struct {
	// Columns are the generated (bidder, bundle) variables.
	Columns []Column
	// X are the optimal values of the columns, aligned with Columns.
	X []float64
	// Value is the LP optimum b*.
	Value float64
	// Rounds is the number of column-generation rounds performed.
	Rounds int
	// ColumnsGenerated is the total number of columns priced in.
	ColumnsGenerated int
}

const (
	colGenTol       = 1e-7
	maxColGenRounds = 300
)

// lpBuilder caches the row layout of the master LP for an instance.
type lpBuilder struct {
	in *Instance
	// interfRow[v*k+j] is the master row index of constraint (v,j), or -1
	// if the constraint is trivial (empty backward support).
	interfRow []int
	// capRow[v] is the master row index of Σ_T x_{v,T} ≤ 1.
	capRow []int
	// numRows is the total number of master rows.
	numRows int
	// back[v] caches backwardSupport(v); fwd[v] caches forwardSupport(v).
	back, fwd [][]int
	// colBuf and priceBuf are scratch buffers reused across column-generation
	// rounds (one column's master coefficients; one bidder's channel prices).
	colBuf   []float64
	priceBuf []float64
}

func newLPBuilder(in *Instance) *lpBuilder {
	n, k := in.N(), in.K
	b := &lpBuilder{
		in:        in,
		interfRow: make([]int, n*k),
		capRow:    make([]int, n),
		back:      make([][]int, n),
		fwd:       make([][]int, n),
		priceBuf:  make([]float64, k),
	}
	row := 0
	for v := 0; v < n; v++ {
		b.back[v] = in.backwardSupport(v)
		b.fwd[v] = in.forwardSupport(v)
		for j := 0; j < k; j++ {
			if len(b.back[v]) == 0 {
				b.interfRow[v*k+j] = -1
				continue
			}
			b.interfRow[v*k+j] = row
			row++
		}
	}
	for v := 0; v < n; v++ {
		b.capRow[v] = row
		row++
	}
	b.numRows = row
	b.colBuf = make([]float64, b.numRows)
	return b
}

// columnCoefs writes column c's coefficient in every master row into the
// shared scratch buffer and returns it. Column (u,T) appears in interference
// row (v,j) for every forward vertex v of u and every channel j ∈ T, with
// coefficient coef(u,v), and in u's capacity row with coefficient 1.
func (b *lpBuilder) columnCoefs(c Column) []float64 {
	in, k := b.in, b.in.K
	buf := b.colBuf
	for r := range buf {
		buf[r] = 0
	}
	for _, v := range b.fwd[c.V] {
		w := in.coef(c.V, v)
		for _, j := range c.T.Channels() {
			if r := b.interfRow[v*k+j]; r >= 0 {
				buf[r] = w
			}
		}
	}
	buf[b.capRow[c.V]] = 1
	return buf
}

// rhs returns the right-hand side of master row r: ρ for interference rows,
// 1 for capacity rows.
func (b *lpBuilder) rhs(r int) float64 {
	if r < b.capRow[0] {
		return b.in.Conf.RhoBound
	}
	return 1.0
}

// buildMaster assembles the restricted master LP over the given columns.
func (b *lpBuilder) buildMaster(cols []Column) *lp.Problem {
	obj := make([]float64, len(cols))
	for i, c := range cols {
		obj[i] = c.Value
	}
	p := lp.NewMaximize(obj)
	rows := make([][]float64, b.numRows)
	for r := range rows {
		rows[r] = make([]float64, len(cols))
	}
	for i, c := range cols {
		for r, w := range b.columnCoefs(c) {
			rows[r][i] = w
		}
	}
	for r := 0; r < b.numRows; r++ {
		p.AddConstraint(rows[r], lp.LE, b.rhs(r))
	}
	return p
}

// prices computes bidder v's bidder-specific channel prices from the duals:
// p_{v,j} = Σ_{w: v ∈ Γπ(w)} coef(v,w) · y_{w,j}. The returned slice is a
// shared scratch buffer, valid until the next prices call.
func (b *lpBuilder) prices(v int, dual []float64) []float64 {
	k := b.in.K
	p := b.priceBuf
	for j := range p {
		p[j] = 0
	}
	for _, w := range b.fwd[v] {
		c := b.in.coef(v, w)
		for j := 0; j < k; j++ {
			if r := b.interfRow[w*k+j]; r >= 0 {
				if y := dual[r]; y > 0 {
					p[j] += c * y
				}
			}
		}
	}
	return p
}

// SolveLP computes the optimum of the LP relaxation by column generation
// with the bidders' demand oracles, warm-starting the master LP: the simplex
// tableau lives across rounds and each round's new columns enter the basis
// of the previous optimum (lp.Solver.AddColumn), so only the first round
// pays a from-scratch solve.
func (in *Instance) SolveLP() (*LPSolution, error) {
	return in.solveLPWith(in.Bidders, nil)
}

// SolveLPWarm runs warm-started column generation seeded with the given
// columns (re-priced under the instance's bidders, deduplicated, empty
// bundles skipped). Seeding with the column set of a related already-solved
// instance — e.g. the full instance when solving the VCG sub-LPs with one
// bidder zeroed — starts the restricted master near the optimum, typically
// collapsing column generation to one or two rounds.
func (in *Instance) SolveLPWarm(seed []Column) (*LPSolution, error) {
	return in.solveLPWith(in.Bidders, seed)
}

// SolveLPCold computes the same optimum with the pre-warm-start reference
// path: every round rebuilds the restricted master from scratch and re-runs
// two-phase simplex. Kept for the warm-vs-cold equivalence tests and the E14
// runtime comparison.
func (in *Instance) SolveLPCold() (*LPSolution, error) {
	b := newLPBuilder(in)
	gen := newColGen(in.Bidders, b, nil)
	gen.seedDemand()
	if len(gen.cols) == 0 {
		return &LPSolution{}, nil
	}
	var sol *lp.Solution
	rounds := 0
	for ; rounds < maxColGenRounds; rounds++ {
		s, status, err := b.buildMaster(gen.cols).Solve()
		if err != nil {
			return nil, fmt.Errorf("auction: master LP %v: %w", status, err)
		}
		sol = s
		if gen.price(s, nil) == 0 {
			break
		}
	}
	return gen.solution(sol, rounds), nil
}

// solveLPWith runs warm-started column generation for an alternative
// valuation profile over the same conflict structure (used by the Lavi–Swamy
// decomposition, which reprices columns with dual weights), optionally
// seeded with known-good columns.
func (in *Instance) solveLPWith(bidders []valuation.Valuation, seed []Column) (*LPSolution, error) {
	return in.NewMasterLP(bidders, seed).Solve(bidders)
}

// MasterLP keeps the restricted master of the LP relaxation alive across
// related solves: the simplex tableau, its optimal basis, and the generated
// column pool all persist. A re-solve under a modified valuation profile —
// e.g. the VCG sub-LPs, which zero one bidder at a time — reprices the
// existing columns in place (lp.Solver.SetObjective), re-optimizes from the
// previous optimal basis, and resumes column generation from the pooled
// columns instead of rediscovering them.
type MasterLP struct {
	in  *Instance
	b   *lpBuilder
	gen *colGen
	slv *lp.Solver
	obj []float64 // repricing scratch, one entry per pooled column
}

// NewMasterLP prepares a master for the instance, seeded with the given
// columns (may be nil; they are re-priced, deduplicated, and empty bundles
// skipped). No LP work happens until Solve.
func (in *Instance) NewMasterLP(bidders []valuation.Valuation, seed []Column) *MasterLP {
	b := newLPBuilder(in)
	return &MasterLP{in: in, b: b, gen: newColGen(bidders, b, seed)}
}

// Solve optimizes the master under the given valuation profile, running
// column generation with the profile's demand oracles until they certify
// optimality. The first call builds the tableau (all master rows are ≤ with
// non-negative rhs, so even that solve skips simplex phase 1); subsequent
// calls warm-start from the current basis.
func (m *MasterLP) Solve(bidders []valuation.Valuation) (*LPSolution, error) {
	g := m.gen
	g.bidders = bidders
	for i := range g.cols {
		g.cols[i].Value = bidders[g.cols[i].V].Value(g.cols[i].T)
	}
	if m.slv == nil {
		// The pool may be empty for the profile that seeded it; give the
		// current profile its zero-price favorites (a dedup no-op when the
		// profiles agree).
		g.seedDemand()
		if len(g.cols) == 0 {
			return &LPSolution{}, nil
		}
		m.slv = lp.NewSolver(m.b.buildMaster(g.cols))
	} else {
		m.obj = m.obj[:0]
		for _, c := range g.cols {
			m.obj = append(m.obj, c.Value)
		}
		m.slv.SetObjective(m.obj)
	}
	var sol *lp.Solution
	rounds := 0
	for ; rounds < maxColGenRounds; rounds++ {
		s, status, err := m.slv.Solve()
		if err != nil {
			return nil, fmt.Errorf("auction: master LP %v: %w", status, err)
		}
		sol = s
		if g.price(s, m.slv) == 0 {
			break
		}
	}
	return g.solution(sol, rounds), nil
}

// colGen holds the generated-column state shared by the warm and cold
// column-generation loops.
type colGen struct {
	bidders []valuation.Valuation
	b       *lpBuilder
	seen    map[colKey]bool
	cols    []Column
}

// newColGen starts the column pool with the provided seed columns; the
// demand-oracle seeds (seedDemand) are added by the first solve.
func newColGen(bidders []valuation.Valuation, b *lpBuilder, seed []Column) *colGen {
	g := &colGen{bidders: bidders, b: b, seen: make(map[colKey]bool)}
	for _, c := range seed {
		g.add(c.V, c.T)
	}
	return g
}

// seedDemand adds each bidder's favorite bundle at zero prices.
func (g *colGen) seedDemand() {
	zero := make([]float64, g.b.in.K)
	for v := range g.bidders {
		if t, util := g.bidders[v].Demand(zero); util > colGenTol {
			g.add(v, t)
		}
	}
}

// add appends column (v,t) unless empty or already present, returning
// whether it was added. The value is priced under the colGen's bidders.
func (g *colGen) add(v int, t valuation.Bundle) bool {
	if t == valuation.Empty {
		return false
	}
	key := colKey{v, t}
	if g.seen[key] {
		return false
	}
	g.seen[key] = true
	g.cols = append(g.cols, Column{V: v, T: t, Value: g.bidders[v].Value(t)})
	return true
}

// price runs the pricing step against the round's duals: each bidder's
// demand oracle is queried at its bidder-specific channel prices, and every
// bundle whose utility beats the bidder's capacity dual enters the pool
// (and, when a warm solver is given, its live tableau). Returns the number
// of columns added; 0 means the LP optimum is proven.
func (g *colGen) price(s *lp.Solution, slv *lp.Solver) int {
	added := 0
	for v := range g.bidders {
		prices := g.b.prices(v, s.Dual)
		t, util := g.bidders[v].Demand(prices)
		z := s.Dual[g.b.capRow[v]]
		if util-z > colGenTol && g.add(v, t) {
			added++
			if slv != nil {
				c := g.cols[len(g.cols)-1]
				slv.AddColumn(c.Value, g.b.columnCoefs(c))
			}
		}
	}
	return added
}

// solution packages the final LP state. Columns are copied so a later
// re-solve of the same master (which reprices the pool in place) cannot
// mutate an already-returned solution. If column generation hit the round
// cap right after a pricing call added columns, the pool is longer than the
// last solve's X; the solution is truncated to the solved columns so the
// two stay aligned (ColumnsGenerated still counts the full pool).
func (g *colGen) solution(sol *lp.Solution, rounds int) *LPSolution {
	if sol == nil {
		return &LPSolution{}
	}
	cols := g.cols
	if len(cols) > len(sol.X) {
		cols = cols[:len(sol.X)]
	}
	return &LPSolution{
		Columns:          append([]Column(nil), cols...),
		X:                sol.X,
		Value:            sol.Objective,
		Rounds:           rounds + 1,
		ColumnsGenerated: len(g.cols),
	}
}

type colKey struct {
	v int
	t valuation.Bundle
}

// SolveLPExplicit solves the relaxation with every bundle written out as an
// explicit column — the "constant number of channels" route of Section 5,
// where bidders are asked for all 2^k−1 bundle values up front. Cost is
// exponential in k; it refuses k > 16. Column generation (SolveLP) reaches
// the same optimum with only oracle access and is the default; this variant
// exists for ground-truthing and for tiny k.
func (in *Instance) SolveLPExplicit() (*LPSolution, error) {
	if in.K > 16 {
		return nil, fmt.Errorf("auction: explicit LP needs k ≤ 16, got %d", in.K)
	}
	var cols []Column
	for v := 0; v < in.N(); v++ {
		for m := 1; m < 1<<uint(in.K); m++ {
			t := valuation.Bundle(m)
			if val := in.Bidders[v].Value(t); val > 0 {
				cols = append(cols, Column{V: v, T: t, Value: val})
			}
		}
	}
	if len(cols) == 0 {
		return &LPSolution{}, nil
	}
	b := newLPBuilder(in)
	sol, status, err := b.buildMaster(cols).Solve()
	if err != nil {
		return nil, fmt.Errorf("auction: explicit LP %v: %w", status, err)
	}
	return &LPSolution{
		Columns:          cols,
		X:                sol.X,
		Value:            sol.Objective,
		Rounds:           1,
		ColumnsGenerated: len(cols),
	}, nil
}

// CheckLPFeasible verifies that (Columns, X) satisfies the relaxation's
// constraints up to tolerance; used by tests and the decomposition.
func (in *Instance) CheckLPFeasible(s *LPSolution, tol float64) error {
	n, k := in.N(), in.K
	capSum := make([]float64, n)
	interf := make([]float64, n*k)
	for i, c := range s.Columns {
		x := s.X[i]
		if x < -tol {
			return fmt.Errorf("auction: negative x[%d]=%g", i, x)
		}
		capSum[c.V] += x
		for _, v := range in.forwardSupport(c.V) {
			w := in.coef(c.V, v)
			for _, j := range c.T.Channels() {
				interf[v*k+j] += w * x
			}
		}
	}
	for v := 0; v < n; v++ {
		if capSum[v] > 1+tol {
			return fmt.Errorf("auction: capacity of %d is %g > 1", v, capSum[v])
		}
		for j := 0; j < k; j++ {
			if interf[v*k+j] > in.Conf.RhoBound+tol {
				return fmt.Errorf("auction: interference row (%d,%d) is %g > rho=%g",
					v, j, interf[v*k+j], in.Conf.RhoBound)
			}
		}
	}
	return nil
}
