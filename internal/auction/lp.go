package auction

import (
	"fmt"

	"repro/internal/lp"
	"repro/internal/valuation"
)

// Column is one LP variable x_{v,T}: bidder V receives bundle T, worth
// Value = b_V(T).
type Column struct {
	V     int
	T     valuation.Bundle
	Value float64
}

// LPSolution is the fractional optimum of the relaxation (1)/(4), restricted
// to the generated columns (which, at termination of column generation,
// carry an optimal basis of the full exponential LP).
type LPSolution struct {
	// Columns are the generated (bidder, bundle) variables.
	Columns []Column
	// X are the optimal values of the columns, aligned with Columns.
	X []float64
	// Value is the LP optimum b*.
	Value float64
	// Rounds is the number of column-generation rounds performed.
	Rounds int
	// ColumnsGenerated is the total number of columns priced in.
	ColumnsGenerated int
}

const (
	colGenTol       = 1e-7
	maxColGenRounds = 300
)

// lpBuilder caches the row layout of the master LP for an instance.
type lpBuilder struct {
	in *Instance
	// interfRow[v*k+j] is the master row index of constraint (v,j), or -1
	// if the constraint is trivial (empty backward support).
	interfRow []int
	// capRow[v] is the master row index of Σ_T x_{v,T} ≤ 1.
	capRow []int
	// numRows is the total number of master rows.
	numRows int
	// back[v] caches backwardSupport(v); fwd[v] caches forwardSupport(v).
	back, fwd [][]int
}

func newLPBuilder(in *Instance) *lpBuilder {
	n, k := in.N(), in.K
	b := &lpBuilder{
		in:        in,
		interfRow: make([]int, n*k),
		capRow:    make([]int, n),
		back:      make([][]int, n),
		fwd:       make([][]int, n),
	}
	row := 0
	for v := 0; v < n; v++ {
		b.back[v] = in.backwardSupport(v)
		b.fwd[v] = in.forwardSupport(v)
		for j := 0; j < k; j++ {
			if len(b.back[v]) == 0 {
				b.interfRow[v*k+j] = -1
				continue
			}
			b.interfRow[v*k+j] = row
			row++
		}
	}
	for v := 0; v < n; v++ {
		b.capRow[v] = row
		row++
	}
	b.numRows = row
	return b
}

// buildMaster assembles the restricted master LP over the given columns.
func (b *lpBuilder) buildMaster(cols []Column) *lp.Problem {
	in := b.in
	k := in.K
	obj := make([]float64, len(cols))
	for i, c := range cols {
		obj[i] = c.Value
	}
	p := lp.NewMaximize(obj)
	rows := make([][]float64, b.numRows)
	for r := range rows {
		rows[r] = make([]float64, len(cols))
	}
	for i, c := range cols {
		// Interference rows: column (u,T) appears in row (v,j) for every
		// forward vertex v of u and every channel j ∈ T, with coefficient
		// coef(u,v).
		for _, v := range b.fwd[c.V] {
			w := in.coef(c.V, v)
			for _, j := range c.T.Channels() {
				if r := b.interfRow[v*k+j]; r >= 0 {
					rows[r][i] = w
				}
			}
		}
		rows[b.capRow[c.V]][i] = 1
	}
	for r := 0; r < b.numRows; r++ {
		rhs := 1.0
		if r < b.capRow[0] {
			rhs = in.Conf.RhoBound
		}
		p.AddConstraint(rows[r], lp.LE, rhs)
	}
	return p
}

// prices computes bidder v's bidder-specific channel prices from the duals:
// p_{v,j} = Σ_{w: v ∈ Γπ(w)} coef(v,w) · y_{w,j}.
func (b *lpBuilder) prices(v int, dual []float64) []float64 {
	k := b.in.K
	p := make([]float64, k)
	for _, w := range b.fwd[v] {
		c := b.in.coef(v, w)
		for j := 0; j < k; j++ {
			if r := b.interfRow[w*k+j]; r >= 0 {
				if y := dual[r]; y > 0 {
					p[j] += c * y
				}
			}
		}
	}
	return p
}

// SolveLP computes the optimum of the LP relaxation by column generation
// with the bidders' demand oracles.
func (in *Instance) SolveLP() (*LPSolution, error) {
	return in.solveLPWith(in.Bidders)
}

// solveLPWith runs column generation for an alternative valuation profile
// over the same conflict structure (used by the Lavi–Swamy decomposition,
// which reprices columns with dual weights).
func (in *Instance) solveLPWith(bidders []valuation.Valuation) (*LPSolution, error) {
	b := newLPBuilder(in)
	seen := make(map[colKey]bool)
	var cols []Column

	addCol := func(v int, t valuation.Bundle) bool {
		if t == valuation.Empty {
			return false
		}
		key := colKey{v, t}
		if seen[key] {
			return false
		}
		seen[key] = true
		cols = append(cols, Column{V: v, T: t, Value: bidders[v].Value(t)})
		return true
	}

	// Seed: each bidder's favorite bundle at zero prices.
	zero := make([]float64, in.K)
	for v := range bidders {
		if t, util := bidders[v].Demand(zero); util > colGenTol {
			addCol(v, t)
		}
	}
	if len(cols) == 0 {
		return &LPSolution{}, nil
	}

	var sol *lp.Solution
	rounds := 0
	for ; rounds < maxColGenRounds; rounds++ {
		p := b.buildMaster(cols)
		s, status, err := p.Solve()
		if err != nil {
			return nil, fmt.Errorf("auction: master LP %v: %w", status, err)
		}
		sol = s
		added := false
		for v := range bidders {
			prices := b.prices(v, s.Dual)
			t, util := bidders[v].Demand(prices)
			z := s.Dual[b.capRow[v]]
			if util-z > colGenTol && addCol(v, t) {
				added = true
			}
		}
		if !added {
			break
		}
	}
	if sol == nil {
		return &LPSolution{}, nil
	}
	return &LPSolution{
		Columns:          cols,
		X:                sol.X,
		Value:            sol.Objective,
		Rounds:           rounds + 1,
		ColumnsGenerated: len(cols),
	}, nil
}

type colKey struct {
	v int
	t valuation.Bundle
}

// SolveLPExplicit solves the relaxation with every bundle written out as an
// explicit column — the "constant number of channels" route of Section 5,
// where bidders are asked for all 2^k−1 bundle values up front. Cost is
// exponential in k; it refuses k > 16. Column generation (SolveLP) reaches
// the same optimum with only oracle access and is the default; this variant
// exists for ground-truthing and for tiny k.
func (in *Instance) SolveLPExplicit() (*LPSolution, error) {
	if in.K > 16 {
		return nil, fmt.Errorf("auction: explicit LP needs k ≤ 16, got %d", in.K)
	}
	var cols []Column
	for v := 0; v < in.N(); v++ {
		for m := 1; m < 1<<uint(in.K); m++ {
			t := valuation.Bundle(m)
			if val := in.Bidders[v].Value(t); val > 0 {
				cols = append(cols, Column{V: v, T: t, Value: val})
			}
		}
	}
	if len(cols) == 0 {
		return &LPSolution{}, nil
	}
	b := newLPBuilder(in)
	sol, status, err := b.buildMaster(cols).Solve()
	if err != nil {
		return nil, fmt.Errorf("auction: explicit LP %v: %w", status, err)
	}
	return &LPSolution{
		Columns:          cols,
		X:                sol.X,
		Value:            sol.Objective,
		Rounds:           1,
		ColumnsGenerated: len(cols),
	}, nil
}

// CheckLPFeasible verifies that (Columns, X) satisfies the relaxation's
// constraints up to tolerance; used by tests and the decomposition.
func (in *Instance) CheckLPFeasible(s *LPSolution, tol float64) error {
	n, k := in.N(), in.K
	capSum := make([]float64, n)
	interf := make([]float64, n*k)
	for i, c := range s.Columns {
		x := s.X[i]
		if x < -tol {
			return fmt.Errorf("auction: negative x[%d]=%g", i, x)
		}
		capSum[c.V] += x
		for _, v := range in.forwardSupport(c.V) {
			w := in.coef(c.V, v)
			for _, j := range c.T.Channels() {
				interf[v*k+j] += w * x
			}
		}
	}
	for v := 0; v < n; v++ {
		if capSum[v] > 1+tol {
			return fmt.Errorf("auction: capacity of %d is %g > 1", v, capSum[v])
		}
		for j := 0; j < k; j++ {
			if interf[v*k+j] > in.Conf.RhoBound+tol {
				return fmt.Errorf("auction: interference row (%d,%d) is %g > rho=%g",
					v, j, interf[v*k+j], in.Conf.RhoBound)
			}
		}
	}
	return nil
}
