package auction

import (
	"math/rand"
	"testing"
)

// TestTheorem3Expectation checks Theorem 3's statement about the
// *expectation*: averaged over many independent roundings, welfare is at
// least b*/(8√k·ρ). We require the empirical mean to clear 70% of the bound
// to keep the test robust against sampling noise (the proof's constants are
// loose, so the realized mean is typically far above the bound).
func TestTheorem3Expectation(t *testing.T) {
	in := testInstance(11, 16, 4)
	sol, err := in.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const trials = 2000
	total := 0.0
	for i := 0; i < trials; i++ {
		s, _ := in.RoundOnce(sol, rng)
		total += s.Welfare(in.Bidders)
	}
	mean := total / trials
	bound := sol.Value / in.ApproximationFactor()
	if mean < 0.7*bound {
		t.Fatalf("empirical mean %g below 0.7×guarantee %g", mean, bound)
	}
}

// TestLemma7Expectation does the same for the weighted rounding: the mean
// over many roundings must clear 70% of b*/(16√kρ⌈log n⌉).
func TestLemma7Expectation(t *testing.T) {
	in := testWeightedInstance(13, 12, 3)
	sol, err := in.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const trials = 1500
	total := 0.0
	for i := 0; i < trials; i++ {
		s, _ := in.RoundOnce(sol, rng)
		total += s.Welfare(in.Bidders)
	}
	mean := total / trials
	bound := sol.Value / in.ApproximationFactor()
	if mean < 0.7*bound {
		t.Fatalf("empirical mean %g below 0.7×guarantee %g", mean, bound)
	}
}

// TestParallelSamplingDeterministic: Solve with the same options must return
// the same welfare regardless of scheduling (per-sample seeding).
func TestParallelSamplingDeterministic(t *testing.T) {
	in := testInstance(17, 14, 3)
	var prev float64
	for trial := 0; trial < 3; trial++ {
		res, err := Solve(in, Options{Seed: 5, Samples: 32})
		if err != nil {
			t.Fatal(err)
		}
		if trial > 0 && res.Welfare != prev {
			t.Fatalf("run %d: welfare %g != %g", trial, res.Welfare, prev)
		}
		prev = res.Welfare
	}
}
