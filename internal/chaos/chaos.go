// Package chaos is the network fault-injection transport of the read-replica
// robustness suite: a TCP proxy that sits between a client (the SDK, a
// Mirror, cmd/brokerproxy) and the broker and injures the byte stream the
// way hostile networks do — connection resets mid-body, responses truncated
// with a clean FIN, silent stalls that neither deliver nor fail, injected
// latency, and total blackouts. The broker process itself is untouched;
// everything the client observes is a plain net failure, which is exactly
// the contract the Mirror must survive.
//
// Faults are injected deterministically from a seeded RNG on a
// per-connection schedule (every Nth accepted connection draws the next
// fault from the configured set, triggering after a jittered byte
// threshold of upstream→client traffic), so a failing test replays.
package chaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"math/rand"
)

// Fault is one injury mode a connection can draw.
type Fault int

// The fault modes.
const (
	// None forwards faithfully.
	None Fault = iota
	// Reset hard-resets the client connection (TCP RST) mid-response body.
	Reset
	// Truncate half-closes the client connection cleanly (FIN) mid-body:
	// the client sees a well-formed stream that simply ends early —
	// the nastier cousin of Reset, because nothing looks broken.
	Truncate
	// Stall stops forwarding without closing anything: bytes neither
	// arrive nor fail until StallFor elapses (then the connection is
	// reset) or the proxy cuts it.
	Stall
)

// String names the fault.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Stall:
		return "stall"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// Config parameterizes a Proxy.
type Config struct {
	// Seed fixes the fault schedule; 0 means seed 1 (always deterministic).
	Seed int64
	// Latency is added before each forwarded upstream→client chunk.
	Latency time.Duration
	// FaultEvery injures every Nth accepted connection (0 disables
	// scheduled faults; Blackout and CutAll still work).
	FaultEvery int
	// Faults is the set scheduled injuries cycle through. Empty with
	// FaultEvery > 0 defaults to {Reset, Truncate, Stall}.
	Faults []Fault
	// FaultAfterBytes is the upstream→client byte threshold a scheduled
	// injury triggers at, jittered up to 2x (default 256 — past typical
	// response headers, so injuries land mid-body).
	FaultAfterBytes int
	// StallFor bounds a Stall before the connection is reset (default 2s).
	StallFor time.Duration
}

// Stats counts what the proxy has done.
type Stats struct {
	Conns    int
	Injected map[Fault]int
}

// Proxy is the chaos transport: Listen on Addr(), forward to the upstream,
// injure per Config. Safe for concurrent use.
type Proxy struct {
	upstream string
	ln       net.Listener

	mu       sync.Mutex
	cfg      Config
	rng      *rand.Rand
	conns    map[net.Conn]struct{}
	blackout bool
	nconn    int
	injected map[Fault]int
	closed   bool
}

// New starts a proxy on an ephemeral localhost port forwarding to upstream
// (a host:port address).
func New(upstream string, cfg Config) (*Proxy, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.FaultAfterBytes <= 0 {
		cfg.FaultAfterBytes = 256
	}
	if cfg.StallFor <= 0 {
		cfg.StallFor = 2 * time.Second
	}
	if cfg.FaultEvery > 0 && len(cfg.Faults) == 0 {
		cfg.Faults = []Fault{Reset, Truncate, Stall}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		upstream: upstream,
		ln:       ln,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		conns:    make(map[net.Conn]struct{}),
		injected: make(map[Fault]int),
	}
	go p.accept()
	return p, nil
}

// Addr is the address clients should dial (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the http base URL of Addr.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetUpstream retargets the proxy (the kill/restore harness restarts the
// broker on a fresh port).
func (p *Proxy) SetUpstream(addr string) {
	p.mu.Lock()
	p.upstream = addr
	p.mu.Unlock()
}

// SetBlackout toggles a total outage: existing connections are cut and new
// ones are reset on accept until the blackout lifts.
func (p *Proxy) SetBlackout(on bool) {
	p.mu.Lock()
	p.blackout = on
	p.mu.Unlock()
	if on {
		p.CutAll()
	}
}

// CutAll hard-resets every connection currently flowing through the proxy.
func (p *Proxy) CutAll() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		hardClose(c)
	}
}

// Stats returns a copy of the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{Conns: p.nconn, Injected: make(map[Fault]int, len(p.injected))}
	for f, n := range p.injected {
		s.Injected[f] = n
	}
	return s
}

// Close stops accepting and cuts everything.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.CutAll()
}

// plan is one connection's injury schedule.
type plan struct {
	fault   Fault
	after   int // upstream→client bytes before the injury triggers
	latency time.Duration
	stall   time.Duration
}

func (p *Proxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.blackout {
			p.mu.Unlock()
			hardClose(c)
			continue
		}
		p.nconn++
		pl := plan{fault: None, latency: p.cfg.Latency, stall: p.cfg.StallFor}
		if n := p.cfg.FaultEvery; n > 0 && p.nconn%n == 0 {
			pl.fault = p.cfg.Faults[(p.nconn/n-1)%len(p.cfg.Faults)]
			pl.after = p.cfg.FaultAfterBytes + p.rng.Intn(p.cfg.FaultAfterBytes+1)
			p.injected[pl.fault]++
		}
		p.conns[c] = struct{}{}
		p.mu.Unlock()
		go p.handle(c, pl)
	}
}

// track registers a conn for CutAll; untrack forgets it.
func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(client net.Conn, pl plan) {
	defer p.untrack(client)
	p.mu.Lock()
	target := p.upstream
	p.mu.Unlock()
	up, err := net.DialTimeout("tcp", target, 5*time.Second)
	if err != nil {
		hardClose(client)
		return
	}
	p.track(up)
	defer p.untrack(up)

	// client→upstream: faithful copy (requests are not injured; the read
	// path under test is the response stream).
	go func() {
		_, _ = io.Copy(up, client)
		// Client went away or was cut: take the upstream leg down too so
		// the handler's WaitEpoch unblocks.
		hardClose(up)
	}()

	p.copyInjured(client, up, pl)
	hardClose(up)
	hardClose(client)
}

// copyInjured forwards upstream→client bytes, applying the connection's
// injury plan.
func (p *Proxy) copyInjured(client, up net.Conn, pl plan) {
	buf := make([]byte, 4096)
	written := 0
	for {
		n, err := up.Read(buf)
		if n > 0 {
			if pl.latency > 0 {
				time.Sleep(pl.latency)
			}
			chunk := buf[:n]
			if pl.fault != None && written+n >= pl.after {
				// Deliver a strict prefix so the injury is observably
				// mid-body, then injure.
				cut := pl.after - written
				if cut >= n {
					cut = n - 1
				}
				if cut > 0 {
					_, _ = client.Write(chunk[:cut])
				}
				switch pl.fault {
				case Reset:
					hardClose(client)
				case Truncate:
					_ = client.Close() // clean FIN: stream "ends" mid-body
				case Stall:
					// Neither deliver nor fail: hold the line dead until
					// the stall window elapses, then reset.
					hardClose(up) // stop buffering upstream bytes
					time.Sleep(pl.stall)
					hardClose(client)
				}
				return
			}
			if _, werr := client.Write(chunk); werr != nil {
				return
			}
			written += n
		}
		if err != nil {
			return
		}
	}
}

// hardClose resets a TCP connection (RST, not FIN) so the peer sees a
// connection error rather than a clean end-of-stream.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}
