package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// bigBody serves a response comfortably larger than any fault threshold so
// every injury lands mid-body.
func bigBody(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		for i := 0; i < 512; i++ {
			fmt.Fprintf(w, "line %04d: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\n", i)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func upstreamAddr(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	return strings.TrimPrefix(srv.URL, "http://")
}

func fetch(url string) ([]byte, error) {
	c := &http.Client{Timeout: 5 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func TestProxyForwardsFaithfully(t *testing.T) {
	srv := bigBody(t)
	p, err := New(upstreamAddr(t, srv), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	direct, err := fetch(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	proxied, err := fetch(p.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	if string(direct) != string(proxied) {
		t.Fatalf("proxied body differs: %d bytes direct vs %d proxied", len(direct), len(proxied))
	}
}

func TestProxyInjectsScheduledFaults(t *testing.T) {
	srv := bigBody(t)
	p, err := New(upstreamAddr(t, srv), Config{
		Seed:       7,
		FaultEvery: 1, // every connection is injured
		Faults:     []Fault{Reset, Truncate},
		StallFor:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	failures := 0
	for i := 0; i < 4; i++ {
		body, err := fetch(p.URL() + "/")
		// A Reset surfaces as a transport error; a Truncate may surface as
		// an unexpected-EOF error or as a silently short body depending on
		// framing. Either way the full body must never arrive intact.
		if err != nil || len(body) < 512*52 {
			failures++
		}
	}
	if failures != 4 {
		t.Fatalf("expected every request to be injured, got %d/4 failures", failures)
	}
	st := p.Stats()
	if st.Conns != 4 {
		t.Fatalf("Conns = %d, want 4", st.Conns)
	}
	if st.Injected[Reset] == 0 || st.Injected[Truncate] == 0 {
		t.Fatalf("expected both fault kinds injected, got %v", st.Injected)
	}
}

func TestProxyStallThenReset(t *testing.T) {
	srv := bigBody(t)
	p, err := New(upstreamAddr(t, srv), Config{
		FaultEvery: 1,
		Faults:     []Fault{Stall},
		StallFor:   300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	start := time.Now()
	_, err = fetch(p.URL() + "/")
	if err == nil {
		t.Fatal("expected stalled request to fail")
	}
	if d := time.Since(start); d < 250*time.Millisecond {
		t.Fatalf("request failed after %v; a stall should hold the line silently first", d)
	}
}

func TestProxyBlackoutAndRecovery(t *testing.T) {
	srv := bigBody(t)
	p, err := New(upstreamAddr(t, srv), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := fetch(p.URL() + "/"); err != nil {
		t.Fatalf("pre-blackout request failed: %v", err)
	}
	p.SetBlackout(true)
	if _, err := fetch(p.URL() + "/"); err == nil {
		t.Fatal("expected request during blackout to fail")
	}
	p.SetBlackout(false)
	if _, err := fetch(p.URL() + "/"); err != nil {
		t.Fatalf("post-blackout request failed: %v", err)
	}
}

func TestProxyCutAllSeversLiveStream(t *testing.T) {
	// An endless SSE-like stream through the proxy must die when CutAll
	// fires, not linger.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl, _ := w.(http.Flusher)
		for i := 0; ; i++ {
			if _, err := fmt.Fprintf(w, "data: tick %d\n\n", i); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			select {
			case <-r.Context().Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
	}))
	defer srv.Close()

	p, err := New(upstreamAddr(t, srv), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	resp, err := http.Get(p.URL() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("stream did not start: %v", err)
	}

	go func() {
		time.Sleep(50 * time.Millisecond)
		p.CutAll()
	}()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("stream survived CutAll")
		}
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
}

func TestProxySetUpstreamRetargets(t *testing.T) {
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "alpha")
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "beta")
	}))
	defer b.Close()

	p, err := New(upstreamAddr(t, a), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	body, err := fetch(p.URL() + "/")
	if err != nil || string(body) != "alpha" {
		t.Fatalf("first upstream: body=%q err=%v", body, err)
	}
	p.SetUpstream(upstreamAddr(t, b))
	body, err = fetch(p.URL() + "/")
	if err != nil || string(body) != "beta" {
		t.Fatalf("retargeted upstream: body=%q err=%v", body, err)
	}
}

func TestHardCloseSendsReset(t *testing.T) {
	// Sanity-check the RST mechanism itself: a peer reading from a
	// hard-closed conn sees an error, not io.EOF.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		// Wait for the client's greeting so the RST cannot race the
		// connect handshake.
		one := make([]byte, 1)
		io.ReadFull(c, one)
		c.Write([]byte("hi"))
		hardClose(c)
		done <- nil
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("x"))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	// Drain the greeting, then the next read should fail with ECONNRESET
	// (not clean EOF). Allow EOF only if the kernel already merged it —
	// on Linux with SetLinger(0) it reliably resets.
	io.ReadFull(c, buf[:2])
	_, err = c.Read(buf)
	if err == nil {
		t.Fatal("expected read error after hard close")
	}
	if errors.Is(err, io.EOF) {
		t.Log("kernel delivered EOF instead of RST; acceptable but unexpected on linux")
	}
}
