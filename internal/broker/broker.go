// Package broker is the live counterpart of internal/market's offline
// simulator: the "eBay in the Sky" spectrum broker of the paper's
// introduction, run as a long-lived concurrent service. Secondary users
// submit, update, and withdraw bids at any time; the broker batches the
// mutations into epochs and, on each Tick, re-clears the market.
//
// Interference is pluggable: a ConflictModel backend (disk, distance-2,
// protocol, IEEE 802.11 — see model.go) owns the bidders' model-specific
// geometry, maintains their conflict graph incrementally as bids come, go,
// and move, and certifies the inductive-independence ordering the LP bound
// rests on. Bids carry either additive per-channel values or XOR atomic
// bids (internal/valuation) over the wire.
//
// The epoch solve is sharded by conflict-graph component. The broker
// partitions the active bidders into connected components
// (graph.ComponentsOrdered), and re-solves only the dirty components:
//
//   - a component whose membership and valuations are unchanged reuses its
//     cached LP solution and rounded candidates — zero solve work;
//   - a component whose membership is unchanged but whose valuations moved
//     re-solves on its persistent auction.MasterLP (lp.Solver.SetObjective
//     warm restart: same tableau, same basis, new objective);
//   - a component whose membership changed gets a fresh master, seeded with
//     the bundle pool its members generated in earlier epochs, so column
//     generation restarts near the optimum instead of from scratch.
//
// Per component the rounding keeps both halves of the paper's size
// decomposition (auction.RoundHalvesDerandomized); the half used for the
// final allocation is chosen once per epoch by total welfare across all
// components. That makes the sharded, incremental epoch path reproduce
// exactly what a from-scratch auction.SolveLP + RoundDerandomized on the
// union instance would return (the LP of a disconnected instance separates
// by component, and Algorithm 1's conflict resolution never crosses a
// component boundary) — the equivalence tests pin this.
package broker

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/valuation"
)

// BidderID identifies one submitted bid for its lifetime.
type BidderID int64

// Bid is one secondary user's submission: model-specific geometry plus a
// valuation. Transmitter models (disk, distance-2) take Pos and Radius; link
// models (protocol, IEEE 802.11) take Link. Exactly one of Values (additive
// per-channel values) and XOR (atomic XOR bids) must be set.
type Bid struct {
	// Pos and Radius place a transmitter's interference disk (disk and
	// distance-2 models).
	Pos    geom.Point `json:"pos"`
	Radius float64    `json:"radius,omitempty"`
	// Link is the sender→receiver pair of the link models.
	Link *geom.Link `json:"link,omitempty"`
	// Values are additive per-channel values (length K).
	Values []float64 `json:"values,omitempty"`
	// XOR lists the atomic bids of an XOR valuation (internal/valuation):
	// a bundle is worth the best atom it contains.
	XOR []XORAtom `json:"xor,omitempty"`
}

// XORAtom is one atomic bid of an XOR valuation on the wire.
type XORAtom struct {
	Channels []int   `json:"channels"`
	Value    float64 `json:"value"`
}

// Values is the wire form of a valuation (used standalone by updates):
// exactly one of Additive and XOR set.
type Values struct {
	Additive []float64 `json:"values,omitempty"`
	XOR      []XORAtom `json:"xor,omitempty"`
}

// Additive wraps additive per-channel values for Update.
func Additive(values []float64) Values { return Values{Additive: values} }

// XORValues wraps XOR atoms for Update.
func XORValues(atoms []XORAtom) Values { return Values{XOR: atoms} }

// XORFromAdditive derives a small XOR atom list from additive per-channel
// values: the best single channel, the best pair, and the full positive
// support, each valued additively. Returns nil when no channel has positive
// value (no expressible XOR bid). The trace replays (E18, brokerd -selftest,
// the equivalence tests) use it to mix XOR bidders into additive workloads
// deterministically.
func XORFromAdditive(values []float64) []XORAtom {
	type cv struct {
		j int
		v float64
	}
	var pos []cv
	for j, v := range values {
		if v > 0 {
			pos = append(pos, cv{j, v})
		}
	}
	if len(pos) == 0 {
		return nil
	}
	sort.Slice(pos, func(i, j int) bool {
		if pos[i].v != pos[j].v {
			return pos[i].v > pos[j].v
		}
		return pos[i].j < pos[j].j
	})
	atoms := []XORAtom{{Channels: []int{pos[0].j}, Value: pos[0].v}}
	if len(pos) >= 2 {
		atoms = append(atoms, XORAtom{
			Channels: []int{pos[0].j, pos[1].j},
			Value:    pos[0].v + pos[1].v,
		})
	}
	if len(pos) >= 3 {
		all := make([]int, len(pos))
		sum := 0.0
		for i, c := range pos {
			all[i] = c.j
			sum += c.v
		}
		atoms = append(atoms, XORAtom{Channels: all, Value: sum})
	}
	return atoms
}

// MixedTraceValues is the shared XOR-mixing convention of the trace replays:
// every 4th trace id bids XORFromAdditive of its values (falling back to
// additive when no channel is positive), everyone else bids additively.
// brokerd -selftest, experiment E18, and the cross-backend equivalence tests
// all translate through this one function so they cannot drift apart in what
// they exercise.
func MixedTraceValues(tid int, values []float64) Values {
	if tid%4 == 3 {
		if atoms := XORFromAdditive(values); atoms != nil {
			return XORValues(atoms)
		}
	}
	return Additive(values)
}

// values extracts a bid's valuation part.
func (bid *Bid) values() Values { return Values{Additive: bid.Values, XOR: bid.XOR} }

// clone deep-copies the wire slices so queued state cannot alias caller
// memory.
func (v Values) clone() Values {
	out := Values{}
	if v.Additive != nil {
		out.Additive = append([]float64(nil), v.Additive...)
	}
	for _, a := range v.XOR {
		out.XOR = append(out.XOR, XORAtom{
			Channels: append([]int(nil), a.Channels...),
			Value:    a.Value,
		})
	}
	return out
}

// valuation builds the in-market valuation object.
func (v Values) valuation(k int) valuation.Valuation {
	if v.Additive != nil {
		return valuation.NewAdditive(v.Additive)
	}
	atoms := make([]valuation.Atom, 0, len(v.XOR))
	for _, a := range v.XOR {
		if a.Value > 0 {
			atoms = append(atoms, valuation.Atom{
				Bundle: valuation.FromChannels(a.Channels...),
				Value:  a.Value,
			})
		}
	}
	return valuation.NewXOR(k, atoms)
}

// support is the union of positively valued channels: for additive, the
// channels worth something; for XOR, the union of positive atoms' bundles.
// Stripping a bundle to the support never changes its value under either
// form.
func (v Values) support() valuation.Bundle {
	var s valuation.Bundle
	if v.Additive != nil {
		for j, val := range v.Additive {
			if val > 0 {
				s = s.With(j)
			}
		}
		return s
	}
	for _, a := range v.XOR {
		if a.Value > 0 {
			s |= valuation.FromChannels(a.Channels...)
		}
	}
	return s
}

// atomSet returns the positive XOR atom bundles, or nil for additive values.
// The broker seeds rebuilt masters only with bundles a fresh demand oracle
// could itself produce; for XOR bidders those are exactly the current atoms.
func (v Values) atomSet() map[valuation.Bundle]bool {
	if v.Additive != nil {
		return nil
	}
	set := make(map[valuation.Bundle]bool, len(v.XOR))
	for _, a := range v.XOR {
		if a.Value > 0 {
			set[valuation.FromChannels(a.Channels...)] = true
		}
	}
	return set
}

func sameAtomSet(a, b map[valuation.Bundle]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for t := range a {
		if !b[t] {
			return false
		}
	}
	return true
}

// Config parameterizes a Broker.
type Config struct {
	// K is the number of channels on the secondary market.
	K int
	// Model is the interference backend conflicts are computed under; nil
	// means DiskModel(). A ConflictModel instance must not be shared between
	// brokers.
	Model ConflictModel
	// Workers bounds the per-epoch solve fan-out; <= 0 means GOMAXPROCS.
	Workers int
	// MaxBidders caps the population (active plus queued submissions);
	// Submit returns ErrFull beyond it. <= 0 means DefaultMaxBidders.
	MaxBidders int
	// Cold disables the component cache, the persistent masters, and the
	// column pool: every epoch re-solves every component from scratch. The
	// reference path for the equivalence tests and the warm-vs-cold
	// benchmark.
	Cold bool
	// Prices additionally runs the Lavi–Swamy mechanism (Section 5) on each
	// re-solved component and serves the scaled fractional-VCG payments.
	Prices bool
}

// DefaultMaxBidders bounds the population when Config.MaxBidders is unset.
const DefaultMaxBidders = 512

// Status describes what the broker currently knows about a bidder id.
type Status string

// Bidder states.
const (
	// StatusPending: submitted, takes effect at the next epoch tick.
	StatusPending Status = "pending"
	// StatusActive: in the market (allocated or not).
	StatusActive Status = "active"
	// StatusGone: withdrawn, departed, or otherwise no longer tracked.
	StatusGone Status = "gone"
	// StatusUnknown: an id the broker never issued.
	StatusUnknown Status = "unknown"
)

// Errors returned by the mutation API.
var (
	ErrFull    = fmt.Errorf("broker: market full")
	ErrUnknown = fmt.Errorf("broker: unknown bidder")
	ErrBadBid  = fmt.Errorf("broker: invalid bid")
)

// opKind tags one queued mutation.
type opKind int

const (
	opSubmit opKind = iota
	opWithdraw
	opUpdate
	opMove
)

type pendingOp struct {
	kind   opKind
	id     BidderID
	bid    Bid    // opSubmit, opMove (geometry only for moves)
	values Values // opUpdate
}

// bidder is one active market participant.
type bidder struct {
	id BidderID
	// bid keeps the committed wire form: the geometry the conflict model
	// placed the bidder with, and the valuation it currently bids.
	bid     Bid
	key     float64             // the model's certifying-ordering sort key
	val     valuation.Valuation // built from bid's Values or XOR
	version int                 // bumped by updates; part of the cache key check
	// support is the set of positively valued channels. Columns the broker
	// seeds or keeps must stay inside it: a zero-valued channel riding along
	// in a bundle creates a degenerate LP vertex whose rounding can diverge
	// from the from-scratch path (and can even hurt neighbors), so bundles
	// are stripped to the support and support-shrinking updates force a
	// master rebuild instead of the in-place warm re-solve.
	support valuation.Bundle
	// xor is the set of current positive XOR atom bundles (nil for additive
	// bidders). Pool seeds for XOR bidders are restricted to it: a stale
	// bundle that is no atom of the current valuation is a column a
	// from-scratch demand oracle would never generate, and its (possibly
	// tied) value invites degenerate optima the cold path doesn't see.
	xor map[valuation.Bundle]bool
	// forceRebuild marks that an update changed the valuation's structure in
	// a way the in-place warm re-solve cannot be trusted with (additive
	// support shrank, XOR atom set changed, or the valuation switched form);
	// consumed (and cleared) by planEpoch.
	forceRebuild bool
	nbrs         map[BidderID]struct{}
}

// setValues installs a validated valuation on the bidder.
func (bd *bidder) setValues(v Values, k int) {
	bd.bid.Values, bd.bid.XOR = v.Additive, v.XOR
	bd.val = v.valuation(k)
	bd.support = v.support()
	bd.xor = v.atomSet()
}

// EpochReport summarizes one Tick.
type EpochReport struct {
	Epoch      int `json:"epoch"`
	Active     int `json:"active"`
	Arrivals   int `json:"arrivals"`
	Departures int `json:"departures"`
	Updates    int `json:"updates"`
	Moves      int `json:"moves"`
	// Components is the epoch's component count; Clean of them were served
	// entirely from cache, WarmResolves re-solved on a persistent master
	// (valuation-only change), Rebuilds built a fresh (pool-seeded) master.
	Components   int `json:"components"`
	Clean        int `json:"clean"`
	WarmResolves int `json:"warm_resolves"`
	Rebuilds     int `json:"rebuilds"`
	// ColumnsGenerated sums the column-generation work of the epoch's
	// re-solved components; PoolAdded counts new bundles entering the pool.
	ColumnsGenerated int `json:"columns_generated"`
	PoolAdded        int `json:"pool_added"`
	// LPValue is the summed fractional optimum, Welfare the committed
	// allocation's welfare, HalfChosen the size-decomposition half picked
	// globally this epoch.
	LPValue    float64       `json:"lp_value"`
	Welfare    float64       `json:"welfare"`
	HalfChosen int           `json:"half_chosen"`
	Alg3Iters  int           `json:"alg3_iters"`
	Errors     int           `json:"errors"`
	Latency    time.Duration `json:"latency_ns"`
}

// Metrics aggregates over the broker's lifetime.
type Metrics struct {
	Epochs       int         `json:"epochs"`
	Submitted    int64       `json:"submitted"`
	Withdrawn    int64       `json:"withdrawn"`
	Updated      int64       `json:"updated"`
	Moved        int64       `json:"moved"`
	Rejected     int64       `json:"rejected"`
	TotalWelfare float64     `json:"total_welfare"`
	CleanTotal   int64       `json:"clean_total"`
	WarmTotal    int64       `json:"warm_total"`
	RebuildTotal int64       `json:"rebuild_total"`
	ErrorsTotal  int64       `json:"errors_total"`
	Last         EpochReport `json:"last"`
}

// Broker is the live market. All exported methods are safe for concurrent
// use; Tick itself is serialized.
type Broker struct {
	cfg Config
	// model is the interference backend; its mutating methods are called
	// only under mu (applyQueue), its pure methods (Validate, Key) anywhere.
	model ConflictModel

	// qmu guards the mutation queue — submissions never block on a solve.
	// Lock order: mu before qmu (Tick holds mu across drain+apply; readers
	// take mu.RLock and then qmu; nothing acquires mu while holding qmu).
	qmu    sync.Mutex
	queue  []pendingOp
	nextID BidderID
	// queuedSub indexes the queue's not-yet-drained submissions, so status
	// lookups are O(1) instead of a queue scan per HTTP request.
	queuedSub map[BidderID]bool
	// pop is the population the cap governs: active bidders plus accepted
	// submissions not yet removed. Submit increments it, cancellations and
	// applied withdrawals decrement it, so the MaxBidders check is exact
	// under any interleaving of Submit and Tick.
	pop     int
	retired map[BidderID]bool // ids withdrawn while still queued

	// tickMu serializes epoch ticks.
	tickMu sync.Mutex

	// rejected counts refused mutations (bad bids, unknown ids, full market).
	rejected atomic.Int64

	// mu guards the committed state served to queries.
	mu      sync.RWMutex
	epoch   int
	bidders map[BidderID]*bidder
	alloc   map[BidderID]valuation.Bundle
	prices  map[BidderID]float64
	comps   map[string]*compEntry
	pool    map[BidderID][]valuation.Bundle
	// snap is the global state the last committed epoch was solved on;
	// Snapshot serves it so snapshot and allocation always describe the
	// same epoch, even while the next epoch's solve is in flight.
	snap    *globalState
	metrics Metrics
}

// New creates a broker.
func New(cfg Config) (*Broker, error) {
	if cfg.K < 1 || cfg.K > valuation.MaxChannels {
		return nil, fmt.Errorf("%w: k=%d out of range [1,%d]", ErrBadBid, cfg.K, valuation.MaxChannels)
	}
	if cfg.MaxBidders <= 0 {
		cfg.MaxBidders = DefaultMaxBidders
	}
	if cfg.Model == nil {
		cfg.Model = DiskModel()
	}
	return &Broker{
		cfg:       cfg,
		model:     cfg.Model,
		bidders:   make(map[BidderID]*bidder),
		alloc:     make(map[BidderID]valuation.Bundle),
		prices:    make(map[BidderID]float64),
		comps:     make(map[string]*compEntry),
		pool:      make(map[BidderID][]valuation.Bundle),
		retired:   make(map[BidderID]bool),
		queuedSub: make(map[BidderID]bool),
	}, nil
}

// Config returns the broker's configuration.
func (b *Broker) Config() Config { return b.cfg }

// Model returns the broker's interference backend.
func (b *Broker) Model() ConflictModel { return b.model }

// maxXORAtoms bounds one bid's XOR atom list (each atom is an LP column
// candidate; an unbounded list is an easy resource-exhaustion vector).
const maxXORAtoms = 128

// validValues vets a valuation's wire form against the market's channel
// count: exactly one of the additive and XOR forms, finite non-negative
// values, channels in range.
func (b *Broker) validValues(v Values) error {
	if v.Additive != nil && v.XOR != nil {
		return fmt.Errorf("%w: both additive and XOR values", ErrBadBid)
	}
	if v.Additive != nil {
		if len(v.Additive) != b.cfg.K {
			return fmt.Errorf("%w: %d values for %d channels", ErrBadBid, len(v.Additive), b.cfg.K)
		}
		for _, val := range v.Additive {
			if math.IsNaN(val) || math.IsInf(val, 0) || val < 0 {
				return fmt.Errorf("%w: channel value %g", ErrBadBid, val)
			}
		}
		return nil
	}
	if len(v.XOR) == 0 {
		return fmt.Errorf("%w: no values", ErrBadBid)
	}
	if len(v.XOR) > maxXORAtoms {
		return fmt.Errorf("%w: %d XOR atoms (max %d)", ErrBadBid, len(v.XOR), maxXORAtoms)
	}
	for _, a := range v.XOR {
		if math.IsNaN(a.Value) || math.IsInf(a.Value, 0) || a.Value < 0 {
			return fmt.Errorf("%w: atom value %g", ErrBadBid, a.Value)
		}
		if len(a.Channels) == 0 {
			return fmt.Errorf("%w: empty XOR atom", ErrBadBid)
		}
		for _, j := range a.Channels {
			if j < 0 || j >= b.cfg.K {
				return fmt.Errorf("%w: atom channel %d out of range [0,%d)", ErrBadBid, j, b.cfg.K)
			}
		}
	}
	return nil
}

// validateBid vets a full submission: valuation against the channel count,
// geometry against the interference model.
func (b *Broker) validateBid(bid *Bid) error {
	if err := b.validValues(bid.values()); err != nil {
		return err
	}
	return b.model.Validate(bid)
}

// cloneBid deep-copies a bid so queued state cannot alias caller memory.
func cloneBid(bid Bid) Bid {
	v := bid.values().clone()
	bid.Values, bid.XOR = v.Additive, v.XOR
	if bid.Link != nil {
		l := *bid.Link
		bid.Link = &l
	}
	return bid
}

// Submit queues a bid; it becomes active at the next Tick. Returns the
// bidder id the market will know it by.
func (b *Broker) Submit(bid Bid) (BidderID, error) {
	if err := b.validateBid(&bid); err != nil {
		b.rejected.Add(1)
		return 0, err
	}
	bid = cloneBid(bid)

	b.qmu.Lock()
	defer b.qmu.Unlock()
	if b.pop >= b.cfg.MaxBidders {
		b.rejected.Add(1)
		return 0, ErrFull
	}
	b.nextID++
	id := b.nextID
	b.pop++
	b.queuedSub[id] = true
	b.queue = append(b.queue, pendingOp{kind: opSubmit, id: id, bid: bid})
	return id, nil
}

// Update queues a valuation change for an active (or still-pending) bidder;
// the valuation may switch between additive and XOR form. Geometry is
// untouched; see Move.
func (b *Broker) Update(id BidderID, v Values) error {
	if err := b.validValues(v); err != nil {
		b.rejected.Add(1)
		return err
	}
	if st := b.StatusOf(id); st != StatusActive && st != StatusPending {
		b.rejected.Add(1)
		return ErrUnknown
	}
	v = v.clone()
	b.qmu.Lock()
	defer b.qmu.Unlock()
	b.queue = append(b.queue, pendingOp{kind: opUpdate, id: id, values: v})
	return nil
}

// Move queues a geometry change for an active (or still-pending) bidder: the
// bid carries the new model-specific geometry and no values (the valuation is
// unchanged). The conflict model computes the incremental edge delta at the
// next tick.
func (b *Broker) Move(id BidderID, bid Bid) error {
	if bid.Values != nil || bid.XOR != nil {
		b.rejected.Add(1)
		return fmt.Errorf("%w: a move carries geometry only", ErrBadBid)
	}
	if err := b.model.Validate(&bid); err != nil {
		b.rejected.Add(1)
		return err
	}
	if st := b.StatusOf(id); st != StatusActive && st != StatusPending {
		b.rejected.Add(1)
		return ErrUnknown
	}
	bid = cloneBid(bid)
	b.qmu.Lock()
	defer b.qmu.Unlock()
	b.queue = append(b.queue, pendingOp{kind: opMove, id: id, bid: bid})
	return nil
}

// Withdraw queues a departure. Withdrawing a still-pending bid cancels it.
func (b *Broker) Withdraw(id BidderID) error {
	if st := b.StatusOf(id); st != StatusActive && st != StatusPending {
		b.rejected.Add(1)
		return ErrUnknown
	}
	b.qmu.Lock()
	defer b.qmu.Unlock()
	b.queue = append(b.queue, pendingOp{kind: opWithdraw, id: id})
	return nil
}

// StatusOf reports what the broker knows about id. "Active" means the last
// committed epoch knows the bidder; a bidder applied mid-tick but not yet
// committed still reports pending, so status, allocation, and snapshot
// always describe the same epoch.
//
// The queue is checked before the committed state: a queued submission can
// only leave the queue by being drained-and-applied atomically under mu, so
// a bid that misses the queue check is guaranteed visible to the subsequent
// mu-guarded check — the reverse order would have a window reporting a
// freshly-submitted bid as gone.
func (b *Broker) StatusOf(id BidderID) Status {
	b.qmu.Lock()
	if id <= 0 || id > b.nextID {
		b.qmu.Unlock()
		return StatusUnknown
	}
	queued, cancelled := b.queuedSub[id], b.retired[id]
	b.qmu.Unlock()
	if queued && !cancelled {
		return StatusPending
	}
	b.mu.RLock()
	committed := false
	if b.snap != nil {
		_, committed = b.snap.idx[id]
	}
	_, applied := b.bidders[id]
	b.mu.RUnlock()
	switch {
	case committed:
		return StatusActive
	case applied:
		return StatusPending // lands in the epoch being solved right now
	}
	return StatusGone
}

// Allocation returns the bundle granted to id in the last committed epoch
// (Empty when the bidder holds nothing) and its status.
func (b *Broker) Allocation(id BidderID) (valuation.Bundle, Status) {
	b.mu.RLock()
	if b.snap != nil {
		if _, ok := b.snap.idx[id]; ok {
			t := b.alloc[id]
			b.mu.RUnlock()
			return t, StatusActive
		}
	}
	b.mu.RUnlock()
	return valuation.Empty, b.StatusOf(id)
}

// Price returns id's committed Lavi–Swamy payment (0 unless Config.Prices).
func (b *Broker) Price(id BidderID) (float64, Status) {
	b.mu.RLock()
	if b.snap != nil {
		if _, ok := b.snap.idx[id]; ok {
			p := b.prices[id]
			b.mu.RUnlock()
			return p, StatusActive
		}
	}
	b.mu.RUnlock()
	return 0, b.StatusOf(id)
}

// Epoch returns the number of completed ticks.
func (b *Broker) Epoch() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.epoch
}

// Metrics returns a copy of the lifetime metrics.
func (b *Broker) Metrics() Metrics {
	b.mu.RLock()
	defer b.mu.RUnlock()
	m := b.metrics
	m.Rejected = b.rejected.Load()
	return m
}

// activeIDs returns the active ids ascending. Callers hold at least mu.RLock.
func (b *Broker) activeIDs() []BidderID {
	ids := make([]BidderID, 0, len(b.bidders))
	for id := range b.bidders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// applyDelta folds a model's edge delta into the maintained neighbor sets.
// Caller holds mu.Lock.
func (b *Broker) applyDelta(d EdgeDelta) {
	for _, e := range d.Added {
		u, v := b.bidders[e[0]], b.bidders[e[1]]
		if u == nil || v == nil {
			continue
		}
		u.nbrs[v.id] = struct{}{}
		v.nbrs[u.id] = struct{}{}
	}
	for _, e := range d.Removed {
		if u := b.bidders[e[0]]; u != nil {
			delete(u.nbrs, e[1])
		}
		if v := b.bidders[e[1]]; v != nil {
			delete(v.nbrs, e[0])
		}
	}
}

// applyQueue drains the mutation queue into the committed bidder set and the
// model's incremental adjacency. Caller holds mu.Lock. Dirtiness does not
// need explicit tracking: planEpoch compares each component's membership key
// and valuation versions against the cache, so any effect of these mutations
// is discovered there.
func (b *Broker) applyQueue(ops []pendingOp) (arr, dep, upd, mov int) {
	for _, op := range ops {
		switch op.kind {
		case opSubmit:
			nb := &bidder{
				id:   op.id,
				bid:  op.bid,
				key:  b.model.Key(&op.bid),
				nbrs: make(map[BidderID]struct{}),
			}
			nb.setValues(op.bid.values(), b.cfg.K)
			b.bidders[nb.id] = nb
			b.applyDelta(b.model.Arrive(nb.id, &nb.bid))
			arr++
		case opWithdraw:
			ob, ok := b.bidders[op.id]
			if !ok {
				// Already removed in this batch (double withdraw); not a
				// departure of an actual bidder.
				continue
			}
			for nid := range ob.nbrs {
				delete(b.bidders[nid].nbrs, op.id)
			}
			// b.alloc and b.prices are left alone: they describe the last
			// committed epoch (in which this bidder may be a winner) and are
			// replaced wholesale at commit.
			delete(b.bidders, op.id)
			delete(b.pool, op.id)
			b.applyDelta(b.model.Depart(op.id))
			dep++
		case opUpdate:
			ob, ok := b.bidders[op.id]
			if !ok {
				continue // withdrawn in the same batch; drop silently
			}
			oldSupport, oldXOR := ob.support, ob.xor
			ob.setValues(op.values, b.cfg.K)
			switch {
			case oldXOR == nil && ob.xor == nil:
				// Additive→additive: a support shrink poisons the persistent
				// master (see bidder.support).
				if oldSupport&^ob.support != 0 {
					ob.forceRebuild = true
				}
			case oldXOR != nil && ob.xor != nil:
				// XOR→XOR: a changed atom set invalidates pooled columns.
				if !sameAtomSet(oldXOR, ob.xor) {
					ob.forceRebuild = true
				}
			default:
				// The valuation switched form; rebuild unconditionally.
				ob.forceRebuild = true
			}
			ob.version++
			upd++
		case opMove:
			ob, ok := b.bidders[op.id]
			if !ok {
				continue // withdrawn in the same batch; drop silently
			}
			ob.bid.Pos, ob.bid.Radius = op.bid.Pos, op.bid.Radius
			ob.bid.Link = op.bid.Link
			ob.key = b.model.Key(&ob.bid)
			d := b.model.Move(ob.id, &ob.bid)
			b.applyDelta(d)
			// A move can rewire a component's internal conflict edges while
			// preserving its membership, per-member ordering keys, and
			// valuation versions — everything the component cache keys on — so
			// neither the cached solution nor the warm SetObjective re-solve
			// (same tableau, old conflict columns) can be trusted. Force a
			// rebuild of every component the delta touches: the mover's, and
			// those of both endpoints of each changed edge (a distance-2 move
			// can add or remove bridge edges between two bidders whose
			// component no longer contains the mover).
			ob.forceRebuild = true
			for _, es := range [][][2]BidderID{d.Added, d.Removed} {
				for _, e := range es {
					for _, nid := range e {
						if nb := b.bidders[nid]; nb != nil {
							nb.forceRebuild = true
						}
					}
				}
			}
			mov++
		}
	}
	return arr, dep, upd, mov
}

// Tick closes the current epoch: queued mutations are applied, the conflict
// graph re-partitioned, dirty components re-solved (fanned across the worker
// pool), and the new allocation committed. Queries keep serving the previous
// committed epoch — status, allocation, prices, and snapshot all describe it
// consistently — until the commit swaps everything at once.
func (b *Broker) Tick() EpochReport {
	b.tickMu.Lock()
	defer b.tickMu.Unlock()
	start := time.Now()

	// Phase 1 (exclusive): drain and apply mutations atomically with
	// respect to readers, then partition and plan the solve.
	b.mu.Lock()
	b.qmu.Lock()
	ops := b.queue
	b.queue = nil
	// Remember withdrawn-before-apply ids so StatusOf answers "gone", and
	// cancel submissions withdrawn in the same batch.
	cancelled := make(map[BidderID]bool)
	for _, op := range ops {
		switch op.kind {
		case opSubmit:
			delete(b.queuedSub, op.id)
		case opWithdraw:
			b.retired[op.id] = true
			cancelled[op.id] = true
		}
	}
	if len(b.retired) > 4*b.cfg.MaxBidders {
		b.retired = make(map[BidderID]bool) // bound memory; StatusOf still says gone via id range
	}
	kept := ops[:0]
	for _, op := range ops {
		if op.kind == opSubmit && cancelled[op.id] {
			b.pop-- // cancelled before ever becoming active
			continue
		}
		kept = append(kept, op)
	}
	ops = kept
	b.qmu.Unlock()

	// Idle fast path: nothing changed, so the committed state is already
	// this epoch's answer — skip the re-partition and the map rebuilds
	// (unless a component failed last epoch and must retry).
	if len(ops) == 0 && b.snap != nil && b.metrics.Last.Errors == 0 {
		rep := b.metrics.Last
		rep.Arrivals, rep.Departures, rep.Updates, rep.Moves = 0, 0, 0, 0
		rep.ColumnsGenerated, rep.PoolAdded, rep.Errors = 0, 0, 0
		rep.Clean, rep.WarmResolves, rep.Rebuilds = rep.Components, 0, 0
		b.epoch++
		rep.Epoch = b.epoch
		rep.Latency = time.Since(start)
		b.metrics.Epochs++
		b.metrics.TotalWelfare += rep.Welfare
		b.metrics.CleanTotal += int64(rep.Clean)
		b.metrics.Last = rep
		b.mu.Unlock()
		return rep
	}

	rep := EpochReport{Epoch: b.epoch + 1}
	rep.Arrivals, rep.Departures, rep.Updates, rep.Moves = b.applyQueue(ops)
	b.qmu.Lock()
	b.pop -= rep.Departures
	b.qmu.Unlock()
	rep.Active = len(b.bidders)
	plan := b.planEpoch()
	rep.Components = len(plan.entries)
	rep.Clean = plan.clean
	rep.WarmResolves = plan.warm
	rep.Rebuilds = len(plan.jobs) - plan.warm
	b.mu.Unlock()

	// Phase 2 (concurrent): solve the dirty components.
	b.solveJobs(plan.jobs)

	// Phase 3 (exclusive): commit.
	b.mu.Lock()
	b.commitEpoch(plan, &rep)
	rep.Latency = time.Since(start)
	b.metrics.Epochs++
	b.metrics.Submitted += int64(rep.Arrivals)
	b.metrics.Withdrawn += int64(rep.Departures)
	b.metrics.Updated += int64(rep.Updates)
	b.metrics.Moved += int64(rep.Moves)
	b.metrics.TotalWelfare += rep.Welfare
	b.metrics.CleanTotal += int64(rep.Clean)
	b.metrics.WarmTotal += int64(rep.WarmResolves)
	b.metrics.RebuildTotal += int64(rep.Rebuilds)
	b.metrics.ErrorsTotal += int64(rep.Errors)
	b.metrics.Last = rep
	b.mu.Unlock()
	return rep
}
