// Package broker is the live counterpart of internal/market's offline
// simulator: the "eBay in the Sky" spectrum broker of the paper's
// introduction, run as a long-lived concurrent service. Secondary users
// submit, update, and withdraw bids at any time; the broker batches the
// mutations into epochs and, on each Tick, re-clears the market.
//
// Interference is pluggable: a ConflictModel backend (disk, distance-2,
// protocol, IEEE 802.11 — see model.go) owns the bidders' model-specific
// geometry, maintains their conflict graph incrementally as bids come, go,
// and move, and certifies the inductive-independence ordering the LP bound
// rests on. Bids carry either additive per-channel values or XOR atomic
// bids (internal/valuation) over the wire.
//
// The epoch solve is sharded by conflict-graph component. The broker
// partitions the active bidders into connected components
// (graph.ComponentsOrdered), and re-solves only the dirty components:
//
//   - a component whose membership and valuations are unchanged reuses its
//     cached LP solution and rounded candidates — zero solve work;
//   - a component whose membership is unchanged but whose valuations moved
//     re-solves on its persistent auction.MasterLP (lp.Solver.SetObjective
//     warm restart: same tableau, same basis, new objective);
//   - a component whose membership changed gets a fresh master, seeded with
//     the bundle pool its members generated in earlier epochs, so column
//     generation restarts near the optimum instead of from scratch.
//
// Per component the rounding keeps both halves of the paper's size
// decomposition (auction.RoundHalvesDerandomized); the half used for the
// final allocation is chosen once per epoch by total welfare across all
// components. That makes the sharded, incremental epoch path reproduce
// exactly what a from-scratch auction.SolveLP + RoundDerandomized on the
// union instance would return (the LP of a disconnected instance separates
// by component, and Algorithm 1's conflict resolution never crosses a
// component boundary) — the equivalence tests pin this.
package broker

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/valuation"
	"repro/pkg/spectrum"
)

// The wire types are owned by the public SDK (pkg/spectrum) and aliased
// here, so the server and every client marshal the same bytes by
// construction. Broker code keeps using the historical names.
type (
	// BidderID identifies one submitted bid for its lifetime.
	BidderID = spectrum.BidderID
	// Bid is one secondary user's submission: model-specific geometry plus
	// a valuation (additive per-channel values or XOR atoms).
	Bid = spectrum.Bid
	// XORAtom is one atomic bid of an XOR valuation on the wire.
	XORAtom = spectrum.XORAtom
	// Values is the wire form of a valuation (used standalone by updates).
	Values = spectrum.Values
	// Status describes what the broker currently knows about a bidder id.
	Status = spectrum.Status
	// EpochReport summarizes one Tick; it is also the /v1/watch event body.
	EpochReport = spectrum.EpochReport
)

// Additive wraps additive per-channel values for Update.
func Additive(values []float64) Values { return spectrum.Additive(values) }

// XORValues wraps XOR atoms for Update.
func XORValues(atoms []XORAtom) Values { return spectrum.XORValues(atoms) }

// bidValues extracts a bid's valuation part.
func bidValues(bid *Bid) Values { return Values{Additive: bid.Values, XOR: bid.XOR} }

// cloneValues deep-copies the wire slices so queued state cannot alias
// caller memory.
func cloneValues(v Values) Values {
	out := Values{}
	if v.Additive != nil {
		out.Additive = append([]float64(nil), v.Additive...)
	}
	for _, a := range v.XOR {
		out.XOR = append(out.XOR, XORAtom{
			Channels: append([]int(nil), a.Channels...),
			Value:    a.Value,
		})
	}
	return out
}

// buildValuation builds the in-market valuation object.
func buildValuation(v Values, k int) valuation.Valuation {
	if v.Additive != nil {
		return valuation.NewAdditive(v.Additive)
	}
	atoms := make([]valuation.Atom, 0, len(v.XOR))
	for _, a := range v.XOR {
		if a.Value > 0 {
			atoms = append(atoms, valuation.Atom{
				Bundle: valuation.FromChannels(a.Channels...),
				Value:  a.Value,
			})
		}
	}
	return valuation.NewXOR(k, atoms)
}

// valuesSupport is the union of positively valued channels: for additive,
// the channels worth something; for XOR, the union of positive atoms'
// bundles. Stripping a bundle to the support never changes its value under
// either form.
func valuesSupport(v Values) valuation.Bundle {
	var s valuation.Bundle
	if v.Additive != nil {
		for j, val := range v.Additive {
			if val > 0 {
				s = s.With(j)
			}
		}
		return s
	}
	for _, a := range v.XOR {
		if a.Value > 0 {
			s |= valuation.FromChannels(a.Channels...)
		}
	}
	return s
}

// valuesAtomSet returns the positive XOR atom bundles, or nil for additive
// values. The broker seeds rebuilt masters only with bundles a fresh demand
// oracle could itself produce; for XOR bidders those are exactly the current
// atoms.
func valuesAtomSet(v Values) map[valuation.Bundle]bool {
	if v.Additive != nil {
		return nil
	}
	set := make(map[valuation.Bundle]bool, len(v.XOR))
	for _, a := range v.XOR {
		if a.Value > 0 {
			set[valuation.FromChannels(a.Channels...)] = true
		}
	}
	return set
}

func sameAtomSet(a, b map[valuation.Bundle]bool) bool {
	if len(a) != len(b) {
		return false
	}
	//reprovet:unordered pure membership test; every visit order yields the same result
	for t := range a {
		if !b[t] {
			return false
		}
	}
	return true
}

// Config parameterizes a Broker.
type Config struct {
	// K is the number of channels on the secondary market.
	K int
	// Model is the interference backend conflicts are computed under; nil
	// means DiskModel(). A ConflictModel instance must not be shared between
	// brokers.
	Model ConflictModel
	// Workers bounds the per-epoch solve fan-out; <= 0 means GOMAXPROCS.
	Workers int
	// MaxBidders caps the population (active plus queued submissions);
	// Submit returns ErrFull beyond it. <= 0 means DefaultMaxBidders.
	MaxBidders int
	// CompCacheCap bounds the component solve cache. Entries are retained
	// across epochs — a component that dissolves under churn and re-forms
	// later hits its cached solution — and evicted least-recently-used
	// beyond the cap. 0 means DefaultCompCacheCap; negative means unbounded.
	CompCacheCap int
	// Cold disables the component cache, the persistent masters, and the
	// column pool: every epoch re-solves every component from scratch. The
	// reference path for the equivalence tests and the warm-vs-cold
	// benchmark.
	Cold bool
	// Prices additionally runs the Lavi–Swamy mechanism (Section 5) on each
	// re-solved component and serves the scaled fractional-VCG payments.
	Prices bool
}

// DefaultMaxBidders bounds the population when Config.MaxBidders is unset.
const DefaultMaxBidders = 512

// DefaultCompCacheCap bounds the component solve cache when
// Config.CompCacheCap is unset. Sized so the cache comfortably holds every
// component of a full default market plus a churn tail of dissolved shapes,
// while capping the retained masters' memory under adversarial churn.
const DefaultCompCacheCap = 4096

// Bidder states, re-exported from the wire schema.
const (
	// StatusPending: submitted, takes effect at the next epoch tick.
	StatusPending = spectrum.StatusPending
	// StatusActive: in the market (allocated or not).
	StatusActive = spectrum.StatusActive
	// StatusGone: withdrawn, departed, or otherwise no longer tracked.
	StatusGone = spectrum.StatusGone
	// StatusUnknown: an id the broker never issued.
	StatusUnknown = spectrum.StatusUnknown
)

// Errors returned by the mutation API.
var (
	ErrFull    = fmt.Errorf("broker: market full")
	ErrUnknown = fmt.Errorf("broker: unknown bidder")
	ErrBadBid  = fmt.Errorf("broker: invalid bid")
)

// opKind tags one queued mutation.
type opKind int

const (
	opSubmit opKind = iota
	opWithdraw
	opUpdate
	opMove
)

type pendingOp struct {
	kind   opKind
	id     BidderID
	bid    Bid    // opSubmit, opMove (geometry only for moves)
	values Values // opUpdate
}

// bidder is one active market participant.
type bidder struct {
	id BidderID
	// bid keeps the committed wire form: the geometry the conflict model
	// placed the bidder with, and the valuation it currently bids.
	bid     Bid
	key     float64             // the model's certifying-ordering sort key
	val     valuation.Valuation // built from bid's Values or XOR
	version int                 // bumped by updates; part of the cache key check
	// support is the set of positively valued channels. Columns the broker
	// seeds or keeps must stay inside it: a zero-valued channel riding along
	// in a bundle creates a degenerate LP vertex whose rounding can diverge
	// from the from-scratch path (and can even hurt neighbors), so bundles
	// are stripped to the support and support-shrinking updates force a
	// master rebuild instead of the in-place warm re-solve.
	support valuation.Bundle
	// xor is the set of current positive XOR atom bundles (nil for additive
	// bidders). Pool seeds for XOR bidders are restricted to it: a stale
	// bundle that is no atom of the current valuation is a column a
	// from-scratch demand oracle would never generate, and its (possibly
	// tied) value invites degenerate optima the cold path doesn't see.
	xor map[valuation.Bundle]bool
	// forceRebuild marks that an update changed the valuation's structure in
	// a way the in-place warm re-solve cannot be trusted with (additive
	// support shrank, XOR atom set changed, or the valuation switched form);
	// consumed (and cleared) by planEpoch.
	forceRebuild bool
	// expires is the absolute epoch at which the broker withdraws this bid
	// itself (Bid.LeaseEpochs counted from the activation epoch); 0 means no
	// lease. A deterministic function of the submit op and its commit epoch,
	// so journal replay reproduces the expiration schedule without the
	// synthesized withdrawals ever being journaled.
	expires int
	nbrs    map[BidderID]struct{}
}

// setValues installs a validated valuation on the bidder.
func (bd *bidder) setValues(v Values, k int) {
	bd.bid.Values, bd.bid.XOR = v.Additive, v.XOR
	bd.val = buildValuation(v, k)
	bd.support = valuesSupport(v)
	bd.xor = valuesAtomSet(v)
}

// Metrics aggregates over the broker's lifetime.
type Metrics struct {
	Epochs    int   `json:"epochs"`
	Submitted int64 `json:"submitted"`
	Withdrawn int64 `json:"withdrawn"`
	Updated   int64 `json:"updated"`
	Moved     int64 `json:"moved"`
	// Expired counts broker-enforced lease expirations (a subset of the
	// departures in Withdrawn's sense: every expiry is also a departure).
	Expired      int64   `json:"expired"`
	Rejected     int64   `json:"rejected"`
	TotalWelfare float64 `json:"total_welfare"`
	CleanTotal   int64   `json:"clean_total"`
	WarmTotal    int64   `json:"warm_total"`
	RebuildTotal int64   `json:"rebuild_total"`
	ErrorsTotal  int64   `json:"errors_total"`
	// Evicted counts component cache entries dropped by the LRU cap
	// (Config.CompCacheCap).
	Evicted int64 `json:"evicted"`
	// JournalErrors counts epoch commits whose durability hook failed (the
	// epoch stays committed in memory; the journal is behind).
	JournalErrors int64 `json:"journal_errors"`
	// DroppedSubscribers counts watch streams the broker severed because the
	// subscriber could not keep up (an event write exceeded its deadline).
	DroppedSubscribers int64       `json:"dropped_subscribers"`
	Last               EpochReport `json:"last"`
}

// Broker is the live market. All exported methods are safe for concurrent
// use; Tick itself is serialized.
type Broker struct {
	cfg Config
	// model is the interference backend; its mutating methods are called
	// only under mu (applyQueue), its pure methods (Validate, Key) anywhere.
	model ConflictModel

	// qmu guards the mutation queue — submissions never block on a solve.
	// Lock order: mu before qmu (Tick holds mu across drain+apply; readers
	// take mu.RLock and then qmu; nothing acquires mu while holding qmu).
	qmu    sync.Mutex
	queue  []pendingOp
	nextID BidderID
	// queuedSub indexes the queue's not-yet-drained submissions, so status
	// lookups are O(1) instead of a queue scan per HTTP request.
	queuedSub map[BidderID]bool
	// pop is the population the cap governs: active bidders plus accepted
	// submissions not yet removed. Submit increments it, cancellations and
	// applied withdrawals decrement it, so the MaxBidders check is exact
	// under any interleaving of Submit and Tick.
	pop     int
	retired map[BidderID]bool // ids withdrawn while still queued
	// idem stores, per client-supplied idempotency key, the result of the
	// accepted batch item it first rode in on; idemOrder bounds the store
	// FIFO. Both are guarded by qmu.
	idem      map[string]spectrum.OpResult
	idemOrder []string

	// tickMu serializes epoch ticks. It also guards onCommit: the hook is
	// installed and invoked under it, so a hook never observes a half-tick.
	tickMu   sync.Mutex
	onCommit func(CommitRecord) error

	// durable mirrors "a commit hook is attached"; recovered holds the epoch
	// this broker was restored at (-1 = never restored); journalErrs counts
	// commit-hook failures. All are read lock-free by the HTTP layer.
	durable     atomic.Bool
	recovered   atomic.Int64
	journalErrs atomic.Int64

	// rejected counts refused mutations (bad bids, unknown ids, full market).
	rejected atomic.Int64
	// droppedSubs counts watch subscribers severed for falling behind.
	droppedSubs atomic.Int64

	// mu guards the committed state served to queries.
	mu    sync.RWMutex
	epoch int
	// lastPlan is the epoch of the last planned (non-idle) commit — the
	// liveness horizon for warm re-solves: idle ticks advance epoch but
	// consume no forceRebuild flags, so an entry that served at lastPlan is
	// still structurally current (see compEntry.lastEpoch).
	lastPlan int
	bidders  map[BidderID]*bidder
	alloc    map[BidderID]valuation.Bundle
	prices   map[BidderID]float64
	comps    map[string]*compEntry
	// lru orders the cache entries by recency (front = touched this epoch);
	// commitEpoch evicts from the back past Config.CompCacheCap.
	lru  *list.List
	pool map[BidderID][]valuation.Bundle
	// snap is the global state the last committed epoch was solved on;
	// Snapshot serves it so snapshot and allocation always describe the
	// same epoch, even while the next epoch's solve is in flight.
	snap    *globalState
	metrics Metrics
	// epochCh is closed and replaced at every epoch commit; WaitEpoch
	// blocks on it. Guarded by mu.
	epochCh chan struct{}
}

// New creates a broker.
func New(cfg Config) (*Broker, error) {
	if cfg.K < 1 || cfg.K > valuation.MaxChannels {
		return nil, fmt.Errorf("%w: k=%d out of range [1,%d]", ErrBadBid, cfg.K, valuation.MaxChannels)
	}
	if cfg.MaxBidders <= 0 {
		cfg.MaxBidders = DefaultMaxBidders
	}
	if cfg.CompCacheCap == 0 {
		cfg.CompCacheCap = DefaultCompCacheCap
	}
	if cfg.Model == nil {
		cfg.Model = DiskModel()
	}
	b := &Broker{
		cfg:       cfg,
		model:     cfg.Model,
		bidders:   make(map[BidderID]*bidder),
		alloc:     make(map[BidderID]valuation.Bundle),
		prices:    make(map[BidderID]float64),
		comps:     make(map[string]*compEntry),
		lru:       list.New(),
		pool:      make(map[BidderID][]valuation.Bundle),
		retired:   make(map[BidderID]bool),
		queuedSub: make(map[BidderID]bool),
		idem:      make(map[string]spectrum.OpResult),
		epochCh:   make(chan struct{}),
	}
	b.recovered.Store(-1)
	return b, nil
}

// Config returns the broker's configuration.
func (b *Broker) Config() Config { return b.cfg }

// Model returns the broker's interference backend.
func (b *Broker) Model() ConflictModel { return b.model }

// maxXORAtoms bounds one bid's XOR atom list (each atom is an LP column
// candidate; an unbounded list is an easy resource-exhaustion vector).
const maxXORAtoms = 128

// validValues vets a valuation's wire form against the market's channel
// count: exactly one of the additive and XOR forms, finite non-negative
// values, channels in range.
func (b *Broker) validValues(v Values) error {
	if v.Additive != nil && v.XOR != nil {
		return fmt.Errorf("%w: both additive and XOR values", ErrBadBid)
	}
	if v.Additive != nil {
		if len(v.Additive) != b.cfg.K {
			return fmt.Errorf("%w: %d values for %d channels", ErrBadBid, len(v.Additive), b.cfg.K)
		}
		for _, val := range v.Additive {
			if math.IsNaN(val) || math.IsInf(val, 0) || val < 0 {
				return fmt.Errorf("%w: channel value %g", ErrBadBid, val)
			}
		}
		return nil
	}
	if len(v.XOR) == 0 {
		return fmt.Errorf("%w: no values", ErrBadBid)
	}
	if len(v.XOR) > maxXORAtoms {
		return fmt.Errorf("%w: %d XOR atoms (max %d)", ErrBadBid, len(v.XOR), maxXORAtoms)
	}
	for _, a := range v.XOR {
		if math.IsNaN(a.Value) || math.IsInf(a.Value, 0) || a.Value < 0 {
			return fmt.Errorf("%w: atom value %g", ErrBadBid, a.Value)
		}
		if len(a.Channels) == 0 {
			return fmt.Errorf("%w: empty XOR atom", ErrBadBid)
		}
		for _, j := range a.Channels {
			if j < 0 || j >= b.cfg.K {
				return fmt.Errorf("%w: atom channel %d out of range [0,%d)", ErrBadBid, j, b.cfg.K)
			}
		}
	}
	return nil
}

// maxLeaseEpochs bounds a bid's TTL (a negative lease would expire a bid
// into the past; an absurdly large one is almost certainly a client bug).
const maxLeaseEpochs = 1 << 30

// validateBid vets a full submission: valuation against the channel count,
// geometry against the interference model, lease within range.
func (b *Broker) validateBid(bid *Bid) error {
	if err := b.validValues(bidValues(bid)); err != nil {
		return err
	}
	if bid.LeaseEpochs < 0 || bid.LeaseEpochs > maxLeaseEpochs {
		return fmt.Errorf("%w: lease %d epochs out of range [0,%d]", ErrBadBid, bid.LeaseEpochs, maxLeaseEpochs)
	}
	return b.model.Validate(bid)
}

// cloneBid deep-copies a bid so queued state cannot alias caller memory.
func cloneBid(bid Bid) Bid {
	v := cloneValues(bidValues(&bid))
	bid.Values, bid.XOR = v.Additive, v.XOR
	if bid.Link != nil {
		l := *bid.Link
		bid.Link = &l
	}
	return bid
}

// Submit queues a bid; it becomes active at the next Tick. Returns the
// bidder id the market will know it by.
func (b *Broker) Submit(bid Bid) (BidderID, error) {
	if err := b.validateBid(&bid); err != nil {
		b.rejected.Add(1)
		return 0, err
	}
	bid = cloneBid(bid)

	b.qmu.Lock()
	defer b.qmu.Unlock()
	if b.pop >= b.cfg.MaxBidders {
		b.rejected.Add(1)
		return 0, ErrFull
	}
	b.nextID++
	id := b.nextID
	b.pop++
	b.queuedSub[id] = true
	b.queue = append(b.queue, pendingOp{kind: opSubmit, id: id, bid: bid})
	return id, nil
}

// Update queues a valuation change for an active (or still-pending) bidder;
// the valuation may switch between additive and XOR form. Geometry is
// untouched; see Move.
func (b *Broker) Update(id BidderID, v Values) error {
	if err := b.validValues(v); err != nil {
		b.rejected.Add(1)
		return err
	}
	if st := b.StatusOf(id); st != StatusActive && st != StatusPending {
		b.rejected.Add(1)
		return ErrUnknown
	}
	v = cloneValues(v)
	b.qmu.Lock()
	defer b.qmu.Unlock()
	b.queue = append(b.queue, pendingOp{kind: opUpdate, id: id, values: v})
	return nil
}

// Move queues a geometry change for an active (or still-pending) bidder: the
// bid carries the new model-specific geometry and no values (the valuation is
// unchanged). The conflict model computes the incremental edge delta at the
// next tick.
func (b *Broker) Move(id BidderID, bid Bid) error {
	if bid.Values != nil || bid.XOR != nil || bid.LeaseEpochs != 0 {
		b.rejected.Add(1)
		return fmt.Errorf("%w: a move carries geometry only", ErrBadBid)
	}
	if err := b.model.Validate(&bid); err != nil {
		b.rejected.Add(1)
		return err
	}
	if st := b.StatusOf(id); st != StatusActive && st != StatusPending {
		b.rejected.Add(1)
		return ErrUnknown
	}
	bid = cloneBid(bid)
	b.qmu.Lock()
	defer b.qmu.Unlock()
	b.queue = append(b.queue, pendingOp{kind: opMove, id: id, bid: bid})
	return nil
}

// Withdraw queues a departure. Withdrawing a still-pending bid cancels it.
func (b *Broker) Withdraw(id BidderID) error {
	if st := b.StatusOf(id); st != StatusActive && st != StatusPending {
		b.rejected.Add(1)
		return ErrUnknown
	}
	b.qmu.Lock()
	defer b.qmu.Unlock()
	b.queue = append(b.queue, pendingOp{kind: opWithdraw, id: id})
	return nil
}

// maxIdemKeys bounds the idempotency-key store; the oldest key is evicted
// FIFO beyond it (a replay older than the window re-executes).
const maxIdemKeys = 8192

// idemPut records an accepted batch item under its idempotency key.
// Caller holds qmu.
func (b *Broker) idemPut(key string, r spectrum.OpResult) {
	if _, dup := b.idem[key]; !dup {
		if len(b.idemOrder) >= maxIdemKeys {
			delete(b.idem, b.idemOrder[0])
			b.idemOrder = b.idemOrder[1:]
		}
		b.idemOrder = append(b.idemOrder, key)
	}
	b.idem[key] = r
}

// statusLocked mirrors StatusOf for callers holding both mu.RLock and qmu
// (in that order); under both locks the queue and the committed state are a
// single consistent view, so no re-check dance is needed.
func (b *Broker) statusLocked(id BidderID) Status {
	if id <= 0 || id > b.nextID {
		return StatusUnknown
	}
	if b.queuedSub[id] && !b.retired[id] {
		return StatusPending
	}
	if b.snap != nil {
		if _, ok := b.snap.idx[id]; ok {
			return StatusActive
		}
	}
	if _, ok := b.bidders[id]; ok {
		return StatusPending
	}
	return StatusGone
}

// opResultErr shapes a rejected batch item.
func opResultErr(id BidderID, code int, err error) spectrum.OpResult {
	return spectrum.OpResult{ID: id, Code: code, Error: err.Error()}
}

// Batch applies an ordered list of mutations as one request: every op is
// validated independently (an invalid item is reported in its slot and does
// NOT abort the rest), and all accepted ops are enqueued under a single
// acquisition of the queue lock, in list order — one Batch call can carry a
// whole trace step and pays the lock and status-lookup overhead once.
//
// Idempotency: an op carrying a Key whose key was already accepted returns
// the stored result (Replayed=true) instead of enqueuing again; keys are
// recorded for accepted ops only, so a rejected op may be retried with the
// same key. Returns one result per op and the last completed epoch (accepted
// mutations land in epoch+1).
func (b *Broker) Batch(ops []spectrum.Op) ([]spectrum.OpResult, int) {
	results := make([]spectrum.OpResult, len(ops))
	staged := make([]pendingOp, len(ops))
	valid := make([]bool, len(ops))

	// Phase 1 — validate without locks (Validate and the value checks are
	// pure functions of the op).
	for i, op := range ops {
		switch op.Op {
		case spectrum.OpSubmit:
			if op.Bid == nil {
				results[i] = opResultErr(0, 400, fmt.Errorf("%w: submit carries no bid", ErrBadBid))
				continue
			}
			bid := *op.Bid
			if err := b.validateBid(&bid); err != nil {
				results[i] = opResultErr(0, 400, err)
				continue
			}
			staged[i] = pendingOp{kind: opSubmit, bid: cloneBid(bid)}
		case spectrum.OpUpdate:
			if op.Values == nil {
				results[i] = opResultErr(op.ID, 400, fmt.Errorf("%w: update carries no values", ErrBadBid))
				continue
			}
			if err := b.validValues(*op.Values); err != nil {
				results[i] = opResultErr(op.ID, 400, err)
				continue
			}
			staged[i] = pendingOp{kind: opUpdate, id: op.ID, values: cloneValues(*op.Values)}
		case spectrum.OpMove:
			if op.Bid == nil {
				results[i] = opResultErr(op.ID, 400, fmt.Errorf("%w: move carries no geometry", ErrBadBid))
				continue
			}
			if op.Bid.Values != nil || op.Bid.XOR != nil || op.Bid.LeaseEpochs != 0 {
				results[i] = opResultErr(op.ID, 400, fmt.Errorf("%w: a move carries geometry only", ErrBadBid))
				continue
			}
			bid := *op.Bid
			if err := b.model.Validate(&bid); err != nil {
				results[i] = opResultErr(op.ID, 400, err)
				continue
			}
			staged[i] = pendingOp{kind: opMove, id: op.ID, bid: cloneBid(bid)}
		case spectrum.OpWithdraw:
			staged[i] = pendingOp{kind: opWithdraw, id: op.ID}
		default:
			results[i] = opResultErr(op.ID, 400, fmt.Errorf("%w: unknown op %q", ErrBadBid, op.Op))
			continue
		}
		valid[i] = true
	}

	// Phase 2 — one lock acquisition for the whole batch. mu.RLock before
	// qmu follows the documented lock order; holding both gives the status
	// checks and the enqueues a single consistent view.
	b.mu.RLock()
	b.qmu.Lock()
	epoch := b.epoch
	for i := range ops {
		if !valid[i] {
			b.rejected.Add(1)
			continue
		}
		if key := ops[i].Key; key != "" {
			if r, seen := b.idem[key]; seen {
				r.Replayed = true
				results[i] = r
				continue
			}
		}
		p := staged[i]
		switch p.kind {
		case opSubmit:
			if b.pop >= b.cfg.MaxBidders {
				b.rejected.Add(1)
				results[i] = opResultErr(0, 429, ErrFull)
				continue
			}
			b.nextID++
			p.id = b.nextID
			b.pop++
			b.queuedSub[p.id] = true
			results[i] = spectrum.OpResult{ID: p.id, Status: StatusPending, Code: 202}
		default:
			st := b.statusLocked(p.id)
			if st != StatusActive && st != StatusPending {
				b.rejected.Add(1)
				results[i] = opResultErr(p.id, 404, ErrUnknown)
				continue
			}
			if p.kind == opWithdraw {
				st = StatusGone
			}
			results[i] = spectrum.OpResult{ID: p.id, Status: st, Code: 202}
		}
		b.queue = append(b.queue, p)
		if key := ops[i].Key; key != "" {
			b.idemPut(key, results[i])
		}
	}
	b.qmu.Unlock()
	b.mu.RUnlock()
	return results, epoch
}

// notifyEpoch wakes every WaitEpoch blocked on the previous epoch. Caller
// holds mu.Lock, immediately after advancing b.epoch.
func (b *Broker) notifyEpoch() {
	close(b.epochCh)
	b.epochCh = make(chan struct{})
}

// WaitEpoch blocks until an epoch numbered strictly greater than since has
// committed (returning its report), or the context ends. since < the current
// epoch returns immediately with the last committed report — a client that
// polls with the epoch it last saw never misses a commit, though it observes
// only the newest state (intermediate epochs coalesce). Before any epoch has
// ever committed there is no report to deliver, so even since < 0 waits for
// the first commit.
func (b *Broker) WaitEpoch(ctx context.Context, since int) (EpochReport, error) {
	for {
		b.mu.RLock()
		rep, epoch, ch := b.metrics.Last, b.epoch, b.epochCh
		b.mu.RUnlock()
		if epoch > since && epoch > 0 {
			return rep, nil
		}
		select {
		case <-ctx.Done():
			return EpochReport{}, ctx.Err()
		case <-ch:
		}
	}
}

// StatusOf reports what the broker knows about id. "Active" means the last
// committed epoch knows the bidder; a bidder applied mid-tick but not yet
// committed still reports pending, so status, allocation, and snapshot
// always describe the same epoch.
//
// The queue is checked before the committed state: a queued submission can
// only leave the queue by being drained-and-applied atomically under mu, so
// a bid that misses the queue check is guaranteed visible to the subsequent
// mu-guarded check — the reverse order would have a window reporting a
// freshly-submitted bid as gone.
func (b *Broker) StatusOf(id BidderID) Status {
	b.qmu.Lock()
	if id <= 0 || id > b.nextID {
		b.qmu.Unlock()
		return StatusUnknown
	}
	queued, cancelled := b.queuedSub[id], b.retired[id]
	b.qmu.Unlock()
	if queued && !cancelled {
		return StatusPending
	}
	b.mu.RLock()
	committed := false
	if b.snap != nil {
		_, committed = b.snap.idx[id]
	}
	_, applied := b.bidders[id]
	b.mu.RUnlock()
	switch {
	case committed:
		return StatusActive
	case applied:
		return StatusPending // lands in the epoch being solved right now
	}
	return StatusGone
}

// Allocation returns the bundle granted to id in the last committed epoch
// (Empty when the bidder holds nothing) and its status.
func (b *Broker) Allocation(id BidderID) (valuation.Bundle, Status) {
	b.mu.RLock()
	if b.snap != nil {
		if _, ok := b.snap.idx[id]; ok {
			t := b.alloc[id]
			b.mu.RUnlock()
			return t, StatusActive
		}
	}
	b.mu.RUnlock()
	return valuation.Empty, b.StatusOf(id)
}

// Price returns id's committed Lavi–Swamy payment (0 unless Config.Prices).
func (b *Broker) Price(id BidderID) (float64, Status) {
	b.mu.RLock()
	if b.snap != nil {
		if _, ok := b.snap.idx[id]; ok {
			p := b.prices[id]
			b.mu.RUnlock()
			return p, StatusActive
		}
	}
	b.mu.RUnlock()
	return 0, b.StatusOf(id)
}

// Epoch returns the number of completed ticks.
func (b *Broker) Epoch() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.epoch
}

// Metrics returns a copy of the lifetime metrics.
func (b *Broker) Metrics() Metrics {
	b.mu.RLock()
	defer b.mu.RUnlock()
	m := b.metrics
	m.Rejected = b.rejected.Load()
	m.JournalErrors = b.journalErrs.Load()
	m.DroppedSubscribers = b.droppedSubs.Load()
	return m
}

// activeIDs returns the active ids ascending. Callers hold at least mu.RLock.
func (b *Broker) activeIDs() []BidderID {
	ids := make([]BidderID, 0, len(b.bidders))
	for id := range b.bidders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// applyDelta folds a model's edge delta into the maintained neighbor sets.
// Caller holds mu.Lock.
func (b *Broker) applyDelta(d EdgeDelta) {
	for _, e := range d.Added {
		u, v := b.bidders[e[0]], b.bidders[e[1]]
		if u == nil || v == nil {
			continue
		}
		u.nbrs[v.id] = struct{}{}
		v.nbrs[u.id] = struct{}{}
	}
	for _, e := range d.Removed {
		if u := b.bidders[e[0]]; u != nil {
			delete(u.nbrs, e[1])
		}
		if v := b.bidders[e[1]]; v != nil {
			delete(v.nbrs, e[0])
		}
	}
}

// applyQueue drains the mutation queue into the committed bidder set and the
// model's incremental adjacency. Caller holds mu.Lock. Dirtiness does not
// need explicit tracking: planEpoch compares each component's membership key
// and valuation versions against the cache, so any effect of these mutations
// is discovered there.
func (b *Broker) applyQueue(ops []pendingOp) (arr, dep, upd, mov int) {
	for _, op := range ops {
		switch op.kind {
		case opSubmit:
			nb := &bidder{
				id:   op.id,
				bid:  op.bid,
				key:  b.model.Key(&op.bid),
				nbrs: make(map[BidderID]struct{}),
			}
			if op.bid.LeaseEpochs > 0 {
				// The bid activates in the epoch being committed (b.epoch+1)
				// and lives LeaseEpochs epochs; the tick committing
				// activation+LeaseEpochs withdraws it.
				nb.expires = b.epoch + 1 + op.bid.LeaseEpochs
			}
			nb.setValues(bidValues(&op.bid), b.cfg.K)
			b.bidders[nb.id] = nb
			b.applyDelta(b.model.Arrive(nb.id, &nb.bid))
			arr++
		case opWithdraw:
			ob, ok := b.bidders[op.id]
			if !ok {
				// Already removed in this batch (double withdraw); not a
				// departure of an actual bidder.
				continue
			}
			for nid := range ob.nbrs {
				delete(b.bidders[nid].nbrs, op.id)
			}
			// b.alloc and b.prices are left alone: they describe the last
			// committed epoch (in which this bidder may be a winner) and are
			// replaced wholesale at commit.
			delete(b.bidders, op.id)
			delete(b.pool, op.id)
			b.applyDelta(b.model.Depart(op.id))
			dep++
		case opUpdate:
			ob, ok := b.bidders[op.id]
			if !ok {
				continue // withdrawn in the same batch; drop silently
			}
			oldSupport, oldXOR := ob.support, ob.xor
			ob.setValues(op.values, b.cfg.K)
			switch {
			case oldXOR == nil && ob.xor == nil:
				// Additive→additive: a support shrink poisons the persistent
				// master (see bidder.support).
				if oldSupport&^ob.support != 0 {
					ob.forceRebuild = true
				}
			case oldXOR != nil && ob.xor != nil:
				// XOR→XOR: a changed atom set invalidates pooled columns.
				if !sameAtomSet(oldXOR, ob.xor) {
					ob.forceRebuild = true
				}
			default:
				// The valuation switched form; rebuild unconditionally.
				ob.forceRebuild = true
			}
			ob.version++
			upd++
		case opMove:
			ob, ok := b.bidders[op.id]
			if !ok {
				continue // withdrawn in the same batch; drop silently
			}
			ob.bid.Pos, ob.bid.Radius = op.bid.Pos, op.bid.Radius
			ob.bid.Link = op.bid.Link
			ob.key = b.model.Key(&ob.bid)
			b.applyDelta(b.model.Move(ob.id, &ob.bid))
			// No cache invalidation needed here: a move can rewire a
			// component's internal conflict edges while preserving its
			// membership, ordering keys, and valuation versions, but the
			// component cache key folds in an edge-set fingerprint
			// (compKey), so any rewiring misses the cache by construction.
			mov++
		}
	}
	return arr, dep, upd, mov
}

// dueLeases collects the bidders whose lease runs out in the epoch about to
// be committed, as synthesized withdrawals in ascending-id order. They are
// applied ahead of the drained client ops and never journaled: expiry is a
// deterministic function of each journaled submit's LeaseEpochs and commit
// epoch, so replay recomputes the identical schedule (and a same-epoch
// client withdraw of an expiring bid lands on an already-removed bidder —
// one departure, never two). Caller holds mu.Lock.
func (b *Broker) dueLeases() []pendingOp {
	n := b.epoch + 1
	var ids []BidderID
	for id, bd := range b.bidders {
		if bd.expires > 0 && bd.expires <= n {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ops := make([]pendingOp, len(ids))
	for i, id := range ids {
		ops[i] = pendingOp{kind: opWithdraw, id: id}
	}
	return ops
}

// Tick closes the current epoch: queued mutations are applied, the conflict
// graph re-partitioned, dirty components re-solved (fanned across the worker
// pool), and the new allocation committed. Queries keep serving the previous
// committed epoch — status, allocation, prices, and snapshot all describe it
// consistently — until the commit swaps everything at once.
func (b *Broker) Tick() EpochReport {
	b.tickMu.Lock()
	defer b.tickMu.Unlock()
	start := time.Now() //reprovet:wallclock epoch latency metric only; never read into committed state or the journal

	// Phase 1 (exclusive): drain and apply mutations atomically with
	// respect to readers, then partition and plan the solve.
	b.mu.Lock()
	b.qmu.Lock()
	ops := b.queue
	b.queue = nil
	// The id high-water mark at drain time; journaled with the epoch so a
	// replay reproduces id assignment exactly (even across submissions that
	// were cancelled while queued and thus never appear in ops).
	nextID := b.nextID
	// Remember withdrawn-before-apply ids so StatusOf answers "gone", and
	// cancel submissions withdrawn in the same batch.
	cancelled := make(map[BidderID]bool)
	for _, op := range ops {
		switch op.kind {
		case opSubmit:
			delete(b.queuedSub, op.id)
		case opWithdraw:
			b.retired[op.id] = true
			cancelled[op.id] = true
		}
	}
	if len(b.retired) > 4*b.cfg.MaxBidders {
		b.retired = make(map[BidderID]bool) // bound memory; StatusOf still says gone via id range
	}
	kept := ops[:0]
	for _, op := range ops {
		if op.kind == opSubmit && cancelled[op.id] {
			b.pop-- // cancelled before ever becoming active
			continue
		}
		kept = append(kept, op)
	}
	ops = kept
	// Leases running out this epoch become synthesized withdrawals applied
	// ahead of the client ops (see dueLeases). Their ids are marked retired
	// under the same qmu hold so StatusOf flips to gone atomically with the
	// drain.
	expiry := b.dueLeases()
	for _, op := range expiry {
		b.retired[op.id] = true
	}
	b.qmu.Unlock()

	// Idle fast path: nothing changed and no lease is due, so the committed
	// state is already this epoch's answer — skip the re-partition and the
	// map rebuilds (unless a component failed last epoch and must retry).
	if len(ops) == 0 && len(expiry) == 0 && b.snap != nil && b.metrics.Last.Errors == 0 {
		rep := b.metrics.Last
		rep.Arrivals, rep.Departures, rep.Updates, rep.Moves, rep.Expired = 0, 0, 0, 0, 0
		rep.ColumnsGenerated, rep.PoolAdded, rep.Errors = 0, 0, 0
		rep.Clean, rep.WarmResolves, rep.Rebuilds = rep.Components, 0, 0
		b.epoch++
		rep.Epoch = b.epoch
		rep.Latency = time.Since(start) //reprovet:wallclock observational latency metric; excluded from equivalence checks
		b.metrics.Epochs++
		b.metrics.TotalWelfare += rep.Welfare
		b.metrics.CleanTotal += int64(rep.Clean)
		b.metrics.Last = rep
		b.notifyEpoch()
		b.mu.Unlock()
		// Idle epochs are journaled too (with no ops): the journal's epoch
		// numbering must stay gap-free for replay to line up.
		b.fireCommit(rep, nextID, nil)
		return rep
	}

	rep := EpochReport{Epoch: b.epoch + 1}
	rep.Arrivals, rep.Departures, rep.Updates, rep.Moves = b.applyQueue(append(expiry, ops...))
	rep.Expired = len(expiry)
	b.qmu.Lock()
	b.pop -= rep.Departures
	b.qmu.Unlock()
	rep.Active = len(b.bidders)
	plan := b.planEpoch()
	rep.Components = len(plan.entries)
	rep.Clean = plan.clean
	rep.WarmResolves = plan.warm
	rep.Rebuilds = len(plan.jobs) - plan.warm
	b.mu.Unlock()

	// Phase 2 (concurrent): solve the dirty components.
	b.solveJobs(plan.jobs)

	// Phase 3 (exclusive): commit.
	b.mu.Lock()
	b.commitEpoch(plan, &rep)
	rep.Latency = time.Since(start) //reprovet:wallclock observational latency metric; excluded from equivalence checks
	b.metrics.Epochs++
	b.metrics.Submitted += int64(rep.Arrivals)
	b.metrics.Withdrawn += int64(rep.Departures)
	b.metrics.Updated += int64(rep.Updates)
	b.metrics.Moved += int64(rep.Moves)
	b.metrics.Expired += int64(rep.Expired)
	b.metrics.TotalWelfare += rep.Welfare
	b.metrics.CleanTotal += int64(rep.Clean)
	b.metrics.WarmTotal += int64(rep.WarmResolves)
	b.metrics.RebuildTotal += int64(rep.Rebuilds)
	b.metrics.ErrorsTotal += int64(rep.Errors)
	b.metrics.Last = rep
	b.notifyEpoch()
	b.mu.Unlock()
	b.fireCommit(rep, nextID, ops)
	return rep
}
