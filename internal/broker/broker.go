// Package broker is the live counterpart of internal/market's offline
// simulator: the "eBay in the Sky" spectrum broker of the paper's
// introduction, run as a long-lived concurrent service. Secondary users
// submit, update, and withdraw bids at any time; the broker batches the
// mutations into epochs and, on each Tick, re-clears the market.
//
// The epoch solve is sharded by conflict-graph component. The broker
// maintains the disk conflict graph incrementally as bids come and go,
// partitions the active bidders into connected components
// (graph.ComponentsOrdered), and re-solves only the dirty components:
//
//   - a component whose membership and valuations are unchanged reuses its
//     cached LP solution and rounded candidates — zero solve work;
//   - a component whose membership is unchanged but whose valuations moved
//     re-solves on its persistent auction.MasterLP (lp.Solver.SetObjective
//     warm restart: same tableau, same basis, new objective);
//   - a component whose membership changed gets a fresh master, seeded with
//     the bundle pool its members generated in earlier epochs, so column
//     generation restarts near the optimum instead of from scratch.
//
// Per component the rounding keeps both halves of the paper's size
// decomposition (auction.RoundHalvesDerandomized); the half used for the
// final allocation is chosen once per epoch by total welfare across all
// components. That makes the sharded, incremental epoch path reproduce
// exactly what a from-scratch auction.SolveLP + RoundDerandomized on the
// union instance would return (the LP of a disconnected instance separates
// by component, and Algorithm 1's conflict resolution never crosses a
// component boundary) — the equivalence tests pin this.
package broker

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/valuation"
)

// BidderID identifies one submitted bid for its lifetime.
type BidderID int64

// Bid is one secondary user's submission: a transmitter position and
// interference radius (the disk conflict model of Proposition 9) plus
// additive per-channel values.
type Bid struct {
	Pos    geom.Point `json:"pos"`
	Radius float64    `json:"radius"`
	Values []float64  `json:"values"`
}

// Config parameterizes a Broker.
type Config struct {
	// K is the number of channels on the secondary market.
	K int
	// Workers bounds the per-epoch solve fan-out; <= 0 means GOMAXPROCS.
	Workers int
	// MaxBidders caps the population (active plus queued submissions);
	// Submit returns ErrFull beyond it. <= 0 means DefaultMaxBidders.
	MaxBidders int
	// Cold disables the component cache, the persistent masters, and the
	// column pool: every epoch re-solves every component from scratch. The
	// reference path for the equivalence tests and the warm-vs-cold
	// benchmark.
	Cold bool
	// Prices additionally runs the Lavi–Swamy mechanism (Section 5) on each
	// re-solved component and serves the scaled fractional-VCG payments.
	Prices bool
}

// DefaultMaxBidders bounds the population when Config.MaxBidders is unset.
const DefaultMaxBidders = 512

// Status describes what the broker currently knows about a bidder id.
type Status string

// Bidder states.
const (
	// StatusPending: submitted, takes effect at the next epoch tick.
	StatusPending Status = "pending"
	// StatusActive: in the market (allocated or not).
	StatusActive Status = "active"
	// StatusGone: withdrawn, departed, or otherwise no longer tracked.
	StatusGone Status = "gone"
	// StatusUnknown: an id the broker never issued.
	StatusUnknown Status = "unknown"
)

// Errors returned by the mutation API.
var (
	ErrFull    = fmt.Errorf("broker: market full")
	ErrUnknown = fmt.Errorf("broker: unknown bidder")
	ErrBadBid  = fmt.Errorf("broker: invalid bid")
)

// opKind tags one queued mutation.
type opKind int

const (
	opSubmit opKind = iota
	opWithdraw
	opUpdate
)

type pendingOp struct {
	kind   opKind
	id     BidderID
	bid    Bid       // opSubmit
	values []float64 // opUpdate
}

// bidder is one active market participant.
type bidder struct {
	id      BidderID
	pos     geom.Point
	radius  float64
	val     valuation.Valuation // additive over the K channels
	version int                 // bumped by updates; part of the cache key check
	// support is the set of positively valued channels. Columns the broker
	// seeds or keeps must stay inside it: a zero-valued channel riding along
	// in a bundle creates a degenerate LP vertex whose rounding can diverge
	// from the from-scratch path (and can even hurt neighbors), so bundles
	// are stripped to the support and support-shrinking updates force a
	// master rebuild instead of the in-place warm re-solve.
	support valuation.Bundle
	// shrunk marks that an update removed channels from the support since
	// the last plan; consumed (and cleared) by planEpoch.
	shrunk bool
	nbrs   map[BidderID]struct{}
}

// supportOf returns the bundle of positively valued channels.
func supportOf(values []float64) valuation.Bundle {
	var s valuation.Bundle
	for j, v := range values {
		if v > 0 {
			s = s.With(j)
		}
	}
	return s
}

// EpochReport summarizes one Tick.
type EpochReport struct {
	Epoch      int           `json:"epoch"`
	Active     int           `json:"active"`
	Arrivals   int           `json:"arrivals"`
	Departures int           `json:"departures"`
	Updates    int           `json:"updates"`
	// Components is the epoch's component count; Clean of them were served
	// entirely from cache, WarmResolves re-solved on a persistent master
	// (valuation-only change), Rebuilds built a fresh (pool-seeded) master.
	Components   int `json:"components"`
	Clean        int `json:"clean"`
	WarmResolves int `json:"warm_resolves"`
	Rebuilds     int `json:"rebuilds"`
	// ColumnsGenerated sums the column-generation work of the epoch's
	// re-solved components; PoolAdded counts new bundles entering the pool.
	ColumnsGenerated int `json:"columns_generated"`
	PoolAdded        int `json:"pool_added"`
	// LPValue is the summed fractional optimum, Welfare the committed
	// allocation's welfare, HalfChosen the size-decomposition half picked
	// globally this epoch.
	LPValue    float64       `json:"lp_value"`
	Welfare    float64       `json:"welfare"`
	HalfChosen int           `json:"half_chosen"`
	Alg3Iters  int           `json:"alg3_iters"`
	Errors     int           `json:"errors"`
	Latency    time.Duration `json:"latency_ns"`
}

// Metrics aggregates over the broker's lifetime.
type Metrics struct {
	Epochs       int         `json:"epochs"`
	Submitted    int64       `json:"submitted"`
	Withdrawn    int64       `json:"withdrawn"`
	Updated      int64       `json:"updated"`
	Rejected     int64       `json:"rejected"`
	TotalWelfare float64     `json:"total_welfare"`
	CleanTotal   int64       `json:"clean_total"`
	WarmTotal    int64       `json:"warm_total"`
	RebuildTotal int64       `json:"rebuild_total"`
	ErrorsTotal  int64       `json:"errors_total"`
	Last         EpochReport `json:"last"`
}

// Broker is the live market. All exported methods are safe for concurrent
// use; Tick itself is serialized.
type Broker struct {
	cfg Config

	// qmu guards the mutation queue — submissions never block on a solve.
	// Lock order: mu before qmu (Tick holds mu across drain+apply; readers
	// take mu.RLock and then qmu; nothing acquires mu while holding qmu).
	qmu    sync.Mutex
	queue  []pendingOp
	nextID BidderID
	// queuedSub indexes the queue's not-yet-drained submissions, so status
	// lookups are O(1) instead of a queue scan per HTTP request.
	queuedSub map[BidderID]bool
	// pop is the population the cap governs: active bidders plus accepted
	// submissions not yet removed. Submit increments it, cancellations and
	// applied withdrawals decrement it, so the MaxBidders check is exact
	// under any interleaving of Submit and Tick.
	pop     int
	retired map[BidderID]bool // ids withdrawn while still queued

	// tickMu serializes epoch ticks.
	tickMu sync.Mutex

	// rejected counts refused mutations (bad bids, unknown ids, full market).
	rejected atomic.Int64

	// mu guards the committed state served to queries.
	mu      sync.RWMutex
	epoch   int
	bidders map[BidderID]*bidder
	alloc   map[BidderID]valuation.Bundle
	prices  map[BidderID]float64
	comps   map[string]*compEntry
	pool    map[BidderID][]valuation.Bundle
	// snap is the global state the last committed epoch was solved on;
	// Snapshot serves it so snapshot and allocation always describe the
	// same epoch, even while the next epoch's solve is in flight.
	snap    *globalState
	metrics Metrics
}

// New creates a broker.
func New(cfg Config) (*Broker, error) {
	if cfg.K < 1 || cfg.K > valuation.MaxChannels {
		return nil, fmt.Errorf("%w: k=%d out of range [1,%d]", ErrBadBid, cfg.K, valuation.MaxChannels)
	}
	if cfg.MaxBidders <= 0 {
		cfg.MaxBidders = DefaultMaxBidders
	}
	return &Broker{
		cfg:       cfg,
		bidders:   make(map[BidderID]*bidder),
		alloc:     make(map[BidderID]valuation.Bundle),
		prices:    make(map[BidderID]float64),
		comps:     make(map[string]*compEntry),
		pool:      make(map[BidderID][]valuation.Bundle),
		retired:   make(map[BidderID]bool),
		queuedSub: make(map[BidderID]bool),
	}, nil
}

// Config returns the broker's configuration.
func (b *Broker) Config() Config { return b.cfg }

func (b *Broker) validValues(values []float64) error {
	if len(values) != b.cfg.K {
		return fmt.Errorf("%w: %d values for %d channels", ErrBadBid, len(values), b.cfg.K)
	}
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: channel value %g", ErrBadBid, v)
		}
	}
	return nil
}

// Submit queues a bid; it becomes active at the next Tick. Returns the
// bidder id the market will know it by.
func (b *Broker) Submit(bid Bid) (BidderID, error) {
	if err := b.validValues(bid.Values); err != nil {
		b.rejected.Add(1)
		return 0, err
	}
	if !(bid.Radius > 0) || math.IsInf(bid.Radius, 0) ||
		math.IsNaN(bid.Pos.X) || math.IsNaN(bid.Pos.Y) ||
		math.IsInf(bid.Pos.X, 0) || math.IsInf(bid.Pos.Y, 0) {
		b.rejected.Add(1)
		return 0, fmt.Errorf("%w: bad geometry (radius %g)", ErrBadBid, bid.Radius)
	}
	bid.Values = append([]float64(nil), bid.Values...)

	b.qmu.Lock()
	defer b.qmu.Unlock()
	if b.pop >= b.cfg.MaxBidders {
		b.rejected.Add(1)
		return 0, ErrFull
	}
	b.nextID++
	id := b.nextID
	b.pop++
	b.queuedSub[id] = true
	b.queue = append(b.queue, pendingOp{kind: opSubmit, id: id, bid: bid})
	return id, nil
}

// Update queues a valuation change for an active (or still-pending) bidder.
// Geometry is immutable; to move, withdraw and resubmit.
func (b *Broker) Update(id BidderID, values []float64) error {
	if err := b.validValues(values); err != nil {
		b.rejected.Add(1)
		return err
	}
	if st := b.StatusOf(id); st != StatusActive && st != StatusPending {
		b.rejected.Add(1)
		return ErrUnknown
	}
	values = append([]float64(nil), values...)
	b.qmu.Lock()
	defer b.qmu.Unlock()
	b.queue = append(b.queue, pendingOp{kind: opUpdate, id: id, values: values})
	return nil
}

// Withdraw queues a departure. Withdrawing a still-pending bid cancels it.
func (b *Broker) Withdraw(id BidderID) error {
	if st := b.StatusOf(id); st != StatusActive && st != StatusPending {
		b.rejected.Add(1)
		return ErrUnknown
	}
	b.qmu.Lock()
	defer b.qmu.Unlock()
	b.queue = append(b.queue, pendingOp{kind: opWithdraw, id: id})
	return nil
}

// StatusOf reports what the broker knows about id. "Active" means the last
// committed epoch knows the bidder; a bidder applied mid-tick but not yet
// committed still reports pending, so status, allocation, and snapshot
// always describe the same epoch.
//
// The queue is checked before the committed state: a queued submission can
// only leave the queue by being drained-and-applied atomically under mu, so
// a bid that misses the queue check is guaranteed visible to the subsequent
// mu-guarded check — the reverse order would have a window reporting a
// freshly-submitted bid as gone.
func (b *Broker) StatusOf(id BidderID) Status {
	b.qmu.Lock()
	if id <= 0 || id > b.nextID {
		b.qmu.Unlock()
		return StatusUnknown
	}
	queued, cancelled := b.queuedSub[id], b.retired[id]
	b.qmu.Unlock()
	if queued && !cancelled {
		return StatusPending
	}
	b.mu.RLock()
	committed := false
	if b.snap != nil {
		_, committed = b.snap.idx[id]
	}
	_, applied := b.bidders[id]
	b.mu.RUnlock()
	switch {
	case committed:
		return StatusActive
	case applied:
		return StatusPending // lands in the epoch being solved right now
	}
	return StatusGone
}

// Allocation returns the bundle granted to id in the last committed epoch
// (Empty when the bidder holds nothing) and its status.
func (b *Broker) Allocation(id BidderID) (valuation.Bundle, Status) {
	b.mu.RLock()
	if b.snap != nil {
		if _, ok := b.snap.idx[id]; ok {
			t := b.alloc[id]
			b.mu.RUnlock()
			return t, StatusActive
		}
	}
	b.mu.RUnlock()
	return valuation.Empty, b.StatusOf(id)
}

// Price returns id's committed Lavi–Swamy payment (0 unless Config.Prices).
func (b *Broker) Price(id BidderID) (float64, Status) {
	b.mu.RLock()
	if b.snap != nil {
		if _, ok := b.snap.idx[id]; ok {
			p := b.prices[id]
			b.mu.RUnlock()
			return p, StatusActive
		}
	}
	b.mu.RUnlock()
	return 0, b.StatusOf(id)
}

// Epoch returns the number of completed ticks.
func (b *Broker) Epoch() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.epoch
}

// Metrics returns a copy of the lifetime metrics.
func (b *Broker) Metrics() Metrics {
	b.mu.RLock()
	defer b.mu.RUnlock()
	m := b.metrics
	m.Rejected = b.rejected.Load()
	return m
}

// activeIDs returns the active ids ascending. Callers hold at least mu.RLock.
func (b *Broker) activeIDs() []BidderID {
	ids := make([]BidderID, 0, len(b.bidders))
	for id := range b.bidders {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// applyQueue drains the mutation queue into the committed bidder set and
// incremental adjacency. Caller holds mu.Lock. Dirtiness does not need
// explicit tracking: planEpoch compares each component's membership key and
// valuation versions against the cache, so any effect of these mutations is
// discovered there.
func (b *Broker) applyQueue(ops []pendingOp) (arr, dep, upd int) {
	for _, op := range ops {
		switch op.kind {
		case opSubmit:
			nb := &bidder{
				id:      op.id,
				pos:     op.bid.Pos,
				radius:  op.bid.Radius,
				val:     valuation.NewAdditive(op.bid.Values),
				support: supportOf(op.bid.Values),
				nbrs:    make(map[BidderID]struct{}),
			}
			for _, other := range b.bidders {
				if other.pos.Dist(nb.pos) <= other.radius+nb.radius {
					nb.nbrs[other.id] = struct{}{}
					other.nbrs[nb.id] = struct{}{}
				}
			}
			b.bidders[nb.id] = nb
			arr++
		case opWithdraw:
			ob, ok := b.bidders[op.id]
			if !ok {
				// Already removed in this batch (double withdraw); not a
				// departure of an actual bidder.
				continue
			}
			for nid := range ob.nbrs {
				delete(b.bidders[nid].nbrs, op.id)
			}
			// b.alloc and b.prices are left alone: they describe the last
			// committed epoch (in which this bidder may be a winner) and are
			// replaced wholesale at commit.
			delete(b.bidders, op.id)
			delete(b.pool, op.id)
			dep++
		case opUpdate:
			ob, ok := b.bidders[op.id]
			if !ok {
				continue // withdrawn in the same batch; drop silently
			}
			newSupport := supportOf(op.values)
			if ob.support&^newSupport != 0 {
				ob.shrunk = true
			}
			ob.val = valuation.NewAdditive(op.values)
			ob.support = newSupport
			ob.version++
			upd++
		}
	}
	return arr, dep, upd
}

// Tick closes the current epoch: queued mutations are applied, the conflict
// graph re-partitioned, dirty components re-solved (fanned across the worker
// pool), and the new allocation committed. Queries keep serving the previous
// committed epoch — status, allocation, prices, and snapshot all describe it
// consistently — until the commit swaps everything at once.
func (b *Broker) Tick() EpochReport {
	b.tickMu.Lock()
	defer b.tickMu.Unlock()
	start := time.Now()

	// Phase 1 (exclusive): drain and apply mutations atomically with
	// respect to readers, then partition and plan the solve.
	b.mu.Lock()
	b.qmu.Lock()
	ops := b.queue
	b.queue = nil
	// Remember withdrawn-before-apply ids so StatusOf answers "gone", and
	// cancel submissions withdrawn in the same batch.
	cancelled := make(map[BidderID]bool)
	for _, op := range ops {
		switch op.kind {
		case opSubmit:
			delete(b.queuedSub, op.id)
		case opWithdraw:
			b.retired[op.id] = true
			cancelled[op.id] = true
		}
	}
	if len(b.retired) > 4*b.cfg.MaxBidders {
		b.retired = make(map[BidderID]bool) // bound memory; StatusOf still says gone via id range
	}
	kept := ops[:0]
	for _, op := range ops {
		if op.kind == opSubmit && cancelled[op.id] {
			b.pop-- // cancelled before ever becoming active
			continue
		}
		kept = append(kept, op)
	}
	ops = kept
	b.qmu.Unlock()

	// Idle fast path: nothing changed, so the committed state is already
	// this epoch's answer — skip the re-partition and the map rebuilds
	// (unless a component failed last epoch and must retry).
	if len(ops) == 0 && b.snap != nil && b.metrics.Last.Errors == 0 {
		rep := b.metrics.Last
		rep.Arrivals, rep.Departures, rep.Updates = 0, 0, 0
		rep.ColumnsGenerated, rep.PoolAdded, rep.Errors = 0, 0, 0
		rep.Clean, rep.WarmResolves, rep.Rebuilds = rep.Components, 0, 0
		b.epoch++
		rep.Epoch = b.epoch
		rep.Latency = time.Since(start)
		b.metrics.Epochs++
		b.metrics.TotalWelfare += rep.Welfare
		b.metrics.CleanTotal += int64(rep.Clean)
		b.metrics.Last = rep
		b.mu.Unlock()
		return rep
	}

	rep := EpochReport{Epoch: b.epoch + 1}
	rep.Arrivals, rep.Departures, rep.Updates = b.applyQueue(ops)
	b.qmu.Lock()
	b.pop -= rep.Departures
	b.qmu.Unlock()
	rep.Active = len(b.bidders)
	plan := b.planEpoch()
	rep.Components = len(plan.entries)
	rep.Clean = plan.clean
	rep.WarmResolves = plan.warm
	rep.Rebuilds = len(plan.jobs) - plan.warm
	b.mu.Unlock()

	// Phase 2 (concurrent): solve the dirty components.
	b.solveJobs(plan.jobs)

	// Phase 3 (exclusive): commit.
	b.mu.Lock()
	b.commitEpoch(plan, &rep)
	rep.Latency = time.Since(start)
	b.metrics.Epochs++
	b.metrics.Submitted += int64(rep.Arrivals)
	b.metrics.Withdrawn += int64(rep.Departures)
	b.metrics.Updated += int64(rep.Updates)
	b.metrics.TotalWelfare += rep.Welfare
	b.metrics.CleanTotal += int64(rep.Clean)
	b.metrics.WarmTotal += int64(rep.WarmResolves)
	b.metrics.RebuildTotal += int64(rep.Rebuilds)
	b.metrics.ErrorsTotal += int64(rep.Errors)
	b.metrics.Last = rep
	b.mu.Unlock()
	return rep
}
