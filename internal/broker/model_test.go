package broker

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/models"
)

// testModels builds one fresh instance of every backend.
func testModels(t testing.TB) map[string]ConflictModel {
	t.Helper()
	proto, err := ProtocolModel(1)
	if err != nil {
		t.Fatal(err)
	}
	ieee, err := IEEE80211Model(0.5)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]ConflictModel{
		"disk":      DiskModel(),
		"distance2": Distance2Model(),
		"protocol":  proto,
		"ieee80211": ieee,
	}
}

// refConflict builds the from-scratch reference conflict structure for the
// named backend over bids listed in id-ascending order.
func refConflict(t testing.TB, name string, bids []Bid) *models.Conflict {
	t.Helper()
	switch name {
	case "disk", "distance2":
		centers := make([]geom.Point, len(bids))
		radii := make([]float64, len(bids))
		for i, b := range bids {
			centers[i], radii[i] = b.Pos, b.Radius
		}
		if name == "disk" {
			return models.Disk(centers, radii)
		}
		return models.Distance2Disk(centers, radii)
	case "protocol", "ieee80211":
		links := make([]geom.Link, len(bids))
		for i, b := range bids {
			links[i] = *b.Link
		}
		if name == "protocol" {
			return models.Protocol(links, 1)
		}
		return models.IEEE80211(links, 0.5)
	}
	t.Fatalf("unknown model %s", name)
	return nil
}

// randBid draws geometry for the named backend from a small, dense area so
// conflicts (and, for distance-2, multi-hop witnesses) are plentiful.
func randBid(rng *rand.Rand, name string) Bid {
	p := geom.Point{X: rng.Float64() * 40, Y: rng.Float64() * 40}
	r := 1 + rng.Float64()*5
	switch name {
	case "protocol", "ieee80211":
		th := rng.Float64() * 2 * math.Pi
		q := geom.Point{X: p.X + r*math.Cos(th), Y: p.Y + r*math.Sin(th)}
		return Bid{Link: &geom.Link{Sender: p, Receiver: q}}
	}
	return Bid{Pos: p, Radius: r}
}

// mirror tracks the adjacency a delta consumer (the broker) would maintain,
// to verify the deltas themselves — not just the model's internal state.
type mirror map[pairKey]bool

func (mr mirror) apply(t *testing.T, d EdgeDelta) {
	t.Helper()
	for _, e := range d.Added {
		k := pk(e[0], e[1])
		if mr[k] {
			t.Fatalf("delta re-adds existing edge %v", e)
		}
		mr[k] = true
	}
	for _, e := range d.Removed {
		k := pk(e[0], e[1])
		if !mr[k] {
			t.Fatalf("delta removes non-edge %v", e)
		}
		delete(mr, k)
	}
}

func (mr mirror) dropIncident(id BidderID) {
	for k := range mr {
		if k.a == id || k.b == id {
			delete(mr, k)
		}
	}
}

// checkAgainstRef compares model state, mirrored deltas, and ordering keys
// against the from-scratch constructor on the live bid set.
func checkAgainstRef(t *testing.T, name string, m ConflictModel, mr mirror, live map[BidderID]Bid, step int) {
	t.Helper()
	ids := make([]BidderID, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	bids := make([]Bid, len(ids))
	idx := make(map[BidderID]int, len(ids))
	for i, id := range ids {
		bids[i] = live[id]
		idx[id] = i
	}
	ref := refConflict(t, name, bids)
	// Edges: the mirrored delta state must equal the reference graph.
	refEdges := make(map[pairKey]bool)
	for u := 0; u < ref.Binary.N(); u++ {
		for _, v := range ref.Binary.Neighbors(u) {
			if v > u {
				refEdges[pk(ids[u], ids[v])] = true
			}
		}
	}
	if len(mr) != len(refEdges) {
		t.Fatalf("%s step %d: %d maintained edges, reference has %d", name, step, len(mr), len(refEdges))
	}
	for k := range mr {
		if !refEdges[k] {
			t.Fatalf("%s step %d: maintained edge (%d,%d) not in reference", name, step, k.a, k.b)
		}
	}
	// Ordering: ascending Key with index tie-break must reproduce the
	// constructor's certifying ordering.
	perm := make([]int, len(ids))
	for i := range perm {
		perm[i] = i
	}
	keys := make([]float64, len(ids))
	for i := range ids {
		bid := bids[i]
		keys[i] = m.Key(&bid)
	}
	sort.SliceStable(perm, func(a, c int) bool {
		if keys[perm[a]] != keys[perm[c]] {
			return keys[perm[a]] < keys[perm[c]]
		}
		return perm[a] < perm[c]
	})
	pi := graph.NewOrdering(perm)
	for v := range ids {
		if pi.Rank[v] != ref.Pi.Rank[v] {
			t.Fatalf("%s step %d: ordering rank of vertex %d is %d, reference %d",
				name, step, v, pi.Rank[v], ref.Pi.Rank[v])
		}
	}
	if m.RhoBound() != ref.RhoBound {
		t.Fatalf("%s: rho %g, reference %g", name, m.RhoBound(), ref.RhoBound)
	}
	if m.Name() != ref.Model {
		t.Fatalf("%s: name %q, reference %q", name, m.Name(), ref.Model)
	}
}

// TestModelDeltasMatchFromScratch drives every backend through a random
// churn sequence — arrivals, departures, and moves — and pins, after every
// single mutation, the incrementally maintained graph (reconstructed purely
// from the returned deltas), the certifying ordering, ρ, and the model name
// against the batch constructors of internal/models.
func TestModelDeltasMatchFromScratch(t *testing.T) {
	for name := range testModels(t) {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				m := testModels(t)[name]
				rng := rand.New(rand.NewSource(seed))
				live := map[BidderID]Bid{}
				mr := mirror{}
				var next BidderID
				for step := 0; step < 120; step++ {
					switch op := rng.Intn(3); {
					case op == 0 || len(live) < 4: // arrive
						next++
						bid := randBid(rng, name)
						live[next] = bid
						mr.apply(t, m.Arrive(next, &bid))
					case op == 1: // depart
						id := randLive(rng, live)
						delete(live, id)
						d := m.Depart(id)
						if len(d.Added) != 0 {
							t.Fatalf("departure added edges: %+v", d)
						}
						mr.dropIncident(id)
						mr.apply(t, d)
					default: // move
						id := randLive(rng, live)
						bid := randBid(rng, name)
						live[id] = bid
						mr.apply(t, m.Move(id, &bid))
					}
					checkAgainstRef(t, name, m, mr, live, step)
				}
			}
		})
	}
}

func randLive(rng *rand.Rand, live map[BidderID]Bid) BidderID {
	ids := make([]BidderID, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[rng.Intn(len(ids))]
}

// TestModelValidateRejectsBadGeometry spot-checks the per-model geometry
// validation (the fuzz harness explores the space more broadly).
func TestModelValidateRejectsBadGeometry(t *testing.T) {
	inf := func() float64 { return math.Inf(1) }
	nan := math.NaN()
	link := &geom.Link{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 1, Y: 0}}
	for name, m := range testModels(t) {
		var bad []Bid
		switch name {
		case "disk", "distance2":
			bad = []Bid{
				{Radius: 0},                          // no radius
				{Radius: -1},                         // negative
				{Radius: inf()},                      // infinite
				{Radius: nan},                        // NaN
				{Radius: 1, Pos: geom.Point{X: nan}}, // NaN position
				{Radius: 1, Link: link},              // link geometry on a disk model
			}
		default:
			bad = []Bid{
				{},                      // no link
				{Link: link, Radius: 1}, // disk radius on a link model
				{Link: &geom.Link{Sender: geom.Point{}, Receiver: geom.Point{}}},         // zero length
				{Link: &geom.Link{Sender: geom.Point{X: nan}, Receiver: geom.Point{}}},   // NaN endpoint
				{Link: &geom.Link{Sender: geom.Point{X: inf()}, Receiver: geom.Point{}}}, // infinite endpoint
			}
		}
		for i, bid := range bad {
			bid := bid
			if err := m.Validate(&bid); err == nil {
				t.Fatalf("%s case %d: bad geometry accepted: %+v", name, i, bid)
			}
		}
		good := randBid(rand.New(rand.NewSource(1)), name)
		if err := m.Validate(&good); err != nil {
			t.Fatalf("%s: good geometry rejected: %v", name, err)
		}
	}
}

// TestModelByName covers the flag-name mapping.
func TestModelByName(t *testing.T) {
	for _, name := range ModelNames() {
		m, err := ModelByName(name, 1)
		if err != nil || m == nil {
			t.Fatalf("ModelByName(%q): %v", name, err)
		}
	}
	if m, err := ModelByName("", 0); err != nil || m.Name() != "disk" {
		t.Fatalf("default model: %v %v", m, err)
	}
	if _, err := ModelByName("sinr", 1); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := ModelByName("protocol", 0); err == nil {
		t.Fatal("protocol with delta=0 accepted")
	}
	if _, err := ModelByName("ieee80211", -1); err == nil {
		t.Fatal("ieee80211 with delta<0 accepted")
	}
	if fmt.Sprint(ModelNames()) != "[disk distance2 protocol ieee80211]" {
		t.Fatalf("ModelNames drifted: %v", ModelNames())
	}
}
