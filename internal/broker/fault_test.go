package broker_test

// The read-replica robustness matrix: a spectrum.Mirror following a live
// broker must (a) answer byte-identically to the broker's own responses at
// every epoch it has applied — read-your-writes for replica readers — and
// (b) under an injured network (resets mid-body, truncated responses,
// silent stalls, latency, blackouts, broker kill+journal-restore) always
// reconverge and never serve a wrong-but-confident answer. This file lives
// in package broker_test because the kill/restore scenario needs
// internal/journal, which itself imports internal/broker.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/broker"
	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/market"
	"repro/pkg/spectrum"
)

// faultTrace is the churn workload of this file's tests.
func faultTrace(model string, seed int64, epochs int) *market.Trace {
	return market.GenTrace(market.TraceConfig{
		Seed:         seed,
		Epochs:       epochs,
		K:            3,
		Side:         150,
		ArrivalRate:  4,
		MeanLifetime: 4,
		MaxUsers:     24,
		Model:        model,
	})
}

func newFaultBroker(t *testing.T, model string) *broker.Broker {
	t.Helper()
	cm, err := broker.ModelByName(model, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := broker.New(broker.Config{K: 3, Model: cm, Prices: true})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// replayStep feeds the replayer's next trace epoch into the broker as one
// batch; false once the trace is exhausted.
func replayStep(t *testing.T, b *broker.Broker, r *market.OpsReplayer) bool {
	t.Helper()
	ops, more, err := r.Step()
	if err != nil {
		t.Fatal(err)
	}
	results, _ := b.Batch(ops)
	if err := r.Observe(results); err != nil {
		t.Fatal(err)
	}
	return more
}

// fetchRaw reads one broker route's exact response bytes.
func fetchRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d (%s)", url, resp.StatusCode, body)
	}
	return body
}

func startMirror(t *testing.T, base string, cfg spectrum.MirrorConfig) *spectrum.Mirror {
	t.Helper()
	cfg.Client = spectrum.NewClient(base, spectrum.WithHTTPClient(&http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
	}))
	if cfg.PollTimeout == 0 {
		cfg.PollTimeout = 200 * time.Millisecond
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = 10 * time.Millisecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 100 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	m, err := spectrum.NewMirror(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		m.Run(ctx)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return m
}

// TestMirrorReadYourWritesAllBackends pins the replica consistency
// contract for every interference backend: after each committed epoch of a
// churn trace, the mirror's snapshot, allocation, and prices — once it has
// applied that epoch — are byte-for-byte the broker's own responses.
func TestMirrorReadYourWritesAllBackends(t *testing.T) {
	for _, model := range broker.ModelNames() {
		model := model
		t.Run(model, func(t *testing.T) {
			b := newFaultBroker(t, model)
			srv := httptest.NewServer(broker.NewHandler(b))
			defer srv.Close()
			m := startMirror(t, srv.URL, spectrum.MirrorConfig{})

			r := market.NewOpsReplayer(faultTrace(model, 11, 6), true)
			for epoch := 1; replayStep(t, b, r); epoch++ {
				b.Tick()
				wantSnap := fetchRaw(t, srv.URL+"/v1/snapshot")
				wantAlloc := fetchRaw(t, srv.URL+"/v1/allocation")
				wantPrices := fetchRaw(t, srv.URL+"/v1/prices")

				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				err := m.WaitForEpoch(ctx, epoch)
				cancel()
				if err != nil {
					t.Fatalf("epoch %d never reached the mirror: %v", epoch, err)
				}
				for _, probe := range []struct {
					route string
					want  []byte
					read  func() ([]byte, int, error)
				}{
					{"snapshot", wantSnap, m.SnapshotJSON},
					{"allocation", wantAlloc, m.AllocationJSON},
					{"prices", wantPrices, m.PricesJSON},
				} {
					got, gotEpoch, err := probe.read()
					if err != nil {
						t.Fatalf("%s at epoch %d: %v", probe.route, epoch, err)
					}
					if gotEpoch != epoch {
						t.Fatalf("%s: mirror at epoch %d, broker at %d", probe.route, gotEpoch, epoch)
					}
					if !bytes.Equal(got, probe.want) {
						t.Fatalf("%s at epoch %d: mirror bytes differ from broker (%d vs %d bytes)",
							probe.route, epoch, len(got), len(probe.want))
					}
				}
			}
		})
	}
}

// TestMirrorConvergesUnderFaultMatrix follows a churning broker through the
// chaos transport with every scheduled fault kind active plus injected
// latency. Two properties: any successful mirror read during the run is
// byte-identical to what the broker served at that read's epoch (never
// wrong-but-confident), and after the churn the mirror converges to the
// final committed state exactly.
func TestMirrorConvergesUnderFaultMatrix(t *testing.T) {
	b := newFaultBroker(t, "disk")
	srv := httptest.NewServer(broker.NewHandler(b))
	defer srv.Close()

	cp, err := chaos.New(srv.Listener.Addr().String(), chaos.Config{
		Seed:            3,
		FaultEvery:      2, // every other connection is injured
		Faults:          []chaos.Fault{chaos.Reset, chaos.Truncate, chaos.Stall},
		FaultAfterBytes: 150,
		StallFor:        100 * time.Millisecond,
		Latency:         time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()

	m := startMirror(t, cp.URL(), spectrum.MirrorConfig{
		MaxStaleness: 2 * time.Second,
		PollTimeout:  150 * time.Millisecond,
	})

	// byEpoch records the broker's exact snapshot bytes at every committed
	// epoch; a mirror read claiming epoch E must reproduce byEpoch[E].
	byEpoch := map[int][]byte{}
	r := market.NewOpsReplayer(faultTrace("disk", 17, 10), true)
	confident := 0
	for epoch := 1; replayStep(t, b, r); epoch++ {
		b.Tick()
		byEpoch[epoch] = fetchRaw(t, srv.URL+"/v1/snapshot")
		// Sample the mirror mid-churn, through the faults.
		if got, gotEpoch, err := m.SnapshotJSON(); err == nil {
			want, ok := byEpoch[gotEpoch]
			if !ok {
				t.Fatalf("mirror served epoch %d, which the broker never committed", gotEpoch)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("mirror served wrong bytes for epoch %d", gotEpoch)
			}
			confident++
		}
		time.Sleep(10 * time.Millisecond)
	}

	final := b.Epoch()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.WaitForEpoch(ctx, final); err != nil {
		t.Fatalf("mirror never converged to final epoch %d under faults: %v (stats %+v, chaos %+v)",
			final, err, m.Stats(), cp.Stats())
	}
	got, gotEpoch, err := m.SnapshotJSON()
	if err != nil || gotEpoch != final {
		t.Fatalf("converged read: epoch %d err %v, want %d", gotEpoch, err, final)
	}
	if !bytes.Equal(got, byEpoch[final]) {
		t.Fatalf("converged snapshot differs from broker at epoch %d", final)
	}
	st := cp.Stats()
	injured := 0
	for _, n := range st.Injected {
		injured += n
	}
	if injured == 0 {
		t.Fatalf("fault matrix injected nothing (%d conns) — the test did not test", st.Conns)
	}
	t.Logf("converged at epoch %d; %d confident mid-churn reads verified; chaos: %d conns, %v injured; mirror: %+v",
		final, confident, st.Conns, st.Injected, m.Stats())
}

// TestMirrorBlackoutDegradesThenRecovers: when the network goes fully dark
// the mirror keeps serving within its staleness bound, then degrades every
// read to ErrStale rather than answering from the dead past; when the
// network returns it re-anchors and serves fresh state again.
func TestMirrorBlackoutDegradesThenRecovers(t *testing.T) {
	b := newFaultBroker(t, "disk")
	srv := httptest.NewServer(broker.NewHandler(b))
	defer srv.Close()
	cp, err := chaos.New(srv.Listener.Addr().String(), chaos.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()

	const bound = 400 * time.Millisecond
	m := startMirror(t, cp.URL(), spectrum.MirrorConfig{
		MaxStaleness: bound,
		PollTimeout:  50 * time.Millisecond,
	})
	r := market.NewOpsReplayer(faultTrace("disk", 23, 3), true)
	for replayStep(t, b, r) {
		b.Tick()
	}
	final := b.Epoch()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.WaitForEpoch(ctx, final); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocation(); err != nil {
		t.Fatalf("fresh read failed: %v", err)
	}

	cp.SetBlackout(true)
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := m.Allocation()
		if err != nil {
			if !errors.Is(err, spectrum.ErrStale) {
				t.Fatalf("degraded read returned %v, want ErrStale", err)
			}
			var se *spectrum.StaleError
			if !errors.As(err, &se) {
				t.Fatalf("stale error is not a *StaleError: %v", err)
			}
			if se.Age < bound {
				t.Fatalf("rejected at age %v, inside the %v bound", se.Age, bound)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reads never degraded during blackout")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h := m.Health(); !h.Degraded || h.Status != "degraded" {
		t.Fatalf("health during blackout: %+v, want degraded", h)
	}

	cp.SetBlackout(false)
	b.Tick()
	want := b.Epoch()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel2()
	if err := m.WaitForEpoch(ctx2, want); err != nil {
		t.Fatalf("mirror did not recover after blackout: %v", err)
	}
	if _, err := m.Allocation(); err != nil {
		t.Fatalf("post-recovery read failed: %v", err)
	}
	if h := m.Health(); h.Degraded {
		t.Fatalf("health after recovery still degraded: %+v", h)
	}
}

// TestMirrorKillRestoreResync: the broker is hard-killed mid-follow (no
// clean close, journal handle dropped) and restored from its write-ahead
// journal on the same address. The mirror must detect the restart, resync,
// and converge byte-identically to the restored broker's state.
func TestMirrorKillRestoreResync(t *testing.T) {
	dir := t.TempDir()
	factory := func() (*broker.Broker, error) {
		cm, err := broker.ModelByName("disk", 1)
		if err != nil {
			return nil, err
		}
		return broker.New(broker.Config{K: 3, Model: cm, Prices: true})
	}
	b, w, _, err := journal.Open(dir, factory, journal.Options{Sync: journal.SyncAlways, SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hsrv := &http.Server{Handler: broker.NewHandler(b)}
	go hsrv.Serve(ln)

	m := startMirror(t, "http://"+addr, spectrum.MirrorConfig{
		MaxStaleness: 2 * time.Second,
		PollTimeout:  100 * time.Millisecond,
	})

	r := market.NewOpsReplayer(faultTrace("disk", 29, 6), true)
	epoch := 0
	for replayStep(t, b, r) {
		b.Tick()
		epoch++
		if epoch == 3 {
			break
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := m.WaitForEpoch(ctx, epoch); err != nil {
		t.Fatal(err)
	}
	cancel()

	// Power cut: server down, journal handle dropped without a sync.
	hsrv.Close()
	w.Abort()
	preEpoch := b.Epoch()

	// Restore on the same address.
	b2, w2, rec, err := journal.Open(dir, factory, journal.Options{Sync: journal.SyncAlways, SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec == nil || b2.Epoch() != preEpoch {
		t.Fatalf("restore: epoch %d (recovery %+v), want %d", b2.Epoch(), rec, preEpoch)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	hsrv2 := &http.Server{Handler: broker.NewHandler(b2)}
	go hsrv2.Serve(ln2)
	defer hsrv2.Close()

	// More churn on the restored broker; the mirror must follow it.
	for replayStep(t, b2, r) {
		b2.Tick()
	}
	b2.Tick()
	final := b2.Epoch()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel2()
	if err := m.WaitForEpoch(ctx2, final); err != nil {
		t.Fatalf("mirror never converged on the restored broker: %v (stats %+v)", err, m.Stats())
	}
	want := fetchRaw(t, "http://"+addr+"/v1/snapshot")
	got, gotEpoch, err := m.SnapshotJSON()
	if err != nil || gotEpoch != final {
		t.Fatalf("post-restore read: epoch %d err %v, want %d", gotEpoch, err, final)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restore snapshot differs from the restored broker at epoch %d", final)
	}
	if st := m.Stats(); st.Restarts == 0 {
		t.Fatalf("the broker restart went undetected: %+v", st)
	}
}
