package broker

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/pkg/spectrum"
)

// TestWaitEpochBlocksUntilCommit: a waiter on the current epoch parks until
// the next Tick and then receives that epoch's report; a waiter behind the
// current epoch returns immediately with the newest report.
func TestWaitEpochBlocksUntilCommit(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	if _, err := b.Submit(Bid{Radius: 2, Values: []float64{3, 4}}); err != nil {
		t.Fatal(err)
	}
	done := make(chan EpochReport, 1)
	go func() {
		rep, err := b.WaitEpoch(context.Background(), 0)
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	select {
	case rep := <-done:
		t.Fatalf("WaitEpoch returned before any tick: %+v", rep)
	case <-time.After(20 * time.Millisecond):
	}
	b.Tick()
	select {
	case rep := <-done:
		if rep.Epoch != 1 || rep.Welfare != 7 {
			t.Fatalf("watched report %+v, want epoch 1 welfare 7", rep)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitEpoch did not wake on Tick")
	}
	// Already-past epoch: immediate.
	rep, err := b.WaitEpoch(context.Background(), 0)
	if err != nil || rep.Epoch != 1 {
		t.Fatalf("immediate WaitEpoch: %+v, %v", rep, err)
	}
	// Context cancellation unblocks a parked waiter.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := b.WaitEpoch(ctx, 99); err == nil {
		t.Fatal("WaitEpoch(future) returned without a commit")
	}
}

// TestWaitEpochBeforeFirstCommit: before any epoch has ever committed there
// is no report to deliver — even since=-1 ("newest immediately") must park
// rather than fabricate a zero-value epoch-0 report.
func TestWaitEpochBeforeFirstCommit(t *testing.T) {
	b := newTestBroker(t, Config{K: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if rep, err := b.WaitEpoch(ctx, -1); err == nil {
		t.Fatalf("WaitEpoch(-1) on an unticked broker returned %+v", rep)
	}
	b.Tick()
	rep, err := b.WaitEpoch(context.Background(), -1)
	if err != nil || rep.Epoch != 1 {
		t.Fatalf("WaitEpoch(-1) after first tick: %+v, %v", rep, err)
	}
}

// TestWatchCoalesces: a waiter that falls behind several commits gets the
// newest epoch, not a backlog.
func TestWatchCoalesces(t *testing.T) {
	b := newTestBroker(t, Config{K: 1})
	for i := 0; i < 3; i++ {
		b.Tick()
	}
	rep, err := b.WaitEpoch(context.Background(), 0)
	if err != nil || rep.Epoch != 3 {
		t.Fatalf("coalesced watch: %+v, %v", rep, err)
	}
}

// TestHTTPWatchLongPoll drives GET /v1/watch over real HTTP: a poll behind
// the current epoch answers immediately, a poll at the current epoch blocks
// until the next tick, and an empty window is a 204.
func TestHTTPWatchLongPoll(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 2})
	b.Tick()
	var rep EpochReport
	if resp := doJSON(t, http.MethodGet, srv.URL+"/v1/watch?since=0", nil, &rep); resp.StatusCode != http.StatusOK {
		t.Fatalf("watch behind: %d", resp.StatusCode)
	}
	if rep.Epoch != 1 {
		t.Fatalf("watch behind returned epoch %d", rep.Epoch)
	}
	// Empty window → 204.
	resp, err := http.Get(srv.URL + "/v1/watch?since=1&timeout=50ms")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("empty watch window: %d, want 204", resp.StatusCode)
	}
	// Blocking poll woken by a tick.
	got := make(chan int, 1)
	go func() {
		var rep EpochReport
		doJSON(t, http.MethodGet, srv.URL+"/v1/watch?since=1", nil, &rep)
		got <- rep.Epoch
	}()
	time.Sleep(20 * time.Millisecond)
	b.Tick()
	select {
	case e := <-got:
		if e != 2 {
			t.Fatalf("long-poll woke with epoch %d, want 2", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke")
	}
	// Malformed parameters are 400s.
	for _, q := range []string{"since=abc", "timeout=xyz", "timeout=-1s"} {
		resp, err := http.Get(srv.URL + "/v1/watch?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("watch?%s: %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestHTTPWatchSSE: &stream=sse upgrades the watch to a server-sent-event
// stream delivering every subsequent commit.
func TestHTTPWatchSSE(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/watch?since=0&stream=sse", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				b.Tick()
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()
	sc := bufio.NewScanner(resp.Body)
	events := 0
	lastEpoch := 0
	for sc.Scan() && events < 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var rep EpochReport
		if err := jsonUnmarshal(line[len("data: "):], &rep); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		if rep.Epoch <= lastEpoch {
			t.Fatalf("SSE epochs not increasing: %d after %d", rep.Epoch, lastEpoch)
		}
		lastEpoch = rep.Epoch
		events++
	}
	if events < 3 {
		t.Fatalf("saw %d SSE events, want 3 (%v)", events, sc.Err())
	}
}

func jsonUnmarshal(s string, v any) error { return json.Unmarshal([]byte(s), v) }

// TestWatchConcurrentSubscribers hammers the watch path from many SDK
// clients while the broker ticks and mutates — the -race CI step runs this.
func TestWatchConcurrentSubscribers(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 2, MaxBidders: 4096})
	client := spectrum.NewClient(srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	stop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if _, err := b.Submit(Bid{
					Pos:    geom.Point{X: float64(i%20) * 25, Y: float64(i/20%20) * 25},
					Radius: 2, Values: []float64{1, 2},
				}); err != nil {
					t.Error(err)
					return
				}
				b.Tick()
			}
		}
	}()

	const subscribers = 8
	var wg sync.WaitGroup
	for w := 0; w < subscribers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			since := 0
			for seen := 0; seen < 5; seen++ {
				rep, err := client.WaitEpoch(ctx, since)
				if err != nil {
					t.Errorf("subscriber: %v", err)
					return
				}
				if rep.Epoch <= since {
					t.Errorf("watch went backwards: %d after %d", rep.Epoch, since)
					return
				}
				since = rep.Epoch
			}
		}()
	}
	wg.Wait()
	close(stop)
	tickWG.Wait()
}

// TestWatchSubscribersAcrossOneTick pins the satellite contract precisely:
// N concurrent subscribers all parked on the same epoch are all released by
// one Tick and all observe the same committed report.
func TestWatchSubscribersAcrossOneTick(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 2})
	client := spectrum.NewClient(srv.URL)
	if _, err := b.Submit(Bid{Radius: 2, Values: []float64{3, 4}}); err != nil {
		t.Fatal(err)
	}
	const n = 6
	reps := make(chan EpochReport, n)
	var ready, wg sync.WaitGroup
	ready.Add(n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			ready.Done()
			rep, err := client.WaitEpoch(context.Background(), 0)
			if err != nil {
				t.Errorf("WaitEpoch: %v", err)
				return
			}
			reps <- rep
		}()
	}
	ready.Wait()
	time.Sleep(20 * time.Millisecond) // let the long-polls park server-side
	b.Tick()
	wg.Wait()
	close(reps)
	count := 0
	for rep := range reps {
		count++
		if rep.Epoch != 1 || rep.Welfare != 7 {
			t.Fatalf("subscriber saw %+v, want epoch 1 welfare 7", rep)
		}
	}
	if count != n {
		t.Fatalf("%d of %d subscribers reported", count, n)
	}
}
