package broker

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/valuation"
)

// FuzzValidValues throws arbitrary valuation wire forms at Broker.validValues
// and checks the gate's contract: it never panics, and everything it accepts
// can be built into a Valuation whose values are finite and non-negative with
// support inside the market's channels.
func FuzzValidValues(f *testing.F) {
	f.Add(float64(1), float64(2), float64(3), uint8(3), false)
	f.Add(math.NaN(), float64(0), float64(-1), uint8(3), false)
	f.Add(math.Inf(1), float64(5), float64(0.5), uint8(7), false)
	f.Add(float64(4), float64(0), float64(2), uint8(2), true)
	f.Add(float64(-0.0), math.Inf(-1), float64(1e300), uint8(1), true)
	f.Fuzz(func(t *testing.T, v0, v1, v2 float64, arity uint8, xor bool) {
		const k = 3
		b := newTestBroker(t, Config{K: k})
		raw := []float64{v0, v1, v2, v0, v1, v2, v0}[:arity%8]
		var v Values
		if xor {
			// Channels derived from the float bits so the fuzzer can reach
			// out-of-range and duplicate channels.
			for i, val := range raw {
				ch := []int{int(math.Abs(v0)) % 7, i % 7}
				v.XOR = append(v.XOR, XORAtom{Channels: ch[:1+i%2], Value: val})
			}
		} else {
			v.Additive = raw
		}
		err := b.validValues(v)
		if err != nil {
			return
		}
		val := buildValuation(v, k)
		full := valuation.Full(k)
		if got := val.Value(full); math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Fatalf("accepted values produced Value(full)=%g (%+v)", got, v)
		}
		if sup := valuesSupport(v); sup&^full != 0 {
			t.Fatalf("accepted values have support %v outside %d channels", sup, k)
		}
	})
}

// FuzzBidValidation decodes arbitrary JSON as a Bid and submits it to a
// broker per interference backend: validation must never panic, and any bid
// it accepts must survive a full epoch solve (the gate is exactly as strict
// as the solver needs it to be — NaN/Inf geometry, wrong value arity, and
// malformed atoms must all be stopped at the door).
func FuzzBidValidation(f *testing.F) {
	f.Add([]byte(`{"pos":{"x":10,"y":20},"radius":5,"values":[3,1,4]}`))
	f.Add([]byte(`{"pos":{"x":1e400,"y":0},"radius":5,"values":[1,1,1]}`))
	f.Add([]byte(`{"radius":-2,"values":[1,2,3]}`))
	f.Add([]byte(`{"link":{"sender":{"x":0,"y":0},"receiver":{"x":3,"y":4}},"values":[1,2,3]}`))
	f.Add([]byte(`{"link":{"sender":{"x":0,"y":0},"receiver":{"x":0,"y":0}},"values":[1,2,3]}`))
	f.Add([]byte(`{"radius":1,"xor":[{"channels":[0,2],"value":7},{"channels":[1],"value":3}]}`))
	f.Add([]byte(`{"radius":1,"xor":[{"channels":[9],"value":7}]}`))
	f.Add([]byte(`{"radius":1,"values":[1]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var bid Bid
		if err := json.Unmarshal(data, &bid); err != nil {
			return
		}
		for _, name := range ModelNames() {
			b := newTestBroker(t, Config{K: 3, Model: mustModel(t, name)})
			id, err := b.Submit(bid)
			if err != nil {
				continue
			}
			rep := b.Tick()
			if rep.Errors != 0 {
				t.Fatalf("%s: accepted bid broke the epoch solve: %+v (bid %+v)", name, rep, bid)
			}
			if math.IsNaN(rep.Welfare) || math.IsInf(rep.Welfare, 0) || rep.Welfare < 0 {
				t.Fatalf("%s: accepted bid produced welfare %g (bid %+v)", name, rep.Welfare, bid)
			}
			if st := b.StatusOf(id); st != StatusActive {
				t.Fatalf("%s: accepted bid not active after tick: %v", name, st)
			}
		}
	})
}
