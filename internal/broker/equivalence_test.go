package broker

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/market"
	"repro/internal/valuation"
)

// The equivalence contract of the sharded incremental epoch path: a broker
// fed a fixed arrival trace one event per epoch — so every component is
// grown, merged, split, and re-solved incrementally, with pool-seeded warm
// masters — must commit, at every epoch, exactly the allocation a
// from-scratch auction.SolveLP + RoundDerandomized on that epoch's snapshot
// instance produces. The LP of a disconnected instance separates by
// component, conflict resolution never crosses components, and the broker
// picks the size-decomposition half globally, so the two paths coincide.

// globalReference solves the snapshot instance cold, end to end.
func globalReference(t *testing.T, b *Broker) (map[BidderID]valuation.Bundle, float64) {
	t.Helper()
	in, ids, _, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if in.N() == 0 {
		return map[BidderID]valuation.Bundle{}, 0
	}
	sol, err := in.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	alloc, _ := in.RoundDerandomized(sol)
	out := make(map[BidderID]valuation.Bundle)
	for i, id := range ids {
		if alloc[i] != valuation.Empty {
			out[id] = alloc[i]
		}
	}
	return out, alloc.Welfare(in.Bidders)
}

func brokerAlloc(b *Broker) map[BidderID]valuation.Bundle {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[BidderID]valuation.Bundle, len(b.alloc))
	for id, tb := range b.alloc {
		if tb != valuation.Empty {
			out[id] = tb
		}
	}
	return out
}

func sameAlloc(a, c map[BidderID]valuation.Bundle) bool {
	if len(a) != len(c) {
		return false
	}
	for id, tb := range a {
		if c[id] != tb {
			return false
		}
	}
	return true
}

func TestIncrementalMatchesColdGlobalSolve(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		b := newTestBroker(t, Config{K: 3})
		live := map[int]BidderID{}
		replay := market.NewReplayer(testTrace(seed, 8, 3))
		// Epoch size 1: every single arrival and departure gets its own
		// tick (inside its callback), so the incremental machinery sees
		// each component change in isolation.
		for {
			e := replay.Epoch()
			more, err := replay.Step(
				func(tid int, _ bool) error {
					err := b.Withdraw(live[tid])
					delete(live, tid)
					b.Tick()
					checkAgainstReference(t, b, seed, e)
					return err
				},
				func(a market.Arrival, values []float64) error {
					id, err := b.Submit(Bid{Pos: a.Pos, Radius: a.Radius, Values: values})
					live[a.ID] = id
					b.Tick()
					checkAgainstReference(t, b, seed, e)
					return err
				},
				nil, // static trace: no mobility events
				nil, // trace has no primaries, so no mask updates
			)
			if err != nil {
				t.Fatal(err)
			}
			if !more {
				break
			}
		}
	}
}

func checkAgainstReference(t *testing.T, b *Broker, seed int64, epoch int) {
	t.Helper()
	refAlloc, refWelfare := globalReference(t, b)
	got := brokerAlloc(b)
	if !sameAlloc(got, refAlloc) {
		t.Fatalf("seed %d epoch %d: incremental allocation %v differs from cold global %v",
			seed, epoch, got, refAlloc)
	}
	m := b.Metrics()
	if math.Abs(m.Last.Welfare-refWelfare) > 1e-9*(1+math.Abs(refWelfare)) {
		t.Fatalf("seed %d epoch %d: welfare %g vs cold global %g",
			seed, epoch, m.Last.Welfare, refWelfare)
	}
}

// TestIncrementalMatchesColdBroker runs the same trace through a caching
// broker and a Cold-mode broker (every epoch rebuilt from scratch, no pool,
// no persistent masters) with batched epochs; the committed allocations
// must be identical every epoch.
func TestIncrementalMatchesColdBroker(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		tr := testTrace(seed, 10, 3)
		warm := newTestBroker(t, Config{K: 3})
		cold := newTestBroker(t, Config{K: 3, Cold: true})
		dw := newTraceDriver(t, warm, tr)
		dc := newTraceDriver(t, cold, tr)
		for e := 0; dw.step() && dc.step(); e++ {
			wrep := warm.Tick()
			crep := cold.Tick()
			// Broker ids are assigned identically (same submission order),
			// so the allocation maps must match key for key.
			if !sameAlloc(brokerAlloc(warm), brokerAlloc(cold)) {
				t.Fatalf("seed %d epoch %d: warm and cold brokers disagree", seed, e)
			}
			if math.Abs(wrep.Welfare-crep.Welfare) > 1e-9*(1+math.Abs(crep.Welfare)) {
				t.Fatalf("seed %d epoch %d: welfare %g vs %g", seed, e, wrep.Welfare, crep.Welfare)
			}
			if crep.Clean != 0 || crep.WarmResolves != 0 {
				t.Fatalf("cold broker used the cache: %+v", crep)
			}
		}
		// The warm broker must actually have exploited the cache.
		if m := warm.Metrics(); m.CleanTotal == 0 {
			t.Fatal("warm broker never hit the component cache")
		}
	}
}

// TestLPValueMatchesGlobal cross-checks that the summed per-component LP
// optima equal the LP optimum of the union instance (the relaxation
// separates over components).
func TestLPValueMatchesGlobal(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	d := newTraceDriver(t, b, testTrace(9, 6, 2))
	for e := 0; d.step(); e++ {
		rep := b.Tick()
		in, _, _, err := b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if in.N() == 0 {
			continue
		}
		sol, err := in.SolveLPCold()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rep.LPValue-sol.Value) > 1e-7*(1+math.Abs(sol.Value)) {
			t.Fatalf("epoch %d: sharded LP %g vs global LP %g", e, rep.LPValue, sol.Value)
		}
	}
}

// --- cross-backend equivalence matrix ---
//
// The epoch-equivalence contract must hold for every interference backend,
// not just disk: under membership churn, valuation churn (including XOR
// bidders and form switches), and moves, the incremental sharded epoch path
// commits exactly what a from-scratch SolveLP + RoundDerandomized of the
// snapshot produces, and a warm broker agrees with a Cold one epoch by epoch.

func mustModel(t testing.TB, name string) ConflictModel {
	t.Helper()
	m, err := ModelByName(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// modelDriver replays a model-parameterized trace into a broker through the
// shared market.OpsReplayer translation (XOR mixing included) and the
// broker's batch enqueue — each trace step is one Batch call, the same path
// POST /v1/batch serves — with (optionally) periodic moves on top.
type modelDriver struct {
	t       testing.TB
	name    string
	b       *Broker
	r       *market.OpsReplayer
	moveRng *rand.Rand
	step_   int
}

func newModelDriver(t testing.TB, name string, b *Broker, tr *market.Trace, moveSeed int64) *modelDriver {
	d := &modelDriver{t: t, name: name, b: b, r: market.NewOpsReplayer(tr, true)}
	if moveSeed != 0 {
		d.moveRng = rand.New(rand.NewSource(moveSeed))
	}
	return d
}

func (d *modelDriver) step() bool {
	d.t.Helper()
	ops, more, err := d.r.Step()
	if err != nil {
		d.t.Fatal(err)
	}
	results, _ := d.b.Batch(ops)
	if err := d.r.Observe(results); err != nil {
		d.t.Fatal(err)
	}
	d.step_++
	// Every third step, relocate the lowest live bidder with fresh geometry,
	// exercising the model's Move delta inside the equivalence loop.
	if live := d.r.Live(); more && d.moveRng != nil && d.step_%3 == 0 && len(live) > 0 {
		lowest := -1
		for tid := range live {
			if lowest == -1 || tid < lowest {
				lowest = tid
			}
		}
		if err := d.b.Move(live[lowest], randBid(d.moveRng, d.name)); err != nil {
			d.t.Fatal(err)
		}
	}
	return more
}

// modelTrace draws a churn workload sized for the backend (distance-2 squares
// disk components, so it gets a sparser market).
func modelTrace(name string, seed int64, epochs int, primaries bool) *market.Trace {
	cfg := market.TraceConfig{
		Seed:         seed,
		Epochs:       epochs,
		K:            3,
		Side:         150,
		ArrivalRate:  4,
		MeanLifetime: 4,
		MaxUsers:     24,
		Model:        name,
	}
	if name == "distance2" {
		cfg.ArrivalRate, cfg.MaxUsers = 3, 16
	}
	if primaries {
		cfg.PrimaryUsers, cfg.PrimaryRadius, cfg.PrimaryActive = 2, 45, 0.5
	}
	return market.GenTrace(cfg)
}

// TestCrossBackendIncrementalMatchesGlobal: per backend, per epoch, the
// incremental allocation equals the from-scratch solve of the snapshot.
// Two churn flavors: membership-only (arrivals/departures/moves) and
// valuation churn (primary-user masking streams updates, hitting the warm
// SetObjective path, the forced-rebuild paths, and XOR atom changes).
func TestCrossBackendIncrementalMatchesGlobal(t *testing.T) {
	for _, name := range ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, churn := range []struct {
				label     string
				primaries bool
				moveSeed  int64
			}{
				{"membership", false, 77},
				{"valuation", true, 0},
			} {
				b := newTestBroker(t, Config{K: 3, Model: mustModel(t, name)})
				d := newModelDriver(t, name, b, modelTrace(name, 21, 8, churn.primaries), churn.moveSeed)
				winners := 0
				for e := 0; d.step(); e++ {
					b.Tick()
					checkAgainstReference(t, b, 21, e)
					winners += len(brokerAlloc(b))
				}
				if m := b.Metrics(); m.Epochs == 0 || m.Submitted == 0 || winners == 0 {
					t.Fatalf("%s/%s: trace drove nothing (winners=%d, %+v)", name, churn.label, winners, m)
				}
			}
		})
	}
}

// TestCrossBackendWarmMatchesCold: per backend, a caching broker and a Cold
// broker fed the same valuation-churn trace commit identical allocations
// every epoch, and the caching broker actually exploits its cache.
func TestCrossBackendWarmMatchesCold(t *testing.T) {
	for _, name := range ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr := modelTrace(name, 31, 10, true)
			warm := newTestBroker(t, Config{K: 3, Model: mustModel(t, name)})
			cold := newTestBroker(t, Config{K: 3, Cold: true, Model: mustModel(t, name)})
			dw := newModelDriver(t, name, warm, tr, 0)
			dc := newModelDriver(t, name, cold, tr, 0)
			for e := 0; dw.step() && dc.step(); e++ {
				wrep := warm.Tick()
				crep := cold.Tick()
				if !sameAlloc(brokerAlloc(warm), brokerAlloc(cold)) {
					t.Fatalf("%s epoch %d: warm and cold brokers disagree", name, e)
				}
				if math.Abs(wrep.Welfare-crep.Welfare) > 1e-9*(1+math.Abs(crep.Welfare)) {
					t.Fatalf("%s epoch %d: welfare %g vs %g", name, e, wrep.Welfare, crep.Welfare)
				}
			}
			if m := warm.Metrics(); m.CleanTotal == 0 {
				t.Fatalf("%s: warm broker never hit the component cache", name)
			}
		})
	}
}
