package broker

import (
	"math"
	"testing"

	"repro/internal/market"
	"repro/internal/valuation"
)

// The equivalence contract of the sharded incremental epoch path: a broker
// fed a fixed arrival trace one event per epoch — so every component is
// grown, merged, split, and re-solved incrementally, with pool-seeded warm
// masters — must commit, at every epoch, exactly the allocation a
// from-scratch auction.SolveLP + RoundDerandomized on that epoch's snapshot
// instance produces. The LP of a disconnected instance separates by
// component, conflict resolution never crosses components, and the broker
// picks the size-decomposition half globally, so the two paths coincide.

// globalReference solves the snapshot instance cold, end to end.
func globalReference(t *testing.T, b *Broker) (map[BidderID]valuation.Bundle, float64) {
	t.Helper()
	in, ids, _, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if in.N() == 0 {
		return map[BidderID]valuation.Bundle{}, 0
	}
	sol, err := in.SolveLP()
	if err != nil {
		t.Fatal(err)
	}
	alloc, _ := in.RoundDerandomized(sol)
	out := make(map[BidderID]valuation.Bundle)
	for i, id := range ids {
		if alloc[i] != valuation.Empty {
			out[id] = alloc[i]
		}
	}
	return out, alloc.Welfare(in.Bidders)
}

func brokerAlloc(b *Broker) map[BidderID]valuation.Bundle {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[BidderID]valuation.Bundle, len(b.alloc))
	for id, tb := range b.alloc {
		if tb != valuation.Empty {
			out[id] = tb
		}
	}
	return out
}

func sameAlloc(a, c map[BidderID]valuation.Bundle) bool {
	if len(a) != len(c) {
		return false
	}
	for id, tb := range a {
		if c[id] != tb {
			return false
		}
	}
	return true
}

func TestIncrementalMatchesColdGlobalSolve(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		b := newTestBroker(t, Config{K: 3})
		live := map[int]BidderID{}
		replay := market.NewReplayer(testTrace(seed, 8, 3))
		// Epoch size 1: every single arrival and departure gets its own
		// tick (inside its callback), so the incremental machinery sees
		// each component change in isolation.
		for {
			e := replay.Epoch()
			more, err := replay.Step(
				func(tid int) error {
					err := b.Withdraw(live[tid])
					delete(live, tid)
					b.Tick()
					checkAgainstReference(t, b, seed, e)
					return err
				},
				func(a market.Arrival, values []float64) error {
					id, err := b.Submit(Bid{Pos: a.Pos, Radius: a.Radius, Values: values})
					live[a.ID] = id
					b.Tick()
					checkAgainstReference(t, b, seed, e)
					return err
				},
				nil, // trace has no primaries, so no mask updates
			)
			if err != nil {
				t.Fatal(err)
			}
			if !more {
				break
			}
		}
	}
}

func checkAgainstReference(t *testing.T, b *Broker, seed int64, epoch int) {
	t.Helper()
	refAlloc, refWelfare := globalReference(t, b)
	got := brokerAlloc(b)
	if !sameAlloc(got, refAlloc) {
		t.Fatalf("seed %d epoch %d: incremental allocation %v differs from cold global %v",
			seed, epoch, got, refAlloc)
	}
	m := b.Metrics()
	if math.Abs(m.Last.Welfare-refWelfare) > 1e-9*(1+math.Abs(refWelfare)) {
		t.Fatalf("seed %d epoch %d: welfare %g vs cold global %g",
			seed, epoch, m.Last.Welfare, refWelfare)
	}
}

// TestIncrementalMatchesColdBroker runs the same trace through a caching
// broker and a Cold-mode broker (every epoch rebuilt from scratch, no pool,
// no persistent masters) with batched epochs; the committed allocations
// must be identical every epoch.
func TestIncrementalMatchesColdBroker(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		tr := testTrace(seed, 10, 3)
		warm := newTestBroker(t, Config{K: 3})
		cold := newTestBroker(t, Config{K: 3, Cold: true})
		dw := newTraceDriver(t, warm, tr)
		dc := newTraceDriver(t, cold, tr)
		for e := 0; dw.step() && dc.step(); e++ {
			wrep := warm.Tick()
			crep := cold.Tick()
			// Broker ids are assigned identically (same submission order),
			// so the allocation maps must match key for key.
			if !sameAlloc(brokerAlloc(warm), brokerAlloc(cold)) {
				t.Fatalf("seed %d epoch %d: warm and cold brokers disagree", seed, e)
			}
			if math.Abs(wrep.Welfare-crep.Welfare) > 1e-9*(1+math.Abs(crep.Welfare)) {
				t.Fatalf("seed %d epoch %d: welfare %g vs %g", seed, e, wrep.Welfare, crep.Welfare)
			}
			if crep.Clean != 0 || crep.WarmResolves != 0 {
				t.Fatalf("cold broker used the cache: %+v", crep)
			}
		}
		// The warm broker must actually have exploited the cache.
		if m := warm.Metrics(); m.CleanTotal == 0 {
			t.Fatal("warm broker never hit the component cache")
		}
	}
}

// TestLPValueMatchesGlobal cross-checks that the summed per-component LP
// optima equal the LP optimum of the union instance (the relaxation
// separates over components).
func TestLPValueMatchesGlobal(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	d := newTraceDriver(t, b, testTrace(9, 6, 2))
	for e := 0; d.step(); e++ {
		rep := b.Tick()
		in, _, _, err := b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if in.N() == 0 {
			continue
		}
		sol, err := in.SolveLPCold()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rep.LPValue-sol.Value) > 1e-7*(1+math.Abs(sol.Value)) {
			t.Fatalf("epoch %d: sharded LP %g vs global LP %g", e, rep.LPValue, sol.Value)
		}
	}
}
