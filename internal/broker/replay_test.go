package broker

// White-box tests of the durability surface: the commit hook must hand out
// records that, replayed into a fresh broker, rebuild the identical
// committed allocation epoch by epoch — the in-memory half of the recovery
// invariant internal/journal's crash suite exercises through real files.

import (
	"errors"
	"testing"

	"repro/internal/valuation"
	"repro/pkg/spectrum"
)

// TestCommitRecordReplayMatchesLive: per backend, capture every
// CommitRecord of a churn trace (XOR mixing, updates, moves, quiet epochs)
// and replay them into a fresh broker; after each replayed epoch the
// allocation must match what the live broker had committed at that epoch.
func TestCommitRecordReplayMatchesLive(t *testing.T) {
	for _, name := range ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			live := newTestBroker(t, Config{K: 3, Model: mustModel(t, name)})
			var recs []CommitRecord
			live.SetOnCommit(func(r CommitRecord) error {
				recs = append(recs, r)
				return nil
			})
			if !live.Durable() {
				t.Fatal("hooked broker not durable")
			}
			d := newModelDriver(t, name, live, modelTrace(name, 51, 8, true), 7)
			var states []map[BidderID]valuation.Bundle
			for d.step() {
				live.Tick()
				states = append(states, brokerAlloc(live))
			}
			if len(recs) != len(states) {
				t.Fatalf("%d commit records for %d epochs", len(recs), len(states))
			}

			rb := newTestBroker(t, Config{K: 3, Model: mustModel(t, name)})
			for i, r := range recs {
				if r.Epoch != i+1 {
					t.Fatalf("record %d carries epoch %d", i, r.Epoch)
				}
				if err := rb.ReplayEpoch(r.Epoch, r.NextID, r.Ops); err != nil {
					t.Fatalf("replay epoch %d: %v", r.Epoch, err)
				}
				if !sameAlloc(brokerAlloc(rb), states[i]) {
					t.Fatalf("%s: replayed epoch %d allocation diverged from live", name, r.Epoch)
				}
			}
			if rb.Epoch() != live.Epoch() {
				t.Fatalf("replayed broker at epoch %d, live at %d", rb.Epoch(), live.Epoch())
			}
		})
	}
}

// TestSeedStateReplayResumesMidTrace: SeedState taken between ticks plus the
// later commit records must rebuild the same market a full-history replay
// would — the snapshot+tail restore path in miniature.
func TestSeedStateReplayResumesMidTrace(t *testing.T) {
	live := newTestBroker(t, Config{K: 3})
	var recs []CommitRecord
	live.SetOnCommit(func(r CommitRecord) error { recs = append(recs, r); return nil })
	d := newModelDriver(t, "disk", live, modelTrace("disk", 63, 9, true), 5)
	var states []map[BidderID]valuation.Bundle
	var seed SeedState
	for e := 0; d.step(); e++ {
		live.Tick()
		states = append(states, brokerAlloc(live))
		if e == 4 {
			seed = live.SeedState()
		}
	}
	if seed.Epoch != 5 || seed.Model != "disk" || seed.K != 3 || seed.NextID <= 0 {
		t.Fatalf("mid-trace seed state %+v", seed)
	}
	for i := 1; i < len(seed.Bidders); i++ {
		if seed.Bidders[i-1].ID >= seed.Bidders[i].ID {
			t.Fatal("seed bidders not strictly ascending")
		}
	}

	rb := newTestBroker(t, Config{K: 3})
	if err := rb.ReplaySeed(seed.Epoch, seed.NextID, seed.Bidders); err != nil {
		t.Fatal(err)
	}
	if re, ok := rb.RecoveredEpoch(); ok || re >= 0 {
		t.Fatal("ReplaySeed alone must not mark the broker recovered")
	}
	if !sameAlloc(brokerAlloc(rb), states[seed.Epoch-1]) {
		t.Fatal("seeded allocation diverged from the live broker at the seed epoch")
	}
	for _, r := range recs {
		if r.Epoch <= seed.Epoch {
			continue
		}
		if err := rb.ReplayEpoch(r.Epoch, r.NextID, r.Ops); err != nil {
			t.Fatalf("replay epoch %d from seed: %v", r.Epoch, err)
		}
		if !sameAlloc(brokerAlloc(rb), states[r.Epoch-1]) {
			t.Fatalf("seed+tail replay diverged at epoch %d", r.Epoch)
		}
	}
	if rb.Epoch() != live.Epoch() {
		t.Fatalf("seed+tail replay ended at epoch %d, live at %d", rb.Epoch(), live.Epoch())
	}
}

// TestIdleEpochsJournaled: ticks with an empty queue still fire the hook
// with op-free records, keeping the journal's epoch numbering gap-free.
func TestIdleEpochsJournaled(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	var recs []CommitRecord
	b.SetOnCommit(func(r CommitRecord) error { recs = append(recs, r); return nil })
	if _, err := b.Submit(Bid{Radius: 1, Values: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	b.Tick() // epoch 1: the submit
	b.Tick() // epoch 2: idle
	b.Tick() // epoch 3: idle
	if len(recs) != 3 {
		t.Fatalf("%d records for 3 ticks", len(recs))
	}
	for i, r := range recs {
		if r.Epoch != i+1 {
			t.Fatalf("record %d carries epoch %d", i, r.Epoch)
		}
	}
	if len(recs[0].Ops) != 1 || recs[0].Ops[0].Op != spectrum.OpSubmit || recs[0].Ops[0].ID != 1 {
		t.Fatalf("submit epoch journaled as %+v", recs[0].Ops)
	}
	if recs[1].Ops != nil || recs[2].Ops != nil {
		t.Fatal("idle epochs journaled with ops")
	}
	rb := newTestBroker(t, Config{K: 2})
	for _, r := range recs {
		if err := rb.ReplayEpoch(r.Epoch, r.NextID, r.Ops); err != nil {
			t.Fatal(err)
		}
	}
	if rb.Epoch() != 3 {
		t.Fatalf("idle replay ended at epoch %d", rb.Epoch())
	}
}

// TestCancelledQueuedSubmitPinsNextID: a submit cancelled while still queued
// never appears in any commit record, but the id it consumed is covered by
// the record's NextID high-water mark, so replay re-issues later ids
// identically.
func TestCancelledQueuedSubmitPinsNextID(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	var recs []CommitRecord
	b.SetOnCommit(func(r CommitRecord) error { recs = append(recs, r); return nil })
	id1, err := b.Submit(Bid{Radius: 1, Values: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Withdraw(id1); err != nil { // cancelled while queued
		t.Fatal(err)
	}
	b.Tick()
	id2, err := b.Submit(Bid{Radius: 1, Values: []float64{2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id1+1 {
		t.Fatalf("second submit got id %d after cancelled id %d", id2, id1)
	}
	b.Tick()
	// The cancelled submit is dropped from the record; its withdraw stays
	// (a harmless no-op on replay, since the bidder never arrived).
	if len(recs[0].Ops) != 1 || recs[0].Ops[0].Op != spectrum.OpWithdraw {
		t.Fatalf("cancelled submit journaled: %+v", recs[0].Ops)
	}
	if recs[0].NextID != id1 {
		t.Fatalf("epoch 1 high-water %d, want %d", recs[0].NextID, id1)
	}

	rb := newTestBroker(t, Config{K: 2})
	for _, r := range recs {
		if err := rb.ReplayEpoch(r.Epoch, r.NextID, r.Ops); err != nil {
			t.Fatal(err)
		}
	}
	id3, err := rb.Submit(Bid{Radius: 1, Values: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id2+1 {
		t.Fatalf("replayed broker issued id %d next, live would issue %d", id3, id2+1)
	}
}

// TestReplayGuards: the replay entry points refuse sequence gaps, reused
// brokers, malformed seeds, and malformed ops.
func TestReplayGuards(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	if err := b.ReplayEpoch(2, 1, nil); err == nil {
		t.Fatal("epoch-gap replay accepted")
	}
	if err := b.ReplayEpoch(1, 1, []spectrum.Op{{Op: spectrum.OpSubmit}}); err == nil {
		t.Fatal("submit without an id accepted")
	}
	if err := b.ReplayEpoch(1, 1, []spectrum.Op{{Op: "explode", ID: 1}}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if b.Epoch() != 0 {
		t.Fatalf("failed replays advanced the epoch to %d", b.Epoch())
	}

	used := newTestBroker(t, Config{K: 2})
	if _, err := used.Submit(Bid{Radius: 1, Values: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	used.Tick()
	if err := used.ReplaySeed(3, 5, nil); err == nil {
		t.Fatal("seed replay into a used broker accepted")
	}

	if err := newTestBroker(t, Config{K: 2}).ReplaySeed(2, 5, []SeedBidder{
		{ID: 2, Bid: Bid{Radius: 1, Values: []float64{1, 2}}},
		{ID: 2, Bid: Bid{Radius: 1, Values: []float64{1, 2}}},
	}); err == nil {
		t.Fatal("non-ascending seed ids accepted")
	}
	if err := newTestBroker(t, Config{K: 2}).ReplaySeed(0, 0, []SeedBidder{
		{ID: 1, Bid: Bid{Radius: 1, Values: []float64{1, 2}}},
	}); err == nil {
		t.Fatal("epoch-0 seed with bidders accepted")
	}
	if err := newTestBroker(t, Config{K: 2}).ReplaySeed(0, 0, nil); err != nil {
		t.Fatalf("empty epoch-0 seed refused: %v", err)
	}
}

// TestCommitHookErrorsCounted: a failing hook never blocks the tick; the
// misses are surfaced in Metrics and the hook detaches cleanly.
func TestCommitHookErrorsCounted(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	hookErr := errors.New("disk on fire")
	b.SetOnCommit(func(CommitRecord) error { return hookErr })
	if rep := b.Tick(); rep.Epoch != 1 {
		t.Fatalf("tick under a failing hook: %+v", rep)
	}
	b.Tick()
	if m := b.Metrics(); m.JournalErrors != 2 {
		t.Fatalf("JournalErrors = %d, want 2", m.JournalErrors)
	}
	b.SetOnCommit(nil)
	if b.Durable() {
		t.Fatal("detached broker still durable")
	}
	b.Tick()
	if m := b.Metrics(); m.JournalErrors != 2 {
		t.Fatalf("detached hook still counting: %d", m.JournalErrors)
	}
}
