package broker

import (
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"
)

// stalledSubscriber is a fake SSE peer whose reads have wedged: every event
// write blocks until the test releases it, then fails with
// os.ErrDeadlineExceeded — exactly what a net/http ResponseWriter returns
// when a write deadline expires against a peer that stopped draining its
// socket. Simulating the kernel's timeout keeps the test fast and
// deterministic; the contract under test is the broker's reaction, not the
// kernel's timer.
type stalledSubscriber struct {
	release chan struct{}

	mu       sync.Mutex
	header   http.Header
	status   int
	deadline time.Time
	writes   int
	flushes  int
}

func newStalledSubscriber() *stalledSubscriber {
	return &stalledSubscriber{release: make(chan struct{}), header: make(http.Header)}
}

func (s *stalledSubscriber) Header() http.Header { return s.header }

func (s *stalledSubscriber) WriteHeader(code int) {
	s.mu.Lock()
	s.status = code
	s.mu.Unlock()
}

// Flush implements http.Flusher (the SSE upgrade requires it).
func (s *stalledSubscriber) Flush() {
	s.mu.Lock()
	s.flushes++
	s.mu.Unlock()
}

// SetWriteDeadline is discovered by http.NewResponseController via interface
// upgrade; recording it proves the handler armed a per-event deadline.
func (s *stalledSubscriber) SetWriteDeadline(t time.Time) error {
	s.mu.Lock()
	s.deadline = t
	s.mu.Unlock()
	return nil
}

func (s *stalledSubscriber) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.writes++
	s.mu.Unlock()
	<-s.release
	return 0, os.ErrDeadlineExceeded
}

// TestSSEStalledSubscriberDropped: a subscriber that stops draining its
// stream is severed and counted, and while it is wedged mid-write the broker
// keeps ticking freely — commits coalesce into the bounded buffer instead of
// backing up into Tick. Run under -race in CI.
func TestSSEStalledSubscriberDropped(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	h := NewHandler(b)
	sw := newStalledSubscriber()
	req := httptest.NewRequest(http.MethodGet, "/v1/watch?since=0&stream=sse", nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(sw, req)
	}()

	// First commit releases the producer; its event write wedges in the
	// fake's Write.
	if _, err := b.Submit(Bid{Radius: 2, Values: []float64{3, 4}}); err != nil {
		t.Fatal(err)
	}
	b.Tick()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sw.mu.Lock()
		writes := sw.writes
		sw.mu.Unlock()
		if writes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber write never started")
		}
		time.Sleep(time.Millisecond)
	}
	sw.mu.Lock()
	if sw.deadline.IsZero() {
		sw.mu.Unlock()
		t.Fatal("handler did not arm a write deadline before the event write")
	}
	sw.mu.Unlock()

	// The subscriber is now stalled mid-write. The broker must keep
	// committing — more than sseBuffer epochs, so the per-subscriber buffer
	// overflows and sheds oldest-first rather than growing.
	for i := 0; i < sseBuffer*2; i++ {
		b.Tick()
	}

	// Kernel "times out" the wedged write: the broker must drop and count.
	close(sw.release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after the subscriber write timed out")
	}
	if got := b.Metrics().DroppedSubscribers; got != 1 {
		t.Fatalf("DroppedSubscribers = %d, want 1", got)
	}
}

// TestSSEDisconnectNotCountedAsDrop: an ordinary client disconnect (write
// error that is not a deadline expiry) ends the stream without inflating the
// dropped-subscriber count — the metric means "too slow", not "went away".
func TestSSEDisconnectNotCountedAsDrop(t *testing.T) {
	b := newTestBroker(t, Config{K: 1})
	h := NewHandler(b)
	sw := newStalledSubscriber()
	req := httptest.NewRequest(http.MethodGet, "/v1/watch?since=0&stream=sse", nil)
	close(sw.release) // writes fail immediately...
	// ...but with a plain error, not a deadline expiry.
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(&brokenPipeWriter{sw}, req)
	}()
	b.Tick()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after the write error")
	}
	if got := b.Metrics().DroppedSubscribers; got != 0 {
		t.Fatalf("DroppedSubscribers = %d, want 0 for a plain disconnect", got)
	}
}

// brokenPipeWriter fails writes with a non-deadline error.
type brokenPipeWriter struct{ *stalledSubscriber }

func (w *brokenPipeWriter) Write(p []byte) (int, error) { return 0, os.ErrClosed }
