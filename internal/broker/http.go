package broker

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/serialize"
	"repro/internal/valuation"
)

// The HTTP/JSON API:
//
//	POST   /v1/bids        submit a bid            → 202 {id, status, epoch}
//	GET    /v1/bids/{id}   bid status + grant      → 200 {id, status, channels, value, price}
//	PUT    /v1/bids/{id}   update channel values   → 202 {id, status, epoch}
//	DELETE /v1/bids/{id}   withdraw                → 202 {id, status, epoch}
//	GET    /v1/allocation  committed allocation    → 200 {epoch, welfare, winners}
//	GET    /v1/prices      Lavi–Swamy payments     → 200 {epoch, prices} (404 unless -prices)
//	GET    /v1/snapshot    market as an instance   → 200 {epoch, ids, instance}
//	GET    /v1/metrics     lifetime metrics        → 200 Metrics
//	GET    /healthz        liveness                → 200 {status, epoch}
//
// Mutations are queued and take effect at the next epoch tick; the epoch in
// a 202 response is the epoch the mutation will be visible after.

// Handler serves the broker API.
type Handler struct {
	b   *Broker
	mux *http.ServeMux
}

// NewHandler wraps the broker in its HTTP API.
func NewHandler(b *Broker) *Handler {
	h := &Handler{b: b, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/bids", h.bids)
	h.mux.HandleFunc("/v1/bids/", h.bidByID)
	h.mux.HandleFunc("/v1/allocation", h.allocation)
	h.mux.HandleFunc("/v1/prices", h.prices)
	h.mux.HandleFunc("/v1/snapshot", h.snapshot)
	h.mux.HandleFunc("/v1/metrics", h.metrics)
	h.mux.HandleFunc("/healthz", h.healthz)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// maxBodyBytes bounds a mutation request body.
const maxBodyBytes = 1 << 20

// decodeBody strictly decodes one JSON value from the request body: unknown
// fields are rejected, a body over maxBodyBytes maps to 413 (not a generic
// 400 — the client must know shrinking, not fixing, the payload is the cure),
// and trailing tokens after the value are rejected (a concatenated or
// smuggled second document must not be silently accepted). Returns the HTTP
// status to respond with on failure, 0 on success.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return decodeErr(err, fmt.Errorf("bad json: %v", err))
	}
	if _, err := dec.Token(); err != io.EOF {
		return decodeErr(err, fmt.Errorf("trailing data after JSON body"))
	}
	return 0, nil
}

// decodeErr maps a body-read failure to its HTTP status: over-limit bodies
// (which can surface from either the decode or the trailing-token read) are
// 413, anything else is the given 400-class error.
func decodeErr(err error, bad error) (int, error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body over %d bytes", mbe.Limit)
	}
	return http.StatusBadRequest, bad
}

// codeFor maps broker errors to HTTP statuses.
func codeFor(err error) int {
	switch {
	case errors.Is(err, ErrFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknown):
		return http.StatusNotFound
	case errors.Is(err, ErrBadBid):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// mutationAccepted is the 202 body of every queued mutation.
type mutationAccepted struct {
	ID BidderID `json:"id"`
	// Status is the bidder's state right now (pending until the tick).
	Status Status `json:"status"`
	// Epoch is the last completed epoch; the mutation lands in epoch+1.
	Epoch int `json:"epoch"`
}

func (h *Handler) bids(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var bid Bid
	if code, err := decodeBody(w, r, &bid); code != 0 {
		writeErr(w, code, err)
		return
	}
	id, err := h.b.Submit(bid)
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, mutationAccepted{ID: id, Status: h.b.StatusOf(id), Epoch: h.b.Epoch()})
}

// bidState is the GET /v1/bids/{id} body.
type bidState struct {
	ID       BidderID `json:"id"`
	Status   Status   `json:"status"`
	Channels []int    `json:"channels"`
	Value    float64  `json:"value"`
	Price    float64  `json:"price,omitempty"`
	Epoch    int      `json:"epoch"`
}

func (h *Handler) bidByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/bids/")
	id64, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad bidder id %q", rest))
		return
	}
	id := BidderID(id64)
	switch r.Method {
	case http.MethodGet:
		state, known := h.b.bidView(id)
		if !known {
			writeErr(w, http.StatusNotFound, ErrUnknown)
			return
		}
		writeJSON(w, http.StatusOK, state)
	case http.MethodPut, http.MethodPatch:
		// The body is the valuation's wire form: {"values": [...]} for
		// additive, {"xor": [{"channels": [...], "value": v}, ...]} for XOR.
		var body Values
		if code, err := decodeBody(w, r, &body); code != 0 {
			writeErr(w, code, err)
			return
		}
		if err := h.b.Update(id, body); err != nil {
			writeErr(w, codeFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, mutationAccepted{ID: id, Status: h.b.StatusOf(id), Epoch: h.b.Epoch()})
	case http.MethodDelete:
		if err := h.b.Withdraw(id); err != nil {
			writeErr(w, codeFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, mutationAccepted{ID: id, Status: StatusGone, Epoch: h.b.Epoch()})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET, PUT, or DELETE"))
	}
}

// bidView assembles the GET /v1/bids/{id} response. The committed fields —
// status active, channels, value, price, epoch — are read under one
// mu.RLock, so they always describe the same committed epoch even while a
// tick commits concurrently; the queue is consulted first, mirroring
// StatusOf's ordering, so a freshly submitted bid never reads as gone.
// known is false only for ids the broker never issued.
func (b *Broker) bidView(id BidderID) (bidState, bool) {
	state := bidState{ID: id, Channels: []int{}}
	b.qmu.Lock()
	unknown := id <= 0 || id > b.nextID
	queued, cancelled := b.queuedSub[id], b.retired[id]
	b.qmu.Unlock()
	if unknown {
		state.Status = StatusUnknown
		return state, false
	}
	b.mu.RLock()
	state.Epoch = b.epoch
	if b.snap != nil {
		if i, ok := b.snap.idx[id]; ok {
			state.Status = StatusActive
			if t := b.alloc[id]; t != valuation.Empty {
				state.Channels = t.Channels()
				state.Value = b.snap.vals[i].Value(t)
			}
			state.Price = b.prices[id]
			b.mu.RUnlock()
			return state, true
		}
	}
	_, applied := b.bidders[id]
	b.mu.RUnlock()
	switch {
	case queued && !cancelled, applied:
		state.Status = StatusPending
	default:
		state.Status = StatusGone
	}
	return state, true
}

// winner is one allocation row.
type winner struct {
	ID       BidderID `json:"id"`
	Channels []int    `json:"channels"`
	Value    float64  `json:"value"`
}

func (h *Handler) allocation(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	h.b.mu.RLock()
	epoch := h.b.epoch
	welfare := h.b.metrics.Last.Welfare
	winners := make([]winner, 0, len(h.b.alloc))
	for id, tb := range h.b.alloc {
		if tb == valuation.Empty {
			continue
		}
		// Values come from the committed snapshot's valuation profile, so
		// welfare always equals the sum of the served winner values even
		// while the next epoch's mutations are being applied.
		val := 0.0
		if s := h.b.snap; s != nil {
			if i, ok := s.idx[id]; ok {
				val = s.vals[i].Value(tb)
			}
		}
		winners = append(winners, winner{ID: id, Channels: tb.Channels(), Value: val})
	}
	h.b.mu.RUnlock()
	sort.Slice(winners, func(i, j int) bool { return winners[i].ID < winners[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":   epoch,
		"welfare": welfare,
		"winners": winners,
	})
}

func (h *Handler) prices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	if !h.b.cfg.Prices {
		writeErr(w, http.StatusNotFound, fmt.Errorf("prices disabled; start the broker with pricing enabled"))
		return
	}
	h.b.mu.RLock()
	epoch := h.b.epoch
	prices := make(map[string]float64, len(h.b.prices))
	for id, p := range h.b.prices {
		prices[strconv.FormatInt(int64(id), 10)] = p
	}
	h.b.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "prices": prices})
}

// snapshotBody wraps the serialized instance with its id mapping.
type snapshotBody struct {
	Epoch int             `json:"epoch"`
	IDs   []BidderID      `json:"ids"`
	File  *serialize.File `json:"instance"`
}

func (h *Handler) snapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	in, ids, epoch, err := h.b.Snapshot()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	f, err := serialize.Encode(in)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if ids == nil {
		ids = []BidderID{}
	}
	writeJSON(w, http.StatusOK, snapshotBody{Epoch: epoch, IDs: ids, File: f})
}

func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, h.b.Metrics())
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": h.b.Epoch()})
}
