package broker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/serialize"
	"repro/internal/valuation"
	"repro/pkg/spectrum"
)

// The versioned HTTP/JSON API (wire types in pkg/spectrum; the typed client
// is spectrum.Client):
//
//	POST   /v1/bids           submit a bid              → 202 Accepted
//	GET    /v1/bids/{id}      bid status + grant        → 200 BidState
//	PUT    /v1/bids/{id}      update channel values     → 202 Accepted
//	POST   /v1/bids/{id}/move relocate geometry         → 202 Accepted
//	DELETE /v1/bids/{id}      withdraw                  → 202 Accepted
//	POST   /v1/batch          ordered mutation batch    → 200 BatchResponse
//	GET    /v1/watch          epoch-commit long-poll    → 200 EpochReport | 204
//	GET    /v1/allocation     committed allocation      → 200 Allocation
//	GET    /v1/prices         Lavi–Swamy payments       → 200 Prices (404 unless -prices)
//	GET    /v1/snapshot       market as an instance     → 200 {epoch, ids, instance}
//	GET    /v1/metrics        lifetime metrics          → 200 Metrics
//	GET    /healthz           liveness + durability     → 200 Health
//
// Every /v1 route is additionally served under its legacy unversioned path
// (/bids, /allocation, …) as a thin alias, so pre-/v1 clients keep working.
//
// Mutations are queued and take effect at the next epoch tick; the epoch in
// a 202 response is the epoch the mutation will be visible after. A batch
// enqueues its accepted ops in list order under one lock acquisition and
// reports per-item results (an invalid item does not abort the rest);
// /v1/watch?since=N blocks until an epoch > N commits (&stream=sse upgrades
// to a server-sent-event stream of every subsequent commit).

// Handler serves the broker API.
type Handler struct {
	b   *Broker
	mux *http.ServeMux
	// journalStats, when set, is merged into /v1/metrics under "journal".
	journalStats func() any
}

// HandlerOption configures a Handler.
type HandlerOption func(*Handler)

// WithJournalMetrics attaches the durability layer's counters: fn's result
// is served under the "journal" key of /v1/metrics.
func WithJournalMetrics(fn func() any) HandlerOption {
	return func(h *Handler) { h.journalStats = fn }
}

// NewHandler wraps the broker in its HTTP API.
func NewHandler(b *Broker, opts ...HandlerOption) *Handler {
	h := &Handler{b: b, mux: http.NewServeMux()}
	for _, o := range opts {
		o(h)
	}
	for _, prefix := range []string{"/v1", ""} {
		h.mux.HandleFunc(prefix+"/bids", methods(map[string]http.HandlerFunc{
			http.MethodPost: h.submit,
		}))
		h.mux.HandleFunc(prefix+"/bids/", h.bidByID)
		h.mux.HandleFunc(prefix+"/batch", methods(map[string]http.HandlerFunc{
			http.MethodPost: h.batch,
		}))
		h.mux.HandleFunc(prefix+"/watch", methods(map[string]http.HandlerFunc{
			http.MethodGet: h.watch,
		}))
		h.mux.HandleFunc(prefix+"/allocation", methods(map[string]http.HandlerFunc{
			http.MethodGet: h.allocation,
		}))
		h.mux.HandleFunc(prefix+"/prices", methods(map[string]http.HandlerFunc{
			http.MethodGet: h.prices,
		}))
		h.mux.HandleFunc(prefix+"/snapshot", methods(map[string]http.HandlerFunc{
			http.MethodGet: h.snapshot,
		}))
		h.mux.HandleFunc(prefix+"/metrics", methods(map[string]http.HandlerFunc{
			http.MethodGet: h.metrics,
		}))
	}
	h.mux.HandleFunc("/healthz", methods(map[string]http.HandlerFunc{
		http.MethodGet: h.healthz,
	}))
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// methods dispatches by HTTP method and answers anything unsupported with
// the API's one structured 405: a JSON error body plus an Allow header. All
// routes share this helper, so method-not-allowed cannot fall through
// differently per endpoint.
func methods(m map[string]http.HandlerFunc) http.HandlerFunc {
	allow := make([]string, 0, len(m))
	for k := range m {
		allow = append(allow, k)
	}
	sort.Strings(allow)
	header := strings.Join(allow, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		if fn, ok := m[r.Method]; ok {
			fn(w, r)
			return
		}
		methodNotAllowed(w, r, header)
	}
}

func methodNotAllowed(w http.ResponseWriter, r *http.Request, allow string) {
	w.Header().Set("Allow", allow)
	writeErr(w, http.StatusMethodNotAllowed,
		fmt.Errorf("method %s not allowed; use %s", r.Method, allow))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// maxBodyBytes bounds a mutation request body.
const maxBodyBytes = 1 << 20

// maxBatchOps bounds one /v1/batch request's op list; beyond it the whole
// request is a 413 (shrink the batch, don't fix the syntax).
const maxBatchOps = 256

// decodeBody strictly decodes one JSON value from the request body: unknown
// fields are rejected, a body over maxBodyBytes maps to 413 (not a generic
// 400 — the client must know shrinking, not fixing, the payload is the cure),
// and trailing tokens after the value are rejected (a concatenated or
// smuggled second document must not be silently accepted). Returns the HTTP
// status to respond with on failure, 0 on success.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return decodeErr(err, fmt.Errorf("bad json: %v", err))
	}
	if _, err := dec.Token(); err != io.EOF {
		return decodeErr(err, fmt.Errorf("trailing data after JSON body"))
	}
	return 0, nil
}

// decodeErr maps a body-read failure to its HTTP status: over-limit bodies
// (which can surface from either the decode or the trailing-token read) are
// 413, anything else is the given 400-class error.
func decodeErr(err error, bad error) (int, error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body over %d bytes", mbe.Limit)
	}
	return http.StatusBadRequest, bad
}

// codeFor maps broker errors to HTTP statuses.
func codeFor(err error) int {
	switch {
	case errors.Is(err, ErrFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknown):
		return http.StatusNotFound
	case errors.Is(err, ErrBadBid):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (h *Handler) submit(w http.ResponseWriter, r *http.Request) {
	var bid Bid
	if code, err := decodeBody(w, r, &bid); code != 0 {
		writeErr(w, code, err)
		return
	}
	id, err := h.b.Submit(bid)
	if err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, spectrum.Accepted{ID: id, Status: h.b.StatusOf(id), Epoch: h.b.Epoch()})
}

func (h *Handler) batch(w http.ResponseWriter, r *http.Request) {
	var req spectrum.BatchRequest
	if code, err := decodeBody(w, r, &req); code != 0 {
		writeErr(w, code, err)
		return
	}
	if len(req.Ops) > maxBatchOps {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d ops (max %d)", len(req.Ops), maxBatchOps))
		return
	}
	results, epoch := h.b.Batch(req.Ops)
	if results == nil {
		results = []spectrum.OpResult{}
	}
	writeJSON(w, http.StatusOK, spectrum.BatchResponse{Epoch: epoch, Results: results})
}

// maxWatchTimeout caps a long-poll; clients re-poll with the epoch they
// last saw.
const maxWatchTimeout = 2 * time.Minute

func (h *Handler) watch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since := h.b.Epoch()
	if s := q.Get("since"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since %q", s))
			return
		}
		since = n
	}
	if q.Get("stream") == "sse" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		h.watchSSE(w, r, since)
		return
	}
	timeout := 30 * time.Second
	if s := q.Get("timeout"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q", s))
			return
		}
		timeout = d
	}
	if timeout > maxWatchTimeout {
		timeout = maxWatchTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	rep, err := h.b.WaitEpoch(ctx, since)
	if err != nil {
		// No epoch within the window (or the client went away): 204 tells
		// the long-poller to simply poll again.
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// subscriberWriteTimeout bounds how long one SSE event write may block on a
// slow subscriber before the broker severs the stream. A stalled reader must
// never be able to wedge a broker goroutine indefinitely.
const subscriberWriteTimeout = 10 * time.Second

// sseBuffer bounds commits queued per subscriber between writes; when it
// overflows, the oldest pending report is discarded so a lagging subscriber
// skips forward instead of growing the broker's memory.
const sseBuffer = 8

// watchSSE streams every epoch commit after since as a server-sent event
// until the client disconnects. A producer goroutine long-polls WaitEpoch
// and feeds a bounded per-subscriber buffer (commits that land while an
// event is being written coalesce; overflow drops the oldest); the writer
// drains it under a per-event write deadline. A subscriber that cannot
// absorb an event within subscriberWriteTimeout is dropped and counted in
// Metrics.DroppedSubscribers — slowness is the subscriber's problem, never
// the broker's.
func (h *Handler) watchSSE(w http.ResponseWriter, r *http.Request, since int) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	events := make(chan spectrum.EpochReport, sseBuffer)
	go func() {
		defer close(events)
		last := since
		for {
			rep, err := h.b.WaitEpoch(ctx, last)
			if err != nil {
				return
			}
			last = rep.Epoch
			select {
			case events <- rep:
			default:
				// Buffer full: shed the oldest pending report so the
				// subscriber resumes at the freshest state it can get.
				select {
				case <-events:
				default:
				}
				select {
				case events <- rep:
				default:
				}
			}
		}
	}()

	for rep := range events {
		data, err := json.Marshal(rep)
		if err != nil {
			return
		}
		// Best effort: not every ResponseWriter supports deadlines (e.g.
		// recorders in tests); without one a dead peer is still bounded by
		// the server's global WriteTimeout, if configured.
		_ = rc.SetWriteDeadline(time.Now().Add(subscriberWriteTimeout))
		_, werr := fmt.Fprintf(w, "event: epoch\ndata: %s\n\n", data)
		if werr == nil {
			werr = rc.Flush()
		}
		if werr != nil {
			if errors.Is(werr, os.ErrDeadlineExceeded) {
				h.b.droppedSubs.Add(1)
			}
			return
		}
		_ = rc.SetWriteDeadline(time.Time{})
	}
}

func (h *Handler) bidByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1")
	rest = strings.TrimPrefix(rest, "/bids/")
	idStr, sub, _ := strings.Cut(rest, "/")
	id64, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad bidder id %q", idStr))
		return
	}
	id := BidderID(id64)
	switch sub {
	case "":
		h.bidResource(w, r, id)
	case "move":
		if r.Method != http.MethodPost {
			methodNotAllowed(w, r, http.MethodPost)
			return
		}
		h.move(w, r, id)
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown bid subresource %q", sub))
	}
}

func (h *Handler) bidResource(w http.ResponseWriter, r *http.Request, id BidderID) {
	switch r.Method {
	case http.MethodGet:
		state, known := h.b.bidView(id)
		if !known {
			writeErr(w, http.StatusNotFound, ErrUnknown)
			return
		}
		writeJSON(w, http.StatusOK, state)
	case http.MethodPut, http.MethodPatch:
		// The body is the valuation's wire form: {"values": [...]} for
		// additive, {"xor": [{"channels": [...], "value": v}, ...]} for XOR.
		var body Values
		if code, err := decodeBody(w, r, &body); code != 0 {
			writeErr(w, code, err)
			return
		}
		if err := h.b.Update(id, body); err != nil {
			writeErr(w, codeFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, spectrum.Accepted{ID: id, Status: h.b.StatusOf(id), Epoch: h.b.Epoch()})
	case http.MethodDelete:
		if err := h.b.Withdraw(id); err != nil {
			writeErr(w, codeFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, spectrum.Accepted{ID: id, Status: StatusGone, Epoch: h.b.Epoch()})
	default:
		methodNotAllowed(w, r, "DELETE, GET, PATCH, PUT")
	}
}

// move serves POST /v1/bids/{id}/move: the body is a bid carrying the new
// model-specific geometry and no values.
func (h *Handler) move(w http.ResponseWriter, r *http.Request, id BidderID) {
	var bid Bid
	if code, err := decodeBody(w, r, &bid); code != 0 {
		writeErr(w, code, err)
		return
	}
	if err := h.b.Move(id, bid); err != nil {
		writeErr(w, codeFor(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, spectrum.Accepted{ID: id, Status: h.b.StatusOf(id), Epoch: h.b.Epoch()})
}

// bidView assembles the GET /v1/bids/{id} response. The committed fields —
// status active, channels, value, price, epoch — are read under one
// mu.RLock, so they always describe the same committed epoch even while a
// tick commits concurrently; the queue is consulted first, mirroring
// StatusOf's ordering, so a freshly submitted bid never reads as gone.
// known is false only for ids the broker never issued.
func (b *Broker) bidView(id BidderID) (spectrum.BidState, bool) {
	state := spectrum.BidState{ID: id, Channels: []int{}}
	b.qmu.Lock()
	unknown := id <= 0 || id > b.nextID
	queued, cancelled := b.queuedSub[id], b.retired[id]
	b.qmu.Unlock()
	if unknown {
		state.Status = StatusUnknown
		return state, false
	}
	b.mu.RLock()
	state.Epoch = b.epoch
	if b.snap != nil {
		if i, ok := b.snap.idx[id]; ok {
			state.Status = StatusActive
			if t := b.alloc[id]; t != valuation.Empty {
				state.Channels = t.Channels()
				state.Value = b.snap.vals[i].Value(t)
			}
			state.Price = b.prices[id]
			b.mu.RUnlock()
			return state, true
		}
	}
	_, applied := b.bidders[id]
	b.mu.RUnlock()
	switch {
	case queued && !cancelled, applied:
		state.Status = StatusPending
	default:
		state.Status = StatusGone
	}
	return state, true
}

func (h *Handler) allocation(w http.ResponseWriter, r *http.Request) {
	h.b.mu.RLock()
	epoch := h.b.epoch
	welfare := h.b.metrics.Last.Welfare
	winners := make([]spectrum.Winner, 0, len(h.b.alloc))
	for id, tb := range h.b.alloc {
		if tb == valuation.Empty {
			continue
		}
		// Values come from the committed snapshot's valuation profile, so
		// welfare always equals the sum of the served winner values even
		// while the next epoch's mutations are being applied.
		val := 0.0
		if s := h.b.snap; s != nil {
			if i, ok := s.idx[id]; ok {
				val = s.vals[i].Value(tb)
			}
		}
		winners = append(winners, spectrum.Winner{ID: id, Channels: tb.Channels(), Value: val})
	}
	h.b.mu.RUnlock()
	sort.Slice(winners, func(i, j int) bool { return winners[i].ID < winners[j].ID })
	writeJSON(w, http.StatusOK, spectrum.Allocation{
		Epoch:   epoch,
		Welfare: welfare,
		Winners: winners,
	})
}

func (h *Handler) prices(w http.ResponseWriter, r *http.Request) {
	if !h.b.cfg.Prices {
		writeErr(w, http.StatusNotFound, fmt.Errorf("prices disabled; start the broker with pricing enabled"))
		return
	}
	h.b.mu.RLock()
	epoch := h.b.epoch
	prices := make(map[string]float64, len(h.b.prices))
	for id, p := range h.b.prices {
		prices[strconv.FormatInt(int64(id), 10)] = p
	}
	h.b.mu.RUnlock()
	writeJSON(w, http.StatusOK, spectrum.Prices{Epoch: epoch, Prices: prices})
}

// snapshotBody wraps the serialized instance with its id mapping and, for a
// broker restored from a journal, the epoch recovery finished at.
type snapshotBody struct {
	Epoch          int             `json:"epoch"`
	IDs            []BidderID      `json:"ids"`
	File           *serialize.File `json:"instance"`
	Recovered      bool            `json:"recovered,omitempty"`
	RecoveredEpoch int             `json:"recovered_epoch,omitempty"`
}

func (h *Handler) snapshot(w http.ResponseWriter, r *http.Request) {
	in, ids, epoch, err := h.b.Snapshot()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	f, err := serialize.Encode(in)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	if ids == nil {
		ids = []BidderID{}
	}
	body := snapshotBody{Epoch: epoch, IDs: ids, File: f}
	body.RecoveredEpoch, body.Recovered = h.b.RecoveredEpoch()
	writeJSON(w, http.StatusOK, body)
}

func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	m := h.b.Metrics()
	if h.journalStats == nil {
		writeJSON(w, http.StatusOK, m)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Metrics
		Journal any `json:"journal"`
	}{m, h.journalStats()})
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	body := spectrum.Health{Status: "ok", Epoch: h.b.Epoch(), Durable: h.b.Durable()}
	body.RecoveredEpoch, body.Recovered = h.b.RecoveredEpoch()
	writeJSON(w, http.StatusOK, body)
}
