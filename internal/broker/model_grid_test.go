package broker

import (
	"math/rand"
	"testing"
)

// modelDelta is the delta parameter the model test-suite pins each link
// backend with (testModels uses the same values).
func modelDelta(name string) float64 {
	if name == "ieee80211" {
		return 0.5
	}
	return 1
}

// sameDelta compares two EdgeDeltas element-for-element (nil and empty are
// equal: both mean "no edges").
func sameDelta(a, b EdgeDelta) bool {
	if len(a.Added) != len(b.Added) || len(a.Removed) != len(b.Removed) {
		return false
	}
	for i := range a.Added {
		if a.Added[i] != b.Added[i] {
			return false
		}
	}
	for i := range a.Removed {
		if a.Removed[i] != b.Removed[i] {
			return false
		}
	}
	return true
}

// driveGridVsLinear runs the same mutation sequence through the indexed and
// the linear backend and pins every single EdgeDelta byte-for-byte: same
// edges, same element order.
func driveGridVsLinear(t *testing.T, name string, seed int64, steps, minLive int, area float64) {
	t.Helper()
	gm, err := ModelByName(name, modelDelta(name))
	if err != nil {
		t.Fatal(err)
	}
	lm, err := LinearModelByName(name, modelDelta(name))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	live := map[BidderID]Bid{}
	var next BidderID
	scale := area / 40 // randBid draws from a 40×40 square
	draw := func() Bid {
		bid := randBid(rng, name)
		bid.Pos.X *= scale
		bid.Pos.Y *= scale
		if bid.Link != nil {
			// Translate the link (its length stays in randBid's range, the
			// density is what the area controls).
			dx, dy := bid.Link.Sender.X*(scale-1), bid.Link.Sender.Y*(scale-1)
			bid.Link.Sender.X += dx
			bid.Link.Sender.Y += dy
			bid.Link.Receiver.X += dx
			bid.Link.Receiver.Y += dy
		}
		return bid
	}
	for step := 0; step < steps; step++ {
		var dg, dl EdgeDelta
		var op string
		switch k := rng.Intn(3); {
		case k == 0 || len(live) < minLive:
			next++
			bid := draw()
			live[next] = bid
			op = "Arrive"
			dg = gm.Arrive(next, &bid)
			dl = lm.Arrive(next, &bid)
		case k == 1:
			id := randLive(rng, live)
			delete(live, id)
			op = "Depart"
			dg = gm.Depart(id)
			dl = lm.Depart(id)
		default:
			id := randLive(rng, live)
			bid := draw()
			live[id] = bid
			op = "Move"
			dg = gm.Move(id, &bid)
			dl = lm.Move(id, &bid)
		}
		if !sameDelta(dg, dl) {
			t.Fatalf("%s step %d (%s): grid delta diverged from linear\n grid:   %+v\n linear: %+v",
				name, step, op, dg, dl)
		}
	}
}

// TestGridModelMatchesLinear pins, for every backend geometry (disk radii
// mix, distance-2 witnesses, link endpoints), that the spatial-index
// candidate path produces byte-identical edge deltas to the brute-force
// linear scan under randomized arrive/depart/move churn — both dense (every
// bidder near every other) and sparse (grid actually prunes) regimes.
func TestGridModelMatchesLinear(t *testing.T) {
	for _, name := range ModelNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				driveGridVsLinear(t, name, seed, 250, 4, 40)  // dense
				driveGridVsLinear(t, name, seed, 250, 4, 400) // sparse
			}
		})
	}
}

// TestGridModel10kSpotCheck populates a constant-density 10k-bidder market
// and pins grid==linear deltas through a churn tail — the scale tier the
// benchmarks measure, spot-checked for correctness. Disk only: the linear
// oracle costs O(n log n) per mutation, so running every backend at 10k
// would dominate the suite, and the other geometries are already pinned at
// depth by TestGridModelMatchesLinear's dense and sparse churn.
func TestGridModel10kSpotCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-bidder equivalence spot-check skipped in -short mode")
	}
	// ~2000 area units per bidder keeps local density constant at scale;
	// 10000 prepopulating arrivals then 200 compared churn steps over the
	// full population.
	const n = 10000
	driveGridVsLinear(t, "disk", 7, n+200, n, 4470)
}
