package broker

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/models"
)

// ConflictModel is a pluggable interference backend for the live market: it
// owns the geometry of the active bidders and maintains their conflict graph
// incrementally as bidders arrive, depart, and move. Implementations mirror
// the batch constructors of internal/models — the maintained graph and the
// certifying ordering must equal, edge for edge and rank for rank, what the
// corresponding constructor builds from scratch on the same bidder set (the
// model pinning tests enforce this).
//
// The contract the broker's warm-start machinery relies on:
//
//   - Arrive/Depart/Move return the exact edge delta among live bidders.
//     Edges incident to a departing bidder are implied and not reported;
//     every other created or destroyed edge must be. Distance-2 models make
//     this non-trivial: an arrival can create edges between two existing
//     bidders (it bridges them) and a departure can destroy them (it was
//     their only witness).
//   - Key is the certifying-ordering sort key: sorting live bidders by
//     ascending Key, breaking ties by id order, yields the ordering that
//     certifies RhoBound, and any subset sorted the same way inherits the
//     certificate (the per-component sub-instances depend on this).
//   - Validate and Key are pure functions of the bid and safe for concurrent
//     use (they run on the submission path, outside the broker's locks).
//     Arrive, Depart, and Move are serialized by the broker's epoch tick.
//
// A ConflictModel instance is owned by exactly one Broker; do not share one
// across brokers.
type ConflictModel interface {
	// Name is the canonical model name (matches internal/models).
	Name() string
	// RhoBound is the inductive independence bound the ordering certifies.
	RhoBound() float64
	// Validate vets a submission's geometry for this model.
	Validate(bid *Bid) error
	// Key is the certifying-ordering sort key of a bid's geometry.
	Key(bid *Bid) float64
	// Arrive registers a bidder and returns the conflict edges it creates.
	Arrive(id BidderID, bid *Bid) EdgeDelta
	// Depart unregisters a bidder and returns the edges destroyed between
	// the remaining bidders (edges incident to id are implied).
	Depart(id BidderID) EdgeDelta
	// Move replaces a registered bidder's geometry and returns the full edge
	// delta, including edges gained and lost by the moved bidder itself.
	Move(id BidderID, bid *Bid) EdgeDelta
}

// EdgeDelta is the incremental outcome of one mutation: conflict edges that
// came into and went out of existence among live bidders.
type EdgeDelta struct {
	Added   [][2]BidderID
	Removed [][2]BidderID
}

// geomBid is the geometry a model keeps per bidder (the model never reads
// valuations).
type geomBid struct {
	pos    geom.Point
	radius float64
	link   geom.Link
}

func toGeom(bid *Bid) geomBid {
	g := geomBid{pos: bid.Pos, radius: bid.Radius}
	if bid.Link != nil {
		g.link = *bid.Link
	}
	return g
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func finitePoint(p geom.Point) bool { return finite(p.X) && finite(p.Y) }

// validateDiskGeometry vets transmitter-disk geometry (disk and distance-2
// models).
func validateDiskGeometry(bid *Bid) error {
	if bid.Link != nil {
		return fmt.Errorf("%w: link geometry on a transmitter-disk model", ErrBadBid)
	}
	if !(bid.Radius > 0) || !finite(bid.Radius) {
		return fmt.Errorf("%w: bad radius %g", ErrBadBid, bid.Radius)
	}
	if !finitePoint(bid.Pos) {
		return fmt.Errorf("%w: non-finite position", ErrBadBid)
	}
	return nil
}

// validateLinkGeometry vets sender→receiver link geometry (protocol and
// IEEE 802.11 models).
func validateLinkGeometry(bid *Bid) error {
	if bid.Link == nil {
		return fmt.Errorf("%w: link model needs link geometry", ErrBadBid)
	}
	if bid.Radius != 0 {
		return fmt.Errorf("%w: disk radius on a link model", ErrBadBid)
	}
	if !finitePoint(bid.Link.Sender) || !finitePoint(bid.Link.Receiver) {
		return fmt.Errorf("%w: non-finite link endpoint", ErrBadBid)
	}
	if l := bid.Link.Length(); !(l > 0) || !finite(l) {
		return fmt.Errorf("%w: bad link length %g", ErrBadBid, bid.Link.Length())
	}
	return nil
}

// pairwise implements the models whose conflicts are a predicate over bidder
// pairs (disk, protocol, IEEE 802.11): an arrival adds exactly its own edges,
// a departure removes exactly its own, so the deltas are trivial.
type pairwise struct {
	name     string
	rho      float64
	validate func(*Bid) error
	key      func(geomBid) float64
	conflict func(a, b geomBid) bool
	bids     map[BidderID]geomBid
}

func (m *pairwise) Name() string            { return m.name }
func (m *pairwise) RhoBound() float64       { return m.rho }
func (m *pairwise) Validate(bid *Bid) error { return m.validate(bid) }
func (m *pairwise) Key(bid *Bid) float64    { return m.key(toGeom(bid)) }

// others returns the live bidder ids (excluding id) ascending — like
// distance2's diskNbrs/sortedBase, this keeps every delta's element order
// deterministic across runs even though m.bids is a map.
func (m *pairwise) others(id BidderID) []BidderID {
	out := make([]BidderID, 0, len(m.bids))
	for oid := range m.bids {
		if oid != id {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *pairwise) Arrive(id BidderID, bid *Bid) EdgeDelta {
	g := toGeom(bid)
	var d EdgeDelta
	for _, oid := range m.others(id) {
		if m.conflict(g, m.bids[oid]) {
			d.Added = append(d.Added, [2]BidderID{id, oid})
		}
	}
	m.bids[id] = g
	return d
}

func (m *pairwise) Depart(id BidderID) EdgeDelta {
	delete(m.bids, id)
	return EdgeDelta{}
}

func (m *pairwise) Move(id BidderID, bid *Bid) EdgeDelta {
	old, ok := m.bids[id]
	if !ok {
		return m.Arrive(id, bid)
	}
	g := toGeom(bid)
	var d EdgeDelta
	for _, oid := range m.others(id) {
		og := m.bids[oid]
		had, has := m.conflict(old, og), m.conflict(g, og)
		switch {
		case has && !had:
			d.Added = append(d.Added, [2]BidderID{id, oid})
		case had && !has:
			d.Removed = append(d.Removed, [2]BidderID{id, oid})
		}
	}
	m.bids[id] = g
	return d
}

// DiskModel is the disk conflict model of Proposition 9: bidders are
// transmitters with interference disks, conflicting iff the disks intersect.
// The default backend; matches models.Disk.
func DiskModel() ConflictModel {
	return &pairwise{
		name:     "disk",
		rho:      models.DiskRho,
		validate: validateDiskGeometry,
		key:      func(g geomBid) float64 { return -g.radius },
		conflict: func(a, b geomBid) bool {
			return models.DisksConflict(a.pos, b.pos, a.radius, b.radius)
		},
		bids: make(map[BidderID]geomBid),
	}
}

// ProtocolModel is the protocol interference model of Proposition 13 with
// parameter delta > 0: bidders are sender→receiver links, conflicting if
// either sender disturbs the other's receiver. Matches models.Protocol.
func ProtocolModel(delta float64) (ConflictModel, error) {
	if !(delta > 0) || !finite(delta) {
		return nil, fmt.Errorf("broker: protocol model needs delta > 0, got %g", delta)
	}
	return &pairwise{
		name:     "protocol",
		rho:      models.ProtocolRhoBound(delta),
		validate: validateLinkGeometry,
		key:      func(g geomBid) float64 { return g.link.Length() },
		conflict: func(a, b geomBid) bool {
			return models.ProtocolConflicts(a.link, b.link, delta)
		},
		bids: make(map[BidderID]geomBid),
	}, nil
}

// IEEE80211Model is the bidirectional protocol model (Alicherry et al.) with
// parameter delta > 0. Matches models.IEEE80211.
func IEEE80211Model(delta float64) (ConflictModel, error) {
	if !(delta > 0) || !finite(delta) {
		return nil, fmt.Errorf("broker: ieee802.11 model needs delta > 0, got %g", delta)
	}
	return &pairwise{
		name:     "ieee802.11",
		rho:      models.IEEE80211Rho,
		validate: validateLinkGeometry,
		key:      func(g geomBid) float64 { return g.link.Length() },
		conflict: func(a, b geomBid) bool {
			return models.IEEE80211Conflicts(a.link, b.link, delta)
		},
		bids: make(map[BidderID]geomBid),
	}, nil
}

// pairKey orders an unordered bidder pair.
type pairKey struct{ a, b BidderID }

func pk(a, b BidderID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// distance2 implements the distance-2 coloring model on disk graphs
// (Proposition 11): bidders conflict if they are within two hops in the disk
// graph — so conflicts are not pairwise-decomposable, and the model tracks,
// per conflicting pair, the number of witnesses sustaining the edge (1 for a
// direct disk edge, plus 1 per common disk neighbor). An arrival can bridge
// two existing bidders; a departure destroys every edge it was the only
// witness of. Matches models.Distance2Disk.
type distance2 struct {
	bids map[BidderID]geomBid
	base map[BidderID]map[BidderID]struct{} // disk adjacency
	wit  map[pairKey]int                    // conflict-edge witness counts
}

// Distance2Model builds the distance-2 disk backend.
func Distance2Model() ConflictModel {
	return &distance2{
		bids: make(map[BidderID]geomBid),
		base: make(map[BidderID]map[BidderID]struct{}),
		wit:  make(map[pairKey]int),
	}
}

func (m *distance2) Name() string            { return "distance2-disk" }
func (m *distance2) RhoBound() float64       { return models.Distance2DiskRho }
func (m *distance2) Validate(bid *Bid) error { return validateDiskGeometry(bid) }
func (m *distance2) Key(bid *Bid) float64    { return -bid.Radius }

// diskNbrs returns the ids whose disks intersect g's, sorted — together with
// sortedBase this keeps every delta's element order deterministic across runs
// (the broker consumes deltas as sets, but determinism keeps replays
// reproducible).
func (m *distance2) diskNbrs(self BidderID, g geomBid) []BidderID {
	var out []BidderID
	for oid, og := range m.bids {
		if oid != self && models.DisksConflict(g.pos, og.pos, g.radius, og.radius) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedBase returns u's disk neighbors ascending (deterministic two-hop
// iteration order for the delta loops).
func (m *distance2) sortedBase(u BidderID) []BidderID {
	out := make([]BidderID, 0, len(m.base[u]))
	for v := range m.base[u] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// inc adds one witness to the pair, reporting the edge if it just came into
// existence.
func (m *distance2) inc(u, v BidderID, d *EdgeDelta) {
	k := pk(u, v)
	m.wit[k]++
	if m.wit[k] == 1 {
		d.Added = append(d.Added, [2]BidderID{u, v})
	}
}

// dec removes one witness; the edge is reported destroyed when the last
// witness goes (suppressed for pairs involving skip — a departing bidder's
// incident edges are implied, not reported).
func (m *distance2) dec(u, v BidderID, skip BidderID, d *EdgeDelta) {
	k := pk(u, v)
	m.wit[k]--
	if m.wit[k] == 0 {
		delete(m.wit, k)
		if u != skip && v != skip {
			d.Removed = append(d.Removed, [2]BidderID{u, v})
		}
	}
}

func (m *distance2) Arrive(id BidderID, bid *Bid) EdgeDelta {
	g := toGeom(bid)
	nbrs := m.diskNbrs(id, g)
	var d EdgeDelta
	for _, u := range nbrs {
		// Direct disk edge id–u.
		m.inc(id, u, &d)
		// u's existing disk neighbors are now two hops from id via u.
		for _, v := range m.sortedBase(u) {
			m.inc(id, v, &d)
		}
	}
	// id bridges every pair of its disk neighbors.
	for i, u := range nbrs {
		for _, v := range nbrs[i+1:] {
			m.inc(u, v, &d)
		}
	}
	m.bids[id] = g
	adj := make(map[BidderID]struct{}, len(nbrs))
	for _, u := range nbrs {
		adj[u] = struct{}{}
		m.base[u][id] = struct{}{}
	}
	m.base[id] = adj
	return d
}

func (m *distance2) Depart(id BidderID) EdgeDelta {
	return m.depart(id, id)
}

// depart reverses Arrive exactly; skip suppresses Removed reports for edges
// incident to that bidder (pass a non-live id to report everything, as Move
// does).
func (m *distance2) depart(id, skip BidderID) EdgeDelta {
	var d EdgeDelta
	nbrs := m.sortedBase(id)
	for _, u := range nbrs {
		m.dec(id, u, skip, &d)
		for _, v := range m.sortedBase(u) {
			if v != id {
				m.dec(id, v, skip, &d)
			}
		}
	}
	for i, u := range nbrs {
		for _, v := range nbrs[i+1:] {
			m.dec(u, v, skip, &d)
		}
	}
	for _, u := range nbrs {
		delete(m.base[u], id)
	}
	delete(m.base, id)
	delete(m.bids, id)
	return d
}

func (m *distance2) Move(id BidderID, bid *Bid) EdgeDelta {
	if _, ok := m.bids[id]; !ok {
		return m.Arrive(id, bid)
	}
	// Re-insert and net out the two deltas: an edge destroyed by the
	// departure and re-created by the arrival never happened.
	out := m.depart(id, -1) // report incident removals too
	in := m.Arrive(id, bid)
	net := make(map[pairKey]int)
	order := make([]pairKey, 0, len(out.Removed)+len(in.Added))
	for _, e := range out.Removed {
		k := pk(e[0], e[1])
		if _, seen := net[k]; !seen {
			order = append(order, k)
		}
		net[k]--
	}
	for _, e := range in.Added {
		k := pk(e[0], e[1])
		if _, seen := net[k]; !seen {
			order = append(order, k)
		}
		net[k]++
	}
	var d EdgeDelta
	for _, k := range order {
		switch {
		case net[k] > 0:
			d.Added = append(d.Added, [2]BidderID{k.a, k.b})
		case net[k] < 0:
			d.Removed = append(d.Removed, [2]BidderID{k.a, k.b})
		}
	}
	return d
}

// ModelByName builds the backend named by a CLI flag or config string.
// Accepted names: "disk", "distance2" (or "distance2-disk"), "protocol",
// "ieee80211" (or "ieee802.11"). delta parameterizes the link models and is
// ignored by the disk models.
func ModelByName(name string, delta float64) (ConflictModel, error) {
	switch name {
	case "", "disk":
		return DiskModel(), nil
	case "distance2", "distance2-disk":
		return Distance2Model(), nil
	case "protocol":
		return ProtocolModel(delta)
	case "ieee80211", "ieee802.11":
		return IEEE80211Model(delta)
	}
	return nil, fmt.Errorf("broker: unknown interference model %q (want disk, distance2, protocol, or ieee80211)", name)
}

// ModelNames lists the accepted ModelByName flag values, default first.
func ModelNames() []string { return []string{"disk", "distance2", "protocol", "ieee80211"} }
