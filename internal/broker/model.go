package broker

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/spatial"
)

// ConflictModel is a pluggable interference backend for the live market: it
// owns the geometry of the active bidders and maintains their conflict graph
// incrementally as bidders arrive, depart, and move. Implementations mirror
// the batch constructors of internal/models — the maintained graph and the
// certifying ordering must equal, edge for edge and rank for rank, what the
// corresponding constructor builds from scratch on the same bidder set (the
// model pinning tests enforce this).
//
// The contract the broker's warm-start machinery relies on:
//
//   - Arrive/Depart/Move return the exact edge delta among live bidders.
//     Edges incident to a departing bidder are implied and not reported;
//     every other created or destroyed edge must be. Distance-2 models make
//     this non-trivial: an arrival can create edges between two existing
//     bidders (it bridges them) and a departure can destroy them (it was
//     their only witness).
//   - Key is the certifying-ordering sort key: sorting live bidders by
//     ascending Key, breaking ties by id order, yields the ordering that
//     certifies RhoBound, and any subset sorted the same way inherits the
//     certificate (the per-component sub-instances depend on this).
//   - Validate and Key are pure functions of the bid and safe for concurrent
//     use (they run on the submission path, outside the broker's locks).
//     Arrive, Depart, and Move are serialized by the broker's epoch tick.
//   - The returned EdgeDelta aliases scratch owned by the model: its slices
//     are valid only until the next Arrive/Depart/Move call on the same
//     model. Consumers must finish with (or copy) a delta before issuing the
//     next mutation — the broker applies each delta to its adjacency
//     immediately, inside the same queue drain.
//
// A ConflictModel instance is owned by exactly one Broker; do not share one
// across brokers.
type ConflictModel interface {
	// Name is the canonical model name (matches internal/models).
	Name() string
	// RhoBound is the inductive independence bound the ordering certifies.
	RhoBound() float64
	// Validate vets a submission's geometry for this model.
	Validate(bid *Bid) error
	// Key is the certifying-ordering sort key of a bid's geometry.
	Key(bid *Bid) float64
	// Arrive registers a bidder and returns the conflict edges it creates.
	Arrive(id BidderID, bid *Bid) EdgeDelta
	// Depart unregisters a bidder and returns the edges destroyed between
	// the remaining bidders (edges incident to id are implied).
	Depart(id BidderID) EdgeDelta
	// Move replaces a registered bidder's geometry and returns the full edge
	// delta, including edges gained and lost by the moved bidder itself.
	Move(id BidderID, bid *Bid) EdgeDelta
}

// EdgeDelta is the incremental outcome of one mutation: conflict edges that
// came into and went out of existence among live bidders.
type EdgeDelta struct {
	Added   [][2]BidderID
	Removed [][2]BidderID
}

// geomBid is the geometry a model keeps per bidder (the model never reads
// valuations).
type geomBid struct {
	pos    geom.Point
	radius float64
	link   geom.Link
}

func toGeom(bid *Bid) geomBid {
	g := geomBid{pos: bid.Pos, radius: bid.Radius}
	if bid.Link != nil {
		g.link = *bid.Link
	}
	return g
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func finitePoint(p geom.Point) bool { return finite(p.X) && finite(p.Y) }

// validateDiskGeometry vets transmitter-disk geometry (disk and distance-2
// models).
func validateDiskGeometry(bid *Bid) error {
	if bid.Link != nil {
		return fmt.Errorf("%w: link geometry on a transmitter-disk model", ErrBadBid)
	}
	if !(bid.Radius > 0) || !finite(bid.Radius) {
		return fmt.Errorf("%w: bad radius %g", ErrBadBid, bid.Radius)
	}
	if !finitePoint(bid.Pos) {
		return fmt.Errorf("%w: non-finite position", ErrBadBid)
	}
	return nil
}

// validateLinkGeometry vets sender→receiver link geometry (protocol and
// IEEE 802.11 models).
func validateLinkGeometry(bid *Bid) error {
	if bid.Link == nil {
		return fmt.Errorf("%w: link model needs link geometry", ErrBadBid)
	}
	if bid.Radius != 0 {
		return fmt.Errorf("%w: disk radius on a link model", ErrBadBid)
	}
	if !finitePoint(bid.Link.Sender) || !finitePoint(bid.Link.Receiver) {
		return fmt.Errorf("%w: non-finite link endpoint", ErrBadBid)
	}
	if l := bid.Link.Length(); !(l > 0) || !finite(l) {
		return fmt.Errorf("%w: bad link length %g", ErrBadBid, bid.Link.Length())
	}
	return nil
}

// pairwise implements the models whose conflicts are a predicate over bidder
// pairs (disk, protocol, IEEE 802.11): an arrival adds exactly its own edges,
// a departure removes exactly its own, so the deltas are trivial.
//
// Candidate discovery goes through the spatial grid when one is attached:
// place anchors each bidder so that conflict(a, b) implies
// dist(anchor_a, anchor_b) ≤ reach_a + reach_b, making Neighbors a provable
// superset of the conflict partners at O(local density) cost. With grid ==
// nil the model falls back to the brute-force all-bidder scan — the
// reference the grid==linear equivalence tests and churn benchmarks pin
// against. Both paths yield candidates in ascending id order, so the deltas
// are byte-identical.
type pairwise struct {
	name     string
	rho      float64
	validate func(*Bid) error
	key      func(geomBid) float64
	conflict func(a, b geomBid) bool
	place    func(geomBid) (geom.Point, float64) // grid anchor + reach
	bids     map[BidderID]geomBid
	grid     *spatial.Grid[BidderID] // nil ⇒ linear candidate scan

	// Mutation scratch, reused across calls; returned EdgeDeltas alias
	// added/removed (see the ConflictModel ownership contract).
	cand    []BidderID
	candB   []BidderID
	candU   []BidderID
	added   [][2]BidderID
	removed [][2]BidderID
}

func (m *pairwise) Name() string            { return m.name }
func (m *pairwise) RhoBound() float64       { return m.rho }
func (m *pairwise) Validate(bid *Bid) error { return m.validate(bid) }
func (m *pairwise) Key(bid *Bid) float64    { return m.key(toGeom(bid)) }

// candidates appends to out (which must come in empty) the ids that could
// conflict with geometry g, excluding id, in ascending order: the grid's
// neighbor superset when indexed, every live bidder otherwise.
func (m *pairwise) candidates(id BidderID, g geomBid, out []BidderID) []BidderID {
	if m.grid != nil {
		p, reach := m.place(g)
		return m.grid.Neighbors(p, reach, id, out)
	}
	for oid := range m.bids {
		if oid != id {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeIDs appends the union of two ascending id slices to dst, ascending
// and deduplicated.
func mergeIDs(dst, a, b []BidderID) []BidderID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case b[j] < a[i]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

func (m *pairwise) Arrive(id BidderID, bid *Bid) EdgeDelta {
	g := toGeom(bid)
	m.cand = m.candidates(id, g, m.cand[:0])
	m.added = m.added[:0]
	for _, oid := range m.cand {
		if m.conflict(g, m.bids[oid]) {
			m.added = append(m.added, [2]BidderID{id, oid})
		}
	}
	m.bids[id] = g
	if m.grid != nil {
		p, reach := m.place(g)
		m.grid.Insert(id, p, reach)
	}
	return EdgeDelta{Added: m.added}
}

func (m *pairwise) Depart(id BidderID) EdgeDelta {
	delete(m.bids, id)
	if m.grid != nil {
		m.grid.Remove(id)
	}
	return EdgeDelta{}
}

func (m *pairwise) Move(id BidderID, bid *Bid) EdgeDelta {
	old, ok := m.bids[id]
	if !ok {
		return m.Arrive(id, bid)
	}
	g := toGeom(bid)
	// An edge can only appear or vanish with a bidder that the old or the
	// new geometry reaches, so the union of the two neighbor queries covers
	// the whole delta. The linear path already scans everyone.
	if m.grid != nil {
		po, ro := m.place(old)
		pn, rn := m.place(g)
		m.cand = m.grid.Neighbors(po, ro, id, m.cand[:0])
		m.candB = m.grid.Neighbors(pn, rn, id, m.candB[:0])
		m.candU = mergeIDs(m.candU[:0], m.cand, m.candB)
	} else {
		m.candU = m.candidates(id, old, m.candU[:0])
	}
	m.added, m.removed = m.added[:0], m.removed[:0]
	for _, oid := range m.candU {
		og := m.bids[oid]
		had, has := m.conflict(old, og), m.conflict(g, og)
		switch {
		case has && !had:
			m.added = append(m.added, [2]BidderID{id, oid})
		case had && !has:
			m.removed = append(m.removed, [2]BidderID{id, oid})
		}
	}
	m.bids[id] = g
	if m.grid != nil {
		p, reach := m.place(g)
		m.grid.Update(id, p, reach)
	}
	return EdgeDelta{Added: m.added, Removed: m.removed}
}

// DiskModel is the disk conflict model of Proposition 9: bidders are
// transmitters with interference disks, conflicting iff the disks intersect.
// The default backend; matches models.Disk.
func DiskModel() ConflictModel { return diskModel(true) }

func diskModel(indexed bool) ConflictModel {
	m := &pairwise{
		name:     "disk",
		rho:      models.DiskRho,
		validate: validateDiskGeometry,
		key:      func(g geomBid) float64 { return -g.radius },
		conflict: func(a, b geomBid) bool {
			return models.DisksConflict(a.pos, b.pos, a.radius, b.radius)
		},
		// The disk itself is the interaction range: the grid's candidate
		// filter dist(p, q) ≤ r_p + r_q is exactly the conflict predicate.
		place: func(g geomBid) (geom.Point, float64) { return g.pos, g.radius },
		bids:  make(map[BidderID]geomBid),
	}
	if indexed {
		m.grid = spatial.New[BidderID]()
	}
	return m
}

// linkPlace anchors a link bid for the grid at its sender with reach
// (2+delta)·length. Both link models' conflicts imply one link's sender is
// within (1+delta)·max(len_a, len_b) of some endpoint of the other, and each
// endpoint is within its own length of its sender, so conflicting senders
// are within (2+delta)·len_a + (2+delta)·len_b ≥ actual distance — the grid
// query is a provable superset of the conflict partners:
//
//   - protocol: dist(s_b, r_a) < (1+delta)·len_a gives
//     dist(s_a, s_b) ≤ len_a + (1+delta)·len_a = (2+delta)·len_a
//     (and symmetrically for the other disjunct);
//   - ieee802.11: some endpoint pair within (1+delta)·max(len_a, len_b) gives
//     dist(s_a, s_b) ≤ len_a + (1+delta)(len_a+len_b) + len_b
//     ≤ (2+delta)·len_a + (2+delta)·len_b.
func linkPlace(delta float64) func(geomBid) (geom.Point, float64) {
	return func(g geomBid) (geom.Point, float64) {
		return g.link.Sender, (2 + delta) * g.link.Length()
	}
}

// ProtocolModel is the protocol interference model of Proposition 13 with
// parameter delta > 0: bidders are sender→receiver links, conflicting if
// either sender disturbs the other's receiver. Matches models.Protocol.
func ProtocolModel(delta float64) (ConflictModel, error) { return protocolModel(delta, true) }

func protocolModel(delta float64, indexed bool) (ConflictModel, error) {
	if !(delta > 0) || !finite(delta) {
		return nil, fmt.Errorf("broker: protocol model needs delta > 0, got %g", delta)
	}
	m := &pairwise{
		name:     "protocol",
		rho:      models.ProtocolRhoBound(delta),
		validate: validateLinkGeometry,
		key:      func(g geomBid) float64 { return g.link.Length() },
		conflict: func(a, b geomBid) bool {
			return models.ProtocolConflicts(a.link, b.link, delta)
		},
		place: linkPlace(delta),
		bids:  make(map[BidderID]geomBid),
	}
	if indexed {
		m.grid = spatial.New[BidderID]()
	}
	return m, nil
}

// IEEE80211Model is the bidirectional protocol model (Alicherry et al.) with
// parameter delta > 0. Matches models.IEEE80211.
func IEEE80211Model(delta float64) (ConflictModel, error) { return ieee80211Model(delta, true) }

func ieee80211Model(delta float64, indexed bool) (ConflictModel, error) {
	if !(delta > 0) || !finite(delta) {
		return nil, fmt.Errorf("broker: ieee802.11 model needs delta > 0, got %g", delta)
	}
	m := &pairwise{
		name:     "ieee802.11",
		rho:      models.IEEE80211Rho,
		validate: validateLinkGeometry,
		key:      func(g geomBid) float64 { return g.link.Length() },
		conflict: func(a, b geomBid) bool {
			return models.IEEE80211Conflicts(a.link, b.link, delta)
		},
		place: linkPlace(delta),
		bids:  make(map[BidderID]geomBid),
	}
	if indexed {
		m.grid = spatial.New[BidderID]()
	}
	return m, nil
}

// pairKey orders an unordered bidder pair.
type pairKey struct{ a, b BidderID }

func pk(a, b BidderID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{a, b}
}

// distance2 implements the distance-2 coloring model on disk graphs
// (Proposition 11): bidders conflict if they are within two hops in the disk
// graph — so conflicts are not pairwise-decomposable, and the model tracks,
// per conflicting pair, the number of witnesses sustaining the edge (1 for a
// direct disk edge, plus 1 per common disk neighbor). An arrival can bridge
// two existing bidders; a departure destroys every edge it was the only
// witness of. Matches models.Distance2Disk.
type distance2 struct {
	bids map[BidderID]geomBid
	base map[BidderID]map[BidderID]struct{} // disk adjacency
	wit  map[pairKey]int                    // conflict-edge witness counts
	grid *spatial.Grid[BidderID]            // nil ⇒ linear diskNbrs scan

	// Mutation scratch, reused across calls. Arrive, depart, and Move keep
	// separate delta buffers because Move runs a depart and an Arrive
	// back-to-back and then nets both into its own output; nbrScratch holds
	// the outer neighbor list while baseScratch serves the nested sortedBase
	// calls, so the two must stay distinct.
	nbrScratch  []BidderID
	baseScratch []BidderID
	arrAdded    [][2]BidderID
	depRemoved  [][2]BidderID
	moveAdded   [][2]BidderID
	moveRemoved [][2]BidderID
	net         map[pairKey]int
	order       []pairKey
}

// Distance2Model builds the distance-2 disk backend.
func Distance2Model() ConflictModel { return distance2Model(true) }

func distance2Model(indexed bool) ConflictModel {
	m := &distance2{
		bids: make(map[BidderID]geomBid),
		base: make(map[BidderID]map[BidderID]struct{}),
		wit:  make(map[pairKey]int),
		net:  make(map[pairKey]int),
	}
	if indexed {
		m.grid = spatial.New[BidderID]()
	}
	return m
}

func (m *distance2) Name() string            { return "distance2-disk" }
func (m *distance2) RhoBound() float64       { return models.Distance2DiskRho }
func (m *distance2) Validate(bid *Bid) error { return validateDiskGeometry(bid) }
func (m *distance2) Key(bid *Bid) float64    { return -bid.Radius }

// diskNbrs appends to out (which must come in empty) the ids whose disks
// intersect g's, ascending — together with sortedBase this keeps every
// delta's element order deterministic across runs (the broker consumes
// deltas as sets, but determinism keeps replays reproducible). With a grid
// attached the query is exact, not a superset: for disk geometry the grid's
// candidate filter dist ≤ r_g + r_other IS the disk conflict predicate.
// Two-hop discovery stays on the maintained base adjacency, so the grid is
// consulted once per mutation, not once per hop.
func (m *distance2) diskNbrs(self BidderID, g geomBid, out []BidderID) []BidderID {
	if m.grid != nil {
		return m.grid.Neighbors(g.pos, g.radius, self, out)
	}
	for oid, og := range m.bids {
		if oid != self && models.DisksConflict(g.pos, og.pos, g.radius, og.radius) {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedBase appends u's disk neighbors to out (which must come in empty),
// ascending (deterministic two-hop iteration order for the delta loops).
func (m *distance2) sortedBase(u BidderID, out []BidderID) []BidderID {
	for v := range m.base[u] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// inc adds one witness to the pair, reporting the edge if it just came into
// existence.
func (m *distance2) inc(u, v BidderID, d *EdgeDelta) {
	k := pk(u, v)
	m.wit[k]++
	if m.wit[k] == 1 {
		d.Added = append(d.Added, [2]BidderID{u, v})
	}
}

// dec removes one witness; the edge is reported destroyed when the last
// witness goes (suppressed for pairs involving skip — a departing bidder's
// incident edges are implied, not reported).
func (m *distance2) dec(u, v BidderID, skip BidderID, d *EdgeDelta) {
	k := pk(u, v)
	m.wit[k]--
	if m.wit[k] == 0 {
		delete(m.wit, k)
		if u != skip && v != skip {
			d.Removed = append(d.Removed, [2]BidderID{u, v})
		}
	}
}

func (m *distance2) Arrive(id BidderID, bid *Bid) EdgeDelta {
	g := toGeom(bid)
	m.nbrScratch = m.diskNbrs(id, g, m.nbrScratch[:0])
	nbrs := m.nbrScratch
	d := EdgeDelta{Added: m.arrAdded[:0]}
	for _, u := range nbrs {
		// Direct disk edge id–u.
		m.inc(id, u, &d)
		// u's existing disk neighbors are now two hops from id via u.
		m.baseScratch = m.sortedBase(u, m.baseScratch[:0])
		for _, v := range m.baseScratch {
			m.inc(id, v, &d)
		}
	}
	// id bridges every pair of its disk neighbors.
	for i, u := range nbrs {
		for _, v := range nbrs[i+1:] {
			m.inc(u, v, &d)
		}
	}
	m.bids[id] = g
	adj := make(map[BidderID]struct{}, len(nbrs))
	for _, u := range nbrs {
		adj[u] = struct{}{}
		m.base[u][id] = struct{}{}
	}
	m.base[id] = adj
	if m.grid != nil {
		m.grid.Insert(id, g.pos, g.radius)
	}
	m.arrAdded = d.Added
	return d
}

func (m *distance2) Depart(id BidderID) EdgeDelta {
	return m.depart(id, id)
}

// depart reverses Arrive exactly; skip suppresses Removed reports for edges
// incident to that bidder (pass a non-live id to report everything, as Move
// does).
func (m *distance2) depart(id, skip BidderID) EdgeDelta {
	d := EdgeDelta{Removed: m.depRemoved[:0]}
	m.nbrScratch = m.sortedBase(id, m.nbrScratch[:0])
	nbrs := m.nbrScratch
	for _, u := range nbrs {
		m.dec(id, u, skip, &d)
		m.baseScratch = m.sortedBase(u, m.baseScratch[:0])
		for _, v := range m.baseScratch {
			if v != id {
				m.dec(id, v, skip, &d)
			}
		}
	}
	for i, u := range nbrs {
		for _, v := range nbrs[i+1:] {
			m.dec(u, v, skip, &d)
		}
	}
	for _, u := range nbrs {
		delete(m.base[u], id)
	}
	delete(m.base, id)
	delete(m.bids, id)
	if m.grid != nil {
		m.grid.Remove(id)
	}
	m.depRemoved = d.Removed
	return d
}

func (m *distance2) Move(id BidderID, bid *Bid) EdgeDelta {
	if _, ok := m.bids[id]; !ok {
		return m.Arrive(id, bid)
	}
	// Re-insert and net out the two deltas: an edge destroyed by the
	// departure and re-created by the arrival never happened. The two legs
	// write disjoint delta buffers (depRemoved / arrAdded), so both survive
	// to the netting below.
	out := m.depart(id, -1) // report incident removals too
	in := m.Arrive(id, bid)
	clear(m.net)
	m.order = m.order[:0]
	for _, e := range out.Removed {
		k := pk(e[0], e[1])
		if _, seen := m.net[k]; !seen {
			m.order = append(m.order, k)
		}
		m.net[k]--
	}
	for _, e := range in.Added {
		k := pk(e[0], e[1])
		if _, seen := m.net[k]; !seen {
			m.order = append(m.order, k)
		}
		m.net[k]++
	}
	d := EdgeDelta{Added: m.moveAdded[:0], Removed: m.moveRemoved[:0]}
	for _, k := range m.order {
		switch {
		case m.net[k] > 0:
			d.Added = append(d.Added, [2]BidderID{k.a, k.b})
		case m.net[k] < 0:
			d.Removed = append(d.Removed, [2]BidderID{k.a, k.b})
		}
	}
	m.moveAdded, m.moveRemoved = d.Added, d.Removed
	return d
}

// ModelByName builds the backend named by a CLI flag or config string.
// Accepted names: "disk", "distance2" (or "distance2-disk"), "protocol",
// "ieee80211" (or "ieee802.11"). delta parameterizes the link models and is
// ignored by the disk models.
func ModelByName(name string, delta float64) (ConflictModel, error) {
	return modelByName(name, delta, true)
}

// LinearModelByName builds the named backend with the spatial index
// disabled: candidate discovery falls back to the brute-force O(n) scan of
// every live bidder. The result is behaviorally identical — byte-for-byte
// deltas — to ModelByName's; it exists as the oracle for the grid==linear
// equivalence tests and as the baseline the mutation-churn benchmarks
// measure the spatial index against.
func LinearModelByName(name string, delta float64) (ConflictModel, error) {
	return modelByName(name, delta, false)
}

func modelByName(name string, delta float64, indexed bool) (ConflictModel, error) {
	switch name {
	case "", "disk":
		return diskModel(indexed), nil
	case "distance2", "distance2-disk":
		return distance2Model(indexed), nil
	case "protocol":
		return protocolModel(delta, indexed)
	case "ieee80211", "ieee802.11":
		return ieee80211Model(delta, indexed)
	}
	return nil, fmt.Errorf("broker: unknown interference model %q (want disk, distance2, protocol, or ieee80211)", name)
}

// ModelNames lists the accepted ModelByName flag values, default first.
func ModelNames() []string { return []string{"disk", "distance2", "protocol", "ieee80211"} }
