package broker

import (
	"errors"
	"math"
	"testing"

	"repro/internal/market"
	"repro/pkg/spectrum"
)

// Temporal-lease semantics: a bid submitted with LeaseEpochs = L activates at
// some epoch A and is withdrawn by the broker itself at the tick that commits
// epoch A+L — no client withdraw, no background timer, just a synthesized
// withdrawal at epoch commit. These tests pin the lifecycle arithmetic, the
// queue-interaction edge cases, and the equivalence of broker-enforced expiry
// with an explicit client withdraw of the same lifetime.

func leasedBid(lease int) Bid {
	return Bid{Radius: 2, Values: []float64{4, 1}, LeaseEpochs: lease}
}

// A lease of L epochs is active for exactly epochs A..A+L-1 and gone at A+L.
func TestLeaseExpiresOnSchedule(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	id, err := b.Submit(leasedBid(2))
	if err != nil {
		t.Fatal(err)
	}
	rep := b.Tick() // epoch 1: activation
	if rep.Arrivals != 1 || rep.Active != 1 || rep.Expired != 0 {
		t.Fatalf("activation epoch: %+v", rep)
	}
	rep = b.Tick() // epoch 2: still within the lease
	if rep.Active != 1 || rep.Expired != 0 || rep.Departures != 0 {
		t.Fatalf("mid-lease epoch: %+v", rep)
	}
	rep = b.Tick() // epoch 3 = activation + 2: the broker withdraws
	if rep.Expired != 1 || rep.Departures != 1 || rep.Active != 0 {
		t.Fatalf("expiry epoch: %+v", rep)
	}
	if st := b.StatusOf(id); st != StatusGone {
		t.Fatalf("expired bidder reports %v, want gone", st)
	}
	m := b.Metrics()
	if m.Expired != 1 || m.Withdrawn != 1 {
		t.Fatalf("metrics after expiry: expired=%d withdrawn=%d", m.Expired, m.Withdrawn)
	}
	// Nothing left to expire: later epochs are quiet.
	if rep = b.Tick(); rep.Expired != 0 || rep.Departures != 0 {
		t.Fatalf("post-expiry epoch not quiet: %+v", rep)
	}
}

// The shortest lease: one epoch of service, gone at the very next commit.
func TestLeaseOfOneEpoch(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	if _, err := b.Submit(leasedBid(1)); err != nil {
		t.Fatal(err)
	}
	if rep := b.Tick(); rep.Active != 1 {
		t.Fatalf("activation epoch: %+v", rep)
	}
	if rep := b.Tick(); rep.Expired != 1 || rep.Active != 0 {
		t.Fatalf("expiry epoch: %+v", rep)
	}
}

// Leases are validated like any other bid field.
func TestLeaseValidation(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	if _, err := b.Submit(leasedBid(-1)); !errors.Is(err, ErrBadBid) {
		t.Fatalf("negative lease accepted: %v", err)
	}
	if _, err := b.Submit(leasedBid(maxLeaseEpochs + 1)); !errors.Is(err, ErrBadBid) {
		t.Fatalf("absurd lease accepted: %v", err)
	}
}

// A move op carries geometry only; smuggling a lease extension through Move
// (direct or batched) is rejected before it can touch the queue.
func TestMoveCannotCarryLease(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	id, err := b.Submit(leasedBid(5))
	if err != nil {
		t.Fatal(err)
	}
	b.Tick()
	if err := b.Move(id, Bid{Radius: 2, LeaseEpochs: 3}); !errors.Is(err, ErrBadBid) {
		t.Fatalf("Move with a lease accepted: %v", err)
	}
	res, _ := b.Batch([]spectrum.Op{{Op: spectrum.OpMove, ID: id, Bid: &Bid{Radius: 2, LeaseEpochs: 3}}})
	if res[0].OK() || res[0].Code != 400 {
		t.Fatalf("batched move with a lease: %+v", res[0])
	}
}

// A leased submission cancelled while still queued must neither activate nor
// leave a phantom expiry behind, and its admission-cap slot must be returned.
func TestLeaseCancelledWhileQueued(t *testing.T) {
	b := newTestBroker(t, Config{K: 1, MaxBidders: 1})
	id, err := b.Submit(Bid{Radius: 1, Values: []float64{1}, LeaseEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Withdraw(id); err != nil {
		t.Fatal(err)
	}
	if rep := b.Tick(); rep.Arrivals != 0 || rep.Departures != 0 || rep.Expired != 0 {
		t.Fatalf("cancelled queued lease produced events: %+v", rep)
	}
	// The slot is free again: one fresh (unleased) submit fits, a second hits
	// the cap — so the cancelled lease gave back exactly one population slot.
	id2, err := b.Submit(Bid{Radius: 1, Values: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(Bid{Radius: 1, Values: []float64{1}}); !errors.Is(err, ErrFull) {
		t.Fatalf("cap probe: %v", err)
	}
	// And the dead lease never fires: no expiries ever, the unleased bid stays.
	for e := 0; e < 4; e++ {
		if rep := b.Tick(); rep.Expired != 0 || rep.Departures != 0 {
			t.Fatalf("phantom expiry from a cancelled queued lease: %+v", rep)
		}
	}
	if st := b.StatusOf(id); st != StatusGone {
		t.Fatalf("cancelled lease reports %v, want gone", st)
	}
	if st := b.StatusOf(id2); st != StatusActive {
		t.Fatalf("survivor reports %v, want active", st)
	}
}

// Lease expiry and a client withdraw landing on the same tick retire the
// bidder exactly once: one departure, one freed population slot.
func TestLeaseExpirySameEpochAsWithdraw(t *testing.T) {
	b := newTestBroker(t, Config{K: 1, MaxBidders: 1})
	id, err := b.Submit(Bid{Radius: 1, Values: []float64{1}, LeaseEpochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep := b.Tick(); rep.Active != 1 {
		t.Fatalf("activation epoch: %+v", rep)
	}
	// Queue a client withdraw for the very epoch the lease runs out.
	if err := b.Withdraw(id); err != nil {
		t.Fatal(err)
	}
	rep := b.Tick()
	if rep.Expired != 1 || rep.Departures != 1 || rep.Active != 0 {
		t.Fatalf("double-withdraw epoch: %+v", rep)
	}
	// Population accounting: exactly one slot exists and it is free.
	if _, err := b.Submit(Bid{Radius: 1, Values: []float64{1}}); err != nil {
		t.Fatalf("slot not freed after same-epoch expiry+withdraw: %v", err)
	}
	if _, err := b.Submit(Bid{Radius: 1, Values: []float64{1}}); !errors.Is(err, ErrFull) {
		t.Fatalf("slot freed twice: %v", err)
	}
}

// Leased submits through /v1/batch replay idempotently: the same key returns
// the stored result without creating a second bidder — before activation,
// and even after the original lease has expired.
func TestLeaseBatchIdempotentReplay(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	bid := leasedBid(1)
	ops := []spectrum.Op{{Op: spectrum.OpSubmit, Key: "lease-sub-1", Bid: &bid}}
	res, _ := b.Batch(ops)
	if !res[0].OK() || res[0].Replayed {
		t.Fatalf("first submit: %+v", res[0])
	}
	id := res[0].ID
	replay, _ := b.Batch(ops)
	if !replay[0].OK() || !replay[0].Replayed || replay[0].ID != id {
		t.Fatalf("pre-tick replay: %+v", replay[0])
	}
	if rep := b.Tick(); rep.Arrivals != 1 || rep.Active != 1 {
		t.Fatalf("duplicate submit slipped through the key: %+v", rep)
	}
	if rep := b.Tick(); rep.Expired != 1 || rep.Active != 0 {
		t.Fatalf("expiry epoch: %+v", rep)
	}
	// A retry arriving after the lease already expired still replays the
	// stored result — it must not resurrect the bidder.
	replay, _ = b.Batch(ops)
	if !replay[0].OK() || !replay[0].Replayed || replay[0].ID != id {
		t.Fatalf("post-expiry replay: %+v", replay[0])
	}
	if rep := b.Tick(); rep.Arrivals != 0 || rep.Active != 0 {
		t.Fatalf("post-expiry replay resurrected the bidder: %+v", rep)
	}
}

// The lease equivalence contract: a broker expiring leases itself must walk
// exactly the same epoch trajectory as a broker whose clients withdraw
// explicitly at the same lifetimes — identical allocations and welfare every
// epoch, on both the warm and the Cold (no cache, no pool) configuration —
// and the lease broker's committed allocation must still equal a from-scratch
// solve of its own snapshot (the standing incremental==cold-global pin).
func TestLeaseMatchesClientWithdrawTwin(t *testing.T) {
	cfg := market.TraceConfig{
		Seed: 13, Epochs: 20, K: 3, Side: 140,
		ArrivalRate: 4, MeanLifetime: 3, MaxUsers: 32,
	}
	plainTr := market.GenTrace(cfg)
	cfg.Lease = true
	leaseTr := market.GenTrace(cfg)

	leased := newTestBroker(t, Config{K: 3})
	leasedCold := newTestBroker(t, Config{K: 3, Cold: true})
	twin := newTestBroker(t, Config{K: 3})
	rl := market.NewOpsReplayer(leaseTr, false)
	rlc := market.NewOpsReplayer(leaseTr, false)
	rt := market.NewOpsReplayer(plainTr, false)

	step := func(b *Broker, r *market.OpsReplayer) bool {
		t.Helper()
		ops, more, err := r.Step()
		if err != nil {
			t.Fatal(err)
		}
		results, _ := b.Batch(ops)
		if err := r.Observe(results); err != nil {
			t.Fatal(err)
		}
		return more
	}
	for e := 0; ; e++ {
		more := step(leased, rl)
		step(leasedCold, rlc)
		step(twin, rt)
		lrep := leased.Tick()
		crep := leasedCold.Tick()
		trep := twin.Tick()
		// Warm and cold lease brokers stay identical even past the trace.
		if !sameAlloc(brokerAlloc(leased), brokerAlloc(leasedCold)) {
			t.Fatalf("epoch %d: warm and cold lease brokers diverged", e)
		}
		if crep.Clean != 0 || crep.WarmResolves != 0 {
			t.Fatalf("cold lease broker used the cache: %+v", crep)
		}
		checkAgainstReference(t, leased, 13, e)
		if !more {
			// One tick past the trace: the twin's withdraws stopped with the
			// trace, but the lease broker keeps expiring on its own — only
			// bids leased beyond the horizon survive.
			beyond := 0
			for _, te := range leaseTr.Epochs {
				for _, a := range te.Arrivals {
					if a.Departs > cfg.Epochs {
						beyond++
					}
				}
			}
			if lrep.Active != beyond {
				t.Fatalf("post-trace: %d active, want the %d bids leased beyond the horizon",
					lrep.Active, beyond)
			}
			break
		}
		// In-trace lockstep: broker ids are assigned in submit order and the
		// lease trace is the plain trace's byte-identical arrival stream, so
		// the allocation maps must coincide key for key.
		if !sameAlloc(brokerAlloc(leased), brokerAlloc(twin)) {
			t.Fatalf("epoch %d: lease expiry and client withdraw diverged", e)
		}
		if math.Abs(lrep.Welfare-trep.Welfare) > 1e-9*(1+math.Abs(trep.Welfare)) {
			t.Fatalf("epoch %d: lease welfare %g vs twin %g", e, lrep.Welfare, trep.Welfare)
		}
		// What the broker expires, the twin's clients withdrew.
		if lrep.Expired != trep.Departures {
			t.Fatalf("epoch %d: %d expiries vs %d twin departures", e, lrep.Expired, trep.Departures)
		}
	}
	m := leased.Metrics()
	if m.Expired == 0 {
		t.Fatal("lease broker expired nothing over the whole trace")
	}
	if tm := twin.Metrics(); tm.Expired != 0 {
		t.Fatalf("twin broker expired %d bids — its trace must not carry leases", tm.Expired)
	}
}
