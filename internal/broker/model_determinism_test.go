package broker

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
)

// TestPairwiseDeltaOrderDeterministic pins the fix for the pairwise models'
// delta construction. Arrive and Move used to range the live-bid map
// directly, so the element order of EdgeDelta.Added/Removed followed Go's
// randomized map iteration: two brokers fed the identical op sequence could
// hand their warm-start machinery differently ordered deltas. Before the fix
// (iterate m.others(id), ascending) this test fails almost surely; after it,
// every construction yields the same delta, ascending by neighbor id.
func TestPairwiseDeltaOrderDeterministic(t *testing.T) {
	const live = 40
	run := func() (added, removed [][2]BidderID) {
		m := DiskModel()
		// All bids overlap, so the probe's Arrive conflicts with every
		// live bidder and its Move away destroys all those edges.
		for i := 0; i < live; i++ {
			m.Arrive(BidderID(i), &Bid{Pos: geom.Point{X: 0, Y: 0}, Radius: 1})
		}
		// Deltas alias model-owned scratch (ConflictModel ownership
		// contract), so copy Arrive's before issuing the Move.
		added = append([][2]BidderID(nil), m.Arrive(BidderID(1000), &Bid{Pos: geom.Point{X: 0, Y: 0}, Radius: 1}).Added...)
		removed = append([][2]BidderID(nil), m.Move(BidderID(1000), &Bid{Pos: geom.Point{X: 1e6, Y: 1e6}, Radius: 1}).Removed...)
		return added, removed
	}

	wantAdded, wantRemoved := run()
	if len(wantAdded) != live || len(wantRemoved) != live {
		t.Fatalf("probe should conflict with all %d live bidders: added %d, removed %d", live, len(wantAdded), len(wantRemoved))
	}
	for _, d := range [][][2]BidderID{wantAdded, wantRemoved} {
		if !sort.SliceIsSorted(d, func(i, j int) bool { return d[i][1] < d[j][1] }) {
			t.Errorf("delta not in ascending neighbor order: %v", d)
		}
	}
	for trial := 0; trial < 20; trial++ {
		added, removed := run()
		if !reflect.DeepEqual(added, wantAdded) {
			t.Fatalf("trial %d: Arrive delta order diverged:\n got %v\nwant %v", trial, added, wantAdded)
		}
		if !reflect.DeepEqual(removed, wantRemoved) {
			t.Fatalf("trial %d: Move delta order diverged:\n got %v\nwant %v", trial, removed, wantRemoved)
		}
	}
}
