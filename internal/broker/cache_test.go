package broker

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// churnBroker drives n epochs of seeded submit/withdraw/move churn against b
// and calls check after every tick with the epoch's report.
func churnBroker(t *testing.T, b *Broker, seed int64, epochs int, check func(epoch int, rep EpochReport)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var live []BidderID
	for epoch := 0; epoch < epochs; epoch++ {
		for op := 0; op < 3; op++ {
			switch {
			case len(live) < 6 || rng.Intn(3) == 0:
				bid := Bid{
					Pos:    geom.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60},
					Radius: 2 + rng.Float64()*4,
					Values: []float64{1 + rng.Float64()*9, 1 + rng.Float64()*9},
				}
				id, err := b.Submit(bid)
				if err != nil {
					t.Fatalf("submit: %v", err)
				}
				live = append(live, id)
			case rng.Intn(2) == 0:
				i := rng.Intn(len(live))
				if err := b.Withdraw(live[i]); err != nil {
					t.Fatalf("withdraw: %v", err)
				}
				live = append(live[:i], live[i+1:]...)
			default:
				i := rng.Intn(len(live))
				bid := Bid{
					Pos:    geom.Point{X: rng.Float64() * 60, Y: rng.Float64() * 60},
					Radius: 2 + rng.Float64()*4,
				}
				if err := b.Move(live[i], bid); err != nil {
					t.Fatalf("move: %v", err)
				}
			}
		}
		rep := b.Tick()
		check(epoch, rep)
	}
}

// TestCompCacheCappedEquivalence pins that capping the component solve cache
// changes only how much work each epoch does, never what it allocates: a
// cap-1 broker (evicting nearly everything every epoch) commits exactly the
// same allocation, welfare, and epoch numbering as an unbounded one under
// identical churn, and actually evicts.
func TestCompCacheCappedEquivalence(t *testing.T) {
	mk := func(cap int) *Broker {
		b, err := New(Config{K: 2, CompCacheCap: cap, Workers: 1})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return b
	}
	capped := mk(1)
	unbounded := mk(-1)

	type epochPin struct {
		welfare float64
		active  int
	}
	const epochs = 40
	pins := make([]epochPin, 0, epochs)
	churnBroker(t, unbounded, 99, epochs, func(_ int, rep EpochReport) {
		pins = append(pins, epochPin{welfare: rep.Welfare, active: rep.Active})
	})
	churnBroker(t, capped, 99, epochs, func(epoch int, rep EpochReport) {
		want := pins[epoch]
		if rep.Welfare != want.welfare || rep.Active != want.active {
			t.Fatalf("epoch %d: capped cache diverged: welfare %v (want %v), active %d (want %d)",
				epoch, rep.Welfare, want.welfare, rep.Active, want.active)
		}
	})

	// Every live bidder's committed bundle must agree bit-for-bit.
	for id := BidderID(0); id < 200; id++ {
		bu, su := unbounded.Allocation(id)
		bc, sc := capped.Allocation(id)
		if bu != bc || su != sc {
			t.Fatalf("bidder %d: capped alloc %v/%v, unbounded %v/%v", id, bc, sc, bu, su)
		}
	}

	if ev := capped.Metrics().Evicted; ev == 0 {
		t.Fatal("cap-1 cache never evicted under churn")
	}
	if ev := unbounded.Metrics().Evicted; ev != 0 {
		t.Fatalf("unbounded cache evicted %d entries", ev)
	}
}

// TestCompCacheRetention pins the new retention behavior the LRU buys: a
// component that dissolves (its member moves away) and later re-forms with
// identical membership, edges, and valuations is served clean from the
// cache, with no re-solve at all.
func TestCompCacheRetention(t *testing.T) {
	b, err := New(Config{K: 2, Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	home := Bid{Pos: geom.Point{X: 0, Y: 0}, Radius: 3, Values: []float64{5, 4}}
	other := Bid{Pos: geom.Point{X: 100, Y: 100}, Radius: 3, Values: []float64{2, 7}}
	a, err := b.Submit(home)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := b.Submit(other); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if rep := b.Tick(); rep.Rebuilds != 2 {
		t.Fatalf("first epoch: %d rebuilds, want 2", rep.Rebuilds)
	}

	// Move a next to the other bidder: both singleton components dissolve
	// into one pair component (one rebuild).
	if err := b.Move(a, Bid{Pos: geom.Point{X: 99, Y: 100}, Radius: 3}); err != nil {
		t.Fatalf("move: %v", err)
	}
	if rep := b.Tick(); rep.Rebuilds != 1 || rep.Clean != 0 {
		t.Fatalf("merge epoch: rebuilds=%d clean=%d, want 1/0", rep.Rebuilds, rep.Clean)
	}

	// Move a home again: the original two singleton components re-form and
	// both must hit the retained cache clean — before the LRU, commitEpoch
	// dropped every entry not in the current epoch, forcing two rebuilds.
	if err := b.Move(a, Bid{Pos: geom.Point{X: 0, Y: 0}, Radius: 3}); err != nil {
		t.Fatalf("move: %v", err)
	}
	if rep := b.Tick(); rep.Clean != 2 || rep.Rebuilds != 0 || rep.WarmResolves != 0 {
		t.Fatalf("re-form epoch: clean=%d rebuilds=%d warm=%d, want 2/0/0", rep.Clean, rep.Rebuilds, rep.WarmResolves)
	}
}

// TestCompCacheRevivedUpdateRebuilds pins the safety rule for revived
// entries: a cache entry that sat out epochs may be reused clean (equal
// versions pin identical valuations) but never warm re-solved — its members'
// forceRebuild flags were consumed while it sat out, so a valuation change
// on re-formation must rebuild.
func TestCompCacheRevivedUpdateRebuilds(t *testing.T) {
	b, err := New(Config{K: 2, Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	a, err := b.Submit(Bid{Pos: geom.Point{X: 0, Y: 0}, Radius: 3, Values: []float64{5, 4}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	c, err := b.Submit(Bid{Pos: geom.Point{X: 100, Y: 100}, Radius: 3, Values: []float64{2, 7}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	b.Tick()
	// Merge the components, then split them again while also updating a's
	// valuation in the same epoch: a's old singleton entry is revived by
	// key but its versions no longer match, and it did not serve last
	// epoch, so it must rebuild (not warm re-solve).
	if err := b.Move(a, Bid{Pos: geom.Point{X: 99, Y: 100}, Radius: 3}); err != nil {
		t.Fatalf("move: %v", err)
	}
	b.Tick()
	if err := b.Move(a, Bid{Pos: geom.Point{X: 0, Y: 0}, Radius: 3}); err != nil {
		t.Fatalf("move: %v", err)
	}
	if err := b.Update(a, Values{Additive: []float64{6, 4}}); err != nil {
		t.Fatalf("update: %v", err)
	}
	rep := b.Tick()
	if rep.WarmResolves != 0 {
		t.Fatalf("revived entry with moved valuations warm re-solved (rebuilds=%d warm=%d clean=%d)",
			rep.Rebuilds, rep.WarmResolves, rep.Clean)
	}
	if rep.Rebuilds != 1 || rep.Clean != 1 {
		t.Fatalf("re-form epoch: rebuilds=%d clean=%d, want 1 rebuild (a) and 1 clean (c)", rep.Rebuilds, rep.Clean)
	}
	_ = c
}
