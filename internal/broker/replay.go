package broker

// The durability surface of the broker: a commit hook that hands every
// committed epoch's applied mutations to a write-ahead journal, and the
// replay entry points a restore path uses to rebuild a broker from a
// snapshot plus a journal tail (internal/journal owns the files; this file
// owns the state machine).
//
// The recovery invariant extends the repo's standing equivalence
// discipline: because the committed allocation is pinned to be identical to
// a from-scratch solve of the epoch's snapshot — independent of cache,
// pool, and warm-start state — a broker rebuilt by replaying the same op
// sequence commits the same allocation, prices, and epoch as the broker
// that lived through it, even though the rebuilt broker's caches start
// empty. The crash-injection suite in internal/journal asserts exactly
// this, per interference backend, at every injected fault point.

import (
	"fmt"
	"sort"

	"repro/internal/serialize"
	"repro/pkg/spectrum"
)

// CommitRecord describes one committed epoch to the durability layer: the
// epoch number, the mutation-queue high-water id at drain time (so replay
// reproduces id assignment even across submissions cancelled while queued),
// and the applied ops in queue order. Submit ops carry the bidder id they
// were assigned, so replay pins ids instead of re-issuing them.
type CommitRecord struct {
	Epoch  int
	NextID BidderID
	Ops    []spectrum.Op
	Report EpochReport
}

// SetOnCommit installs the commit hook, called synchronously after every
// epoch commit (including idle epochs, which carry no ops — the journal's
// epoch numbering must stay gap-free) while ticks are serialized, with no
// broker locks held. A non-nil error is counted in Metrics.JournalErrors;
// the epoch itself stays committed in memory. Pass nil to detach.
func (b *Broker) SetOnCommit(fn func(CommitRecord) error) {
	b.tickMu.Lock()
	b.onCommit = fn
	b.tickMu.Unlock()
	b.durable.Store(fn != nil)
}

// Durable reports whether a commit hook is attached.
func (b *Broker) Durable() bool { return b.durable.Load() }

// MarkRecovered records that this broker was rebuilt from a journal and the
// epoch recovery finished at; /healthz and /v1/snapshot expose it.
func (b *Broker) MarkRecovered(epoch int) { b.recovered.Store(int64(epoch)) }

// RecoveredEpoch returns the epoch this broker was restored at, and whether
// it was restored at all.
func (b *Broker) RecoveredEpoch() (int, bool) {
	r := b.recovered.Load()
	return int(r), r >= 0
}

// fireCommit invokes the commit hook for a just-committed epoch. Caller
// holds tickMu (and no other broker locks).
func (b *Broker) fireCommit(rep EpochReport, nextID BidderID, ops []pendingOp) {
	if b.onCommit == nil {
		return
	}
	if err := b.onCommit(CommitRecord{Epoch: rep.Epoch, NextID: nextID, Ops: wireOps(ops), Report: rep}); err != nil {
		b.journalErrs.Add(1)
	}
}

// wireOps converts drained pending mutations to their wire form, submit ids
// included. The bid and values payloads are shared, not copied: the hook
// serializes them synchronously and committed state never mutates the
// underlying slices in place.
func wireOps(ops []pendingOp) []spectrum.Op {
	if len(ops) == 0 {
		return nil
	}
	out := make([]spectrum.Op, len(ops))
	for i := range ops {
		p := &ops[i]
		switch p.kind {
		case opSubmit:
			out[i] = spectrum.Op{Op: spectrum.OpSubmit, ID: p.id, Bid: &p.bid}
		case opWithdraw:
			out[i] = spectrum.Op{Op: spectrum.OpWithdraw, ID: p.id}
		case opUpdate:
			out[i] = spectrum.Op{Op: spectrum.OpUpdate, ID: p.id, Values: &p.values}
		case opMove:
			out[i] = spectrum.Op{Op: spectrum.OpMove, ID: p.id, Bid: &p.bid}
		}
	}
	return out
}

// SeedBidder is one committed bidder in a full-market snapshot: its id and
// the wire bid (geometry plus current valuation) the market knows it by.
type SeedBidder struct {
	ID  BidderID `json:"id"`
	Bid Bid      `json:"bid"`
}

// SeedState is the broker's full restorable state at the last committed
// epoch. Instance is the committed market encoded with the existing
// snapshot serialization (internal/serialize) and is used by the restore
// path as an integrity cross-check of the rebuilt conflict graph; it is nil
// when the market has valuations the serializer cannot flatten.
type SeedState struct {
	Epoch    int
	NextID   BidderID
	Model    string
	K        int
	Bidders  []SeedBidder
	Instance *serialize.File
}

// SeedState captures the committed market for a snapshot. It must be called
// only while no tick is in flight (the journal writer calls it from the
// commit hook, which ticks serialize); between ticks the applied bidder set
// and the committed snapshot coincide.
func (b *Broker) SeedState() SeedState {
	in, ids, epoch, err := b.Snapshot()
	st := SeedState{Epoch: epoch, Model: b.model.Name(), K: b.cfg.K}
	if err == nil && in.N() > 0 {
		if f, ferr := serialize.Encode(in); ferr == nil {
			st.Instance = f
		}
	}
	b.mu.RLock()
	st.Bidders = make([]SeedBidder, 0, len(ids))
	for _, id := range ids {
		if bd := b.bidders[id]; bd != nil {
			sb := SeedBidder{ID: id, Bid: cloneBid(bd.bid)}
			if bd.expires > 0 {
				// Seed bids re-activate at the snapshot epoch, so the lease
				// is rewritten to the epochs remaining: the restored broker
				// expires the bid at the same absolute epoch the live one
				// would have (expired bidders are already gone, so the
				// remainder is always >= 1).
				sb.Bid.LeaseEpochs = bd.expires - epoch
			}
			st.Bidders = append(st.Bidders, sb)
		}
	}
	b.mu.RUnlock()
	b.qmu.Lock()
	st.NextID = b.nextID
	b.qmu.Unlock()
	sort.Slice(st.Bidders, func(i, j int) bool { return st.Bidders[i].ID < st.Bidders[j].ID })
	return st
}

// stageReplayOp vets and converts one journaled wire op back into a pending
// mutation. Replay re-validates everything: journal records are CRC-checked,
// but a record that decodes cleanly must still not be able to drive the
// solver into undefined territory.
func (b *Broker) stageReplayOp(op spectrum.Op) (pendingOp, error) {
	if op.ID <= 0 {
		return pendingOp{}, fmt.Errorf("%w: replayed %s op without a bidder id", ErrBadBid, op.Op)
	}
	switch op.Op {
	case spectrum.OpSubmit:
		if op.Bid == nil {
			return pendingOp{}, fmt.Errorf("%w: replayed submit carries no bid", ErrBadBid)
		}
		bid := *op.Bid
		if err := b.validateBid(&bid); err != nil {
			return pendingOp{}, err
		}
		return pendingOp{kind: opSubmit, id: op.ID, bid: cloneBid(bid)}, nil
	case spectrum.OpUpdate:
		if op.Values == nil {
			return pendingOp{}, fmt.Errorf("%w: replayed update carries no values", ErrBadBid)
		}
		if err := b.validValues(*op.Values); err != nil {
			return pendingOp{}, err
		}
		return pendingOp{kind: opUpdate, id: op.ID, values: cloneValues(*op.Values)}, nil
	case spectrum.OpMove:
		if op.Bid == nil || op.Bid.Values != nil || op.Bid.XOR != nil || op.Bid.LeaseEpochs != 0 {
			return pendingOp{}, fmt.Errorf("%w: replayed move must carry geometry only", ErrBadBid)
		}
		bid := *op.Bid
		if err := b.model.Validate(&bid); err != nil {
			return pendingOp{}, err
		}
		return pendingOp{kind: opMove, id: op.ID, bid: cloneBid(bid)}, nil
	case spectrum.OpWithdraw:
		return pendingOp{kind: opWithdraw, id: op.ID}, nil
	}
	return pendingOp{}, fmt.Errorf("%w: replayed unknown op %q", ErrBadBid, op.Op)
}

// enqueueReplay stages ops onto an empty mutation queue with pinned ids.
func (b *Broker) enqueueReplay(staged []pendingOp) error {
	b.qmu.Lock()
	defer b.qmu.Unlock()
	if len(b.queue) != 0 {
		return fmt.Errorf("broker: replay with a non-empty mutation queue")
	}
	for _, p := range staged {
		if p.kind == opSubmit {
			b.queuedSub[p.id] = true
			b.pop++
			if p.id > b.nextID {
				b.nextID = p.id
			}
		}
	}
	b.queue = staged
	return nil
}

// pinNextID installs the journaled high-water id after a replayed tick.
func (b *Broker) pinNextID(nextID BidderID) error {
	b.qmu.Lock()
	defer b.qmu.Unlock()
	if nextID < b.nextID {
		return fmt.Errorf("broker: journaled next id %d below replayed high-water %d", nextID, b.nextID)
	}
	b.nextID = nextID
	return nil
}

// ReplaySeed installs a recovered full-market snapshot as the committed
// state: the seed bidders are applied as pinned-id submissions and solved
// in one tick that commits as the snapshot's epoch. Must be the first thing
// that ever happens to the broker. The committed allocation and prices are
// recomputed, not restored — by the equivalence contract they coincide with
// what the snapshotted broker was serving at that epoch.
func (b *Broker) ReplaySeed(epoch int, nextID BidderID, seeds []SeedBidder) error {
	if b.Epoch() != 0 {
		return fmt.Errorf("broker: seed replay into a broker already at epoch %d", b.Epoch())
	}
	b.mu.RLock()
	used := len(b.bidders) != 0 || b.snap != nil
	b.mu.RUnlock()
	if used {
		return fmt.Errorf("broker: seed replay into a non-empty broker")
	}
	if epoch < 1 {
		if len(seeds) > 0 {
			return fmt.Errorf("broker: snapshot with %d bidders at epoch %d", len(seeds), epoch)
		}
		return nil
	}
	staged := make([]pendingOp, 0, len(seeds))
	for i, sb := range seeds {
		if sb.ID <= 0 {
			return fmt.Errorf("%w: seed bidder with id %d", ErrBadBid, sb.ID)
		}
		if i > 0 && seeds[i-1].ID >= sb.ID {
			return fmt.Errorf("%w: seed bidder ids not strictly ascending at %d", ErrBadBid, sb.ID)
		}
		bid := cloneBid(sb.Bid)
		if err := b.validateBid(&bid); err != nil {
			return fmt.Errorf("seed bidder %d: %w", sb.ID, err)
		}
		staged = append(staged, pendingOp{kind: opSubmit, id: sb.ID, bid: bid})
	}
	b.mu.Lock()
	b.epoch = epoch - 1
	b.mu.Unlock()
	if err := b.enqueueReplay(staged); err != nil {
		return err
	}
	if rep := b.Tick(); rep.Epoch != epoch {
		return fmt.Errorf("broker: seed replay committed epoch %d, want %d", rep.Epoch, epoch)
	}
	return b.pinNextID(nextID)
}

// ReplayEpoch re-applies one journaled epoch: the ops are enqueued in
// record order with pinned submit ids and committed by one tick that must
// land exactly on the record's epoch number.
func (b *Broker) ReplayEpoch(epoch int, nextID BidderID, ops []spectrum.Op) error {
	if cur := b.Epoch(); cur != epoch-1 {
		return fmt.Errorf("broker: replay of epoch %d onto a broker at epoch %d", epoch, cur)
	}
	staged := make([]pendingOp, 0, len(ops))
	for i, op := range ops {
		p, err := b.stageReplayOp(op)
		if err != nil {
			return fmt.Errorf("replay epoch %d op %d: %w", epoch, i, err)
		}
		staged = append(staged, p)
	}
	if err := b.enqueueReplay(staged); err != nil {
		return err
	}
	if rep := b.Tick(); rep.Epoch != epoch {
		return fmt.Errorf("broker: replayed epoch committed as %d, want %d", rep.Epoch, epoch)
	}
	return b.pinNextID(nextID)
}
