package broker

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/market"
	"repro/internal/models"
	"repro/internal/valuation"
)

func newTestBroker(t testing.TB, cfg Config) *Broker {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testTrace(seed int64, epochs, k int) *market.Trace {
	return market.GenTrace(market.TraceConfig{
		Seed:         seed,
		Epochs:       epochs,
		K:            k,
		Side:         120,
		ArrivalRate:  5,
		MeanLifetime: 4,
		MaxUsers:     48,
	})
}

// traceDriver replays a trace into a broker through the shared
// market.OpsReplayer translation and the batch enqueue (the same
// trace-step→/v1/batch path E18, brokerd -selftest, and brokerload use),
// with plain additive values.
type traceDriver struct {
	t testing.TB
	b *Broker
	r *market.OpsReplayer
}

func newTraceDriver(t testing.TB, b *Broker, tr *market.Trace) *traceDriver {
	return &traceDriver{t: t, b: b, r: market.NewOpsReplayer(tr, false)}
}

// step queues the next trace epoch's departures, arrivals, and mask updates
// as one batch (without ticking); false once the trace is exhausted.
func (d *traceDriver) step() bool {
	d.t.Helper()
	ops, more, err := d.r.Step()
	if err != nil {
		d.t.Fatal(err)
	}
	results, _ := d.b.Batch(ops)
	if err := d.r.Observe(results); err != nil {
		d.t.Fatal(err)
	}
	return more
}

// Snapshot before any epoch has committed must describe the empty market,
// not crash (a GET /v1/snapshot can land before the daemon's first tick).
func TestSnapshotBeforeFirstTick(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	if _, err := b.Submit(Bid{Radius: 1, Values: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	in, ids, epoch, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 0 || len(ids) != 0 || epoch != 0 {
		t.Fatalf("pre-tick snapshot: n=%d ids=%v epoch=%d", in.N(), ids, epoch)
	}
}

func TestSubmitLifecycle(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	id, err := b.Submit(Bid{Pos: geom.Point{X: 1, Y: 1}, Radius: 5, Values: []float64{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if st := b.StatusOf(id); st != StatusPending {
		t.Fatalf("status before tick = %v, want pending", st)
	}
	rep := b.Tick()
	if rep.Active != 1 || rep.Arrivals != 1 {
		t.Fatalf("tick report %+v", rep)
	}
	if st := b.StatusOf(id); st != StatusActive {
		t.Fatalf("status after tick = %v, want active", st)
	}
	// A lone bidder wins its favorite bundle: both channels.
	got, st := b.Allocation(id)
	if st != StatusActive || got != valuation.FromChannels(0, 1) {
		t.Fatalf("allocation = %v (%v), want both channels", got, st)
	}
	if math.Abs(rep.Welfare-7) > 1e-9 {
		t.Fatalf("welfare = %g, want 7", rep.Welfare)
	}
	if err := b.Withdraw(id); err != nil {
		t.Fatal(err)
	}
	b.Tick()
	if st := b.StatusOf(id); st != StatusGone {
		t.Fatalf("status after withdraw = %v, want gone", st)
	}
	if _, st := b.Allocation(id); st != StatusGone {
		t.Fatalf("allocation status = %v, want gone", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	b := newTestBroker(t, Config{K: 2, MaxBidders: 2})
	cases := []Bid{
		{Pos: geom.Point{}, Radius: 1, Values: []float64{1}},                  // wrong arity
		{Pos: geom.Point{}, Radius: 1, Values: []float64{1, -2}},              // negative
		{Pos: geom.Point{}, Radius: 0, Values: []float64{1, 2}},               // zero radius
		{Pos: geom.Point{}, Radius: 1, Values: []float64{math.NaN(), 1}},      // NaN
		{Pos: geom.Point{X: math.Inf(1)}, Radius: 1, Values: []float64{1, 2}}, // inf pos
	}
	for i, bid := range cases {
		if _, err := b.Submit(bid); err == nil {
			t.Fatalf("case %d: bad bid accepted", i)
		}
	}
	ok := Bid{Pos: geom.Point{}, Radius: 1, Values: []float64{1, 2}}
	if _, err := b.Submit(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(ok); err != ErrFull {
		t.Fatalf("cap not enforced: %v", err)
	}
	if m := b.Metrics(); m.Rejected != 6 {
		t.Fatalf("rejected = %d, want 6", m.Rejected)
	}
	if err := b.Withdraw(999); err != ErrUnknown {
		t.Fatalf("withdraw unknown: %v", err)
	}
	if err := b.Update(999, Additive([]float64{1, 2})); err != ErrUnknown {
		t.Fatalf("update unknown: %v", err)
	}
}

func TestWithdrawPendingCancels(t *testing.T) {
	b := newTestBroker(t, Config{K: 1})
	id, err := b.Submit(Bid{Radius: 1, Values: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Withdraw(id); err != nil {
		t.Fatal(err)
	}
	rep := b.Tick()
	if rep.Active != 0 {
		t.Fatalf("cancelled submission became active: %+v", rep)
	}
	if st := b.StatusOf(id); st != StatusGone {
		t.Fatalf("status = %v, want gone", st)
	}
}

// TestAllocationFeasibleUnderChurn replays a trace with primary-user
// masking (so the Replayer also streams valuation updates, hitting both the
// warm SetObjective path and the support-shrink rebuild path) and checks
// every epoch's committed allocation against the snapshot instance.
func TestAllocationFeasibleUnderChurn(t *testing.T) {
	b := newTestBroker(t, Config{K: 3})
	tr := market.GenTrace(market.TraceConfig{
		Seed: 2, Epochs: 10, K: 3, Side: 120, ArrivalRate: 5, MeanLifetime: 4,
		PrimaryUsers: 2, PrimaryRadius: 40, PrimaryActive: 0.5, MaxUsers: 48,
	})
	d := newTraceDriver(t, b, tr)
	for e := 0; d.step(); e++ {
		rep := b.Tick()
		in, ids, _, err := b.Snapshot()
		if err != nil {
			t.Fatalf("epoch %d: snapshot: %v", e, err)
		}
		alloc := make(auction.Allocation, len(ids))
		welfare := 0.0
		for i, id := range ids {
			tb, st := b.Allocation(id)
			if st != StatusActive {
				t.Fatalf("epoch %d: active id %d has status %v", e, id, st)
			}
			alloc[i] = tb
			if tb != valuation.Empty {
				welfare += in.Bidders[i].Value(tb)
			}
		}
		if !in.Feasible(alloc) {
			t.Fatalf("epoch %d: committed allocation infeasible", e)
		}
		if math.Abs(welfare-rep.Welfare) > 1e-6*(1+math.Abs(welfare)) {
			t.Fatalf("epoch %d: reported welfare %g, recomputed %g", e, rep.Welfare, welfare)
		}
	}
}

// TestSnapshotMatchesDiskModel pins the incrementally maintained adjacency
// and ordering to the authoritative models.Disk construction.
func TestSnapshotMatchesDiskModel(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	d := newTraceDriver(t, b, testTrace(5, 8, 2))
	centersOf := func(ids []BidderID) ([]geom.Point, []float64) {
		b.mu.RLock()
		defer b.mu.RUnlock()
		centers := make([]geom.Point, len(ids))
		radii := make([]float64, len(ids))
		for i, id := range ids {
			centers[i], radii[i] = b.bidders[id].bid.Pos, b.bidders[id].bid.Radius
		}
		return centers, radii
	}
	for e := 0; d.step(); e++ {
		b.Tick()
		in, ids, _, err := b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		centers, radii := centersOf(ids)
		ref := models.Disk(centers, radii)
		n := len(ids)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if in.Conf.Binary.HasEdge(u, v) != ref.Binary.HasEdge(u, v) {
					t.Fatalf("epoch %d: edge (%d,%d) disagrees with models.Disk", e, u, v)
				}
			}
			if in.Conf.Pi.Rank[u] != ref.Pi.Rank[u] {
				t.Fatalf("epoch %d: ordering disagrees at %d", e, u)
			}
		}
	}
}

// TestUpdateWarmResolve exercises the valuation-only warm path: same
// membership, changed values must re-solve on the persistent master and
// match a cold broker fed the same state.
func TestUpdateWarmResolve(t *testing.T) {
	warm := newTestBroker(t, Config{K: 2})
	cold := newTestBroker(t, Config{K: 2, Cold: true})
	bids := []Bid{
		{Pos: geom.Point{X: 0, Y: 0}, Radius: 3, Values: []float64{5, 1}},
		{Pos: geom.Point{X: 4, Y: 0}, Radius: 3, Values: []float64{2, 6}},
		{Pos: geom.Point{X: 40, Y: 40}, Radius: 2, Values: []float64{3, 3}},
	}
	var wids, cids []BidderID
	for _, bid := range bids {
		wi, err := warm.Submit(bid)
		if err != nil {
			t.Fatal(err)
		}
		ci, err := cold.Submit(bid)
		if err != nil {
			t.Fatal(err)
		}
		wids, cids = append(wids, wi), append(cids, ci)
	}
	warm.Tick()
	cold.Tick()
	// Change bidder 0's values only: membership unchanged → warm re-solve.
	newVals := []float64{1, 9}
	if err := warm.Update(wids[0], Additive(newVals)); err != nil {
		t.Fatal(err)
	}
	if err := cold.Update(cids[0], Additive(newVals)); err != nil {
		t.Fatal(err)
	}
	wrep := warm.Tick()
	crep := cold.Tick()
	if wrep.WarmResolves != 1 || wrep.Clean != 1 || wrep.Rebuilds != 0 {
		t.Fatalf("warm tick did not use the warm path: %+v", wrep)
	}
	if crep.Rebuilds != 2 {
		t.Fatalf("cold tick should rebuild everything: %+v", crep)
	}
	for i := range wids {
		wt, _ := warm.Allocation(wids[i])
		ct, _ := cold.Allocation(cids[i])
		if wt != ct {
			t.Fatalf("bidder %d: warm %v vs cold %v", i, wt, ct)
		}
	}
	if math.Abs(wrep.Welfare-crep.Welfare) > 1e-9*(1+math.Abs(crep.Welfare)) {
		t.Fatalf("welfare warm %g vs cold %g", wrep.Welfare, crep.Welfare)
	}
}

// TestCleanComponentsPayZero: with no churn, a second tick must be all
// cache hits.
func TestCleanComponentsPayZero(t *testing.T) {
	b := newTestBroker(t, Config{K: 3})
	d := newTraceDriver(t, b, testTrace(7, 1, 3))
	d.step()
	first := b.Tick()
	if first.Components == 0 || first.Rebuilds != first.Components {
		t.Fatalf("first tick: %+v", first)
	}
	second := b.Tick()
	if second.Clean != second.Components || second.Rebuilds != 0 || second.WarmResolves != 0 {
		t.Fatalf("no-churn tick not fully cached: %+v", second)
	}
	if math.Abs(first.Welfare-second.Welfare) > 1e-12 {
		t.Fatalf("cached welfare drifted: %g vs %g", first.Welfare, second.Welfare)
	}
}

// TestEpochSurvivesFailingComponent forces one component's solve to fail —
// once as a returned convergence error (the shape a Stalled lp solve
// surfaces as), once as a panic deep inside the solver — and checks the
// containment contract: the epoch still commits, every other component is
// allocated, the daemon keeps ticking, and the failed component recovers on
// the next epoch once the fault clears.
func TestEpochSurvivesFailingComponent(t *testing.T) {
	for _, mode := range []string{"error", "panic"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			b := newTestBroker(t, Config{K: 2})
			// Two far-apart components: {0,1} conflicting, {2} alone.
			bids := []Bid{
				{Pos: geom.Point{X: 0, Y: 0}, Radius: 3, Values: []float64{5, 1}},
				{Pos: geom.Point{X: 4, Y: 0}, Radius: 3, Values: []float64{2, 6}},
				{Pos: geom.Point{X: 90, Y: 90}, Radius: 2, Values: []float64{3, 3}},
			}
			var ids []BidderID
			for _, bid := range bids {
				id, err := b.Submit(bid)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, id)
			}
			// Fail the two-member component's solve.
			solveFault = func(e *compEntry) error {
				if len(e.ids) != 2 {
					return nil
				}
				if mode == "panic" {
					panic("injected solver panic")
				}
				return fmt.Errorf("injected convergence failure")
			}
			defer func() { solveFault = nil }()

			rep := b.Tick()
			if rep.Errors != 1 {
				t.Fatalf("tick with injected fault: %+v", rep)
			}
			// The healthy singleton component committed its allocation.
			if got, st := b.Allocation(ids[2]); st != StatusActive || got != valuation.FromChannels(0, 1) {
				t.Fatalf("healthy component allocation = %v (%v)", got, st)
			}
			// The failed component's members hold nothing but stay active.
			for _, id := range ids[:2] {
				if got, st := b.Allocation(id); st != StatusActive || got != valuation.Empty {
					t.Fatalf("failed component bidder %d: %v (%v)", id, got, st)
				}
			}
			if rep.Welfare != 6 {
				t.Fatalf("welfare %g, want the healthy component's 6", rep.Welfare)
			}

			// Fault clears: the next tick retries (the errored epoch must not
			// take the idle fast path), rebuilds the evicted component, and
			// from then on matches the from-scratch reference.
			solveFault = nil
			rep = b.Tick()
			if rep.Errors != 0 || rep.Rebuilds != 1 {
				t.Fatalf("recovery tick: %+v", rep)
			}
			checkAgainstReference(t, b, 0, 0)
		})
	}
}

// TestMoveRelocatesBidder: a move must re-home the bidder in the conflict
// graph (splitting and merging components) and keep the committed allocation
// equal to the from-scratch reference.
func TestMoveRelocatesBidder(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	a, err := b.Submit(Bid{Pos: geom.Point{X: 0, Y: 0}, Radius: 3, Values: []float64{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Submit(Bid{Pos: geom.Point{X: 4, Y: 0}, Radius: 3, Values: []float64{4, 6}})
	if err != nil {
		t.Fatal(err)
	}
	rep := b.Tick()
	if rep.Components != 1 {
		t.Fatalf("conflicting bids should share a component: %+v", rep)
	}
	// Move bidder a out of range: both become singletons and win everything.
	if err := b.Move(a, Bid{Pos: geom.Point{X: 100, Y: 100}, Radius: 3}); err != nil {
		t.Fatal(err)
	}
	rep = b.Tick()
	if rep.Moves != 1 || rep.Components != 2 {
		t.Fatalf("after move: %+v", rep)
	}
	for _, id := range []BidderID{a, c} {
		if got, _ := b.Allocation(id); got != valuation.FromChannels(0, 1) {
			t.Fatalf("bidder %d after split: %v", id, got)
		}
	}
	checkAgainstReference(t, b, 0, 1)
	// Move it back: components merge again.
	if err := b.Move(a, Bid{Pos: geom.Point{X: 1, Y: 0}, Radius: 3}); err != nil {
		t.Fatal(err)
	}
	rep = b.Tick()
	if rep.Components != 1 {
		t.Fatalf("after move back: %+v", rep)
	}
	checkAgainstReference(t, b, 0, 2)
	// A move carrying values is rejected; a move of an unknown id too.
	if err := b.Move(a, Bid{Pos: geom.Point{}, Radius: 1, Values: []float64{1, 2}}); err == nil {
		t.Fatal("move with values accepted")
	}
	if err := b.Move(999, Bid{Pos: geom.Point{}, Radius: 1}); err != ErrUnknown {
		t.Fatalf("move unknown: %v", err)
	}
}

// TestMoveRewiringEdgesInvalidatesCache is the stale-cache regression: a
// position-only move that preserves a component's membership, every member's
// ordering key (radius unchanged), and all valuation versions — everything
// the component cache keys on — while rewiring the internal conflict edges
// must force a rebuild. Served Clean from the stale entry, the broker would
// commit the old component's allocation, giving the same channel to bidders
// that now conflict.
func TestMoveRewiringEdgesInvalidatesCache(t *testing.T) {
	b := newTestBroker(t, Config{K: 1})
	// A(0,0,r10)–B(12,0,r3)–C(20,0,r5): one component with edges A–B
	// (12 ≤ 13) and B–C (8 ≤ 8); A and C are independent and share the
	// single channel.
	a, err := b.Submit(Bid{Pos: geom.Point{X: 0, Y: 0}, Radius: 10, Values: []float64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Submit(Bid{Pos: geom.Point{X: 12, Y: 0}, Radius: 3, Values: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	c, err := b.Submit(Bid{Pos: geom.Point{X: 20, Y: 0}, Radius: 5, Values: []float64{4}})
	if err != nil {
		t.Fatal(err)
	}
	rep := b.Tick()
	if rep.Components != 1 {
		t.Fatalf("setup should be one component: %+v", rep)
	}
	ta, _ := b.Allocation(a)
	tc, _ := b.Allocation(c)
	if ta != valuation.FromChannels(0) || tc != valuation.FromChannels(0) {
		t.Fatalf("setup allocation: A=%v C=%v, want both on channel 0", ta, tc)
	}
	// Move C to (6,8), radius unchanged: edges become A–B and A–C (10 ≤ 15,
	// B–C is 10 > 8) — same membership, same keys, same versions, different
	// internal graph.
	if err := b.Move(c, Bid{Pos: geom.Point{X: 6, Y: 8}, Radius: 5}); err != nil {
		t.Fatal(err)
	}
	rep = b.Tick()
	if rep.Moves != 1 || rep.Components != 1 {
		t.Fatalf("after move: %+v", rep)
	}
	if rep.Clean != 0 || rep.WarmResolves != 0 || rep.Rebuilds != 1 {
		t.Fatalf("edge-rewiring move must rebuild the component, not hit the cache: %+v", rep)
	}
	ta, _ = b.Allocation(a)
	tc, _ = b.Allocation(c)
	if ta != valuation.Empty && tc != valuation.Empty {
		t.Fatalf("conflicting A and C both allocated: A=%v C=%v", ta, tc)
	}
	checkAgainstReference(t, b, 0, 1)
}

// TestMoveRewiringBridgeEdgesDistance2 is the same stale-cache scenario on
// the distance-2 backend, where a move rewires two-hop (bridge) conflict
// edges: M on a line u(0)–w(4)–v(8) (radius 2 each) sits at (12,0), so the
// conflict edges are u–w, w–v, u–v, v–M, w–M and {u,M} is the best
// independent pair. Moving M to (-4,0) keeps membership and keys but swaps
// v–M for u–M, making {v,M} the independent pair — a stale Clean hit would
// keep u and M on the shared channel.
func TestMoveRewiringBridgeEdgesDistance2(t *testing.T) {
	b := newTestBroker(t, Config{K: 1, Model: Distance2Model()})
	vals := []float64{5, 1, 4, 3} // u, w, v, M
	pos := []geom.Point{{X: 0}, {X: 4}, {X: 8}, {X: 12}}
	ids := make([]BidderID, len(vals))
	for i := range vals {
		id, err := b.Submit(Bid{Pos: pos[i], Radius: 2, Values: []float64{vals[i]}})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	rep := b.Tick()
	if rep.Components != 1 {
		t.Fatalf("setup should be one component: %+v", rep)
	}
	if tu, _ := b.Allocation(ids[0]); tu != valuation.FromChannels(0) {
		t.Fatalf("setup: u should win the channel, got %v", tu)
	}
	if err := b.Move(ids[3], Bid{Pos: geom.Point{X: -4}, Radius: 2}); err != nil {
		t.Fatal(err)
	}
	rep = b.Tick()
	if rep.Moves != 1 || rep.Components != 1 {
		t.Fatalf("after move: %+v", rep)
	}
	if rep.Clean != 0 || rep.WarmResolves != 0 || rep.Rebuilds != 1 {
		t.Fatalf("bridge-rewiring move must rebuild the component: %+v", rep)
	}
	tu, _ := b.Allocation(ids[0])
	tm, _ := b.Allocation(ids[3])
	if tu != valuation.Empty && tm != valuation.Empty {
		t.Fatalf("now-conflicting u and M both allocated: u=%v M=%v", tu, tm)
	}
	checkAgainstReference(t, b, 0, 1)
}

// TestXORBidLifecycle: an XOR bid over the wire form wins its best atom and
// updates (including a form switch) behave.
func TestXORBidLifecycle(t *testing.T) {
	b := newTestBroker(t, Config{K: 3})
	id, err := b.Submit(Bid{Pos: geom.Point{}, Radius: 2, XOR: []XORAtom{
		{Channels: []int{0, 1}, Value: 7},
		{Channels: []int{2}, Value: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rep := b.Tick()
	// A lone XOR bidder wins a bundle containing its best atom.
	got, st := b.Allocation(id)
	if st != StatusActive || got&valuation.FromChannels(0, 1) != valuation.FromChannels(0, 1) {
		t.Fatalf("XOR allocation = %v (%v)", got, st)
	}
	if rep.Welfare != 7 {
		t.Fatalf("welfare %g, want 7", rep.Welfare)
	}
	// Switch the atoms: channel 2 becomes the best.
	if err := b.Update(id, XORValues([]XORAtom{{Channels: []int{2}, Value: 9}})); err != nil {
		t.Fatal(err)
	}
	rep = b.Tick()
	if rep.Welfare != 9 {
		t.Fatalf("welfare after XOR update %g, want 9", rep.Welfare)
	}
	checkAgainstReference(t, b, 0, 0)
	// Switch form: XOR → additive.
	if err := b.Update(id, Additive([]float64{1, 1, 1})); err != nil {
		t.Fatal(err)
	}
	rep = b.Tick()
	if rep.Welfare != 3 {
		t.Fatalf("welfare after form switch %g, want 3", rep.Welfare)
	}
}

// TestSubmitValidationXOR covers the XOR arm of validValues.
func TestSubmitValidationXOR(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	bad := []Bid{
		{Radius: 1, XOR: []XORAtom{}}, // no values at all
		{Radius: 1, Values: []float64{1, 2}, XOR: []XORAtom{{Channels: []int{0}, Value: 1}}}, // both forms
		{Radius: 1, XOR: []XORAtom{{Channels: []int{}, Value: 1}}},                           // empty atom
		{Radius: 1, XOR: []XORAtom{{Channels: []int{2}, Value: 1}}},                          // channel out of range
		{Radius: 1, XOR: []XORAtom{{Channels: []int{-1}, Value: 1}}},                         // negative channel
		{Radius: 1, XOR: []XORAtom{{Channels: []int{0}, Value: -1}}},                         // negative value
		{Radius: 1, XOR: []XORAtom{{Channels: []int{0}, Value: math.NaN()}}},                 // NaN value
		{Radius: 1, XOR: []XORAtom{{Channels: []int{0}, Value: math.Inf(1)}}},                // Inf value
	}
	for i, bid := range bad {
		if _, err := b.Submit(bid); err == nil {
			t.Fatalf("case %d: bad XOR bid accepted", i)
		}
	}
	atoms := make([]XORAtom, maxXORAtoms+1)
	for i := range atoms {
		atoms[i] = XORAtom{Channels: []int{0}, Value: 1}
	}
	if _, err := b.Submit(Bid{Radius: 1, XOR: atoms}); err == nil {
		t.Fatal("oversized atom list accepted")
	}
	if _, err := b.Submit(Bid{Radius: 1, XOR: atoms[:1]}); err != nil {
		t.Fatal(err)
	}
}
