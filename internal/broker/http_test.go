package broker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/auction"
	"repro/internal/geom"
	"repro/internal/serialize"
	"repro/pkg/spectrum"
)

func newTestServer(t *testing.T, cfg Config) (*Broker, *httptest.Server) {
	t.Helper()
	b := newTestBroker(t, cfg)
	srv := httptest.NewServer(NewHandler(b))
	t.Cleanup(srv.Close)
	return b, srv
}

func doJSON(t *testing.T, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp
}

func TestHTTPSubmitQueryWithdrawRoundTrip(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 2})

	var acc spectrum.Accepted
	resp := doJSON(t, http.MethodPost, srv.URL+"/v1/bids",
		Bid{Radius: 4, Values: []float64{5, 2}}, &acc)
	if resp.StatusCode != http.StatusAccepted || acc.ID == 0 || acc.Status != StatusPending {
		t.Fatalf("submit: %d %+v", resp.StatusCode, acc)
	}

	b.Tick()

	var state spectrum.BidState
	url := fmt.Sprintf("%s/v1/bids/%d", srv.URL, acc.ID)
	if resp := doJSON(t, http.MethodGet, url, nil, &state); resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d", resp.StatusCode)
	}
	if state.Status != StatusActive || len(state.Channels) != 2 || state.Value != 7 {
		t.Fatalf("state after tick: %+v", state)
	}

	// Update, tick, re-query.
	if resp := doJSON(t, http.MethodPut, url, map[string]any{"values": []float64{0, 9}}, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("update: %d", resp.StatusCode)
	}
	b.Tick()
	doJSON(t, http.MethodGet, url, nil, &state)
	// Channel 0 is now worth 0, so any optimal grant has value 9 and
	// includes channel 1 (whether or not the worthless channel rides along
	// depends on which degenerate LP vertex the warm path kept).
	hasCh1 := false
	for _, c := range state.Channels {
		hasCh1 = hasCh1 || c == 1
	}
	if state.Value != 9 || !hasCh1 {
		t.Fatalf("state after update: %+v", state)
	}

	// Allocation endpoint sees the single winner.
	var allocBody struct {
		Epoch   int               `json:"epoch"`
		Welfare float64           `json:"welfare"`
		Winners []spectrum.Winner `json:"winners"`
	}
	doJSON(t, http.MethodGet, srv.URL+"/v1/allocation", nil, &allocBody)
	if len(allocBody.Winners) != 1 || allocBody.Winners[0].ID != acc.ID || allocBody.Welfare != 9 {
		t.Fatalf("allocation: %+v", allocBody)
	}

	// Withdraw, tick, gone.
	if resp := doJSON(t, http.MethodDelete, url, nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("withdraw: %d", resp.StatusCode)
	}
	b.Tick()
	var errBody map[string]string
	if resp := doJSON(t, http.MethodGet, url, nil, &state); resp.StatusCode != http.StatusOK || state.Status != StatusGone {
		t.Fatalf("after withdraw: %d %+v", resp.StatusCode, state)
	}
	_ = errBody
}

func TestHTTPRejectsMalformed(t *testing.T) {
	_, srv := newTestServer(t, Config{K: 2})
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/v1/bids", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed json: %d", code)
	}
	if code := post(`{"radius":1,"values":[1,2],"bogus":true}`); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", code)
	}
	if code := post(`{"radius":1,"values":[1]}`); code != http.StatusBadRequest {
		t.Fatalf("wrong arity: %d", code)
	}
	// Wrong methods.
	if resp := doJSON(t, http.MethodGet, srv.URL+"/v1/bids", nil, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/bids: %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodPost, srv.URL+"/v1/allocation", nil, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/allocation: %d", resp.StatusCode)
	}
	// Bad and unknown ids.
	if resp := doJSON(t, http.MethodGet, srv.URL+"/v1/bids/abc", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodGet, srv.URL+"/v1/bids/999", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %d", resp.StatusCode)
	}
	if resp := doJSON(t, http.MethodDelete, srv.URL+"/v1/bids/999", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("withdraw unknown id: %d", resp.StatusCode)
	}
}

func TestHTTPPricesGatedByConfig(t *testing.T) {
	_, srvOff := newTestServer(t, Config{K: 2})
	if resp := doJSON(t, http.MethodGet, srvOff.URL+"/v1/prices", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("prices on non-pricing broker: %d", resp.StatusCode)
	}
	b, srvOn := newTestServer(t, Config{K: 2, Prices: true})
	if _, err := b.Submit(Bid{Radius: 2, Values: []float64{4, 4}}); err != nil {
		t.Fatal(err)
	}
	b.Tick()
	var body struct {
		Epoch  int                `json:"epoch"`
		Prices map[string]float64 `json:"prices"`
	}
	if resp := doJSON(t, http.MethodGet, srvOn.URL+"/v1/prices", nil, &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("prices: %d", resp.StatusCode)
	}
	// A lone bidder has no competition: VCG price 0, so the map is empty.
	if len(body.Prices) != 0 {
		t.Fatalf("lone bidder priced: %+v", body.Prices)
	}
}

func TestHTTPSnapshotDecodes(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 2})
	for i := 0; i < 5; i++ {
		if _, err := b.Submit(Bid{Pos: randPoint(int64(i)), Radius: 5, Values: []float64{1 + float64(i), 2}}); err != nil {
			t.Fatal(err)
		}
	}
	b.Tick()
	var body snapshotBody
	if resp := doJSON(t, http.MethodGet, srv.URL+"/v1/snapshot", nil, &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d", resp.StatusCode)
	}
	if len(body.IDs) != 5 {
		t.Fatalf("snapshot ids: %v", body.IDs)
	}
	in, err := serialize.Decode(body.File)
	if err != nil {
		t.Fatalf("snapshot does not round-trip through serialize: %v", err)
	}
	if in.N() != 5 || in.K != 2 {
		t.Fatalf("decoded instance n=%d k=%d", in.N(), in.K)
	}
}

func randPoint(seed int64) geom.Point {
	rng := rand.New(rand.NewSource(seed))
	return geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
}

// TestHTTPConcurrentSubmitters hammers the API from many goroutines while
// the broker ticks — the -race CI step runs this.
func TestHTTPConcurrentSubmitters(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 2, MaxBidders: 4096})
	stop := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.Tick()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []BidderID
			for i := 0; i < 25; i++ {
				var acc spectrum.Accepted
				resp := doJSON(t, http.MethodPost, srv.URL+"/v1/bids", Bid{
					Pos:    geom.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200},
					Radius: 2 + rng.Float64()*6,
					Values: []float64{1 + rng.Float64()*9, 1 + rng.Float64()*9},
				}, &acc)
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("submit: %d", resp.StatusCode)
					return
				}
				mine = append(mine, acc.ID)
				if len(mine) > 3 && rng.Float64() < 0.4 {
					victim := mine[rng.Intn(len(mine))]
					doJSON(t, http.MethodDelete, fmt.Sprintf("%s/v1/bids/%d", srv.URL, victim), nil, nil)
				}
				doJSON(t, http.MethodGet, srv.URL+"/v1/allocation", nil, nil)
				doJSON(t, http.MethodGet, srv.URL+"/v1/metrics", nil, nil)
			}
		}()
	}
	wg.Wait()
	close(stop)
	tickWG.Wait()
	b.Tick()

	// Post-storm sanity: committed allocation is feasible.
	in, ids, _, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	alloc := make(auction.Allocation, len(ids))
	for i, id := range ids {
		alloc[i], _ = b.Allocation(id)
	}
	if !in.Feasible(alloc) {
		t.Fatal("allocation infeasible after concurrent storm")
	}
}

// TestHTTPRejectsOversizedBody: a body over the MaxBytesReader limit is a
// 413, not a generic 400 — the client must learn that shrinking the payload,
// not fixing its syntax, is the cure.
func TestHTTPRejectsOversizedBody(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 2})
	big := bytes.Repeat([]byte("9"), maxBodyBytes+64)
	body := append([]byte(`{"radius":1,"values":[1,`), big...)
	body = append(body, []byte(`]}`)...)
	resp, err := http.Post(srv.URL+"/v1/bids", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: %d, want 413", resp.StatusCode)
	}
	// Same contract on the update path.
	id, err := b.Submit(Bid{Radius: 1, Values: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	b.Tick()
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/v1/bids/%d", srv.URL, id), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized update: %d, want 413", resp.StatusCode)
	}
}

// TestHTTPRejectsTrailingGarbage: trailing tokens after the JSON value are a
// 400 — a concatenated second document must not be silently swallowed.
func TestHTTPRejectsTrailingGarbage(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 2})
	post := func(body string) int {
		resp, err := http.Post(srv.URL+"/v1/bids", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, body := range []string{
		`{"radius":1,"values":[1,2]}{"radius":2,"values":[3,4]}`,
		`{"radius":1,"values":[1,2]} trailing`,
		`{"radius":1,"values":[1,2]}]`,
	} {
		if code := post(body); code != http.StatusBadRequest {
			t.Fatalf("trailing garbage %q: %d, want 400", body, code)
		}
	}
	// Trailing whitespace and a trailing newline remain fine.
	if code := post(`{"radius":1,"values":[1,2]}` + "\n  \t"); code != http.StatusAccepted {
		t.Fatalf("trailing whitespace rejected: %d", code)
	}
	// Update path: same rejection.
	id, err := b.Submit(Bid{Radius: 1, Values: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	b.Tick()
	req, err := http.NewRequest(http.MethodPut, fmt.Sprintf("%s/v1/bids/%d", srv.URL, id),
		bytes.NewBufferString(`{"values":[2,3]}[]`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("trailing garbage on update: %d, want 400", resp.StatusCode)
	}
}

// TestHTTPXORAndLinkBids drives the new wire schema end to end: an XOR bid
// on a disk broker and a link bid on a protocol broker, both through real
// HTTP, with an XOR update on top.
func TestHTTPXORAndLinkBids(t *testing.T) {
	// XOR bid on the default disk backend.
	b, srv := newTestServer(t, Config{K: 3})
	var acc spectrum.Accepted
	resp := doJSON(t, http.MethodPost, srv.URL+"/v1/bids", map[string]any{
		"pos": map[string]float64{"x": 5, "y": 5}, "radius": 2,
		"xor": []map[string]any{
			{"channels": []int{0, 1}, "value": 7},
			{"channels": []int{2}, "value": 4},
		},
	}, &acc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("XOR submit: %d", resp.StatusCode)
	}
	b.Tick()
	var state spectrum.BidState
	url := fmt.Sprintf("%s/v1/bids/%d", srv.URL, acc.ID)
	doJSON(t, http.MethodGet, url, nil, &state)
	if state.Status != StatusActive || state.Value != 7 {
		t.Fatalf("XOR state: %+v", state)
	}
	// XOR update over the wire.
	if resp := doJSON(t, http.MethodPut, url, map[string]any{
		"xor": []map[string]any{{"channels": []int{2}, "value": 9}},
	}, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("XOR update: %d", resp.StatusCode)
	}
	b.Tick()
	doJSON(t, http.MethodGet, url, nil, &state)
	if state.Value != 9 {
		t.Fatalf("XOR state after update: %+v", state)
	}
	// A disk bid must not carry a link; a disk broker rejects link geometry.
	if resp := doJSON(t, http.MethodPost, srv.URL+"/v1/bids", map[string]any{
		"link":   map[string]any{"sender": map[string]float64{"x": 0, "y": 0}, "receiver": map[string]float64{"x": 1, "y": 0}},
		"values": []float64{1, 2, 3},
	}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("link bid on disk broker: %d", resp.StatusCode)
	}

	// Link bid on a protocol broker.
	pb, psrv := newTestServer(t, Config{K: 2, Model: mustModel(t, "protocol")})
	resp = doJSON(t, http.MethodPost, psrv.URL+"/v1/bids", map[string]any{
		"link":   map[string]any{"sender": map[string]float64{"x": 0, "y": 0}, "receiver": map[string]float64{"x": 3, "y": 4}},
		"values": []float64{6, 2},
	}, &acc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("link submit: %d", resp.StatusCode)
	}
	pb.Tick()
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/bids/%d", psrv.URL, acc.ID), nil, &state)
	if state.Status != StatusActive || state.Value != 8 {
		t.Fatalf("link state: %+v", state)
	}
	// A disk bid on a link broker is rejected.
	if resp := doJSON(t, http.MethodPost, psrv.URL+"/v1/bids",
		Bid{Radius: 2, Values: []float64{1, 1}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("disk bid on protocol broker: %d", resp.StatusCode)
	}
}

// TestHTTPMethodNotAllowedTable: every endpoint answers an unsupported
// method with the one structured 405 — a JSON error body plus an Allow
// header — under both the /v1 prefix and the legacy unversioned alias,
// instead of falling through inconsistently per endpoint.
func TestHTTPMethodNotAllowedTable(t *testing.T) {
	_, srv := newTestServer(t, Config{K: 2})
	cases := []struct{ path, method, allow string }{
		{"/bids", http.MethodGet, "POST"},
		{"/bids", http.MethodDelete, "POST"},
		{"/bids/1", http.MethodPost, "DELETE, GET, PATCH, PUT"},
		{"/bids/1/move", http.MethodGet, "POST"},
		{"/bids/1/move", http.MethodDelete, "POST"},
		{"/batch", http.MethodGet, "POST"},
		{"/watch", http.MethodPost, "GET"},
		{"/allocation", http.MethodPost, "GET"},
		{"/prices", http.MethodDelete, "GET"},
		{"/snapshot", http.MethodPut, "GET"},
		{"/metrics", http.MethodPost, "GET"},
	}
	check := func(t *testing.T, url, method, allow string) {
		t.Helper()
		req, err := http.NewRequest(method, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: %d, want 405", method, url, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != allow {
			t.Fatalf("%s %s: Allow %q, want %q", method, url, got, allow)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s %s: 405 body is not JSON: %v", method, url, err)
		}
		if body["error"] == "" {
			t.Fatalf("%s %s: 405 body has no error message: %v", method, url, body)
		}
	}
	for _, prefix := range []string{"/v1", ""} {
		for _, c := range cases {
			check(t, srv.URL+prefix+c.path, c.method, c.allow)
		}
	}
	check(t, srv.URL+"/healthz", http.MethodPost, "GET")
}

// TestHTTPLegacyAliases: the unversioned paths remain thin aliases onto the
// /v1 surface — a bid submitted via POST /bids is the same bidder /v1 sees.
func TestHTTPLegacyAliases(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 2})
	var acc spectrum.Accepted
	if resp := doJSON(t, http.MethodPost, srv.URL+"/bids",
		Bid{Radius: 2, Values: []float64{3, 4}}, &acc); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy submit: %d", resp.StatusCode)
	}
	b.Tick()
	var state spectrum.BidState
	doJSON(t, http.MethodGet, fmt.Sprintf("%s/v1/bids/%d", srv.URL, acc.ID), nil, &state)
	if state.Status != StatusActive || state.Value != 7 {
		t.Fatalf("v1 view of legacy submit: %+v", state)
	}
	var alloc spectrum.Allocation
	doJSON(t, http.MethodGet, srv.URL+"/allocation", nil, &alloc)
	if len(alloc.Winners) != 1 || alloc.Winners[0].ID != acc.ID {
		t.Fatalf("legacy allocation: %+v", alloc)
	}
}
