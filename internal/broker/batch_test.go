package broker

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/geom"
	"repro/internal/valuation"
	"repro/pkg/spectrum"
)

func submitOp(bid Bid) spectrum.Op { return spectrum.Op{Op: spectrum.OpSubmit, Bid: &bid} }

// TestBatchPartialFailure pins the batch contract: items are validated
// independently and applied in order, so an invalid item mid-list is
// reported in its slot while everything before AND after it still enqueues.
func TestBatchPartialFailure(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	results, epoch := b.Batch([]spectrum.Op{
		submitOp(Bid{Pos: geom.Point{X: 0, Y: 0}, Radius: 2, Values: []float64{5, 1}}),
		submitOp(Bid{Pos: geom.Point{X: 50, Y: 50}, Radius: 2, Values: []float64{2, 6}}),
		submitOp(Bid{Radius: 2, Values: []float64{1}}),                                  // wrong arity → 400
		{Op: spectrum.OpUpdate, ID: 999},                                                // no values → 400
		{Op: spectrum.OpWithdraw, ID: 999},                                              // unknown id → 404
		{Op: "frobnicate"},                                                              // unknown op → 400
		submitOp(Bid{Pos: geom.Point{X: 90, Y: 0}, Radius: 2, Values: []float64{3, 3}}), // still lands
	})
	if epoch != 0 {
		t.Fatalf("epoch = %d, want 0 before any tick", epoch)
	}
	wantCodes := []int{202, 202, 400, 400, 404, 400, 202}
	for i, r := range results {
		if r.Code != wantCodes[i] {
			t.Fatalf("item %d: code %d (%s), want %d", i, r.Code, r.Error, wantCodes[i])
		}
		if r.OK() != (wantCodes[i] == 202) {
			t.Fatalf("item %d: OK()=%v for code %d", i, r.OK(), r.Code)
		}
	}
	if results[0].ID == 0 || results[1].ID == 0 || results[6].ID == 0 {
		t.Fatalf("accepted submits missing ids: %+v", results)
	}
	if results[0].Status != StatusPending {
		t.Fatalf("accepted submit status %v, want pending", results[0].Status)
	}
	rep := b.Tick()
	if rep.Arrivals != 3 || rep.Active != 3 {
		t.Fatalf("tick after partial batch: %+v", rep)
	}
	if m := b.Metrics(); m.Rejected != 4 {
		t.Fatalf("rejected = %d, want 4", m.Rejected)
	}
}

// TestBatchOrderingWithinRequest: ops referencing ids issued earlier in the
// same batch work (submit → update → withdraw of a fresh id in one request),
// because the queue is appended in list order under one lock.
func TestBatchOrderingWithinRequest(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	first, _ := b.Batch([]spectrum.Op{
		submitOp(Bid{Radius: 2, Values: []float64{5, 1}}),
	})
	id := first[0].ID
	v := Additive([]float64{1, 9})
	results, _ := b.Batch([]spectrum.Op{
		{Op: spectrum.OpUpdate, ID: id, Values: &v},
		{Op: spectrum.OpWithdraw, ID: id},
	})
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("item %d rejected: %+v", i, r)
		}
	}
	if results[1].Status != StatusGone {
		t.Fatalf("withdraw result status %v, want gone", results[1].Status)
	}
	rep := b.Tick()
	if rep.Active != 0 {
		t.Fatalf("update+withdraw batch left bidders: %+v", rep)
	}
}

// TestBatchIdempotencyReplay: replaying ops whose keys were already
// accepted returns the stored results (same ids, Replayed set) without
// enqueuing anything again.
func TestBatchIdempotencyReplay(t *testing.T) {
	b := newTestBroker(t, Config{K: 2})
	ops := []spectrum.Op{
		{Op: spectrum.OpSubmit, Key: "alice-1", Bid: &Bid{Radius: 2, Values: []float64{5, 1}}},
		{Op: spectrum.OpSubmit, Key: "bob-1", Bid: &Bid{Pos: geom.Point{X: 80}, Radius: 2, Values: []float64{2, 6}}},
	}
	first, _ := b.Batch(ops)
	if !first[0].OK() || !first[1].OK() {
		t.Fatalf("first batch rejected: %+v", first)
	}
	replay, _ := b.Batch(ops)
	for i := range replay {
		if !replay[i].OK() || !replay[i].Replayed {
			t.Fatalf("replayed item %d not served from the key store: %+v", i, replay[i])
		}
		if replay[i].ID != first[i].ID {
			t.Fatalf("replayed item %d id %d != original %d", i, replay[i].ID, first[i].ID)
		}
	}
	rep := b.Tick()
	if rep.Arrivals != 2 || rep.Active != 2 {
		t.Fatalf("replayed batch double-enqueued: %+v", rep)
	}
	if m := b.Metrics(); m.Submitted != 2 {
		t.Fatalf("submitted = %d, want 2", m.Submitted)
	}
	// A key seen on a REJECTED op is not recorded: the fixed op retries.
	bad := []spectrum.Op{{Op: spectrum.OpSubmit, Key: "carol-1", Bid: &Bid{Radius: 2, Values: []float64{1}}}}
	if res, _ := b.Batch(bad); res[0].OK() {
		t.Fatalf("invalid op accepted: %+v", res[0])
	}
	good := []spectrum.Op{{Op: spectrum.OpSubmit, Key: "carol-1", Bid: &Bid{Pos: geom.Point{X: 40}, Radius: 2, Values: []float64{1, 1}}}}
	if res, _ := b.Batch(good); !res[0].OK() || res[0].Replayed {
		t.Fatalf("retried key after rejection: %+v", res[0])
	}
}

// TestBatchIdempotencyEviction: the key store is FIFO-bounded, so a key
// older than maxIdemKeys replays as a fresh op.
func TestBatchIdempotencyEviction(t *testing.T) {
	b := newTestBroker(t, Config{K: 1, MaxBidders: 3 * maxIdemKeys})
	old := []spectrum.Op{{Op: spectrum.OpSubmit, Key: "old", Bid: &Bid{Radius: 1, Values: []float64{1}}}}
	b.Batch(old)
	for i := 0; i < maxIdemKeys; i++ {
		b.Batch([]spectrum.Op{{
			Op: spectrum.OpSubmit, Key: fmt.Sprintf("filler-%d", i),
			Bid: &Bid{Radius: 1, Values: []float64{1}},
		}})
	}
	res, _ := b.Batch(old)
	if res[0].Replayed {
		t.Fatalf("evicted key still replayed: %+v", res[0])
	}
}

// TestBatchCapacity: submits beyond MaxBidders inside one batch are
// rejected per item with the market-full code, not by failing the request.
func TestBatchCapacity(t *testing.T) {
	b := newTestBroker(t, Config{K: 1, MaxBidders: 2})
	results, _ := b.Batch([]spectrum.Op{
		submitOp(Bid{Radius: 1, Values: []float64{1}}),
		submitOp(Bid{Radius: 1, Values: []float64{2}}),
		submitOp(Bid{Radius: 1, Values: []float64{3}}),
	})
	if !results[0].OK() || !results[1].OK() {
		t.Fatalf("in-cap submits rejected: %+v", results)
	}
	if results[2].Code != 429 {
		t.Fatalf("over-cap submit code %d, want 429", results[2].Code)
	}
}

// TestHTTPBatchEndpoint drives POST /v1/batch end to end: mixed results,
// the documented 200-with-per-item-errors shape, and a move op.
func TestHTTPBatchEndpoint(t *testing.T) {
	b, srv := newTestServer(t, Config{K: 2})
	var resp spectrum.BatchResponse
	hr := doJSON(t, http.MethodPost, srv.URL+"/v1/batch", spectrum.BatchRequest{Ops: []spectrum.Op{
		submitOp(Bid{Pos: geom.Point{X: 0}, Radius: 3, Values: []float64{5, 5}}),
		submitOp(Bid{Pos: geom.Point{X: 4}, Radius: 3, Values: []float64{4, 6}}),
		submitOp(Bid{Radius: 3, Values: []float64{1, 2, 3}}), // wrong arity
	}}, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", hr.StatusCode)
	}
	if len(resp.Results) != 3 || !resp.Results[0].OK() || !resp.Results[1].OK() || resp.Results[2].Code != 400 {
		t.Fatalf("batch results: %+v", resp.Results)
	}
	b.Tick()
	// Move the first bidder away via a batch op; both become singletons.
	moveBid := Bid{Pos: geom.Point{X: 100, Y: 100}, Radius: 3}
	var resp2 spectrum.BatchResponse
	doJSON(t, http.MethodPost, srv.URL+"/v1/batch", spectrum.BatchRequest{Ops: []spectrum.Op{
		{Op: spectrum.OpMove, ID: resp.Results[0].ID, Bid: &moveBid},
	}}, &resp2)
	if !resp2.Results[0].OK() {
		t.Fatalf("move op: %+v", resp2.Results[0])
	}
	rep := b.Tick()
	if rep.Moves != 1 || rep.Components != 2 {
		t.Fatalf("after batched move: %+v", rep)
	}
	for _, r := range resp.Results[:2] {
		if got, _ := b.Allocation(r.ID); got != valuation.FromChannels(0, 1) {
			t.Fatalf("bidder %d after split: %v", r.ID, got)
		}
	}
	checkAgainstReference(t, b, 0, 2)
}

// TestHTTPBatchOversized: an op list over maxBatchOps is a whole-request
// 413 (shrink the batch), and an oversized body keeps its 413 too.
func TestHTTPBatchOversized(t *testing.T) {
	_, srv := newTestServer(t, Config{K: 1})
	ops := make([]spectrum.Op, maxBatchOps+1)
	for i := range ops {
		ops[i] = submitOp(Bid{Radius: 1, Values: []float64{1}})
	}
	raw, err := json.Marshal(spectrum.BatchRequest{Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: %d, want 413", resp.StatusCode)
	}
	big := append([]byte(`{"ops":[{"op":"submit","key":"`), bytes.Repeat([]byte("x"), maxBodyBytes+64)...)
	big = append(big, []byte(`"}]}`)...)
	resp, err = http.Post(srv.URL+"/v1/batch", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch body: %d, want 413", resp.StatusCode)
	}
}

// TestBatchMatchesSingleOps: the batch enqueue and the single-mutation
// methods are two doors into the same queue — the same mutations issued
// either way commit identical allocations.
func TestBatchMatchesSingleOps(t *testing.T) {
	single := newTestBroker(t, Config{K: 2})
	batched := newTestBroker(t, Config{K: 2})
	bids := []Bid{
		{Pos: geom.Point{X: 0}, Radius: 3, Values: []float64{5, 1}},
		{Pos: geom.Point{X: 4}, Radius: 3, Values: []float64{2, 6}},
		{Pos: geom.Point{X: 90}, Radius: 2, Values: []float64{3, 3}},
	}
	var sids []BidderID
	var ops []spectrum.Op
	for _, bid := range bids {
		id, err := single.Submit(bid)
		if err != nil {
			t.Fatal(err)
		}
		sids = append(sids, id)
		ops = append(ops, submitOp(bid))
	}
	bres, _ := batched.Batch(ops)
	srep := single.Tick()
	brep := batched.Tick()
	if srep.Welfare != brep.Welfare {
		t.Fatalf("welfare single %g vs batched %g", srep.Welfare, brep.Welfare)
	}
	for i := range sids {
		st, _ := single.Allocation(sids[i])
		bt, _ := batched.Allocation(bres[i].ID)
		if st != bt {
			t.Fatalf("bidder %d: single %v vs batched %v", i, st, bt)
		}
	}
}
