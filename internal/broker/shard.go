package broker

import (
	"container/list"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/auction"
	"repro/internal/graph"
	"repro/internal/mechanism"
	"repro/internal/models"
	"repro/internal/valuation"
)

// poolCap bounds the per-bidder bundle pool used to seed rebuilt masters.
const poolCap = 24

// compEntry is the cached state of one conflict-graph component: its
// sub-instance, the persistent warm-started master, the LP optimum, and the
// two rounded candidate allocations (one per half of the size
// decomposition, in the component's local vertex numbering).
type compEntry struct {
	key      string
	ids      []BidderID // members in π order; local vertex v is ids[v]
	versions []int
	inst     *auction.Instance
	master   *auction.MasterLP
	sol      *auction.LPSolution
	halves   [2]auction.Allocation
	iters    int
	payments []float64
	// elem is the entry's node in the broker's LRU list (nil until first
	// committed); lastEpoch is the epoch the entry last served in. A revived
	// entry (lastEpoch behind the current epoch) may be reused clean — equal
	// versions pin bit-identical valuations — but never warm re-solved: the
	// members' forceRebuild flags were consumed in epochs this entry sat out,
	// so its persistent master may carry structurally poisoned columns.
	elem      *list.Element
	lastEpoch int
}

type jobKind int

const (
	jobRebuild jobKind = iota
	jobWarm
)

// solveJob is one dirty component to re-solve this epoch.
type solveJob struct {
	entry *compEntry
	kind  jobKind
	// seed columns for a rebuilt master (nil in Cold mode).
	seed []auction.Column
	// newInst/newVals for a warm re-solve on the persistent master.
	newInst *auction.Instance
	newVals []valuation.Valuation
	err     error
}

// epochPlan is the outcome of partitioning: the component entries in
// deterministic (earliest-π-member) order, the subset needing solves, and
// the global snapshot the epoch was planned from (committed alongside the
// allocation so Snapshot always describes the same epoch queries serve).
type epochPlan struct {
	state   *globalState
	entries []*compEntry
	jobs    []*solveJob
	clean   int
	warm    int
}

// compKey names a component for the solve cache: the member ids in π order,
// plus a fingerprint of the component's internal edge set in local (π-order)
// numbering. The solved LP and its rounded candidates depend on exactly
// three inputs — membership-with-ordering, conflict edges, and valuations —
// and the first two are pinned by this key (valuations by the separate
// version vector), so the cache is self-validating: a position-only move
// that rewires conflict edges while preserving membership, ordering keys,
// and valuation versions changes the fingerprint and misses the cache, with
// no per-mutation invalidation discipline to forget. The fingerprint is a
// 64-bit FNV-1a over the sorted local edge list (collisions are possible in
// principle but need an adversarial 2^-64 event within one id list).
func compKey(ids []BidderID, edges [][2]int) string {
	buf := make([]byte, 0, 8*len(ids)+17)
	for i, id := range ids {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(id), 10)
	}
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(x int) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(x >> s))
			h *= fnvPrime
		}
	}
	for _, e := range edges {
		mix(e[0])
		mix(e[1])
	}
	buf = append(buf, '#')
	buf = strconv.AppendUint(buf, h, 16)
	return string(buf)
}

// globalState is the per-tick snapshot of the active market: ids ascending,
// the radius ordering over them, the conflict graph, and the valuation
// profile, all in local (id-ascending) numbering. The valuations are the
// immutable *Additive objects current at build time (updates replace the
// pointer), so a retained globalState stays internally consistent.
type globalState struct {
	ids  []BidderID
	idx  map[BidderID]int
	pi   graph.Ordering
	g    *graph.Graph
	vals []valuation.Valuation
}

// buildGlobal assembles the snapshot from the incrementally maintained
// adjacency. Caller holds at least mu.RLock.
func (b *Broker) buildGlobal() *globalState {
	ids := b.activeIDs()
	n := len(ids)
	s := &globalState{ids: ids, idx: make(map[BidderID]int, n)}
	for i, id := range ids {
		s.idx[id] = i
	}
	// Ascending model key with index tie-break — the ordering the conflict
	// model certifies its ρ bound with (decreasing radius for disk models,
	// increasing length for link models), restricted to the live bidders.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, c int) bool {
		ka, kc := b.bidders[ids[perm[a]]].key, b.bidders[ids[perm[c]]].key
		if ka != kc {
			return ka < kc
		}
		return perm[a] < perm[c]
	})
	s.pi = graph.NewOrdering(perm)
	s.g = graph.New(n)
	s.vals = make([]valuation.Valuation, n)
	for i, id := range ids {
		s.vals[i] = b.bidders[id].val
		// Insert adjacency in ascending neighbor order: graph.Graph keeps
		// per-vertex neighbor lists in insertion order, so ranging the nbrs
		// map directly would leak map order into the conflict structure.
		var js []int
		for nid := range b.bidders[id].nbrs {
			if j := s.idx[nid]; j > i {
				js = append(js, j)
			}
		}
		sort.Ints(js)
		for _, j := range js {
			s.g.AddEdge(i, j)
		}
	}
	return s
}

// subConflict builds the conflict structure of one component from its
// internal edge list in local (π-order) numbering — the same list the cache
// fingerprint hashes, so the key and the solved conflict graph cannot
// drift. The members are in π order, so the identity ordering over the
// sub-instance is exactly the restriction of π and inherits the model's
// certificate.
func subConflict(m int, edges [][2]int, rho float64, model string) *models.Conflict {
	g := graph.New(m)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return &models.Conflict{
		W:        graph.FromUnweighted(g),
		Binary:   g,
		Pi:       graph.IdentityOrdering(m),
		RhoBound: rho,
		Model:    model,
	}
}

// planEpoch partitions the market into components and decides, per
// component, between cache reuse, a warm re-solve on the persistent master,
// and a pool-seeded rebuild. Caller holds mu.Lock.
func (b *Broker) planEpoch() *epochPlan {
	s := b.buildGlobal()
	plan := &epochPlan{state: s}
	if len(s.ids) == 0 {
		return plan
	}
	for _, members := range s.g.ComponentsOrdered(s.pi) {
		ids := make([]BidderID, len(members))
		versions := make([]int, len(members))
		vals := make([]valuation.Valuation, len(members))
		sub := make(map[int]int, len(members))
		for vi, gi := range members {
			bd := b.bidders[s.ids[gi]]
			ids[vi] = bd.id
			versions[vi] = bd.version
			vals[vi] = s.vals[gi]
			sub[gi] = vi
		}
		// The component's internal edges in sorted local order — the
		// fingerprint half of the cache key.
		var edges [][2]int
		for vi, gi := range members {
			var nbrs []int
			for _, gj := range s.g.Neighbors(gi) {
				if vj, ok := sub[gj]; ok && vj > vi {
					nbrs = append(nbrs, vj)
				}
			}
			sort.Ints(nbrs)
			for _, vj := range nbrs {
				edges = append(edges, [2]int{vi, vj})
			}
		}
		// A structural valuation change — an additive support shrink (some
		// channel's value dropped to zero) or a changed XOR atom set —
		// poisons the persistent master: its pooled columns may carry
		// bundles a fresh demand oracle would never produce, creating
		// degenerate optima whose rounding diverges from the from-scratch
		// path. Such components rebuild.
		rebuild := false
		for _, gi := range members {
			bd := b.bidders[s.ids[gi]]
			rebuild = rebuild || bd.forceRebuild
			bd.forceRebuild = false
		}
		key := compKey(ids, edges)
		if e, ok := b.comps[key]; ok && !b.cfg.Cold && !rebuild {
			if sameVersions(e.versions, versions) {
				plan.entries = append(plan.entries, e)
				plan.clean++
				continue
			}
			if e.lastEpoch == b.lastPlan {
				// Same membership, moved valuations, and the entry served
				// last epoch: warm re-solve in place — the persistent master
				// reprices its column pool and restarts simplex from the
				// previous optimal basis.
				e.versions = versions
				plan.entries = append(plan.entries, e)
				plan.jobs = append(plan.jobs, &solveJob{
					entry:   e,
					kind:    jobWarm,
					newInst: e.inst.WithBidders(vals),
					newVals: vals,
				})
				plan.warm++
				continue
			}
			// Revived from deeper in the LRU with moved valuations: fall
			// through to a rebuild (see the compEntry.lastEpoch comment).
		}
		// Membership changed (or Cold, or a structural valuation change):
		// fresh conflict structure and master, seeded with the bundles its
		// members generated in earlier epochs. Seeds are restricted to what
		// the member's current demand oracle could itself produce — additive
		// bundles stripped to the support (exact: the dropped channels are
		// worth zero), XOR bundles kept only if they are a current positive
		// atom — so the seeded master explores the same column universe as
		// the cold reference.
		inst, err := auction.NewInstance(subConflict(len(members), edges, b.model.RhoBound(), b.model.Name()), b.cfg.K, vals)
		e := &compEntry{key: key, ids: ids, versions: versions, inst: inst}
		job := &solveJob{entry: e, kind: jobRebuild, err: err}
		if !b.cfg.Cold {
			for vi, gi := range members {
				bd := b.bidders[s.ids[gi]]
				for _, t := range b.pool[ids[vi]] {
					if bd.xor != nil {
						if bd.xor[t] {
							job.seed = append(job.seed, auction.Column{V: vi, T: t})
						}
						continue
					}
					if t &= bd.support; t != valuation.Empty {
						job.seed = append(job.seed, auction.Column{V: vi, T: t})
					}
				}
			}
		}
		plan.entries = append(plan.entries, e)
		plan.jobs = append(plan.jobs, job)
	}
	return plan
}

func sameVersions(a, c []int) bool {
	for i := range a {
		if a[i] != c[i] {
			return false
		}
	}
	return true
}

// solveJobs fans the dirty components across the worker pool. No broker
// locks are held: each job owns its entry exclusively until commit, and
// queries keep serving the previous epoch meanwhile.
func (b *Broker) solveJobs(jobs []*solveJob) {
	if len(jobs) == 0 {
		return
	}
	workers := b.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				b.runJob(jobs[i])
			}
		}()
	}
	wg.Wait()
}

// solveFault, when non-nil, is consulted before every component solve; a
// returned error (or a panic) is injected as that solve's outcome. Tests use
// it to force the failed-job path; production leaves it nil.
var solveFault func(e *compEntry) error

// runJob solves one component and rounds both halves of the size
// decomposition. On error the job is marked failed: commitEpoch allocates
// nothing to the component's members this epoch and evicts the entry so the
// next epoch rebuilds it — one failing component cannot take down the epoch
// or masquerade as clean afterwards. A panicking solve (a bug deep inside
// simplex or a pathological valuation) is contained the same way: the
// recover converts it into a failed job instead of killing the daemon.
func (b *Broker) runJob(j *solveJob) {
	if j.err != nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			j.err = fmt.Errorf("broker: component solve panicked: %v", r)
		}
	}()
	e := j.entry
	if solveFault != nil {
		if err := solveFault(e); err != nil {
			j.err = err
			return
		}
	}
	var sol *auction.LPSolution
	var err error
	switch j.kind {
	case jobWarm:
		sol, err = e.master.Solve(j.newVals)
		if err == nil {
			e.inst = j.newInst
		}
	default:
		master := e.inst.NewMasterLP(e.inst.Bidders, j.seed)
		sol, err = master.Solve(e.inst.Bidders)
		if err == nil {
			e.master = master
		}
	}
	if err != nil {
		j.err = err
		return
	}
	e.sol = sol
	e.halves, e.iters = e.inst.RoundHalvesDerandomized(sol)
	if b.cfg.Prices {
		out, perr := mechanism.Run(e.inst)
		if perr != nil {
			j.err = perr
			return
		}
		e.payments = out.Payments
	}
}

// commitEpoch publishes the epoch: the epoch's entries move to the front of
// the component cache (entries from dissolved components are retained so a
// re-forming component hits its cached solution, and the LRU tail beyond
// Config.CompCacheCap is evicted), the bundle pool absorbs the re-solved
// components' columns, the size-decomposition half is chosen globally by
// total welfare, and the allocation and prices maps are rebuilt. A component
// whose solve failed contributes nothing this epoch and is dropped from the
// cache — its stale versions/nil solution must not masquerade as clean, so
// the next epoch re-plans it as a rebuild. Caller holds mu.Lock.
func (b *Broker) commitEpoch(plan *epochPlan, rep *EpochReport) {
	failed := make(map[*compEntry]bool)
	for _, j := range plan.jobs {
		if j.err != nil {
			rep.Errors++
			failed[j.entry] = true
		}
	}

	for _, e := range plan.entries {
		if failed[e] {
			// Drop whatever the cache holds under this key: the failed
			// entry itself, or — when a rebuild of a revived key failed —
			// the stale entry the rebuild was to replace.
			if old, ok := b.comps[e.key]; ok {
				b.dropComp(old)
			}
			continue
		}
		e.lastEpoch = b.epoch + 1 // the epoch being committed (b.epoch++ below)
		b.storeComp(e)
	}
	b.metrics.Evicted += b.evictComps()

	for _, j := range plan.jobs {
		if j.err != nil {
			continue
		}
		e := j.entry
		rep.ColumnsGenerated += e.sol.ColumnsGenerated
		if b.cfg.Cold {
			continue
		}
		for _, c := range e.sol.Columns {
			if b.poolAdd(e.ids[c.V], c.T) {
				rep.PoolAdded++
			}
		}
	}

	// Choose the size-decomposition half globally. The sums are accumulated
	// in global (id-ascending) bidder order — the exact float addition order
	// Allocation.Welfare uses on the union instance — so even a near-tie
	// between the halves resolves identically to the from-scratch
	// RoundDerandomized the equivalence contract compares against.
	n := 0
	if plan.state != nil {
		n = len(plan.state.ids)
	}
	perBidder := make([][2]float64, n)
	for _, e := range plan.entries {
		if failed[e] {
			continue
		}
		if e.sol != nil {
			rep.LPValue += e.sol.Value
		}
		if e.iters > rep.Alg3Iters {
			rep.Alg3Iters = e.iters
		}
		for l := 0; l < 2; l++ {
			h := e.halves[l]
			if h == nil {
				continue
			}
			for vi, id := range e.ids {
				if h[vi] != valuation.Empty {
					gi := plan.state.idx[id]
					perBidder[gi][l] = plan.state.vals[gi].Value(h[vi])
				}
			}
		}
	}
	var sw [2]float64
	for gi := 0; gi < n; gi++ {
		for l := 0; l < 2; l++ {
			if v := perBidder[gi][l]; v != 0 {
				sw[l] += v
			}
		}
	}
	half := 0
	if sw[1] > sw[0] {
		half = 1
	}
	rep.HalfChosen = half
	rep.Welfare = sw[half]

	alloc := make(map[BidderID]valuation.Bundle, len(b.bidders))
	prices := make(map[BidderID]float64)
	for _, e := range plan.entries {
		if failed[e] {
			continue
		}
		h := e.halves[half]
		for vi, id := range e.ids {
			if h != nil && h[vi] != valuation.Empty {
				alloc[id] = h[vi]
			}
			if e.payments != nil && e.payments[vi] > 0 {
				prices[id] = e.payments[vi]
			}
		}
	}
	b.alloc = alloc
	b.prices = prices
	b.snap = plan.state
	b.epoch++
	b.lastPlan = b.epoch
	rep.Epoch = b.epoch
}

// storeComp installs (or refreshes) a cache entry at the front of the LRU,
// replacing any different entry holding the same key (a rebuild of a revived
// key supersedes the stale entry). Caller holds mu.Lock.
func (b *Broker) storeComp(e *compEntry) {
	if old, ok := b.comps[e.key]; ok && old != e {
		b.dropComp(old)
	}
	b.comps[e.key] = e
	if e.elem != nil {
		b.lru.MoveToFront(e.elem)
		return
	}
	e.elem = b.lru.PushFront(e)
}

// dropComp removes an entry from the cache and the LRU. Caller holds mu.Lock.
func (b *Broker) dropComp(e *compEntry) {
	if e.elem != nil {
		b.lru.Remove(e.elem)
		e.elem = nil
	}
	if b.comps[e.key] == e {
		delete(b.comps, e.key)
	}
}

// evictComps drops LRU-tail entries beyond Config.CompCacheCap (negative =
// unbounded) and returns how many went. This epoch's entries were just moved
// to the front, so eviction only reaches them if the cap is smaller than one
// epoch's component count — correct either way, the next epoch rebuilds.
// Caller holds mu.Lock.
func (b *Broker) evictComps() (evicted int64) {
	if b.cfg.CompCacheCap < 0 {
		return 0
	}
	for b.lru.Len() > b.cfg.CompCacheCap {
		b.dropComp(b.lru.Back().Value.(*compEntry))
		evicted++
	}
	return evicted
}

// poolAdd records a generated bundle for the bidder, deduplicated and
// bounded; the pool seeds the master of any future component the bidder
// lands in.
func (b *Broker) poolAdd(id BidderID, t valuation.Bundle) bool {
	if t == valuation.Empty {
		return false
	}
	ts := b.pool[id]
	for _, have := range ts {
		if have == t {
			return false
		}
	}
	if len(ts) >= poolCap {
		ts = ts[1:]
	}
	b.pool[id] = append(ts, t)
	return true
}

// Snapshot returns the last committed epoch's market as a single auction
// instance over its active bidders (id-ascending vertex numbering, the
// conflict model's certifying ordering) together with the id of each vertex and the
// epoch it reflects. It is built from the state the epoch was solved on —
// not the live mutating bidder set — so even mid-tick it describes exactly
// the epoch the allocation queries serve: the equivalence contract is that
// a from-scratch auction.Solve of this instance reproduces the broker's
// committed allocation. The instance is detached; solving it is safe while
// the broker keeps ticking.
func (b *Broker) Snapshot() (*auction.Instance, []BidderID, int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	s := b.snap
	if s == nil {
		// No epoch committed yet: the empty market.
		s = &globalState{g: graph.New(0), pi: graph.IdentityOrdering(0)}
	}
	conf := &models.Conflict{
		W:        graph.FromUnweighted(s.g),
		Binary:   s.g,
		Pi:       s.pi,
		RhoBound: b.model.RhoBound(),
		Model:    b.model.Name(),
	}
	in, err := auction.NewInstance(conf, b.cfg.K, s.vals)
	if err != nil {
		return nil, nil, b.epoch, err
	}
	return in, s.ids, b.epoch, nil
}
