package models

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestPowerSchemes(t *testing.T) {
	links := []geom.Link{
		{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 2, Y: 0}},
		{Sender: geom.Point{X: 0, Y: 5}, Receiver: geom.Point{X: 4, Y: 5}},
	}
	alpha := 3.0
	if p := UniformPower.Powers(links, alpha); p[0] != 1 || p[1] != 1 {
		t.Fatal("uniform powers wrong")
	}
	if p := LinearPower.Powers(links, alpha); math.Abs(p[0]-8) > 1e-9 || math.Abs(p[1]-64) > 1e-9 {
		t.Fatalf("linear powers wrong: %v", p)
	}
	if p := SqrtPower.Powers(links, alpha); math.Abs(p[0]-math.Pow(2, 1.5)) > 1e-9 {
		t.Fatalf("sqrt powers wrong: %v", p)
	}
	if UniformPower.String() != "uniform" || LinearPower.String() != "linear" || SqrtPower.String() != "sqrt" {
		t.Fatal("scheme names wrong")
	}
}

func TestSINRFeasibleSingleLink(t *testing.T) {
	links := []geom.Link{{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 1, Y: 0}}}
	p := SINRParams{Alpha: 3, Beta: 1, Noise: 0}
	if !SINRFeasible(links, []float64{1}, []int{0}, p) {
		t.Fatal("single link with no noise must be feasible")
	}
	// Overwhelming noise kills it.
	p.Noise = 100
	if SINRFeasible(links, []float64{1}, []int{0}, p) {
		t.Fatal("noise-dominated link must be infeasible")
	}
}

// Property (Prop. 15 / Lemma in Section 4.3): for random link sets and
// uniform powers, SINR feasibility at threshold β implies independence in
// the Physical conflict graph, and independence implies SINR feasibility at
// the relaxed threshold β/(1+ε).
func TestQuickPhysicalIndependenceVsSINR(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		links := geom.UniformLinks(rng, n, 60, 1, 5)
		params := SINRParams{Alpha: 3, Beta: 1, Noise: 1e-9}
		powers := UniformPower.Powers(links, params.Alpha)
		conf := PhysicalWithPowers(links, powers, params, "test")
		eps := PhysicalEpsilon(links, params)
		relaxed := params
		relaxed.Beta = params.Beta / (1 + eps)
		for trial := 0; trial < 15; trial++ {
			var subset []int
			for v := 0; v < n; v++ {
				if rng.Float64() < 0.4 {
					subset = append(subset, v)
				}
			}
			indep := conf.W.IsIndependent(subset)
			if SINRFeasible(links, powers, subset, params) && !indep {
				return false // feasible sets must be independent
			}
			if indep && !SINRFeasible(links, powers, subset, relaxed) {
				return false // independent sets satisfy the relaxed SINR
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPhysicalOrderingDecreasingLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	links := geom.UniformLinks(rng, 10, 50, 1, 9)
	conf := Physical(links, UniformPower, DefaultSINR())
	for i := 1; i < 10; i++ {
		if links[conf.Pi.Perm[i-1]].Length() < links[conf.Pi.Perm[i]].Length()-1e-12 {
			t.Fatal("physical ordering must be by decreasing length")
		}
	}
}

func TestPhysicalRhoBoundGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	small := Physical(geom.UniformLinks(rng, 8, 50, 1, 5), UniformPower, DefaultSINR())
	large := Physical(geom.UniformLinks(rng, 64, 50, 1, 5), UniformPower, DefaultSINR())
	if large.RhoBound <= small.RhoBound {
		t.Fatal("certified bound must grow with n")
	}
	if large.RhoBound > small.RhoBound*3 {
		t.Fatal("bound grows too fast for O(log n)")
	}
}

func TestAssignPowersSingleAndEmpty(t *testing.T) {
	links := []geom.Link{{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 1, Y: 0}}}
	p := DefaultSINR()
	powers, ok := AssignPowers(links, []int{0}, p)
	if !ok || len(powers) != 1 {
		t.Fatal("single link must be power-feasible")
	}
	if !SINRFeasible(links, powers, []int{0}, p) {
		t.Fatal("assigned powers must satisfy SINR")
	}
	if _, ok := AssignPowers(links, nil, p); !ok {
		t.Fatal("empty set must be trivially feasible")
	}
}

func TestAssignPowersInfeasible(t *testing.T) {
	// Two crossed links: each receiver sits next to the other link's
	// sender, so the cross-gain dwarfs the direct gain and with β=1 no
	// powers work (the normalized gain matrix has spectral radius ≫ 1).
	links := []geom.Link{
		{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 1, Y: 0}},
		{Sender: geom.Point{X: 1, Y: 0.001}, Receiver: geom.Point{X: 0, Y: 0.001}},
	}
	p := SINRParams{Alpha: 3, Beta: 1, Noise: 0}
	if _, ok := AssignPowers(links, []int{0, 1}, p); ok {
		t.Fatal("coincident links must be infeasible under power control")
	}
}

func TestAssignPowersSeparatedLinks(t *testing.T) {
	// Well-separated short links: feasible, and returned powers verify.
	links := []geom.Link{
		{Sender: geom.Point{X: 0, Y: 0}, Receiver: geom.Point{X: 1, Y: 0}},
		{Sender: geom.Point{X: 100, Y: 0}, Receiver: geom.Point{X: 101, Y: 0}},
		{Sender: geom.Point{X: 0, Y: 100}, Receiver: geom.Point{X: 1, Y: 100}},
	}
	p := DefaultSINR()
	powers, ok := AssignPowers(links, []int{0, 1, 2}, p)
	if !ok {
		t.Fatal("separated links must be feasible")
	}
	full := make([]float64, len(links))
	for i, idx := range []int{0, 1, 2} {
		full[idx] = powers[i]
	}
	if !SINRFeasible(links, full, []int{0, 1, 2}, p) {
		t.Fatal("assigned powers must satisfy SINR")
	}
}

// Property (Theorem 3 of Kesselheim 2011, used by Theorem 17): independent
// sets of the PowerControl conflict graph admit feasible powers.
func TestQuickPowerControlIndependentSetsFeasible(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		links := geom.UniformLinks(rng, n, 150, 1, 5)
		params := DefaultSINR()
		conf := PowerControl(links, params)
		for trial := 0; trial < 10; trial++ {
			// Build a random independent set greedily.
			var set []int
			for _, v := range rng.Perm(n) {
				cand := append(set, v)
				if conf.W.IsIndependent(cand) {
					set = cand
				}
			}
			if len(set) == 0 {
				continue
			}
			if _, ok := AssignPowers(links, set, params); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerControlWeightsOneDirectional(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	links := geom.UniformLinks(rng, 8, 100, 1, 5)
	conf := PowerControl(links, DefaultSINR())
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			if a == b {
				continue
			}
			if !conf.Pi.Before(a, b) && conf.W.Weight(a, b) != 0 {
				t.Fatal("weights must only point forward in π")
			}
		}
	}
}

func TestPowerControlTau(t *testing.T) {
	p := SINRParams{Alpha: 2, Beta: 1}
	want := 1.0 / (2 * 9 * 6)
	if got := PowerControlTau(p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("tau = %g, want %g", got, want)
	}
}

func TestPhysicalWithPowersPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PhysicalWithPowers(make([]geom.Link, 2), []float64{1}, DefaultSINR(), "x")
}
