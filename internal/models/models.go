// Package models builds the conflict graphs of Section 4 of the paper: for
// each wireless interference model it emits the (edge-weighted) conflict
// graph, the vertex ordering π that certifies the model's inductive
// independence bound, and the bound itself.
//
// Transmitter scenarios: disk graphs (Prop. 9), distance-2 coloring on disk
// graphs (Prop. 11) and on (r,s)-civilized graphs (Prop. 12).
//
// Link scenarios: the protocol model (Prop. 13), the bidirectional
// IEEE 802.11 model, distance-2 matching on disk graphs (Cor. 14), the
// physical SINR model with fixed monotone powers (Prop. 15) and with power
// control (Theorem 17).
package models

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Conflict bundles everything the auction engine needs from an interference
// model: the weighted conflict graph (binary models are lifted to weights
// {0,1}), the certifying ordering, and the certified ρ bound.
type Conflict struct {
	// W is the edge-weighted conflict graph over the bidders.
	W *graph.Weighted
	// Binary is the underlying unweighted conflict graph for binary models
	// and nil for genuinely weighted models (physical model).
	Binary *graph.Graph
	// Pi is the ordering certifying RhoBound.
	Pi graph.Ordering
	// RhoBound is the inductive independence bound certified by Pi for this
	// model (an upper bound; the measured value is usually smaller).
	RhoBound float64
	// Model names the interference model, for reports.
	Model string
}

// N returns the number of bidders.
func (c *Conflict) N() int { return c.W.N() }

// orderingBy returns the ordering that sorts vertices by increasing key,
// with index as tie-break so the permutation is deterministic.
func orderingBy(n int, key func(i int) float64) graph.Ordering {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ka, kb := key(perm[a]), key(perm[b])
		if ka != kb {
			return ka < kb
		}
		return perm[a] < perm[b]
	})
	return graph.NewOrdering(perm)
}

// Inductive independence bounds certified by the models' orderings; the
// constructors embed them, and incremental maintainers of the same graphs
// (internal/broker's conflict backends) reference them so the certified
// constants have a single source.
const (
	// DiskRho: decreasing-radius ordering on disk graphs (Proposition 9).
	DiskRho = 5
	// Distance2DiskRho: decreasing-radius ordering on the square of a disk
	// graph (Proposition 11; 5 + 16 + 25, see Distance2Disk).
	Distance2DiskRho = 46
	// IEEE80211Rho: increasing-length ordering on the bidirectional protocol
	// model (Wan).
	IEEE80211Rho = 23
)

// DisksConflict reports whether two interference disks intersect.
func DisksConflict(p, q geom.Point, rp, rq float64) bool {
	return p.Dist(q) <= rp+rq
}

// Disk builds the disk-graph conflict model of a transmitter scenario:
// transmitter i covers a disk of radius radii[i] around centers[i], and two
// transmitters conflict iff their disks intersect. The ordering sorts by
// decreasing radius and certifies ρ ≤ 5 (Proposition 9).
func Disk(centers []geom.Point, radii []float64) *Conflict {
	n := len(centers)
	if len(radii) != n {
		panic(fmt.Sprintf("models: %d centers but %d radii", n, len(radii)))
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if DisksConflict(centers[i], centers[j], radii[i], radii[j]) {
				g.AddEdge(i, j)
			}
		}
	}
	pi := orderingBy(n, func(i int) float64 { return -radii[i] })
	return &Conflict{
		W:        graph.FromUnweighted(g),
		Binary:   g,
		Pi:       pi,
		RhoBound: DiskRho,
		Model:    "disk",
	}
}

// diskGraph returns just the intersection graph of the disks.
func diskGraph(centers []geom.Point, radii []float64) *graph.Graph {
	n := len(centers)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if centers[i].Dist(centers[j]) <= radii[i]+radii[j] {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// square returns the square of g: vertices conflict if adjacent or sharing a
// common neighbor (distance ≤ 2).
func square(g *graph.Graph) *graph.Graph {
	n := g.N()
	sq := graph.New(n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if u > v {
				sq.AddEdge(v, u)
			}
			for _, w := range g.Neighbors(u) {
				if w > v {
					sq.AddEdge(v, w)
				}
			}
		}
	}
	return sq
}

// Distance2Disk builds the distance-2 coloring conflict graph on a disk
// graph: transmitters conflict if they are within two hops of each other in
// the disk graph. The ordering by decreasing radius certifies ρ = O(1)
// (Proposition 11); the constant certified here is the one from the proof,
// 5 + 16 + 25 = 46 (direct neighbors, smaller-radius intermediates via
// Lemma 10 with a = 2, and up to 5 larger intermediates with up to 5
// conflicting vertices each).
func Distance2Disk(centers []geom.Point, radii []float64) *Conflict {
	g := diskGraph(centers, radii)
	sq := square(g)
	pi := orderingBy(len(centers), func(i int) float64 { return -radii[i] })
	return &Conflict{
		W:        graph.FromUnweighted(sq),
		Binary:   sq,
		Pi:       pi,
		RhoBound: Distance2DiskRho,
		Model:    "distance2-disk",
	}
}

// Civilized builds a distance-2 coloring conflict graph on an
// (r,s)-civilized graph: the points are pairwise at distance at least s,
// edges exist only between points at distance at most r (here: exactly those
// pairs), and the conflict graph is the square. Any ordering certifies
// ρ ≤ (4r/s + 2)² (Proposition 12; the proposition statement omits the
// square that its proof — counting disjoint s/2-disks inside a (2r+s/2)-disk
// — actually yields, so we certify the proof's bound).
//
// Points violating the s-separation are rejected with an error.
func Civilized(points []geom.Point, r, s float64) (*Conflict, error) {
	n := len(points)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if points[i].Dist(points[j]) < s {
				return nil, fmt.Errorf("models: points %d,%d at distance %.4f < s=%.4f", i, j, points[i].Dist(points[j]), s)
			}
		}
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if points[i].Dist(points[j]) <= r {
				g.AddEdge(i, j)
			}
		}
	}
	sq := square(g)
	pi := graph.IdentityOrdering(n) // the proposition's bound holds for any ordering
	bound := 4*r/s + 2
	return &Conflict{
		W:        graph.FromUnweighted(sq),
		Binary:   sq,
		Pi:       pi,
		RhoBound: bound * bound,
		Model:    "civilized",
	}, nil
}

// ProtocolRhoBound returns the inductive independence bound of the protocol
// model with parameter delta (Proposition 13, due to Wan):
// ⌈π / arcsin(Δ/(2(Δ+1)))⌉ − 1.
func ProtocolRhoBound(delta float64) float64 {
	return math.Ceil(math.Pi/math.Asin(delta/(2*(delta+1)))) - 1
}

// Protocol builds the protocol-model conflict graph over links: link ℓ' with
// sender s' disturbs link ℓ = (s,r) if d(s',r) < (1+Δ)·d(s,r). Two links
// conflict if either disturbs the other (or they share geometry). The
// ordering by increasing link length certifies ρ ≤ ProtocolRhoBound(delta).
func Protocol(links []geom.Link, delta float64) *Conflict {
	n := len(links)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ProtocolConflicts(links[i], links[j], delta) {
				g.AddEdge(i, j)
			}
		}
	}
	pi := orderingBy(n, func(i int) float64 { return links[i].Length() })
	return &Conflict{
		W:        graph.FromUnweighted(g),
		Binary:   g,
		Pi:       pi,
		RhoBound: ProtocolRhoBound(delta),
		Model:    "protocol",
	}
}

// ProtocolConflicts reports whether two links conflict under the protocol
// model with parameter delta: either sender disturbs the other's receiver.
func ProtocolConflicts(a, b geom.Link, delta float64) bool {
	return b.Sender.Dist(a.Receiver) < (1+delta)*a.Length() ||
		a.Sender.Dist(b.Receiver) < (1+delta)*b.Length()
}

// IEEE80211 builds the bidirectional variant of the protocol model
// (Alicherry et al.): links conflict if any endpoint of one is within
// (1+Δ)·max(len, len') of any endpoint of the other. For Δ bounded away from
// zero the inductive independence is a constant; Wan shows ρ ≤ 23, which the
// increasing-length ordering certifies.
func IEEE80211(links []geom.Link, delta float64) *Conflict {
	n := len(links)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if IEEE80211Conflicts(links[i], links[j], delta) {
				g.AddEdge(i, j)
			}
		}
	}
	pi := orderingBy(n, func(i int) float64 { return links[i].Length() })
	return &Conflict{
		W:        graph.FromUnweighted(g),
		Binary:   g,
		Pi:       pi,
		RhoBound: IEEE80211Rho,
		Model:    "ieee802.11",
	}
}

// IEEE80211Conflicts reports whether two links conflict under the
// bidirectional IEEE 802.11 model: any endpoint of one within
// (1+delta)·max(len,len') of any endpoint of the other.
func IEEE80211Conflicts(a, b geom.Link, delta float64) bool {
	rng := (1 + delta) * math.Max(a.Length(), b.Length())
	for _, p := range []geom.Point{a.Sender, a.Receiver} {
		for _, q := range []geom.Point{b.Sender, b.Receiver} {
			if p.Dist(q) < rng {
				return true
			}
		}
	}
	return false
}

// Distance2Matching builds the distance-2 matching conflict graph
// (Balakrishnan et al., Cor. 14): the bidders are edges (u,v) of a disk
// graph, and two such links conflict unless every path connecting them has
// at least two edges — i.e. they conflict if they share an endpoint or some
// endpoint of one is adjacent to an endpoint of the other. The ordering by
// increasing r(e) = r(u) + r(v) certifies ρ = O(1); we certify the explicit
// constant 25 (each endpoint disk of e meets at most 5 pairwise-disjoint
// not-smaller disks on each side of the witnessing edge, cf. Barrett et
// al.'s greedy analysis).
//
// edges lists the disk-graph edges that act as bidders; each must be an
// edge of the disk graph on (centers, radii).
func Distance2Matching(centers []geom.Point, radii []float64, edges [][2]int) (*Conflict, error) {
	g := diskGraph(centers, radii)
	for _, e := range edges {
		if !g.HasEdge(e[0], e[1]) {
			return nil, fmt.Errorf("models: (%d,%d) is not a disk-graph edge", e[0], e[1])
		}
	}
	n := len(edges)
	cg := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d2mConflicts(g, edges[i], edges[j]) {
				cg.AddEdge(i, j)
			}
		}
	}
	pi := orderingBy(n, func(i int) float64 {
		return radii[edges[i][0]] + radii[edges[i][1]]
	})
	return &Conflict{
		W:        graph.FromUnweighted(cg),
		Binary:   cg,
		Pi:       pi,
		RhoBound: 25,
		Model:    "distance2-matching",
	}, nil
}

func d2mConflicts(g *graph.Graph, a, b [2]int) bool {
	for _, u := range a {
		for _, v := range b {
			if u == v || g.HasEdge(u, v) {
				return true
			}
		}
	}
	return false
}
