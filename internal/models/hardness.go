package models

import (
	"math"

	"repro/internal/graph"
)

// AsymmetricHardness builds the Theorem 18 construction: it splits the edges
// of a bounded-degree graph G across k per-channel conflict graphs so that
// every vertex has at most ρ = ⌈deg_backward/k⌉ backward edges per channel
// under the identity ordering. A bidder obtains value only for the full
// channel bundle [k], so allocations of welfare b correspond exactly to
// independent sets of size b in G.
//
// It returns the per-channel graphs, the identity ordering, and the
// certified ρ (the maximum number of backward edges any (vertex, channel)
// pair received — an upper bound on the per-channel inductive independence).
func AsymmetricHardness(g *graph.Graph, k int) ([]*graph.Graph, graph.Ordering, float64) {
	n := g.N()
	channels := make([]*graph.Graph, k)
	for j := range channels {
		channels[j] = graph.New(n)
	}
	rho := 0
	for v := 0; v < n; v++ {
		cnt := 0
		for _, u := range g.Neighbors(v) {
			if u < v {
				channels[cnt%k].AddEdge(u, v)
				cnt++
			}
		}
		if per := (cnt + k - 1) / k; per > rho {
			rho = per
		}
	}
	if rho == 0 {
		rho = 1
	}
	return channels, graph.IdentityOrdering(n), float64(rho)
}

// BoundedDegreeConflict wraps a bounded-degree graph as a conflict structure
// for the Theorem 5 setting (k = 1, ρ ≤ max degree): the degeneracy ordering
// certifies ρ ≤ degeneracy(G) ≤ d.
func BoundedDegreeConflict(g *graph.Graph) *Conflict {
	pi, degeneracy := g.SmallestLast()
	bound := float64(degeneracy)
	if bound < 1 {
		bound = 1
	}
	return &Conflict{
		W:        graph.FromUnweighted(g),
		Binary:   g,
		Pi:       pi,
		RhoBound: bound,
		Model:    "bounded-degree",
	}
}

// CliqueConflict wraps the complete graph on n vertices: the conflict
// structure of an ordinary combinatorial auction (Theorem 6 setting, ρ = 1).
func CliqueConflict(n int) *Conflict {
	g := graph.Clique(n)
	return &Conflict{
		W:        graph.FromUnweighted(g),
		Binary:   g,
		Pi:       graph.IdentityOrdering(n),
		RhoBound: 1,
		Model:    "clique",
	}
}

// GeneralGraphConflict wraps an arbitrary unweighted graph with its
// degeneracy ordering and the certified degeneracy bound. This is the
// fallback for graphs without geometric structure; the paper's point is that
// wireless models do far better than the Ω(n^{1−ε}) general-graph barrier,
// and this constructor is what experiments compare them against.
func GeneralGraphConflict(g *graph.Graph) *Conflict {
	pi, degeneracy := g.SmallestLast()
	bound := math.Max(1, float64(degeneracy))
	return &Conflict{
		W:        graph.FromUnweighted(g),
		Binary:   g,
		Pi:       pi,
		RhoBound: bound,
		Model:    "general",
	}
}
