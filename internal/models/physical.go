package models

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
)

// SINRParams are the parameters of the physical interference model: a link
// (s,r) transmitting at power p delivers signal p/d(s,r)^Alpha, and receiver
// r decodes successfully iff
//
//	p/d(s,r)^Alpha ≥ Beta · (Σ_other interference + Noise).
type SINRParams struct {
	Alpha float64 // path-loss exponent (typically 2..6)
	Beta  float64 // SINR threshold (> 0)
	Noise float64 // ambient noise ν ≥ 0
}

// DefaultSINR returns common physical-model parameters: α=3, β=1, tiny
// noise.
func DefaultSINR() SINRParams {
	return SINRParams{Alpha: 3, Beta: 1, Noise: 1e-6}
}

// PowerScheme selects how fixed transmission powers are assigned to links.
type PowerScheme int

// Fixed power assignment schemes satisfying the paper's monotonicity
// constraints: longer links use at least as much power (p monotone) and at
// most as much received signal strength per unit distance (p/d^α
// antitone).
const (
	// UniformPower assigns p(ℓ) = 1 to every link.
	UniformPower PowerScheme = iota
	// LinearPower assigns p(ℓ) = d(ℓ)^α.
	LinearPower
	// SqrtPower assigns p(ℓ) = d(ℓ)^(α/2), the square-root (mean) scheme —
	// also monotone in both senses.
	SqrtPower
)

// String names the scheme for reports.
func (s PowerScheme) String() string {
	switch s {
	case UniformPower:
		return "uniform"
	case LinearPower:
		return "linear"
	case SqrtPower:
		return "sqrt"
	}
	return "?"
}

// Powers returns the fixed power assignment for the links under the scheme.
func (s PowerScheme) Powers(links []geom.Link, alpha float64) []float64 {
	p := make([]float64, len(links))
	for i, l := range links {
		d := l.Length()
		switch s {
		case UniformPower:
			p[i] = 1
		case LinearPower:
			p[i] = math.Pow(d, alpha)
		case SqrtPower:
			p[i] = math.Pow(d, alpha/2)
		default:
			panic(fmt.Sprintf("models: unknown power scheme %d", int(s)))
		}
	}
	return p
}

// SINRFeasible reports whether the subset of links can transmit
// simultaneously at the given powers: every member's SINR constraint holds.
func SINRFeasible(links []geom.Link, powers []float64, subset []int, p SINRParams) bool {
	for _, i := range subset {
		signal := powers[i] / math.Pow(links[i].Length(), p.Alpha)
		interference := p.Noise
		for _, j := range subset {
			if j == i {
				continue
			}
			interference += powers[j] / math.Pow(links[j].Sender.Dist(links[i].Receiver), p.Alpha)
		}
		if signal < p.Beta*interference {
			return false
		}
	}
	return true
}

// Physical builds the edge-weighted conflict graph of the physical model
// with fixed transmission powers (Proposition 15). With the weights below, a
// set of links is independent in the weighted graph iff it satisfies all
// SINR constraints. For power schemes satisfying the monotonicity
// constraints the ordering by decreasing link length certifies
// ρ = O(log n); the concrete bound recorded is c·(1+log₂ n) with the
// affectance constant c = 2·3^α·β+1 from Kesselheim–Vöcking's Lemma (the
// backward direction contributes O(1), the forward O(log n)).
func Physical(links []geom.Link, scheme PowerScheme, p SINRParams) *Conflict {
	powers := scheme.Powers(links, p.Alpha)
	return PhysicalWithPowers(links, powers, p, fmt.Sprintf("physical-%s", scheme))
}

// PhysicalWithPowers builds the physical-model conflict graph for an
// explicit power assignment. See Physical.
func PhysicalWithPowers(links []geom.Link, powers []float64, p SINRParams, name string) *Conflict {
	n := len(links)
	if len(powers) != n {
		panic(fmt.Sprintf("models: %d links but %d powers", n, len(powers)))
	}
	eps := PhysicalEpsilon(links, p)
	w := graph.NewWeighted(n)
	scale := p.Beta / (1 + eps)
	for i := 0; i < n; i++ { // receiver link ℓ = links[i]
		strength := powers[i]/math.Pow(links[i].Length(), p.Alpha) - scale*p.Noise
		for j := 0; j < n; j++ { // interfering link ℓ' = links[j]
			if i == j {
				continue
			}
			var wij float64
			if strength <= 0 {
				// The link cannot even overcome noise: it conflicts with
				// everything (weight 1 in both directions suffices).
				wij = 1
			} else {
				incoming := scale * powers[j] / math.Pow(links[j].Sender.Dist(links[i].Receiver), p.Alpha)
				wij = math.Min(1, incoming/strength)
			}
			w.SetWeight(j, i, wij)
		}
	}
	pi := orderingBy(n, func(i int) float64 { return -links[i].Length() })
	c := 2*math.Pow(3, p.Alpha)*p.Beta + 1
	bound := c * (1 + math.Log2(math.Max(2, float64(n))))
	return &Conflict{
		W:        w,
		Pi:       pi,
		RhoBound: bound,
		Model:    name,
	}
}

// PhysicalEpsilon returns the slack constant ε of the Proposition 15 edge
// weights,
//
//	ε = (β/2)·min over links ℓ=(s,r) ≠ ℓ'=(s',r') of (d(s,r)/d(s',r))^α,
//
// which converts the "≥" of the SINR constraint into the strict "<" of the
// weighted independent-set definition: a set of links is independent in the
// Physical conflict graph iff it satisfies every SINR constraint with
// threshold β/(1+ε) — and satisfying them with threshold β is sufficient.
func PhysicalEpsilon(links []geom.Link, p SINRParams) float64 {
	n := len(links)
	eps := math.Inf(1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			ratio := math.Pow(links[i].Length()/links[j].Sender.Dist(links[i].Receiver), p.Alpha)
			if v := p.Beta / 2 * ratio; v < eps {
				eps = v
			}
		}
	}
	if math.IsInf(eps, 1) || eps <= 0 {
		eps = p.Beta / 2
	}
	return eps
}

// PowerControlTau returns τ = 1/(2·3^α·(4β+2)), the scaling constant of the
// Theorem 17 edge weights.
func PowerControlTau(p SINRParams) float64 {
	return 1 / (2 * math.Pow(3, p.Alpha) * (4*p.Beta + 2))
}

// PowerControl builds the edge-weighted conflict graph of the physical model
// with power control (Theorem 17). The ordering runs from long to short
// links, and for π(ℓ) < π(ℓ') the weight is
//
//	w(ℓ,ℓ') = (1/τ)·min{1, d(ℓ)^α/d(s,r')^α} + (1/τ)·min{1, d(ℓ)^α/d(s',r)^α}
//
// with τ = PowerControlTau; all opposite-direction weights are zero. Every
// independent set of the weighted graph admits a feasible power assignment
// (computed by AssignPowers); conversely every SINR-feasible set is an LP
// solution for ρ = O(1) in fading metrics and O(log n) in general metrics.
func PowerControl(links []geom.Link, p SINRParams) *Conflict {
	n := len(links)
	pi := orderingBy(n, func(i int) float64 { return -links[i].Length() })
	tau := PowerControlTau(p)
	w := graph.NewWeighted(n)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b || !pi.Before(a, b) {
				continue
			}
			la, lb := links[a], links[b]
			da := math.Pow(la.Length(), p.Alpha)
			toB := math.Min(1, da/math.Pow(la.Sender.Dist(lb.Receiver), p.Alpha))
			toA := math.Min(1, da/math.Pow(lb.Sender.Dist(la.Receiver), p.Alpha))
			w.SetWeight(a, b, (toB+toA)/tau)
		}
	}
	bound := (1 + math.Log2(math.Max(2, float64(n)))) / tau
	return &Conflict{
		W:        w,
		Pi:       pi,
		RhoBound: bound,
		Model:    "physical-powercontrol",
	}
}

// AssignPowers computes a feasible power assignment for the subset of links
// if one exists. SINR feasibility under power control is the linear
// feasibility problem p ≥ β(F·p + ν·η) with F the normalized gain matrix;
// the minimal solution is the fixed point of the Foschini–Miljanic iteration
// p ← β(F·p + ν·η) started from zero, which converges iff the spectral
// radius of βF is below one. The iteration is this package's substitute for
// the power-control procedure of Kesselheim (SODA 2011) that the paper
// invokes: it is exact for feasibility and returns the componentwise-minimal
// feasible powers.
//
// ok is false if no feasible assignment exists (detected by divergence or
// failure to converge within maxIter iterations).
func AssignPowers(links []geom.Link, subset []int, p SINRParams) (powers []float64, ok bool) {
	m := len(subset)
	if m == 0 {
		return nil, true
	}
	// gain[i][j]: normalized interference coefficient of j's sender at i's
	// receiver, scaled so the constraint reads p_i ≥ β Σ_j gain[i][j] p_j + β ν d_i^α.
	//
	// With ν = 0 the iteration from zero would stall at the trivial fixed
	// point p = 0 and mask infeasibility; a tiny noise floor drives it
	// toward the minimal strictly-positive solution instead (the returned
	// powers then over-satisfy the ν = 0 constraints).
	effNoise := math.Max(p.Noise, 1e-12)
	gain := make([][]float64, m)
	noiseTerm := make([]float64, m)
	for ii, i := range subset {
		di := math.Pow(links[i].Length(), p.Alpha)
		gain[ii] = make([]float64, m)
		noiseTerm[ii] = p.Beta * effNoise * di
		for jj, j := range subset {
			if ii == jj {
				continue
			}
			gain[ii][jj] = p.Beta * di / math.Pow(links[j].Sender.Dist(links[i].Receiver), p.Alpha)
		}
	}
	pw := make([]float64, m)
	next := make([]float64, m)
	const maxIter = 10000
	// An upper bound on the minimal feasible power if one exists: start
	// from noise-only powers and watch for geometric blow-up.
	blowUp := 0.0
	for _, t := range noiseTerm {
		blowUp += t
	}
	blowUp = (blowUp + 1) * 1e12
	for iter := 0; iter < maxIter; iter++ {
		delta := 0.0
		for ii := range pw {
			s := noiseTerm[ii]
			for jj := range pw {
				s += gain[ii][jj] * pw[jj]
			}
			// Strict inequality with headroom so SINRFeasible's ≥ holds
			// robustly under floating point.
			s *= 1 + 1e-9
			next[ii] = s
			if d := math.Abs(s - pw[ii]); d > delta {
				delta = d
			}
			if s > blowUp {
				return nil, false
			}
		}
		copy(pw, next)
		if delta < 1e-12 {
			out := make([]float64, m)
			copy(out, pw)
			return out, true
		}
	}
	return nil, false
}
